#include "run/cli.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/table.hh"
#include "defense/defense.hh"
#include "noise/environment.hh"
#include "obs/counters.hh"
#include "sim/cpu_model.hh"

namespace lf {

namespace {

/** Split on @p sep, keeping empty pieces (they become errors). */
std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (;;) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string::npos) {
            parts.push_back(text.substr(start));
            return parts;
        }
        parts.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
parseAxisValues(const std::string &key, const std::string &text,
                std::vector<double> &values)
{
    const auto bad = [&](const std::string &why) {
        return "sweep axis \"" + key + "\": " + why + " in \"" + text +
            "\"";
    };
    if (text.find(':') != std::string::npos) {
        const auto parts = split(text, ':');
        if (parts.size() != 3)
            return bad("want LO:HI:STEP");
        double lo;
        double hi;
        double step;
        if (!parseStrictDouble(parts[0], lo) ||
            !parseStrictDouble(parts[1], hi) ||
            !parseStrictDouble(parts[2], step)) {
            return bad("bad number");
        }
        if (step <= 0.0)
            return bad("STEP must be > 0");
        if (hi < lo)
            return bad("HI must be >= LO");
        // Values are computed as lo + i*step (no accumulation drift);
        // the epsilon admits HI itself despite rounding.
        const auto points = static_cast<std::size_t>(
            std::floor((hi - lo) / step + 1e-9)) + 1;
        for (std::size_t i = 0; i < points; ++i)
            values.push_back(lo + static_cast<double>(i) * step);
        return "";
    }
    for (const std::string &piece : split(text, '|')) {
        double value;
        if (!parseStrictDouble(piece, value))
            return bad("bad number");
        values.push_back(value);
    }
    return "";
}

} // namespace

bool
parseStrictDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        return false;
    if (!std::isfinite(value))
        return false;
    out = value;
    return true;
}

bool
parseStrictUint64(const std::string &text, std::uint64_t &out)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t value = std::stoull(text, &pos);
        if (pos != text.size() ||
            text.find('-') != std::string::npos) {
            return false;
        }
        out = value;
        return true;
    } catch (...) {
        return false;
    }
}

bool
parseStrictInt(const std::string &text, int &out)
{
    try {
        std::size_t pos = 0;
        const int value = std::stoi(text, &pos);
        if (pos != text.size())
            return false;
        out = value;
        return true;
    } catch (...) {
        return false;
    }
}

std::string
parseSetArg(const std::string &text,
            std::map<std::string, double> &overrides)
{
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0)
        return "--set wants KEY=VALUE, got \"" + text + "\"";
    const std::string key = text.substr(0, eq);
    double value;
    if (!parseStrictDouble(text.substr(eq + 1), value))
        return "bad --set value in \"" + text + "\"";
    if (overrides.count(key) != 0)
        return "duplicate --set key \"" + key + "\"";
    overrides[key] = value;
    return "";
}

std::string
parseSweepArg(const std::string &text, std::vector<SweepAxis> &axes)
{
    for (const std::string &piece : split(text, ',')) {
        const std::size_t eq = piece.find('=');
        if (eq == std::string::npos || eq == 0) {
            return "--sweep wants KEY=LO:HI:STEP (or KEY=V1|V2...),"
                   " got \"" + piece + "\"";
        }
        SweepAxis axis;
        axis.key = piece.substr(0, eq);
        for (const SweepAxis &existing : axes) {
            if (existing.key == axis.key)
                return "duplicate --sweep key \"" + axis.key + "\"";
        }
        const std::string error =
            parseAxisValues(axis.key, piece.substr(eq + 1),
                            axis.values);
        if (!error.empty())
            return error;
        axes.push_back(std::move(axis));
    }
    return "";
}

std::string
parseShardArg(const std::string &text, SweepShard &shard)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size()) {
        return "--shard wants I/N, got \"" + text + "\"";
    }
    int index;
    int count;
    if (!parseStrictInt(text.substr(0, slash), index) ||
        !parseStrictInt(text.substr(slash + 1), count)) {
        return "--shard wants integers I/N, got \"" + text + "\"";
    }
    if (count < 1 || index < 0 || index >= count) {
        return "--shard " + text + " out of range (need 0 <= I < N)";
    }
    shard.index = index;
    shard.count = count;
    return "";
}

std::string
renderChannelCatalog()
{
    TextTable table("Registered covert channels");
    table.setHeader({"Name", "Needs", "Default", "Description"});
    for (const std::string &name : allChannelNames()) {
        const ChannelInfo &info = channelInfo(name);
        std::string needs;
        if (info.requiresSmt)
            needs += "SMT ";
        if (info.requiresSgx)
            needs += "SGX ";
        if (needs.empty())
            needs = "-";
        const ChannelConfig &cfg = info.defaultConfig;
        std::string defaults = "d=" + std::to_string(cfg.d) +
            " M=" + std::to_string(cfg.M) +
            (cfg.stealthy ? " stealthy" : "");
        table.addRow({name, needs, defaults, info.description});
    }
    std::ostringstream os;
    os << table.render() << "\nCPU models:";
    for (const CpuModel *cpu : allCpuModels())
        os << " \"" << cpu->name << "\"";
    os << "\n";
    return os.str();
}

std::string
renderOverrideKeyCatalog()
{
    const auto family = [](std::ostringstream &os, const char *title,
                           const std::vector<std::string> &keys) {
        os << title << ":\n ";
        for (const std::string &key : keys)
            os << " " << key;
        os << "\n";
    };
    std::ostringstream os;
    family(os, "Config override keys (--set / --sweep)",
           channelOverrideKeys());
    family(os, "CPU model override keys (--set / --sweep)",
           modelOverrideKeys());
    family(os, "Environment override keys (--set / --sweep)",
           envOverrideKeys());
    family(os, "Defense override keys (--set / --sweep)",
           defenseOverrideKeys());
    return os.str();
}

std::string
renderCounterCatalog()
{
    TextTable table("Microarchitectural counters");
    table.setHeader({"Name", "Description"});
    for (const obs::CounterInfo &info : obs::counterCatalog())
        table.addRow({info.name, info.description});
    return table.render();
}

namespace {

/** Span of the moving rate window (seconds). */
constexpr double kRateWindowSeconds = 5.0;
/** Samples closer together than this coalesce, bounding the window
 *  deque even when update() is called per row in a tight loop. */
constexpr double kSampleSpacingSeconds = 0.02;

} // namespace

ProgressMeter::ProgressMeter(std::string label, std::size_t total)
    : label_(std::move(label)), total_(total), sink_(stderr),
      lastUpdate_(std::chrono::steady_clock::now())
{
}

std::chrono::steady_clock::time_point
ProgressMeter::now() const
{
    return clock_ ? clock_() : std::chrono::steady_clock::now();
}

void
ProgressMeter::setClock(Clock clock)
{
    clock_ = std::move(clock);
    lastUpdate_ = now();
    samples_.clear();
    drew_ = false;
    finalDrawn_ = false;
    rate_ = 0.0;
    eta_ = 0.0;
}

void
ProgressMeter::setSink(std::FILE *sink)
{
    sink_ = sink;
}

void
ProgressMeter::recomputeRate(std::chrono::steady_clock::time_point t,
                             std::size_t done)
{
    const auto seconds = [](auto span) {
        return std::chrono::duration<double>(span).count();
    };
    // Coalesce near-coincident samples (but never the baseline
    // sample itself, or a burst would erase its own starting point).
    if (samples_.size() >= 2 &&
        seconds(t - samples_.back().first) < kSampleSpacingSeconds) {
        samples_.back() = {t, done};
    } else {
        samples_.emplace_back(t, done);
    }
    // Trim to the window, always keeping two samples so the rate has
    // a baseline to difference against.
    while (samples_.size() > 2 &&
           seconds(t - samples_.front().first) > kRateWindowSeconds) {
        samples_.pop_front();
    }
    const double span = seconds(t - samples_.front().first);
    const std::size_t base = samples_.front().second;
    rate_ = span > 0.0 && done > base
        ? static_cast<double>(done - base) / span
        : 0.0;
    const std::size_t left = done < total_ ? total_ - done : 0;
    eta_ = rate_ > 0.0 ? static_cast<double>(left) / rate_ : 0.0;
}

void
ProgressMeter::update(std::size_t done, const std::string &extra)
{
    const auto t = now();
    recomputeRate(t, done);

    // Throttled redraw, with one guaranteed (but only one — a caller
    // looping on the final count must not spam) final draw.
    const bool final_draw = done >= total_ && !finalDrawn_;
    const double sinceUpdate =
        std::chrono::duration<double>(t - lastUpdate_).count();
    if (drew_ && sinceUpdate < 0.1 && !final_draw)
        return;
    if (done >= total_)
        finalDrawn_ = true;
    lastUpdate_ = t;
    drew_ = true;
    if (sink_ == nullptr)
        return;
    std::fprintf(sink_, "\r[%s] %zu/%zu trials  %.1f trials/s"
                 "  ETA %.0fs%s%s ",
                 label_.c_str(), done, total_, rate_, eta_,
                 extra.empty() ? "" : "  ", extra.c_str());
    std::fflush(sink_);
}

void
ProgressMeter::finish()
{
    if (drew_ && sink_ != nullptr)
        std::fprintf(sink_, "\n");
    drew_ = false;
}

void
ProgressMeter::finishWith(const std::string &line)
{
    if (sink_ == nullptr) {
        drew_ = false;
        return;
    }
    if (drew_) {
        // Pad past the longest frame update() draws (~100 chars plus
        // the caller extra) so no tail of the old frame survives.
        std::fprintf(sink_, "\r[%s] %-110s\n", label_.c_str(),
                     line.c_str());
    } else {
        std::fprintf(sink_, "[%s] %s\n", label_.c_str(), line.c_str());
    }
    drew_ = false;
}

} // namespace lf
