#include "run/sinks.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace lf {

std::string
jsonNumber(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

namespace {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
csvEscape(const std::string &text)
{
    if (text.find_first_of(",\"\n") == std::string::npos)
        return text;
    std::string out = "\"";
    for (char c : text) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out += "\"";
    return out;
}

void
writeConfigJson(const ChannelConfig &cfg, std::ostream &os)
{
    os << "{"
       << "\"targetSet\":" << cfg.targetSet
       << ",\"altSet\":" << cfg.altSet
       << ",\"N\":" << cfg.N
       << ",\"d\":" << cfg.d
       << ",\"M\":" << cfg.M
       << ",\"r\":" << cfg.r
       << ",\"rounds\":" << cfg.rounds
       << ",\"initIters\":" << cfg.initIters
       << ",\"stealthy\":" << (cfg.stealthy ? "true" : "false")
       << ",\"mtSteps\":" << cfg.mtSteps
       << ",\"mtMeasPerStep\":" << cfg.mtMeasPerStep
       << ",\"mtSenderIters\":" << cfg.mtSenderIters
       << ",\"preambleBits\":" << cfg.preambleBits
       << ",\"receiverBase\":" << cfg.receiverBase
       << ",\"senderBase\":" << cfg.senderBase
       << "}";
}

void
writeExtrasJson(const ChannelExtras &extras, std::ostream &os)
{
    os << "{"
       << "\"powerRounds\":" << extras.power.rounds
       << ",\"sgxRounds\":" << extras.sgx.rounds
       << ",\"sgxMtSteps\":" << extras.sgx.mtSteps
       << ",\"sgxMtMeasPerStep\":" << extras.sgx.mtMeasPerStep
       << "}";
}

} // namespace

std::string
jsonString(const std::string &text)
{
    return "\"" + jsonEscape(text) + "\"";
}

void
ResultSink::writeHeader(std::ostream &os)
{
    (void)os;
}

void
ResultSink::writeFooter(std::ostream &os)
{
    (void)os;
}

void
ResultSink::write(const std::vector<ExperimentResult> &results,
                  std::ostream &os)
{
    writeHeader(os);
    for (const ExperimentResult &res : results)
        writeRow(res, os);
    writeFooter(os);
}

void
ResultSink::writeFile(const std::vector<ExperimentResult> &results,
                      const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        lf_fatal("cannot open %s for writing", path.c_str());
    write(results, os);
    if (!os.good())
        lf_fatal("write to %s failed", path.c_str());
}

std::string
ResultSink::render(const std::vector<ExperimentResult> &results)
{
    std::ostringstream os;
    write(results, os);
    return os.str();
}

TextTableSink::TextTableSink(std::string title)
    : title_(std::move(title))
{
}

void
TextTableSink::annotatePaper(const std::string &label,
                             const std::string &cpu, PaperValues values)
{
    paper_[{label, cpu}] = std::move(values);
}

void
TextTableSink::writeHeader(std::ostream &os)
{
    (void)os;
    rows_.clear();
}

void
TextTableSink::writeRow(const ExperimentResult &res, std::ostream &os)
{
    (void)os; // Rendered in writeFooter(): alignment needs all rows.
    const std::string label =
        res.spec.label.empty() ? res.spec.channel : res.spec.label;
    std::string rate;
    std::string err;
    std::string seconds;
    if (res.ok) {
        rate = formatKbps(res.result.transmissionKbps);
        err = formatPercent(res.result.errorRate);
        seconds = formatFixed(res.result.seconds, 6);
    } else {
        rate = err = seconds = "-";
    }
    const auto paper = paper_.find({label, res.spec.cpu});
    if (paper != paper_.end()) {
        rate += " (paper " + paper->second.rate + ")";
        err += " (paper " + paper->second.error + ")";
    }
    rows_.push_back({label, res.spec.channel, res.spec.cpu,
                     std::to_string(res.spec.trial), rate, err,
                     seconds});
}

void
TextTableSink::writeFooter(std::ostream &os)
{
    TextTable table(title_);
    table.setHeader({"Label", "Channel", "CPU", "Trial",
                     "Tr. Rate (Kbps)", "Error Rate", "Sim s"});
    for (std::vector<std::string> &row : rows_)
        table.addRow(std::move(row));
    rows_.clear();
    os << table.render();
}

void
CsvSink::writeHeader(std::ostream &os)
{
    os << "label,channel,cpu,seed,trial,pattern,message_bits,"
          "preamble_bits,ok,skipped,error_rate,transmission_kbps,"
          "sim_seconds,error\n";
}

void
CsvSink::writeRow(const ExperimentResult &res, std::ostream &os)
{
    os << csvEscape(res.spec.label) << ","
       << csvEscape(res.spec.channel) << ","
       << csvEscape(res.spec.cpu) << ","
       << res.spec.seed << ","
       << res.spec.trial << ","
       << toString(res.spec.pattern) << ","
       << res.spec.messageBits << ",";
    if (res.ok)
        os << res.result.preambleBits;
    os << "," << (res.ok ? 1 : 0) << ","
       << (res.skipped ? 1 : 0) << ",";
    if (res.ok) {
        os << jsonNumber(res.result.errorRate) << ","
           << jsonNumber(res.result.transmissionKbps) << ","
           << jsonNumber(res.result.seconds) << ",";
    } else {
        os << ",,,";
    }
    os << csvEscape(res.error) << "\n";
}

JsonSink::JsonSink(std::string benchmark)
    : benchmark_(std::move(benchmark))
{
}

void
JsonSink::writeHeader(std::ostream &os)
{
    rows_ = 0;
    os << "{\n"
       << "  \"benchmark\": " << jsonString(benchmark_) << ",\n"
       << "  \"results\": [\n";
}

void
JsonSink::writeRow(const ExperimentResult &res, std::ostream &os)
{
    // The previous row's line is only terminated here (with or
    // without a separating comma) so the streamed bytes match the
    // seed batch format exactly.
    if (rows_ > 0)
        os << ",\n";
    ++rows_;
    os << "    {"
       << "\"label\":" << jsonString(res.spec.label)
       << ",\"channel\":" << jsonString(res.spec.channel)
       << ",\"cpu\":" << jsonString(res.spec.cpu)
       << ",\"seed\":" << res.spec.seed
       << ",\"trial\":" << res.spec.trial
       << ",\"pattern\":" << jsonString(toString(res.spec.pattern))
       << ",\"message_bits\":" << res.spec.messageBits
       << ",\"ok\":" << (res.ok ? "true" : "false")
       << ",\"skipped\":" << (res.skipped ? "true" : "false");
    if (!res.error.empty())
        os << ",\"error\":" << jsonString(res.error);
    if (res.ok) {
        os << ",\"preamble_bits\":" << res.result.preambleBits
           << ",\"error_rate\":" << jsonNumber(res.result.errorRate)
           << ",\"transmission_kbps\":"
           << jsonNumber(res.result.transmissionKbps)
           << ",\"sim_seconds\":" << jsonNumber(res.result.seconds)
           << ",\"mean_obs0\":" << jsonNumber(res.result.meanObs0)
           << ",\"mean_obs1\":" << jsonNumber(res.result.meanObs1)
           << ",\"sent\":"
           << jsonString(toBitString(res.result.sent))
           << ",\"received\":"
           << jsonString(toBitString(res.result.received))
           << ",\"config\":";
        writeConfigJson(res.result.config, os);
        os << ",\"extras\":";
        writeExtrasJson(res.extras, os);
        os << ",\"overrides\":{";
        bool first = true;
        for (const auto &[key, value] : res.spec.overrides) {
            os << (first ? "" : ",") << jsonString(key) << ":"
               << jsonNumber(value);
            first = false;
        }
        os << "}";
    }
    os << "}";
}

void
JsonSink::writeFooter(std::ostream &os)
{
    if (rows_ > 0)
        os << "\n";
    rows_ = 0;
    os << "  ]\n}\n";
}

std::string
benchJsonFileName(const std::string &bench_name)
{
    return "BENCH_" + bench_name + ".json";
}

} // namespace lf
