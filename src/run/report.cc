#include "run/report.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "run/sinks.hh"

namespace lf {
namespace bench {

namespace {

// jsonNumber()/jsonString() come from run/sinks.hh: one definition
// of the BENCH_*.json value format for both emitters.

std::string
jsonNumberArray(const std::vector<double> &values)
{
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i)
        out += (i ? "," : "") + jsonNumber(values[i]);
    return out + "]";
}

} // namespace

void
banner(const char *title)
{
    std::printf("==============================================\n");
    std::printf("%s\n", title);
    std::printf("==============================================\n");
}

std::string
cmpCell(double sim, const char *paper)
{
    return formatFixed(sim, 2) + " (paper " + paper + ")";
}

int
shapeCheck(const char *what, bool ok)
{
    std::printf("Shape check (%s): %s\n", what, ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

JsonReport::JsonReport(const std::string &benchmark)
{
    if (!benchmark.empty())
        string("benchmark", benchmark);
}

JsonReport &
JsonReport::field(const std::string &key, std::string rendered)
{
    fields_.push_back({key, std::move(rendered), nullptr});
    return *this;
}

JsonReport &
JsonReport::number(const std::string &key, double value)
{
    return field(key, jsonNumber(value));
}

JsonReport &
JsonReport::nullValue(const std::string &key)
{
    return field(key, "null");
}

JsonReport &
JsonReport::integer(const std::string &key, long long value)
{
    return field(key, std::to_string(value));
}

JsonReport &
JsonReport::boolean(const std::string &key, bool value)
{
    return field(key, value ? "true" : "false");
}

JsonReport &
JsonReport::string(const std::string &key, const std::string &value)
{
    return field(key, jsonString(value));
}

JsonReport &
JsonReport::numberArray(const std::string &key,
                        const std::vector<double> &values)
{
    return field(key, jsonNumberArray(values));
}

JsonReport &
JsonReport::stringArray(const std::string &key,
                        const std::vector<std::string> &values)
{
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i)
        out += (i ? "," : "") + jsonString(values[i]);
    return field(key, out + "]");
}

JsonReport &
JsonReport::numberMatrix(const std::string &key,
                         const std::vector<std::vector<double>> &values)
{
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i)
        out += (i ? "," : "") + jsonNumberArray(values[i]);
    return field(key, out + "]");
}

JsonReport &
JsonReport::object(const std::string &key)
{
    fields_.push_back({key, "", std::make_unique<JsonReport>()});
    return *fields_.back().child;
}

std::string
JsonReport::render() const
{
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        const Field &f = fields_[i];
        out += (i ? "," : "") + jsonString(f.key) + ":" +
            (f.child ? f.child->render() : f.rendered);
    }
    return out + "}";
}

void
JsonReport::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        lf_fatal("cannot open %s for writing", path.c_str());
    os << render() << "\n";
    if (!os.good())
        lf_fatal("write to %s failed", path.c_str());
}

} // namespace bench
} // namespace lf
