#include "run/report.hh"

#include <cstdio>

#include "common/table.hh"

namespace lf {
namespace bench {

void
banner(const char *title)
{
    std::printf("==============================================\n");
    std::printf("%s\n", title);
    std::printf("==============================================\n");
}

std::string
cmpCell(double sim, const char *paper)
{
    return formatFixed(sim, 2) + " (paper " + paper + ")";
}

int
shapeCheck(const char *what, bool ok)
{
    std::printf("Shape check (%s): %s\n", what, ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace bench
} // namespace lf
