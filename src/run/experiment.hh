/**
 * @file
 * Run descriptors for covert-channel experiments.
 *
 * An ExperimentSpec names everything one trial needs — the channel (by
 * registry name), the CPU model (by Table I name), the RNG seed, the
 * message, and any config overrides — so that a batch of specs can be
 * executed by the ExperimentRunner on any number of worker threads
 * with bit-identical results: every trial is a pure function of its
 * spec. resolveTrial() is the one path from spec to a bound
 * TrialContext (it subsumes the former per-facet resolveSpec*
 * functions); whether the context's Core is freshly constructed or
 * reset in place (the runner's per-worker reuse) never changes the
 * result.
 */

#ifndef LF_RUN_EXPERIMENT_HH
#define LF_RUN_EXPERIMENT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/message.hh"
#include "core/channel_registry.hh"
#include "core/trial_context.hh"
#include "defense/defense.hh"
#include "noise/environment.hh"
#include "obs/counters.hh"

namespace lf {

/** Everything needed to run one covert-channel trial. */
struct ExperimentSpec
{
    /** Canonical channel name (see allChannelNames()). */
    std::string channel;
    /** CPU model name (see allCpuModels()). */
    std::string cpu;
    /** Seed for the trial's Core (and, mixed, its message RNG). */
    std::uint64_t seed = 1;
    /** Trial index within a batch (informational; set by
     *  expandTrials()). */
    int trial = 0;

    MessagePattern pattern = MessagePattern::Alternating;
    std::size_t messageBits = 100;
    /** Calibration bits; < 0 uses the channel's configured default. */
    int preambleBits = -1;

    /** Optional free-form tag echoed into every sink row (bench
     *  binaries use the paper's row labels). */
    std::string label;

    /** ChannelConfig / extras overrides applied on top of the
     *  channel's registry defaults (keys as in
     *  applyChannelOverride()), plus "model."-prefixed CPU-model
     *  overrides (keys as in applyModelOverride()) applied to a
     *  per-trial copy of the named CPU model — ablation sweeps bend
     *  the machine, not just the channel — plus "env."-prefixed
     *  environment knobs (keys as in applyEnvOverride()) composing
     *  the trial's interference model, plus "defense."-prefixed
     *  mitigation knobs (keys as in applyDefenseOverride())
     *  composing the trial's defense deployment. std::map keeps
     *  application order deterministic. */
    std::map<std::string, double> overrides;
};

/** Outcome of one trial. */
struct ExperimentResult
{
    ExperimentSpec spec;
    bool ok = false;
    /** True when the channel does not apply to the CPU model (e.g. an
     *  MT channel on the SMT-disabled E-2288G); not an error. */
    bool skipped = false;
    std::string error;  //!< Reason when !ok.
    ChannelResult result;
    /** Resolved family-specific knobs the trial actually ran with
     *  (complements ChannelResult::config). Valid when ok. */
    ChannelExtras extras;
    /** Per-trial counter snapshot; non-null only for ok trials run
     *  with obs::setCountersEnabled(true). Never serialized by the
     *  standard sinks — enabling counters leaves every sink's bytes
     *  untouched (the on/off bit-identity contract). */
    std::shared_ptr<const obs::CounterSet> counters;
};

/**
 * Derive the seed of trial @p trial from batch seed @p base via a
 * splitmix64-style mix: decorrelated across trials, independent of
 * execution order and thread count.
 */
std::uint64_t deriveTrialSeed(std::uint64_t base, int trial);

/**
 * Expand @p spec into @p trials independent trials with derived
 * per-trial seeds (trial 0 keeps the base seed so a 1-trial batch is
 * identical to running the spec directly).
 */
std::vector<ExperimentSpec> expandTrials(const ExperimentSpec &spec,
                                         int trials);

/** The trial's message bits (deterministic in the spec alone). */
std::vector<bool> specMessage(const ExperimentSpec &spec);

/**
 * The one resolution path from spec to runnable trial: split the
 * override map four ways by key prefix (plain keys -> ChannelConfig/
 * extras, "model." -> a private copy of the named CPU model, "env."
 * -> the EnvironmentSpec, "defense." -> the DefenseSpec), range-check
 * everything, and bind @p ctx to the result (constructing — or, on a
 * rebind, resetting in place — its Core, Environment, Defense, and
 * trial RNG from the spec's seed).
 *
 * @param skipped When non-null, set to true (with ctx left unbound /
 *        on its previous trial) if the channel does not apply to the
 *        resolved model — e.g. an MT channel on the SMT-disabled
 *        E-2288G. Not an error.
 * @return an error message ("" on success) — unknown override keys
 *         and unusable resolved values are reported, not fatal, so a
 *         bad spec in a parallel batch becomes an error row.
 */
std::string resolveTrial(const ExperimentSpec &spec, TrialContext &ctx,
                         bool *skipped = nullptr);

/**
 * Validate names and config resolution without binding a context;
 * returns an error message or the empty string. (Support constraints
 * like SMT are reported via ExperimentResult::skipped, not here.)
 */
std::string validateSpec(const ExperimentSpec &spec);

/** Run one trial synchronously on the calling thread. */
ExperimentResult runExperiment(const ExperimentSpec &spec);

/**
 * Same, (re)binding @p ctx instead of constructing a fresh context —
 * the core-reuse path the streaming runner gives each worker.
 * Bit-identical to the fresh-context overload.
 */
ExperimentResult runExperiment(const ExperimentSpec &spec,
                               TrialContext &ctx);

} // namespace lf

#endif // LF_RUN_EXPERIMENT_HH
