/**
 * @file
 * Run descriptors for covert-channel experiments.
 *
 * An ExperimentSpec names everything one trial needs — the channel (by
 * registry name), the CPU model (by Table I name), the RNG seed, the
 * message, and any config overrides — so that a batch of specs can be
 * executed by the ExperimentRunner on any number of worker threads
 * with bit-identical results: each trial constructs its own Core from
 * its own seed and shares no state with its siblings.
 */

#ifndef LF_RUN_EXPERIMENT_HH
#define LF_RUN_EXPERIMENT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/message.hh"
#include "core/channel_registry.hh"
#include "defense/defense.hh"
#include "noise/environment.hh"

namespace lf {

/** Everything needed to run one covert-channel trial. */
struct ExperimentSpec
{
    /** Canonical channel name (see allChannelNames()). */
    std::string channel;
    /** CPU model name (see allCpuModels()). */
    std::string cpu;
    /** Seed for the trial's Core (and, mixed, its message RNG). */
    std::uint64_t seed = 1;
    /** Trial index within a batch (informational; set by
     *  expandTrials()). */
    int trial = 0;

    MessagePattern pattern = MessagePattern::Alternating;
    std::size_t messageBits = 100;
    /** Calibration bits; < 0 uses the channel's configured default. */
    int preambleBits = -1;

    /** Optional free-form tag echoed into every sink row (bench
     *  binaries use the paper's row labels). */
    std::string label;

    /** ChannelConfig / extras overrides applied on top of the
     *  channel's registry defaults (keys as in
     *  applyChannelOverride()), plus "model."-prefixed CPU-model
     *  overrides (keys as in applyModelOverride()) applied to a
     *  per-trial copy of the named CPU model — ablation sweeps bend
     *  the machine, not just the channel — plus "env."-prefixed
     *  environment knobs (keys as in applyEnvOverride()) composing
     *  the trial's interference model, plus "defense."-prefixed
     *  mitigation knobs (keys as in applyDefenseOverride())
     *  composing the trial's defense deployment. std::map keeps
     *  application order deterministic. */
    std::map<std::string, double> overrides;
};

/** Outcome of one trial. */
struct ExperimentResult
{
    ExperimentSpec spec;
    bool ok = false;
    /** True when the channel does not apply to the CPU model (e.g. an
     *  MT channel on the SMT-disabled E-2288G); not an error. */
    bool skipped = false;
    std::string error;  //!< Reason when !ok.
    ChannelResult result;
    /** Resolved family-specific knobs the trial actually ran with
     *  (complements ChannelResult::config). Valid when ok. */
    ChannelExtras extras;
};

/**
 * Derive the seed of trial @p trial from batch seed @p base via a
 * splitmix64-style mix: decorrelated across trials, independent of
 * execution order and thread count.
 */
std::uint64_t deriveTrialSeed(std::uint64_t base, int trial);

/**
 * Expand @p spec into @p trials independent trials with derived
 * per-trial seeds (trial 0 keeps the base seed so a 1-trial batch is
 * identical to running the spec directly).
 */
std::vector<ExperimentSpec> expandTrials(const ExperimentSpec &spec,
                                         int trials);

/** The trial's message bits (deterministic in the spec alone). */
std::vector<bool> specMessage(const ExperimentSpec &spec);

/**
 * Resolve @p spec's config: the channel's registry defaults with the
 * spec's overrides applied. The channel name must be registered.
 * @return an error message ("" on success) — unknown override keys
 *         and unusable resolved values are reported, not fatal, so a
 *         bad spec in a parallel batch becomes an error row.
 */
std::string resolveSpecConfig(const ExperimentSpec &spec,
                              ChannelConfig &cfg,
                              ChannelExtras &extras);

/**
 * Resolve @p spec's effective CPU model: the named model with the
 * spec's "model." overrides applied. The CPU name must be registered.
 * @return an error message ("" on success), same contract as
 *         resolveSpecConfig().
 */
std::string resolveSpecModel(const ExperimentSpec &spec,
                             CpuModel &model);

/**
 * Resolve @p spec's environment: a default (quiet) EnvironmentSpec
 * with the spec's "env." overrides applied and range-checked.
 * @return an error message ("" on success), same contract as
 *         resolveSpecConfig().
 */
std::string resolveSpecEnvironment(const ExperimentSpec &spec,
                                   EnvironmentSpec &env);

/**
 * Resolve @p spec's defense deployment: a default (inactive)
 * DefenseSpec with the spec's "defense." overrides applied and
 * range-checked. @return an error message ("" on success), same
 * contract as resolveSpecConfig().
 */
std::string resolveSpecDefense(const ExperimentSpec &spec,
                               DefenseSpec &defense);

/**
 * Validate names and config resolution; returns an error message or
 * the empty string. (Support constraints like SMT are reported via
 * ExperimentResult::skipped, not here.)
 */
std::string validateSpec(const ExperimentSpec &spec);

/** Run one trial synchronously on the calling thread. */
ExperimentResult runExperiment(const ExperimentSpec &spec);

} // namespace lf

#endif // LF_RUN_EXPERIMENT_HH
