/**
 * @file
 * Cartesian parameter sweeps over the ExperimentRunner.
 *
 * A SweepSpec names a grid — channel set x CPU set x message pattern
 * set x any number of config/model override axes — plus a trial count,
 * and expands it into one flat ExperimentSpec batch. The batch runs
 * through a single ExperimentRunner thread pool (no per-cell pool
 * churn), and per-cell statistics (mean/stddev error rate and rate,
 * effective rate, Shannon capacity estimate) fold incrementally out
 * of the result stream (SweepAccumulator) — a grid's summary costs
 * O(cells) memory however many trials run.
 *
 * Determinism rules, which make sweeps resumable and shardable:
 *  - expansion order is a pure function of the spec (channel-major,
 *    then CPU, then pattern, then axes with the last axis fastest);
 *  - every cell's seed is derived from the base seed and the cell's
 *    index in the *full* grid, so a shard (--shard i/n) computes
 *    exactly the rows the full run would, bit for bit;
 *  - trial seeds within a cell come from expandTrials().
 */

#ifndef LF_RUN_SWEEP_HH
#define LF_RUN_SWEEP_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "run/runner.hh"
#include "run/sinks.hh"

namespace lf {

/** One swept dimension: an override key and the values it takes.
 *  Keys are ChannelConfig/extras knobs (applyChannelOverride()),
 *  "model."-prefixed CPU knobs (applyModelOverride()), or
 *  "env."-prefixed environment knobs (applyEnvOverride()). */
struct SweepAxis
{
    std::string key;
    std::vector<double> values;
};

/** A cartesian experiment grid. */
struct SweepSpec
{
    /** Fixed row label for every cell; empty selects an automatic
     *  per-cell label (channel / pattern / "key=value" parts, only
     *  the dimensions that actually vary). */
    std::string label;

    std::vector<std::string> channels; //!< Registry names.
    std::vector<std::string> cpus;     //!< Table I model names.
    std::vector<MessagePattern> patterns = {
        MessagePattern::Alternating};
    std::vector<SweepAxis> axes;       //!< Swept override dimensions.

    /** Overrides applied to every cell (axes win on conflict —
     *  validateSweepSpec() rejects such specs up front). */
    std::map<std::string, double> baseOverrides;

    int trials = 1;            //!< Independent trials per cell.
    std::uint64_t seed = 1;    //!< Base seed of the whole sweep.
    std::size_t messageBits = 100;
    int preambleBits = -1;     //!< < 0 uses the channel's default.
};

/** A 1-of-n slice of a sweep: cell c belongs to shard c % count. */
struct SweepShard
{
    int index = 0;
    int count = 1;
};

/** Number of grid cells (trials excluded). */
std::size_t sweepCellCount(const SweepSpec &spec);

/**
 * Check the grid itself: non-empty dimensions, known channel/CPU/
 * override names, no duplicate or conflicting axis keys, sane trial
 * count. @return an error message or the empty string.
 */
std::string validateSweepSpec(const SweepSpec &spec);

/** Check a shard selector against a sweep. */
std::string validateSweepShard(const SweepSpec &spec,
                               const SweepShard &shard);

/**
 * Check override *values* up front, the way the CLI wants it: every
 * channel x CPU cell is probed with the base overrides, and every
 * axis value is probed in isolation on top of them, through the same
 * resolution path runExperiment() uses. "--set repetition=2" fails
 * here with the resolver's message ("repetition must be odd...")
 * instead of surfacing as per-trial error rows after the run starts.
 * Values that are only invalid in *combination* (two axes that clash
 * mid-grid) still become error rows. Call after validateSweepSpec()
 * succeeds. @return an error message or the empty string.
 */
std::string validateSweepSpecValues(const SweepSpec &spec);

/**
 * Expand @p spec (restricted to @p shard) into the flat, run-ready
 * ExperimentSpec batch. Fatal on an invalid spec/shard — call the
 * validators first when the input is user-supplied.
 */
std::vector<ExperimentSpec> expandSweep(const SweepSpec &spec,
                                        const SweepShard &shard = {});

/** expandSweep() then ExperimentRunner::run() in one thread pool. */
std::vector<ExperimentResult> runSweep(const SweepSpec &spec,
                                       const ExperimentRunner &runner,
                                       const SweepShard &shard = {});

/** Per-cell statistics over a result batch's trials. */
struct SweepCellSummary
{
    std::string label;
    std::string channel;
    std::string cpu;
    std::string pattern;
    std::map<std::string, double> overrides;

    int trials = 0;        //!< All rows of the cell.
    int okTrials = 0;
    int skippedTrials = 0;
    int failedTrials = 0;  //!< Error rows (not skips).

    /** Over ok trials only. */
    OnlineStats errorRate;
    OnlineStats transmissionKbps;
    OnlineStats seconds;
    /** Rate x (1 - error) per trial. */
    OnlineStats effectiveKbps;
    /** Rate x BSC capacity(error) per trial (src/common/stats). */
    OnlineStats capacityKbps;
};

/**
 * Incremental per-cell aggregation: add() folds one result into its
 * cell's statistics as the streaming runner delivers it, so a sweep
 * summary costs O(cells) memory however many trials stream through —
 * no full-batch buffering. Cells are keyed by everything in the spec
 * except seed and trial index, and reported in first-seen order;
 * feeding a whole batch in order reproduces aggregateSweep() exactly.
 */
class SweepAccumulator
{
  public:
    /** Fold one result into its cell (creating the cell on first
     *  sight). */
    void add(const ExperimentResult &res);

    /** Per-cell statistics so far, in first-seen order. */
    const std::vector<SweepCellSummary> &cells() const
    {
        return cells_;
    }

    /** Results folded in so far. */
    std::size_t resultCount() const { return count_; }

    /** Forget everything. */
    void clear();

  private:
    /** Serialized cell identity -> index into cells_. */
    std::map<std::string, std::size_t> index_;
    std::vector<SweepCellSummary> cells_;
    std::size_t count_ = 0;
};

/**
 * Batch convenience over SweepAccumulator: group a result batch by
 * cell — everything in the spec except seed and trial index —
 * preserving first-seen order, and accumulate the per-cell
 * statistics. Works on any ExperimentResult batch, sharded or not.
 */
std::vector<SweepCellSummary>
aggregateSweep(const std::vector<ExperimentResult> &results);

/**
 * Sink rendering the aggregated per-cell statistics as a text table:
 * one row per cell with trial counts, mean/stddev error and rate,
 * effective rate and capacity estimate. Streams into a
 * SweepAccumulator (O(cells) state); the table renders in
 * writeFooter().
 */
class SweepSummarySink : public ResultSink
{
  public:
    explicit SweepSummarySink(std::string title = "");

    void writeHeader(std::ostream &os) override;
    void writeRow(const ExperimentResult &res,
                  std::ostream &os) override;
    void writeFooter(std::ostream &os) override;

  private:
    std::string title_;
    SweepAccumulator accumulator_;
};

} // namespace lf

#endif // LF_RUN_SWEEP_HH
