/**
 * @file
 * Small reporting helpers shared by the bench binaries.
 *
 * Every bench prints simulated values next to the numbers the paper
 * reports for the same cell, so the *shape* agreement (who wins, rough
 * factors, orderings) can be checked at a glance; absolute agreement
 * is not expected of a calibrated simulator. The result-batch plumbing
 * itself lives in sweep.hh/sinks.hh — this header is only the shared
 * console dressing, replacing the per-bench copies that used to live
 * in bench/bench_util.hh.
 */

#ifndef LF_RUN_REPORT_HH
#define LF_RUN_REPORT_HH

#include <memory>
#include <string>
#include <vector>

namespace lf {
namespace bench {

/** Section banner on stdout. */
void banner(const char *title);

/** "X.XX (paper Y)" cell for sim-vs-paper tables. */
std::string cmpCell(double sim, const char *paper);

/** Print "Shape check (<what>): PASS|FAIL" and return the bench exit
 *  code (0 on pass, 1 on fail). */
int shapeCheck(const char *what, bool ok);

/**
 * Minimal ordered JSON-object writer for the measurement-style
 * benches (the fingerprint figures, the defense study) whose outputs
 * are named metrics rather than ExperimentResult batches — those keep
 * using JsonSink. Values render with the sinks' round-trip-exact
 * number format, so BENCH_*.json files stay byte-stable run to run.
 *
 *   JsonReport report("fig12");
 *   report.number("mean_intra_distance", study.meanIntraDistance);
 *   report.numberArray("trace", trace);
 *   JsonReport &nested = report.object("accuracy");
 *   nested.number("defended", 0.97);
 *   report.writeFile(benchJsonFileName("fig12"));
 */
class JsonReport
{
  public:
    /** @param benchmark Top-level "benchmark" field value; nested
     *  objects pass the empty string. */
    explicit JsonReport(const std::string &benchmark = "");

    JsonReport &number(const std::string &key, double value);
    /** A JSON null — "this metric was not measurable here" (e.g.
     *  thread-scaling ratios on hosts with too few cores), as opposed
     *  to a measured zero. */
    JsonReport &nullValue(const std::string &key);
    JsonReport &integer(const std::string &key, long long value);
    JsonReport &boolean(const std::string &key, bool value);
    JsonReport &string(const std::string &key,
                       const std::string &value);
    JsonReport &numberArray(const std::string &key,
                            const std::vector<double> &values);
    JsonReport &stringArray(const std::string &key,
                            const std::vector<std::string> &values);
    /** 2-D number array (e.g. a distance matrix). */
    JsonReport &numberMatrix(
        const std::string &key,
        const std::vector<std::vector<double>> &values);

    /** Add a nested object field and return a writer for it (valid
     *  until the next mutation of this report). */
    JsonReport &object(const std::string &key);

    /** The serialized object. */
    std::string render() const;

    /** render() to @p path; fatal on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    JsonReport &field(const std::string &key, std::string rendered);

    struct Field
    {
        std::string key;
        std::string rendered;   //!< Empty for nested objects.
        std::unique_ptr<JsonReport> child;
    };

    std::vector<Field> fields_;
};

} // namespace bench
} // namespace lf

#endif // LF_RUN_REPORT_HH
