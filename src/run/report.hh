/**
 * @file
 * Small reporting helpers shared by the bench binaries.
 *
 * Every bench prints simulated values next to the numbers the paper
 * reports for the same cell, so the *shape* agreement (who wins, rough
 * factors, orderings) can be checked at a glance; absolute agreement
 * is not expected of a calibrated simulator. The result-batch plumbing
 * itself lives in sweep.hh/sinks.hh — this header is only the shared
 * console dressing, replacing the per-bench copies that used to live
 * in bench/bench_util.hh.
 */

#ifndef LF_RUN_REPORT_HH
#define LF_RUN_REPORT_HH

#include <string>

namespace lf {
namespace bench {

/** Section banner on stdout. */
void banner(const char *title);

/** "X.XX (paper Y)" cell for sim-vs-paper tables. */
std::string cmpCell(double sim, const char *paper);

/** Print "Shape check (<what>): PASS|FAIL" and return the bench exit
 *  code (0 on pass, 1 on fail). */
int shapeCheck(const char *what, bool ok);

} // namespace bench
} // namespace lf

#endif // LF_RUN_REPORT_HH
