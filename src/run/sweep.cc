#include "run/sweep.hh"

#include <cstdio>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "sim/cpu_model.hh"

namespace lf {

namespace {

/** Cell seeds use their own salt so the cell chain never collides
 *  with the trial chain of deriveTrialSeed() (cell k's trial 0 must
 *  differ from cell 0's trial k). Cell 0 keeps the base seed so a
 *  one-cell sweep is identical to running the spec directly. */
std::uint64_t
deriveCellSeed(std::uint64_t base, std::size_t cell)
{
    if (cell == 0)
        return base;
    return splitmix64(base ^ splitmix64(
        static_cast<std::uint64_t>(cell) ^ 0x73776565702d6331ULL));
}

/** Shortest exact-enough rendering for axis labels ("d=3", not
 *  "d=3.000000"). */
std::string
axisValueString(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%g", value);
    return buf;
}

std::string
cellLabel(const SweepSpec &spec, const std::string &channel,
          MessagePattern pattern,
          const std::vector<std::size_t> &axis_pos)
{
    if (!spec.label.empty())
        return spec.label;
    std::string label;
    const auto append = [&label](const std::string &part) {
        if (!label.empty())
            label += " ";
        label += part;
    };
    if (spec.channels.size() > 1)
        append(channel);
    if (spec.patterns.size() > 1)
        append(toString(pattern));
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
        append(spec.axes[a].key + "=" +
               axisValueString(spec.axes[a].values[axis_pos[a]]));
    }
    return label.empty() ? channel : label;
}

/** Is @p key a knob applyChannelOverride()/applyModelOverride()/
 *  applyEnvOverride()/applyDefenseOverride() will accept? Probed
 *  against scratch targets. */
bool
knownOverrideKey(const std::string &key)
{
    if (isModelOverrideKey(key)) {
        CpuModel scratch = gold6226();
        return applyModelOverride(scratch, key, 1.0);
    }
    if (isEnvOverrideKey(key)) {
        EnvironmentSpec scratch;
        return applyEnvOverride(scratch, key, 1.0);
    }
    if (isDefenseOverrideKey(key)) {
        DefenseSpec scratch;
        return applyDefenseOverride(scratch, key, 1.0);
    }
    ChannelConfig cfg;
    ChannelExtras extras;
    return applyChannelOverride(cfg, extras, key, 1.0);
}

/** Odometer increment over the axis index vector (last axis fastest).
 *  @return false once the odometer wraps past the end. */
bool
advance(const SweepSpec &spec, std::vector<std::size_t> &axis_pos)
{
    for (std::size_t a = spec.axes.size(); a-- > 0;) {
        if (++axis_pos[a] < spec.axes[a].values.size())
            return true;
        axis_pos[a] = 0;
    }
    return false;
}

/** The per-cell identity of a result — its spec minus seed and trial
 *  index — serialized into one unambiguous lookup key. Field
 *  separators are control characters no label/channel name contains,
 *  and override values render round-trip-exact (jsonNumber), so two
 *  specs map to the same key iff they are the same cell. */
std::string
cellKeyOf(const ExperimentSpec &spec)
{
    std::string key;
    const auto append = [&key](const std::string &part) {
        key += part;
        key += '\x1f';
    };
    append(spec.label);
    append(spec.channel);
    append(spec.cpu);
    append(toString(spec.pattern));
    append(std::to_string(spec.messageBits));
    append(std::to_string(spec.preambleBits));
    for (const auto &[name, value] : spec.overrides) {
        append(name);
        append(jsonNumber(value));
    }
    return key;
}

} // namespace

std::size_t
sweepCellCount(const SweepSpec &spec)
{
    std::size_t cells = spec.channels.size() * spec.cpus.size() *
        spec.patterns.size();
    for (const SweepAxis &axis : spec.axes)
        cells *= axis.values.size();
    return cells;
}

std::string
validateSweepSpec(const SweepSpec &spec)
{
    if (spec.channels.empty())
        return "sweep needs at least one channel";
    if (spec.cpus.empty())
        return "sweep needs at least one CPU model";
    if (spec.patterns.empty())
        return "sweep needs at least one message pattern";
    if (spec.trials < 1)
        return "sweep needs at least one trial";
    if (spec.messageBits == 0)
        return "message must have at least one bit";
    for (const std::string &channel : spec.channels) {
        if (!hasChannel(channel))
            return "unknown channel \"" + channel + "\"";
    }
    for (const std::string &cpu : spec.cpus) {
        if (findCpuModel(cpu) == nullptr)
            return "unknown CPU model \"" + cpu + "\"";
    }
    for (const auto &[key, value] : spec.baseOverrides) {
        (void)value;
        if (!knownOverrideKey(key))
            return "unknown override key \"" + key + "\"";
    }
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
        const SweepAxis &axis = spec.axes[a];
        if (axis.values.empty())
            return "sweep axis \"" + axis.key + "\" has no values";
        if (!knownOverrideKey(axis.key))
            return "unknown sweep axis key \"" + axis.key + "\"";
        if (spec.baseOverrides.count(axis.key) != 0) {
            return "key \"" + axis.key +
                "\" is both swept and set as a fixed override";
        }
        for (std::size_t b = 0; b < a; ++b) {
            if (spec.axes[b].key == axis.key)
                return "duplicate sweep axis \"" + axis.key + "\"";
        }
    }
    return "";
}

std::string
validateSweepSpecValues(const SweepSpec &spec)
{
    ExperimentSpec probe;
    probe.messageBits = spec.messageBits;
    probe.preambleBits = spec.preambleBits;
    for (const std::string &channel : spec.channels) {
        probe.channel = channel;
        for (const std::string &cpu : spec.cpus) {
            probe.cpu = cpu;
            probe.overrides = spec.baseOverrides;
            std::string error = validateSpec(probe);
            if (!error.empty()) {
                return "invalid setting for channel " + channel +
                    " on " + cpu + ": " + error;
            }
            for (const SweepAxis &axis : spec.axes) {
                for (double value : axis.values) {
                    probe.overrides = spec.baseOverrides;
                    probe.overrides[axis.key] = value;
                    error = validateSpec(probe);
                    if (!error.empty()) {
                        return "invalid sweep value " + axis.key +
                            "=" + axisValueString(value) +
                            " for channel " + channel + " on " + cpu +
                            ": " + error;
                    }
                }
            }
        }
    }
    return "";
}

std::string
validateSweepShard(const SweepSpec &spec, const SweepShard &shard)
{
    if (shard.count < 1)
        return "shard count must be >= 1";
    if (shard.index < 0 || shard.index >= shard.count) {
        return "shard index " + std::to_string(shard.index) +
            " out of range [0, " + std::to_string(shard.count) + ")";
    }
    if (static_cast<std::size_t>(shard.count) > sweepCellCount(spec) &&
        sweepCellCount(spec) > 0) {
        return "more shards (" + std::to_string(shard.count) +
            ") than sweep cells (" +
            std::to_string(sweepCellCount(spec)) + ")";
    }
    return "";
}

std::vector<ExperimentSpec>
expandSweep(const SweepSpec &spec, const SweepShard &shard)
{
    std::string error = validateSweepSpec(spec);
    if (error.empty())
        error = validateSweepShard(spec, shard);
    if (!error.empty())
        lf_fatal("invalid sweep: %s", error.c_str());

    std::vector<ExperimentSpec> batch;
    std::size_t cell = 0;
    for (const std::string &channel : spec.channels) {
        for (const std::string &cpu : spec.cpus) {
            for (const MessagePattern pattern : spec.patterns) {
                std::vector<std::size_t> axis_pos(spec.axes.size(), 0);
                do {
                    const std::size_t this_cell = cell++;
                    if (static_cast<int>(this_cell %
                            static_cast<std::size_t>(shard.count)) !=
                        shard.index) {
                        continue;
                    }
                    ExperimentSpec cell_spec;
                    cell_spec.channel = channel;
                    cell_spec.cpu = cpu;
                    cell_spec.pattern = pattern;
                    cell_spec.messageBits = spec.messageBits;
                    cell_spec.preambleBits = spec.preambleBits;
                    cell_spec.label =
                        cellLabel(spec, channel, pattern, axis_pos);
                    cell_spec.overrides = spec.baseOverrides;
                    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
                        cell_spec.overrides[spec.axes[a].key] =
                            spec.axes[a].values[axis_pos[a]];
                    }
                    cell_spec.seed =
                        deriveCellSeed(spec.seed, this_cell);
                    for (ExperimentSpec &trial :
                         expandTrials(cell_spec, spec.trials)) {
                        batch.push_back(std::move(trial));
                    }
                } while (advance(spec, axis_pos));
            }
        }
    }
    return batch;
}

std::vector<ExperimentResult>
runSweep(const SweepSpec &spec, const ExperimentRunner &runner,
         const SweepShard &shard)
{
    return runner.run(expandSweep(spec, shard));
}

void
SweepAccumulator::add(const ExperimentResult &res)
{
    // Cells are looked up by key but reported in first-seen order.
    const auto [it, inserted] =
        index_.try_emplace(cellKeyOf(res.spec), cells_.size());
    if (inserted) {
        SweepCellSummary cell;
        cell.label = res.spec.label.empty() ? res.spec.channel
                                            : res.spec.label;
        cell.channel = res.spec.channel;
        cell.cpu = res.spec.cpu;
        cell.pattern = toString(res.spec.pattern);
        cell.overrides = res.spec.overrides;
        cells_.push_back(std::move(cell));
    }
    ++count_;
    SweepCellSummary &cell = cells_[it->second];
    ++cell.trials;
    if (res.skipped) {
        ++cell.skippedTrials;
        return;
    }
    if (!res.ok) {
        ++cell.failedTrials;
        return;
    }
    ++cell.okTrials;
    const double err = res.result.errorRate;
    const double kbps = res.result.transmissionKbps;
    cell.errorRate.add(err);
    cell.transmissionKbps.add(kbps);
    cell.seconds.add(res.result.seconds);
    cell.effectiveKbps.add(kbps * (1.0 - err));
    cell.capacityKbps.add(kbps * bscCapacity(err));
}

void
SweepAccumulator::clear()
{
    index_.clear();
    cells_.clear();
    count_ = 0;
}

std::vector<SweepCellSummary>
aggregateSweep(const std::vector<ExperimentResult> &results)
{
    SweepAccumulator accumulator;
    for (const ExperimentResult &res : results)
        accumulator.add(res);
    return accumulator.cells();
}

SweepSummarySink::SweepSummarySink(std::string title)
    : title_(std::move(title))
{
}

void
SweepSummarySink::writeHeader(std::ostream &os)
{
    (void)os;
    accumulator_.clear();
}

void
SweepSummarySink::writeRow(const ExperimentResult &res,
                           std::ostream &os)
{
    (void)os; // Rendered in writeFooter(); state is O(cells).
    accumulator_.add(res);
}

void
SweepSummarySink::writeFooter(std::ostream &os)
{
    TextTable table(title_.empty() ? "Sweep summary" : title_);
    table.setHeader({"Label", "Channel", "CPU", "Pattern", "ok/n",
                     "Err mean", "Err sd", "Rate mean (Kbps)",
                     "Rate sd", "Eff. rate", "Capacity (Kbps)"});
    for (const SweepCellSummary &cell : accumulator_.cells()) {
        std::string err_mean = "-";
        std::string err_sd = "-";
        std::string rate_mean = "-";
        std::string rate_sd = "-";
        std::string effective = "-";
        std::string capacity = "-";
        if (cell.okTrials > 0) {
            err_mean = formatPercent(cell.errorRate.mean());
            err_sd = formatPercent(cell.errorRate.stddev());
            rate_mean = formatKbps(cell.transmissionKbps.mean());
            rate_sd = formatKbps(cell.transmissionKbps.stddev());
            effective = formatKbps(cell.effectiveKbps.mean());
            capacity = formatKbps(cell.capacityKbps.mean());
        }
        table.addRow({cell.label, cell.channel, cell.cpu, cell.pattern,
                      std::to_string(cell.okTrials) + "/" +
                          std::to_string(cell.trials),
                      err_mean, err_sd, rate_mean, rate_sd, effective,
                      capacity});
    }
    os << table.render();
}

} // namespace lf
