/**
 * @file
 * Pluggable result sinks for ExperimentRunner batches.
 *
 * Three emitters cover the three consumers of experiment output:
 *   TextTableSink — human-readable table, optionally annotated with
 *                   the paper's published value per (label, cpu) cell
 *                   so sim-vs-paper shape can be checked at a glance;
 *   CsvSink       — flat rows for spreadsheets / pandas;
 *   JsonSink      — self-describing machine-readable rows (the
 *                   BENCH_*.json files the bench binaries emit).
 *
 * All sinks are deterministic functions of the result batch: output
 * is byte-identical regardless of the worker-thread count that
 * produced the results.
 */

#ifndef LF_RUN_SINKS_HH
#define LF_RUN_SINKS_HH

#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "run/experiment.hh"

namespace lf {

/** Interface: serialize a result batch to a stream. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    virtual void write(const std::vector<ExperimentResult> &results,
                       std::ostream &os) const = 0;

    /** write() to @p path; fatal on I/O failure. */
    void writeFile(const std::vector<ExperimentResult> &results,
                   const std::string &path) const;

    /** write() into a string (handy for tests and diffing). */
    std::string render(
        const std::vector<ExperimentResult> &results) const;
};

/** The paper's published numbers for one table cell. */
struct PaperValues
{
    std::string rate;  //!< e.g. "419.67" (Kbps), "-" if absent.
    std::string error; //!< e.g. "6.48%".
};

class TextTableSink : public ResultSink
{
  public:
    explicit TextTableSink(std::string title = "");

    /** Attach the paper's value for the (label, cpu) cell. */
    void annotatePaper(const std::string &label, const std::string &cpu,
                       PaperValues values);

    void write(const std::vector<ExperimentResult> &results,
               std::ostream &os) const override;

  private:
    std::string title_;
    std::map<std::pair<std::string, std::string>, PaperValues> paper_;
};

class CsvSink : public ResultSink
{
  public:
    void write(const std::vector<ExperimentResult> &results,
               std::ostream &os) const override;
};

class JsonSink : public ResultSink
{
  public:
    /** @param benchmark Top-level "benchmark" field value. */
    explicit JsonSink(std::string benchmark = "experiment");

    void write(const std::vector<ExperimentResult> &results,
               std::ostream &os) const override;

  private:
    std::string benchmark_;
};

/** Canonical output file name for a bench: "BENCH_<name>.json". */
std::string benchJsonFileName(const std::string &bench_name);

/** @name Shared JSON rendering
 *  One definition of the BENCH_*.json value format, used by JsonSink
 *  and bench::JsonReport alike so the two emitters cannot drift. */
/// @{
/** Round-trip-exact decimal rendering (17 significant digits);
 *  locale-independent and deterministic, so sink output can be
 *  byte-compared across runs and re-read without loss. */
std::string jsonNumber(double value);

/** Quoted, escaped JSON string literal. */
std::string jsonString(const std::string &text);
/// @}

} // namespace lf

#endif // LF_RUN_SINKS_HH
