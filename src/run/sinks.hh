/**
 * @file
 * Pluggable, streaming result sinks for ExperimentRunner output.
 *
 * Three emitters cover the three consumers of experiment output:
 *   TextTableSink — human-readable table, optionally annotated with
 *                   the paper's published value per (label, cpu) cell
 *                   so sim-vs-paper shape can be checked at a glance;
 *   CsvSink       — flat rows for spreadsheets / pandas;
 *   JsonSink      — self-describing machine-readable rows (the
 *                   BENCH_*.json files the bench binaries emit).
 *
 * Sinks stream: writeHeader() once, then writeRow() per result as the
 * runner's callback delivers it, then writeFooter() — so CSV/JSON
 * rows hit the stream while later trials are still running and a
 * million-row sweep never buffers its results. (The text table is
 * the exception: column alignment needs every row, so it accumulates
 * rows internally and renders in writeFooter() — it is the
 * eyeball-sized format.) The batch write() convenience is exactly
 * header + rows + footer, so batch and streamed output are
 * byte-identical; fed from a spec-order stream the bytes are also
 * identical at any worker-thread count.
 */

#ifndef LF_RUN_SINKS_HH
#define LF_RUN_SINKS_HH

#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "run/experiment.hh"

namespace lf {

/** Interface: serialize a result stream (or batch) to a stream. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** @name Streaming interface
     *  writeHeader() resets any per-run sink state, so one sink
     *  object can serialize several runs. */
    /// @{
    virtual void writeHeader(std::ostream &os);
    virtual void writeRow(const ExperimentResult &res,
                          std::ostream &os) = 0;
    virtual void writeFooter(std::ostream &os);
    /// @}

    /** Batch convenience: header, every row, footer. */
    void write(const std::vector<ExperimentResult> &results,
               std::ostream &os);

    /** write() to @p path; fatal on I/O failure. */
    void writeFile(const std::vector<ExperimentResult> &results,
                   const std::string &path);

    /** write() into a string (handy for tests and diffing). */
    std::string render(const std::vector<ExperimentResult> &results);
};

/** The paper's published numbers for one table cell. */
struct PaperValues
{
    std::string rate;  //!< e.g. "419.67" (Kbps), "-" if absent.
    std::string error; //!< e.g. "6.48%".
};

/** Human-readable table. Buffers rows internally (column alignment
 *  needs the full set) and renders in writeFooter(). */
class TextTableSink : public ResultSink
{
  public:
    explicit TextTableSink(std::string title = "");

    /** Attach the paper's value for the (label, cpu) cell. */
    void annotatePaper(const std::string &label, const std::string &cpu,
                       PaperValues values);

    void writeHeader(std::ostream &os) override;
    void writeRow(const ExperimentResult &res,
                  std::ostream &os) override;
    void writeFooter(std::ostream &os) override;

  private:
    std::string title_;
    std::map<std::pair<std::string, std::string>, PaperValues> paper_;
    std::vector<std::vector<std::string>> rows_;
};

class CsvSink : public ResultSink
{
  public:
    void writeHeader(std::ostream &os) override;
    void writeRow(const ExperimentResult &res,
                  std::ostream &os) override;
};

class JsonSink : public ResultSink
{
  public:
    /** @param benchmark Top-level "benchmark" field value. */
    explicit JsonSink(std::string benchmark = "experiment");

    void writeHeader(std::ostream &os) override;
    void writeRow(const ExperimentResult &res,
                  std::ostream &os) override;
    void writeFooter(std::ostream &os) override;

  private:
    std::string benchmark_;
    std::size_t rows_ = 0;
};

/** Canonical output file name for a bench: "BENCH_<name>.json". */
std::string benchJsonFileName(const std::string &bench_name);

/** @name Shared JSON rendering
 *  One definition of the BENCH_*.json value format, used by JsonSink
 *  and bench::JsonReport alike so the two emitters cannot drift. */
/// @{
/** Round-trip-exact decimal rendering (17 significant digits);
 *  locale-independent and deterministic, so sink output can be
 *  byte-compared across runs and re-read without loss. */
std::string jsonNumber(double value);

/** Quoted, escaped JSON string literal. */
std::string jsonString(const std::string &text);
/// @}

} // namespace lf

#endif // LF_RUN_SINKS_HH
