/**
 * @file
 * Streaming parallel executor for batches of ExperimentSpecs.
 *
 * Trials are embarrassingly parallel: each is a pure function of its
 * spec (seed included), so the runner fans a batch out across a
 * std::thread pool via an atomic work index. Each worker keeps one
 * TrialContext alive for its whole share of the batch and rebinds it
 * per trial (Core::reset() instead of per-trial Core construction) —
 * results are bit-identical to building everything afresh, without
 * the construction cost.
 *
 * Results *stream*: run(specs, callback) delivers each result on the
 * calling thread as it becomes available, so sinks can write rows and
 * sweep accumulators can fold cells while later trials are still
 * running — a million-trial sweep needs memory for the in-flight
 * window, not the whole batch. With StreamOrder::SpecOrder (the
 * default) delivery order is the spec order, making the stream — and
 * anything written from it — bit-identical at any thread count; a
 * bounded reorder window keeps workers from racing unboundedly ahead
 * of a slow consumer. The batch run() overload is a thin wrapper that
 * collects the stream into a vector.
 */

#ifndef LF_RUN_RUNNER_HH
#define LF_RUN_RUNNER_HH

#include <functional>
#include <vector>

#include "run/experiment.hh"

namespace lf {

/** How a streaming run() hands results to the callback. */
enum class StreamOrder
{
    /** Deliver in spec order: deterministic byte-for-byte output at
     *  any thread count (completed out-of-order results wait in the
     *  reorder window). */
    SpecOrder,
    /** Deliver each result as soon as it completes: lowest latency,
     *  but the order depends on scheduling. The result *set* is
     *  still bit-identical. */
    Completion,
};

class ExperimentRunner
{
  public:
    /** @param threads Worker count; 0 means hardware concurrency. */
    explicit ExperimentRunner(int threads = 0);

    /** Resolved worker count (>= 1). */
    int threads() const { return threads_; }

    /**
     * Per-worker Core reuse (default on): workers rebind one
     * TrialContext per trial instead of constructing a fresh Core.
     * Turning it off is only interesting for benchmarking the reuse
     * win — results are bit-identical either way.
     */
    void setCoreReuse(bool on) { coreReuse_ = on; }
    bool coreReuse() const { return coreReuse_; }

    /** Invoked on the runner's calling thread, once per spec. */
    using ResultCallback = std::function<void(const ExperimentResult &)>;

    /**
     * Run every spec, streaming results to @p on_result on the
     * calling thread (the callback never needs to be thread-safe).
     * An exception thrown by the callback stops the run (workers are
     * drained and joined) and is rethrown.
     */
    void run(const std::vector<ExperimentSpec> &specs,
             const ResultCallback &on_result,
             StreamOrder order = StreamOrder::SpecOrder) const;

    /**
     * Batch form: run every spec and return results in spec order.
     * Thread count affects wall time only, never the results.
     */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs) const;

    /** expandTrials() each spec, then run the concatenated batch. */
    std::vector<ExperimentResult>
    runTrials(const std::vector<ExperimentSpec> &specs,
              int trials) const;

  private:
    int threads_;
    bool coreReuse_ = true;
};

} // namespace lf

#endif // LF_RUN_RUNNER_HH
