/**
 * @file
 * Streaming parallel executor for batches of ExperimentSpecs.
 *
 * Trials are embarrassingly parallel: each is a pure function of its
 * spec (seed included), so the runner fans a batch out across a
 * std::thread pool via an atomic work index. Each worker keeps one
 * TrialContext alive for its whole share of the batch and rebinds it
 * per trial (Core::reset() instead of per-trial Core construction) —
 * results are bit-identical to building everything afresh, without
 * the construction cost.
 *
 * Results *stream*: run(specs, callback) delivers each result on the
 * calling thread as it becomes available, so sinks can write rows and
 * sweep accumulators can fold cells while later trials are still
 * running — a million-trial sweep needs memory for the in-flight
 * window, not the whole batch. With StreamOrder::SpecOrder (the
 * default) delivery order is the spec order, making the stream — and
 * anything written from it — bit-identical at any thread count; a
 * bounded reorder window keeps workers from racing unboundedly ahead
 * of a slow consumer. The batch run() overload is a thin wrapper that
 * collects the stream into a vector.
 *
 * The reorder window is a ring of completion slots, one per in-flight
 * ticket (see runner.cc for the claim protocol). Workers publish and
 * the consumer collects through per-slot atomics; the shared mutex
 * and condition variables are touched only when a thread actually has
 * to park — a worker because its slot has not been recycled yet (it
 * is a full window ahead of delivery), the consumer because the next
 * result is not in yet. On the contended path of the old
 * implementation every delivered row broadcast to every worker; now a
 * delivery signals at most the workers that are genuinely blocked,
 * and an idle window costs no wakeups at all.
 */

#ifndef LF_RUN_RUNNER_HH
#define LF_RUN_RUNNER_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "run/experiment.hh"

namespace lf {

namespace obs {
struct RunMetrics;
}

/** How a streaming run() hands results to the callback. */
enum class StreamOrder
{
    /** Deliver in spec order: deterministic byte-for-byte output at
     *  any thread count (completed out-of-order results wait in the
     *  reorder window). */
    SpecOrder,
    /** Deliver each result as soon as it completes: lowest latency,
     *  but the order depends on scheduling. The result *set* is
     *  still bit-identical. */
    Completion,
};

/** Coordination counters of one streaming run() (diagnostics: the
 *  throughput bench emits them and gates against wakeup storms). */
struct StreamStats
{
    /** Times a worker blocked because it was a full reorder window
     *  ahead of delivery. */
    std::uint64_t workerParks = 0;
    /** Times the consumer blocked waiting for the next result. */
    std::uint64_t consumerParks = 0;
    /** slot-free broadcasts issued (only ever sent while at least
     *  one worker is parked; the pre-PR-7 runner broadcast once per
     *  delivered row unconditionally). */
    std::uint64_t wakeBroadcasts = 0;
};

class ExperimentRunner
{
  public:
    /** @param threads Worker count; 0 means hardware concurrency. */
    explicit ExperimentRunner(int threads = 0);

    /** Resolved worker count (>= 1). */
    int threads() const { return threads_; }

    /**
     * Per-worker Core reuse (default on): workers rebind one
     * TrialContext per trial instead of constructing a fresh Core.
     * Turning it off is only interesting for benchmarking the reuse
     * win — results are bit-identical either way.
     */
    void setCoreReuse(bool on) { coreReuse_ = on; }
    bool coreReuse() const { return coreReuse_; }

    /** Reorder-window size (slots) a streaming run of this runner
     *  uses: how far workers may run ahead of delivery. */
    std::size_t reorderWindow() const
    {
        return reorderWindowFor(threads_);
    }

    /** The window a run with @p workers claimed threads uses. */
    static std::size_t reorderWindowFor(int workers);

    /**
     * Test/diagnostic hook, called on the claiming worker right
     * before each trial starts as probe(index, delivered): @p index
     * is the spec about to run, @p delivered the number of results
     * handed to the callback so far. Under StreamOrder::SpecOrder the
     * claim protocol guarantees index < delivered + reorderWindow() —
     * the probe is how the streaming tests assert workers never
     * outrun the window. (Under Completion order delivery can
     * additionally trail by up to the worker count, since consumption
     * is out of ticket order.) Must be thread-safe; null (the
     * default) disables it.
     */
    using TrialProbe =
        std::function<void(std::size_t index, std::size_t delivered)>;
    void setTrialProbe(TrialProbe probe)
    {
        trialProbe_ = std::move(probe);
    }

    /** Overwrite @p sink with the coordination counters at the end
     *  of every streaming run() (null, the default, disables the
     *  accounting). The sink must outlive the runs. */
    void setStatsSink(StreamStats *sink) { statsSink_ = sink; }

    /** Overwrite @p sink with the full obs::RunMetrics report
     *  (throughput, outcome counts, park/broadcast totals, prepared-
     *  cache traffic, reorder-window occupancy histogram) at the end
     *  of every non-empty streaming run(). Purely observational —
     *  results never depend on whether a sink is installed. Null (the
     *  default) disables the accounting; the sink must outlive the
     *  runs. */
    void setMetricsSink(obs::RunMetrics *sink) { metricsSink_ = sink; }

    /** Invoked on the runner's calling thread, once per spec. */
    using ResultCallback = std::function<void(const ExperimentResult &)>;

    /**
     * Run every spec, streaming results to @p on_result on the
     * calling thread (the callback never needs to be thread-safe).
     * An exception thrown by the callback stops the run (workers are
     * drained and joined) and is rethrown.
     */
    void run(const std::vector<ExperimentSpec> &specs,
             const ResultCallback &on_result,
             StreamOrder order = StreamOrder::SpecOrder) const;

    /**
     * Batch form: run every spec and return results in spec order.
     * Thread count affects wall time only, never the results.
     */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs) const;

    /** expandTrials() each spec, then run the concatenated batch. */
    std::vector<ExperimentResult>
    runTrials(const std::vector<ExperimentSpec> &specs,
              int trials) const;

  private:
    int threads_;
    bool coreReuse_ = true;
    TrialProbe trialProbe_;
    StreamStats *statsSink_ = nullptr;
    obs::RunMetrics *metricsSink_ = nullptr;
};

} // namespace lf

#endif // LF_RUN_RUNNER_HH
