/**
 * @file
 * Parallel executor for batches of ExperimentSpecs.
 *
 * Trials are embarrassingly parallel: each constructs its own Core
 * from its own seed, so the runner just fans the batch out across a
 * std::thread pool via an atomic work index. Results land at the index
 * of their spec, which together with per-trial seeding makes the
 * output bit-identical at any worker count.
 */

#ifndef LF_RUN_RUNNER_HH
#define LF_RUN_RUNNER_HH

#include <vector>

#include "run/experiment.hh"

namespace lf {

class ExperimentRunner
{
  public:
    /** @param threads Worker count; 0 means hardware concurrency. */
    explicit ExperimentRunner(int threads = 0);

    /** Resolved worker count (>= 1). */
    int threads() const { return threads_; }

    /**
     * Run every spec and return results in spec order. Thread count
     * affects wall time only, never the results.
     */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs) const;

    /** expandTrials() each spec, then run the concatenated batch. */
    std::vector<ExperimentResult>
    runTrials(const std::vector<ExperimentSpec> &specs,
              int trials) const;

  private:
    int threads_;
};

} // namespace lf

#endif // LF_RUN_RUNNER_HH
