#include "run/experiment.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "frontend/prepared.hh"
#include "obs/trace.hh"
#include "sim/cpu_model.hh"
#include "sim/snapshot.hh"

namespace lf {

std::uint64_t
deriveTrialSeed(std::uint64_t base, int trial)
{
    if (trial == 0)
        return base;
    return splitmix64(base ^ splitmix64(
        static_cast<std::uint64_t>(trial)));
}

std::vector<ExperimentSpec>
expandTrials(const ExperimentSpec &spec, int trials)
{
    lf_assert(trials >= 1, "need at least one trial, got %d", trials);
    std::vector<ExperimentSpec> expanded;
    expanded.reserve(static_cast<std::size_t>(trials));
    for (int t = 0; t < trials; ++t) {
        ExperimentSpec trial_spec = spec;
        trial_spec.trial = t;
        trial_spec.seed = deriveTrialSeed(spec.seed, t);
        expanded.push_back(std::move(trial_spec));
    }
    return expanded;
}

std::vector<bool>
specMessage(const ExperimentSpec &spec)
{
    // Only MessagePattern::Random consults the RNG; mix the seed so
    // the message stream is decorrelated from the Core's noise stream.
    Rng rng(splitmix64(spec.seed ^ 0x6d65737361676573ULL));
    return makeMessage(spec.pattern, spec.messageBits, rng);
}

namespace {

/** @name Per-facet resolvers
 *  The four facets of a spec (channel config, CPU model, environment,
 *  defense), each resolved from its own key-prefix slice of the
 *  override map. Internal: resolveTrial() is the public entry point
 *  that applies all four and binds a TrialContext. */
/// @{
std::string
resolveConfig(const ExperimentSpec &spec, ChannelConfig &cfg,
              ChannelExtras &extras)
{
    const ChannelInfo &info = channelInfo(spec.channel);
    cfg = info.defaultConfig;
    extras = info.defaultExtras;
    for (const auto &[key, value] : spec.overrides) {
        if (isModelOverrideKey(key))
            continue; // resolveModel()'s job.
        if (isEnvOverrideKey(key))
            continue; // resolveEnvironment()'s job.
        if (isDefenseOverrideKey(key))
            continue; // resolveDefense()'s job.
        if (!applyChannelOverride(cfg, extras, key, value)) {
            return "unknown config override \"" + key +
                "\" for channel " + spec.channel;
        }
    }

    // Mirror the channel constructor/setup asserts: a bad override
    // must come back as an error row, not abort a worker thread.
    if (cfg.d < 1 || cfg.d > cfg.N) {
        return "d=" + std::to_string(cfg.d) +
            " out of range (need 1 <= d <= N=" +
            std::to_string(cfg.N) + ")";
    }
    if (cfg.M > cfg.N + 1) {
        return "M=" + std::to_string(cfg.M) + " too large (need M <= "
            "N+1=" + std::to_string(cfg.N + 1) + ")";
    }
    if (cfg.targetSet < 0 || cfg.targetSet >= 32)
        return "targetSet=" + std::to_string(cfg.targetSet) +
            " out of range [0, 32)";
    if (cfg.altSet < 0 || cfg.altSet >= 32)
        return "altSet=" + std::to_string(cfg.altSet) +
            " out of range [0, 32)";
    if (cfg.rounds < 1 || cfg.initIters < 1 || cfg.r < 1 ||
        cfg.mtSteps < 1 || cfg.mtMeasPerStep < 1 ||
        cfg.mtSenderIters < 1) {
        return "iteration counts (rounds, initIters, r, mtSteps,"
               " mtMeasPerStep, mtSenderIters) must be >= 1";
    }
    if (cfg.repetition < 1 || cfg.repetition % 2 == 0) {
        return "repetition must be odd and >= 1, got " +
            std::to_string(cfg.repetition);
    }
    if (extras.power.rounds < 1 || extras.sgx.rounds < 1 ||
        extras.sgx.mtSteps < 1 || extras.sgx.mtMeasPerStep < 1) {
        return "power/SGX round counts must be >= 1";
    }
    if (info.requiresSmt && cfg.targetSet < 16) {
        return "MT channels need a partition-mapped targetSet >= 16,"
               " got " + std::to_string(cfg.targetSet);
    }
    if (info.name.find("misalignment") != std::string::npos &&
        cfg.M <= cfg.d) {
        return "misalignment channels need M > d (got M=" +
            std::to_string(cfg.M) + ", d=" + std::to_string(cfg.d) +
            ")";
    }

    const int preamble =
        spec.preambleBits >= 0 ? spec.preambleBits : cfg.preambleBits;
    if (preamble < 2)
        return "preamble too short (" + std::to_string(preamble) +
            " bits; need >= 2)";
    return "";
}

std::string
resolveModel(const ExperimentSpec &spec, CpuModel &model)
{
    const CpuModel *base = findCpuModel(spec.cpu);
    if (base == nullptr)
        return "unknown CPU model \"" + spec.cpu + "\"";
    model = *base;
    for (const auto &[key, value] : spec.overrides) {
        if (!isModelOverrideKey(key))
            continue;
        if (!applyModelOverride(model, key, value))
            return "unknown model override \"" + key + "\"";
    }
    if (!(model.freqGhz > 0.0))
        return "model.freqGhz must be > 0";
    if (model.noise.stddevCycles < 0.0 ||
        model.noise.spikeCycles < 0.0 ||
        model.noise.jitterPerKcycle < 0.0 ||
        model.sgx.entryJitterStddev < 0.0 ||
        model.rapl.noiseStddevMicroJoules < 0.0) {
        return "model noise magnitudes must be >= 0";
    }
    if (model.noise.spikeProb < 0.0 || model.noise.spikeProb > 1.0)
        return "model.spikeProb must be in [0, 1]";
    if (model.deadlockKcycles < 1)
        return "model.deadlock_kcycles must be >= 1";
    if (!(model.rapl.updateIntervalUs > 0.0) ||
        !(model.rapl.quantumMicroJoules > 0.0)) {
        return "RAPL interval and quantum must be > 0";
    }
    return "";
}

std::string
resolveEnvironment(const ExperimentSpec &spec, EnvironmentSpec &env)
{
    env = EnvironmentSpec{};
    for (const auto &[key, value] : spec.overrides) {
        if (!isEnvOverrideKey(key))
            continue;
        if (!applyEnvOverride(env, key, value))
            return "unknown environment override \"" + key + "\"";
    }
    return validateEnvironmentSpec(env);
}

std::string
resolveDefense(const ExperimentSpec &spec, DefenseSpec &defense)
{
    defense = DefenseSpec{};
    for (const auto &[key, value] : spec.overrides) {
        if (!isDefenseOverrideKey(key))
            continue;
        if (!applyDefenseOverride(defense, key, value))
            return "unknown defense override \"" + key + "\"";
    }
    return validateDefenseSpec(defense);
}

/**
 * The warm-snapshot cell key: exactly the spec fields that determine
 * the post-calibration machine state. Seed, trial index, message
 * bits/pattern and label are deliberately absent — the snapshot is
 * only ever captured when calibration proved itself seed-independent
 * (the RNG tripwire), and the message phase runs live per trial.
 * Mirrors the PreparedChain key discipline: resolved identity, not
 * incidental identity. Overrides carry the model/env/defense folds;
 * std::map iteration keeps the rendering canonical.
 */
std::string
warmSnapshotKey(const ExperimentSpec &spec)
{
    std::ostringstream key;
    key << spec.channel << '|' << spec.cpu << "|pre="
        << spec.preambleBits;
    char buf[40];
    for (const auto &[name, value] : spec.overrides) {
        std::snprintf(buf, sizeof buf, "%.17g", value);
        key << '|' << name << '=' << buf;
    }
    return key.str();
}

/** Resolve all four facets without binding anything. */
std::string
resolveFacets(const ExperimentSpec &spec, CpuModel &model,
              ChannelConfig &cfg, ChannelExtras &extras,
              EnvironmentSpec &env, DefenseSpec &defense)
{
    if (!hasChannel(spec.channel))
        return "unknown channel \"" + spec.channel + "\"";
    if (spec.messageBits == 0)
        return "message must have at least one bit";
    const std::string model_error = resolveModel(spec, model);
    if (!model_error.empty())
        return model_error;
    const std::string env_error = resolveEnvironment(spec, env);
    if (!env_error.empty())
        return env_error;
    const std::string defense_error = resolveDefense(spec, defense);
    if (!defense_error.empty())
        return defense_error;
    return resolveConfig(spec, cfg, extras);
}
/// @}

} // namespace

std::string
validateSpec(const ExperimentSpec &spec)
{
    CpuModel model;
    ChannelConfig cfg;
    ChannelExtras extras;
    EnvironmentSpec env;
    DefenseSpec defense;
    return resolveFacets(spec, model, cfg, extras, env, defense);
}

std::string
resolveTrial(const ExperimentSpec &spec, TrialContext &ctx,
             bool *skipped)
{
    if (skipped != nullptr)
        *skipped = false;
    CpuModel model;
    ChannelConfig cfg;
    ChannelExtras extras;
    EnvironmentSpec env;
    DefenseSpec defense;
    const std::string error =
        resolveFacets(spec, model, cfg, extras, env, defense);
    if (!error.empty())
        return error;
    if (!channelSupportedOn(spec.channel, model)) {
        if (skipped != nullptr)
            *skipped = true;
        return "channel " + spec.channel + " not supported on " +
            spec.cpu;
    }
    // bind() folds the defense's model-level mitigations (RAPL
    // coarsening) into the context's model copy before the Core is
    // built/reset.
    ctx.bind(model, spec.seed, cfg, extras, env, defense,
             spec.preambleBits);
    return "";
}

ExperimentResult
runExperiment(const ExperimentSpec &spec)
{
    TrialContext ctx;
    return runExperiment(spec, ctx);
}

ExperimentResult
runExperiment(const ExperimentSpec &spec, TrialContext &ctx)
{
    ExperimentResult out;
    out.spec = spec;

    // Counter collection and trace phases only *read* (and the
    // prepared-cache delta reads thread-local tallies), so results
    // are bit-identical with either switched on or off.
    const bool counters_on = obs::countersEnabled();
    const std::uint64_t prep_hits =
        counters_on ? preparedCacheThreadHits() : 0;
    const std::uint64_t prep_misses =
        counters_on ? preparedCacheThreadMisses() : 0;
    const std::uint64_t snap_hits =
        counters_on ? snapshotCacheThreadHits() : 0;
    const std::uint64_t snap_misses =
        counters_on ? snapshotCacheThreadMisses() : 0;
    const std::uint64_t snap_bypasses =
        counters_on ? snapshotCacheThreadBypasses() : 0;

    {
        obs::TraceScope span("resolve");
        out.error = resolveTrial(spec, ctx, &out.skipped);
    }
    if (!out.error.empty())
        return out;

    const std::uint64_t prepare_start =
        obs::traceEnabled() ? obs::traceNowUs() : 0;
    auto channel = makeChannel(spec.channel, ctx);
    obs::traceComplete("prepare", prepare_start);

    // Warm-snapshot fast path (sim/snapshot.hh): the first trial of a
    // sweep cell calibrates and — when the RNG tripwire proves its
    // calibration seed-independent — publishes the post-calibration
    // state; later trials of the cell restore it and run straight
    // into the message phase. Stochastic cells get a negative entry
    // and transparently calibrate cold every time. Either way the
    // result is bit-identical to the plain transmit() composition.
    WarmSnapshotPtr snap;
    std::string cell_key;
    SnapshotOutcome outcome = SnapshotOutcome::Disabled;
    if (warmSnapshotsApplicable()) {
        cell_key = warmSnapshotKey(spec);
        outcome = lookupWarmSnapshot(cell_key, snap);
    }

    CovertChannel::Calibration calib;
    if (outcome == SnapshotOutcome::Hit) {
        const std::uint64_t restore_start =
            obs::traceEnabled() ? obs::traceNowUs() : 0;
        channel->prepareMachine(ctx);
        restoreWarmSnapshot(ctx, *snap);
        calib = snap->calibration;
        obs::traceComplete("snapshot_restore", restore_start);
    } else {
        const std::uint64_t calibrate_start =
            obs::traceEnabled() ? obs::traceNowUs() : 0;
        calib = channel->calibrate(ctx);
        obs::traceComplete("calibrate", calibrate_start);
        if (outcome == SnapshotOutcome::Miss) {
            if (!calib.rngUntouched) {
                markWarmSnapshotBypass(cell_key);
            } else if (WarmSnapshotPtr fresh =
                           captureWarmSnapshot(ctx, calib)) {
                publishWarmSnapshot(cell_key, std::move(fresh));
            } else {
                markWarmSnapshotBypass(cell_key);
            }
        }
    }

    const std::uint64_t transmit_start =
        obs::traceEnabled() ? obs::traceNowUs() : 0;
    out.result = channel->transmitMessage(specMessage(spec), ctx, calib);
    obs::traceComplete("transmit", transmit_start);
    out.extras = ctx.extras();
    out.ok = true;

    if (counters_on) {
        auto set = std::make_shared<obs::CounterSet>(
            obs::collectCoreCounters(ctx.core()));
        set->preparedCacheHits =
            preparedCacheThreadHits() - prep_hits;
        set->preparedCacheMisses =
            preparedCacheThreadMisses() - prep_misses;
        set->snapshotHits = snapshotCacheThreadHits() - snap_hits;
        set->snapshotMisses =
            snapshotCacheThreadMisses() - snap_misses;
        set->snapshotBypasses =
            snapshotCacheThreadBypasses() - snap_bypasses;
        out.counters = std::move(set);
    }
    return out;
}

} // namespace lf
