#include "run/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "frontend/prepared.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace lf {

namespace {

/** One trial, exception-safe: anything thrown becomes an error row so
 *  a bad spec never kills a worker. */
ExperimentResult
runOne(const ExperimentSpec &spec, TrialContext *ctx)
{
    try {
        return ctx != nullptr ? runExperiment(spec, *ctx)
                              : runExperiment(spec);
    } catch (const std::exception &e) {
        ExperimentResult out;
        out.spec = spec;
        out.ok = false;
        out.error = e.what();
        return out;
    }
}

/**
 * One completion slot of the reorder ring (Vyukov bounded-queue
 * style). Ticket i lives in slot i % window, and the slot's `seq`
 * encodes its state:
 *
 *   seq == i              free for the producer of ticket i
 *                         (initially seq == slot index; the consumer
 *                         recycles a consumed slot to i + window);
 *   seq == i + 1          ticket i's result is published and ready.
 *
 * The producer claims by observing seq == i, writes `result`, and
 * publishes with seq = i + 1; the consumer observes readiness, moves
 * the result out, and recycles with seq = i + window. seq is the only
 * synchronisation on the hot path — the mutex below is touched only
 * to park.
 */
struct alignas(64) Slot
{
    std::atomic<std::uint64_t> seq{0};
    ExperimentResult result;
};

} // namespace

ExperimentRunner::ExperimentRunner(int threads) : threads_(threads)
{
    if (threads_ <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads_ = hw > 0 ? static_cast<int>(hw) : 1;
    }
}

std::size_t
ExperimentRunner::reorderWindowFor(int workers)
{
    // Large enough that workers keep streaming while the consumer
    // handles a burst, small enough that in-flight memory stays
    // O(threads).
    return std::max<std::size_t>(
        64, static_cast<std::size_t>(workers < 1 ? 1 : workers) * 8);
}

void
ExperimentRunner::run(const std::vector<ExperimentSpec> &specs,
                      const ResultCallback &on_result,
                      StreamOrder order) const
{
    lf_assert(on_result != nullptr, "streaming run needs a callback");
    if (specs.empty())
        return;

    const std::size_t n = specs.size();
    const int workers = static_cast<int>(
        std::min<std::size_t>(n, static_cast<std::size_t>(threads_)));

    // Metrics are accumulated locally and copied into the sink at the
    // end, mirroring the StreamStats contract. The prepared-cache
    // totals are process-wide, so the delta attributes concurrent
    // runs' traffic too — one runner at a time, the normal case, is
    // exact.
    obs::RunMetrics metrics;
    const std::uint64_t prep_hits =
        metricsSink_ != nullptr ? preparedCacheHits() : 0;
    const std::uint64_t prep_misses =
        metricsSink_ != nullptr ? preparedCacheMisses() : 0;
    const auto run_start = std::chrono::steady_clock::now();
    const auto count_outcome = [&](const ExperimentResult &res) {
        ++metrics.trials;
        if (res.skipped)
            ++metrics.skippedTrials;
        else if (res.ok)
            ++metrics.okTrials;
        else
            ++metrics.errorTrials;
    };
    const auto finish_metrics = [&](std::size_t window) {
        if (metricsSink_ == nullptr)
            return;
        metrics.workers = workers;
        metrics.reorderWindow = window;
        metrics.preparedCacheHits = preparedCacheHits() - prep_hits;
        metrics.preparedCacheMisses =
            preparedCacheMisses() - prep_misses;
        metrics.seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              run_start)
                              .count();
        metrics.trialsPerSec = metrics.seconds > 0.0
            ? static_cast<double>(metrics.trials) / metrics.seconds
            : 0.0;
        *metricsSink_ = metrics;
    };

    if (workers <= 1) {
        // Single-threaded: compute and deliver inline. Both stream
        // orders coincide with spec order.
        TrialContext ctx;
        TrialContext *reuse = coreReuse_ ? &ctx : nullptr;
        for (std::size_t i = 0; i < n; ++i) {
            if (trialProbe_)
                trialProbe_(i, i);
            const std::uint64_t trial_start =
                obs::traceEnabled() ? obs::traceNowUs() : 0;
            const ExperimentResult res = runOne(specs[i], reuse);
            obs::traceComplete("trial", trial_start, i, true);
            if (metricsSink_ != nullptr) {
                count_outcome(res);
                ++metrics.windowOccupancy[0];
            }
            const std::uint64_t deliver_start =
                obs::traceEnabled() ? obs::traceNowUs() : 0;
            on_result(res);
            obs::traceComplete("deliver", deliver_start);
        }
        if (statsSink_ != nullptr)
            *statsSink_ = StreamStats{};
        finish_metrics(reorderWindowFor(1));
        return;
    }

    // Workers claim spec indices through an atomic ticket counter and
    // publish into a ring of completion slots; the calling thread is
    // the only consumer, delivering either in spec order or as
    // results land. The ring bounds how far workers run ahead of
    // delivery, so memory stays O(threads + window) however large the
    // batch is. All steady-state coordination is the per-slot seq
    // atomics; `mutex` and the condvars exist only to park, and the
    // Dekker-style flags below (`consumerParked`, `blockedWorkers`)
    // make every wakeup conditional on somebody actually sleeping:
    //  - producer publishes seq (seq_cst), then loads consumerParked;
    //    the consumer stores consumerParked (seq_cst), then re-checks
    //    seq — at least one side observes the other, so the consumer
    //    never sleeps through a publish;
    //  - symmetrically, a worker bumps blockedWorkers (seq_cst), then
    //    re-checks its slot; the consumer recycles seq (seq_cst),
    //    then loads blockedWorkers — a recycle never goes unnoticed.
    const std::size_t window = reorderWindowFor(workers);

    auto slots = std::make_unique<Slot[]>(window);
    for (std::size_t k = 0; k < window; ++k)
        slots[k].seq.store(k, std::memory_order_relaxed);

    std::mutex mutex;
    std::condition_variable resultReady; // consumer parks here
    std::condition_variable slotFree;    // workers park here
    std::atomic<std::uint64_t> next{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<bool> cancelled{false};
    std::atomic<bool> consumerParked{false};
    std::atomic<int> blockedWorkers{0};
    std::atomic<std::uint64_t> workerParks{0};
    std::atomic<std::uint64_t> consumerParks{0};
    std::atomic<std::uint64_t> wakeBroadcasts{0};

    auto work = [&]() {
        TrialContext ctx;
        TrialContext *reuse = coreReuse_ ? &ctx : nullptr;
        for (;;) {
            const std::uint64_t i = next.fetch_add(1);
            if (i >= n)
                return;
            Slot &slot = slots[i % window];
            if (slot.seq.load() != i) {
                // A full window ahead of delivery: park until the
                // consumer recycles this slot.
                obs::TraceScope park_span("worker_park");
                std::unique_lock<std::mutex> lock(mutex);
                workerParks.fetch_add(1, std::memory_order_relaxed);
                blockedWorkers.fetch_add(1);
                slotFree.wait(lock, [&] {
                    return slot.seq.load() == i || cancelled.load();
                });
                blockedWorkers.fetch_sub(1);
            }
            if (cancelled.load())
                return;
            if (trialProbe_)
                trialProbe_(i, delivered.load());
            const std::uint64_t trial_start =
                obs::traceEnabled() ? obs::traceNowUs() : 0;
            slot.result = runOne(specs[i], reuse);
            obs::traceComplete("trial", trial_start, i, true);
            slot.seq.store(i + 1); // publish (seq_cst)
            if (consumerParked.load()) {
                // One consumer; taking the mutex serialises with its
                // wait entry so the notify cannot be lost.
                std::lock_guard<std::mutex> lock(mutex);
                resultReady.notify_one();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(work);

    const auto shutdown = [&]() {
        cancelled.store(true);
        next.store(n); // no new tickets
        {
            std::lock_guard<std::mutex> lock(mutex);
            slotFree.notify_all();
        }
        for (std::thread &thread : pool)
            thread.join();
    };

    // Park until pred() holds. pred reads only atomics, so checking
    // it outside the mutex first keeps the fast path lock-free; the
    // consumerParked handshake (see above) closes the sleep race.
    const auto consumerWait = [&](auto &&pred) {
        if (pred())
            return;
        obs::TraceScope park_span("consumer_park");
        consumerParked.store(true);
        consumerParks.fetch_add(1, std::memory_order_relaxed);
        {
            std::unique_lock<std::mutex> lock(mutex);
            resultReady.wait(lock, pred);
        }
        consumerParked.store(false);
    };

    // Hand one published slot to the callback. The slot is recycled
    // *before* the callback runs so workers stream on while the
    // consumer writes rows; at most the genuinely parked workers are
    // woken (notify_all because they park on distinct slots — the
    // non-matching ones re-check their seq and sleep again).
    const auto deliver = [&](Slot &slot, std::uint64_t recycled_seq) {
        ExperimentResult result = std::move(slot.result);
        slot.result = ExperimentResult{};
        if (metricsSink_ != nullptr || obs::traceEnabled()) {
            // Window occupancy at this delivery: claimed tickets not
            // yet handed to the callback. Sampled on the consumer
            // only, so the histogram needs no synchronisation.
            const std::uint64_t claimed =
                std::min<std::uint64_t>(next.load(), n);
            const std::uint64_t occ = claimed - delivered.load();
            obs::traceCounter("window_occupancy", occ);
            if (metricsSink_ != nullptr) {
                count_outcome(result);
                const std::size_t bucket = std::min<std::size_t>(
                    static_cast<std::size_t>(occ) *
                        obs::RunMetrics::kOccupancyBuckets / window,
                    obs::RunMetrics::kOccupancyBuckets - 1);
                ++metrics.windowOccupancy[bucket];
            }
        }
        delivered.fetch_add(1);
        slot.seq.store(recycled_seq); // recycle (seq_cst)
        if (blockedWorkers.load() > 0) {
            wakeBroadcasts.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mutex);
            slotFree.notify_all();
        }
        on_result(result);
    };

    try {
        if (order == StreamOrder::SpecOrder) {
            for (std::uint64_t d = 0; d < n; ++d) {
                Slot &slot = slots[d % window];
                consumerWait([&] { return slot.seq.load() == d + 1; });
                deliver(slot, d + window);
            }
        } else {
            // Completion order: collect any published slot. Slot k
            // holds a ready ticket t (t % window == k) exactly when
            // seq == t + 1, i.e. seq % window == (k + 1) % window.
            const auto readyTicket = [&](std::size_t k) -> std::int64_t {
                const std::uint64_t s = slots[k].seq.load();
                if (s % window == (k + 1) % window)
                    return static_cast<std::int64_t>(s - 1);
                return -1;
            };
            std::uint64_t count = 0;
            while (count < n) {
                std::size_t k = 0;
                consumerWait([&] {
                    for (std::size_t j = 0; j < window; ++j) {
                        if (readyTicket(j) >= 0) {
                            k = j;
                            return true;
                        }
                    }
                    return false;
                });
                const std::uint64_t ticket =
                    static_cast<std::uint64_t>(readyTicket(k));
                deliver(slots[k], ticket + window);
                ++count;
            }
        }
    } catch (...) {
        shutdown();
        throw;
    }
    shutdown();
    if (statsSink_ != nullptr) {
        statsSink_->workerParks = workerParks.load();
        statsSink_->consumerParks = consumerParks.load();
        statsSink_->wakeBroadcasts = wakeBroadcasts.load();
    }
    if (metricsSink_ != nullptr) {
        metrics.workerParks = workerParks.load();
        metrics.consumerParks = consumerParks.load();
        metrics.wakeBroadcasts = wakeBroadcasts.load();
    }
    finish_metrics(window);
}

std::vector<ExperimentResult>
ExperimentRunner::run(const std::vector<ExperimentSpec> &specs) const
{
    std::vector<ExperimentResult> results;
    results.reserve(specs.size());
    run(specs,
        [&results](const ExperimentResult &res) {
            results.push_back(res);
        },
        StreamOrder::SpecOrder);
    return results;
}

std::vector<ExperimentResult>
ExperimentRunner::runTrials(const std::vector<ExperimentSpec> &specs,
                            int trials) const
{
    lf_assert(trials >= 1, "need at least one trial, got %d", trials);
    std::vector<ExperimentSpec> batch;
    batch.reserve(specs.size() * static_cast<std::size_t>(trials));
    for (const ExperimentSpec &spec : specs) {
        for (ExperimentSpec &trial_spec : expandTrials(spec, trials))
            batch.push_back(std::move(trial_spec));
    }
    return run(batch);
}

} // namespace lf
