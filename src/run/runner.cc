#include "run/runner.hh"

#include <atomic>
#include <exception>
#include <thread>

#include "common/logging.hh"

namespace lf {

ExperimentRunner::ExperimentRunner(int threads) : threads_(threads)
{
    if (threads_ <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads_ = hw > 0 ? static_cast<int>(hw) : 1;
    }
}

std::vector<ExperimentResult>
ExperimentRunner::run(const std::vector<ExperimentSpec> &specs) const
{
    std::vector<ExperimentResult> results(specs.size());
    if (specs.empty())
        return results;

    const int workers = static_cast<int>(
        std::min<std::size_t>(specs.size(),
                              static_cast<std::size_t>(threads_)));

    std::atomic<std::size_t> next{0};
    auto work = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= specs.size())
                return;
            try {
                results[i] = runExperiment(specs[i]);
            } catch (const std::exception &e) {
                results[i].spec = specs[i];
                results[i].ok = false;
                results[i].error = e.what();
            }
        }
    };

    if (workers <= 1) {
        work();
        return results;
    }

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(work);
    for (std::thread &thread : pool)
        thread.join();
    return results;
}

std::vector<ExperimentResult>
ExperimentRunner::runTrials(const std::vector<ExperimentSpec> &specs,
                            int trials) const
{
    lf_assert(trials >= 1, "need at least one trial, got %d", trials);
    std::vector<ExperimentSpec> batch;
    batch.reserve(specs.size() * static_cast<std::size_t>(trials));
    for (const ExperimentSpec &spec : specs) {
        for (ExperimentSpec &trial_spec : expandTrials(spec, trials))
            batch.push_back(std::move(trial_spec));
    }
    return run(batch);
}

} // namespace lf
