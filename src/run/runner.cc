#include "run/runner.hh"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.hh"

namespace lf {

namespace {

/** One trial, exception-safe: anything thrown becomes an error row so
 *  a bad spec never kills a worker. */
ExperimentResult
runOne(const ExperimentSpec &spec, TrialContext *ctx)
{
    try {
        return ctx != nullptr ? runExperiment(spec, *ctx)
                              : runExperiment(spec);
    } catch (const std::exception &e) {
        ExperimentResult out;
        out.spec = spec;
        out.ok = false;
        out.error = e.what();
        return out;
    }
}

} // namespace

ExperimentRunner::ExperimentRunner(int threads) : threads_(threads)
{
    if (threads_ <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads_ = hw > 0 ? static_cast<int>(hw) : 1;
    }
}

void
ExperimentRunner::run(const std::vector<ExperimentSpec> &specs,
                      const ResultCallback &on_result,
                      StreamOrder order) const
{
    lf_assert(on_result != nullptr, "streaming run needs a callback");
    if (specs.empty())
        return;

    const int workers = static_cast<int>(
        std::min<std::size_t>(specs.size(),
                              static_cast<std::size_t>(threads_)));

    if (workers <= 1) {
        // Single-threaded: compute and deliver inline. Both stream
        // orders coincide with spec order.
        TrialContext ctx;
        TrialContext *reuse = coreReuse_ ? &ctx : nullptr;
        for (const ExperimentSpec &spec : specs)
            on_result(runOne(spec, reuse));
        return;
    }

    // Workers claim spec indices through an atomic counter and park
    // finished results in `completed`; the calling thread is the only
    // consumer, delivering either in spec order (holding back
    // out-of-order finishers) or as they land. The reorder window
    // bounds how far workers run ahead of delivery, so memory stays
    // O(threads + window) however large the batch is.
    const std::size_t window =
        std::max<std::size_t>(64, static_cast<std::size_t>(workers) * 8);

    std::mutex mutex;
    std::condition_variable resultReady;
    std::condition_variable windowSpace;
    std::map<std::size_t, ExperimentResult> completed;
    std::size_t delivered = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};

    auto work = [&]() {
        TrialContext ctx;
        TrialContext *reuse = coreReuse_ ? &ctx : nullptr;
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= specs.size())
                return;
            {
                std::unique_lock<std::mutex> lock(mutex);
                windowSpace.wait(lock, [&] {
                    return i < delivered + window || cancelled.load();
                });
            }
            if (cancelled.load())
                return;
            ExperimentResult result = runOne(specs[i], reuse);
            {
                std::lock_guard<std::mutex> lock(mutex);
                completed.emplace(i, std::move(result));
            }
            resultReady.notify_one();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(work);

    const auto shutdown = [&]() {
        cancelled.store(true);
        next.store(specs.size());
        windowSpace.notify_all();
        for (std::thread &thread : pool)
            thread.join();
    };

    try {
        std::unique_lock<std::mutex> lock(mutex);
        while (delivered < specs.size()) {
            resultReady.wait(lock, [&] {
                if (completed.empty())
                    return false;
                return order == StreamOrder::Completion ||
                    completed.begin()->first == delivered;
            });
            while (!completed.empty() &&
                   (order == StreamOrder::Completion ||
                    completed.begin()->first == delivered)) {
                auto node = completed.extract(completed.begin());
                ++delivered;
                windowSpace.notify_all();
                lock.unlock();
                on_result(node.mapped());
                lock.lock();
            }
        }
    } catch (...) {
        shutdown();
        throw;
    }
    shutdown();
}

std::vector<ExperimentResult>
ExperimentRunner::run(const std::vector<ExperimentSpec> &specs) const
{
    std::vector<ExperimentResult> results;
    results.reserve(specs.size());
    run(specs,
        [&results](const ExperimentResult &res) {
            results.push_back(res);
        },
        StreamOrder::SpecOrder);
    return results;
}

std::vector<ExperimentResult>
ExperimentRunner::runTrials(const std::vector<ExperimentSpec> &specs,
                            int trials) const
{
    lf_assert(trials >= 1, "need at least one trial, got %d", trials);
    std::vector<ExperimentSpec> batch;
    batch.reserve(specs.size() * static_cast<std::size_t>(trials));
    for (const ExperimentSpec &spec : specs) {
        for (ExperimentSpec &trial_spec : expandTrials(spec, trials))
            batch.push_back(std::move(trial_spec));
    }
    return run(batch);
}

} // namespace lf
