/**
 * @file
 * Argument-parsing helpers shared by the lf_run CLI and its tests.
 *
 * Everything here is strict on purpose: numbers must consume their
 * whole token ("40x" is rejected, std::stod would silently read 40),
 * duplicate keys are an error (silently keeping the last --set d=...
 * hid typos), and every function reports failures as returned error
 * strings so the CLI can print them without exiting from library
 * code.
 */

#ifndef LF_RUN_CLI_HH
#define LF_RUN_CLI_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "run/sweep.hh"

namespace lf {

/** Parse a double consuming the entire token; rejects empty input,
 *  trailing garbage, and non-finite values. */
bool parseStrictDouble(const std::string &text, double &out);

/** Parse a non-negative integer consuming the entire token. */
bool parseStrictUint64(const std::string &text, std::uint64_t &out);

/** Parse an int consuming the entire token. */
bool parseStrictInt(const std::string &text, int &out);

/**
 * Parse one --set argument ("KEY=VALUE") into @p overrides. Rejects
 * malformed tokens, unparsable values, and keys already present from
 * an earlier --set. The grammar is key-agnostic — ChannelConfig,
 * "model.*", and "env.*" keys all pass through here; key *existence*
 * (and a key that is also a sweep axis) is rejected later by
 * validateSweepSpec().
 * @return an error message or the empty string.
 */
std::string parseSetArg(const std::string &text,
                        std::map<std::string, double> &overrides);

/**
 * Parse one --sweep argument into @p axes. Grammar, comma-separated:
 *
 *   KEY=LO:HI:STEP   inclusive range (STEP > 0, LO <= HI)
 *   KEY=V1|V2|...    explicit value list
 *   KEY=VALUE        single value
 *
 * e.g. "d=20:200:20" or "d=1:8:1,rounds=5|10|20". Duplicate keys
 * across all --sweep arguments are rejected.
 * @return an error message or the empty string.
 */
std::string parseSweepArg(const std::string &text,
                          std::vector<SweepAxis> &axes);

/** Parse an "i/n" shard selector (0 <= i < n). */
std::string parseShardArg(const std::string &text, SweepShard &shard);

/**
 * Rate-limited live progress line on stderr, shared by `lf_run
 * --progress` and `lf_campaign run-shard --progress`: carriage-
 * return-overwritten "done/total, trials/sec, ETA" plus an optional
 * caller extra (the campaign appends its cache-hit rate). Purely
 * observational — it never touches stdout, so piped output stays
 * clean.
 */
class ProgressMeter
{
  public:
    /** @param label Tag printed as "[label]"; @param total Work-item
     *  count the ETA is computed against. */
    ProgressMeter(std::string label, std::size_t total);

    /** Injectable time source for tests (default: steady_clock).
     *  Install before the first update(); installing one restarts
     *  the meter. */
    using Clock =
        std::function<std::chrono::steady_clock::time_point()>;
    void setClock(Clock clock);

    /** Redirect the drawn line (default: stderr). Tests point this
     *  at a tmpfile; null suppresses drawing entirely (the rate/ETA
     *  getters still update). */
    void setSink(std::FILE *sink);

    /**
     * Report @p done items complete (monotonic). Redraws at most
     * every 0.1 s, plus exactly one unthrottled final redraw when
     * @p done first reaches the total (repeat final updates fall
     * back to the throttle instead of spamming the line). @p extra
     * is appended verbatim to the line.
     *
     * The displayed rate is a moving-window average (~5 s of recent
     * samples), not the lifetime mean: after a burst — e.g. a
     * resumed campaign replaying thousands of cached rows in
     * milliseconds — a lifetime rate would keep promising an
     * absurdly near ETA for the rest of the run. Every call feeds
     * the window, throttled or not, so bursts between redraws still
     * shape the next drawn rate.
     */
    void update(std::size_t done, const std::string &extra = "");

    /** Terminate the progress line (newline) if anything was drawn. */
    void finish();

    /** Terminate by overwriting the progress line with @p line (the
     *  final frame becomes a durable summary — `lf_run --progress`
     *  ends on the RunMetrics one-liner instead of a stale ETA). The
     *  replacement is padded to cover the old frame, then newline-
     *  terminated. If nothing was ever drawn the line still prints,
     *  so short runs get their summary too. */
    void finishWith(const std::string &line);

    /** @name Last computed values (for tests and callers) */
    /// @{
    /** Windowed trials/s as of the last update (0 until the window
     *  spans any time). */
    double rate() const { return rate_; }
    /** Remaining-work estimate in seconds from the windowed rate
     *  (0 while the rate is 0). */
    double etaSeconds() const { return eta_; }
    /// @}

  private:
    std::chrono::steady_clock::time_point now() const;
    void recomputeRate(std::chrono::steady_clock::time_point t,
                       std::size_t done);

    std::string label_;
    std::size_t total_;
    std::FILE *sink_;
    Clock clock_; //!< Null: use steady_clock directly.
    bool drew_ = false;
    bool finalDrawn_ = false;
    double rate_ = 0.0;
    double eta_ = 0.0;
    std::chrono::steady_clock::time_point lastUpdate_;
    /** (time, done) samples covering the rate window. */
    std::deque<std::pair<std::chrono::steady_clock::time_point,
                         std::size_t>>
        samples_;
};

/**
 * The registry catalog the CLI prints for --list-channels: every
 * registered channel (name, constraints, defaults, description) plus
 * the CPU-model names. Rendered from the registry itself, so the
 * listing cannot drift from what --channel accepts.
 */
std::string renderChannelCatalog();

/**
 * The override-key catalog the CLI prints for --list-axes: every key
 * --set/--sweep accepts, grouped by family (ChannelConfig/extras,
 * "model." CPU knobs, "env." environment knobs, "defense."
 * mitigation knobs). Sourced from the same key tables the override
 * appliers use, so the listing cannot drift from the parser.
 */
std::string renderOverrideKeyCatalog();

/**
 * The counter catalog the CLI prints for --list-counters: every
 * obs::CounterSet field (name and description), rendered from
 * obs::counterCatalog() itself so the listing cannot drift from what
 * the counters actually record. scripts/check_docs.sh diffs this
 * against docs/OBSERVABILITY.md.
 */
std::string renderCounterCatalog();

} // namespace lf

#endif // LF_RUN_CLI_HH
