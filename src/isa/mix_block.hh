/**
 * @file
 * Builders for the paper's attack workloads (Sec. IV-D..IV-H).
 *
 * The canonical *instruction mix block* is 4 mov + 1 jmp: 25 bytes
 * (fits one 32-byte DSB window) decoding to 5 micro-ops (fits one DSB
 * line). Blocks are chained by their terminating jmp; chains that map
 * to the same DSB set are produced by spacing block starts by
 * kDsbAliasStride (= sets x window = 1024 B) so that addr[9:5] is
 * constant.
 */

#ifndef LF_ISA_MIX_BLOCK_HH
#define LF_ISA_MIX_BLOCK_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/program.hh"

namespace lf {

/** Bytes per DSB window (one micro-op cache line covers one window). */
constexpr std::uint64_t kDsbWindowBytes = 32;

/** Number of DSB sets (single-thread mode). */
constexpr std::uint64_t kDsbNumSets = 32;

/** Address stride that preserves the DSB set index addr[9:5]. */
constexpr std::uint64_t kDsbAliasStride = kDsbNumSets * kDsbWindowBytes;

/** Byte offset used to misalign a block (half a window). */
constexpr std::uint64_t kMisalignOffset = kDsbWindowBytes / 2;

/** DSB set index of an address in single-thread (32-set) mode. */
inline std::uint64_t
dsbSetOf(Addr addr)
{
    return (addr >> 5) & (kDsbNumSets - 1);
}

/** One block position in a chain. */
struct BlockSpec
{
    int way = 0;            //!< Alias index: which 1 KiB copy to use.
    bool misaligned = false; //!< Offset the start by kMisalignOffset.
};

/** A built chain: the program plus each block's start address. */
struct ChainProgram
{
    Program program;
    std::vector<Addr> blockStarts;
    Addr loopHead = 0;      //!< First block (the chain's entry).
    /** Architectural instructions retired by one pass over the loop
     *  body (used to drive iteration-counted execution). */
    std::uint64_t instsPerIteration = 0;
};

/**
 * Build a looping chain of instruction mix blocks.
 *
 * Each block is 4 mov + 1 jmp; block i's jmp targets block i+1 and the
 * final block jumps back to the first, forming an endless loop (run
 * length is controlled by the executor). All blocks map to DSB set
 * @p set (before misalignment): block i starts at
 * `base + spec.way * 1024 + set * 32 (+16 if misaligned)`.
 *
 * @param base Base address; its low 10 bits must be zero.
 * @param set Target DSB set in [0, 32).
 * @param specs Way/alignment of each block, in chain order.
 */
ChainProgram buildMixBlockChain(Addr base, int set,
                                const std::vector<BlockSpec> &specs);

/**
 * Convenience: a chain of @p aligned_blocks aligned blocks followed by
 * @p misaligned_blocks misaligned blocks, ways assigned sequentially
 * starting at @p first_way.
 */
ChainProgram buildAlignedMisalignedChain(Addr base, int set,
                                         int aligned_blocks,
                                         int misaligned_blocks,
                                         int first_way = 0);

/**
 * Build a non-looping (single-pass) chain: the final block's jmp
 * targets a HALT stub placed after the last block.
 */
ChainProgram buildMixBlockPass(Addr base, int set,
                               const std::vector<BlockSpec> &specs);

/**
 * The fingerprinting attacker's loop (Sec. XI-A): @p nops 1-byte nop
 * instructions plus a closing jmp. With the default 100 nops the loop
 * spans two 64-byte i-cache lines, does not fit the 64-entry LSD, but
 * fits the DSB.
 */
ChainProgram buildNopLoop(Addr base, int nops = 100);

/** LCP issue orders for the Fig. 4 / slow-switch workloads. */
enum class LcpPattern {
    Mixed,    //!< normal add / LCP add alternating (maximizes switches)
    Ordered,  //!< all normal adds, then all LCP adds
};

/**
 * Build the Fig. 4 loop: 2*r add instructions (r normal + r LCP'd in
 * the given pattern) plus a closing jmp.
 */
ChainProgram buildLcpAddLoop(Addr base, LcpPattern pattern, int r = 16);

} // namespace lf

#endif // LF_ISA_MIX_BLOCK_HH
