/**
 * @file
 * x86-lite static instruction representation.
 *
 * The simulator does not interpret operand semantics; it models the
 * *frontend-relevant* properties of each instruction: its byte length
 * (which windows/cache lines it occupies), its micro-op expansion, its
 * prefixes (notably the 0x66 Length Changing Prefix the paper's
 * slow-switch attack abuses), and its control-flow behaviour.
 */

#ifndef LF_ISA_INSTRUCTION_HH
#define LF_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace lf {

/** The subset of x86 operations the workloads in the paper need. */
enum class Opcode : std::uint8_t {
    MOV_RR,    //!< mov r64, r64 — the paper's mix-block filler.
    ADD_RR,    //!< add r64, r64 — Fig. 4 / slow-switch workloads.
    ADD_LCP,   //!< 66-prefixed add r16, r16 (length changing prefix).
    NOP,       //!< 1-byte nop — the fingerprinting attacker's filler.
    JMP,       //!< Unconditional direct jmp rel32.
    JCC,       //!< Conditional direct branch (Spectre gadget).
    LOAD,      //!< mov r64, [mem] — Spectre / L1D baselines.
    STORE,     //!< mov [mem], r64.
    CLFLUSH,   //!< clflush [mem] — Flush+Reload baselines.
    LFENCE,    //!< Serializing fence.
    HALT,      //!< Simulator pseudo-op: thread stops at this point.
};

const char *toString(Opcode op);

/** Default encoded byte length for an opcode. */
std::uint8_t defaultLength(Opcode op);

/** Default micro-op expansion count for an opcode. */
std::uint8_t defaultUops(Opcode op);

/**
 * One statically laid-out instruction in a Program.
 *
 * Control flow: JMP always transfers to target. JCC consults a
 * condition source at execution time (see Program::CondFn). All other
 * opcodes fall through to addr + length.
 */
struct StaticInst
{
    Opcode op = Opcode::NOP;
    Addr addr = 0;             //!< Virtual address of the first byte.
    std::uint8_t length = 1;   //!< Encoded length in bytes.
    std::uint8_t uops = 1;     //!< Micro-ops produced when decoded.
    bool lcp = false;          //!< Carries a length-changing prefix.
    Addr target = 0;           //!< Branch target (JMP / JCC).
    Addr memAddr = 0;          //!< Data address (LOAD/STORE/CLFLUSH).
    int condId = 0;            //!< Condition selector for JCC.

    bool isBranch() const { return op == Opcode::JMP || op == Opcode::JCC; }
    bool isCondBranch() const { return op == Opcode::JCC; }
    bool isMem() const
    {
        return op == Opcode::LOAD || op == Opcode::STORE;
    }
    bool isHalt() const { return op == Opcode::HALT; }

    /** Address of the byte after this instruction. */
    Addr nextAddr() const { return addr + length; }

    /** Whether decoding this instruction needs the complex decoder. */
    bool isComplex() const { return uops > 1; }

    /** Debug rendering, e.g. "0x41880: mov (5B, 1uop)". */
    std::string toString() const;
};

} // namespace lf

#endif // LF_ISA_INSTRUCTION_HH
