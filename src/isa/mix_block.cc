#include "isa/mix_block.hh"

#include "common/logging.hh"

namespace lf {

namespace {

Addr
blockStartAddr(Addr base, int set, const BlockSpec &spec)
{
    lf_assert((base & (kDsbAliasStride - 1)) == 0,
              "chain base 0x%llx is not 1 KiB aligned",
              static_cast<unsigned long long>(base));
    lf_assert(set >= 0 && set < static_cast<int>(kDsbNumSets),
              "DSB set %d out of range", set);
    Addr addr = base + static_cast<Addr>(spec.way) * kDsbAliasStride +
        static_cast<Addr>(set) * kDsbWindowBytes;
    if (spec.misaligned)
        addr += kMisalignOffset;
    return addr;
}

/** Emit one 4-mov + 1-jmp block at @p start, jumping to @p target. */
void
emitMixBlock(Assembler &as, Addr start, Addr target)
{
    as.org(start);
    for (int i = 0; i < 4; ++i)
        as.mov();
    as.jmp(target);
    // Block invariants from Sec. IV-D: 25 bytes, 5 micro-ops.
    lf_assert(as.cursor() - start == 25, "mix block must be 25 bytes");
}

ChainProgram
buildChainImpl(Addr base, int set, const std::vector<BlockSpec> &specs,
               bool looping)
{
    lf_assert(!specs.empty(), "chain needs at least one block");

    std::vector<Addr> starts;
    starts.reserve(specs.size());
    for (const auto &spec : specs)
        starts.push_back(blockStartAddr(base, set, spec));

    Assembler as(starts.front());
    for (std::size_t i = 0; i < starts.size(); ++i) {
        const bool last = i + 1 == starts.size();
        Addr next;
        if (!last) {
            next = starts[i + 1];
        } else if (looping) {
            next = starts.front();
        } else {
            // Jump to a HALT stub placed just after this block.
            next = starts[i] + 32;
        }
        emitMixBlock(as, starts[i], next);
    }
    if (!looping) {
        as.org(starts.back() + 32);
        as.halt();
    }

    ChainProgram chain;
    chain.program = as.take();
    chain.program.setEntry(starts.front());
    chain.blockStarts = std::move(starts);
    chain.loopHead = chain.blockStarts.front();
    // 5 instructions (4 mov + 1 jmp) per block, plus the HALT stub on
    // single-pass chains.
    chain.instsPerIteration = specs.size() * 5 + (looping ? 0 : 1);
    return chain;
}

} // namespace

ChainProgram
buildMixBlockChain(Addr base, int set, const std::vector<BlockSpec> &specs)
{
    return buildChainImpl(base, set, specs, true);
}

ChainProgram
buildMixBlockPass(Addr base, int set, const std::vector<BlockSpec> &specs)
{
    return buildChainImpl(base, set, specs, false);
}

ChainProgram
buildAlignedMisalignedChain(Addr base, int set, int aligned_blocks,
                            int misaligned_blocks, int first_way)
{
    lf_assert(aligned_blocks >= 0 && misaligned_blocks >= 0 &&
              aligned_blocks + misaligned_blocks > 0,
              "bad block counts %d + %d", aligned_blocks,
              misaligned_blocks);
    std::vector<BlockSpec> specs;
    specs.reserve(static_cast<std::size_t>(aligned_blocks +
                                           misaligned_blocks));
    int way = first_way;
    for (int i = 0; i < aligned_blocks; ++i)
        specs.push_back({way++, false});
    for (int i = 0; i < misaligned_blocks; ++i)
        specs.push_back({way++, true});
    return buildMixBlockChain(base, set, specs);
}

ChainProgram
buildNopLoop(Addr base, int nops)
{
    lf_assert(nops > 0, "nop loop needs at least one nop");
    Assembler as(base);
    const Addr head = base;
    as.org(head);
    for (int i = 0; i < nops; ++i)
        as.nop();
    as.jmp(head);

    ChainProgram chain;
    chain.program = as.take();
    chain.program.setEntry(head);
    chain.blockStarts = {head};
    chain.loopHead = head;
    chain.instsPerIteration = static_cast<std::uint64_t>(nops) + 1;
    return chain;
}

ChainProgram
buildLcpAddLoop(Addr base, LcpPattern pattern, int r)
{
    lf_assert(r > 0, "LCP loop needs r > 0");
    Assembler as(base);
    const Addr head = base;
    as.org(head);
    switch (pattern) {
      case LcpPattern::Mixed:
        for (int i = 0; i < r; ++i) {
            as.add();
            as.addLcp();
        }
        break;
      case LcpPattern::Ordered:
        for (int i = 0; i < r; ++i)
            as.add();
        for (int i = 0; i < r; ++i)
            as.addLcp();
        break;
    }
    as.jmp(head);

    ChainProgram chain;
    chain.program = as.take();
    chain.program.setEntry(head);
    chain.blockStarts = {head};
    chain.loopHead = head;
    chain.instsPerIteration = 2 * static_cast<std::uint64_t>(r) + 1;
    return chain;
}

} // namespace lf
