#include "isa/program.hh"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "common/logging.hh"

namespace lf {

namespace {

/** lower_bound over the sorted image by instruction start address. */
inline std::vector<StaticInst>::const_iterator
lowerBound(const std::vector<StaticInst> &insts, Addr addr)
{
    return std::lower_bound(insts.begin(), insts.end(), addr,
                            [](const StaticInst &inst, Addr a) {
                                return inst.addr < a;
                            });
}

} // namespace

std::uint64_t
Program::nextUid()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

Program::Program() : uid_(nextUid())
{
}

Program::Program(const Program &other)
    : insts_(other.insts_), uid_(nextUid()), entry_(other.entry_),
      hasEntry_(other.hasEntry_), condFn_(other.condFn_)
{
}

Program::Program(Program &&other) noexcept
    : insts_(std::move(other.insts_)), uid_(other.uid_),
      entry_(other.entry_), hasEntry_(other.hasEntry_),
      condFn_(std::move(other.condFn_))
{
    // The moved-from object is still a valid Program; it must not
    // alias the uid its instructions left with.
    other.uid_ = nextUid();
    other.insts_.clear();
    other.hasEntry_ = false;
}

Program &
Program::operator=(const Program &other)
{
    if (this != &other) {
        insts_ = other.insts_;
        uid_ = nextUid();
        entry_ = other.entry_;
        hasEntry_ = other.hasEntry_;
        condFn_ = other.condFn_;
    }
    return *this;
}

Program &
Program::operator=(Program &&other) noexcept
{
    if (this != &other) {
        insts_ = std::move(other.insts_);
        uid_ = other.uid_;
        entry_ = other.entry_;
        hasEntry_ = other.hasEntry_;
        condFn_ = std::move(other.condFn_);
        other.uid_ = nextUid();
        other.insts_.clear();
        other.hasEntry_ = false;
    }
    return *this;
}

void
Program::add(const StaticInst &inst)
{
    auto it = lowerBound(insts_, inst.addr);
    // Reject overlap with the previous instruction...
    if (it != insts_.begin()) {
        const StaticInst &prev = *std::prev(it);
        if (prev.nextAddr() > inst.addr) {
            lf_panic("instruction at 0x%llx overlaps %s",
                     static_cast<unsigned long long>(inst.addr),
                     prev.toString().c_str());
        }
    }
    // ...and with the next one (an exact duplicate address also lands
    // here, since both instructions have nonzero length).
    if (it != insts_.end() && inst.nextAddr() > it->addr) {
        lf_panic("instruction at 0x%llx overlaps %s",
                 static_cast<unsigned long long>(inst.addr),
                 it->toString().c_str());
    }
    insts_.insert(it, inst);
    // Mutation invalidates any decode state memoised against the old
    // image; a fresh uid keeps stale cache entries unmatchable.
    uid_ = nextUid();
}

const StaticInst *
Program::at(Addr addr) const
{
    auto it = lowerBound(insts_, addr);
    if (it == insts_.end() || it->addr != addr)
        return nullptr;
    return &*it;
}

Addr
Program::entry() const
{
    if (hasEntry_)
        return entry_;
    lf_assert(!insts_.empty(), "entry() of an empty program");
    return insts_.front().addr;
}

std::uint64_t
Program::byteSpan() const
{
    if (insts_.empty())
        return 0;
    return insts_.back().nextAddr() - insts_.front().addr;
}

std::uint64_t
Program::totalUops() const
{
    std::uint64_t total = 0;
    for (const StaticInst &inst : insts_)
        total += inst.uops;
    return total;
}

bool
Program::evalCond(int cond_id, std::uint64_t count) const
{
    if (!condFn_)
        return false;
    return condFn_(cond_id, count);
}

std::vector<const StaticInst *>
Program::instructions() const
{
    std::vector<const StaticInst *> out;
    out.reserve(insts_.size());
    for (const StaticInst &inst : insts_)
        out.push_back(&inst);
    return out;
}

std::string
Program::disassemble() const
{
    std::ostringstream out;
    for (const StaticInst &inst : insts_)
        out << inst.toString() << '\n';
    return out.str();
}

Assembler::Assembler(Addr start)
    : cursor_(start)
{
}

void
Assembler::align(std::uint64_t alignment)
{
    lf_assert(alignment > 0 && (alignment & (alignment - 1)) == 0,
              "alignment %llu is not a power of two",
              static_cast<unsigned long long>(alignment));
    cursor_ = (cursor_ + alignment - 1) & ~(alignment - 1);
}

Addr
Assembler::emit(StaticInst inst)
{
    inst.addr = cursor_;
    prog_.add(inst);
    cursor_ += inst.length;
    return inst.addr;
}

namespace {

StaticInst
makeInst(Opcode op)
{
    StaticInst inst;
    inst.op = op;
    inst.length = defaultLength(op);
    inst.uops = defaultUops(op);
    inst.lcp = (op == Opcode::ADD_LCP);
    return inst;
}

} // namespace

Addr
Assembler::mov()
{
    return emit(makeInst(Opcode::MOV_RR));
}

Addr
Assembler::add()
{
    return emit(makeInst(Opcode::ADD_RR));
}

Addr
Assembler::addLcp()
{
    return emit(makeInst(Opcode::ADD_LCP));
}

Addr
Assembler::nop()
{
    return emit(makeInst(Opcode::NOP));
}

Addr
Assembler::jmp(Addr target)
{
    StaticInst inst = makeInst(Opcode::JMP);
    inst.target = target;
    return emit(inst);
}

Addr
Assembler::jcc(Addr target, int cond_id)
{
    StaticInst inst = makeInst(Opcode::JCC);
    inst.target = target;
    inst.condId = cond_id;
    return emit(inst);
}

Addr
Assembler::load(Addr mem_addr)
{
    StaticInst inst = makeInst(Opcode::LOAD);
    inst.memAddr = mem_addr;
    return emit(inst);
}

Addr
Assembler::store(Addr mem_addr)
{
    StaticInst inst = makeInst(Opcode::STORE);
    inst.memAddr = mem_addr;
    return emit(inst);
}

Addr
Assembler::clflush(Addr mem_addr)
{
    StaticInst inst = makeInst(Opcode::CLFLUSH);
    inst.memAddr = mem_addr;
    return emit(inst);
}

Addr
Assembler::lfence()
{
    return emit(makeInst(Opcode::LFENCE));
}

Addr
Assembler::halt()
{
    return emit(makeInst(Opcode::HALT));
}

Program
Assembler::take()
{
    return std::move(prog_);
}

} // namespace lf
