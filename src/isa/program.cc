#include "isa/program.hh"

#include <sstream>

#include "common/logging.hh"

namespace lf {

void
Program::add(const StaticInst &inst)
{
    // Reject overlap with the previous instruction...
    auto it = byAddr_.upper_bound(inst.addr);
    if (it != byAddr_.begin()) {
        auto prev = std::prev(it);
        if (prev->second.nextAddr() > inst.addr) {
            lf_panic("instruction at 0x%llx overlaps %s",
                     static_cast<unsigned long long>(inst.addr),
                     prev->second.toString().c_str());
        }
    }
    // ...and with the next one.
    if (it != byAddr_.end() && inst.nextAddr() > it->second.addr) {
        lf_panic("instruction at 0x%llx overlaps %s",
                 static_cast<unsigned long long>(inst.addr),
                 it->second.toString().c_str());
    }
    byAddr_.emplace(inst.addr, inst);
}

const StaticInst *
Program::at(Addr addr) const
{
    auto it = byAddr_.find(addr);
    return it == byAddr_.end() ? nullptr : &it->second;
}

Addr
Program::entry() const
{
    if (hasEntry_)
        return entry_;
    lf_assert(!byAddr_.empty(), "entry() of an empty program");
    return byAddr_.begin()->first;
}

std::uint64_t
Program::byteSpan() const
{
    if (byAddr_.empty())
        return 0;
    const Addr lo = byAddr_.begin()->first;
    const Addr hi = byAddr_.rbegin()->second.nextAddr();
    return hi - lo;
}

std::uint64_t
Program::totalUops() const
{
    std::uint64_t total = 0;
    for (const auto &[addr, inst] : byAddr_)
        total += inst.uops;
    return total;
}

bool
Program::evalCond(int cond_id, std::uint64_t count) const
{
    if (!condFn_)
        return false;
    return condFn_(cond_id, count);
}

std::vector<const StaticInst *>
Program::instructions() const
{
    std::vector<const StaticInst *> out;
    out.reserve(byAddr_.size());
    for (const auto &[addr, inst] : byAddr_)
        out.push_back(&inst);
    return out;
}

std::string
Program::disassemble() const
{
    std::ostringstream out;
    for (const auto &[addr, inst] : byAddr_)
        out << inst.toString() << '\n';
    return out.str();
}

Assembler::Assembler(Addr start)
    : cursor_(start)
{
}

void
Assembler::align(std::uint64_t alignment)
{
    lf_assert(alignment > 0 && (alignment & (alignment - 1)) == 0,
              "alignment %llu is not a power of two",
              static_cast<unsigned long long>(alignment));
    cursor_ = (cursor_ + alignment - 1) & ~(alignment - 1);
}

Addr
Assembler::emit(StaticInst inst)
{
    inst.addr = cursor_;
    prog_.add(inst);
    cursor_ += inst.length;
    return inst.addr;
}

namespace {

StaticInst
makeInst(Opcode op)
{
    StaticInst inst;
    inst.op = op;
    inst.length = defaultLength(op);
    inst.uops = defaultUops(op);
    inst.lcp = (op == Opcode::ADD_LCP);
    return inst;
}

} // namespace

Addr
Assembler::mov()
{
    return emit(makeInst(Opcode::MOV_RR));
}

Addr
Assembler::add()
{
    return emit(makeInst(Opcode::ADD_RR));
}

Addr
Assembler::addLcp()
{
    return emit(makeInst(Opcode::ADD_LCP));
}

Addr
Assembler::nop()
{
    return emit(makeInst(Opcode::NOP));
}

Addr
Assembler::jmp(Addr target)
{
    StaticInst inst = makeInst(Opcode::JMP);
    inst.target = target;
    return emit(inst);
}

Addr
Assembler::jcc(Addr target, int cond_id)
{
    StaticInst inst = makeInst(Opcode::JCC);
    inst.target = target;
    inst.condId = cond_id;
    return emit(inst);
}

Addr
Assembler::load(Addr mem_addr)
{
    StaticInst inst = makeInst(Opcode::LOAD);
    inst.memAddr = mem_addr;
    return emit(inst);
}

Addr
Assembler::store(Addr mem_addr)
{
    StaticInst inst = makeInst(Opcode::STORE);
    inst.memAddr = mem_addr;
    return emit(inst);
}

Addr
Assembler::clflush(Addr mem_addr)
{
    StaticInst inst = makeInst(Opcode::CLFLUSH);
    inst.memAddr = mem_addr;
    return emit(inst);
}

Addr
Assembler::lfence()
{
    return emit(makeInst(Opcode::LFENCE));
}

Addr
Assembler::halt()
{
    return emit(makeInst(Opcode::HALT));
}

Program
Assembler::take()
{
    return std::move(prog_);
}

} // namespace lf
