/**
 * @file
 * Program: a set of statically laid-out instructions addressable by
 * virtual address, plus the Assembler used to build one.
 */

#ifndef LF_ISA_PROGRAM_HH
#define LF_ISA_PROGRAM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace lf {

/**
 * An immutable-after-build instruction image.
 *
 * Instructions live at explicit virtual addresses; the frontend fetches
 * by address, so overlapping instructions are a build error. The image
 * is a flat address-sorted vector — at() is a binary search over
 * contiguous memory, not a node-based map walk, because the frontend
 * calls it once per decoded instruction. JCC conditions are resolved
 * through a user-supplied callback keyed by the instruction's condId
 * (defaults to never-taken).
 *
 * Every Program object carries a process-unique id (uid). Copies get a
 * fresh uid, moves keep theirs, and uids are never reused, so
 * downstream decode caches (the frontend's chunk tables) can memoise
 * by uid without risking aliasing through recycled pointers.
 */
class Program
{
  public:
    /** Condition callback: (condId, dynamic execution count) -> taken. */
    using CondFn = std::function<bool(int cond_id, std::uint64_t count)>;

    Program();
    Program(const Program &other);
    Program(Program &&other) noexcept;
    Program &operator=(const Program &other);
    Program &operator=(Program &&other) noexcept;

    /** Add an instruction; addresses must not overlap. */
    void add(const StaticInst &inst);

    /** Instruction starting exactly at @p addr, or nullptr. */
    const StaticInst *at(Addr addr) const;

    /** Whether any instruction starts at @p addr. */
    bool contains(Addr addr) const { return at(addr) != nullptr; }

    /** Entry point (defaults to the lowest address added). */
    Addr entry() const;
    void setEntry(Addr addr) { entry_ = addr; hasEntry_ = true; }

    std::size_t numInsts() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }

    /** Process-unique identity of this image (see class comment). */
    std::uint64_t uid() const { return uid_; }

    /** Total bytes spanned, highest end minus lowest start. */
    std::uint64_t byteSpan() const;

    /** Sum of micro-ops over all instructions. */
    std::uint64_t totalUops() const;

    /** Condition callback used for JCC resolution. */
    void setCondFn(CondFn fn) { condFn_ = std::move(fn); }
    bool evalCond(int cond_id, std::uint64_t count) const;

    /** All instructions in address order (for tests/debug). */
    std::vector<const StaticInst *> instructions() const;

    /** Multi-line disassembly listing. */
    std::string disassemble() const;

  private:
    static std::uint64_t nextUid();

    std::vector<StaticInst> insts_; //!< Sorted by addr.
    std::uint64_t uid_;
    Addr entry_ = 0;
    bool hasEntry_ = false;
    CondFn condFn_;
};

/**
 * Sequential program builder.
 *
 * Maintains a cursor address; emit helpers append an instruction at the
 * cursor and advance it. org()/align() reposition the cursor, which is
 * how the mix-block builders control DSB set mapping and (mis)alignment.
 */
class Assembler
{
  public:
    explicit Assembler(Addr start = 0x400000);

    Addr cursor() const { return cursor_; }

    /** Move the cursor to an absolute address. */
    void org(Addr addr) { cursor_ = addr; }

    /** Advance the cursor to the next multiple of @p alignment. */
    void align(std::uint64_t alignment);

    /** @name Emit helpers (each returns the instruction's address). */
    /// @{
    Addr mov();
    Addr add();
    Addr addLcp();
    Addr nop();
    Addr jmp(Addr target);
    Addr jcc(Addr target, int cond_id);
    Addr load(Addr mem_addr);
    Addr store(Addr mem_addr);
    Addr clflush(Addr mem_addr);
    Addr lfence();
    Addr halt();
    /// @}

    /** Emit an arbitrary pre-filled instruction at the cursor. */
    Addr emit(StaticInst inst);

    /** Finish building; the assembler must not be reused after. */
    Program take();

    /** Access the program under construction (e.g. to set entry). */
    Program &program() { return prog_; }

  private:
    Program prog_;
    Addr cursor_;
};

} // namespace lf

#endif // LF_ISA_PROGRAM_HH
