#include "isa/instruction.hh"

#include <cstdio>

#include "common/logging.hh"

namespace lf {

const char *
toString(Opcode op)
{
    switch (op) {
      case Opcode::MOV_RR: return "mov";
      case Opcode::ADD_RR: return "add";
      case Opcode::ADD_LCP: return "add.66";
      case Opcode::NOP: return "nop";
      case Opcode::JMP: return "jmp";
      case Opcode::JCC: return "jcc";
      case Opcode::LOAD: return "load";
      case Opcode::STORE: return "store";
      case Opcode::CLFLUSH: return "clflush";
      case Opcode::LFENCE: return "lfence";
      case Opcode::HALT: return "halt";
    }
    return "?";
}

std::uint8_t
defaultLength(Opcode op)
{
    switch (op) {
      case Opcode::MOV_RR: return 5;   // mix block: 4x5 + 5 = 25 B
      case Opcode::ADD_RR: return 3;
      case Opcode::ADD_LCP: return 4;  // 0x66 prefix adds one byte
      case Opcode::NOP: return 1;
      case Opcode::JMP: return 5;      // jmp rel32
      case Opcode::JCC: return 6;      // jcc rel32 (0x0f prefix)
      case Opcode::LOAD: return 4;
      case Opcode::STORE: return 4;
      case Opcode::CLFLUSH: return 4;
      case Opcode::LFENCE: return 3;
      case Opcode::HALT: return 1;
    }
    lf_panic("unknown opcode");
}

std::uint8_t
defaultUops(Opcode op)
{
    switch (op) {
      case Opcode::MOV_RR:
      case Opcode::ADD_RR:
      case Opcode::ADD_LCP:
      case Opcode::NOP:
      case Opcode::JMP:
      case Opcode::JCC:
      case Opcode::LOAD:
        return 1;
      case Opcode::STORE:
        return 2;  // store-address + store-data
      case Opcode::CLFLUSH:
        return 2;
      case Opcode::LFENCE:
        return 1;
      case Opcode::HALT:
        return 1;
    }
    lf_panic("unknown opcode");
}

std::string
StaticInst::toString() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "0x%llx: %s (%uB, %uuop%s)%s",
                  static_cast<unsigned long long>(addr), lf::toString(op),
                  length, uops, uops == 1 ? "" : "s",
                  lcp ? " [LCP]" : "");
    return buf;
}

} // namespace lf
