/**
 * @file
 * Decoded instruction runs ("chunks").
 *
 * A chunk is the unit the DSB caches and the delivery mux moves per
 * cycle: the maximal run of instructions that (a) start inside the
 * same 32-byte window as the run's entry point, (b) together produce
 * at most one DSB line's worth of micro-ops, and (c) contains at most
 * one (terminating) branch.
 *
 * Chunks are a pure function of (Program, entry address), so the whole
 * decode is precomputed once into an immutable ChunkTable: one chunk
 * per instruction start, stored flat (address-sorted chunk array +
 * one shared end-of-instruction flag pool) so a lookup is a binary
 * search and delivery walks contiguous memory. Because the table never
 * mutates after construction, one table can be shared read-only by
 * every worker thread simulating the same program — the basis of the
 * process-wide prepared-program cache (frontend/prepared.hh).
 *
 * A misaligned mix block (entered at window_base + 16) naturally
 * decomposes into two chunks in two adjacent DSB sets — the split that
 * drives the misalignment attacks.
 */

#ifndef LF_FRONTEND_CHUNK_HH
#define LF_FRONTEND_CHUNK_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "frontend/params.hh"
#include "isa/program.hh"

namespace lf {

struct Chunk
{
    Addr start = 0;
    Addr fallThrough = 0;    //!< Address after the last instruction.
    /** Per-micro-op end-of-instruction markers (uops entries), a span
     *  into the owning ChunkTable's shared flag pool. */
    const std::uint8_t *endOfInst = nullptr;
    /** Terminating JMP/JCC (into the Program's image), or nullptr. */
    const StaticInst *branchInst = nullptr;
    int numInsts_ = 0;
    int uops = 0;
    int bytes = 0;
    int lcpCount = 0;        //!< Instructions carrying an LCP.
    bool endsBranch = false; //!< Last instruction is JMP/JCC.
    bool halt = false;       //!< Chunk is a HALT pseudo-op.

    /** Successor chunks, resolved once at table build so steady-state
     *  delivery follows a pointer instead of re-searching the table
     *  (pointers into the owning ChunkTable; null when the successor
     *  address has no chunk — identical to a failed lookup). */
    const Chunk *fallChunk = nullptr;     //!< At fallThrough.
    const Chunk *takenChunk = nullptr;    //!< At branch()->target.
    const Chunk *notTakenChunk = nullptr; //!< At branch()->nextAddr().

    /** LCP'd instructions predecode in a chunk of their own and the
     *  result is not cached in the DSB — this is the Sec. IV-H
     *  behaviour ("use of LCP forces the frontend to switch from
     *  issuing from DSB to issuing from MITE"). */
    bool cacheable() const { return lcpCount == 0; }

    int numInsts() const { return numInsts_; }
    const StaticInst *branch() const { return branchInst; }
    /** 32-byte window containing the entry point. */
    Addr window() const { return start & ~Addr{31}; }
    /** Whether the entry point is window-aligned. */
    bool aligned() const { return (start & Addr{31}) == 0; }
};

/**
 * The precomputed chunk decomposition of one Program.
 *
 * Immutable after construction (lookups are const and touch no
 * mutable state), so it is safe to share one table across threads.
 * The table holds pointers into the Program's instruction image; the
 * Program must outlive the table.
 */
class ChunkTable
{
  public:
    ChunkTable() = default;
    ChunkTable(const Program &program, int line_uops);

    /** Convenience: line capacity from the frontend parameters. */
    ChunkTable(const Program &program, const FrontendParams &params)
        : ChunkTable(program, params.dsbLineUops)
    {
    }

    /** Chunks live in the flag pool's and chunk array's buffers;
     *  copying would dangle the internal spans, moving is fine. */
    ChunkTable(const ChunkTable &) = delete;
    ChunkTable &operator=(const ChunkTable &) = delete;
    ChunkTable(ChunkTable &&) = default;
    ChunkTable &operator=(ChunkTable &&) = default;

    /**
     * Chunk starting at @p pc, or nullptr when no instruction starts
     * there (the thread halts).
     */
    const Chunk *get(Addr pc) const;

    std::size_t size() const { return chunks_.size(); }
    int lineUops() const { return lineUops_; }

  private:
    Chunk build(const Program &program, Addr pc);

    std::vector<Addr> starts_;  //!< Sorted chunk entry addresses.
    std::vector<Chunk> chunks_; //!< Parallel to starts_.
    /** Shared end-of-instruction flag pool all chunks' endOfInst
     *  spans point into. */
    std::vector<std::uint8_t> flags_;
    int lineUops_ = 0;
};

} // namespace lf

#endif // LF_FRONTEND_CHUNK_HH
