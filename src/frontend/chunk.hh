/**
 * @file
 * Decoded instruction runs ("chunks").
 *
 * A chunk is the unit the DSB caches and the delivery mux moves per
 * cycle: the maximal run of instructions that (a) start inside the
 * same 32-byte window as the run's entry point, (b) together produce
 * at most one DSB line's worth of micro-ops, and (c) contains at most
 * one (terminating) branch.
 *
 * Chunks are a pure function of (Program, entry address), so they are
 * memoised in a ChunkCache. A misaligned mix block (entered at
 * window_base + 16) naturally decomposes into two chunks in two
 * adjacent DSB sets — the split that drives the misalignment attacks.
 */

#ifndef LF_FRONTEND_CHUNK_HH
#define LF_FRONTEND_CHUNK_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "frontend/params.hh"
#include "isa/program.hh"

namespace lf {

struct Chunk
{
    Addr start = 0;
    std::vector<const StaticInst *> insts;
    int uops = 0;
    int bytes = 0;
    int lcpCount = 0;        //!< Instructions carrying an LCP.
    bool endsBranch = false; //!< Last instruction is JMP/JCC.
    bool halt = false;       //!< Chunk is a HALT pseudo-op.
    Addr fallThrough = 0;    //!< Address after the last instruction.
    /** Per-micro-op end-of-instruction markers (size == uops). */
    std::vector<bool> endOfInst;

    /** LCP'd instructions predecode in a chunk of their own and the
     *  result is not cached in the DSB — this is the Sec. IV-H
     *  behaviour ("use of LCP forces the frontend to switch from
     *  issuing from DSB to issuing from MITE"). */
    bool cacheable() const { return lcpCount == 0; }

    int numInsts() const { return static_cast<int>(insts.size()); }
    const StaticInst *branch() const
    {
        return endsBranch ? insts.back() : nullptr;
    }
    /** 32-byte window containing the entry point. */
    Addr window() const { return start & ~Addr{31}; }
    /** Whether the entry point is window-aligned. */
    bool aligned() const { return (start & Addr{31}) == 0; }
};

/**
 * Memoising chunk builder for one Program.
 */
class ChunkCache
{
  public:
    ChunkCache(const Program *program, const FrontendParams &params);

    /**
     * Chunk starting at @p pc, or nullptr when no instruction starts
     * there (the thread halts).
     */
    const Chunk *get(Addr pc);

  private:
    Chunk build(Addr pc) const;

    const Program *program_;
    int lineUops_;
    std::unordered_map<Addr, Chunk> cache_;
};

} // namespace lf

#endif // LF_FRONTEND_CHUNK_HH
