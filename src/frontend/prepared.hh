/**
 * @file
 * Prepared (pre-decoded) attack workloads and the process-wide cache
 * that shares them across trials.
 *
 * Every trial of a sweep used to regenerate, re-assemble, and re-chunk
 * the same handful of ISA programs: a channel's setup() called the
 * mix-block builders, and each Core::setProgram() rebuilt the chunk
 * decode from scratch. A PreparedChain bundles the built ChainProgram
 * with its immutable ChunkTable, and the prepare*() helpers memoise
 * PreparedChains process-wide, keyed by the builder arguments plus the
 * DSB line capacity (the only frontend parameter the decode depends
 * on). Two trials of the same resolved (channel, config) therefore
 * share one read-only decode — tables are immutable, so cross-thread
 * sharing is safe — and a trial's hot path does no decode work at all.
 *
 * Caching never changes results: a cached PreparedChain is
 * bit-identical to a freshly built one, and the enable switches below
 * exist precisely so tests and benches can prove that (and so the
 * throughput bench can measure the PR-5-era rebuild-per-trial cost
 * in-run).
 */

#ifndef LF_FRONTEND_PREPARED_HH
#define LF_FRONTEND_PREPARED_HH

#include <memory>
#include <vector>

#include "common/types.hh"
#include "frontend/chunk.hh"
#include "isa/mix_block.hh"

namespace lf {

/** A built chain program plus its precomputed chunk decode. */
struct PreparedChain
{
    ChainProgram chain;
    ChunkTable table; //!< Built against chain.program.
};

using PreparedChainPtr = std::shared_ptr<const PreparedChain>;

/** @name Cached workload builders
 * Each mirrors the corresponding build*() of isa/mix_block.hh and
 * returns a shared immutable PreparedChain. @p line_uops is the
 * resolved FrontendParams::dsbLineUops of the model the chain will run
 * on (it parameterises the chunk decode). */
/// @{
PreparedChainPtr prepareMixBlockChain(Addr base, int set,
                                      const std::vector<BlockSpec> &specs,
                                      int line_uops);
PreparedChainPtr prepareAlignedMisalignedChain(Addr base, int set,
                                               int aligned_blocks,
                                               int misaligned_blocks,
                                               int first_way,
                                               int line_uops);
PreparedChainPtr prepareMixBlockPass(Addr base, int set,
                                     const std::vector<BlockSpec> &specs,
                                     int line_uops);
PreparedChainPtr prepareNopLoop(Addr base, int nops, int line_uops);
PreparedChainPtr prepareLcpAddLoop(Addr base, LcpPattern pattern, int r,
                                   int line_uops);
/// @}

/** @name Hot-path caching knobs (test/bench instrumentation)
 * Process-global; flip only while no runner is active. Results are
 * bit-identical in every combination — that invariant is what the
 * streaming tests assert and what makes the switches safe to expose.
 */
/// @{
/** Share prepared chains across trials (default on). Off: prepare*()
 *  builds a fresh chain per call, the pre-PR-7 per-trial cost. */
void setProgramCacheEnabled(bool on);
bool programCacheEnabled();

/** Reuse chunk tables across setProgram() rebinds of the same Program
 *  within a trial (default on). Off: every setProgram() re-decodes,
 *  the pre-PR-7 per-rebind cost (see FrontendEngine::setProgram). */
void setChunkTableReuseEnabled(bool on);
bool chunkTableReuseEnabled();

/** Entries currently in the process-wide prepared-chain cache. */
std::size_t programCacheSize();

/** @name Prepared-cache hit/miss accounting (src/obs)
 * A hit is a prepare*() call served from the process-wide cache; a
 * miss built a chain (including every call while the cache is
 * disabled). The process-wide totals feed RunMetrics; the thread-
 * local pair attributes hits to a single trial — runner workers
 * execute trials serially, so a before/after delta on the calling
 * thread is exactly that trial's traffic. */
/// @{
std::uint64_t preparedCacheHits();
std::uint64_t preparedCacheMisses();
std::uint64_t preparedCacheThreadHits();
std::uint64_t preparedCacheThreadMisses();
/// @}

/** Drop every cached chain (outstanding shared_ptrs stay valid). */
void clearProgramCache();

/**
 * The cache entry that owns exactly this (program, table) pair, or
 * null when the pointers are not cache-owned (per-bind local decode,
 * channel-private program, cache since cleared). The warm-snapshot
 * layer (sim/snapshot.hh) uses the returned pin to keep an engine
 * image's interior pointers alive; a null forces it to bypass.
 * A linear scan under the cache lock — called once per snapshot
 * capture, never on the trial hot path.
 */
PreparedChainPtr findPreparedChain(const Program *program,
                                   const ChunkTable *table);
/// @}

/**
 * RAII guard: run a scope with both caching layers forced to @p on,
 * restoring the previous switches on exit. Used by the identity tests
 * and the legacy-baseline bench sections.
 */
class ProgramCachingScope
{
  public:
    explicit ProgramCachingScope(bool on)
        : cache_(programCacheEnabled()), reuse_(chunkTableReuseEnabled())
    {
        setProgramCacheEnabled(on);
        setChunkTableReuseEnabled(on);
    }
    ~ProgramCachingScope()
    {
        setProgramCacheEnabled(cache_);
        setChunkTableReuseEnabled(reuse_);
    }
    ProgramCachingScope(const ProgramCachingScope &) = delete;
    ProgramCachingScope &operator=(const ProgramCachingScope &) = delete;

  private:
    bool cache_;
    bool reuse_;
};

} // namespace lf

#endif // LF_FRONTEND_PREPARED_HH
