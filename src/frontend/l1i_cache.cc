#include "frontend/l1i_cache.hh"

#include "common/logging.hh"

namespace lf {

L1iCache::L1iCache(const FrontendParams &params)
    : numSets_(params.l1iSets), numWays_(params.l1iWays),
      lineBytes_(params.l1iLineBytes), missLatency_(params.l1iMissLatency),
      lines_(static_cast<std::size_t>(numSets_) *
             static_cast<std::size_t>(numWays_))
{
    lf_assert(numSets_ > 0 && (numSets_ & (numSets_ - 1)) == 0,
              "L1I sets must be a power of two");
    lf_assert(lineBytes_ > 0 && (lineBytes_ & (lineBytes_ - 1)) == 0,
              "L1I line size must be a power of two");
    lf_assert(numWays_ > 0, "L1I needs at least one way");
}

int
L1iCache::setOf(Addr addr) const
{
    return static_cast<int>((addr / static_cast<Addr>(lineBytes_)) &
                            static_cast<Addr>(numSets_ - 1));
}

Addr
L1iCache::tagOf(Addr addr) const
{
    return addr / static_cast<Addr>(lineBytes_) /
        static_cast<Addr>(numSets_);
}

L1iCache::Line *
L1iCache::findLine(Addr addr)
{
    const int set = setOf(addr);
    const Addr tag = tagOf(addr);
    for (int w = 0; w < numWays_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set * numWays_ + w)];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

const L1iCache::Line *
L1iCache::findLine(Addr addr) const
{
    return const_cast<L1iCache *>(this)->findLine(addr);
}

L1iAccessResult
L1iCache::access(Addr addr)
{
    ++accesses_;
    if (Line *line = findLine(addr)) {
        line->lru = ++lruClock_;
        return {true, 0};
    }
    ++misses_;
    // Choose the LRU victim in the set.
    const int set = setOf(addr);
    Line *victim = nullptr;
    for (int w = 0; w < numWays_; ++w) {
        Line &line = lines_[static_cast<std::size_t>(set * numWays_ + w)];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lru < victim->lru)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->lru = ++lruClock_;
    return {false, missLatency_};
}

bool
L1iCache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

void
L1iCache::flushLine(Addr addr)
{
    if (Line *line = findLine(addr))
        line->valid = false;
}

void
L1iCache::flushAll()
{
    for (auto &line : lines_)
        line.valid = false;
}

double
L1iCache::missRate() const
{
    if (accesses_ == 0)
        return 0.0;
    return static_cast<double>(misses_) / static_cast<double>(accesses_);
}

void
L1iCache::resetStats()
{
    accesses_ = 0;
    misses_ = 0;
}

void
L1iCache::reset(const FrontendParams &params)
{
    numSets_ = params.l1iSets;
    numWays_ = params.l1iWays;
    lineBytes_ = params.l1iLineBytes;
    missLatency_ = params.l1iMissLatency;
    lf_assert(numSets_ > 0 && (numSets_ & (numSets_ - 1)) == 0,
              "L1I sets must be a power of two");
    lf_assert(lineBytes_ > 0 && (lineBytes_ & (lineBytes_ - 1)) == 0,
              "L1I line size must be a power of two");
    lf_assert(numWays_ > 0, "L1I needs at least one way");
    lines_.assign(static_cast<std::size_t>(numSets_) *
                      static_cast<std::size_t>(numWays_),
                  Line{});
    lruClock_ = 0;
    resetStats();
}

} // namespace lf
