/**
 * @file
 * FrontendEngine: the per-cycle micro-op delivery machine for one
 * physical core with two hardware threads.
 *
 * Each cycle, one ready thread wins the delivery slot (round-robin
 * arbitration, as the MITE/DSB read port is shared between SMT
 * siblings). The winning thread delivers one chunk from:
 *   - the LSD, if a captured loop is streaming (6 uops/cycle with a
 *     bubble at every loop turnaround),
 *   - the DSB, on a micro-op cache hit (one line per cycle),
 *   - the MITE, otherwise (L1I fetch + predecode with LCP stalls +
 *     5-wide decode), which also fills the DSB.
 * Path switches charge the penalties of FrontendParams.
 *
 * The engine exposes popUops() for the backend, speculativeFetch() for
 * transient (Spectre) execution that updates frontend state without
 * retiring, and setPartitioned() for the SMT DSB repartitioning the MT
 * attacks exploit.
 */

#ifndef LF_FRONTEND_ENGINE_HH
#define LF_FRONTEND_ENGINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "frontend/bpu.hh"
#include "frontend/chunk.hh"
#include "frontend/dsb.hh"
#include "frontend/l1i_cache.hh"
#include "frontend/loop_monitor.hh"
#include "frontend/params.hh"
#include "frontend/perf_counters.hh"
#include "isa/program.hh"

namespace lf {

/**
 * Fixed-capacity ring of per-micro-op end-of-instruction flags: the
 * IDQ image. Replaces a std::deque<bool> on the delivery hot path —
 * pushes and pops touch one flat byte buffer, and clearing between
 * program rebinds is two index stores instead of a deque teardown.
 *
 * Storage is rounded up to a power of two so every index advance is a
 * mask, and the bulk pushN()/popN() forms move a whole delivery line
 * (or a whole cycle's retire budget) per call — the backend retires
 * micro-ops in batches, not one virtual call each. The flags are 0/1
 * by construction (ChunkTable and the LSD body both store literal
 * end-of-instruction markers), so popN() counts instructions by
 * summing bytes.
 */
class UopQueue
{
  public:
    /** Size the buffer for @p capacity queued micro-ops. */
    void configure(int capacity)
    {
        capacity_ = static_cast<std::size_t>(capacity);
        std::size_t round = 1;
        while (round < capacity_)
            round <<= 1;
        buf_.assign(round, 0);
        mask_ = round - 1;
        head_ = tail_ = size_ = 0;
    }

    void clear() { head_ = tail_ = size_ = 0; }
    bool empty() const { return size_ == 0; }
    int size() const { return static_cast<int>(size_); }

    void push(std::uint8_t end_of_inst)
    {
        lf_assert(size_ < capacity_, "IDQ overflow");
        buf_[tail_] = end_of_inst;
        tail_ = (tail_ + 1) & mask_;
        ++size_;
    }

    /** Append @p n flags (capacity-checked once, not per uop). */
    void pushN(const std::uint8_t *flags, int n)
    {
        lf_assert(size_ + static_cast<std::size_t>(n) <= capacity_,
                  "IDQ overflow");
        std::size_t t = tail_;
        for (int i = 0; i < n; ++i) {
            buf_[t] = flags[i];
            t = (t + 1) & mask_;
        }
        tail_ = t;
        size_ += static_cast<std::size_t>(n);
    }

    std::uint8_t pop()
    {
        lf_assert(size_ > 0, "pop from empty IDQ");
        const std::uint8_t flag = buf_[head_];
        head_ = (head_ + 1) & mask_;
        --size_;
        return flag;
    }

    /** Pop up to @p n flags; returns the number popped and adds the
     *  end-of-instruction markers seen to @p insts. */
    int popN(int n, std::uint64_t &insts)
    {
        const int have = static_cast<int>(size_);
        const int take = n < have ? n : have;
        std::uint64_t marks = 0;
        std::size_t h = head_;
        for (int i = 0; i < take; ++i) {
            marks += buf_[h]; // flags are 0/1
            h = (h + 1) & mask_;
        }
        head_ = h;
        size_ -= static_cast<std::size_t>(take);
        insts += marks;
        return take;
    }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t mask_ = 0;
    std::size_t capacity_ = 0;
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
    std::size_t size_ = 0;
};

class FrontendEngine
{
  public:
    static constexpr int kNumThreads = 2;

    explicit FrontendEngine(const FrontendParams &params);

    /** @name Thread program control */
    /// @{
    /**
     * Bind @p program to thread @p tid and reset its pipeline state
     * (pc = entry, LSD off, IDQ drained). Shared structures (DSB,
     * L1I, BPU) are untouched — their persistence across program
     * switches is what the attacks measure.
     *
     * The program's chunk decode is resolved in this order: a caller-
     * supplied @p table (a prepared program's shared immutable
     * decode), then the engine's per-run memo keyed by Program::uid()
     * (so rebinding the same image never re-decodes it), and only
     * then a fresh build. With setChunkTableReuseEnabled(false) every
     * bind re-decodes — the pre-PR-7 cost the throughput bench uses
     * as its baseline. Identical decode either way.
     *
     * A caller-supplied @p table must describe @p program and must
     * outlive the binding (the PreparedChain contract).
     */
    void setProgram(ThreadId tid, const Program *program,
                    const ChunkTable *table);
    void setProgram(ThreadId tid, const Program *program)
    {
        setProgram(tid, program, nullptr);
    }

    /** Unbind the thread (it becomes idle). */
    void clearProgram(ThreadId tid);

    /** Thread has a program and has not halted. */
    bool threadRunnable(ThreadId tid) const;
    bool threadHasProgram(ThreadId tid) const;
    /// @}

    /** Advance the frontend by one core cycle. */
    void tick();

    /**
     * Number of upcoming cycles that are provably no-ops for the
     * whole core — every IDQ is empty (the backend has nothing to
     * pop) and no thread can deliver (each runnable thread is
     * mid-stall): the minimum remaining stall across runnable
     * threads, saturated at Cycles max when no thread is runnable at
     * all. Returns 0 when the next cycle must be ticked normally.
     * LCP/decode stall bursts — the very signal the channels
     * maximize — spend most of their cycles in this state, so run
     * loops fast-forward them via skipCycles() instead of ticking.
     */
    Cycles noOpCycles() const
    {
        Cycles burn = ~static_cast<Cycles>(0);
        for (const ThreadState &ts : threads_) {
            if (!ts.idq.empty())
                return 0;
            if (ts.program == nullptr || ts.halted)
                continue;
            if (ts.stall == 0)
                return 0; // empty IDQ => space, so it delivers
            burn = burn < ts.stall ? burn : ts.stall;
        }
        return burn;
    }

    /**
     * Fast-forward @p cycles no-op cycles (caller checked
     * noOpCycles() >= cycles): bump the clock and drain stalls —
     * exactly what that many tick() calls would have done. Stalls of
     * non-runnable threads saturate at zero (their decay is
     * unobservable; setProgram() resets stall before a thread can
     * run again).
     */
    void skipCycles(Cycles cycles)
    {
        cycle_ += cycles;
        fastForwardedCycles_ += cycles;
        for (ThreadState &ts : threads_)
            ts.stall -= ts.stall < cycles ? ts.stall : cycles;
    }

    /** Cycles advanced via skipCycles() instead of ticking — how much
     *  of the trial's time was provably-idle stall burn. */
    Cycles fastForwardedCycles() const { return fastForwardedCycles_; }

    /**
     * Reinitialize to the pristine post-construction state for
     * @p params, reusing the cache/IDQ storage where possible so a
     * per-trial reset (Core::reset()) avoids the construction
     * allocations. Bit-identical to a freshly constructed engine.
     */
    void reset(const FrontendParams &params);

    /**
     * Backend interface: pop at most @p max_uops micro-ops from the
     * thread's IDQ. @p insts_retired is incremented for every
     * end-of-instruction marker popped.
     */
    int popUops(ThreadId tid, int max_uops, std::uint64_t &insts_retired);

    int idqOccupancy(ThreadId tid) const;

    /** @name SMT partitioning */
    /// @{
    void setPartitioned(bool partitioned);
    bool partitioned() const { return dsb_.partitioned(); }
    /// @}

    /** @name Mitigation hooks (src/defense) */
    /// @{
    /**
     * MITE-only delivery: with the DSB disabled, lookups never hit,
     * MITE decodes stop filling lines, and (through inclusion) the
     * LSD never engages. Disabling flushes the current contents.
     */
    void setDsbEnabled(bool enabled);
    bool dsbEnabled() const { return dsbEnabled_; }

    /**
     * Static SMT split of the LSD replay port: an engaged loop
     * streams privately into its IDQ — without arbitrating for the
     * shared MITE/DSB delivery slot — but at half the replay width,
     * whether or not the sibling thread runs (non-work-conserving).
     */
    void setLsdStaticPartition(bool partitioned);
    bool lsdStaticPartition() const { return lsdStaticPartition_; }
    /// @}

    /**
     * Transient (wrong-path) fetch: walk up to @p max_chunks chunks
     * from @p start through the normal L1I/DSB fill path *without*
     * delivering anything to the backend. Follows unconditional jumps,
     * stops at conditional branches. This models speculative frontend
     * state updates, the basis of the Spectre variant in Sec. IX.
     */
    void speculativeFetch(ThreadId tid, Addr start, int max_chunks);

    /** Flush one thread's pipeline-local frontend state (LSD, IDQ,
     *  loop detection); used at enclave entry/exit. */
    void flushThreadFrontend(ThreadId tid);

    /** @name Component and counter access */
    /// @{
    Dsb &dsb() { return dsb_; }
    const Dsb &dsb() const { return dsb_; }
    L1iCache &l1i() { return l1i_; }
    const L1iCache &l1i() const { return l1i_; }
    Bpu &bpu() { return bpu_; }
    PerfCounters &counters(ThreadId tid);
    const PerfCounters &counters(ThreadId tid) const;
    Cycles cycle() const { return cycle_; }
    const FrontendParams &params() const { return params_; }
    bool lsdActive(ThreadId tid) const;
    /// @}

    /** @name Warm-state snapshot (sim/snapshot.hh)
     * A deep copy of every mutable field except params_ (config, not
     * state: images are only restored onto an engine reset with the
     * same resolved model) and tableMemo_ (pure memoization — the
     * restored threads never point into it, see the localTable
     * precondition on saveState()).
     *
     * Pointer lifetime is the caller's contract: program / chunks and
     * the chunk pointers derived from them must outlive the image.
     * The snapshot layer guarantees it by pinning the owning
     * PreparedChains (frontend/prepared.hh) and bypassing every
     * configuration where a thread's decode is not cache-owned.
     */
    /// @{
    struct SavedThreadState
    {
        const Program *program;
        const ChunkTable *chunks;
        Addr pc;
        const Chunk *nextChunk;
        bool halted;
        Cycles stall;
        DeliveryPath lastSource;
        UopQueue idq;
        bool lsdActive;
        std::vector<std::uint8_t> lsdBody;
        std::size_t lsdPos;
        Addr lsdHead;
        LoopMonitor monitor;
        bool nextIsBlockStart;
        bool prevChunkLcp;
        const Chunk *pendingChunk;
        bool pendingFromDsb;
        std::vector<std::uint64_t> condCounts;
        PerfCounters counters;
    };

    struct SavedState
    {
        L1iCache l1i;
        Dsb dsb;
        Bpu bpu;
        bool dsbEnabled;
        bool lsdStaticPartition;
        std::array<SavedThreadState, kNumThreads> threads;
        Cycles cycle;
        Cycles fastForwardedCycles;
        int lastSlot;
        std::vector<std::uint64_t> poisonDeadline;
        std::uint64_t blockClock;
    };

    /** Precondition: no thread holds a per-bind localTable (fatal
     *  otherwise — such decodes die with the trial and cannot be
     *  pinned). */
    SavedState saveState() const;

    void loadState(const SavedState &s);
    /// @}

  private:
    struct ThreadState
    {
        explicit ThreadState(const FrontendParams &params)
            : monitor(params)
        {
            idq.configure(params.idqEntries);
        }

        const Program *program = nullptr;
        /** Active decode; points at a caller table, a tableMemo_
         *  entry, or localTable. */
        const ChunkTable *chunks = nullptr;
        /** Fresh-per-bind decode used when table reuse is disabled. */
        std::unique_ptr<ChunkTable> localTable;
        Addr pc = 0;
        /** chunks->get(pc), when the last chunk's successor pointer
         *  already resolved it; null forces a table lookup. */
        const Chunk *nextChunk = nullptr;
        bool halted = true;
        Cycles stall = 0;
        DeliveryPath lastSource = DeliveryPath::MITE;
        UopQueue idq; //!< end-of-instruction flag per uop

        bool lsdActive = false;
        std::vector<std::uint8_t> lsdBody; //!< end-of-inst flag per body uop
        std::size_t lsdPos = 0;
        Addr lsdHead = 0;

        LoopMonitor monitor;
        bool nextIsBlockStart = true;
        bool prevChunkLcp = false;

        /** A chunk whose fetch/decode latency is still being paid;
         *  its micro-ops deliver when the stall drains. */
        const Chunk *pendingChunk = nullptr;
        bool pendingFromDsb = false;
        /** Dynamic execution count per conditional-branch condId
         *  (small caller-chosen ints, so a flat array beats a hash
         *  map on the per-branch path; grown on demand). */
        std::vector<std::uint64_t> condCounts;
        PerfCounters counters;
    };

    ThreadState &state(ThreadId tid);
    const ThreadState &state(ThreadId tid) const;

    const ChunkTable *resolveTable(ThreadState &ts, const Program *program,
                                   const ChunkTable *table);
    bool deliverable(const ThreadState &ts) const;
    void deliver(ThreadId tid);
    void deliverLsd(ThreadId tid);
    Cycles dsbPenalty(ThreadId tid, const Chunk &chunk);
    Cycles mitePenalty(ThreadId tid, const Chunk &chunk);
    void deliverFromDsb(ThreadId tid, const Chunk &chunk);
    void deliverFromMite(ThreadId tid, const Chunk &chunk);
    void finishChunk(ThreadId tid, const Chunk &chunk, bool from_dsb);
    void pushUops(ThreadId tid, const Chunk &chunk);
    void engageLsd(ThreadId tid);
    void flushLsd(ThreadId tid);
    bool lsdQualifies(ThreadId tid) const;
    void onDsbEvict(ThreadId tid, Addr key);
    void poisonSet(Addr key);
    bool setPoisoned(Addr key) const;
    Cycles chargeL1i(ThreadId tid, const Chunk &chunk);

    FrontendParams params_;
    L1iCache l1i_;
    Dsb dsb_;
    Bpu bpu_;
    bool dsbEnabled_ = true;
    bool lsdStaticPartition_ = false;
    std::array<ThreadState, kNumThreads> threads_;
    Cycles cycle_ = 0;
    Cycles fastForwardedCycles_ = 0;
    int lastSlot_ = kNumThreads - 1;

    /** Decodes built for plain setProgram(tid, program) binds, keyed
     *  by Program::uid() (never reused, so entries cannot alias a new
     *  image). Cleared on reset(), i.e. once per trial. */
    std::unordered_map<std::uint64_t, std::unique_ptr<ChunkTable>>
        tableMemo_;

    /** Misalignment poison per (full-index) DSB set: the block clock
     *  value at which the poison expires. */
    std::vector<std::uint64_t> poisonDeadline_;
    std::uint64_t blockClock_ = 0;
};

} // namespace lf

#endif // LF_FRONTEND_ENGINE_HH
