/**
 * @file
 * FrontendEngine: the per-cycle micro-op delivery machine for one
 * physical core with two hardware threads.
 *
 * Each cycle, one ready thread wins the delivery slot (round-robin
 * arbitration, as the MITE/DSB read port is shared between SMT
 * siblings). The winning thread delivers one chunk from:
 *   - the LSD, if a captured loop is streaming (6 uops/cycle with a
 *     bubble at every loop turnaround),
 *   - the DSB, on a micro-op cache hit (one line per cycle),
 *   - the MITE, otherwise (L1I fetch + predecode with LCP stalls +
 *     5-wide decode), which also fills the DSB.
 * Path switches charge the penalties of FrontendParams.
 *
 * The engine exposes popUops() for the backend, speculativeFetch() for
 * transient (Spectre) execution that updates frontend state without
 * retiring, and setPartitioned() for the SMT DSB repartitioning the MT
 * attacks exploit.
 */

#ifndef LF_FRONTEND_ENGINE_HH
#define LF_FRONTEND_ENGINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "frontend/bpu.hh"
#include "frontend/chunk.hh"
#include "frontend/dsb.hh"
#include "frontend/l1i_cache.hh"
#include "frontend/loop_monitor.hh"
#include "frontend/params.hh"
#include "frontend/perf_counters.hh"
#include "isa/program.hh"

namespace lf {

class FrontendEngine
{
  public:
    static constexpr int kNumThreads = 2;

    explicit FrontendEngine(const FrontendParams &params);

    /** @name Thread program control */
    /// @{
    /** Bind @p program to thread @p tid and reset its pipeline state
     *  (pc = entry, LSD off, IDQ drained). Shared structures (DSB,
     *  L1I, BPU) are untouched — their persistence across program
     *  switches is what the attacks measure. */
    void setProgram(ThreadId tid, const Program *program);

    /** Unbind the thread (it becomes idle). */
    void clearProgram(ThreadId tid);

    /** Thread has a program and has not halted. */
    bool threadRunnable(ThreadId tid) const;
    bool threadHasProgram(ThreadId tid) const;
    /// @}

    /** Advance the frontend by one core cycle. */
    void tick();

    /**
     * Reinitialize to the pristine post-construction state for
     * @p params, reusing the cache/IDQ storage where possible so a
     * per-trial reset (Core::reset()) avoids the construction
     * allocations. Bit-identical to a freshly constructed engine.
     */
    void reset(const FrontendParams &params);

    /**
     * Backend interface: pop at most @p max_uops micro-ops from the
     * thread's IDQ. @p insts_retired is incremented for every
     * end-of-instruction marker popped.
     */
    int popUops(ThreadId tid, int max_uops, std::uint64_t &insts_retired);

    int idqOccupancy(ThreadId tid) const;

    /** @name SMT partitioning */
    /// @{
    void setPartitioned(bool partitioned);
    bool partitioned() const { return dsb_.partitioned(); }
    /// @}

    /** @name Mitigation hooks (src/defense) */
    /// @{
    /**
     * MITE-only delivery: with the DSB disabled, lookups never hit,
     * MITE decodes stop filling lines, and (through inclusion) the
     * LSD never engages. Disabling flushes the current contents.
     */
    void setDsbEnabled(bool enabled);
    bool dsbEnabled() const { return dsbEnabled_; }

    /**
     * Static SMT split of the LSD replay port: an engaged loop
     * streams privately into its IDQ — without arbitrating for the
     * shared MITE/DSB delivery slot — but at half the replay width,
     * whether or not the sibling thread runs (non-work-conserving).
     */
    void setLsdStaticPartition(bool partitioned);
    bool lsdStaticPartition() const { return lsdStaticPartition_; }
    /// @}

    /**
     * Transient (wrong-path) fetch: walk up to @p max_chunks chunks
     * from @p start through the normal L1I/DSB fill path *without*
     * delivering anything to the backend. Follows unconditional jumps,
     * stops at conditional branches. This models speculative frontend
     * state updates, the basis of the Spectre variant in Sec. IX.
     */
    void speculativeFetch(ThreadId tid, Addr start, int max_chunks);

    /** Flush one thread's pipeline-local frontend state (LSD, IDQ,
     *  loop detection); used at enclave entry/exit. */
    void flushThreadFrontend(ThreadId tid);

    /** @name Component and counter access */
    /// @{
    Dsb &dsb() { return dsb_; }
    const Dsb &dsb() const { return dsb_; }
    L1iCache &l1i() { return l1i_; }
    const L1iCache &l1i() const { return l1i_; }
    Bpu &bpu() { return bpu_; }
    PerfCounters &counters(ThreadId tid);
    const PerfCounters &counters(ThreadId tid) const;
    Cycles cycle() const { return cycle_; }
    const FrontendParams &params() const { return params_; }
    bool lsdActive(ThreadId tid) const;
    /// @}

  private:
    struct ThreadState
    {
        explicit ThreadState(const FrontendParams &params)
            : monitor(params)
        {
        }

        const Program *program = nullptr;
        std::unique_ptr<ChunkCache> chunks;
        Addr pc = 0;
        bool halted = true;
        Cycles stall = 0;
        DeliveryPath lastSource = DeliveryPath::MITE;
        std::deque<bool> idq; //!< end-of-instruction flag per uop

        bool lsdActive = false;
        std::vector<bool> lsdBody; //!< end-of-inst flag per body uop
        std::size_t lsdPos = 0;
        Addr lsdHead = 0;

        LoopMonitor monitor;
        bool nextIsBlockStart = true;
        bool prevChunkLcp = false;

        /** A chunk whose fetch/decode latency is still being paid;
         *  its micro-ops deliver when the stall drains. */
        const Chunk *pendingChunk = nullptr;
        bool pendingFromDsb = false;
        std::unordered_map<int, std::uint64_t> condCounts;
        PerfCounters counters;
    };

    ThreadState &state(ThreadId tid);
    const ThreadState &state(ThreadId tid) const;

    bool deliverable(const ThreadState &ts) const;
    void deliver(ThreadId tid);
    void deliverLsd(ThreadId tid);
    Cycles dsbPenalty(ThreadId tid, const Chunk &chunk);
    Cycles mitePenalty(ThreadId tid, const Chunk &chunk);
    void deliverFromDsb(ThreadId tid, const Chunk &chunk);
    void deliverFromMite(ThreadId tid, const Chunk &chunk);
    void finishChunk(ThreadId tid, const Chunk &chunk, bool from_dsb);
    void pushUops(ThreadId tid, const Chunk &chunk);
    void engageLsd(ThreadId tid);
    void flushLsd(ThreadId tid);
    bool lsdQualifies(ThreadId tid) const;
    void onDsbEvict(ThreadId tid, Addr key);
    void poisonSet(Addr key);
    bool setPoisoned(Addr key) const;
    Cycles chargeL1i(ThreadId tid, const Chunk &chunk);

    FrontendParams params_;
    L1iCache l1i_;
    Dsb dsb_;
    Bpu bpu_;
    bool dsbEnabled_ = true;
    bool lsdStaticPartition_ = false;
    std::array<ThreadState, kNumThreads> threads_;
    Cycles cycle_ = 0;
    int lastSlot_ = kNumThreads - 1;

    /** Misalignment poison per (full-index) DSB set: the block clock
     *  value at which the poison expires. */
    std::vector<std::uint64_t> poisonDeadline_;
    std::uint64_t blockClock_ = 0;
};

} // namespace lf

#endif // LF_FRONTEND_ENGINE_HH
