#include "frontend/prepared.hh"

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>

namespace lf {

namespace {

std::atomic<bool> g_programCacheEnabled{true};
std::atomic<bool> g_chunkTableReuseEnabled{true};

std::atomic<std::uint64_t> g_preparedHits{0};
std::atomic<std::uint64_t> g_preparedMisses{0};
thread_local std::uint64_t t_preparedHits = 0;
thread_local std::uint64_t t_preparedMisses = 0;

void
countHit()
{
    g_preparedHits.fetch_add(1, std::memory_order_relaxed);
    ++t_preparedHits;
}

void
countMiss()
{
    g_preparedMisses.fetch_add(1, std::memory_order_relaxed);
    ++t_preparedMisses;
}

struct PreparedCache
{
    std::mutex mutex;
    std::unordered_map<std::string, PreparedChainPtr> entries;
};

PreparedCache &
cache()
{
    static PreparedCache instance;
    return instance;
}

/**
 * Build-then-publish: chains are built outside the cache lock (builds
 * can take microseconds; lookups must not serialize behind them), and
 * a losing racer simply adopts the winner's entry.
 */
template <typename BuildFn>
PreparedChainPtr
memoise(const std::string &key, BuildFn &&build)
{
    if (!g_programCacheEnabled.load(std::memory_order_relaxed)) {
        countMiss();
        return build();
    }
    {
        std::lock_guard<std::mutex> lock(cache().mutex);
        auto it = cache().entries.find(key);
        if (it != cache().entries.end()) {
            countHit();
            return it->second;
        }
    }
    countMiss();
    PreparedChainPtr built = build();
    std::lock_guard<std::mutex> lock(cache().mutex);
    auto [it, inserted] = cache().entries.emplace(key, built);
    return it->second;
}

/** Wrap a freshly built ChainProgram with its decode. The table is
 *  built only after the chain has reached its final resting place, so
 *  its internal pointers into the program image never move. */
PreparedChainPtr
finishChain(ChainProgram &&chain, int line_uops)
{
    auto prepared = std::make_shared<PreparedChain>();
    prepared->chain = std::move(chain);
    prepared->table = ChunkTable(prepared->chain.program, line_uops);
    return prepared;
}

} // namespace

PreparedChainPtr
prepareMixBlockChain(Addr base, int set,
                     const std::vector<BlockSpec> &specs, int line_uops)
{
    std::ostringstream key;
    key << "mix|" << base << '|' << set << '|' << line_uops;
    for (const BlockSpec &spec : specs)
        key << '|' << spec.way << (spec.misaligned ? 'm' : 'a');
    return memoise(key.str(), [&] {
        return finishChain(buildMixBlockChain(base, set, specs),
                           line_uops);
    });
}

PreparedChainPtr
prepareAlignedMisalignedChain(Addr base, int set, int aligned_blocks,
                              int misaligned_blocks, int first_way,
                              int line_uops)
{
    std::ostringstream key;
    key << "am|" << base << '|' << set << '|' << aligned_blocks << '|'
        << misaligned_blocks << '|' << first_way << '|' << line_uops;
    return memoise(key.str(), [&] {
        return finishChain(
            buildAlignedMisalignedChain(base, set, aligned_blocks,
                                        misaligned_blocks, first_way),
            line_uops);
    });
}

PreparedChainPtr
prepareMixBlockPass(Addr base, int set,
                    const std::vector<BlockSpec> &specs, int line_uops)
{
    std::ostringstream key;
    key << "pass|" << base << '|' << set << '|' << line_uops;
    for (const BlockSpec &spec : specs)
        key << '|' << spec.way << (spec.misaligned ? 'm' : 'a');
    return memoise(key.str(), [&] {
        return finishChain(buildMixBlockPass(base, set, specs),
                           line_uops);
    });
}

PreparedChainPtr
prepareNopLoop(Addr base, int nops, int line_uops)
{
    std::ostringstream key;
    key << "nop|" << base << '|' << nops << '|' << line_uops;
    return memoise(key.str(), [&] {
        return finishChain(buildNopLoop(base, nops), line_uops);
    });
}

PreparedChainPtr
prepareLcpAddLoop(Addr base, LcpPattern pattern, int r, int line_uops)
{
    std::ostringstream key;
    key << "lcp|" << base << '|' << static_cast<int>(pattern) << '|' << r
        << '|' << line_uops;
    return memoise(key.str(), [&] {
        return finishChain(buildLcpAddLoop(base, pattern, r), line_uops);
    });
}

void
setProgramCacheEnabled(bool on)
{
    g_programCacheEnabled.store(on, std::memory_order_relaxed);
}

bool
programCacheEnabled()
{
    return g_programCacheEnabled.load(std::memory_order_relaxed);
}

void
setChunkTableReuseEnabled(bool on)
{
    g_chunkTableReuseEnabled.store(on, std::memory_order_relaxed);
}

bool
chunkTableReuseEnabled()
{
    return g_chunkTableReuseEnabled.load(std::memory_order_relaxed);
}

std::uint64_t
preparedCacheHits()
{
    return g_preparedHits.load(std::memory_order_relaxed);
}

std::uint64_t
preparedCacheMisses()
{
    return g_preparedMisses.load(std::memory_order_relaxed);
}

std::uint64_t
preparedCacheThreadHits()
{
    return t_preparedHits;
}

std::uint64_t
preparedCacheThreadMisses()
{
    return t_preparedMisses;
}

std::size_t
programCacheSize()
{
    std::lock_guard<std::mutex> lock(cache().mutex);
    return cache().entries.size();
}

void
clearProgramCache()
{
    std::lock_guard<std::mutex> lock(cache().mutex);
    cache().entries.clear();
}

PreparedChainPtr
findPreparedChain(const Program *program, const ChunkTable *table)
{
    std::lock_guard<std::mutex> lock(cache().mutex);
    for (const auto &entry : cache().entries) {
        const PreparedChainPtr &prepared = entry.second;
        if (&prepared->chain.program == program &&
            &prepared->table == table)
            return prepared;
    }
    return nullptr;
}

} // namespace lf
