/**
 * @file
 * Tunable parameters of the simulated frontend.
 *
 * Defaults follow Table I of the paper and Intel's documented Skylake
 * family frontend geometry: DSB of 32 sets x 8 ways with 6 micro-ops
 * per 32-byte window line, a 64 micro-op LSD, a 32 KiB 8-way L1I, and
 * a 5-wide legacy decoder.
 */

#ifndef LF_FRONTEND_PARAMS_HH
#define LF_FRONTEND_PARAMS_HH

#include "common/types.hh"

namespace lf {

struct FrontendParams
{
    /** @name DSB (micro-op cache) geometry */
    /// @{
    int dsbSets = 32;
    int dsbWays = 8;
    int dsbLineUops = 6;   //!< Max micro-ops held by one DSB line.
    /// @}

    /** @name LSD (loop stream detector) */
    /// @{
    bool lsdEnabled = true;
    int lsdCapacityUops = 64;
    /** Identical loop iterations observed before the LSD engages. */
    int lsdWarmupIters = 2;
    /** Pipeline bubble at every LSD loop turnaround. This is what makes
     *  short-loop LSD delivery slightly slower than DSB delivery, the
     *  ordering the paper measures in Fig. 2. */
    Cycles lsdLoopBubble = 2;
    /** How many subsequently delivered blocks it takes for the
     *  misalignment poison on a DSB set to decay (Sec. IV-G model). */
    int poisonDecayBlocks = 100;
    /// @}

    /** @name L1 instruction cache */
    /// @{
    int l1iSets = 64;
    int l1iWays = 8;
    int l1iLineBytes = 64;
    Cycles l1iMissLatency = 30;
    /// @}

    /** @name MITE (legacy decode) */
    /// @{
    int decodeWidth = 5;    //!< Instructions decoded per cycle.
    /** Legacy fetch bandwidth out of the L1I. This is what makes the
     *  MITE path slower than the DSB for the 25-byte mix blocks. */
    int fetchBytesPerCycle = 16;
    /** Fetch redirect bubble after a taken branch decoded via the
     *  MITE (the DSB path is architecturally shorter, Sec. IV). */
    Cycles miteBranchBubble = 1;
    /** Predecode stall per instruction carrying a length changing
     *  prefix (Sec. IV-H: "up to 3 cycles"). */
    Cycles lcpStall = 3;
    /// @}

    /** @name Path switch penalties (Sec. IV-H) */
    /// @{
    Cycles dsbToMiteSwitch = 3;
    Cycles miteToDsbSwitch = 1;
    /// @}

    /** @name Branch prediction */
    /// @{
    Cycles btbMissPenalty = 8;
    Cycles condMispredictPenalty = 14;
    /// @}

    /** @name Delivery / backend coupling */
    /// @{
    int idqEntries = 64;   //!< Per-thread IDQ capacity in micro-ops.
    /** Micro-ops the backend consumes per cycle. Chosen wider than the
     *  frontend's sustained delivery so the attack workloads stay
     *  frontend-bound, as the paper's instruction mix requires
     *  (Sec. IV-D). */
    int issueWidth = 6;
    /// @}

    /** Bytes per DSB window; fixed by the ISA model. */
    static constexpr int windowBytes = 32;
};

} // namespace lf

#endif // LF_FRONTEND_PARAMS_HH
