/**
 * @file
 * Loop detection for the LSD.
 *
 * The monitor watches the stream of delivered chunks and taken
 * branches. When the same backward-branch target closes an identical
 * chunk sequence lsdWarmupIters times in a row, and the loop
 * *qualifies*, the engine may engage the LSD.
 *
 * Qualification encodes the paper's reverse-engineered behaviour:
 *  - total micro-ops <= 64 (Sec. IV-A);
 *  - every chunk was delivered from the DSB in the last iteration
 *    (the DSB is inclusive of the LSD);
 *  - the alignment rule of Sec. IV-G: with `a` aligned and `m`
 *    misaligned blocks the LSD collides iff
 *        m >= 1 && (a + 2m >= 9 || m >= 4).
 *    This single rule reproduces every positive case the paper lists
 *    ({7a+1m}, {5a+2m}, {6a+2m}, {3a+3m}, {4a+3m}, {5a+3m}, {4m}) and
 *    every negative one ({8a}, {4a}, {5a+1m}, {4a+2m}). The intuition:
 *    a misaligned block consumes two window-tracking entries in the
 *    LSD's 8-entry tracker (a + 2m > 8 overflows it), and 4+ split
 *    blocks thrash the tracker outright.
 */

#ifndef LF_FRONTEND_LOOP_MONITOR_HH
#define LF_FRONTEND_LOOP_MONITOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "frontend/params.hh"

namespace lf {

class LoopMonitor
{
  public:
    explicit LoopMonitor(const FrontendParams &params);

    /** One delivered chunk record. */
    struct ChunkRecord
    {
        Addr key = 0;
        int uops = 0;
        bool fromDsb = false;
        /** Entered via a taken branch (a "block" start in the paper's
         *  terminology). */
        bool blockStart = false;
    };

    /** Record one delivered chunk. */
    void recordChunk(const ChunkRecord &record);

    /**
     * Record a taken branch at @p branch_addr to @p target.
     *
     * Only *backward* branches can found or close a loop candidate;
     * forward taken branches (e.g. the block-to-block jumps inside a
     * mix-block chain) are body structure and keep the accumulation
     * going.
     *
     * @return true when this closes a stable, qualified loop iteration
     *         and the LSD may engage (subject to the engine's DSB
     *         residency and poison checks).
     */
    bool recordTakenBranch(Addr branch_addr, Addr target);

    /** Sec. IV-G alignment collision rule (see file comment). */
    static bool alignmentCollides(int aligned_blocks,
                                  int misaligned_blocks);

    /** Chunk keys of the last completed loop body. */
    const std::vector<Addr> &bodyKeys() const { return bodyKeys_; }
    int bodyUops() const { return bodyUops_; }
    bool bodyContains(Addr key) const;

    /** Loop head of the current candidate (0 when none). */
    Addr head() const { return head_; }
    int stableIters() const { return stableIters_; }

    /** Full reset: LSD flush, program switch, partition change. */
    void reset();

  private:
    /** Aligned/misaligned block census of the current accumulation. */
    void census(int &aligned, int &misaligned) const;

    int capacityUops_;
    int warmupIters_;
    /** Detection gives up past this many chunks (not a loop). */
    static constexpr std::size_t kMaxChunks = 64;

    Addr head_ = 0;
    int stableIters_ = 0;
    std::vector<ChunkRecord> accum_;
    std::vector<Addr> lastKeys_;
    /** Reused key-list build buffer (recordTakenBranch hot path). */
    std::vector<Addr> scratchKeys_;
    std::vector<Addr> bodyKeys_;
    int bodyUops_ = 0;
};

} // namespace lf

#endif // LF_FRONTEND_LOOP_MONITOR_HH
