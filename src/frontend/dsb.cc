#include "frontend/dsb.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace lf {

Dsb::Dsb(const FrontendParams &params)
    : numSets_(params.dsbSets), numWays_(params.dsbWays),
      lines_(static_cast<std::size_t>(numSets_) *
             static_cast<std::size_t>(numWays_))
{
    lf_assert(numSets_ > 0 && (numSets_ & (numSets_ - 1)) == 0,
              "DSB sets must be a power of two");
    lf_assert(numSets_ >= 2, "partitioning needs at least two sets");
    lf_assert(numWays_ > 0, "DSB needs at least one way");
}

int
Dsb::setOf(ThreadId tid, Addr key) const
{
    auto window_index =
        static_cast<int>((key >> 5) & static_cast<Addr>(numSets_ - 1));
    if (salt_ != 0) {
        // Keyed mapping: fold the tag bits (above set + offset) and
        // the epoch salt into the index so same-index/different-tag
        // lines scatter to different sets.
        window_index = static_cast<int>(
            (static_cast<Addr>(window_index) ^
             splitmix64((key >> 10) ^ salt_)) &
            static_cast<Addr>(numSets_ - 1));
    }
    if (!partitioned_)
        return window_index;
    const int half = numSets_ / 2;
    const int base_index = window_index & (half - 1);
    return base_index + (tid == 0 ? 0 : half);
}

Dsb::Line *
Dsb::lineAt(int set, int way)
{
    return &lines_[static_cast<std::size_t>(set * numWays_ + way)];
}

const Dsb::Line *
Dsb::lineAt(int set, int way) const
{
    return &lines_[static_cast<std::size_t>(set * numWays_ + way)];
}

Dsb::Line *
Dsb::findLine(ThreadId tid, Addr key)
{
    const int set = setOf(tid, key);
    for (int w = 0; w < numWays_; ++w) {
        Line *line = lineAt(set, w);
        if (line->valid && line->key == key && line->tid == tid)
            return line;
    }
    return nullptr;
}

const Dsb::Line *
Dsb::findLine(ThreadId tid, Addr key) const
{
    return const_cast<Dsb *>(this)->findLine(tid, key);
}

int
Dsb::lookup(ThreadId tid, Addr key)
{
    if (Line *line = findLine(tid, key)) {
        line->lru = ++lruClock_;
        ++hits_;
        return line->uops;
    }
    ++misses_;
    return -1;
}

bool
Dsb::contains(ThreadId tid, Addr key) const
{
    return findLine(tid, key) != nullptr;
}

void
Dsb::invalidate(Line &line)
{
    if (!line.valid)
        return;
    line.valid = false;
    ++evictions_;
    if (evictFn_)
        evictFn_(line.tid, line.key);
}

void
Dsb::insert(ThreadId tid, Addr key, int uops)
{
    if (Line *existing = findLine(tid, key)) {
        existing->uops = uops;
        existing->lru = ++lruClock_;
        return;
    }
    const int set = setOf(tid, key);
    Line *victim = nullptr;
    for (int w = 0; w < numWays_; ++w) {
        Line *line = lineAt(set, w);
        if (!line->valid) {
            victim = line;
            break;
        }
        if (!victim || line->lru < victim->lru)
            victim = line;
    }
    invalidate(*victim);
    victim->valid = true;
    victim->key = key;
    victim->tid = tid;
    victim->uops = uops;
    victim->lru = ++lruClock_;
    ++inserts_;
}

void
Dsb::flushThread(ThreadId tid)
{
    for (auto &line : lines_) {
        if (line.valid && line.tid == tid)
            invalidate(line);
    }
}

void
Dsb::flushKey(ThreadId tid, Addr key)
{
    if (Line *line = findLine(tid, key))
        invalidate(*line);
}

void
Dsb::flushAll()
{
    for (auto &line : lines_)
        invalidate(line);
}

void
Dsb::setPartitioned(bool partitioned)
{
    if (partitioned_ == partitioned)
        return;
    partitioned_ = partitioned;
    ++partitionTransitions_;
    // Re-derive every line's index under the new mapping; lines that
    // are no longer where the index function says they should be are
    // lost (the hardware analogue: the repartition reshuffles the
    // storage assignment and stale entries cannot be found again).
    for (int set = 0; set < numSets_; ++set) {
        for (int way = 0; way < numWays_; ++way) {
            Line *line = lineAt(set, way);
            if (line->valid && setOf(line->tid, line->key) != set)
                invalidate(*line);
        }
    }
}

void
Dsb::setIndexSalt(std::uint64_t salt)
{
    if (salt_ == salt)
        return;
    salt_ = salt;
    // Same mechanism as a repartition: lines that are not where the
    // new index function says they should be cannot be found again.
    for (int set = 0; set < numSets_; ++set) {
        for (int way = 0; way < numWays_; ++way) {
            Line *line = lineAt(set, way);
            if (line->valid && setOf(line->tid, line->key) != set)
                invalidate(*line);
        }
    }
}

int
Dsb::occupancy(ThreadId tid, Addr key) const
{
    const int set = setOf(tid, key);
    int count = 0;
    for (int w = 0; w < numWays_; ++w) {
        if (lineAt(set, w)->valid)
            ++count;
    }
    return count;
}

void
Dsb::resetStats()
{
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    inserts_ = 0;
    partitionTransitions_ = 0;
}

void
Dsb::reset(const FrontendParams &params)
{
    numSets_ = params.dsbSets;
    numWays_ = params.dsbWays;
    lf_assert(numSets_ > 0 && (numSets_ & (numSets_ - 1)) == 0,
              "DSB sets must be a power of two");
    lf_assert(numSets_ >= 2, "partitioning needs at least two sets");
    lf_assert(numWays_ > 0, "DSB needs at least one way");
    partitioned_ = false;
    salt_ = 0;
    // assign() re-zeroes in place; only a geometry change reallocates.
    lines_.assign(static_cast<std::size_t>(numSets_) *
                      static_cast<std::size_t>(numWays_),
                  Line{});
    lruClock_ = 0;
    resetStats();
}

} // namespace lf
