/**
 * @file
 * L1 instruction cache model: set-associative, LRU, shared between the
 * two hardware threads (as on Intel SMT cores).
 *
 * The paper's attacks are designed to leave *no* L1I footprint
 * (mix blocks aliasing in the DSB map to distinct L1I sets); this
 * model exists to verify that property and to measure the L1 miss
 * rates reported in Table VII.
 */

#ifndef LF_FRONTEND_L1I_CACHE_HH
#define LF_FRONTEND_L1I_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "frontend/params.hh"

namespace lf {

/** Outcome of one L1I access. */
struct L1iAccessResult
{
    bool hit = false;
    Cycles latency = 0;   //!< Extra cycles charged (0 on a hit).
};

class L1iCache
{
  public:
    explicit L1iCache(const FrontendParams &params);

    /** Access the line containing @p addr; fills on miss. */
    L1iAccessResult access(Addr addr);

    /** True if the line containing @p addr is resident. */
    bool contains(Addr addr) const;

    /** Invalidate the line containing @p addr (clflush analogue). */
    void flushLine(Addr addr);

    /** Invalidate everything. */
    void flushAll();

    /** Reinitialize to the pristine post-construction state for
     *  @p params, reusing the line storage where the geometry is
     *  unchanged (the per-trial core-reuse fast path). */
    void reset(const FrontendParams &params);

    /** @name Statistics */
    /// @{
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    double missRate() const;
    void resetStats();
    /// @}

    int numSets() const { return numSets_; }
    int numWays() const { return numWays_; }
    int lineBytes() const { return lineBytes_; }

    /** Set index of @p addr. */
    int setOf(Addr addr) const;

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lru = 0;
    };

    Addr tagOf(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    int numSets_;
    int numWays_;
    int lineBytes_;
    Cycles missLatency_;
    std::vector<Line> lines_;
    std::uint64_t lruClock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace lf

#endif // LF_FRONTEND_L1I_CACHE_HH
