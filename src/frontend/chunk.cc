#include "frontend/chunk.hh"

#include "common/logging.hh"

namespace lf {

ChunkCache::ChunkCache(const Program *program, const FrontendParams &params)
    : program_(program), lineUops_(params.dsbLineUops)
{
    lf_assert(program_ != nullptr, "ChunkCache needs a program");
}

const Chunk *
ChunkCache::get(Addr pc)
{
    auto it = cache_.find(pc);
    if (it != cache_.end())
        return it->second.insts.empty() && !it->second.halt
            ? nullptr : &it->second;

    if (!program_->contains(pc)) {
        // Negative-cache the miss with an empty chunk.
        cache_.emplace(pc, Chunk{});
        return nullptr;
    }
    auto [pos, inserted] = cache_.emplace(pc, build(pc));
    return &pos->second;
}

Chunk
ChunkCache::build(Addr pc) const
{
    Chunk chunk;
    chunk.start = pc;
    const Addr window_end = (pc & ~Addr{31}) + 32;

    Addr cursor = pc;
    while (true) {
        const StaticInst *inst = program_->at(cursor);
        if (!inst)
            break;
        if (inst->isHalt()) {
            if (chunk.insts.empty()) {
                chunk.halt = true;
                chunk.fallThrough = inst->nextAddr();
            }
            break;
        }
        // Window rule: instructions belong to the chunk of the window
        // they *start* in (the entry instruction always qualifies).
        if (!chunk.insts.empty() && inst->addr >= window_end)
            break;
        // Line capacity rule: one chunk holds at most one line's uops.
        if (chunk.uops + inst->uops > lineUops_ && !chunk.insts.empty())
            break;
        // LCP rule: an LCP'd instruction re-syncs the predecoder and
        // always forms its own (uncacheable) chunk.
        if (inst->lcp && !chunk.insts.empty())
            break;
        chunk.insts.push_back(inst);
        chunk.uops += inst->uops;
        for (int u = 0; u < inst->uops; ++u)
            chunk.endOfInst.push_back(u + 1 == inst->uops);
        if (inst->lcp)
            ++chunk.lcpCount;
        cursor = inst->nextAddr();
        if (inst->isBranch()) {
            chunk.endsBranch = true;
            break;
        }
        if (inst->lcp)
            break; // LCP'd instruction stands alone
    }

    if (!chunk.insts.empty()) {
        chunk.bytes = static_cast<int>(
            chunk.insts.back()->nextAddr() - chunk.start);
        chunk.fallThrough = chunk.insts.back()->nextAddr();
        lf_assert(chunk.uops <= lineUops_ || chunk.insts.size() == 1,
                  "chunk at 0x%llx exceeds one line",
                  static_cast<unsigned long long>(pc));
    }
    return chunk;
}

} // namespace lf
