#include "frontend/chunk.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lf {

ChunkTable::ChunkTable(const Program &program, int line_uops)
    : lineUops_(line_uops)
{
    lf_assert(line_uops > 0, "chunk table needs a positive line size");

    // One chunk per instruction start address; every possible fetch
    // target is precomputed, so lookups never mutate the table.
    const auto insts = program.instructions();
    starts_.reserve(insts.size());
    chunks_.reserve(insts.size());
    std::vector<std::size_t> offsets;
    offsets.reserve(insts.size());
    for (const StaticInst *inst : insts) {
        starts_.push_back(inst->addr);
        offsets.push_back(flags_.size());
        chunks_.push_back(build(program, inst->addr));
    }
    // The pool and the chunk array are final only now; resolve each
    // chunk's flag span and successor pointers (both point into this
    // table's own buffers, which is why copying is deleted).
    for (std::size_t i = 0; i < chunks_.size(); ++i)
        chunks_[i].endOfInst = flags_.data() + offsets[i];
    for (Chunk &chunk : chunks_) {
        chunk.fallChunk = get(chunk.fallThrough);
        if (chunk.branchInst != nullptr) {
            chunk.takenChunk = get(chunk.branchInst->target);
            chunk.notTakenChunk = get(chunk.branchInst->nextAddr());
        }
    }
}

const Chunk *
ChunkTable::get(Addr pc) const
{
    const auto it = std::lower_bound(starts_.begin(), starts_.end(), pc);
    if (it == starts_.end() || *it != pc)
        return nullptr;
    return &chunks_[static_cast<std::size_t>(it - starts_.begin())];
}

Chunk
ChunkTable::build(const Program &program, Addr pc)
{
    Chunk chunk;
    chunk.start = pc;
    const Addr window_end = (pc & ~Addr{31}) + 32;

    const StaticInst *last = nullptr;
    Addr cursor = pc;
    while (true) {
        const StaticInst *inst = program.at(cursor);
        if (!inst)
            break;
        if (inst->isHalt()) {
            if (chunk.numInsts_ == 0) {
                chunk.halt = true;
                chunk.fallThrough = inst->nextAddr();
            }
            break;
        }
        // Window rule: instructions belong to the chunk of the window
        // they *start* in (the entry instruction always qualifies).
        if (chunk.numInsts_ > 0 && inst->addr >= window_end)
            break;
        // Line capacity rule: one chunk holds at most one line's uops.
        if (chunk.uops + inst->uops > lineUops_ && chunk.numInsts_ > 0)
            break;
        // LCP rule: an LCP'd instruction re-syncs the predecoder and
        // always forms its own (uncacheable) chunk.
        if (inst->lcp && chunk.numInsts_ > 0)
            break;
        ++chunk.numInsts_;
        last = inst;
        chunk.uops += inst->uops;
        for (int u = 0; u < inst->uops; ++u)
            flags_.push_back(u + 1 == inst->uops ? 1 : 0);
        if (inst->lcp)
            ++chunk.lcpCount;
        cursor = inst->nextAddr();
        if (inst->isBranch()) {
            chunk.endsBranch = true;
            chunk.branchInst = inst;
            break;
        }
        if (inst->lcp)
            break; // LCP'd instruction stands alone
    }

    if (chunk.numInsts_ > 0) {
        chunk.bytes = static_cast<int>(last->nextAddr() - chunk.start);
        chunk.fallThrough = last->nextAddr();
        lf_assert(chunk.uops <= lineUops_ || chunk.numInsts_ == 1,
                  "chunk at 0x%llx exceeds one line",
                  static_cast<unsigned long long>(pc));
    }
    return chunk;
}

} // namespace lf
