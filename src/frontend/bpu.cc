#include "frontend/bpu.hh"

namespace lf {

bool
Bpu::btbHas(Addr branch_addr) const
{
    return btb_.find(branch_addr) != btb_.end();
}

void
Bpu::btbInsert(Addr branch_addr, Addr target)
{
    btb_[branch_addr] = target;
}

bool
Bpu::predictCond(Addr branch_addr) const
{
    auto it = counters_.find(branch_addr);
    if (it == counters_.end())
        return false;
    return it->second >= 2;
}

void
Bpu::updateCond(Addr branch_addr, bool taken)
{
    std::uint8_t &counter = counters_[branch_addr];
    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

void
Bpu::reset()
{
    btb_.clear();
    counters_.clear();
    btbMisses_ = 0;
    condMispredicts_ = 0;
}

} // namespace lf
