/**
 * @file
 * Decoded Stream Buffer (micro-op cache) model.
 *
 * Lines are keyed by the *entry address* of a decoded instruction run
 * (a "chunk", see chunk.hh): the address of the first instruction that
 * starts inside one 32-byte window. The set index is addr[9:5] of the
 * key in single-thread mode. When both hardware threads are active the
 * DSB is set-partitioned (Sec. IV of the paper): each thread indexes
 * with addr[8:5] into its own half. Changing the partition state
 * invalidates every line whose index under the new mapping differs
 * from its resident position — this is the mechanism behind the MT
 * attacks, where activating the second thread forces evictions of the
 * first thread's micro-ops.
 *
 * The DSB is inclusive of the LSD: an eviction callback lets the owner
 * flush the LSD when a loop-body line is lost.
 */

#ifndef LF_FRONTEND_DSB_HH
#define LF_FRONTEND_DSB_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "frontend/params.hh"

namespace lf {

class Dsb
{
  public:
    /** Callback invoked for every evicted/invalidated line. */
    using EvictFn = std::function<void(ThreadId tid, Addr key)>;

    explicit Dsb(const FrontendParams &params);

    void setEvictCallback(EvictFn fn) { evictFn_ = std::move(fn); }

    /**
     * Look up the line keyed by @p key for thread @p tid.
     * Updates LRU on a hit. Returns the micro-op count of the line,
     * or -1 on a miss.
     */
    int lookup(ThreadId tid, Addr key);

    /** Non-updating residency probe. */
    bool contains(ThreadId tid, Addr key) const;

    /**
     * Insert a line (after a MITE decode of the chunk at @p key).
     * Evicts the LRU way of the target set when full, firing the
     * eviction callback.
     */
    void insert(ThreadId tid, Addr key, int uops);

    /** Invalidate one thread's lines (e.g. enclave teardown). */
    void flushThread(ThreadId tid);

    /** Invalidate a single line by key (clflush of code drops the
     *  derived micro-op cache line as well). No-op when absent. */
    void flushKey(ThreadId tid, Addr key);

    /** Invalidate everything. */
    void flushAll();

    /**
     * Reinitialize to the pristine post-construction state for
     * @p params, reusing the line storage (no reallocation when the
     * geometry is unchanged — the per-trial core-reuse fast path).
     * The eviction callback is kept: it belongs to the owning engine,
     * which outlives the reset.
     */
    void reset(const FrontendParams &params);

    /**
     * Switch between shared (32-set) and partitioned (2 x 16-set)
     * indexing. Lines whose position is wrong under the new mapping
     * are invalidated (with callback). No-op if state is unchanged.
     */
    void setPartitioned(bool partitioned);
    bool partitioned() const { return partitioned_; }

    /**
     * Install a keyed (CEASER-style) set-index mapping: with a
     * non-zero @p salt the index mixes the line's tag bits with the
     * salt, so equal-index/different-tag addresses no longer collide
     * in one set. Salt 0 restores the plain addr[9:5] mapping. Lines
     * whose index moved under the new key are invalidated (with
     * callback). No-op if the salt is unchanged.
     */
    void setIndexSalt(std::uint64_t salt);
    std::uint64_t indexSalt() const { return salt_; }

    /** Set index of @p key for @p tid under the current mode. */
    int setOf(ThreadId tid, Addr key) const;

    /** Number of valid lines currently mapping to @p tid's set of
     *  @p key (used by tests to check way pressure). */
    int occupancy(ThreadId tid, Addr key) const;

    /** @name Statistics */
    /// @{
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t inserts() const { return inserts_; }
    std::uint64_t partitionTransitions() const
    {
        return partitionTransitions_;
    }
    void resetStats();
    /// @}

    int numSets() const { return numSets_; }
    int numWays() const { return numWays_; }

  private:
    struct Line
    {
        bool valid = false;
        Addr key = 0;
        ThreadId tid = kInvalidThread;
        int uops = 0;
        std::uint64_t lru = 0;
    };

    Line *lineAt(int set, int way);
    const Line *lineAt(int set, int way) const;
    Line *findLine(ThreadId tid, Addr key);
    const Line *findLine(ThreadId tid, Addr key) const;
    void invalidate(Line &line);

    int numSets_;
    int numWays_;
    bool partitioned_ = false;
    std::uint64_t salt_ = 0;
    std::vector<Line> lines_;
    std::uint64_t lruClock_ = 0;
    EvictFn evictFn_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t inserts_ = 0;
    std::uint64_t partitionTransitions_ = 0;
};

} // namespace lf

#endif // LF_FRONTEND_DSB_HH
