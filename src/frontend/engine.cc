#include "frontend/engine.hh"
#include <algorithm>

#include "common/logging.hh"
#include "frontend/prepared.hh"

namespace lf {

FrontendEngine::FrontendEngine(const FrontendParams &params)
    : params_(params), l1i_(params), dsb_(params),
      threads_{ThreadState(params), ThreadState(params)},
      poisonDeadline_(static_cast<std::size_t>(params.dsbSets), 0)
{
    dsb_.setEvictCallback([this](ThreadId tid, Addr key) {
        onDsbEvict(tid, key);
    });
}

void
FrontendEngine::reset(const FrontendParams &params)
{
    params_ = params;
    l1i_.reset(params);
    dsb_.reset(params); // keeps the eviction callback bound to us
    bpu_.reset();
    dsbEnabled_ = true;
    lsdStaticPartition_ = false;
    cycle_ = 0;
    fastForwardedCycles_ = 0;
    lastSlot_ = kNumThreads - 1;
    poisonDeadline_.assign(static_cast<std::size_t>(params.dsbSets), 0);
    blockClock_ = 0;
    tableMemo_.clear();
    for (auto &ts : threads_) {
        ts.program = nullptr;
        ts.chunks = nullptr;
        ts.localTable.reset();
        ts.pc = 0;
        ts.nextChunk = nullptr;
        ts.halted = true;
        ts.stall = 0;
        ts.lastSource = DeliveryPath::MITE;
        ts.idq.configure(params.idqEntries);
        ts.lsdActive = false;
        ts.lsdBody.clear();
        ts.lsdPos = 0;
        ts.lsdHead = 0;
        ts.monitor = LoopMonitor(params);
        ts.nextIsBlockStart = true;
        ts.prevChunkLcp = false;
        ts.pendingChunk = nullptr;
        ts.pendingFromDsb = false;
        if (!ts.condCounts.empty())
            ts.condCounts.clear();
        ts.counters = PerfCounters{};
    }
}

FrontendEngine::SavedState
FrontendEngine::saveState() const
{
    const auto saveThread = [](const ThreadState &ts) {
        lf_assert(ts.localTable == nullptr,
                  "cannot snapshot a per-bind local decode");
        return SavedThreadState{
            ts.program,     ts.chunks,           ts.pc,
            ts.nextChunk,   ts.halted,           ts.stall,
            ts.lastSource,  ts.idq,              ts.lsdActive,
            ts.lsdBody,     ts.lsdPos,           ts.lsdHead,
            ts.monitor,     ts.nextIsBlockStart, ts.prevChunkLcp,
            ts.pendingChunk, ts.pendingFromDsb,  ts.condCounts,
            ts.counters};
    };
    SavedState s{l1i_,
                 dsb_,
                 bpu_,
                 dsbEnabled_,
                 lsdStaticPartition_,
                 {{saveThread(threads_[0]), saveThread(threads_[1])}},
                 cycle_,
                 fastForwardedCycles_,
                 lastSlot_,
                 poisonDeadline_,
                 blockClock_};
    // The copied Dsb carries the source engine's eviction callback;
    // neutralize it — the stored image is never ticked, and loadState
    // reinstalls the destination engine's own callback.
    s.dsb.setEvictCallback(nullptr);
    return s;
}

void
FrontendEngine::loadState(const SavedState &s)
{
    l1i_ = s.l1i;
    dsb_ = s.dsb;
    dsb_.setEvictCallback([this](ThreadId tid, Addr key) {
        onDsbEvict(tid, key);
    });
    bpu_ = s.bpu;
    dsbEnabled_ = s.dsbEnabled;
    lsdStaticPartition_ = s.lsdStaticPartition;
    cycle_ = s.cycle;
    fastForwardedCycles_ = s.fastForwardedCycles;
    lastSlot_ = s.lastSlot;
    poisonDeadline_ = s.poisonDeadline;
    blockClock_ = s.blockClock;
    tableMemo_.clear(); // restored threads never point into the memo
    for (int tid = 0; tid < kNumThreads; ++tid) {
        ThreadState &ts = threads_[static_cast<std::size_t>(tid)];
        const SavedThreadState &st =
            s.threads[static_cast<std::size_t>(tid)];
        ts.program = st.program;
        ts.chunks = st.chunks;
        ts.localTable.reset();
        ts.pc = st.pc;
        ts.nextChunk = st.nextChunk;
        ts.halted = st.halted;
        ts.stall = st.stall;
        ts.lastSource = st.lastSource;
        ts.idq = st.idq;
        ts.lsdActive = st.lsdActive;
        ts.lsdBody = st.lsdBody;
        ts.lsdPos = st.lsdPos;
        ts.lsdHead = st.lsdHead;
        ts.monitor = st.monitor;
        ts.nextIsBlockStart = st.nextIsBlockStart;
        ts.prevChunkLcp = st.prevChunkLcp;
        ts.pendingChunk = st.pendingChunk;
        ts.pendingFromDsb = st.pendingFromDsb;
        ts.condCounts = st.condCounts;
        ts.counters = st.counters;
    }
}

FrontendEngine::ThreadState &
FrontendEngine::state(ThreadId tid)
{
    lf_assert(tid >= 0 && tid < kNumThreads, "bad thread id %d", tid);
    return threads_[static_cast<std::size_t>(tid)];
}

const FrontendEngine::ThreadState &
FrontendEngine::state(ThreadId tid) const
{
    return const_cast<FrontendEngine *>(this)->state(tid);
}

PerfCounters &
FrontendEngine::counters(ThreadId tid)
{
    return state(tid).counters;
}

const PerfCounters &
FrontendEngine::counters(ThreadId tid) const
{
    return state(tid).counters;
}

bool
FrontendEngine::lsdActive(ThreadId tid) const
{
    return state(tid).lsdActive;
}

const ChunkTable *
FrontendEngine::resolveTable(ThreadState &ts, const Program *program,
                             const ChunkTable *table)
{
    if (!program) {
        ts.localTable.reset();
        return nullptr;
    }
    if (!chunkTableReuseEnabled()) {
        // Legacy rebind cost (bench baseline): re-decode the whole
        // image on every bind, as the pre-PR-7 engine did. The decode
        // is identical, only the work is repeated.
        ts.localTable = std::make_unique<ChunkTable>(*program, params_);
        return ts.localTable.get();
    }
    if (table)
        return table;
    auto &slot = tableMemo_[program->uid()];
    if (!slot)
        slot = std::make_unique<ChunkTable>(*program, params_);
    return slot.get();
}

void
FrontendEngine::setProgram(ThreadId tid, const Program *program,
                           const ChunkTable *table)
{
    ThreadState &ts = state(tid);
    ts.program = program;
    ts.chunks = resolveTable(ts, program, table);
    ts.pc = program ? program->entry() : 0;
    ts.nextChunk = nullptr;
    ts.halted = (program == nullptr);
    ts.stall = 0;
    ts.lastSource = DeliveryPath::MITE;
    ts.idq.clear();
    ts.lsdActive = false;
    ts.lsdBody.clear();
    ts.lsdPos = 0;
    ts.lsdHead = 0;
    ts.monitor.reset();
    ts.nextIsBlockStart = true;
    ts.prevChunkLcp = false;
    ts.pendingChunk = nullptr;
    ts.pendingFromDsb = false;
    if (!ts.condCounts.empty())
        ts.condCounts.clear();
}

void
FrontendEngine::clearProgram(ThreadId tid)
{
    setProgram(tid, nullptr);
}

bool
FrontendEngine::threadRunnable(ThreadId tid) const
{
    const ThreadState &ts = state(tid);
    return ts.program != nullptr && !ts.halted;
}

bool
FrontendEngine::threadHasProgram(ThreadId tid) const
{
    return state(tid).program != nullptr;
}

int
FrontendEngine::idqOccupancy(ThreadId tid) const
{
    return static_cast<int>(state(tid).idq.size());
}

bool
FrontendEngine::deliverable(const ThreadState &ts) const
{
    if (!ts.program || ts.halted || ts.stall > 0)
        return false;
    // Require space for a worst-case chunk so delivery never splits.
    return ts.idq.size() + params_.dsbLineUops <= params_.idqEntries;
}

void
FrontendEngine::tick()
{
    ++cycle_;
    std::array<bool, kNumThreads> delivered{};
    if (lsdStaticPartition_) {
        // Statically split replay port: engaged loops stream
        // privately into their IDQs and leave the shared MITE/DSB
        // slot to the non-streaming thread(s).
        for (int tid = 0; tid < kNumThreads; ++tid) {
            ThreadState &ts = threads_[static_cast<std::size_t>(tid)];
            if (ts.lsdActive && !ts.pendingChunk && deliverable(ts)) {
                deliverLsd(tid);
                delivered[static_cast<std::size_t>(tid)] = true;
            }
        }
    }
    for (int i = 0; i < kNumThreads; ++i) {
        const int tid = (lastSlot_ + 1 + i) % kNumThreads;
        if (delivered[static_cast<std::size_t>(tid)])
            continue;
        if (!deliverable(threads_[static_cast<std::size_t>(tid)]))
            continue;
        deliver(tid);
        lastSlot_ = tid;
        delivered[static_cast<std::size_t>(tid)] = true;
        break;
    }
    // Stall cycles elapse for every thread that did not deliver this
    // cycle; a stall of N set during delivery blocks exactly the next
    // N cycles.
    for (int tid = 0; tid < kNumThreads; ++tid) {
        ThreadState &ts = threads_[static_cast<std::size_t>(tid)];
        if (!delivered[static_cast<std::size_t>(tid)] && ts.stall > 0)
            --ts.stall;
    }
}

void
FrontendEngine::deliver(ThreadId tid)
{
    ThreadState &ts = state(tid);
    if (ts.pendingChunk) {
        // The fetch/decode latency of this chunk has been paid; its
        // micro-ops arrive now.
        const Chunk *chunk = ts.pendingChunk;
        ts.pendingChunk = nullptr;
        if (ts.pendingFromDsb)
            deliverFromDsb(tid, *chunk);
        else
            deliverFromMite(tid, *chunk);
        return;
    }
    if (ts.lsdActive) {
        deliverLsd(tid);
        return;
    }
    const Chunk *chunk =
        ts.nextChunk != nullptr ? ts.nextChunk : ts.chunks->get(ts.pc);
    if (!chunk || chunk->halt) {
        ts.halted = true;
        return;
    }
    const bool hit = dsbEnabled_ && dsb_.lookup(tid, ts.pc) >= 0;
    const Cycles penalty =
        hit ? dsbPenalty(tid, *chunk) : mitePenalty(tid, *chunk);
    if (penalty > 0) {
        // Pay the latency first; deliver when it has drained.
        ts.stall += penalty;
        ts.pendingChunk = chunk;
        ts.pendingFromDsb = hit;
        return;
    }
    if (hit)
        deliverFromDsb(tid, *chunk);
    else
        deliverFromMite(tid, *chunk);
}

Cycles
FrontendEngine::dsbPenalty(ThreadId tid, const Chunk &chunk)
{
    (void)chunk;
    ThreadState &ts = state(tid);
    if (ts.lastSource != DeliveryPath::DSB) {
        ts.counters.switchPenaltyCycles += params_.miteToDsbSwitch;
        ++ts.counters.miteToDsbSwitches;
        return params_.miteToDsbSwitch;
    }
    return 0;
}

Cycles
FrontendEngine::mitePenalty(ThreadId tid, const Chunk &chunk)
{
    ThreadState &ts = state(tid);
    Cycles penalty = 0;
    if (ts.lastSource != DeliveryPath::MITE) {
        penalty += params_.dsbToMiteSwitch;
        ts.counters.switchPenaltyCycles += params_.dsbToMiteSwitch;
        ++ts.counters.dsbToMiteSwitches;
    }
    penalty += chargeL1i(tid, chunk);

    // Decode: decodeWidth simple instructions per cycle, limited by
    // the legacy fetch bandwidth; every LCP'd instruction predecodes
    // serially with an extra stall.
    const int plain_insts = chunk.numInsts() - chunk.lcpCount;
    const Cycles width_cycles =
        static_cast<Cycles>((plain_insts + params_.decodeWidth - 1) /
                            params_.decodeWidth);
    const Cycles fetch_cycles = static_cast<Cycles>(
        (chunk.bytes + params_.fetchBytesPerCycle - 1) /
        params_.fetchBytesPerCycle);
    Cycles decode_cycles = std::max(width_cycles, fetch_cycles);
    if (chunk.endsBranch)
        decode_cycles += params_.miteBranchBubble;
    if (chunk.lcpCount > 0) {
        // Consecutive LCP'd instructions serialize the predecoder
        // (Sec. IV-H: "LCP instructions are only decoded
        // sequentially"): back-to-back LCPs stall 4x as long.
        const Cycles per_lcp = ts.prevChunkLcp
            ? params_.lcpStall * 4 : params_.lcpStall;
        const Cycles stall_cycles =
            static_cast<Cycles>(chunk.lcpCount) * per_lcp;
        ts.counters.lcpStallCycles += stall_cycles;
        decode_cycles += stall_cycles +
            static_cast<Cycles>(chunk.lcpCount);
    }
    ts.prevChunkLcp = chunk.lcpCount > 0;
    if (decode_cycles > 0)
        penalty += decode_cycles - 1; // the delivery cycle itself
    return penalty;
}

void
FrontendEngine::deliverLsd(ThreadId tid)
{
    ThreadState &ts = state(tid);
    const std::size_t body_uops = ts.lsdBody.size();
    lf_assert(body_uops > 0, "LSD active with empty body");
    const int space = params_.idqEntries - ts.idq.size();
    // A statically partitioned replay port streams at half width —
    // the thread keeps only its half even with the sibling idle.
    const int width = lsdStaticPartition_
        ? std::max(1, params_.dsbLineUops / 2) : params_.dsbLineUops;
    int n = std::min({width,
                      static_cast<int>(body_uops - ts.lsdPos), space});
    lf_assert(n > 0, "LSD delivery with no progress");
    ts.idq.pushN(ts.lsdBody.data() + ts.lsdPos, n);
    ts.lsdPos += static_cast<std::size_t>(n);
    ts.counters.uopsLsd += static_cast<std::uint64_t>(n);
    ++ts.counters.idqPushes;
    ts.counters.idqPushedUops += static_cast<std::uint64_t>(n);
    ts.counters.idqOccupancyAtPush +=
        static_cast<std::uint64_t>(ts.idq.size());
    ts.lastSource = DeliveryPath::LSD;
    if (ts.lsdPos == body_uops) {
        ts.lsdPos = 0;
        ts.stall += params_.lsdLoopBubble;
    }
}

void
FrontendEngine::pushUops(ThreadId tid, const Chunk &chunk)
{
    ThreadState &ts = state(tid);
    ts.idq.pushN(chunk.endOfInst, chunk.uops);
    ++ts.counters.idqPushes;
    ts.counters.idqPushedUops += static_cast<std::uint64_t>(chunk.uops);
    ts.counters.idqOccupancyAtPush +=
        static_cast<std::uint64_t>(ts.idq.size());
}

void
FrontendEngine::deliverFromDsb(ThreadId tid, const Chunk &chunk)
{
    ThreadState &ts = state(tid);
    pushUops(tid, chunk);
    ts.counters.uopsDsb += static_cast<std::uint64_t>(chunk.uops);
    ts.lastSource = DeliveryPath::DSB;
    ts.prevChunkLcp = false;
    finishChunk(tid, chunk, true);
}

Cycles
FrontendEngine::chargeL1i(ThreadId tid, const Chunk &chunk)
{
    ThreadState &ts = state(tid);
    Cycles penalty = 0;
    const Addr line_mask = ~static_cast<Addr>(l1i_.lineBytes() - 1);
    const Addr first_line = chunk.start & line_mask;
    const Addr last_line =
        (chunk.start + static_cast<Addr>(chunk.bytes) - 1) & line_mask;
    for (Addr line = first_line; line <= last_line;
         line += static_cast<Addr>(l1i_.lineBytes())) {
        const L1iAccessResult res = l1i_.access(line);
        ++ts.counters.l1iAccesses;
        if (!res.hit) {
            ++ts.counters.l1iMisses;
            ts.counters.l1iMissStallCycles +=
                static_cast<std::uint64_t>(res.latency);
            penalty += res.latency;
        }
    }
    return penalty;
}

void
FrontendEngine::deliverFromMite(ThreadId tid, const Chunk &chunk)
{
    ThreadState &ts = state(tid);
    if (dsbEnabled_ && chunk.cacheable())
        dsb_.insert(tid, chunk.start, chunk.uops);
    pushUops(tid, chunk);
    ts.counters.uopsMite += static_cast<std::uint64_t>(chunk.uops);
    ts.lastSource = DeliveryPath::MITE;
    finishChunk(tid, chunk, false);
}

void
FrontendEngine::finishChunk(ThreadId tid, const Chunk &chunk,
                            bool from_dsb)
{
    ThreadState &ts = state(tid);

    const bool block_start = ts.nextIsBlockStart;
    ts.nextIsBlockStart = false;
    if (block_start) {
        ++blockClock_;
        ++ts.counters.blocksDelivered;
        if (!chunk.aligned())
            poisonSet(chunk.start);
    }

    ts.monitor.recordChunk(
        {chunk.start, chunk.uops, from_dsb, block_start});

    if (!chunk.endsBranch) {
        ts.pc = chunk.fallThrough;
        ts.nextChunk = chunk.fallChunk;
        return;
    }

    const StaticInst *br = chunk.branch();
    bool taken = true;
    Addr next = br->target;
    const Chunk *next_chunk = chunk.takenChunk;
    if (br->isCondBranch()) {
        const auto cond = static_cast<std::size_t>(br->condId);
        if (cond >= ts.condCounts.size())
            ts.condCounts.resize(cond + 1, 0);
        const std::uint64_t count = ts.condCounts[cond]++;
        taken = ts.program->evalCond(br->condId, count);
        const bool predicted = bpu_.predictCond(br->addr);
        bpu_.updateCond(br->addr, taken);
        if (predicted != taken) {
            ts.stall += params_.condMispredictPenalty;
            ++ts.counters.condMispredicts;
            ts.counters.mispredictStallCycles +=
                static_cast<std::uint64_t>(
                    params_.condMispredictPenalty);
            bpu_.noteCondMispredict();
        }
        next = taken ? br->target : br->nextAddr();
        if (!taken)
            next_chunk = chunk.notTakenChunk;
    }

    if (taken) {
        if (!bpu_.btbHas(br->addr)) {
            bpu_.btbInsert(br->addr, br->target);
            ts.stall += params_.btbMissPenalty;
            ++ts.counters.btbMisses;
            ts.counters.btbMissStallCycles +=
                static_cast<std::uint64_t>(params_.btbMissPenalty);
            bpu_.noteBtbMiss();
        }
        ts.nextIsBlockStart = true;
        const bool engage = ts.monitor.recordTakenBranch(br->addr, next);
        if (engage && lsdQualifies(tid)) {
            ts.pc = next;
            ts.nextChunk = next_chunk;
            engageLsd(tid);
            return;
        }
    }
    ts.pc = next;
    ts.nextChunk = next_chunk;
}

bool
FrontendEngine::lsdQualifies(ThreadId tid) const
{
    if (!params_.lsdEnabled)
        return false;
    const ThreadState &ts = state(tid);
    for (Addr key : ts.monitor.bodyKeys()) {
        if (!dsb_.contains(tid, key))
            return false;
        if (setPoisoned(key))
            return false;
    }
    return !ts.monitor.bodyKeys().empty();
}

void
FrontendEngine::engageLsd(ThreadId tid)
{
    ThreadState &ts = state(tid);
    ts.lsdBody.clear();
    for (Addr key : ts.monitor.bodyKeys()) {
        const Chunk *chunk = ts.chunks->get(key);
        lf_assert(chunk != nullptr, "LSD body chunk vanished");
        ts.lsdBody.insert(ts.lsdBody.end(), chunk->endOfInst,
                          chunk->endOfInst + chunk->uops);
    }
    lf_assert(static_cast<int>(ts.lsdBody.size()) <=
              params_.lsdCapacityUops, "LSD body exceeds capacity");
    ts.lsdActive = true;
    ts.lsdPos = 0;
    ts.lsdHead = ts.monitor.head();
    ++ts.counters.lsdEngagements;
}

void
FrontendEngine::flushLsd(ThreadId tid)
{
    ThreadState &ts = state(tid);
    if (ts.lsdActive) {
        ts.lsdActive = false;
        // Restart the interrupted iteration from the loop head; the
        // LSD's in-flight position is lost with the flush.
        ts.pc = ts.lsdHead;
        ts.nextChunk = nullptr;
        ts.lsdPos = 0;
        ts.nextIsBlockStart = true;
        ++ts.counters.lsdFlushes;
    }
    ts.monitor.reset();
}

void
FrontendEngine::onDsbEvict(ThreadId tid, Addr key)
{
    // Inclusive hierarchy: losing a DSB line kills any LSD loop (or
    // loop candidate) built on it.
    ThreadState &ts = state(tid);
    if (ts.lsdActive) {
        if (ts.monitor.bodyContains(key))
            flushLsd(tid);
    } else if (ts.monitor.head() != 0) {
        ts.monitor.reset();
    }
}

void
FrontendEngine::poisonSet(Addr key)
{
    const auto set = static_cast<std::size_t>(
        (key >> 5) & static_cast<Addr>(params_.dsbSets - 1));
    poisonDeadline_[set] =
        blockClock_ + static_cast<std::uint64_t>(params_.poisonDecayBlocks);
}

bool
FrontendEngine::setPoisoned(Addr key) const
{
    const auto set = static_cast<std::size_t>(
        (key >> 5) & static_cast<Addr>(params_.dsbSets - 1));
    return blockClock_ < poisonDeadline_[set];
}

void
FrontendEngine::setDsbEnabled(bool enabled)
{
    if (dsbEnabled_ == enabled)
        return;
    dsbEnabled_ = enabled;
    if (!enabled) {
        // The micro-op cache goes dark: resident lines (and any LSD
        // loop built on them, via the eviction callback) are lost.
        dsb_.flushAll();
    }
}

void
FrontendEngine::setLsdStaticPartition(bool partitioned)
{
    lsdStaticPartition_ = partitioned;
}

void
FrontendEngine::setPartitioned(bool partitioned)
{
    if (dsb_.partitioned() == partitioned)
        return;
    dsb_.setPartitioned(partitioned);
    // Repartitioning interrupts loop streaming on both threads.
    for (int tid = 0; tid < kNumThreads; ++tid) {
        if (threads_[static_cast<std::size_t>(tid)].program)
            flushLsd(tid);
    }
}

int
FrontendEngine::popUops(ThreadId tid, int max_uops,
                        std::uint64_t &insts_retired)
{
    ThreadState &ts = state(tid);
    std::uint64_t insts = 0;
    const int popped = ts.idq.popN(max_uops, insts);
    if (popped > 0)
        ++ts.counters.idqPops;
    ts.counters.retiredUops += static_cast<std::uint64_t>(popped);
    ts.counters.retiredInsts += insts;
    insts_retired += insts;
    return popped;
}

void
FrontendEngine::speculativeFetch(ThreadId tid, Addr start, int max_chunks)
{
    ThreadState &ts = state(tid);
    if (!ts.chunks)
        return;
    Addr pc = start;
    for (int i = 0; i < max_chunks; ++i) {
        const Chunk *chunk = ts.chunks->get(pc);
        if (!chunk || chunk->halt)
            return;
        if (!dsbEnabled_ || dsb_.lookup(tid, pc) < 0) {
            chargeL1i(tid, *chunk); // latency irrelevant on wrong path
            if (dsbEnabled_)
                dsb_.insert(tid, chunk->start, chunk->uops);
        }
        ++ts.counters.specChunks;
        if (chunk->endsBranch) {
            const StaticInst *br = chunk->branch();
            if (br->isCondBranch())
                return; // nested speculation not modelled
            pc = br->target;
        } else {
            pc = chunk->fallThrough;
        }
    }
}

void
FrontendEngine::flushThreadFrontend(ThreadId tid)
{
    ThreadState &ts = state(tid);
    flushLsd(tid);
    ts.idq.clear();
    ts.lastSource = DeliveryPath::MITE;
    ts.nextIsBlockStart = true;
    ts.pendingChunk = nullptr;
    ts.pendingFromDsb = false;
}

} // namespace lf
