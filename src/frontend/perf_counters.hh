/**
 * @file
 * Per-thread performance counters.
 *
 * These mirror the hardware events the paper reads (IDQ.MITE_UOPS,
 * IDQ.DSB_UOPS, LSD.UOPS, ILD_STALL.LCP, DSB2MITE_SWITCHES.
 * PENALTY_CYCLES, ...) and are also the ground truth the power model
 * integrates over.
 */

#ifndef LF_FRONTEND_PERF_COUNTERS_HH
#define LF_FRONTEND_PERF_COUNTERS_HH

#include <cstdint>

namespace lf {

struct PerfCounters
{
    /** @name Micro-op delivery attribution */
    /// @{
    std::uint64_t uopsMite = 0;
    std::uint64_t uopsDsb = 0;
    std::uint64_t uopsLsd = 0;
    /// @}

    /** @name Frontend events */
    /// @{
    std::uint64_t lcpStallCycles = 0;
    std::uint64_t switchPenaltyCycles = 0;
    std::uint64_t dsbToMiteSwitches = 0;
    std::uint64_t miteToDsbSwitches = 0;
    std::uint64_t lsdEngagements = 0;
    std::uint64_t lsdFlushes = 0;
    std::uint64_t blocksDelivered = 0;
    /// @}

    /** @name Stall attribution (cycles charged per cause) */
    /// @{
    std::uint64_t mispredictStallCycles = 0;
    std::uint64_t btbMissStallCycles = 0;
    std::uint64_t l1iMissStallCycles = 0;
    /// @}

    /** @name IDQ traffic
     * One "push" is a bulk delivery (a DSB line, MITE chunk, or LSD
     * replay burst); occupancyAtPush accumulates the queue depth right
     * after each push, so occupancyAtPush / idqPushes is the mean
     * delivery-time backlog. */
    /// @{
    std::uint64_t idqPushes = 0;
    std::uint64_t idqPushedUops = 0;
    std::uint64_t idqPops = 0;
    std::uint64_t idqOccupancyAtPush = 0;
    /// @}

    /** @name Cache / prediction events */
    /// @{
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t btbMisses = 0;
    std::uint64_t condMispredicts = 0;
    /// @}

    /** @name Retirement */
    /// @{
    std::uint64_t retiredInsts = 0;
    std::uint64_t retiredUops = 0;
    /// @}

    /** @name Speculative (transient) frontend activity */
    /// @{
    std::uint64_t specChunks = 0;
    /// @}

    std::uint64_t totalUops() const
    {
        return uopsMite + uopsDsb + uopsLsd;
    }

    /** Element-wise difference (this - earlier). */
    PerfCounters delta(const PerfCounters &earlier) const
    {
        PerfCounters d;
        d.uopsMite = uopsMite - earlier.uopsMite;
        d.uopsDsb = uopsDsb - earlier.uopsDsb;
        d.uopsLsd = uopsLsd - earlier.uopsLsd;
        d.lcpStallCycles = lcpStallCycles - earlier.lcpStallCycles;
        d.switchPenaltyCycles =
            switchPenaltyCycles - earlier.switchPenaltyCycles;
        d.dsbToMiteSwitches = dsbToMiteSwitches - earlier.dsbToMiteSwitches;
        d.miteToDsbSwitches = miteToDsbSwitches - earlier.miteToDsbSwitches;
        d.lsdEngagements = lsdEngagements - earlier.lsdEngagements;
        d.lsdFlushes = lsdFlushes - earlier.lsdFlushes;
        d.blocksDelivered = blocksDelivered - earlier.blocksDelivered;
        d.mispredictStallCycles =
            mispredictStallCycles - earlier.mispredictStallCycles;
        d.btbMissStallCycles =
            btbMissStallCycles - earlier.btbMissStallCycles;
        d.l1iMissStallCycles =
            l1iMissStallCycles - earlier.l1iMissStallCycles;
        d.idqPushes = idqPushes - earlier.idqPushes;
        d.idqPushedUops = idqPushedUops - earlier.idqPushedUops;
        d.idqPops = idqPops - earlier.idqPops;
        d.idqOccupancyAtPush =
            idqOccupancyAtPush - earlier.idqOccupancyAtPush;
        d.l1iAccesses = l1iAccesses - earlier.l1iAccesses;
        d.l1iMisses = l1iMisses - earlier.l1iMisses;
        d.btbMisses = btbMisses - earlier.btbMisses;
        d.condMispredicts = condMispredicts - earlier.condMispredicts;
        d.retiredInsts = retiredInsts - earlier.retiredInsts;
        d.retiredUops = retiredUops - earlier.retiredUops;
        d.specChunks = specChunks - earlier.specChunks;
        return d;
    }
};

} // namespace lf

#endif // LF_FRONTEND_PERF_COUNTERS_HH
