#include "frontend/loop_monitor.hh"

#include <algorithm>

namespace lf {

LoopMonitor::LoopMonitor(const FrontendParams &params)
    : capacityUops_(params.lsdCapacityUops),
      warmupIters_(params.lsdWarmupIters)
{
}

void
LoopMonitor::recordChunk(const ChunkRecord &record)
{
    if (head_ == 0)
        return;
    if (accum_.size() >= kMaxChunks) {
        // Too large to be a capturable loop; abandon the candidate.
        reset();
        return;
    }
    accum_.push_back(record);
}

bool
LoopMonitor::alignmentCollides(int aligned_blocks, int misaligned_blocks)
{
    if (misaligned_blocks < 1)
        return false;
    return aligned_blocks + 2 * misaligned_blocks >= 9 ||
        misaligned_blocks >= 4;
}

void
LoopMonitor::census(int &aligned, int &misaligned) const
{
    aligned = 0;
    misaligned = 0;
    for (const auto &record : accum_) {
        if (!record.blockStart)
            continue;
        if ((record.key & Addr{31}) == 0)
            ++aligned;
        else
            ++misaligned;
    }
}

bool
LoopMonitor::recordTakenBranch(Addr branch_addr, Addr target)
{
    if (target != head_) {
        if (target > branch_addr) {
            // Forward jump: body structure, keep accumulating.
            return false;
        }
        // Backward branch to a new target: new loop candidate.
        head_ = target;
        stableIters_ = 0;
        accum_.clear();
        lastKeys_.clear();
        return false;
    }

    // An iteration of the candidate just closed. The key list is
    // built into a reused scratch buffer and swapped into lastKeys_ —
    // loop bodies close once per iteration on the hot path, and the
    // steady state must not allocate.
    scratchKeys_.clear();
    int uops = 0;
    bool all_dsb = true;
    for (const auto &record : accum_) {
        scratchKeys_.push_back(record.key);
        uops += record.uops;
        all_dsb = all_dsb && record.fromDsb;
    }

    if (!scratchKeys_.empty() && scratchKeys_ == lastKeys_)
        ++stableIters_;
    else
        stableIters_ = scratchKeys_.empty() ? 0 : 1;
    lastKeys_.swap(scratchKeys_);

    int aligned = 0;
    int misaligned = 0;
    census(aligned, misaligned);

    const bool qualified = !lastKeys_.empty() &&
        uops <= capacityUops_ && all_dsb &&
        !alignmentCollides(aligned, misaligned);

    const bool engage = qualified && stableIters_ >= warmupIters_;
    if (engage) {
        bodyKeys_ = lastKeys_;
        bodyUops_ = uops;
    }
    accum_.clear();
    return engage;
}

bool
LoopMonitor::bodyContains(Addr key) const
{
    return std::find(bodyKeys_.begin(), bodyKeys_.end(), key) !=
        bodyKeys_.end();
}

void
LoopMonitor::reset()
{
    head_ = 0;
    stableIters_ = 0;
    accum_.clear();
    lastKeys_.clear();
    bodyKeys_.clear();
    bodyUops_ = 0;
}

} // namespace lf
