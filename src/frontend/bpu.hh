/**
 * @file
 * Branch prediction unit: a BTB for taken-branch targets plus 2-bit
 * saturating counters for conditional direction. Kept deliberately
 * simple — the paper's loop workloads are perfectly predictable after
 * warmup, and the Spectre experiments only need a trainable
 * conditional predictor.
 */

#ifndef LF_FRONTEND_BPU_HH
#define LF_FRONTEND_BPU_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace lf {

class Bpu
{
  public:
    /** @name BTB */
    /// @{
    bool btbHas(Addr branch_addr) const;
    void btbInsert(Addr branch_addr, Addr target);
    /// @}

    /** @name Conditional direction prediction (2-bit counters) */
    /// @{
    /** Predicted direction; unknown branches predict not-taken. */
    bool predictCond(Addr branch_addr) const;
    /** Train with the resolved direction. */
    void updateCond(Addr branch_addr, bool taken);
    /// @}

    /** Forget everything (e.g. between experiments). */
    void reset();

    std::uint64_t btbMisses() const { return btbMisses_; }
    std::uint64_t condMispredicts() const { return condMispredicts_; }

    /** Record outcome counters (maintained by the frontend engine). */
    void noteBtbMiss() { ++btbMisses_; }
    void noteCondMispredict() { ++condMispredicts_; }

  private:
    std::unordered_map<Addr, Addr> btb_;
    std::unordered_map<Addr, std::uint8_t> counters_;
    std::uint64_t btbMisses_ = 0;
    std::uint64_t condMispredicts_ = 0;
};

} // namespace lf

#endif // LF_FRONTEND_BPU_HH
