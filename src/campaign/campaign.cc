#include "campaign/campaign.hh"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "campaign/cache.hh"
#include "campaign/files.hh"
#include "campaign/grid_hash.hh"
#include "campaign/shard_log.hh"
#include "common/logging.hh"
#include "common/message.hh"
#include "common/table.hh"
#include "obs/metrics.hh"
#include "run/runner.hh"
#include "run/sinks.hh"

namespace lf {

namespace {

/** Rows assigned to shard @p shard (cells are mod-assigned). */
std::size_t
shardRowCount(const CampaignManifest &manifest, int shard)
{
    const std::size_t cells = manifest.cells;
    const std::size_t n = static_cast<std::size_t>(manifest.shards);
    const std::size_t i = static_cast<std::size_t>(shard);
    const std::size_t shardCells =
        i < cells ? (cells - i + n - 1) / n : 0;
    return shardCells * static_cast<std::size_t>(manifest.spec.trials);
}

/**
 * Lenient top-level-key number extraction from a shard metrics file
 * (status must keep working if a future version adds keys, and must
 * not mistake the nested "runner" object's fields — e.g. its
 * "seconds" — for the shard's own, so only text before the nested
 * object is searched).
 */
bool
extractMetricsNumber(const std::string &text, const std::string &key,
                     double &out)
{
    std::size_t limit = text.find("\"runner\":");
    if (limit == std::string::npos)
        limit = text.size();
    const std::string needle = "\"" + key + "\":";
    const std::size_t pos = text.find(needle);
    if (pos == std::string::npos || pos >= limit)
        return false;
    try {
        out = std::stod(text.substr(pos + needle.size()));
        return true;
    } catch (...) {
        return false;
    }
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

} // namespace

std::string
campaignManifestPath(const std::string &dir)
{
    return dir + "/manifest.txt";
}

std::string
campaignSummaryPath(const std::string &dir)
{
    return dir + "/merged_summary.txt";
}

std::string
campaignShardMetricsPath(const std::string &dir, int shard)
{
    return dir + "/shard-" + std::to_string(shard) + ".metrics.json";
}

std::size_t
campaignRowIndex(const CampaignManifest &manifest, int shard,
                 std::size_t local)
{
    const std::size_t trials =
        static_cast<std::size_t>(manifest.spec.trials);
    const std::size_t cellOrdinal = local / trials;
    const std::size_t globalCell =
        static_cast<std::size_t>(shard) +
        cellOrdinal * static_cast<std::size_t>(manifest.shards);
    return globalCell * trials + local % trials;
}

std::string
renderCampaignPlan(const SweepSpec &spec, int shards)
{
    CampaignManifest manifest;
    const std::string error = planManifest(spec, shards, manifest);
    if (!error.empty())
        return "invalid plan: " + error + "\n";

    std::vector<std::string> patternNames;
    for (const MessagePattern pattern : spec.patterns)
        patternNames.push_back(toString(pattern));

    std::string axes;
    for (const SweepAxis &axis : spec.axes) {
        if (!axes.empty())
            axes += ", ";
        axes += axis.key + "[" + std::to_string(axis.values.size()) +
            "]";
    }
    std::string sets;
    for (const auto &[key, value] : spec.baseOverrides) {
        if (!sets.empty())
            sets += ", ";
        sets += key + "=" + jsonNumber(value);
    }

    std::size_t minRows = manifest.rows;
    std::size_t maxRows = 0;
    for (int i = 0; i < shards; ++i) {
        const std::size_t rows = shardRowCount(manifest, i);
        minRows = std::min(minRows, rows);
        maxRows = std::max(maxRows, rows);
    }
    std::string perShard = std::to_string(minRows);
    if (maxRows != minRows)
        perShard += ".." + std::to_string(maxRows);

    TextTable table("Campaign plan");
    table.setHeader({"Field", "Value"});
    table.addRow({"grid hash", manifest.gridHash});
    table.addRow({"channels",
                  std::to_string(spec.channels.size()) + " (" +
                      joinNames(spec.channels) + ")"});
    table.addRow({"cpus", std::to_string(spec.cpus.size()) + " (" +
                              joinNames(spec.cpus) + ")"});
    table.addRow({"patterns", joinNames(patternNames)});
    table.addRow({"axes", axes.empty() ? "(none)" : axes});
    table.addRow({"base overrides", sets.empty() ? "(none)" : sets});
    table.addRow({"seed", std::to_string(spec.seed)});
    table.addRow({"message bits",
                  std::to_string(spec.messageBits)});
    table.addRow({"cells", std::to_string(manifest.cells)});
    table.addRow({"trials per cell", std::to_string(spec.trials)});
    table.addRow({"total rows", std::to_string(manifest.rows)});
    table.addRow({"shards", std::to_string(shards) + " (" + perShard +
                                " rows/shard)"});
    return table.render();
}

std::string
planCampaign(const SweepSpec &spec, int shards, const std::string &dir,
             CampaignManifest *out)
{
    CampaignManifest manifest;
    std::string error = planManifest(spec, shards, manifest);
    if (!error.empty())
        return error;
    // CLI-grade early failure: bad override *values* should die at
    // plan time, not as error rows inside every shard.
    error = validateSweepSpecValues(spec);
    if (!error.empty())
        return error;
    error = writeManifestFile(manifest, campaignManifestPath(dir));
    if (!error.empty())
        return error;
    if (out != nullptr)
        *out = manifest;
    return "";
}

std::string
runCampaignShard(const std::string &dir, int shard,
                 const ShardRunOptions &options, ShardRunStats *stats)
{
    CampaignManifest manifest;
    std::string error =
        loadManifestFile(campaignManifestPath(dir), manifest);
    if (!error.empty())
        return error;
    if (shard < 0 || shard >= manifest.shards) {
        return "shard index " + std::to_string(shard) +
            " out of range [0, " + std::to_string(manifest.shards) +
            ")";
    }

    SweepShard selector;
    selector.index = shard;
    selector.count = manifest.shards;
    const std::vector<ExperimentSpec> batch =
        expandSweep(manifest.spec, selector);

    ShardLogState state;
    error = loadShardLog(dir, shard, manifest.gridHash,
                         manifest.shards, manifest.rows, state);
    if (!error.empty())
        return error;

    ShardLogWriter writer;
    error = writer.open(dir, shard, manifest.gridHash, manifest.shards,
                        state);
    if (!error.empty())
        return error;
    // Heal rows whose result landed but whose `done` line was lost
    // to a kill between the two appends.
    for (const auto &[index, row] : state.rows) {
        (void)row;
        if (state.checkpointed.count(index) == 0) {
            error = writer.appendCheckpoint(index);
            if (!error.empty())
                return error;
        }
    }

    ShardRunStats run;
    run.totalRows = batch.size();
    run.resumedRows = state.rows.size();

    // The to-do list: shard-local positions whose global row is not
    // yet in the results file, capped by the deterministic-kill knob.
    std::vector<std::size_t> todo;
    for (std::size_t p = 0; p < batch.size(); ++p) {
        if (state.rows.count(campaignRowIndex(manifest, shard, p)) ==
            0) {
            todo.push_back(p);
        }
    }
    if (options.maxNewRows > 0 && todo.size() > options.maxNewRows)
        todo.resize(options.maxNewRows);

    ShardProgress progress;
    progress.totalRows = batch.size();
    progress.doneRows = run.resumedRows;
    const auto report = [&]() {
        progress.cacheHits = run.cacheHits;
        progress.executed = run.executed;
        if (options.onProgress)
            options.onProgress(progress);
    };

    const auto record = [&](std::size_t local,
                            const ExperimentResult &res) {
        const std::string bad =
            writer.append(campaignRowIndex(manifest, shard, local),
                          res);
        if (!bad.empty())
            throw std::runtime_error(bad);
        if (!res.ok && !res.skipped)
            ++run.failedRows;
        ++progress.doneRows;
        report();
    };

    const ResultCache cache(options.cacheDir);
    const auto start = std::chrono::steady_clock::now();
    obs::RunMetrics runnerMetrics;
    std::vector<std::size_t> misses;
    try {
        for (const std::size_t local : todo) {
            ExperimentResult cached;
            std::string cacheError;
            if (cache.lookup(batch[local], cached, cacheError)) {
                ++run.cacheHits;
                record(local, cached);
            } else if (!cacheError.empty()) {
                return cacheError;
            } else {
                misses.push_back(local);
            }
        }

        std::vector<ExperimentSpec> runSpecs;
        runSpecs.reserve(misses.size());
        for (const std::size_t local : misses)
            runSpecs.push_back(batch[local]);

        ExperimentRunner runner(options.threads);
        runner.setMetricsSink(&runnerMetrics);
        std::size_t delivered = 0;
        runner.run(runSpecs, [&](const ExperimentResult &res) {
            // SpecOrder delivery: the k-th callback is runSpecs[k].
            const std::size_t local = misses[delivered++];
            ++run.executed;
            record(local, res);
            if (cache.enabled()) {
                const std::string bad =
                    cache.store(batch[local], res);
                if (!bad.empty())
                    throw std::runtime_error(bad);
            }
        });
    } catch (const std::runtime_error &e) {
        return e.what();
    }
    run.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    // Leave the shard's observability report beside its logs; the
    // strict result/checkpoint files never depend on it, so a failed
    // write degrades status reporting, not the campaign.
    std::ostringstream metricsJson;
    metricsJson << "{\"schema\":\"lf_shard_metrics_v1\""
                << ",\"shard\":" << shard
                << ",\"total_rows\":" << run.totalRows
                << ",\"resumed_rows\":" << run.resumedRows
                << ",\"cache_hits\":" << run.cacheHits
                << ",\"executed\":" << run.executed
                << ",\"failed_rows\":" << run.failedRows
                << ",\"seconds\":" << jsonNumber(run.seconds)
                << ",\"trials_per_sec\":"
                << jsonNumber(run.trialsPerSec())
                << ",\"cache_hit_rate\":"
                << jsonNumber(run.cacheHitRate())
                << ",\"runner\":"
                << obs::renderRunMetricsJson(runnerMetrics) << "}\n";
    const std::string metricsError = writeFileAtomic(
        campaignShardMetricsPath(dir, shard), metricsJson.str());
    if (!metricsError.empty())
        lf_warn("shard metrics not written: %s", metricsError.c_str());

    if (stats != nullptr)
        *stats = run;
    return "";
}

std::string
mergeCampaign(const std::string &dir, std::string &summary,
              MergeStats *stats)
{
    CampaignManifest manifest;
    std::string error =
        loadManifestFile(campaignManifestPath(dir), manifest);
    if (!error.empty())
        return error;

    const std::size_t trials =
        static_cast<std::size_t>(manifest.spec.trials);
    std::map<std::size_t, ExperimentResult> rows;
    for (int shard = 0; shard < manifest.shards; ++shard) {
        const std::string path = shardResultsPath(dir, shard);
        if (!pathExists(path)) {
            return path + ": missing — shard " +
                std::to_string(shard) +
                " has not run (lf_campaign run-shard --shard " +
                std::to_string(shard) + ")";
        }
        SweepShard selector;
        selector.index = shard;
        selector.count = manifest.shards;
        ShardLogState state;
        error = loadShardResults(path, manifest.gridHash, selector,
                                 manifest.rows, state);
        if (!error.empty())
            return error;
        for (auto &[index, res] : state.rows) {
            const std::size_t cell = index / trials;
            if (cell % static_cast<std::size_t>(manifest.shards) !=
                static_cast<std::size_t>(shard)) {
                return path + ": row " + std::to_string(index) +
                    " does not belong to shard " +
                    std::to_string(shard);
            }
            if (!rows.emplace(index, std::move(res)).second) {
                return path + ": row " + std::to_string(index) +
                    " already merged from another shard";
            }
        }
    }
    if (rows.size() != manifest.rows) {
        std::size_t firstMissing = 0;
        for (std::size_t i = 0; i < manifest.rows; ++i) {
            if (rows.count(i) == 0) {
                firstMissing = i;
                break;
            }
        }
        const std::size_t shard =
            (firstMissing / trials) %
            static_cast<std::size_t>(manifest.shards);
        return "campaign incomplete: " +
            std::to_string(manifest.rows - rows.size()) +
            " of " + std::to_string(manifest.rows) +
            " rows missing (first: row " +
            std::to_string(firstMissing) + ", shard " +
            std::to_string(shard) + " — resume it with run-shard)";
    }

    // Fold in ascending global-row order == the unsharded batch's
    // spec order, so the accumulator sees exactly the stream a
    // single-process sweep would and the summary bytes match.
    MergeStats merged;
    SweepSummarySink sink;
    std::ostringstream os;
    sink.writeHeader(os);
    for (const auto &[index, res] : rows) {
        (void)index;
        sink.writeRow(res, os);
        ++merged.rows;
        if (res.skipped)
            ++merged.skippedRows;
        else if (!res.ok)
            ++merged.failedRows;
    }
    sink.writeFooter(os);
    summary = os.str();
    merged.cells = manifest.cells;
    if (stats != nullptr)
        *stats = merged;

    return writeFileAtomic(campaignSummaryPath(dir), summary);
}

std::string
campaignStatus(const std::string &dir, std::string &rendered)
{
    CampaignManifest manifest;
    std::string error =
        loadManifestFile(campaignManifestPath(dir), manifest);
    if (!error.empty())
        return error;

    TextTable table("Campaign " + manifest.gridHash + " — " +
                    std::to_string(manifest.cells) + " cells, " +
                    std::to_string(manifest.rows) + " rows, " +
                    std::to_string(manifest.shards) + " shards");
    table.setHeader({"Shard", "Done", "Total", "%", "State"});
    std::size_t doneTotal = 0;
    for (int shard = 0; shard < manifest.shards; ++shard) {
        const std::size_t total = shardRowCount(manifest, shard);
        ShardLogState state;
        error = loadShardLog(dir, shard, manifest.gridHash,
                             manifest.shards, manifest.rows, state);
        if (!error.empty()) {
            table.addRow({std::to_string(shard), "?",
                          std::to_string(total), "?",
                          "corrupt: " + error});
            continue;
        }
        const std::size_t done = state.rows.size();
        doneTotal += done;
        std::string label = "fresh";
        if (done == total && total > 0)
            label = "done";
        else if (done > 0)
            label = "partial";
        table.addRow({std::to_string(shard), std::to_string(done),
                      std::to_string(total),
                      formatPercent(total > 0
                          ? static_cast<double>(done) /
                              static_cast<double>(total)
                          : 0.0, 0),
                      label});
    }
    table.addRow({"all", std::to_string(doneTotal),
                  std::to_string(manifest.rows),
                  formatPercent(manifest.rows > 0
                      ? static_cast<double>(doneTotal) /
                          static_cast<double>(manifest.rows)
                      : 0.0, 0),
                  pathExists(campaignSummaryPath(dir)) ? "merged"
                                                       : "-"});
    rendered = table.render();

    // Fleet-wide rates from whatever shard metrics files exist (each
    // describes that shard's *latest* run). Reporting is best-effort:
    // an unreadable or partial file just drops out of the sums.
    int reporting = 0;
    double executed = 0.0;
    double cacheHits = 0.0;
    double seconds = 0.0;
    for (int shard = 0; shard < manifest.shards; ++shard) {
        const std::string path = campaignShardMetricsPath(dir, shard);
        if (!pathExists(path))
            continue;
        std::string text;
        if (!readFileText(path, text).empty())
            continue;
        double shardExecuted = 0.0;
        double shardHits = 0.0;
        double shardSeconds = 0.0;
        if (!extractMetricsNumber(text, "executed", shardExecuted) ||
            !extractMetricsNumber(text, "cache_hits", shardHits) ||
            !extractMetricsNumber(text, "seconds", shardSeconds)) {
            continue;
        }
        ++reporting;
        executed += shardExecuted;
        cacheHits += shardHits;
        seconds += shardSeconds;
    }
    if (reporting > 0) {
        const double attempted = executed + cacheHits;
        char secondsText[32];
        std::snprintf(secondsText, sizeof(secondsText), "%.2f",
                      seconds);
        std::ostringstream os;
        os << rendered;
        os << "fleet: " << static_cast<std::uint64_t>(executed)
           << " rows executed in " << secondsText
           << "s across " << reporting << " reporting shard"
           << (reporting == 1 ? "" : "s");
        if (seconds > 0.0) {
            char rate[32];
            std::snprintf(rate, sizeof(rate), "%.1f",
                          executed / seconds);
            os << " (" << rate << " trials/s)";
        }
        os << "\n";
        char hitRate[32];
        std::snprintf(hitRate, sizeof(hitRate), "%.1f",
                      attempted > 0.0 ? 100.0 * cacheHits / attempted
                                      : 0.0);
        os << "fleet: cache hit rate " << hitRate << "% ("
           << static_cast<std::uint64_t>(cacheHits) << " hits / "
           << static_cast<std::uint64_t>(attempted) << " attempted)\n";
        rendered = os.str();
    }
    return "";
}

} // namespace lf
