/**
 * @file
 * The campaign manifest: one file that pins a whole campaign.
 *
 * `lf_campaign plan` serializes the SweepSpec, the shard count, and
 * the derived facts (grid hash, cell/row counts) into
 * `<dir>/manifest.txt`; every later step (`run-shard`, `merge`,
 * `status`) loads the manifest instead of re-taking the grid on the
 * command line, so a campaign cannot drift between steps.
 *
 * Integrity is checked twice on load: the format is strict,
 * line-by-line, ending in an `end` sentinel (a truncated file fails
 * with "truncated", a malformed line fails with its line number), and
 * the grid hash is *recomputed* from the parsed spec and compared to
 * the stored one — a manifest whose spec fields were edited or
 * corrupted after planning is rejected even if it still parses.
 */

#ifndef LF_CAMPAIGN_MANIFEST_HH
#define LF_CAMPAIGN_MANIFEST_HH

#include <cstddef>
#include <string>

#include "run/sweep.hh"

namespace lf {

/** A planned campaign: the grid plus its sharding and derived
 *  identity. */
struct CampaignManifest
{
    /** Format version of the on-disk encoding. */
    static constexpr int kSchemaVersion = 1;

    std::string gridHash;  //!< gridHash(spec), pinned at plan time.
    int shards = 1;        //!< Shard count (cells mod-assigned).
    std::size_t cells = 0; //!< sweepCellCount(spec).
    std::size_t rows = 0;  //!< cells * spec.trials (total trials).
    SweepSpec spec;        //!< The full grid, round-tripped exactly.
};

/**
 * Build a manifest for @p spec split @p shards ways. Validates the
 * spec and the shard count (via the sweep validators).
 * @return an error message or the empty string.
 */
std::string planManifest(const SweepSpec &spec, int shards,
                         CampaignManifest &out);

/** Serialize @p manifest (ends with the `end` sentinel line). */
std::string renderManifest(const CampaignManifest &manifest);

/**
 * Parse renderManifest() output. Strict: unknown or out-of-place
 * lines, unparsable values, a missing `end` sentinel, a schema
 * version this build does not speak, or a grid hash that does not
 * match the parsed spec all fail. @p path only labels error messages.
 * @return an error message ("" on success).
 */
std::string parseManifest(const std::string &text,
                          const std::string &path,
                          CampaignManifest &out);

/** renderManifest() to @p path (atomic: temp file + rename).
 *  @return an error message or the empty string. */
std::string writeManifestFile(const CampaignManifest &manifest,
                              const std::string &path);

/** Read + parseManifest() from @p path. */
std::string loadManifestFile(const std::string &path,
                             CampaignManifest &out);

} // namespace lf

#endif // LF_CAMPAIGN_MANIFEST_HH
