/**
 * @file
 * Campaign orchestration: a SweepSpec as a manifest-driven,
 * resumable, cache-backed multi-process job.
 *
 * Lifecycle (each step is one process invocation, repeatable):
 *
 *   plan       planCampaign() — validate the grid, derive the grid
 *              hash, write `<dir>/manifest.txt`;
 *   run-shard  runCampaignShard() — expand the shard's slice of the
 *              grid, subtract rows already checkpointed, serve what
 *              the result cache already knows, stream the rest
 *              through the ExperimentRunner, appending each row +
 *              checkpoint as it completes — a killed shard re-runs
 *              only missing rows;
 *   merge      mergeCampaign() — load every shard's results, demand
 *              exactly-once coverage of all rows, fold them in
 *              full-grid order through SweepAccumulator, and render
 *              the summary — byte-identical to the unsharded
 *              single-process sweep, because the fold sees the same
 *              results in the same order;
 *   status     campaignStatus() — per-shard done/total observability
 *              without touching anything.
 *
 * Row indexing: the unit of scheduling, checkpointing, and caching is
 * one expanded trial ("row"). Rows are numbered by their position in
 * the *full* unsharded batch (cell-major, trials consecutive), so an
 * index means the same trial in every process that ever touches the
 * campaign. Cells are mod-assigned to shards exactly as `--shard i/n`
 * slices a sweep; shard i's p-th row has global index
 * (i + (p / trials) * shards) * trials + p % trials.
 */

#ifndef LF_CAMPAIGN_CAMPAIGN_HH
#define LF_CAMPAIGN_CAMPAIGN_HH

#include <cstddef>
#include <functional>
#include <string>

#include "campaign/manifest.hh"
#include "run/sweep.hh"

namespace lf {

/** Manifest location inside a campaign directory. */
std::string campaignManifestPath(const std::string &dir);

/** Where mergeCampaign() leaves the merged summary. */
std::string campaignSummaryPath(const std::string &dir);

/** Where runCampaignShard() leaves shard @p shard's RunMetrics JSON
 *  (`<dir>/shard-<i>.metrics.json`). Purely observational — the
 *  strict shard result/checkpoint logs never reference it, and
 *  campaignStatus() tolerates its absence. */
std::string campaignShardMetricsPath(const std::string &dir, int shard);

/** Global row index of shard-local row @p local of shard @p shard. */
std::size_t campaignRowIndex(const CampaignManifest &manifest,
                             int shard, std::size_t local);

/**
 * Human-readable plan: grid hash, dimension sizes, cell/row counts,
 * and the per-shard row split. Shared by `lf_campaign plan` and
 * `lf_run --dry-run` (with @p shards = the --shard count), so the two
 * surfaces cannot disagree about what a grid expands to.
 * @p spec must already be validated.
 */
std::string renderCampaignPlan(const SweepSpec &spec, int shards);

/**
 * Validate @p spec (structure and values), build the manifest, and
 * write it to `<dir>/manifest.txt` (creating @p dir).
 * @return an error message or the empty string.
 */
std::string planCampaign(const SweepSpec &spec, int shards,
                         const std::string &dir,
                         CampaignManifest *out = nullptr);

/** Live per-shard progress, reported after every completed row. */
struct ShardProgress
{
    std::size_t doneRows = 0;   //!< Incl. rows done before this run.
    std::size_t totalRows = 0;  //!< Rows assigned to this shard.
    std::size_t cacheHits = 0;  //!< This run.
    std::size_t executed = 0;   //!< Trials actually simulated.
};

/** Knobs for one run-shard invocation. */
struct ShardRunOptions
{
    int threads = 0;          //!< ExperimentRunner worker count.
    std::string cacheDir;     //!< Result-cache root; empty = off.
    /** Stop after this many newly-completed rows (0 = no limit).
     *  Deterministic kill: the shard stays resumable, which is what
     *  the kill/resume tests and CI smoke use. */
    std::size_t maxNewRows = 0;
    /** Invoked on the calling thread after every completed row. */
    std::function<void(const ShardProgress &)> onProgress;
};

/** What one run-shard invocation did. */
struct ShardRunStats
{
    std::size_t totalRows = 0;     //!< Assigned to the shard.
    std::size_t resumedRows = 0;   //!< Already done when we started.
    std::size_t cacheHits = 0;
    std::size_t executed = 0;      //!< Simulated this run.
    std::size_t failedRows = 0;    //!< Error rows (deterministic).
    double seconds = 0.0;          //!< Wall time of this run.

    std::size_t doneRows() const
    {
        return resumedRows + cacheHits + executed;
    }
    double trialsPerSec() const
    {
        return seconds > 0.0
            ? static_cast<double>(executed) / seconds : 0.0;
    }
    double cacheHitRate() const
    {
        const std::size_t attempted = cacheHits + executed;
        return attempted > 0
            ? static_cast<double>(cacheHits) /
                static_cast<double>(attempted)
            : 0.0;
    }
};

/**
 * Run (or resume) shard @p shard of the campaign in @p dir.
 * @return an error message or the empty string.
 */
std::string runCampaignShard(const std::string &dir, int shard,
                             const ShardRunOptions &options,
                             ShardRunStats *stats = nullptr);

/** What mergeCampaign() saw. */
struct MergeStats
{
    std::size_t rows = 0;
    std::size_t cells = 0;
    std::size_t failedRows = 0;
    std::size_t skippedRows = 0;
};

/**
 * Merge every shard of the campaign in @p dir: demand exactly-once
 * coverage of all manifest rows (a missing row names the shard to
 * resume), fold in full-grid order through SweepAccumulator, render
 * the summary into @p summary, and write it to
 * `<dir>/merged_summary.txt`.
 * @return an error message or the empty string.
 */
std::string mergeCampaign(const std::string &dir, std::string &summary,
                          MergeStats *stats = nullptr);

/**
 * Render a per-shard progress table (rows done/total per shard, from
 * the shard logs; a shard with corrupt state reports its error
 * instead of a count). When any shard has left a
 * campaignShardMetricsPath() file, fleet-wide rate lines (executed
 * rows, wall time, trials/s, cache hit rate — summed over the latest
 * run of each shard) are appended after the table. Read-only.
 * @return an error message (manifest problems only) or "".
 */
std::string campaignStatus(const std::string &dir,
                           std::string &rendered);

} // namespace lf

#endif // LF_CAMPAIGN_CAMPAIGN_HH
