#include "campaign/record.hh"

#include <cstdio>
#include <vector>

#include "common/message.hh"
#include "run/cli.hh"
#include "run/sinks.hh"

namespace lf {

std::string
percentEncode(const std::string &text)
{
    // Also escapes the record/overrides metacharacters ('=', ':', ',')
    // so encoded tokens can be split on them without quoting rules.
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        const auto byte = static_cast<unsigned char>(c);
        if (byte < 0x21 || byte == 0x7f || c == '%' || c == '=' ||
            c == ':' || c == ',') {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%%%02X", byte);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

bool
percentDecode(const std::string &text, std::string &out)
{
    const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return -1;
    };
    out.clear();
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '%') {
            out.push_back(text[i]);
            continue;
        }
        if (i + 2 >= text.size())
            return false; // Truncated escape.
        const int hi = hex(text[i + 1]);
        const int lo = hex(text[i + 2]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
    }
    return true;
}

namespace {

/** Tokenizer state over one record line. */
struct TokenReader
{
    std::vector<std::pair<std::string, std::string>> tokens;
    std::size_t next = 0;

    /** Split @p line into name=value tokens; empty on a malformed
     *  token (a chunk without '='). */
    std::string split(const std::string &line)
    {
        std::size_t start = 0;
        while (start <= line.size()) {
            std::size_t end = line.find(' ', start);
            if (end == std::string::npos)
                end = line.size();
            const std::string chunk = line.substr(start, end - start);
            start = end + 1;
            if (chunk.empty())
                continue;
            const std::size_t eq = chunk.find('=');
            if (eq == std::string::npos)
                return "malformed token \"" + chunk + "\" (no '=')";
            tokens.emplace_back(chunk.substr(0, eq),
                                chunk.substr(eq + 1));
        }
        return "";
    }

    /** The next token, which must be named @p name. */
    std::string expect(const char *name, std::string &value)
    {
        if (next >= tokens.size())
            return std::string("record truncated before \"") + name +
                "\" field";
        if (tokens[next].first != name) {
            return "expected field \"" + std::string(name) +
                "\", found \"" + tokens[next].first + "\"";
        }
        value = tokens[next++].second;
        return "";
    }
};

} // namespace

std::string
encodeResultRecord(std::size_t index, const ExperimentResult &res)
{
    const ExperimentSpec &spec = res.spec;
    std::string out;
    out += "idx=" + std::to_string(index);
    out += " label=" + percentEncode(spec.label);
    out += " channel=" + percentEncode(spec.channel);
    out += " cpu=" + percentEncode(spec.cpu);
    out += " seed=" + std::to_string(spec.seed);
    out += " trial=" + std::to_string(spec.trial);
    out += " pattern=" + std::string(toString(spec.pattern));
    out += " bits=" + std::to_string(spec.messageBits);
    out += " preamble=" + std::to_string(spec.preambleBits);
    out += " ok=" + std::string(res.ok ? "1" : "0");
    out += " skipped=" + std::string(res.skipped ? "1" : "0");
    out += " error=" + percentEncode(res.error);
    out += " error_rate=" + jsonNumber(res.result.errorRate);
    out += " kbps=" + jsonNumber(res.result.transmissionKbps);
    out += " seconds=" + jsonNumber(res.result.seconds);
    out += " overrides=";
    bool first = true;
    for (const auto &[key, value] : spec.overrides) {
        if (!first)
            out += ",";
        first = false;
        out += percentEncode(key) + ":" + jsonNumber(value);
    }
    return out;
}

std::string
decodeResultRecord(const std::string &line, std::size_t &index,
                   ExperimentResult &res)
{
    TokenReader reader;
    std::string error = reader.split(line);
    if (!error.empty())
        return error;

    const auto decoded = [&error](const std::string &raw,
                                  const char *what) {
        std::string text;
        if (!percentDecode(raw, text))
            error = std::string("bad percent-encoding in \"") + what +
                "\" field";
        return text;
    };
    const auto toUint = [&error](const std::string &raw,
                                 const char *what) {
        std::uint64_t value = 0;
        if (!parseStrictUint64(raw, value))
            error = std::string("bad integer in \"") + what +
                "\" field: \"" + raw + "\"";
        return value;
    };
    const auto toInt = [&error](const std::string &raw,
                                const char *what) {
        int value = 0;
        if (!parseStrictInt(raw, value))
            error = std::string("bad integer in \"") + what +
                "\" field: \"" + raw + "\"";
        return value;
    };
    const auto toDouble = [&error](const std::string &raw,
                                   const char *what) {
        double value = 0.0;
        if (!parseStrictDouble(raw, value))
            error = std::string("bad number in \"") + what +
                "\" field: \"" + raw + "\"";
        return value;
    };
    const auto toBool = [&error](const std::string &raw,
                                 const char *what) {
        if (raw != "0" && raw != "1") {
            error = std::string("bad flag in \"") + what +
                "\" field: \"" + raw + "\" (want 0 or 1)";
        }
        return raw == "1";
    };

    res = ExperimentResult{};
    std::string value;
    // Field order is fixed; the first failure (wrong name, missing
    // token, unparsable value) wins and aborts the decode.
#define LF_FIELD(name, apply)                                          \
    do {                                                               \
        error = reader.expect(name, value);                            \
        if (error.empty()) {                                           \
            apply;                                                     \
        }                                                              \
        if (!error.empty())                                            \
            return error;                                              \
    } while (0)

    LF_FIELD("idx", index = toUint(value, "idx"));
    LF_FIELD("label", res.spec.label = decoded(value, "label"));
    LF_FIELD("channel", res.spec.channel = decoded(value, "channel"));
    LF_FIELD("cpu", res.spec.cpu = decoded(value, "cpu"));
    LF_FIELD("seed", res.spec.seed = toUint(value, "seed"));
    LF_FIELD("trial", res.spec.trial = toInt(value, "trial"));
    LF_FIELD("pattern", {
        if (!messagePatternFromString(value, res.spec.pattern))
            error = "unknown pattern \"" + value + "\"";
    });
    LF_FIELD("bits", res.spec.messageBits =
        static_cast<std::size_t>(toUint(value, "bits")));
    LF_FIELD("preamble",
             res.spec.preambleBits = toInt(value, "preamble"));
    LF_FIELD("ok", res.ok = toBool(value, "ok"));
    LF_FIELD("skipped", res.skipped = toBool(value, "skipped"));
    LF_FIELD("error", res.error = decoded(value, "error"));
    LF_FIELD("error_rate",
             res.result.errorRate = toDouble(value, "error_rate"));
    LF_FIELD("kbps",
             res.result.transmissionKbps = toDouble(value, "kbps"));
    LF_FIELD("seconds",
             res.result.seconds = toDouble(value, "seconds"));
    LF_FIELD("overrides", {
        std::size_t start = 0;
        while (start < value.size() && error.empty()) {
            std::size_t end = value.find(',', start);
            if (end == std::string::npos)
                end = value.size();
            const std::string pair = value.substr(start, end - start);
            start = end + 1;
            const std::size_t colon = pair.find(':');
            if (colon == std::string::npos) {
                error = "malformed override \"" + pair +
                    "\" (no ':')";
                break;
            }
            const std::string key =
                decoded(pair.substr(0, colon), "overrides");
            const double v =
                toDouble(pair.substr(colon + 1), "overrides");
            if (error.empty() &&
                !res.spec.overrides.emplace(key, v).second) {
                error = "duplicate override key \"" + key + "\"";
            }
        }
    });
#undef LF_FIELD

    if (reader.next != reader.tokens.size()) {
        return "trailing field \"" + reader.tokens[reader.next].first +
            "\" after record";
    }
    return "";
}

} // namespace lf
