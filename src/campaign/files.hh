/**
 * @file
 * Tiny filesystem helpers shared by the campaign file formats.
 *
 * Everything reports failure as a returned error string naming the
 * path and the reason — campaign code never throws or aborts on bad
 * input files, it diagnoses them (the CLI prints the string and
 * exits; tests assert on it).
 *
 * writeFileAtomic() is the one write primitive for whole-file
 * artifacts (manifest, cache entries): content lands under a
 * temporary name in the target directory and is renamed into place,
 * so readers never observe a half-written file even if the writer is
 * killed. Append-mode artifacts (shard results, checkpoints) instead
 * use the shard log's truncation-tolerant loader.
 */

#ifndef LF_CAMPAIGN_FILES_HH
#define LF_CAMPAIGN_FILES_HH

#include <string>

namespace lf {

/** Read all of @p path into @p out.
 *  @return an error message ("path: reason") or the empty string. */
std::string readFileText(const std::string &path, std::string &out);

/** Write @p content to @p path atomically (temp file in the same
 *  directory, then rename). Creates parent directories.
 *  @return an error message or the empty string. */
std::string writeFileAtomic(const std::string &path,
                            const std::string &content);

/** Does @p path exist (as any kind of file)? */
bool pathExists(const std::string &path);

} // namespace lf

#endif // LF_CAMPAIGN_FILES_HH
