#include "campaign/shard_log.hh"

#include <filesystem>
#include <system_error>

#include "campaign/files.hh"
#include "campaign/record.hh"
#include "run/cli.hh"

namespace lf {

namespace {

constexpr const char *kResultsMagic = "lfcampaign-results v1";
constexpr const char *kCheckpointMagic = "lfcampaign-checkpoint v1";

std::string
headerLine(const char *magic, const std::string &gridHash,
           const SweepShard &shard)
{
    return std::string(magic) + " " + gridHash + " shard " +
        std::to_string(shard.index) + "/" +
        std::to_string(shard.count);
}

/**
 * Walk @p text line by line, calling @p onLine(lineNo, line) for each
 * *terminated* line; @p validBytes ends up at the start of an
 * unterminated trailing partial line (== size() when none) — the only
 * kind of damage a kill can cause, and the only kind tolerated.
 * onLine returns an error string to abort.
 */
template <typename OnLine>
std::string
scanLines(const std::string &text, std::size_t &validBytes,
          const OnLine &onLine)
{
    std::size_t start = 0;
    std::size_t lineNo = 0;
    validBytes = 0;
    while (start < text.size()) {
        const std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            break; // Partial trailing line: drop, validBytes stays.
        ++lineNo;
        const std::string error =
            onLine(lineNo, text.substr(start, end - start));
        if (!error.empty())
            return error;
        start = end + 1;
        validBytes = start;
    }
    return "";
}

/** Validate a header line against the expected magic/hash/shard. */
std::string
checkHeader(const std::string &line, const char *magic,
            const std::string &gridHash, const SweepShard &shard)
{
    const std::string expected = headerLine(magic, gridHash, shard);
    if (line == expected)
        return "";
    if (line.compare(0, std::string(magic).size(), magic) != 0)
        return "not a " + std::string(magic) + " file";
    return "header mismatch (want \"" + expected + "\", found \"" +
        line + "\") — file belongs to a different campaign or shard";
}

} // namespace

std::string
shardResultsPath(const std::string &dir, int shard)
{
    return dir + "/shard-" + std::to_string(shard) + ".results";
}

std::string
shardCheckpointPath(const std::string &dir, int shard)
{
    return dir + "/shard-" + std::to_string(shard) + ".checkpoint";
}

std::string
loadShardResults(const std::string &path, const std::string &gridHash,
                 const SweepShard &shard, std::size_t totalRows,
                 ShardLogState &state)
{
    std::string text;
    std::string error = readFileText(path, text);
    if (!error.empty())
        return error;

    error = scanLines(text, state.resultsValidBytes,
        [&](std::size_t lineNo, const std::string &line) {
            const auto fail = [&](const std::string &reason) {
                return path + ": line " + std::to_string(lineNo) +
                    ": " + reason;
            };
            if (lineNo == 1) {
                const std::string bad = checkHeader(
                    line, kResultsMagic, gridHash, shard);
                return bad.empty() ? std::string() : fail(bad);
            }
            if (line.compare(0, 4, "row ") != 0)
                return fail("expected a \"row\" line");
            std::size_t index = 0;
            ExperimentResult res;
            const std::string bad =
                decodeResultRecord(line.substr(4), index, res);
            if (!bad.empty())
                return fail(bad);
            if (index >= totalRows) {
                return fail("row index " + std::to_string(index) +
                            " out of range (campaign has " +
                            std::to_string(totalRows) + " rows)");
            }
            if (!state.rows.emplace(index, std::move(res)).second) {
                return fail("duplicate row index " +
                            std::to_string(index));
            }
            return std::string();
        });
    return error;
}

namespace {

std::string
loadShardCheckpoint(const std::string &path,
                    const std::string &gridHash,
                    const SweepShard &shard, std::size_t totalRows,
                    ShardLogState &state)
{
    std::string text;
    std::string error = readFileText(path, text);
    if (!error.empty())
        return error;

    return scanLines(text, state.checkpointValidBytes,
        [&](std::size_t lineNo, const std::string &line) {
            const auto fail = [&](const std::string &reason) {
                return path + ": line " + std::to_string(lineNo) +
                    ": " + reason;
            };
            if (lineNo == 1) {
                const std::string bad = checkHeader(
                    line, kCheckpointMagic, gridHash, shard);
                return bad.empty() ? std::string() : fail(bad);
            }
            if (line.compare(0, 5, "done ") != 0)
                return fail("expected a \"done\" line");
            std::uint64_t index = 0;
            if (!parseStrictUint64(line.substr(5), index)) {
                return fail("bad row index \"" + line.substr(5) +
                            "\"");
            }
            if (index >= totalRows) {
                return fail("row index " + std::to_string(index) +
                            " out of range (campaign has " +
                            std::to_string(totalRows) + " rows)");
            }
            if (!state.checkpointed
                     .insert(static_cast<std::size_t>(index))
                     .second) {
                return fail("duplicate row index " +
                            std::to_string(index));
            }
            return std::string();
        });
}

} // namespace

std::string
loadShardLog(const std::string &dir, int shard,
             const std::string &gridHash, int shardCount,
             std::size_t totalRows, ShardLogState &state)
{
    state = ShardLogState{};
    SweepShard selector;
    selector.index = shard;
    selector.count = shardCount;

    const std::string resultsPath = shardResultsPath(dir, shard);
    const std::string checkpointPath = shardCheckpointPath(dir, shard);
    if (pathExists(resultsPath)) {
        const std::string error = loadShardResults(
            resultsPath, gridHash, selector, totalRows, state);
        if (!error.empty())
            return error;
    }
    if (pathExists(checkpointPath)) {
        const std::string error = loadShardCheckpoint(
            checkpointPath, gridHash, selector, totalRows, state);
        if (!error.empty())
            return error;
    }
    // Write ordering guarantees checkpoint ⊆ results; the converse
    // gap (row landed, `done` lost to a kill) is healed by the
    // runner, but a checkpointed row with no result is corruption.
    for (const std::size_t index : state.checkpointed) {
        if (state.rows.count(index) == 0) {
            return checkpointPath + ": row " + std::to_string(index) +
                " is checkpointed but missing from " + resultsPath +
                " — shard state corrupt (delete both files to re-run"
                " the shard)";
        }
    }
    return "";
}

std::string
ShardLogWriter::open(const std::string &dir, int shard,
                     const std::string &gridHash, int shardCount,
                     const ShardLogState &state)
{
    SweepShard selector;
    selector.index = shard;
    selector.count = shardCount;
    resultsPath_ = shardResultsPath(dir, shard);
    checkpointPath_ = shardCheckpointPath(dir, shard);

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return dir + ": cannot create directory (" + ec.message() + ")";

    const auto prepare = [&](const std::string &path,
                             std::size_t validBytes,
                             const char *magic, std::ofstream &os) {
        const bool fresh = validBytes == 0;
        if (!fresh && pathExists(path)) {
            // Cut off a kill-truncated partial tail before appending.
            std::error_code resizeEc;
            std::filesystem::resize_file(path, validBytes, resizeEc);
            if (resizeEc) {
                return path + ": cannot truncate damaged tail (" +
                    resizeEc.message() + ")";
            }
        }
        os.open(path, fresh ? (std::ios::out | std::ios::trunc)
                            : (std::ios::out | std::ios::app));
        if (!os)
            return path + ": cannot open for appending";
        if (fresh) {
            os << headerLine(magic, gridHash, selector) << "\n";
            os.flush();
            if (!os.good())
                return path + ": header write failed";
        }
        return std::string();
    };

    std::string error = prepare(resultsPath_, state.resultsValidBytes,
                                kResultsMagic, results_);
    if (!error.empty())
        return error;
    return prepare(checkpointPath_, state.checkpointValidBytes,
                   kCheckpointMagic, checkpoint_);
}

std::string
ShardLogWriter::append(std::size_t index, const ExperimentResult &res)
{
    // Row first, flushed, *then* the checkpoint line: a kill between
    // the two leaves a row without `done`, which resume heals; the
    // reverse order could checkpoint a row that never landed.
    results_ << "row " << encodeResultRecord(index, res) << "\n";
    results_.flush();
    if (!results_.good())
        return resultsPath_ + ": write failed";
    return appendCheckpoint(index);
}

std::string
ShardLogWriter::appendCheckpoint(std::size_t index)
{
    checkpoint_ << "done " << index << "\n";
    checkpoint_.flush();
    if (!checkpoint_.good())
        return checkpointPath_ + ": write failed";
    return "";
}

} // namespace lf
