#include "campaign/files.hh"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace lf {

namespace fs = std::filesystem;

std::string
readFileText(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return path + ": cannot open for reading";
    std::ostringstream buf;
    buf << is.rdbuf();
    if (is.bad())
        return path + ": read failed";
    out = buf.str();
    return "";
}

std::string
writeFileAtomic(const std::string &path, const std::string &content)
{
    const fs::path target(path);
    std::error_code ec;
    if (target.has_parent_path()) {
        fs::create_directories(target.parent_path(), ec);
        if (ec) {
            return path + ": cannot create parent directory (" +
                ec.message() + ")";
        }
    }
    // The temp name is per-process so concurrent shard processes
    // writing the same cache entry race benignly: both renames land
    // identical content.
    const fs::path tmp =
        target.parent_path() /
        (target.filename().string() + ".tmp." +
         std::to_string(static_cast<long long>(getpid())));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return tmp.string() + ": cannot open for writing";
        os << content;
        os.flush();
        if (!os.good())
            return tmp.string() + ": write failed";
    }
    fs::rename(tmp, target, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return path + ": rename into place failed";
    }
    return "";
}

bool
pathExists(const std::string &path)
{
    std::error_code ec;
    return fs::exists(path, ec);
}

} // namespace lf
