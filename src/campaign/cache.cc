#include "campaign/cache.hh"

#include <utility>
#include <vector>

#include "campaign/files.hh"
#include "campaign/grid_hash.hh"
#include "campaign/record.hh"

namespace lf {

namespace {

constexpr const char *kMagic = "lfcampaign-cache v1";

} // namespace

ResultCache::ResultCache(std::string root)
    : root_(std::move(root))
{
}

std::string
ResultCache::entryPath(const ExperimentSpec &spec) const
{
    const std::string key = trialKey(spec);
    return root_ + "/" + key.substr(0, 2) + "/" + key + ".rec";
}

std::string
ResultCache::legacyEntryPath(const ExperimentSpec &spec) const
{
    return root_ + "/" + trialKey(spec) + ".rec";
}

bool
ResultCache::lookup(const ExperimentSpec &spec, ExperimentResult &res,
                    std::string &error) const
{
    error.clear();
    if (!enabled())
        return false;
    std::string path = entryPath(spec);
    if (!pathExists(path)) {
        // Migration read path: a cache written before sharding filed
        // this trial flat under the root. The sharded path wins when
        // both exist (it is the one store() refreshes).
        path = legacyEntryPath(spec);
        if (!pathExists(path))
            return false; // Plain miss.
    }

    std::string text;
    error = readFileText(path, text);
    if (!error.empty())
        return false;

    const auto fail = [&](const std::string &reason) {
        error = path + ": " + reason +
            " — cache entry corrupt (delete it to re-run the trial)";
        return false;
    };

    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            return fail("truncated entry (unterminated line)");
        lines.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    if (lines.size() != 4 || lines[3] != "end")
        return fail("truncated entry (missing \"end\" sentinel)");
    if (lines[0] != kMagic)
        return fail("not a " + std::string(kMagic) + " entry");

    const std::string key = trialKey(spec);
    if (lines[1] != "key " + key) {
        return fail("key line mismatch (want \"key " + key + "\")");
    }
    if (lines[2].compare(0, 4, "row ") != 0)
        return fail("expected a \"row\" line");
    std::size_t index = 0;
    const std::string bad =
        decodeResultRecord(lines[2].substr(4), index, res);
    if (!bad.empty())
        return fail(bad);
    // Content-address check: the stored spec must be *this* trial,
    // byte for byte — a record that decodes but describes another
    // trial (bit rot, a misfiled entry) must not be served.
    if (canonicalTrialText(res.spec) != canonicalTrialText(spec))
        return fail("stored spec does not match the requested trial");
    return true;
}

std::string
ResultCache::store(const ExperimentSpec &spec,
                   const ExperimentResult &res) const
{
    if (!enabled())
        return "";
    // The record's index slot is campaign-relative, not content; it
    // is stored as 0 and re-stamped by whoever replays the entry.
    std::string content = std::string(kMagic) + "\n";
    content += "key " + trialKey(spec) + "\n";
    content += "row " + encodeResultRecord(0, res) + "\n";
    content += "end\n";
    return writeFileAtomic(entryPath(spec), content);
}

} // namespace lf
