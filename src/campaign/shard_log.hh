/**
 * @file
 * Per-shard on-disk state: the append-only results file and the
 * checkpoint.
 *
 * A shard writes two files, both headed by the campaign's grid hash
 * and the shard's i/n selector (so state can never be replayed into a
 * different campaign or shard):
 *
 *   shard-<i>.results     "row <record>" lines — one encoded
 *                         ExperimentResult per completed trial, in
 *                         completion order, each carrying its global
 *                         row index (see record.hh);
 *   shard-<i>.checkpoint  "done <index>" lines — appended *after* the
 *                         row is durably in the results file.
 *
 * Crash contract: each row is written and flushed before its `done`
 * line, so on reload `checkpoint ⊆ results` always holds; a violation
 * means external corruption and is a hard error. A kill can leave at
 * most one *unterminated* trailing line in either file — that is the
 * only damage tolerated silently: the partial tail is dropped (and
 * truncated away before appending resumes) and its trial simply
 * re-runs. Any malformed *terminated* line, in either file, is a
 * diagnosed error naming the path, line, and reason — corruption is
 * never skipped over, because a skipped row would silently change the
 * merged summary.
 */

#ifndef LF_CAMPAIGN_SHARD_LOG_HH
#define LF_CAMPAIGN_SHARD_LOG_HH

#include <cstddef>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include "run/experiment.hh"
#include "run/sweep.hh"

namespace lf {

/** Everything reloaded from one shard's files. */
struct ShardLogState
{
    /** Completed rows by global index (results-file content). */
    std::map<std::size_t, ExperimentResult> rows;
    /** Indices the checkpoint records (always a subset of rows). */
    std::set<std::size_t> checkpointed;
    /** Byte length of the valid prefix of each file; anything past it
     *  is a kill-truncated partial line the writer must cut off. */
    std::size_t resultsValidBytes = 0;
    std::size_t checkpointValidBytes = 0;
};

/** The shard-state file names inside a campaign directory. */
std::string shardResultsPath(const std::string &dir, int shard);
std::string shardCheckpointPath(const std::string &dir, int shard);

/**
 * Load the results file at @p path (it must exist). Validates the
 * header against @p gridHash / @p shard, decodes every terminated row
 * line strictly, rejects duplicate and out-of-range (>= @p totalRows)
 * indices, and drops an unterminated trailing line.
 * @return an error message ("path: line N: reason") or "".
 */
std::string loadShardResults(const std::string &path,
                             const std::string &gridHash,
                             const SweepShard &shard,
                             std::size_t totalRows,
                             ShardLogState &state);

/**
 * Load both shard files into @p state. Missing files mean a fresh
 * shard (empty state, no error); a checkpoint entry without its
 * results row is corruption and fails.
 */
std::string loadShardLog(const std::string &dir, int shard,
                         const std::string &gridHash, int shardCount,
                         std::size_t totalRows, ShardLogState &state);

/**
 * Append-side handle: opens (creating + writing headers, or resuming
 * — truncating kill-damaged tails to the valid prefix recorded in
 * @p state) and appends row/checkpoint pairs with the crash-ordering
 * contract above.
 */
class ShardLogWriter
{
  public:
    /** Open for appending. @return an error message or "". */
    std::string open(const std::string &dir, int shard,
                     const std::string &gridHash, int shardCount,
                     const ShardLogState &state);

    /** Write one completed row (results line, flush, checkpoint line,
     *  flush). @return an error message or "". */
    std::string append(std::size_t index, const ExperimentResult &res);

    /** Append a checkpoint line only — used on resume for rows whose
     *  result landed but whose `done` line was lost to a kill. */
    std::string appendCheckpoint(std::size_t index);

  private:
    std::ofstream results_;
    std::ofstream checkpoint_;
    std::string resultsPath_;
    std::string checkpointPath_;
};

} // namespace lf

#endif // LF_CAMPAIGN_SHARD_LOG_HH
