#include "campaign/grid_hash.hh"

#include <cstdio>

#include "common/message.hh"
#include "run/sinks.hh"

namespace lf {

namespace {

/** Append one field as "name=value\n"; the caller guarantees values
 *  are rendered deterministically (jsonNumber for doubles). The
 *  newline keeps adjacent fields from gluing into ambiguous text
 *  ("ab"+"c" vs "a"+"bc"). */
void
field(std::string &out, const char *name, const std::string &value)
{
    out += name;
    out += '=';
    out += value;
    out += '\n';
}

} // namespace

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
hashHex(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::string
canonicalSweepText(const SweepSpec &spec)
{
    std::string out = "lfcampaign-grid v1\n";
    field(out, "label", spec.label);
    for (const std::string &channel : spec.channels)
        field(out, "channel", channel);
    for (const std::string &cpu : spec.cpus)
        field(out, "cpu", cpu);
    for (const MessagePattern pattern : spec.patterns)
        field(out, "pattern", toString(pattern));
    for (const SweepAxis &axis : spec.axes) {
        std::string values;
        for (const double value : axis.values) {
            values += ' ';
            values += jsonNumber(value);
        }
        field(out, "axis", axis.key + values);
    }
    for (const auto &[key, value] : spec.baseOverrides)
        field(out, "set", key + " " + jsonNumber(value));
    field(out, "trials", std::to_string(spec.trials));
    field(out, "seed", std::to_string(spec.seed));
    field(out, "message_bits", std::to_string(spec.messageBits));
    field(out, "preamble_bits", std::to_string(spec.preambleBits));
    return out;
}

std::string
gridHash(const SweepSpec &spec)
{
    return hashHex(fnv1a64(canonicalSweepText(spec)));
}

std::string
canonicalTrialText(const ExperimentSpec &spec)
{
    std::string out = "lfcampaign-trial v1\n";
    field(out, "label", spec.label);
    field(out, "channel", spec.channel);
    field(out, "cpu", spec.cpu);
    field(out, "seed", std::to_string(spec.seed));
    field(out, "trial", std::to_string(spec.trial));
    field(out, "pattern", toString(spec.pattern));
    field(out, "message_bits", std::to_string(spec.messageBits));
    field(out, "preamble_bits", std::to_string(spec.preambleBits));
    for (const auto &[key, value] : spec.overrides)
        field(out, "set", key + " " + jsonNumber(value));
    return out;
}

std::string
trialKey(const ExperimentSpec &spec)
{
    return hashHex(fnv1a64(canonicalTrialText(spec)));
}

} // namespace lf
