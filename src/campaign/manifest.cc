#include "campaign/manifest.hh"

#include <vector>

#include "campaign/files.hh"
#include "campaign/grid_hash.hh"
#include "campaign/record.hh"
#include "common/message.hh"
#include "run/cli.hh"
#include "run/sinks.hh"

namespace lf {

namespace {

constexpr const char *kMagic = "lfcampaign-manifest";

/** Split @p line on single spaces into words (no empty words). */
std::vector<std::string>
words(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= line.size()) {
        std::size_t end = line.find(' ', start);
        if (end == std::string::npos)
            end = line.size();
        if (end > start)
            out.push_back(line.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

} // namespace

std::string
planManifest(const SweepSpec &spec, int shards, CampaignManifest &out)
{
    std::string error = validateSweepSpec(spec);
    if (!error.empty())
        return error;
    SweepShard probe;
    probe.index = 0;
    probe.count = shards;
    error = validateSweepShard(spec, probe);
    if (!error.empty())
        return error;
    out.spec = spec;
    out.shards = shards;
    out.cells = sweepCellCount(spec);
    out.rows = out.cells * static_cast<std::size_t>(spec.trials);
    out.gridHash = gridHash(spec);
    return "";
}

std::string
renderManifest(const CampaignManifest &manifest)
{
    const SweepSpec &spec = manifest.spec;
    std::string out;
    out += std::string(kMagic) + " v" +
        std::to_string(CampaignManifest::kSchemaVersion) + "\n";
    out += "grid_hash " + manifest.gridHash + "\n";
    out += "shards " + std::to_string(manifest.shards) + "\n";
    out += "cells " + std::to_string(manifest.cells) + "\n";
    out += "rows " + std::to_string(manifest.rows) + "\n";
    out += "trials " + std::to_string(spec.trials) + "\n";
    out += "seed " + std::to_string(spec.seed) + "\n";
    out += "message_bits " + std::to_string(spec.messageBits) + "\n";
    out += "preamble_bits " + std::to_string(spec.preambleBits) + "\n";
    out += "label " + percentEncode(spec.label) + "\n";
    for (const std::string &channel : spec.channels)
        out += "channel " + percentEncode(channel) + "\n";
    for (const std::string &cpu : spec.cpus)
        out += "cpu " + percentEncode(cpu) + "\n";
    for (const MessagePattern pattern : spec.patterns)
        out += "pattern " + std::string(toString(pattern)) + "\n";
    for (const SweepAxis &axis : spec.axes) {
        out += "axis " + percentEncode(axis.key);
        for (const double value : axis.values)
            out += " " + jsonNumber(value);
        out += "\n";
    }
    for (const auto &[key, value] : spec.baseOverrides) {
        out += "set " + percentEncode(key) + " " + jsonNumber(value) +
            "\n";
    }
    out += "end\n";
    return out;
}

std::string
parseManifest(const std::string &text, const std::string &path,
              CampaignManifest &out)
{
    out = CampaignManifest{};
    SweepSpec spec;
    spec.patterns.clear(); // The default pattern must not leak in.

    bool sawEnd = false;
    bool sawLabel = false;
    // Scalars must appear exactly once; -1 marks "not yet seen".
    long long shards = -1, cells = -1, rows = -1, trials = -1;
    long long messageBits = -1;
    bool sawSeed = false, sawPreamble = false, sawHash = false;
    int preambleBits = 0;

    std::size_t lineNo = 0;
    std::size_t start = 0;
    std::string error;
    const auto fail = [&](const std::string &reason) {
        return path + ": line " + std::to_string(lineNo) + ": " +
            reason;
    };
    const auto decodeWord = [&](const std::string &word,
                                std::string &value) {
        if (!percentDecode(word, value)) {
            error = fail("bad percent-encoding in \"" + word + "\"");
            return false;
        }
        return true;
    };

    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        const bool terminated = end != std::string::npos;
        if (!terminated)
            end = text.size();
        const std::string line = text.substr(start, end - start);
        start = end + 1;
        ++lineNo;
        if (sawEnd && !line.empty())
            return fail("content after \"end\" sentinel");
        if (!terminated)
            return fail("truncated line (missing newline)");
        if (line.empty())
            return fail("unexpected blank line");

        if (lineNo == 1) {
            const std::vector<std::string> head = words(line);
            if (head.size() != 2 || head[0] != kMagic)
                return fail("not a campaign manifest");
            if (head[1] !=
                "v" + std::to_string(CampaignManifest::kSchemaVersion)) {
                return fail("unsupported manifest version \"" +
                            head[1] + "\"");
            }
            continue;
        }
        if (line == "end") {
            sawEnd = true;
            continue;
        }

        const std::vector<std::string> parts = words(line);
        const std::string &key = parts[0];
        const auto scalar = [&](long long &slot) {
            if (parts.size() != 2) {
                error = fail("\"" + key + "\" wants one value");
                return;
            }
            if (slot >= 0) {
                error = fail("duplicate \"" + key + "\" line");
                return;
            }
            std::uint64_t value = 0;
            if (!parseStrictUint64(parts[1], value)) {
                error = fail("bad \"" + key + "\" value \"" +
                             parts[1] + "\"");
                return;
            }
            slot = static_cast<long long>(value);
        };

        if (key == "grid_hash") {
            if (parts.size() != 2 || sawHash)
                return fail("bad or duplicate grid_hash line");
            out.gridHash = parts[1];
            sawHash = true;
        } else if (key == "shards") {
            scalar(shards);
        } else if (key == "cells") {
            scalar(cells);
        } else if (key == "rows") {
            scalar(rows);
        } else if (key == "trials") {
            scalar(trials);
        } else if (key == "message_bits") {
            scalar(messageBits);
        } else if (key == "seed") {
            if (parts.size() != 2 || sawSeed ||
                !parseStrictUint64(parts[1], spec.seed)) {
                return fail("bad or duplicate seed line");
            }
            sawSeed = true;
        } else if (key == "preamble_bits") {
            if (parts.size() != 2 || sawPreamble ||
                !parseStrictInt(parts[1], preambleBits)) {
                return fail("bad or duplicate preamble_bits line");
            }
            sawPreamble = true;
        } else if (key == "label") {
            // percentEncode("") == "", so an empty label renders as
            // "label " and words() sees one part.
            if (parts.size() > 2 || sawLabel)
                return fail("bad or duplicate label line");
            if (parts.size() == 2 &&
                !decodeWord(parts[1], spec.label)) {
                return error;
            }
            sawLabel = true;
        } else if (key == "channel" || key == "cpu") {
            if (parts.size() != 2)
                return fail("\"" + key + "\" wants one value");
            std::string name;
            if (!decodeWord(parts[1], name))
                return error;
            (key == "channel" ? spec.channels : spec.cpus)
                .push_back(name);
        } else if (key == "pattern") {
            MessagePattern pattern;
            if (parts.size() != 2 ||
                !messagePatternFromString(parts[1], pattern)) {
                return fail("bad pattern line");
            }
            spec.patterns.push_back(pattern);
        } else if (key == "axis") {
            if (parts.size() < 3)
                return fail("axis wants a key and >= 1 value");
            SweepAxis axis;
            if (!decodeWord(parts[1], axis.key))
                return error;
            for (std::size_t i = 2; i < parts.size(); ++i) {
                double value = 0.0;
                if (!parseStrictDouble(parts[i], value)) {
                    return fail("bad axis value \"" + parts[i] +
                                "\"");
                }
                axis.values.push_back(value);
            }
            spec.axes.push_back(std::move(axis));
        } else if (key == "set") {
            if (parts.size() != 3)
                return fail("set wants a key and a value");
            std::string name;
            double value = 0.0;
            if (!decodeWord(parts[1], name))
                return error;
            if (!parseStrictDouble(parts[2], value))
                return fail("bad set value \"" + parts[2] + "\"");
            if (!spec.baseOverrides.emplace(name, value).second)
                return fail("duplicate set key \"" + name + "\"");
        } else {
            return fail("unknown manifest line \"" + key + "\"");
        }
    }
    if (!sawEnd) {
        return path +
            ": truncated manifest (missing \"end\" sentinel)";
    }
    if (!sawHash || shards < 0 || cells < 0 || rows < 0 ||
        trials < 0 || messageBits < 0 || !sawSeed || !sawPreamble ||
        !sawLabel) {
        return path + ": incomplete manifest (missing required line)";
    }

    spec.trials = static_cast<int>(trials);
    spec.messageBits = static_cast<std::size_t>(messageBits);
    spec.preambleBits = preambleBits;
    out.spec = std::move(spec);
    out.shards = static_cast<int>(shards);
    out.cells = static_cast<std::size_t>(cells);
    out.rows = static_cast<std::size_t>(rows);

    const std::string specError = validateSweepSpec(out.spec);
    if (!specError.empty())
        return path + ": manifest spec invalid: " + specError;
    if (out.cells != sweepCellCount(out.spec) ||
        out.rows !=
            out.cells * static_cast<std::size_t>(out.spec.trials)) {
        return path + ": cell/row counts disagree with the spec";
    }
    if (out.shards < 1 ||
        static_cast<std::size_t>(out.shards) > out.cells) {
        return path + ": shard count out of range";
    }
    // The decisive integrity check: the stored hash must equal the
    // hash of what we just parsed.
    if (gridHash(out.spec) != out.gridHash) {
        return path + ": grid hash mismatch (stored " + out.gridHash +
            ", spec hashes to " + gridHash(out.spec) +
            ") — manifest corrupt or hand-edited";
    }
    return "";
}

std::string
writeManifestFile(const CampaignManifest &manifest,
                  const std::string &path)
{
    return writeFileAtomic(path, renderManifest(manifest));
}

std::string
loadManifestFile(const std::string &path, CampaignManifest &out)
{
    std::string text;
    std::string error = readFileText(path, text);
    if (!error.empty())
        return error;
    return parseManifest(text, path, out);
}

} // namespace lf
