/**
 * @file
 * Content-addressed result cache: repeated campaigns are incremental.
 *
 * Every trial is a pure function of its fully-expanded spec, so its
 * result can be cached under trialKey(spec) — a content address that
 * covers the channel, CPU, overrides, message parameters, seed, and
 * trial index. Overlapping or re-planned campaigns (same cells,
 * different sharding; a grid grown by one axis value; a straight
 * re-run) then skip every trial they share with history.
 *
 * Layout: `<root>/<k[0:2]>/<key>.rec`, two-level to keep directories
 * small at million-entry scale. Pre-sharding caches used a flat
 * `<root>/<key>.rec` layout; lookups fall back to it when the sharded
 * path is absent, so existing caches keep their history without a
 * migration step (new entries are always written sharded). Entries
 * are written atomically (writeFileAtomic), so a kill never leaves a
 * partial entry; on read, an entry must parse exactly AND its stored
 * spec must hash back to the key it was filed under — a corrupt,
 * truncated, or misfiled entry is a diagnosed error (path + reason),
 * never a silent wrong result and never treated as a mere miss (per
 * the file-hardening contract; delete the named file to recover).
 */

#ifndef LF_CAMPAIGN_CACHE_HH
#define LF_CAMPAIGN_CACHE_HH

#include <string>

#include "run/experiment.hh"

namespace lf {

class ResultCache
{
  public:
    /** @param root Cache directory; empty disables the cache (every
     *  lookup misses, every store is a no-op). */
    explicit ResultCache(std::string root = "");

    bool enabled() const { return !root_.empty(); }
    const std::string &root() const { return root_; }

    /** Entry file path for @p spec (valid only when enabled). */
    std::string entryPath(const ExperimentSpec &spec) const;

    /** Where a pre-sharding (flat-layout) cache filed @p spec —
     *  consulted by lookup() when entryPath() is absent. */
    std::string legacyEntryPath(const ExperimentSpec &spec) const;

    /**
     * Look @p spec up. Outcomes: hit (@return true, @p res filled),
     * miss (@return false, @p error empty), or corrupt entry
     * (@return false, @p error names the path and reason).
     */
    bool lookup(const ExperimentSpec &spec, ExperimentResult &res,
                std::string &error) const;

    /** Store @p res under @p spec's content address (atomic).
     *  @return an error message or "". */
    std::string store(const ExperimentSpec &spec,
                      const ExperimentResult &res) const;

  private:
    std::string root_;
};

} // namespace lf

#endif // LF_CAMPAIGN_CACHE_HH
