/**
 * @file
 * The one-line result record shared by shard output files and the
 * result cache.
 *
 * A record serializes everything SweepAccumulator needs to fold a
 * trial into a campaign summary — the cell identity (label, channel,
 * cpu, pattern, message/preamble bits, overrides), the seed/trial
 * provenance, and the outcome (ok/skipped/error plus the three folded
 * statistics) — as space-separated `key=value` tokens in a fixed
 * order. Strings are percent-encoded (space, '%', control bytes), so
 * a record is always exactly one line; doubles render with the sinks'
 * round-trip-exact format and are parsed back to the identical bits,
 * which is what makes a merged summary *byte*-identical to the
 * unsharded run rather than merely close.
 *
 * Decoding is strict: every token must be present, in order, and
 * parse exactly — a corrupt or truncated record is a diagnosable
 * error string (never a partially-filled result), per the campaign
 * file-hardening contract.
 */

#ifndef LF_CAMPAIGN_RECORD_HH
#define LF_CAMPAIGN_RECORD_HH

#include <cstddef>
#include <string>

#include "run/experiment.hh"

namespace lf {

/** Percent-encode @p text so it contains no spaces, control bytes, or
 *  '%' — safe as one token of a line-based file format. */
std::string percentEncode(const std::string &text);

/** Invert percentEncode(). @return false on malformed input (bad or
 *  truncated escape). */
bool percentDecode(const std::string &text, std::string &out);

/**
 * Serialize @p res (the @p index -th trial of the full campaign
 * batch) as one newline-free record line.
 */
std::string encodeResultRecord(std::size_t index,
                               const ExperimentResult &res);

/**
 * Parse a record line back into (@p index, @p res). Only the fields a
 * record carries are populated; everything else keeps its default.
 * @return an error message naming the offending token ("" on
 *         success). On error @p res is unspecified — discard it.
 */
std::string decodeResultRecord(const std::string &line,
                               std::size_t &index,
                               ExperimentResult &res);

} // namespace lf

#endif // LF_CAMPAIGN_RECORD_HH
