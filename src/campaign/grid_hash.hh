/**
 * @file
 * Canonical serialization and content hashes for campaign identity.
 *
 * A campaign's files (manifest, per-shard results, checkpoints, cache
 * entries) all carry the **grid hash**: a 64-bit FNV-1a digest of a
 * canonical, versioned text serialization of the SweepSpec — every
 * field in a fixed order, channels/cpus/patterns/axes included,
 * doubles rendered round-trip-exact. Two SweepSpecs have the same
 * grid hash iff they expand to the same trial batch, so a checkpoint
 * or shard file can never be silently applied to a different
 * campaign, and a manifest that parses but was bit-flipped in a spec
 * field is caught by recomputing the hash.
 *
 * The **trial key** is the same idea at per-trial granularity: a
 * digest of one fully-expanded ExperimentSpec (seed and trial index
 * included), used as the content address of the result cache — equal
 * keys mean "this exact trial", because trials are pure functions of
 * their spec.
 */

#ifndef LF_CAMPAIGN_GRID_HASH_HH
#define LF_CAMPAIGN_GRID_HASH_HH

#include <cstdint>
#include <string>

#include "run/sweep.hh"

namespace lf {

/** 64-bit FNV-1a over @p text. */
std::uint64_t fnv1a64(const std::string &text);

/** Fixed-width lowercase-hex rendering of a 64-bit hash. */
std::string hashHex(std::uint64_t hash);

/**
 * The canonical text form of @p spec hashed by gridHash(): versioned,
 * every field in fixed order, values rendered round-trip-exact. Two
 * specs serialize identically iff they describe the same grid.
 */
std::string canonicalSweepText(const SweepSpec &spec);

/** 16-hex-digit content hash identifying the sweep grid. */
std::string gridHash(const SweepSpec &spec);

/**
 * Canonical text form of one fully-expanded trial spec (seed, trial
 * index, overrides and all) hashed by trialKey().
 */
std::string canonicalTrialText(const ExperimentSpec &spec);

/** 16-hex-digit content address of one trial — the result-cache key:
 *  a pair of trials share a key iff they share the whole spec
 *  (seed included), in which case they share the result too. */
std::string trialKey(const ExperimentSpec &spec);

} // namespace lf

#endif // LF_CAMPAIGN_GRID_HASH_HH
