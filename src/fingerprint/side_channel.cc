#include "fingerprint/side_channel.hh"

#include "common/logging.hh"
#include "common/stats.hh"
#include "core/trial_context.hh"
#include "frontend/prepared.hh"
#include "isa/mix_block.hh"
#include "sim/core.hh"
#include "sim/executor.hh"

namespace lf {

namespace {

constexpr ThreadId kAttacker = 0;
constexpr ThreadId kVictim = 1;
constexpr Addr kAttackerBase = 0x100000;

/** Victim phase scheduler with per-run jittered durations. */
class VictimDriver
{
  public:
    VictimDriver(Core &core, const VictimWorkload &victim,
                 double jitter_frac, Rng &rng)
        : core_(core), victim_(victim)
    {
        durations_.reserve(victim.numPhases());
        for (std::size_t i = 0; i < victim.numPhases(); ++i) {
            const double jitter =
                1.0 + rng.gaussian(0.0, jitter_frac);
            const double cycles = static_cast<double>(
                victim.phase(i).durationCycles) * std::max(jitter, 0.5);
            durations_.push_back(static_cast<Cycles>(cycles));
        }
        enterPhase(0);
    }

    /** Account @p cycles of progress; switch phases as needed. */
    void advance(Cycles cycles)
    {
        while (cycles >= remaining_) {
            cycles -= remaining_;
            enterPhase((phase_ + 1) % victim_.numPhases());
        }
        remaining_ -= cycles;
    }

    /** Cycles until the current phase ends. */
    Cycles remaining() const { return remaining_; }

  private:
    void enterPhase(std::size_t index)
    {
        phase_ = index;
        remaining_ = durations_[index];
        core_.setProgram(kVictim, &victim_.phaseProgram(index));
    }

    Core &core_;
    const VictimWorkload &victim_;
    std::vector<Cycles> durations_;
    std::size_t phase_ = 0;
    Cycles remaining_ = 0;
};

} // namespace

std::vector<double>
attackerIpcTrace(const CpuModel &model, const VictimWorkload &victim,
                 const TraceConfig &config, std::uint64_t seed,
                 const DefenseSpec &defense_spec)
{
    lf_assert(model.smtEnabled,
              "the IPC side channel needs SMT (disabled on %s)",
              model.name.c_str());
    // One trial = one TrialContext: the context folds the defense's
    // model-level mitigations into its model copy and owns the
    // armed-core teardown.
    TrialContext ctx(model, seed, EnvironmentSpec{}, defense_spec);
    Core &core = ctx.core();
    Defense &defense = ctx.defense();
    defense.arm(core);
    Rng rng(seed ^ 0xf17e5);

    const PreparedChainPtr attacker = prepareNopLoop(
        kAttackerBase, config.attackerNops,
        core.model().frontend.dsbLineUops);
    core.setProgram(kAttacker, *attacker);

    VictimDriver driver(core, victim, config.phaseJitterFrac, rng);

    // Warm both threads.
    core.runCycles(20000);
    driver.advance(20000);

    std::vector<double> trace;
    trace.reserve(static_cast<std::size_t>(config.samples));
    for (int s = 0; s < config.samples; ++s) {
        // One IPC sample is one defense slot: periodic DSB flushes
        // and index re-salts land between samples.
        defense.beginSlot(core);
        const std::uint64_t insts0 =
            core.counters(kAttacker).retiredInsts;
        Cycles to_go = config.sampleCycles;
        while (to_go > 0) {
            const Cycles step = std::min(to_go, driver.remaining());
            const Cycles chunk = step == 0 ? 1 : step;
            core.runCycles(chunk);
            driver.advance(chunk);
            to_go -= chunk;
        }
        const double ipc =
            static_cast<double>(core.counters(kAttacker).retiredInsts -
                                insts0) /
            static_cast<double>(config.sampleCycles);
        // Observable smoothing pads the sampled waveform itself
        // (down, toward the running worst-case IPC); the attacker's
        // own timer noise lands after it.
        trace.push_back(defense.filterRate(ipc) +
                        rng.gaussian(0.0, config.ipcNoiseStddev));
    }
    return trace;
}

double
attackerBaselineIpc(const CpuModel &model, const TraceConfig &config)
{
    Core core(model, 7);
    const PreparedChainPtr attacker = prepareNopLoop(
        kAttackerBase, config.attackerNops,
        core.model().frontend.dsbLineUops);
    core.setProgram(kAttacker, *attacker);
    core.runCycles(20000);
    const std::uint64_t insts0 = core.counters(kAttacker).retiredInsts;
    const Cycles c0 = core.cycle();
    core.runCycles(config.sampleCycles * 4);
    return static_cast<double>(core.counters(kAttacker).retiredInsts -
                               insts0) /
        static_cast<double>(core.cycle() - c0);
}

FingerprintStudy
runFingerprintStudy(const CpuModel &model,
                    const std::vector<VictimWorkload> &workloads,
                    const TraceConfig &config, int runs_per_workload,
                    std::uint64_t seed_base,
                    const DefenseSpec &defense)
{
    lf_assert(runs_per_workload >= 2,
              "need >= 2 runs for intra-distance");

    FingerprintStudy study;
    for (const auto &workload : workloads) {
        study.names.push_back(workload.name());
        std::vector<std::vector<double>> runs;
        for (int r = 0; r < runs_per_workload; ++r) {
            runs.push_back(attackerIpcTrace(
                model, workload, config,
                seed_base + static_cast<std::uint64_t>(r) * 131 +
                    study.names.size() * 7919,
                defense));
        }
        study.traces.push_back(std::move(runs));
    }

    const std::size_t n = workloads.size();
    study.distanceMatrix.assign(n, std::vector<double>(n, 0.0));
    OnlineStats intra;
    OnlineStats inter;

    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = 0; b < n; ++b) {
            OnlineStats cell;
            for (std::size_t i = 0; i < study.traces[a].size(); ++i) {
                for (std::size_t j = 0; j < study.traces[b].size();
                     ++j) {
                    if (a == b && i >= j)
                        continue;
                    const double dist = euclideanDistance(
                        study.traces[a][i], study.traces[b][j]);
                    cell.add(dist);
                    if (a == b)
                        intra.add(dist);
                    else if (a < b)
                        inter.add(dist);
                }
            }
            study.distanceMatrix[a][b] = cell.mean();
        }
    }
    study.meanIntraDistance = intra.mean();
    study.meanInterDistance = inter.mean();

    // Nearest-reference classification: reference = run 0 of each
    // workload; classify every other run.
    std::size_t correct = 0;
    std::size_t total = 0;
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t i = 1; i < study.traces[a].size(); ++i) {
            double best = -1.0;
            std::size_t best_w = 0;
            for (std::size_t w = 0; w < n; ++w) {
                const double dist = euclideanDistance(
                    study.traces[a][i], study.traces[w][0]);
                if (best < 0.0 || dist < best) {
                    best = dist;
                    best_w = w;
                }
            }
            ++total;
            if (best_w == a)
                ++correct;
        }
    }
    study.classificationAccuracy = total == 0 ? 0.0
        : static_cast<double>(correct) / static_cast<double>(total);
    return study;
}

} // namespace lf
