#include "fingerprint/workloads.hh"

#include "common/logging.hh"

namespace lf {

namespace {

constexpr Addr kVictimBase = 0xa00000;

/**
 * Build a phase's hot loop: @p blocks sequential mix blocks (25 B in a
 * 32 B window each) with an LCP'd variant every so often, closed by a
 * backward jump.
 */
std::unique_ptr<Program>
buildPhaseProgram(const WorkloadPhase &phase)
{
    lf_assert(phase.footprintBlocks > 0, "phase needs blocks");
    const int blocks = phase.footprintBlocks;
    const int lcp_stride = phase.lcpPer32Blocks > 0
        ? std::max(1, 32 / phase.lcpPer32Blocks) : 0;

    Assembler as(kVictimBase);
    std::vector<Addr> starts;
    starts.reserve(static_cast<std::size_t>(blocks));
    for (int i = 0; i < blocks; ++i)
        starts.push_back(kVictimBase + static_cast<Addr>(i) * 32);

    for (int i = 0; i < blocks; ++i) {
        as.org(starts[static_cast<std::size_t>(i)]);
        const bool lcp_block = lcp_stride > 0 && (i % lcp_stride) == 0;
        if (lcp_block) {
            as.addLcp();
            for (int k = 0; k < 3; ++k)
                as.add();
        } else {
            for (int k = 0; k < 4; ++k)
                as.mov();
        }
        as.jmp(i + 1 < blocks
               ? starts[static_cast<std::size_t>(i + 1)] : starts[0]);
    }

    auto program = std::make_unique<Program>(as.take());
    program->setEntry(starts[0]);
    return program;
}

} // namespace

VictimWorkload::VictimWorkload(std::string name,
                               std::vector<WorkloadPhase> phases)
    : name_(std::move(name)), phases_(std::move(phases))
{
    lf_assert(!phases_.empty(), "workload %s has no phases",
              name_.c_str());
    programs_.reserve(phases_.size());
    for (const auto &phase : phases_)
        programs_.push_back(buildPhaseProgram(phase));
}

const WorkloadPhase &
VictimWorkload::phase(std::size_t i) const
{
    lf_assert(i < phases_.size(), "phase index out of range");
    return phases_[i];
}

const Program &
VictimWorkload::phaseProgram(std::size_t i) const
{
    lf_assert(i < programs_.size(), "phase index out of range");
    return *programs_[i];
}

Cycles
VictimWorkload::totalCycles() const
{
    Cycles total = 0;
    for (const auto &phase : phases_)
        total += phase.durationCycles;
    return total;
}

std::vector<VictimWorkload>
mobileWorkloads()
{
    std::vector<VictimWorkload> workloads;
    // Each entry: {label, footprintBlocks, lcpPer32Blocks, cycles}.
    workloads.emplace_back("camera", std::vector<WorkloadPhase>{
        {"capture", 320, 2, 400000},
        {"demosaic", 96, 0, 250000},
        {"encode", 480, 6, 500000},
        {"preview", 24, 0, 150000}});
    workloads.emplace_back("navigation", std::vector<WorkloadPhase>{
        {"gps-fix", 40, 0, 200000},
        {"route", 200, 1, 600000},
        {"render-map", 360, 3, 350000}});
    workloads.emplace_back("speech-recognition",
                           std::vector<WorkloadPhase>{
        {"frontend-dsp", 64, 0, 300000},
        {"acoustic-model", 420, 2, 700000},
        {"decoder", 150, 5, 300000}});
    workloads.emplace_back("text-render", std::vector<WorkloadPhase>{
        {"shape", 80, 8, 250000},
        {"rasterize", 180, 0, 350000},
        {"compose", 30, 0, 120000}});
    workloads.emplace_back("aes-crypto", std::vector<WorkloadPhase>{
        {"key-sched", 16, 0, 120000},
        {"rounds", 10, 0, 900000}});
    workloads.emplace_back("image-edit", std::vector<WorkloadPhase>{
        {"load", 260, 4, 250000},
        {"filter", 520, 0, 650000},
        {"save", 120, 6, 200000}});
    workloads.emplace_back("ml-inference", std::vector<WorkloadPhase>{
        {"preproc", 48, 0, 180000},
        {"gemm", 384, 0, 800000},
        {"softmax", 20, 0, 100000}});
    workloads.emplace_back("browser", std::vector<WorkloadPhase>{
        {"parse", 440, 10, 300000},
        {"layout", 280, 2, 250000},
        {"paint", 160, 0, 300000},
        {"js-jit", 560, 4, 400000}});
    workloads.emplace_back("game-engine", std::vector<WorkloadPhase>{
        {"physics", 130, 0, 280000},
        {"ai", 300, 3, 220000},
        {"render", 90, 0, 450000}});
    workloads.emplace_back("audio-playback", std::vector<WorkloadPhase>{
        {"decode-frame", 56, 1, 240000},
        {"mix", 14, 0, 300000},
        {"effects", 110, 0, 200000}});
    return workloads;
}

std::vector<VictimWorkload>
cnnWorkloads()
{
    std::vector<VictimWorkload> workloads;

    // AlexNet: a few large conv phases then fully-connected layers.
    workloads.emplace_back("AlexNet", std::vector<WorkloadPhase>{
        {"conv1-11x11", 480, 0, 650000},
        {"conv2-5x5", 360, 0, 500000},
        {"conv3-3x3", 280, 0, 380000},
        {"conv4-3x3", 280, 0, 380000},
        {"conv5-3x3", 240, 0, 330000},
        {"fc6", 100, 0, 450000},
        {"fc7", 100, 0, 420000},
        {"fc8", 60, 0, 200000}});

    // SqueezeNet: alternating squeeze (tiny) / expand (wide) fire
    // modules -> a high-frequency waveform.
    {
        std::vector<WorkloadPhase> phases;
        phases.push_back({"conv1", 300, 0, 300000});
        for (int fire = 2; fire <= 9; ++fire) {
            phases.push_back({"fire-squeeze", 36, 0, 120000});
            phases.push_back({"fire-expand", 330, 0, 220000});
        }
        phases.push_back({"conv10", 180, 0, 250000});
        workloads.emplace_back("SqueezeNet", std::move(phases));
    }

    // VGG: long, uniform 3x3 conv stacks.
    {
        std::vector<WorkloadPhase> phases;
        const int stack_blocks[5] = {420, 420, 400, 400, 380};
        for (int stage = 0; stage < 5; ++stage) {
            for (int layer = 0; layer < (stage < 2 ? 2 : 3); ++layer)
                phases.push_back({"conv3x3",
                                  stack_blocks[stage], 0, 430000});
            phases.push_back({"pool", 26, 0, 90000});
        }
        for (int fc = 0; fc < 3; ++fc)
            phases.push_back({"fc", 110, 0, 380000});
        workloads.emplace_back("VGG", std::move(phases));
    }

    // DenseNet: many short layers with growing concatenated widths.
    {
        std::vector<WorkloadPhase> phases;
        phases.push_back({"conv1", 280, 0, 250000});
        for (int block = 0; block < 4; ++block) {
            const int layers = 6 + block * 4;
            for (int layer = 0; layer < layers; ++layer) {
                phases.push_back({"dense-1x1",
                                  60 + block * 40 + layer * 4, 0,
                                  70000});
                phases.push_back({"dense-3x3",
                                  150 + block * 60, 0, 90000});
            }
            phases.push_back({"transition", 48, 0, 110000});
        }
        workloads.emplace_back("DenseNet", std::move(phases));
    }
    return workloads;
}

} // namespace lf
