/**
 * @file
 * The frontend IPC side channel (Sec. XI-A) and the fingerprinting
 * study harness (Sec. XI-B/C, Figs. 11 and 12).
 *
 * The attacker loops over 100 nop instructions on one hardware thread
 * (two i-cache lines; fits the DSB, exceeds the LSD) while the victim
 * runs on the sibling thread, and samples its *own* instructions per
 * cycle at a low rate. The shared MITE and delivery mux make the
 * attacker's IPC waveform a function of the victim's frontend
 * footprint over time: no performance counters, no victim
 * measurement, no cache evictions, robust to DSB/LSD partitioning.
 *
 * Traces are compared with Euclidean distance: intra-distance (same
 * victim, different runs) stays far below inter-distance (different
 * victims), which is what makes classification work.
 */

#ifndef LF_FINGERPRINT_SIDE_CHANNEL_HH
#define LF_FINGERPRINT_SIDE_CHANNEL_HH

#include <string>
#include <vector>

#include "defense/defense.hh"
#include "fingerprint/workloads.hh"
#include "sim/cpu_model.hh"

namespace lf {

struct TraceConfig
{
    int samples = 100;           //!< IPC samples per trace.
    Cycles sampleCycles = 50000; //!< Simulated cycles per sample
                                 //!< (compressed stand-in for the
                                 //!< paper's 10 Hz wall-clock rate).
    int attackerNops = 100;      //!< Attacker loop body size.
    double ipcNoiseStddev = 0.02; //!< Timer-quantization noise on IPC.
    double phaseJitterFrac = 0.02; //!< Run-to-run phase length jitter.
};

/**
 * Record the attacker's IPC trace while @p victim runs on the sibling
 * thread. @p seed varies noise and phase jitter (a different run of
 * the same victim). @p defense deploys frontend mitigations
 * (src/defense) on the attacked machine: the core is armed before the
 * trace, each IPC sample is one defense slot (flush quanta, index
 * re-salting), and observable smoothing pads the sampled IPC. The
 * attacker's loop deliberately exceeds the LSD and encodes no DSB
 * state, so DSB/LSD partitioning leaves its waveform intact — the
 * Sec. XI robustness claim.
 */
std::vector<double> attackerIpcTrace(const CpuModel &model,
                                     const VictimWorkload &victim,
                                     const TraceConfig &config,
                                     std::uint64_t seed,
                                     const DefenseSpec &defense =
                                         DefenseSpec{});

/** Solo-attacker baseline IPC (no victim co-running). */
double attackerBaselineIpc(const CpuModel &model,
                           const TraceConfig &config);

/** Result of a fingerprinting study over a workload library. */
struct FingerprintStudy
{
    std::vector<std::string> names;
    /** traces[w][r]: run r of workload w. */
    std::vector<std::vector<std::vector<double>>> traces;
    double meanIntraDistance = 0.0;
    double meanInterDistance = 0.0;
    /** Mean pairwise distance between workloads (inter) and between
     *  runs (diagonal, intra). */
    std::vector<std::vector<double>> distanceMatrix;
    /** Nearest-reference classification accuracy over all runs. */
    double classificationAccuracy = 0.0;
};

/**
 * Run @p runsPerWorkload traces of every workload and compute the
 * intra/inter distance statistics of Figs. 11-12, optionally with
 * every trace recorded on a machine deploying @p defense.
 */
FingerprintStudy runFingerprintStudy(const CpuModel &model,
                                     const std::vector<VictimWorkload> &
                                         workloads,
                                     const TraceConfig &config,
                                     int runs_per_workload = 3,
                                     std::uint64_t seed_base = 1000,
                                     const DefenseSpec &defense =
                                         DefenseSpec{});

} // namespace lf

#endif // LF_FINGERPRINT_SIDE_CHANNEL_HH
