#include "fingerprint/patch_detect.hh"

#include <cmath>

#include "common/logging.hh"
#include "isa/mix_block.hh"
#include "sim/core.hh"
#include "sim/executor.hh"

namespace lf {

MicrocodePatch
patch1()
{
    return {"3.20180312.0ubuntu18.04.1 (patch1)", true};
}

MicrocodePatch
patch2()
{
    return {"3.20210608.0ubuntu0.18.04.1 (patch2)", false};
}

PatchDetector::PatchDetector(const CpuModel &base, int iters)
    : base_(base), iters_(iters)
{
    lf_assert(iters > 10, "need a sensible iteration count");
}

namespace {

/**
 * Build a loop of @p blocks *short* mix blocks (2 mov + 1 jmp, 3
 * micro-ops) spread over distinct sets so DSB way pressure never
 * evicts and only the LSD capacity matters. Short blocks make the
 * detector sharp: each occupies a whole DSB line but only half-fills
 * it, so DSB delivery is line-rate-bound (1 block/cycle) while LSD
 * streaming crosses block boundaries at 6 uops/cycle — the LSD is
 * visibly *faster*, and its absence (patch2) shows in both timing and
 * power.
 */
ChainProgram
spreadLoop(int blocks)
{
    Assembler as(0x400000);
    std::vector<Addr> starts;
    for (int i = 0; i < blocks; ++i)
        starts.push_back(0x400000 + static_cast<Addr>(i) * 32);
    for (std::size_t i = 0; i < starts.size(); ++i) {
        as.org(starts[i]);
        for (int m = 0; m < 2; ++m)
            as.mov();
        as.jmp(i + 1 < starts.size() ? starts[i + 1] : starts[0]);
    }
    ChainProgram chain;
    chain.program = as.take();
    chain.program.setEntry(starts[0]);
    chain.blockStarts = starts;
    chain.loopHead = starts[0];
    chain.instsPerIteration = static_cast<std::uint64_t>(blocks) * 3;
    return chain;
}

struct LoopMeasurement
{
    double cyclesPerIter;
    double watts;
    double lsdShare;
};

LoopMeasurement
measureLoop(Core &core, const ChainProgram &chain, int iters)
{
    core.setProgram(0, &chain.program);
    runLoopIters(core, 0, chain, 20); // warm up
    const PerfCounters before = core.counters(0);
    const Cycles c0 = core.cycle();
    runLoopIters(core, 0, chain, static_cast<std::uint64_t>(iters));
    const Cycles elapsed = core.cycle() - c0;
    const PerfCounters delta = core.counters(0).delta(before);

    LoopMeasurement m;
    m.cyclesPerIter = core.noisyMeasurement(
        static_cast<double>(elapsed)) / iters;
    m.watts = core.energyModel().averagePowerWatts(delta, elapsed);
    m.lsdShare = delta.totalUops() == 0 ? 0.0
        : static_cast<double>(delta.uopsLsd) /
            static_cast<double>(delta.totalUops());
    core.clearProgram(0);
    return m;
}

} // namespace

PatchSignature
PatchDetector::measure(const MicrocodePatch &patch,
                       std::uint64_t seed) const
{
    CpuModel model = base_;
    model.frontend.lsdEnabled = patch.lsdEnabled;
    Core core(model, seed);

    // Below LSD capacity: 12 blocks x 3 uops = 36 <= 64.
    const ChainProgram small_loop = spreadLoop(12);
    // Above LSD capacity: 24 blocks x 3 uops = 72 > 64.
    const ChainProgram large_loop = spreadLoop(24);

    const LoopMeasurement small = measureLoop(core, small_loop, iters_);
    const LoopMeasurement large = measureLoop(core, large_loop, iters_);

    PatchSignature sig;
    sig.patchName = patch.name;
    sig.smallLoopCycles = small.cyclesPerIter;
    sig.largeLoopCycles = large.cyclesPerIter * 12.0 / 24.0; // per-12-blocks
    sig.smallLoopWatts = small.watts;
    sig.largeLoopWatts = large.watts;
    sig.smallLoopLsdShare = small.lsdShare;
    return sig;
}

bool
PatchDetector::classifyLsdEnabled(const PatchSignature &sig) const
{
    // With the LSD on, the small loop streams from the LSD: its
    // normalized per-block timing diverges from the large loop's DSB
    // timing and its power drops distinctly. With the LSD off both
    // loops ride the DSB and the signatures coincide.
    const double timing_gap =
        std::fabs(sig.smallLoopCycles - sig.largeLoopCycles) /
        sig.largeLoopCycles;
    const double power_gap =
        std::fabs(sig.smallLoopWatts - sig.largeLoopWatts) /
        sig.largeLoopWatts;
    return timing_gap > 0.05 || power_gap > 0.04;
}

bool
PatchDetector::detectLsdEnabled(const MicrocodePatch &patch,
                                std::uint64_t seed) const
{
    return classifyLsdEnabled(measure(patch, seed));
}

} // namespace lf
