/**
 * @file
 * Synthetic victim workloads for the application-fingerprinting side
 * channel (Sec. XI).
 *
 * The paper fingerprints Geekbench5 mobile workloads and TVM CNN
 * inference through the attacker's own IPC waveform; neither suite is
 * available offline, so we substitute phase-structured synthetic
 * victims whose *frontend footprints* vary over time the way real
 * applications' do: code-footprint size (how many distinct 32-byte
 * windows the hot loop spans), LCP density (decode pressure), and
 * phase durations. What matters for the side channel is only that
 * different victims produce different frontend-contention waveforms
 * and repeated runs of the same victim produce the same waveform —
 * both properties these synthetics preserve.
 */

#ifndef LF_FINGERPRINT_WORKLOADS_HH
#define LF_FINGERPRINT_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/mix_block.hh"
#include "isa/program.hh"

namespace lf {

/** One victim execution phase. */
struct WorkloadPhase
{
    std::string label;      //!< e.g. "conv3x3", "fc", "navigation".
    int footprintBlocks;    //!< Hot-loop code footprint in mix blocks.
    int lcpPer32Blocks;     //!< LCP'd instructions per 32 blocks.
    Cycles durationCycles;  //!< Phase length in core cycles.
};

/** A victim application: an ordered list of phases, looped. */
class VictimWorkload
{
  public:
    VictimWorkload(std::string name, std::vector<WorkloadPhase> phases);

    const std::string &name() const { return name_; }
    std::size_t numPhases() const { return phases_.size(); }
    const WorkloadPhase &phase(std::size_t i) const;

    /** Program implementing phase @p i's hot loop. */
    const Program &phaseProgram(std::size_t i) const;

    /** Total cycles of one full pass over all phases. */
    Cycles totalCycles() const;

  private:
    std::string name_;
    std::vector<WorkloadPhase> phases_;
    std::vector<std::unique_ptr<Program>> programs_;
};

/** @name Workload libraries */
/// @{
/** Ten mobile-style workloads standing in for Geekbench5
 *  (Sec. XI-B). */
std::vector<VictimWorkload> mobileWorkloads();

/** Four CNN-inference victims standing in for the TVM models of
 *  Sec. XI-C: AlexNet, SqueezeNet, VGG, DenseNet. */
std::vector<VictimWorkload> cnnWorkloads();
/// @}

} // namespace lf

#endif // LF_FINGERPRINT_WORKLOADS_HH
