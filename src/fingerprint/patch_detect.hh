/**
 * @file
 * Microcode patch fingerprinting (Sec. X, Fig. 10).
 *
 * The paper found that a newer Intel microcode patch (patch2) disables
 * the LSD, while the older patch1 leaves it enabled. An attacker who
 * measures the timing and power of instruction-mix-block loops below
 * and above the LSD capacity can tell which patch is applied, because
 * only with an enabled LSD does the below-capacity loop behave
 * differently (LSD streaming: slightly different timing, distinctly
 * lower power) from the above-capacity loop (DSB delivery).
 */

#ifndef LF_FINGERPRINT_PATCH_DETECT_HH
#define LF_FINGERPRINT_PATCH_DETECT_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/cpu_model.hh"

namespace lf {

/** A microcode patch level: its observable effect is LSD gating. */
struct MicrocodePatch
{
    std::string name;
    bool lsdEnabled;
};

/** The two patches the paper tested on the Gold 6226. */
MicrocodePatch patch1(); //!< 3.20180312.0: LSD enabled.
MicrocodePatch patch2(); //!< 3.20210608.0: LSD disabled (and CVE fixes).

/** Measured signature of one patch level (Fig. 10's bars). */
struct PatchSignature
{
    std::string patchName;
    /** Per-iteration cycles for a loop below the LSD capacity. */
    double smallLoopCycles = 0.0;
    /** Per-iteration cycles for a loop above the LSD capacity. */
    double largeLoopCycles = 0.0;
    /** Average package watts for the two loops. */
    double smallLoopWatts = 0.0;
    double largeLoopWatts = 0.0;
    /** Fraction of the small loop's micro-ops delivered by the LSD. */
    double smallLoopLsdShare = 0.0;
};

/**
 * Fingerprints microcode patches on a CPU model by frontend behaviour.
 */
class PatchDetector
{
  public:
    /**
     * @param base CPU model whose microcode is being probed.
     * @param iters Loop iterations per measurement.
     */
    explicit PatchDetector(const CpuModel &base, int iters = 400);

    /** Measure the timing/power signature under @p patch. */
    PatchSignature measure(const MicrocodePatch &patch,
                           std::uint64_t seed = 1) const;

    /**
     * Classify from a signature: LSD considered enabled (patch1) when
     * the small loop's behaviour diverges from the large loop's —
     * timing-divergence OR power-divergence beyond the thresholds.
     */
    bool classifyLsdEnabled(const PatchSignature &sig) const;

    /** Convenience: measure under @p patch and classify. */
    bool detectLsdEnabled(const MicrocodePatch &patch,
                          std::uint64_t seed = 1) const;

  private:
    CpuModel base_;
    int iters_;
};

} // namespace lf

#endif // LF_FINGERPRINT_PATCH_DETECT_HH
