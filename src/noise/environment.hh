/**
 * @file
 * Composable environment/interference model for covert-channel runs.
 *
 * The paper's Table III/V rates are measured on real machines with OS
 * schedulers, co-running workloads, and coarse power meters; the seed
 * simulator runs on a perfectly quiet core and only reaches realistic
 * error rates through the per-model TimingNoise calibration knobs. An
 * EnvironmentSpec makes the interference sources first-class and
 * composable instead:
 *
 *  - CorunnerSpec: a frontend-hungry co-runner that evicts DSB/L1i
 *    state between transmission slots and steals delivery slots while
 *    the receiver measures (relative window stretch + jitter, and a
 *    package-energy contribution seen by the power channels);
 *  - SchedulerSpec: OS scheduling jitter and preemptions that delay
 *    slots (wall-clock time, hence rate) and stretch the receiver's
 *    measurement window when they land mid-slot;
 *  - TimerSpec: receiver-side timer quantization and extra read noise
 *    (a coarse or fuzzed clock, the classic timer-based mitigation);
 *  - PowerMeterSpec: extra RAPL reading noise and a thermal
 *    random-walk drift on the energy observable.
 *
 * An Environment binds a spec to a deterministic RNG seeded from the
 * trial seed, so runs stay bit-reproducible at any worker-thread or
 * shard count. A spec with every activating knob at zero is *quiet*:
 * all hooks are no-ops that never draw from the RNG, which keeps the
 * zero-noise path bit-identical to the legacy no-environment path.
 *
 * Spec fields are addressable as "env."-prefixed override keys (see
 * applyEnvOverride()), mirroring the "model." CPU knobs: they ride in
 * ExperimentSpec::overrides and can be swept as axes
 * (e.g. --sweep env.corunner_intensity=0:1:0.25).
 */

#ifndef LF_NOISE_ENVIRONMENT_HH
#define LF_NOISE_ENVIRONMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace lf {

class Core;

/** Frontend-contending co-runner ("env.corunner_*" keys). All effects
 *  scale with intensity; 0 disables the source entirely. */
struct CorunnerSpec
{
    /** Contention level in [0, 1] ("env.corunner_intensity"):
     *  0 = idle machine, 1 = a fully frontend-bound neighbour. */
    double intensity = 0.0;
    /** Candidate DSB/L1i pollution insertions per slot at intensity 1
     *  ("env.corunner_evictions"); each fires with p = intensity. */
    int evictionsPerSlot = 24;
    /** Mean relative stretch of a timed window at intensity 1
     *  ("env.corunner_slowdown") — shared-frontend slot stealing. */
    double slowdownFrac = 0.03;
    /** Std-dev of the relative stretch at intensity 1
     *  ("env.corunner_jitter"). */
    double jitterFrac = 0.08;
    /** Mean extra package energy per power reading (per encode round)
     *  at intensity 1, in microjoules ("env.corunner_power_uj"). */
    double powerMeanUj = 0.5;
    /** Std-dev of the extra package energy at intensity 1
     *  ("env.corunner_power_sd_uj"). Sized against the power
     *  channels' ~0.6 uJ/round class gap so the error curve spans
     *  roughly 0-30% over intensity 0-1. */
    double powerStddevUj = 0.6;
};

/** OS scheduler jitter and preemption ("env.sched_*" keys). */
struct SchedulerSpec
{
    /** Per-slot probability of being preempted mid-measurement
     *  ("env.sched_preempt_prob"). */
    double preemptProb = 0.0;
    /** Mean preemption length in cycles ("env.sched_quantum_cycles");
     *  each preemption draws uniformly from [0.5x, 1.5x]. */
    double quantumCycles = 30000.0;
    /** Uniform [0, x) slot-start delay in cycles
     *  ("env.sched_jitter_cycles") — delays cost wall-clock time
     *  (rate) without corrupting the observation. */
    double jitterCycles = 0.0;
};

/** Receiver timer degradation ("env.timer_*" keys). */
struct TimerSpec
{
    /** Quantize cycle readings to multiples of this
     *  ("env.timer_quantum_cycles"); 0 = exact timer. */
    double quantumCycles = 0.0;
    /** Extra Gaussian read noise in cycles
     *  ("env.timer_noise_cycles"). */
    double noiseStddevCycles = 0.0;
};

/** Power-meter degradation for the RAPL observable ("env.rapl_*"). */
struct PowerMeterSpec
{
    /** Extra Gaussian noise per power reading, microjoules
     *  ("env.rapl_noise_uj"). */
    double noiseStddevUj = 0.0;
    /** Thermal drift: random-walk step per slot, microjoules
     *  ("env.rapl_drift_uj"); the accumulated walk offsets every
     *  subsequent power reading. */
    double driftStepUj = 0.0;
};

/** The full composable interference model of one run. */
struct EnvironmentSpec
{
    CorunnerSpec corunner;
    SchedulerSpec scheduler;
    TimerSpec timer;
    PowerMeterSpec power;

    /** True when every activating knob is zero: a quiet Environment's
     *  hooks are no-ops and the run is bit-identical to the legacy
     *  no-environment path. Shape knobs (evictionsPerSlot, the
     *  slowdown fractions, quantumCycles) do not activate on their
     *  own. */
    bool quiet() const;
};

/**
 * Validate magnitudes/ranges of @p spec (probabilities in [0, 1],
 * non-negative magnitudes). @return an error message or "".
 */
std::string validateEnvironmentSpec(const EnvironmentSpec &spec);

/**
 * Apply one "env.<knob>=value" override to @p spec. Keys:
 *   env.corunner_intensity, env.corunner_evictions,
 *   env.corunner_slowdown, env.corunner_jitter,
 *   env.corunner_power_uj, env.corunner_power_sd_uj,
 *   env.sched_preempt_prob, env.sched_quantum_cycles,
 *   env.sched_jitter_cycles, env.timer_quantum_cycles,
 *   env.timer_noise_cycles, env.rapl_noise_uj, env.rapl_drift_uj.
 * @return false if @p key names no known environment knob.
 */
bool applyEnvOverride(EnvironmentSpec &spec, const std::string &key,
                      double value);

/** True when @p key is an environment override ("env." prefix). */
bool isEnvOverrideKey(const std::string &key);

/** Keys accepted by applyEnvOverride(), for help text. */
std::vector<std::string> envOverrideKeys();

/** Seed of a trial's Environment RNG, derived from the trial seed.
 *  Decorrelated (distinct splitmix64 salts) from the Core noise
 *  stream and the message stream so adding an environment never
 *  reshuffles them. */
std::uint64_t deriveEnvironmentSeed(std::uint64_t trial_seed);

/**
 * An EnvironmentSpec bound to a per-trial RNG: the object channels
 * consult once per transmission slot. One Environment belongs to one
 * trial (it carries slot state: preemption flags, thermal drift);
 * construct a fresh one per trial from the trial seed.
 */
class Environment
{
  public:
    /** A quiet environment (all hooks no-ops). */
    Environment();

    /** Bind @p spec with the RNG seeded from @p trial_seed (via
     *  deriveEnvironmentSeed()). */
    Environment(const EnvironmentSpec &spec, std::uint64_t trial_seed);

    const EnvironmentSpec &spec() const { return spec_; }
    bool quiet() const { return quiet_; }
    /** Slots started so far (diagnostics/tests). */
    std::uint64_t slots() const { return slots_; }

    /**
     * Start one transmission slot: pollute shared frontend state
     * (co-runner), delay the slot start (scheduler jitter), and maybe
     * preempt (advancing @p core's clock, wiping predictor state, and
     * arming the mid-slot window stretch). Called by
     * CovertChannel::transmit() before every transmitBit().
     */
    void beginSlot(Core &core);

    /** Degrade a timing observation (cycles): preemption stretch,
     *  co-runner slot stealing, timer noise, then quantization. */
    double perturbTiming(double cycles);

    /** Degrade a power observation (microjoules per round): co-runner
     *  energy, thermal drift, meter noise. */
    double perturbPower(double microjoules);

    /** @name Warm-state snapshot (sim/snapshot.hh)
     * The per-trial slot/drift evolution only — the spec is identity
     * (part of the snapshot key) and the RNG belongs to the trial
     * seed, never to a shared snapshot. */
    /// @{
    struct WarmState
    {
        std::uint64_t slots;
        bool preempted;
        double preemptCycles;
        double driftUj;
    };

    WarmState saveWarmState() const
    {
        return {slots_, preempted_, preemptCycles_, driftUj_};
    }

    void loadWarmState(const WarmState &s)
    {
        slots_ = s.slots;
        preempted_ = s.preempted;
        preemptCycles_ = s.preemptCycles;
        driftUj_ = s.driftUj;
    }
    /// @}

  private:
    EnvironmentSpec spec_;
    bool quiet_ = true;
    Rng rng_;
    std::uint64_t slots_ = 0;
    bool preempted_ = false;
    double preemptCycles_ = 0.0;
    double driftUj_ = 0.0;
};

} // namespace lf

#endif // LF_NOISE_ENVIRONMENT_HH
