#include "noise/environment.hh"

#include <cmath>

#include "common/logging.hh"
#include "sim/core.hh"

namespace lf {

namespace {

/** Co-runner code region: far above the channels' receiver/sender
 *  bases so pollution lines never tag-alias a channel line, while
 *  still covering every DSB/L1i set through the low address bits. */
constexpr Addr kCorunnerBase = 0xC0000000;

/** Pollution address span: 1024 chunk-aligned slots cover all 32 DSB
 *  sets with 32 distinct tags each. */
constexpr std::uint64_t kCorunnerSlots = 1024;

} // namespace

bool
EnvironmentSpec::quiet() const
{
    return corunner.intensity == 0.0 && scheduler.preemptProb == 0.0 &&
        scheduler.jitterCycles == 0.0 && timer.quantumCycles == 0.0 &&
        timer.noiseStddevCycles == 0.0 && power.noiseStddevUj == 0.0 &&
        power.driftStepUj == 0.0;
}

std::string
validateEnvironmentSpec(const EnvironmentSpec &spec)
{
    if (spec.corunner.intensity < 0.0 || spec.corunner.intensity > 1.0)
        return "env.corunner_intensity must be in [0, 1]";
    if (spec.scheduler.preemptProb < 0.0 ||
        spec.scheduler.preemptProb > 1.0) {
        return "env.sched_preempt_prob must be in [0, 1]";
    }
    if (spec.corunner.evictionsPerSlot < 0)
        return "env.corunner_evictions must be >= 0";
    if (spec.corunner.slowdownFrac < 0.0 ||
        spec.corunner.jitterFrac < 0.0 ||
        spec.corunner.powerMeanUj < 0.0 ||
        spec.corunner.powerStddevUj < 0.0) {
        return "env.corunner_* magnitudes must be >= 0";
    }
    if (spec.scheduler.quantumCycles < 0.0 ||
        spec.scheduler.jitterCycles < 0.0) {
        return "env.sched_* cycle counts must be >= 0";
    }
    if (spec.timer.quantumCycles < 0.0 ||
        spec.timer.noiseStddevCycles < 0.0) {
        return "env.timer_* magnitudes must be >= 0";
    }
    if (spec.power.noiseStddevUj < 0.0 || spec.power.driftStepUj < 0.0)
        return "env.rapl_* magnitudes must be >= 0";
    return "";
}

bool
applyEnvOverride(EnvironmentSpec &spec, const std::string &key,
                 double value)
{
    if (key == "env.corunner_intensity")
        spec.corunner.intensity = value;
    else if (key == "env.corunner_evictions")
        spec.corunner.evictionsPerSlot = static_cast<int>(value);
    else if (key == "env.corunner_slowdown")
        spec.corunner.slowdownFrac = value;
    else if (key == "env.corunner_jitter")
        spec.corunner.jitterFrac = value;
    else if (key == "env.corunner_power_uj")
        spec.corunner.powerMeanUj = value;
    else if (key == "env.corunner_power_sd_uj")
        spec.corunner.powerStddevUj = value;
    else if (key == "env.sched_preempt_prob")
        spec.scheduler.preemptProb = value;
    else if (key == "env.sched_quantum_cycles")
        spec.scheduler.quantumCycles = value;
    else if (key == "env.sched_jitter_cycles")
        spec.scheduler.jitterCycles = value;
    else if (key == "env.timer_quantum_cycles")
        spec.timer.quantumCycles = value;
    else if (key == "env.timer_noise_cycles")
        spec.timer.noiseStddevCycles = value;
    else if (key == "env.rapl_noise_uj")
        spec.power.noiseStddevUj = value;
    else if (key == "env.rapl_drift_uj")
        spec.power.driftStepUj = value;
    else
        return false;
    return true;
}

bool
isEnvOverrideKey(const std::string &key)
{
    return key.rfind("env.", 0) == 0;
}

std::vector<std::string>
envOverrideKeys()
{
    return {"env.corunner_intensity", "env.corunner_evictions",
            "env.corunner_slowdown", "env.corunner_jitter",
            "env.corunner_power_uj", "env.corunner_power_sd_uj",
            "env.sched_preempt_prob", "env.sched_quantum_cycles",
            "env.sched_jitter_cycles", "env.timer_quantum_cycles",
            "env.timer_noise_cycles", "env.rapl_noise_uj",
            "env.rapl_drift_uj"};
}

std::uint64_t
deriveEnvironmentSeed(std::uint64_t trial_seed)
{
    return splitmix64(trial_seed ^ 0x656e7669726f6e31ULL);
}

Environment::Environment()
    : Environment(EnvironmentSpec{}, 0)
{
}

Environment::Environment(const EnvironmentSpec &spec,
                         std::uint64_t trial_seed)
    : spec_(spec), quiet_(spec.quiet()),
      rng_(deriveEnvironmentSeed(trial_seed))
{
    const std::string error = validateEnvironmentSpec(spec);
    lf_assert(error.empty(), "bad EnvironmentSpec: %s", error.c_str());
}

void
Environment::beginSlot(Core &core)
{
    if (quiet_)
        return;
    ++slots_;
    preempted_ = false;

    FrontendEngine &frontend = core.frontend();
    const CorunnerSpec &co = spec_.corunner;
    if (co.intensity > 0.0) {
        // The co-runner's own code ran between our slots: its decoded
        // lines land in the shared DSB/L1i, evicting ours. Insertion
        // count is Binomial(evictionsPerSlot, intensity), so pressure
        // grows monotonically with intensity.
        for (int i = 0; i < co.evictionsPerSlot; ++i) {
            if (!rng_.chance(co.intensity))
                continue;
            const Addr slot =
                rng_.uniformInt(0, kCorunnerSlots - 1);
            frontend.dsb().insert(0, kCorunnerBase + 32 * slot, 4);
            frontend.l1i().access(
                kCorunnerBase +
                64 * rng_.uniformInt(0, kCorunnerSlots - 1));
        }
    }

    const SchedulerSpec &sched = spec_.scheduler;
    if (sched.jitterCycles > 0.0) {
        // Slot-start delay: costs wall-clock time (rate), not
        // decoding accuracy.
        core.runCycles(static_cast<Cycles>(
            rng_.uniform(0.0, sched.jitterCycles)));
    }
    if (sched.preemptProb > 0.0 && rng_.chance(sched.preemptProb)) {
        // Preemption: the receiver loses the CPU mid-slot. The clock
        // advances, predictor state is wiped (another process ran),
        // and the armed stretch lands on this slot's observation.
        preempted_ = true;
        preemptCycles_ =
            sched.quantumCycles * rng_.uniform(0.5, 1.5);
        core.runCycles(static_cast<Cycles>(preemptCycles_));
        frontend.bpu().reset();
    }
}

double
Environment::perturbTiming(double cycles)
{
    if (quiet_)
        return cycles;
    double out = cycles;
    if (preempted_) {
        out += preemptCycles_;
        preempted_ = false;
    }
    const CorunnerSpec &co = spec_.corunner;
    if (co.intensity > 0.0) {
        // Shared-frontend slot stealing stretches the measured window
        // proportionally to its length.
        double stretch = rng_.gaussian(co.slowdownFrac * co.intensity,
                                       co.jitterFrac * co.intensity);
        if (stretch < 0.0)
            stretch = 0.0;
        out += cycles * stretch;
    }
    const TimerSpec &timer = spec_.timer;
    if (timer.noiseStddevCycles > 0.0)
        out += rng_.gaussian(0.0, timer.noiseStddevCycles);
    if (timer.quantumCycles > 0.0)
        out = std::floor(out / timer.quantumCycles) *
            timer.quantumCycles;
    return out < 0.0 ? 0.0 : out;
}

double
Environment::perturbPower(double microjoules)
{
    if (quiet_)
        return microjoules;
    preempted_ = false; // preemption stretch is a timing-only effect
    double out = microjoules;
    const CorunnerSpec &co = spec_.corunner;
    if (co.intensity > 0.0) {
        out += rng_.gaussian(co.powerMeanUj * co.intensity,
                             co.powerStddevUj * co.intensity);
    }
    const PowerMeterSpec &power = spec_.power;
    if (power.driftStepUj > 0.0) {
        driftUj_ += rng_.gaussian(0.0, power.driftStepUj);
        out += driftUj_;
    }
    if (power.noiseStddevUj > 0.0)
        out += rng_.gaussian(0.0, power.noiseStddevUj);
    return out < 0.0 ? 0.0 : out;
}

} // namespace lf
