#include "core/channel.hh"


#include <cmath>
#include "common/edit_distance.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/trial_context.hh"
#include "defense/defense.hh"
#include "noise/environment.hh"

namespace lf {

CovertChannel::CovertChannel(Core &core, const ChannelConfig &config)
    : core_(core), cfg_(config)
{
    lf_assert(config.d >= 1 && config.d <= config.N,
              "receiver ways d=%d out of range", config.d);
    lf_assert(config.M <= config.N + 1, "M=%d too large", config.M);
    lf_assert(config.targetSet >= 0 && config.targetSet < 32,
              "bad target set");
    lf_assert(config.repetition >= 1 && config.repetition % 2 == 1,
              "repetition must be odd and >= 1, got %d",
              config.repetition);
}

void
CovertChannel::chargeMeasurementOverhead()
{
    core_.runCycles(core_.model().noise.tscOverhead);
}

double
CovertChannel::observeSlot(TrialContext &ctx, bool bit)
{
    // One transmission slot under the environment and the defense:
    // interference lands before the bit (frontend pollution,
    // scheduler delay), the defense acts at the slot start (flush
    // quanta, index re-salting) and pads the machine's raw
    // observable, and the environment then degrades the measurement
    // (window stretch, timer/meter noise). With a quiet environment
    // and an inactive defense every hook is an exact no-op.
    Environment &env = ctx.environment();
    Defense &defense = ctx.defense();
    env.beginSlot(core_);
    defense.beginSlot(core_);
    const double raw = transmitBit(bit);
    if (observableIsPower())
        return env.perturbPower(defense.filterPower(raw));
    return env.perturbTiming(defense.filterTiming(raw));
}

void
CovertChannel::prepareMachine(TrialContext &ctx)
{
    lf_assert(&ctx.core() == &core_,
              "channel %s is bound to a different Core than the"
              " TrialContext it is preparing in", name().c_str());
    if (!setupDone_) {
        setup();
        setupDone_ = true;
    }
    // The defended machine is configured before the first slot
    // (static partitions, MITE-only delivery); a no-op for an
    // inactive defense.
    ctx.defense().arm(core_);
}

CovertChannel::Calibration
CovertChannel::calibrate(TrialContext &ctx, int preamble_bits)
{
    lf_assert(&ctx.core() == &core_,
              "channel %s is bound to a different Core than the"
              " TrialContext it is calibrating in", name().c_str());
    if (preamble_bits < 0)
        preamble_bits = ctx.preambleBits();
    if (preamble_bits < 0)
        preamble_bits = cfg_.preambleBits;
    if (preamble_bits < 2)
        lf_fatal("preamble too short (%d bits; need >= 2)",
                 preamble_bits);

    // The tripwire: every source of simulator nondeterminism funnels
    // through Rng::next(), so a zero draw delta across setup + warmup
    // + preamble proves the post-calibration state does not depend on
    // the trial seed. Sampled before prepareMachine() so a channel
    // whose setup() randomizes is caught too.
    const std::uint64_t draws_before = rngThreadDraws();

    prepareMachine(ctx);

    // Warmup: the very first transmissions pay cold-start costs (L1I
    // and DSB fills, BTB misses) that would skew calibration; discard
    // them.
    for (int i = 0; i < 4; ++i)
        observeSlot(ctx, (i % 2) == 1);

    // Calibration preamble: alternating 0s and 1s with known values
    // (Sec. VI-B). Class means become the decoding reference.
    double sum0 = 0.0;
    double sum1 = 0.0;
    int n0 = 0;
    int n1 = 0;
    for (int i = 0; i < preamble_bits; ++i) {
        const bool bit = (i % 2) == 1;
        const double obs = observeSlot(ctx, bit);
        if (bit) {
            sum1 += obs;
            ++n1;
        } else {
            sum0 += obs;
            ++n0;
        }
    }
    lf_assert(n0 > 0 && n1 > 0, "preamble too short");

    Calibration calib;
    calib.mean0 = sum0 / n0;
    calib.mean1 = sum1 / n1;
    calib.preambleBits = preamble_bits;
    calib.rngUntouched = rngThreadDraws() == draws_before;
    return calib;
}

ChannelResult
CovertChannel::transmitMessage(const std::vector<bool> &message,
                               TrialContext &ctx,
                               const Calibration &calib)
{
    lf_assert(&ctx.core() == &core_,
              "channel %s is bound to a different Core than the"
              " TrialContext it is transmitting in", name().c_str());

    ChannelResult result;
    result.channelName = name();
    result.cpuName = core_.model().name;
    result.seed = core_.seed();
    result.preambleBits = calib.preambleBits;
    result.config = cfg_;
    result.sent = message;
    result.meanObs0 = calib.mean0;
    result.meanObs1 = calib.mean1;

    const Cycles start = core_.cycle();
    result.received.reserve(message.size());
    for (bool bit : message) {
        // Repetition decode: cfg_.repetition slots vote on the bit
        // (majority of nearest-class-mean decisions). repetition == 1
        // is the paper's plain protocol.
        int votes = 0;
        for (int r = 0; r < cfg_.repetition; ++r) {
            const double obs = observeSlot(ctx, bit);
            if (std::fabs(obs - calib.mean1) <
                std::fabs(obs - calib.mean0))
                ++votes;
        }
        result.received.push_back(2 * votes > cfg_.repetition);
    }
    const Cycles elapsed = core_.cycle() - start;

    result.seconds = core_.secondsOf(static_cast<double>(elapsed));
    result.errorRate = bitErrorRate(result.sent, result.received);
    result.transmissionKbps = result.seconds > 0.0
        ? static_cast<double>(message.size()) / result.seconds / 1e3
        : 0.0;
    return result;
}

ChannelResult
CovertChannel::transmit(const std::vector<bool> &message,
                        TrialContext &ctx, int preamble_bits)
{
    const Calibration calib = calibrate(ctx, preamble_bits);
    return transmitMessage(message, ctx, calib);
}

} // namespace lf
