#include "core/trial_context.hh"

#include "common/logging.hh"

namespace lf {

std::uint64_t
deriveTrialRngSeed(std::uint64_t trial_seed)
{
    return splitmix64(trial_seed ^ 0x7472'6961'6c2d'726eULL);
}

TrialContext::TrialContext(const CpuModel &model, std::uint64_t seed,
                           const EnvironmentSpec &env,
                           const DefenseSpec &defense)
{
    bind(model, seed, ChannelConfig{}, ChannelExtras{}, env, defense);
}

void
TrialContext::bind(const CpuModel &model, std::uint64_t seed,
                   const ChannelConfig &config,
                   const ChannelExtras &extras,
                   const EnvironmentSpec &env,
                   const DefenseSpec &defense, int preamble_bits)
{
    // Tear the previous trial's defense down first: its destructor
    // uninstalls the domain-switch hook from the core we are about to
    // reset.
    defense_.reset();

    model_ = model;
    applyDefenseToModel(model_, defense);
    seed_ = seed;
    config_ = config;
    extras_ = extras;
    preambleBits_ = preamble_bits;

    if (core_)
        core_->reset(model_, seed);
    else
        core_ = std::make_unique<Core>(model_, seed);

    env_ = Environment(env, seed);
    defense_.emplace(defense, seed);
    rng_ = Rng(deriveTrialRngSeed(seed));
}

Core &
TrialContext::core()
{
    lf_assert(core_ != nullptr,
              "TrialContext used before bind()/resolveTrial()");
    return *core_;
}

Defense &
TrialContext::defense()
{
    lf_assert(defense_.has_value(),
              "TrialContext used before bind()/resolveTrial()");
    return *defense_;
}

} // namespace lf
