#include "core/power_channels.hh"

#include "common/logging.hh"
#include "sim/executor.hh"

namespace lf {

namespace {

std::vector<BlockSpec>
waySpan(int first_way, int count, bool misaligned)
{
    std::vector<BlockSpec> specs;
    specs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        specs.push_back({first_way + i, misaligned});
    return specs;
}

} // namespace

PowerChannelBase::PowerChannelBase(Core &core,
                                   const ChannelConfig &config,
                                   const PowerChannelConfig &power_config)
    : CovertChannel(core, config), powerCfg_(power_config)
{
    lf_assert(power_config.rounds > 0, "power channel needs rounds > 0");
}

double
PowerChannelBase::transmitBit(bool bit)
{
    const MicroJoules e0 = core_.readRapl();
    const Cycles t0 = core_.cycle();

    core_.setProgram(kThread, *receiver_);
    runLoopIters(core_, kThread, *receiver_,
                 static_cast<std::uint64_t>(cfg_.initIters));

    for (int round = 0; round < powerCfg_.rounds; ++round) {
        if (bit) {
            core_.setProgram(kThread, *encodeOne_);
            runLoopIters(core_, kThread, *encodeOne_, 1);
        } else if (cfg_.stealthy) {
            core_.setProgram(kThread, *encodeZero_);
            runLoopIters(core_, kThread, *encodeZero_, 1);
        }
        core_.setProgram(kThread, *receiver_);
        runLoopIters(core_, kThread, *receiver_, 1);
    }

    const MicroJoules e1 = core_.readRapl();
    const Cycles t1 = core_.cycle();
    lf_assert(t1 > t0, "power bit consumed no time");
    // Energy per encode/decode round (microjoules): the MITE-heavy
    // paths of a 1-bit consume distinctly more energy per round, and
    // unlike average watts this observable does not self-cancel when
    // the slow path also stretches the measurement window.
    return (e1 - e0) / static_cast<double>(powerCfg_.rounds);
}

PowerEvictionChannel::PowerEvictionChannel(
        Core &core, const ChannelConfig &config,
        const PowerChannelConfig &power_config)
    : PowerChannelBase(core, config, power_config)
{
}

std::string
PowerEvictionChannel::name() const
{
    return "non-MT power eviction";
}

void
PowerEvictionChannel::setup()
{
    receiver_ = prepareMixBlockChain(cfg_.receiverBase, cfg_.targetSet,
                                     waySpan(0, cfg_.d, false),
                                     dsbLineUops());
    encodeOne_ = prepareMixBlockChain(cfg_.senderBase, cfg_.targetSet,
                                      waySpan(cfg_.d,
                                              cfg_.N + 1 - cfg_.d,
                                              false),
                                      dsbLineUops());
    if (cfg_.stealthy) {
        encodeZero_ = prepareMixBlockChain(cfg_.senderBase, cfg_.altSet,
                                           waySpan(cfg_.d,
                                                   cfg_.N + 1 - cfg_.d,
                                                   false),
                                           dsbLineUops());
    }
}

PowerMisalignmentChannel::PowerMisalignmentChannel(
        Core &core, const ChannelConfig &config,
        const PowerChannelConfig &power_config)
    : PowerChannelBase(core, config, power_config)
{
}

std::string
PowerMisalignmentChannel::name() const
{
    return "non-MT power misalignment";
}

void
PowerMisalignmentChannel::setup()
{
    lf_assert(cfg_.M > cfg_.d, "misalignment channel needs M > d");
    receiver_ = prepareMixBlockChain(cfg_.receiverBase, cfg_.targetSet,
                                     waySpan(0, cfg_.d, false),
                                     dsbLineUops());
    encodeOne_ = prepareMixBlockChain(cfg_.senderBase, cfg_.targetSet,
                                      waySpan(cfg_.d, cfg_.M - cfg_.d,
                                              true),
                                      dsbLineUops());
    if (cfg_.stealthy) {
        encodeZero_ = prepareMixBlockChain(cfg_.senderBase,
                                           cfg_.targetSet,
                                           waySpan(cfg_.d,
                                                   cfg_.M - cfg_.d,
                                                   false),
                                           dsbLineUops());
    }
}

} // namespace lf
