#include "core/channel_registry.hh"

#include <limits>
#include <utility>

#include "common/logging.hh"
#include "core/mt_channels.hh"
#include "core/nonmt_channels.hh"
#include "core/trial_context.hh"

namespace lf {

namespace {

/** Table III eviction setting: receiver holds d = 6 ways. */
ChannelConfig
evictionDefaults(bool stealthy)
{
    ChannelConfig cfg;
    cfg.d = 6;
    cfg.stealthy = stealthy;
    return cfg;
}

/** Table III misalignment setting: d = 5, M = 8 (and a shorter MT
 *  sender loop, which only the MT variant consults). */
ChannelConfig
misalignmentDefaults(bool stealthy)
{
    ChannelConfig cfg;
    cfg.d = 5;
    cfg.M = 8;
    cfg.stealthy = stealthy;
    cfg.mtSenderIters = 2;
    return cfg;
}

template <typename ChannelT>
ChannelFactory
plainFactory()
{
    return [](Core &core, const ChannelConfig &cfg,
              const ChannelExtras &) -> std::unique_ptr<CovertChannel> {
        return std::make_unique<ChannelT>(core, cfg);
    };
}

template <typename ChannelT>
ChannelFactory
powerFactory()
{
    return [](Core &core, const ChannelConfig &cfg,
              const ChannelExtras &extras)
               -> std::unique_ptr<CovertChannel> {
        return std::make_unique<ChannelT>(core, cfg, extras.power);
    };
}

template <typename ChannelT>
ChannelFactory
sgxFactory()
{
    return [](Core &core, const ChannelConfig &cfg,
              const ChannelExtras &extras)
               -> std::unique_ptr<CovertChannel> {
        return std::make_unique<ChannelT>(core, cfg, extras.sgx);
    };
}

} // namespace

ChannelRegistry &
ChannelRegistry::instance()
{
    static ChannelRegistry registry;
    return registry;
}

ChannelRegistry::ChannelRegistry()
{
    // ---- Table III: non-MT timing channels (Sec. V-C/D). ----
    {
        ChannelInfo info;
        info.name = "nonmt-fast-eviction";
        info.description =
            "Non-MT fast eviction channel (Table III, Sec. V-C)";
        info.defaultConfig = evictionDefaults(false);
        registerChannel(info, plainFactory<NonMtEvictionChannel>());

        info.name = "nonmt-stealthy-eviction";
        info.description =
            "Non-MT stealthy eviction channel (Table III, Sec. V-C)";
        info.defaultConfig = evictionDefaults(true);
        registerChannel(info, plainFactory<NonMtEvictionChannel>());

        info.name = "nonmt-fast-misalignment";
        info.description =
            "Non-MT fast misalignment channel (Table III, Sec. V-D)";
        info.defaultConfig = misalignmentDefaults(false);
        registerChannel(info, plainFactory<NonMtMisalignmentChannel>());

        info.name = "nonmt-stealthy-misalignment";
        info.description =
            "Non-MT stealthy misalignment channel (Table III, Sec. V-D)";
        info.defaultConfig = misalignmentDefaults(true);
        registerChannel(info, plainFactory<NonMtMisalignmentChannel>());
    }

    // ---- Table III: MT (SMT) timing channels (Sec. V-A/B). ----
    {
        ChannelInfo info;
        info.requiresSmt = true;

        info.name = "mt-eviction";
        info.description =
            "MT (SMT) eviction channel (Table III, Sec. V-A)";
        info.defaultConfig = evictionDefaults(false);
        registerChannel(info, plainFactory<MtEvictionChannel>());

        info.name = "mt-misalignment";
        info.description =
            "MT (SMT) misalignment channel (Table III, Sec. V-B)";
        info.defaultConfig = misalignmentDefaults(false);
        registerChannel(info, plainFactory<MtMisalignmentChannel>());
    }

    // ---- Table IV: slow-switch / LCP channel (Sec. V-E). ----
    {
        ChannelInfo info;
        info.name = "slow-switch";
        info.description =
            "Non-MT slow-switch (LCP) channel (Table IV, Sec. V-E)";
        info.defaultConfig.r = 16;
        info.defaultConfig.rounds = 20;
        registerChannel(info, plainFactory<SlowSwitchChannel>());
    }

    // ---- Table V: power channels via RAPL (Sec. VII). ----
    {
        ChannelInfo info;
        info.powerObservable = true;
        info.defaultExtras.power.rounds = 20000;

        info.name = "power-eviction";
        info.description =
            "Non-MT power eviction channel via RAPL (Table V, Sec. VII)";
        info.defaultConfig = evictionDefaults(true);
        info.defaultConfig.preambleBits = 8;
        registerChannel(info, powerFactory<PowerEvictionChannel>());

        info.name = "power-misalignment";
        info.description = "Non-MT power misalignment channel via RAPL"
                           " (Table V, Sec. VII)";
        info.defaultConfig = misalignmentDefaults(true);
        info.defaultConfig.preambleBits = 8;
        registerChannel(info, powerFactory<PowerMisalignmentChannel>());
    }

    // ---- Table VI: SGX enclave channels (Sec. VIII). ----
    {
        ChannelInfo info;
        info.requiresSgx = true;

        info.name = "sgx-nonmt-fast-eviction";
        info.description =
            "Non-MT fast eviction channel from SGX (Table VI)";
        info.defaultConfig = evictionDefaults(false);
        info.defaultConfig.preambleBits = 10;
        registerChannel(info, sgxFactory<SgxNonMtEvictionChannel>());

        info.name = "sgx-nonmt-stealthy-eviction";
        info.description =
            "Non-MT stealthy eviction channel from SGX (Table VI)";
        info.defaultConfig = evictionDefaults(true);
        info.defaultConfig.preambleBits = 10;
        registerChannel(info, sgxFactory<SgxNonMtEvictionChannel>());

        info.name = "sgx-nonmt-fast-misalignment";
        info.description =
            "Non-MT fast misalignment channel from SGX (Table VI)";
        info.defaultConfig = misalignmentDefaults(false);
        info.defaultConfig.preambleBits = 10;
        registerChannel(info, sgxFactory<SgxNonMtMisalignmentChannel>());

        info.name = "sgx-nonmt-stealthy-misalignment";
        info.description =
            "Non-MT stealthy misalignment channel from SGX (Table VI)";
        info.defaultConfig = misalignmentDefaults(true);
        info.defaultConfig.preambleBits = 10;
        registerChannel(info, sgxFactory<SgxNonMtMisalignmentChannel>());

        info.requiresSmt = true;

        info.name = "sgx-mt-eviction";
        info.description =
            "MT eviction channel from an SGX enclave (Table VI)";
        info.defaultConfig = evictionDefaults(false);
        info.defaultConfig.preambleBits = 10;
        registerChannel(info, sgxFactory<SgxMtEvictionChannel>());

        info.name = "sgx-mt-misalignment";
        info.description =
            "MT misalignment channel from an SGX enclave (Table VI)";
        info.defaultConfig = misalignmentDefaults(false);
        info.defaultConfig.preambleBits = 10;
        registerChannel(info, sgxFactory<SgxMtMisalignmentChannel>());
    }
}

void
ChannelRegistry::registerChannel(ChannelInfo info, ChannelFactory factory)
{
    lf_assert(!info.name.empty(), "channel name must not be empty");
    lf_assert(static_cast<bool>(factory),
              "channel %s needs a factory", info.name.c_str());
    if (find(info.name) != nullptr) {
        lf_panic("duplicate channel registration: %s",
                 info.name.c_str());
    }
    entries_.push_back({std::move(info), std::move(factory)});
}

const ChannelRegistry::Entry *
ChannelRegistry::find(const std::string &name) const
{
    for (const Entry &entry : entries_)
        if (entry.info.name == name)
            return &entry;
    return nullptr;
}

bool
ChannelRegistry::has(const std::string &name) const
{
    return find(name) != nullptr;
}

const ChannelInfo &
ChannelRegistry::info(const std::string &name) const
{
    const Entry *entry = find(name);
    if (entry == nullptr)
        lf_fatal("unknown channel \"%s\" (see --list)", name.c_str());
    return entry->info;
}

std::vector<std::string>
ChannelRegistry::names() const
{
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const Entry &entry : entries_)
        names.push_back(entry.info.name);
    return names;
}

std::unique_ptr<CovertChannel>
ChannelRegistry::make(const std::string &name, Core &core,
                      const ChannelConfig &cfg,
                      const ChannelExtras &extras) const
{
    const Entry *entry = find(name);
    if (entry == nullptr)
        lf_fatal("unknown channel \"%s\" (see --list)", name.c_str());
    return entry->factory(core, cfg, extras);
}

std::vector<std::string>
allChannelNames()
{
    return ChannelRegistry::instance().names();
}

bool
hasChannel(const std::string &name)
{
    return ChannelRegistry::instance().has(name);
}

const ChannelInfo &
channelInfo(const std::string &name)
{
    return ChannelRegistry::instance().info(name);
}

ChannelConfig
defaultChannelConfig(const std::string &name)
{
    return channelInfo(name).defaultConfig;
}

std::unique_ptr<CovertChannel>
makeChannel(const std::string &name, Core &core,
            const ChannelConfig &cfg)
{
    return makeChannel(name, core, cfg,
                       channelInfo(name).defaultExtras);
}

std::unique_ptr<CovertChannel>
makeChannel(const std::string &name, Core &core,
            const ChannelConfig &cfg, const ChannelExtras &extras)
{
    return ChannelRegistry::instance().make(name, core, cfg, extras);
}

std::unique_ptr<CovertChannel>
makeChannel(const std::string &name, TrialContext &ctx)
{
    return makeChannel(name, ctx.core(), ctx.config(), ctx.extras());
}

std::unique_ptr<CovertChannel>
makeChannelWithDefaults(const std::string &name, Core &core)
{
    const ChannelInfo &info = channelInfo(name);
    return makeChannel(name, core, info.defaultConfig,
                       info.defaultExtras);
}

bool
channelSupportedOn(const std::string &name, const CpuModel &model)
{
    const ChannelInfo &info = channelInfo(name);
    if (info.requiresSmt && !model.smtEnabled)
        return false;
    if (info.requiresSgx && !model.sgx.supported)
        return false;
    return true;
}

bool
applyChannelOverride(ChannelConfig &cfg, ChannelExtras &extras,
                     const std::string &key, double value)
{
    // Deferred and clamped: casting a double outside int's range is
    // UB, the Addr-typed keys legitimately take values above INT_MAX,
    // and CLI-supplied values can be anything.
    const auto as_int = [value] {
        if (value >= static_cast<double>(
                std::numeric_limits<int>::max()))
            return std::numeric_limits<int>::max();
        if (value <= static_cast<double>(
                std::numeric_limits<int>::min()))
            return std::numeric_limits<int>::min();
        return static_cast<int>(value);
    };
    if (key == "targetSet") cfg.targetSet = as_int();
    else if (key == "altSet") cfg.altSet = as_int();
    else if (key == "N") cfg.N = as_int();
    else if (key == "d") cfg.d = as_int();
    else if (key == "M") cfg.M = as_int();
    else if (key == "r") cfg.r = as_int();
    else if (key == "rounds") cfg.rounds = as_int();
    else if (key == "initIters") cfg.initIters = as_int();
    else if (key == "stealthy") cfg.stealthy = value != 0.0;
    else if (key == "mtSteps") cfg.mtSteps = as_int();
    else if (key == "mtMeasPerStep") cfg.mtMeasPerStep = as_int();
    else if (key == "mtSenderIters") cfg.mtSenderIters = as_int();
    else if (key == "preambleBits") cfg.preambleBits = as_int();
    else if (key == "repetition") cfg.repetition = as_int();
    else if (key == "receiverBase")
        cfg.receiverBase = static_cast<Addr>(value);
    else if (key == "senderBase")
        cfg.senderBase = static_cast<Addr>(value);
    else if (key == "powerRounds") extras.power.rounds = as_int();
    else if (key == "sgxRounds") extras.sgx.rounds = as_int();
    else if (key == "sgxMtSteps") extras.sgx.mtSteps = as_int();
    else if (key == "sgxMtMeasPerStep")
        extras.sgx.mtMeasPerStep = as_int();
    else return false;
    return true;
}

std::vector<std::string>
channelOverrideKeys()
{
    return {"targetSet", "altSet", "N", "d", "M", "r", "rounds",
            "initIters", "stealthy", "mtSteps", "mtMeasPerStep",
            "mtSenderIters", "preambleBits", "repetition",
            "receiverBase", "senderBase", "powerRounds", "sgxRounds",
            "sgxMtSteps", "sgxMtMeasPerStep"};
}

} // namespace lf
