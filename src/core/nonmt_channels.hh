/**
 * @file
 * Single-thread (non-MT) covert channels: Sec. V-C (eviction-based),
 * Sec. V-D (misalignment-based) and Sec. V-E (slow-switch / LCP).
 *
 * Sender and receiver are the same hardware thread; the receiver wraps
 * a timer around the whole Init + (Encode/Decode)^rounds sequence and
 * the secret modulates how much frontend path switching the sequence
 * provokes (internal interference).
 */

#ifndef LF_CORE_NONMT_CHANNELS_HH
#define LF_CORE_NONMT_CHANNELS_HH

#include "core/channel.hh"
#include "frontend/prepared.hh"

namespace lf {

/**
 * Non-MT eviction channel (Sec. V-C).
 *
 * Receiver: d blocks (ways 0..d-1) of the target set.
 * Encode 1: the remaining N+1-d blocks of the *same* set — a 9th way
 *           demand that evicts receiver lines and redirects delivery
 *           to MITE.
 * Encode 0: stealthy — same-length blocks of a different set; fast —
 *           nothing.
 */
class NonMtEvictionChannel : public CovertChannel
{
  public:
    NonMtEvictionChannel(Core &core, const ChannelConfig &config);

    std::string name() const override;
    void setup() override;
    double transmitBit(bool bit) override;

  private:
    PreparedChainPtr receiver_;
    PreparedChainPtr encodeOne_;
    PreparedChainPtr encodeZero_; //!< Stealthy variant only.
};

/**
 * Non-MT misalignment channel (Sec. V-D).
 *
 * Receiver: d aligned blocks of the target set.
 * Encode 1: M-d *misaligned* blocks of the same set: each splits into
 *           two DSB lines and poisons LSD capture on the set.
 * Encode 0: stealthy — the same blocks aligned; fast — nothing.
 */
class NonMtMisalignmentChannel : public CovertChannel
{
  public:
    NonMtMisalignmentChannel(Core &core, const ChannelConfig &config);

    std::string name() const override;
    void setup() override;
    double transmitBit(bool bit) override;

  private:
    PreparedChainPtr receiver_;
    PreparedChainPtr encodeOne_;
    PreparedChainPtr encodeZero_; //!< Stealthy variant only.
};

/**
 * Slow-switch channel (Sec. V-E).
 *
 * Encode 1: r pairs of (normal add, LCP add) — the alternation
 *           maximizes DSB<->MITE switching.
 * Encode 0: r normal adds then r LCP adds — consecutive LCP'd
 *           instructions serialize the predecoder instead.
 * Both variants execute the same instruction multiset; only the order
 * (and hence the frontend switch/stall profile) differs.
 */
class SlowSwitchChannel : public CovertChannel
{
  public:
    SlowSwitchChannel(Core &core, const ChannelConfig &config);

    std::string name() const override;
    void setup() override;
    double transmitBit(bool bit) override;

  private:
    PreparedChainPtr mixed_;
    PreparedChainPtr ordered_;
};

} // namespace lf

#endif // LF_CORE_NONMT_CHANNELS_HH
