/**
 * @file
 * String-keyed registry of every covert channel in the library.
 *
 * Each concrete CovertChannel subclass is registered under a canonical
 * kebab-case name (e.g. "nonmt-fast-eviction") together with the
 * ChannelConfig the paper's tables use for it, the applicability
 * constraints (SMT / SGX), and a factory. The registry is the single
 * runtime entry point for naming a channel: the ExperimentRunner, the
 * lf_run CLI, and the bench binaries all construct channels through
 * makeChannel() instead of hand-instantiating concrete types.
 *
 * Canonical channel set (paper mapping):
 *   nonmt-{fast,stealthy}-{eviction,misalignment}   Table III (Sec. V-C/D)
 *   mt-{eviction,misalignment}                      Table III (Sec. V-A/B)
 *   slow-switch                                     Table IV (Sec. V-E)
 *   power-{eviction,misalignment}                   Table V  (Sec. VII)
 *   sgx-nonmt-{fast,stealthy}-{eviction,misalignment}
 *   sgx-mt-{eviction,misalignment}                  Table VI (Sec. VIII)
 */

#ifndef LF_CORE_CHANNEL_REGISTRY_HH
#define LF_CORE_CHANNEL_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/channel.hh"
#include "core/power_channels.hh"
#include "sgx/sgx_channels.hh"

namespace lf {

/** Family-specific knobs that sit outside ChannelConfig. Entries carry
 *  per-channel defaults; callers only override what they sweep. */
struct ChannelExtras
{
    PowerChannelConfig power;  //!< power-* channels only.
    SgxConfig sgx;             //!< sgx-* channels only.
};

/** Registry metadata for one canonical channel name. */
struct ChannelInfo
{
    std::string name;         //!< Canonical kebab-case key.
    std::string description;  //!< One-line paper mapping.
    bool requiresSmt = false; //!< MT channels: needs an SMT model.
    bool requiresSgx = false; //!< SGX channels: needs SGX support.
    bool powerObservable = false; //!< Observable is watts, not cycles.
    ChannelConfig defaultConfig;  //!< Paper-table setting.
    ChannelExtras defaultExtras;  //!< Paper-table power/SGX setting.
};

using ChannelFactory = std::function<std::unique_ptr<CovertChannel>(
    Core &, const ChannelConfig &, const ChannelExtras &)>;

/**
 * The process-wide channel registry. Built-in channels are registered
 * on first access; additional channels may be registered at runtime
 * (e.g. by experiments linking their own subclasses).
 */
class ChannelRegistry
{
  public:
    static ChannelRegistry &instance();

    /** Register a channel; fatal on duplicate names. */
    void registerChannel(ChannelInfo info, ChannelFactory factory);

    bool has(const std::string &name) const;

    /** Metadata for @p name; fatal if unknown. */
    const ChannelInfo &info(const std::string &name) const;

    /** All canonical names, in documented (paper-table) order. */
    std::vector<std::string> names() const;

    /** Construct @p name bound to @p core; fatal if unknown. */
    std::unique_ptr<CovertChannel> make(const std::string &name,
                                        Core &core,
                                        const ChannelConfig &cfg,
                                        const ChannelExtras &extras) const;

  private:
    ChannelRegistry();

    struct Entry
    {
        ChannelInfo info;
        ChannelFactory factory;
    };
    std::vector<Entry> entries_;

    const Entry *find(const std::string &name) const;
};

/** @name Convenience wrappers around ChannelRegistry::instance() */
/// @{
std::vector<std::string> allChannelNames();
bool hasChannel(const std::string &name);
const ChannelInfo &channelInfo(const std::string &name);
ChannelConfig defaultChannelConfig(const std::string &name);

std::unique_ptr<CovertChannel> makeChannel(const std::string &name,
                                           Core &core,
                                           const ChannelConfig &cfg);
std::unique_ptr<CovertChannel> makeChannel(const std::string &name,
                                           Core &core,
                                           const ChannelConfig &cfg,
                                           const ChannelExtras &extras);

/** Construct with the channel's own default config and extras. */
std::unique_ptr<CovertChannel> makeChannelWithDefaults(
    const std::string &name, Core &core);

class TrialContext;

/** Construct @p name bound to @p ctx's core, with the context's
 *  resolved config and extras — the one-call path from a bound
 *  TrialContext (resolveTrial()) to a transmit-ready channel. */
std::unique_ptr<CovertChannel> makeChannel(const std::string &name,
                                           TrialContext &ctx);

/** Whether @p name can run on @p model (SMT / SGX constraints). */
bool channelSupportedOn(const std::string &name, const CpuModel &model);
/// @}

/**
 * Apply one "key=value" style override to a config/extras pair. Keys
 * mirror the ChannelConfig field names plus the extras ("powerRounds",
 * "sgxRounds", "sgxMtSteps", "sgxMtMeasPerStep").
 * @return false if @p key names no known knob.
 */
bool applyChannelOverride(ChannelConfig &cfg, ChannelExtras &extras,
                          const std::string &key, double value);

/** Keys accepted by applyChannelOverride(), for help text. */
std::vector<std::string> channelOverrideKeys();

} // namespace lf

#endif // LF_CORE_CHANNEL_REGISTRY_HH
