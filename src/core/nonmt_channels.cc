#include "core/nonmt_channels.hh"

#include "common/logging.hh"
#include "sim/executor.hh"

namespace lf {

namespace {

constexpr ThreadId kThread = 0;

std::vector<BlockSpec>
waySpan(int first_way, int count, bool misaligned)
{
    std::vector<BlockSpec> specs;
    specs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        specs.push_back({first_way + i, misaligned});
    return specs;
}

} // namespace

NonMtEvictionChannel::NonMtEvictionChannel(Core &core,
                                           const ChannelConfig &config)
    : CovertChannel(core, config)
{
}

std::string
NonMtEvictionChannel::name() const
{
    return std::string("non-MT ") + (cfg_.stealthy ? "stealthy" : "fast") +
        " eviction";
}

void
NonMtEvictionChannel::setup()
{
    // Receiver: ways 0..d-1 of the target set; sender: ways d..N of
    // the same set (N+1-d blocks -> one more than the set holds).
    receiver_ = prepareMixBlockChain(cfg_.receiverBase, cfg_.targetSet,
                                     waySpan(0, cfg_.d, false),
                                     dsbLineUops());
    encodeOne_ = prepareMixBlockChain(cfg_.senderBase, cfg_.targetSet,
                                      waySpan(cfg_.d, cfg_.N + 1 - cfg_.d,
                                              false),
                                      dsbLineUops());
    if (cfg_.stealthy) {
        encodeZero_ = prepareMixBlockChain(cfg_.senderBase, cfg_.altSet,
                                           waySpan(cfg_.d,
                                                   cfg_.N + 1 - cfg_.d,
                                                   false),
                                           dsbLineUops());
    }
}

double
NonMtEvictionChannel::transmitBit(bool bit)
{
    const Cycles start = core_.cycle();
    chargeMeasurementOverhead(); // timer start

    // Init: receiver loop, p iterations.
    core_.setProgram(kThread, *receiver_);
    runLoopIters(core_, kThread, *receiver_,
                 static_cast<std::uint64_t>(cfg_.initIters));

    // Interleaved Encode/Decode rounds (Sec. VI-A: the encode/decode
    // pattern repeats p = q times per bit).
    const Cycles sync = core_.model().noise.syncCycles;
    for (int round = 0; round < cfg_.rounds; ++round) {
        core_.runCycles(sync); // sender phase handoff
        if (bit) {
            core_.setProgram(kThread, *encodeOne_);
            runLoopIters(core_, kThread, *encodeOne_, 1);
        } else if (cfg_.stealthy) {
            core_.setProgram(kThread, *encodeZero_);
            runLoopIters(core_, kThread, *encodeZero_, 1);
        }
        core_.runCycles(sync); // receiver phase handoff
        core_.setProgram(kThread, *receiver_);
        runLoopIters(core_, kThread, *receiver_, 1);
    }

    chargeMeasurementOverhead(); // timer stop
    const double elapsed = static_cast<double>(core_.cycle() - start);
    return core_.noisyMeasurement(elapsed);
}

NonMtMisalignmentChannel::NonMtMisalignmentChannel(
        Core &core, const ChannelConfig &config)
    : CovertChannel(core, config)
{
}

std::string
NonMtMisalignmentChannel::name() const
{
    return std::string("non-MT ") + (cfg_.stealthy ? "stealthy" : "fast") +
        " misalignment";
}

void
NonMtMisalignmentChannel::setup()
{
    lf_assert(cfg_.M > cfg_.d, "misalignment channel needs M > d");
    receiver_ = prepareMixBlockChain(cfg_.receiverBase, cfg_.targetSet,
                                     waySpan(0, cfg_.d, false),
                                     dsbLineUops());
    encodeOne_ = prepareMixBlockChain(cfg_.senderBase, cfg_.targetSet,
                                      waySpan(cfg_.d, cfg_.M - cfg_.d,
                                              true),
                                      dsbLineUops());
    if (cfg_.stealthy) {
        encodeZero_ = prepareMixBlockChain(cfg_.senderBase, cfg_.targetSet,
                                           waySpan(cfg_.d,
                                                   cfg_.M - cfg_.d,
                                                   false),
                                           dsbLineUops());
    }
}

double
NonMtMisalignmentChannel::transmitBit(bool bit)
{
    const Cycles start = core_.cycle();
    chargeMeasurementOverhead();

    core_.setProgram(kThread, *receiver_);
    runLoopIters(core_, kThread, *receiver_,
                 static_cast<std::uint64_t>(cfg_.initIters));

    const Cycles sync = core_.model().noise.syncCycles;
    for (int round = 0; round < cfg_.rounds; ++round) {
        core_.runCycles(sync); // sender phase handoff
        if (bit) {
            core_.setProgram(kThread, *encodeOne_);
            runLoopIters(core_, kThread, *encodeOne_, 1);
        } else if (cfg_.stealthy) {
            core_.setProgram(kThread, *encodeZero_);
            runLoopIters(core_, kThread, *encodeZero_, 1);
        }
        core_.runCycles(sync); // receiver phase handoff
        core_.setProgram(kThread, *receiver_);
        runLoopIters(core_, kThread, *receiver_, 1);
    }

    chargeMeasurementOverhead();
    const double elapsed = static_cast<double>(core_.cycle() - start);
    return core_.noisyMeasurement(elapsed);
}

SlowSwitchChannel::SlowSwitchChannel(Core &core,
                                     const ChannelConfig &config)
    : CovertChannel(core, config)
{
}

std::string
SlowSwitchChannel::name() const
{
    return "non-MT slow-switch";
}

void
SlowSwitchChannel::setup()
{
    mixed_ = prepareLcpAddLoop(cfg_.senderBase, LcpPattern::Mixed, cfg_.r,
                               dsbLineUops());
    ordered_ = prepareLcpAddLoop(cfg_.senderBase + 0x10000,
                                 LcpPattern::Ordered, cfg_.r,
                                 dsbLineUops());
}

double
SlowSwitchChannel::transmitBit(bool bit)
{
    const Cycles start = core_.cycle();
    chargeMeasurementOverhead(); // Init: start the timer.

    // Encode: the LCP issue order carries the bit.
    const PreparedChain &loop = bit ? *mixed_ : *ordered_;
    core_.setProgram(kThread, loop);
    runLoopIters(core_, kThread, loop,
                 static_cast<std::uint64_t>(cfg_.rounds));

    chargeMeasurementOverhead(); // Decode: stop the timer.
    const double elapsed = static_cast<double>(core_.cycle() - start);
    return core_.noisyMeasurement(elapsed);
}

} // namespace lf
