/**
 * @file
 * Power-based covert channels (Sec. VII).
 *
 * Same internal-interference encodings as the non-MT timing channels,
 * but the receiver observes average package power through the
 * simulated RAPL counter instead of the TSC. Because RAPL only
 * refreshes every ~50 us, each bit must stretch over many more
 * encode/decode rounds (p = q = 240,000 in the paper), which caps the
 * channel in the ~kbps range.
 */

#ifndef LF_CORE_POWER_CHANNELS_HH
#define LF_CORE_POWER_CHANNELS_HH

#include "core/channel.hh"
#include "frontend/prepared.hh"

namespace lf {

/** Extra configuration for power channels. */
struct PowerChannelConfig
{
    /** Encode/decode rounds per bit. The paper uses 240,000; the
     *  default here is smaller to keep simulation turnaround sane and
     *  benches report both the simulated rate and the rate normalized
     *  to the paper's round count. */
    int rounds = 20000;
};

/** Common machinery: RAPL-observed non-MT channel. */
class PowerChannelBase : public CovertChannel
{
  public:
    PowerChannelBase(Core &core, const ChannelConfig &config,
                     const PowerChannelConfig &power_config);

    double transmitBit(bool bit) override;

    /** The observable is per-round package energy, not cycles. */
    bool observableIsPower() const override { return true; }

    const PowerChannelConfig &powerConfig() const { return powerCfg_; }

  protected:
    static constexpr ThreadId kThread = 0;

    PowerChannelConfig powerCfg_;
    PreparedChainPtr receiver_;
    PreparedChainPtr encodeOne_;
    PreparedChainPtr encodeZero_; //!< Stealthy variant only.
};

/** Power variant of the eviction channel (Table V, left column). */
class PowerEvictionChannel : public PowerChannelBase
{
  public:
    PowerEvictionChannel(Core &core, const ChannelConfig &config,
                         const PowerChannelConfig &power_config);
    std::string name() const override;
    void setup() override;
};

/** Power variant of the misalignment channel (Table V, right). */
class PowerMisalignmentChannel : public PowerChannelBase
{
  public:
    PowerMisalignmentChannel(Core &core, const ChannelConfig &config,
                             const PowerChannelConfig &power_config);
    std::string name() const override;
    void setup() override;
};

} // namespace lf

#endif // LF_CORE_POWER_CHANNELS_HH
