/**
 * @file
 * Multi-threaded (SMT) covert channels: Sec. V-A (eviction-based) and
 * Sec. V-B (misalignment-based).
 *
 * Sender and receiver run on the two hardware threads of one physical
 * core. The observable is the SMT repartitioning of the DSB: while the
 * sender thread executes, the DSB switches to set-partitioned mode and
 * the receiver's lines — deliberately placed at full-index sets whose
 * position changes under partitioning — are lost, redirecting the
 * receiver's delivery to the MITE. When the sender idles the receiver
 * enjoys the whole DSB (and the LSD where present).
 *
 * Per bit, the protocol interleaves mtSteps encode steps with
 * mtMeasPerStep receiver self-measurements per step (the paper's
 * p/q = 10 shape); the classification observable is the mean of all
 * measurements in the bit.
 */

#ifndef LF_CORE_MT_CHANNELS_HH
#define LF_CORE_MT_CHANNELS_HH

#include "core/channel.hh"
#include "frontend/prepared.hh"

namespace lf {

/** Common machinery for the two MT channels. */
class MtChannelBase : public CovertChannel
{
  public:
    MtChannelBase(Core &core, const ChannelConfig &config);

    double transmitBit(bool bit) override;

  protected:
    static constexpr ThreadId kReceiver = 0;
    static constexpr ThreadId kSender = 1;

    PreparedChainPtr receiver_;
    PreparedChainPtr encodeOne_;
};

/** MT eviction-based attack (Sec. V-A): sender runs N+1-d aligned
 *  blocks of the receiver's set. */
class MtEvictionChannel : public MtChannelBase
{
  public:
    MtEvictionChannel(Core &core, const ChannelConfig &config);
    std::string name() const override;
    void setup() override;
};

/** MT misalignment-based attack (Sec. V-B): sender runs M-d
 *  *misaligned* blocks of the receiver's set. */
class MtMisalignmentChannel : public MtChannelBase
{
  public:
    MtMisalignmentChannel(Core &core, const ChannelConfig &config);
    std::string name() const override;
    void setup() override;
};

} // namespace lf

#endif // LF_CORE_MT_CHANNELS_HH
