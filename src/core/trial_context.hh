/**
 * @file
 * TrialContext: everything one covert-channel trial runs against,
 * bound together — the resolved (defense-folded) CpuModel, the
 * simulated Core, the Environment (src/noise), the Defense
 * (src/defense), the resolved ChannelConfig/ChannelExtras, and a
 * general-purpose trial RNG.
 *
 * Before this type existed the pieces were loose: three
 * CovertChannel::transmit() overloads threaded different subsets of
 * (Environment, Defense) through the transmit loop, and every caller
 * assembled Core/Environment/Defense by hand. Now there is exactly one
 * transmit path — transmit(message, TrialContext&) — and exactly one
 * resolution path from an ExperimentSpec (resolveTrial() in
 * src/run/experiment.hh).
 *
 * A TrialContext is rebindable: bind() tears the previous trial down
 * (defense hooks first) and reinitializes every facet for the next
 * one, reusing the Core's allocations via Core::reset(). A worker
 * thread of the streaming ExperimentRunner keeps one context alive
 * across its whole share of a batch — results are bit-identical to
 * constructing everything afresh per trial, just without the
 * per-trial construction cost.
 */

#ifndef LF_CORE_TRIAL_CONTEXT_HH
#define LF_CORE_TRIAL_CONTEXT_HH

#include <cstdint>
#include <memory>
#include <optional>

#include "common/rng.hh"
#include "core/channel_registry.hh"
#include "defense/defense.hh"
#include "noise/environment.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"

namespace lf {

/** Seed of a trial's general-purpose RNG (TrialContext::rng()),
 *  derived from the trial seed with its own salt — decorrelated from
 *  the Core, message, environment, and defense streams. */
std::uint64_t deriveTrialRngSeed(std::uint64_t trial_seed);

class TrialContext
{
  public:
    /** An unbound context: bind() (or run/experiment's
     *  resolveTrial()) must populate it before use. */
    TrialContext() = default;

    /**
     * Bind directly for hand-built channels (tests, examples): the
     * named model, a quiet-by-default environment, an
     * inactive-by-default defense, and type-default config/extras
     * (not any channel's registry defaults — no channel is named
     * here). Construct channels against core() with an explicit
     * ChannelConfig; the context supplies the execution
     * surroundings. Registry-resolved config comes from
     * resolveTrial() + makeChannel(name, ctx).
     */
    explicit TrialContext(const CpuModel &model, std::uint64_t seed = 1,
                          const EnvironmentSpec &env = {},
                          const DefenseSpec &defense = {});

    /** One context = one live Core that channels bind to by
     *  reference; copying would silently split them. */
    TrialContext(const TrialContext &) = delete;
    TrialContext &operator=(const TrialContext &) = delete;

    /**
     * (Re)bind every facet of the context for one trial. The
     * defense-model mitigations of @p defense are folded into the
     * stored model copy (applyDefenseToModel()) before the Core is
     * built, mirroring the seed pipeline. A second bind() reuses the
     * Core allocation (Core::reset()) after uninstalling the previous
     * defense's hooks — bit-identical to a fresh context.
     */
    void bind(const CpuModel &model, std::uint64_t seed,
              const ChannelConfig &config, const ChannelExtras &extras,
              const EnvironmentSpec &env, const DefenseSpec &defense,
              int preamble_bits = -1);

    bool bound() const { return core_ != nullptr; }

    /** The trial's resolved, defense-folded CpuModel. */
    const CpuModel &model() const { return model_; }
    std::uint64_t seed() const { return seed_; }

    /** @name Live trial state (bound contexts only) */
    /// @{
    Core &core();
    Environment &environment() { return env_; }
    Defense &defense();
    /// @}

    /** Resolved channel knobs (registry defaults + spec overrides). */
    const ChannelConfig &config() const { return config_; }
    const ChannelExtras &extras() const { return extras_; }

    /** Calibration-preamble override; < 0 defers to the channel's
     *  ChannelConfig::preambleBits. */
    int preambleBits() const { return preambleBits_; }

    /** General-purpose per-trial RNG (harness-side randomness that
     *  must not perturb the core/message/env/defense streams). */
    Rng &rng() { return rng_; }

  private:
    CpuModel model_;
    std::uint64_t seed_ = 0;
    ChannelConfig config_;
    ChannelExtras extras_;
    int preambleBits_ = -1;
    /** Declared before defense_ so the Defense (whose destructor
     *  uninstalls its core hooks) is destroyed first. */
    std::unique_ptr<Core> core_;
    Environment env_;
    std::optional<Defense> defense_;
    Rng rng_{0};
};

} // namespace lf

#endif // LF_CORE_TRIAL_CONTEXT_HH
