/**
 * @file
 * Covert-channel framework (Sec. V of the paper).
 *
 * Every channel follows the paper's three-step pattern per transmitted
 * bit:
 *   Init   — the receiver places micro-ops on a known frontend path;
 *   Encode — the sender perturbs (or does not perturb) that state
 *            according to the secret bit;
 *   Decode — the receiver re-executes and measures timing (or power).
 *
 * transmit() first sends a known alternating preamble to calibrate the
 * decoding threshold (Sec. VI-B), then transmits the message and
 * classifies each raw observation by nearest class mean. Error rates
 * use the Wagner–Fischer edit distance (Sec. VI) and transmission
 * rates are computed from simulated time at the CPU model's clock.
 */

#ifndef LF_CORE_CHANNEL_HH
#define LF_CORE_CHANNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/core.hh"

namespace lf {

class TrialContext;

/** Parameters shared by the channel implementations (Sec. V names). */
struct ChannelConfig
{
    /** Target DSB set (full 32-set index). Sets >= 16 sit in the half
     *  whose lines are invalidated by SMT partition toggles, which is
     *  what the MT channels encode into. */
    int targetSet = 20;
    /** Alternate set for the stealthy eviction encode of bit 0. */
    int altSet = 9;

    int N = 8;   //!< DSB ways.
    int d = 6;   //!< Receiver ways (blocks).
    int M = 8;   //!< Total ways, misalignment channels (M <= N).
    int r = 16;  //!< LCP instruction count, slow-switch channel.

    /** Non-MT: interleaved encode/decode rounds per bit (p = q). */
    int rounds = 10;
    /** Non-MT: receiver iterations in the Init step. */
    int initIters = 10;

    /** Stealthy variant: bit 0 is encoded by equivalent-length
     *  innocuous activity instead of idling (Sec. V-C). */
    bool stealthy = false;

    /** @name MT protocol shape (Sec. VI-A: p/q = 10) */
    /// @{
    int mtSteps = 20;        //!< Encode steps per bit.
    int mtMeasPerStep = 10;  //!< Receiver measurements per step.
    int mtSenderIters = 4;   //!< Sender loop passes per encode step.
    /// @}

    /** Calibration preamble length in bits (Sec. VI-B). transmit()
     *  uses this unless the caller passes an explicit override. */
    int preambleBits = 16;

    /** Receiver-robustness hook: transmit each message bit this many
     *  times and majority-decode (odd, >= 1). 1 reproduces the
     *  paper's plain protocol; larger values trade rate for error
     *  resilience under a noisy Environment. Calibration preamble
     *  bits are never repeated. */
    int repetition = 1;

    /** Base virtual addresses for receiver and sender code. Distinct
     *  1 KiB-aligned regions give distinct DSB tags. */
    Addr receiverBase = 0x400000;
    Addr senderBase = 0x800000;
};

/** Outcome of one message transmission. Echoes the full experimental
 *  setting (seed, preamble, config) so serialized rows are
 *  self-describing. */
struct ChannelResult
{
    std::string channelName;
    std::string cpuName;
    std::uint64_t seed = 0;         //!< Core seed of the trial.
    int preambleBits = 0;           //!< Calibration bits actually used.
    ChannelConfig config;           //!< Config the channel ran with.
    std::vector<bool> sent;
    std::vector<bool> received;
    double errorRate = 0.0;         //!< Edit distance / message bits.
    double transmissionKbps = 0.0;  //!< Message bits / simulated time.
    double seconds = 0.0;           //!< Simulated transmission time.
    double meanObs0 = 0.0;          //!< Calibrated class means.
    double meanObs1 = 0.0;
};

/**
 * Base class: a covert channel bound to one simulated Core.
 */
class CovertChannel
{
  public:
    CovertChannel(Core &core, const ChannelConfig &config);
    virtual ~CovertChannel() = default;

    virtual std::string name() const = 0;

    /**
     * Transmit one bit and return the receiver's raw observable
     * (cycles for timing channels, watts for power channels).
     */
    virtual double transmitBit(bool bit) = 0;

    /** True when the raw observable is energy (microjoules), not
     *  cycles — selects which Environment perturbation applies. */
    virtual bool observableIsPower() const { return false; }

    /** Called once before a transmission (build programs, warm up). */
    virtual void setup() {}

    /**
     * The one transmit path: calibrate on an alternating preamble,
     * then transmit @p message inside @p ctx — the TrialContext whose
     * core() this channel is bound to. The context's Defense
     * reconfigures the core once (Defense::arm()) and acts at every
     * slot start (beginSlot(): DSB flush quanta, index re-salting);
     * each raw observable is padded by the defense
     * (filterTiming()/filterPower(), machine-side mitigation) and
     * *then* degraded by the Environment (perturbTiming()/
     * perturbPower(), measurement-side interference) — the observable
     * pipeline order is defense filter -> env perturbation. A quiet
     * Environment and an inactive Defense make every hook an exact
     * no-op. When ChannelConfig::repetition > 1 each message bit is
     * sent that many times and majority-decoded.
     *
     * @param preamble_bits Calibration bits; < 0 falls back to the
     *        context's preambleBits(), then to
     *        ChannelConfig::preambleBits.
     */
    ChannelResult transmit(const std::vector<bool> &message,
                           TrialContext &ctx, int preamble_bits = -1);

    /**
     * The decoding reference produced by calibrate() and consumed by
     * transmitMessage(). transmit() is exactly the composition of the
     * two phases; they are exposed separately so the warm-snapshot
     * cache (sim/snapshot.hh) can capture the core after calibration
     * and replay later trials straight into the message phase.
     */
    struct Calibration
    {
        double mean0 = 0.0;          //!< Calibrated class means.
        double mean1 = 0.0;
        int preambleBits = 0;        //!< Calibration bits actually used.
        /** RNG-draw tripwire: true when warmup + preamble consumed no
         *  RNG draws on this thread — i.e. the post-calibration core
         *  state is independent of the trial seed and may be shared
         *  across trials. Noisy environments, stochastic defenses and
         *  non-zero model noise all trip it. */
        bool rngUntouched = false;
    };

    /**
     * Phase 1 of transmit(): resolve the preamble length (same
     * fallback chain as transmit()), run prepareMachine(), then run
     * the 4-slot warmup and the alternating calibration preamble
     * (Sec. VI-B).
     */
    Calibration calibrate(TrialContext &ctx, int preamble_bits = -1);

    /** The machine-configuration prefix of calibrate(): run setup()
     *  once and arm the context's Defense. The snapshot restore path
     *  calls this instead of calibrate() — the machine must be
     *  configured (programs built, defense armed, hooks installed)
     *  before a WarmSnapshot is replayed onto it. Idempotent. */
    void prepareMachine(TrialContext &ctx);

    /** Phase 2 of transmit(): transmit @p message using the decoding
     *  reference in @p calib and assemble the ChannelResult. */
    ChannelResult transmitMessage(const std::vector<bool> &message,
                                  TrialContext &ctx,
                                  const Calibration &calib);

    Core &core() { return core_; }
    const ChannelConfig &config() const { return cfg_; }

  protected:
    /** Advance simulated time by the model's measurement overhead
     *  (serializing rdtscp reads are not free for the attacker). */
    void chargeMeasurementOverhead();

  private:
    /** One transmission slot under the context's environment and
     *  defense (the observable pipeline of transmit()'s contract). */
    double observeSlot(TrialContext &ctx, bool bit);

  protected:

    /** Resolved DSB line capacity of the bound core's model — the
     *  decode parameter the prepared-chain cache keys on. */
    int dsbLineUops() const { return core_.model().frontend.dsbLineUops; }

    Core &core_;
    ChannelConfig cfg_;
    bool setupDone_ = false;
};

} // namespace lf

#endif // LF_CORE_CHANNEL_HH
