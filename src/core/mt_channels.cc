#include "core/mt_channels.hh"

#include "common/logging.hh"
#include "sim/executor.hh"

namespace lf {

namespace {

std::vector<BlockSpec>
waySpan(int first_way, int count, bool misaligned)
{
    std::vector<BlockSpec> specs;
    specs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        specs.push_back({first_way + i, misaligned});
    return specs;
}

} // namespace

MtChannelBase::MtChannelBase(Core &core, const ChannelConfig &config)
    : CovertChannel(core, config)
{
    lf_assert(core.model().smtEnabled,
              "MT channel needs an SMT-enabled CPU model (%s has SMT"
              " disabled)", core.model().name.c_str());
}

double
MtChannelBase::transmitBit(bool bit)
{
    // Init: receiver loop reaches steady state with the sender idle.
    core_.setProgram(kReceiver, *receiver_);
    runLoopIters(core_, kReceiver, *receiver_,
                 static_cast<std::uint64_t>(cfg_.initIters));

    double sum = 0.0;
    int samples = 0;
    for (int step = 0; step < cfg_.mtSteps; ++step) {
        if (bit) {
            // Encode step: waking the sender partitions the DSB
            // (invalidation toggle); the sender then keeps looping
            // over its blocks *while the receiver measures*, so the
            // receiver observes both the repartition refills and the
            // shared-frontend contention.
            core_.setProgram(kSender, *encodeOne_);
            core_.runUntilRetired(
                kSender,
                static_cast<std::uint64_t>(cfg_.mtSenderIters) *
                    encodeOne_->chain.instsPerIteration);
        }
        // Decode: the receiver times its own loop, concurrently with
        // the sender when a 1 is being encoded.
        for (int k = 0; k < cfg_.mtMeasPerStep; ++k) {
            chargeMeasurementOverhead();
            sum += timedLoopIters(core_, kReceiver, *receiver_, 1);
            ++samples;
        }
        if (bit)
            core_.clearProgram(kSender); // second invalidation toggle
    }
    core_.clearProgram(kReceiver);
    return sum / samples;
}

MtEvictionChannel::MtEvictionChannel(Core &core,
                                     const ChannelConfig &config)
    : MtChannelBase(core, config)
{
}

std::string
MtEvictionChannel::name() const
{
    return "MT eviction";
}

void
MtEvictionChannel::setup()
{
    lf_assert(cfg_.targetSet >= 16,
              "MT channels need a target set in the partition-mapped"
              " half (>= 16), got %d", cfg_.targetSet);
    receiver_ = prepareMixBlockChain(cfg_.receiverBase, cfg_.targetSet,
                                     waySpan(0, cfg_.d, false),
                                     dsbLineUops());
    encodeOne_ = prepareMixBlockChain(cfg_.senderBase, cfg_.targetSet,
                                      waySpan(cfg_.d,
                                              cfg_.N + 1 - cfg_.d,
                                              false),
                                      dsbLineUops());
}

MtMisalignmentChannel::MtMisalignmentChannel(Core &core,
                                             const ChannelConfig &config)
    : MtChannelBase(core, config)
{
}

std::string
MtMisalignmentChannel::name() const
{
    return "MT misalignment";
}

void
MtMisalignmentChannel::setup()
{
    lf_assert(cfg_.targetSet >= 16,
              "MT channels need a target set in the partition-mapped"
              " half (>= 16), got %d", cfg_.targetSet);
    lf_assert(cfg_.M > cfg_.d, "misalignment channel needs M > d");
    receiver_ = prepareMixBlockChain(cfg_.receiverBase, cfg_.targetSet,
                                     waySpan(0, cfg_.d, false),
                                     dsbLineUops());
    encodeOne_ = prepareMixBlockChain(cfg_.senderBase, cfg_.targetSet,
                                      waySpan(cfg_.d, cfg_.M - cfg_.d,
                                              true),
                                      dsbLineUops());
}

} // namespace lf
