#include "sgx/sgx_channels.hh"

#include "common/logging.hh"
#include "sim/executor.hh"

namespace lf {

namespace {

std::vector<BlockSpec>
waySpan(int first_way, int count, bool misaligned)
{
    std::vector<BlockSpec> specs;
    specs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        specs.push_back({first_way + i, misaligned});
    return specs;
}

void
requireSgx(const Core &core)
{
    lf_assert(core.model().sgx.supported,
              "CPU model %s has no SGX support",
              core.model().name.c_str());
}

} // namespace

SgxNonMtChannelBase::SgxNonMtChannelBase(Core &core,
                                         const ChannelConfig &config,
                                         const SgxConfig &sgx_config)
    : CovertChannel(core, config), sgxCfg_(sgx_config)
{
    requireSgx(core);
}

double
SgxNonMtChannelBase::transmitBit(bool bit)
{
    const Cycles start = core_.cycle();
    chargeMeasurementOverhead();           // receiver starts the timer
    core_.enclaveTransition(kThread);      // single enclave entry

    // Inside the enclave: init once, then many interleaved
    // encode/decode rounds. No per-round sync is needed — sender and
    // "receiver pattern" are phases of the same enclave code.
    core_.setProgram(kThread, *receiver_);
    runLoopIters(core_, kThread, *receiver_,
                 static_cast<std::uint64_t>(cfg_.initIters));
    for (int round = 0; round < sgxCfg_.rounds; ++round) {
        if (bit) {
            core_.setProgram(kThread, *encodeOne_);
            runLoopIters(core_, kThread, *encodeOne_, 1);
        } else if (cfg_.stealthy) {
            core_.setProgram(kThread, *encodeZero_);
            runLoopIters(core_, kThread, *encodeZero_, 1);
        }
        core_.setProgram(kThread, *receiver_);
        runLoopIters(core_, kThread, *receiver_, 1);
    }
    core_.clearProgram(kThread);

    core_.enclaveTransition(kThread);      // single enclave exit
    chargeMeasurementOverhead();           // receiver stops the timer
    const double elapsed = static_cast<double>(core_.cycle() - start);
    return core_.noisyMeasurement(elapsed);
}

SgxNonMtEvictionChannel::SgxNonMtEvictionChannel(
        Core &core, const ChannelConfig &config,
        const SgxConfig &sgx_config)
    : SgxNonMtChannelBase(core, config, sgx_config)
{
}

std::string
SgxNonMtEvictionChannel::name() const
{
    return std::string("SGX non-MT ") +
        (cfg_.stealthy ? "stealthy" : "fast") + " eviction";
}

void
SgxNonMtEvictionChannel::setup()
{
    receiver_ = prepareMixBlockChain(cfg_.receiverBase, cfg_.targetSet,
                                     waySpan(0, cfg_.d, false),
                                     dsbLineUops());
    encodeOne_ = prepareMixBlockChain(cfg_.senderBase, cfg_.targetSet,
                                      waySpan(cfg_.d,
                                              cfg_.N + 1 - cfg_.d,
                                              false),
                                      dsbLineUops());
    if (cfg_.stealthy) {
        encodeZero_ = prepareMixBlockChain(cfg_.senderBase,
                                           cfg_.altSet,
                                           waySpan(cfg_.d,
                                                   cfg_.N + 1 - cfg_.d,
                                                   false),
                                           dsbLineUops());
    }
}

SgxNonMtMisalignmentChannel::SgxNonMtMisalignmentChannel(
        Core &core, const ChannelConfig &config,
        const SgxConfig &sgx_config)
    : SgxNonMtChannelBase(core, config, sgx_config)
{
}

std::string
SgxNonMtMisalignmentChannel::name() const
{
    return std::string("SGX non-MT ") +
        (cfg_.stealthy ? "stealthy" : "fast") + " misalignment";
}

void
SgxNonMtMisalignmentChannel::setup()
{
    lf_assert(cfg_.M > cfg_.d, "misalignment channel needs M > d");
    receiver_ = prepareMixBlockChain(cfg_.receiverBase, cfg_.targetSet,
                                     waySpan(0, cfg_.d, false),
                                     dsbLineUops());
    encodeOne_ = prepareMixBlockChain(cfg_.senderBase, cfg_.targetSet,
                                      waySpan(cfg_.d, cfg_.M - cfg_.d,
                                              true),
                                      dsbLineUops());
    if (cfg_.stealthy) {
        encodeZero_ = prepareMixBlockChain(cfg_.senderBase,
                                           cfg_.targetSet,
                                           waySpan(cfg_.d,
                                                   cfg_.M - cfg_.d,
                                                   false),
                                           dsbLineUops());
    }
}

SgxMtChannelBase::SgxMtChannelBase(Core &core,
                                   const ChannelConfig &config,
                                   const SgxConfig &sgx_config)
    : CovertChannel(core, config), sgxCfg_(sgx_config)
{
    requireSgx(core);
    lf_assert(core.model().smtEnabled,
              "MT SGX channel needs SMT (disabled on %s)",
              core.model().name.c_str());
}

double
SgxMtChannelBase::transmitBit(bool bit)
{
    // The enclave (sender) is entered once per bit on the sibling
    // hardware thread.
    if (bit)
        core_.enclaveTransition(kSender);

    core_.setProgram(kReceiver, *receiver_);
    runLoopIters(core_, kReceiver, *receiver_,
                 static_cast<std::uint64_t>(cfg_.initIters));

    double sum = 0.0;
    int samples = 0;
    for (int step = 0; step < sgxCfg_.mtSteps; ++step) {
        if (bit) {
            core_.setProgram(kSender, *encodeOne_);
            core_.runUntilRetired(
                kSender,
                static_cast<std::uint64_t>(cfg_.mtSenderIters) *
                    encodeOne_->chain.instsPerIteration);
        }
        for (int k = 0; k < sgxCfg_.mtMeasPerStep; ++k) {
            chargeMeasurementOverhead();
            sum += timedLoopIters(core_, kReceiver, *receiver_, 1);
            ++samples;
        }
        if (bit)
            core_.clearProgram(kSender);
    }
    core_.clearProgram(kReceiver);
    if (bit)
        core_.enclaveTransition(kSender);
    return sum / samples;
}

SgxMtEvictionChannel::SgxMtEvictionChannel(Core &core,
                                           const ChannelConfig &config,
                                           const SgxConfig &sgx_config)
    : SgxMtChannelBase(core, config, sgx_config)
{
}

std::string
SgxMtEvictionChannel::name() const
{
    return "SGX MT eviction";
}

void
SgxMtEvictionChannel::setup()
{
    lf_assert(cfg_.targetSet >= 16,
              "MT channels need a target set >= 16");
    receiver_ = prepareMixBlockChain(cfg_.receiverBase, cfg_.targetSet,
                                     waySpan(0, cfg_.d, false),
                                     dsbLineUops());
    encodeOne_ = prepareMixBlockChain(cfg_.senderBase, cfg_.targetSet,
                                      waySpan(cfg_.d,
                                              cfg_.N + 1 - cfg_.d,
                                              false),
                                      dsbLineUops());
}

SgxMtMisalignmentChannel::SgxMtMisalignmentChannel(
        Core &core, const ChannelConfig &config,
        const SgxConfig &sgx_config)
    : SgxMtChannelBase(core, config, sgx_config)
{
}

std::string
SgxMtMisalignmentChannel::name() const
{
    return "SGX MT misalignment";
}

void
SgxMtMisalignmentChannel::setup()
{
    lf_assert(cfg_.targetSet >= 16,
              "MT channels need a target set >= 16");
    lf_assert(cfg_.M > cfg_.d, "misalignment channel needs M > d");
    receiver_ = prepareMixBlockChain(cfg_.receiverBase, cfg_.targetSet,
                                     waySpan(0, cfg_.d, false),
                                     dsbLineUops());
    encodeOne_ = prepareMixBlockChain(cfg_.senderBase, cfg_.targetSet,
                                      waySpan(cfg_.d, cfg_.M - cfg_.d,
                                              true),
                                      dsbLineUops());
}

} // namespace lf
