/**
 * @file
 * SGX enclave covert channels (Sec. VIII).
 *
 * Enclaves are modelled as an execution context with costly, jittery
 * entry/exit transitions that also flush the thread's pipeline-local
 * frontend state (the paper notes ITLB flushes at transitions do not
 * affect the attacks; the shared DSB/L1I persist).
 *
 * Non-MT SGX: the sender runs *inside* the enclave; the receiver can
 * only time the whole enclave call from outside. One entry and one
 * exit per bit; many more encode/decode rounds are interleaved inside
 * (p = q in the thousands) so the per-round frontend path difference
 * is amplified above the entry/exit jitter.
 *
 * MT SGX: the sender thread stays resident inside the enclave on the
 * sibling hardware thread; the receiver measures its own loop timing
 * exactly like the non-SGX MT channels.
 */

#ifndef LF_SGX_SGX_CHANNELS_HH
#define LF_SGX_SGX_CHANNELS_HH

#include "core/channel.hh"
#include "core/mt_channels.hh"
#include "frontend/prepared.hh"

namespace lf {

/** Extra parameters for the SGX variants. */
struct SgxConfig
{
    /** Interleaved encode/decode rounds inside the enclave per bit
     *  (paper: p = q = 1,000 - 5,000). */
    int rounds = 6000;
    /** MT variant: encode steps per bit (paper: q = 10,000 total
     *  encode iterations). */
    int mtSteps = 100;
    /** MT variant: receiver measurements per encode step. */
    int mtMeasPerStep = 20;
};

/** Common machinery for the two non-MT SGX channels. */
class SgxNonMtChannelBase : public CovertChannel
{
  public:
    SgxNonMtChannelBase(Core &core, const ChannelConfig &config,
                        const SgxConfig &sgx_config);

    double transmitBit(bool bit) override;

  protected:
    static constexpr ThreadId kThread = 0;

    SgxConfig sgxCfg_;
    PreparedChainPtr receiver_;
    PreparedChainPtr encodeOne_;
    PreparedChainPtr encodeZero_; //!< Stealthy variant only.
};

/** Non-MT SGX eviction channel (Table VI). */
class SgxNonMtEvictionChannel : public SgxNonMtChannelBase
{
  public:
    SgxNonMtEvictionChannel(Core &core, const ChannelConfig &config,
                            const SgxConfig &sgx_config);
    std::string name() const override;
    void setup() override;
};

/** Non-MT SGX misalignment channel (Table VI). */
class SgxNonMtMisalignmentChannel : public SgxNonMtChannelBase
{
  public:
    SgxNonMtMisalignmentChannel(Core &core, const ChannelConfig &config,
                                const SgxConfig &sgx_config);
    std::string name() const override;
    void setup() override;
};

/** MT SGX channels: the enclave-resident sender perturbs the shared
 *  frontend; entry happens once per bit. */
class SgxMtChannelBase : public CovertChannel
{
  public:
    SgxMtChannelBase(Core &core, const ChannelConfig &config,
                     const SgxConfig &sgx_config);

    double transmitBit(bool bit) override;

  protected:
    static constexpr ThreadId kReceiver = 0;
    static constexpr ThreadId kSender = 1;

    SgxConfig sgxCfg_;
    PreparedChainPtr receiver_;
    PreparedChainPtr encodeOne_;
};

/** MT SGX eviction channel (Table VI). */
class SgxMtEvictionChannel : public SgxMtChannelBase
{
  public:
    SgxMtEvictionChannel(Core &core, const ChannelConfig &config,
                         const SgxConfig &sgx_config);
    std::string name() const override;
    void setup() override;
};

/** MT SGX misalignment channel (Table VI). */
class SgxMtMisalignmentChannel : public SgxMtChannelBase
{
  public:
    SgxMtMisalignmentChannel(Core &core, const ChannelConfig &config,
                             const SgxConfig &sgx_config);
    std::string name() const override;
    void setup() override;
};

} // namespace lf

#endif // LF_SGX_SGX_CHANNELS_HH
