#include "defense/defense.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"

namespace lf {

bool
DefenseSpec::inactive() const
{
    return flush.switchQuantum == 0 && !partition.dsb &&
        !partition.lsd && !disableDsb && !randomize.enabled &&
        smoothing.strength == 0.0 && rapl.quantumUj == 0.0 &&
        rapl.intervalScale == 1.0;
}

std::string
validateDefenseSpec(const DefenseSpec &spec)
{
    if (spec.flush.switchQuantum < 0)
        return "defense.flush_switch_quantum must be >= 0";
    if (spec.randomize.epochSlots < 1)
        return "defense.randomize_epoch_slots must be >= 1";
    if (spec.smoothing.strength < 0.0 || spec.smoothing.strength > 1.0)
        return "defense.smoothing must be in [0, 1]";
    if (spec.rapl.quantumUj < 0.0)
        return "defense.rapl_quantum_uj must be >= 0";
    if (spec.rapl.intervalScale < 1.0)
        return "defense.rapl_interval_scale must be >= 1";
    return "";
}

bool
applyDefenseOverride(DefenseSpec &spec, const std::string &key,
                     double value)
{
    if (key == "defense.flush_switch_quantum")
        spec.flush.switchQuantum = static_cast<int>(value);
    else if (key == "defense.partition_dsb")
        spec.partition.dsb = value != 0.0;
    else if (key == "defense.partition_lsd")
        spec.partition.lsd = value != 0.0;
    else if (key == "defense.disable_dsb")
        spec.disableDsb = value != 0.0;
    else if (key == "defense.randomize_sets")
        spec.randomize.enabled = value != 0.0;
    else if (key == "defense.randomize_epoch_slots")
        spec.randomize.epochSlots = static_cast<int>(value);
    else if (key == "defense.smoothing")
        spec.smoothing.strength = value;
    else if (key == "defense.rapl_quantum_uj")
        spec.rapl.quantumUj = value;
    else if (key == "defense.rapl_interval_scale")
        spec.rapl.intervalScale = value;
    else
        return false;
    return true;
}

bool
isDefenseOverrideKey(const std::string &key)
{
    return key.rfind("defense.", 0) == 0;
}

std::vector<std::string>
defenseOverrideKeys()
{
    return {"defense.flush_switch_quantum", "defense.partition_dsb",
            "defense.partition_lsd", "defense.disable_dsb",
            "defense.randomize_sets", "defense.randomize_epoch_slots",
            "defense.smoothing", "defense.rapl_quantum_uj",
            "defense.rapl_interval_scale"};
}

std::uint64_t
deriveDefenseSeed(std::uint64_t trial_seed)
{
    return splitmix64(trial_seed ^ 0x646566656e736531ULL);
}

void
applyDefenseToModel(CpuModel &model, const DefenseSpec &spec)
{
    if (spec.rapl.quantumUj > 0.0) {
        model.rapl.quantumMicroJoules = std::max(
            model.rapl.quantumMicroJoules, spec.rapl.quantumUj);
    }
    if (spec.rapl.intervalScale != 1.0)
        model.rapl.updateIntervalUs *= spec.rapl.intervalScale;
}

Defense::Defense()
    : Defense(DefenseSpec{}, 0)
{
}

Defense::Defense(const DefenseSpec &spec, std::uint64_t trial_seed)
    : spec_(spec), inactive_(spec.inactive()),
      rng_(deriveDefenseSeed(trial_seed))
{
    const std::string error = validateDefenseSpec(spec);
    lf_assert(error.empty(), "bad DefenseSpec: %s", error.c_str());
}

Defense::~Defense()
{
    if (armedCore_ != nullptr)
        armedCore_->setDomainSwitchHook(nullptr);
}

void
Defense::arm(Core &core)
{
    if (inactive_ || armedCore_ != nullptr)
        return;
    armedCore_ = &core;
    FrontendEngine &frontend = core.frontend();
    // SMT partitioning defends against a co-resident sibling; on an
    // SMT-disabled model there is none and the knobs stay no-ops.
    if (core.model().smtEnabled) {
        if (spec_.partition.dsb)
            core.setStaticPartition(true);
        if (spec_.partition.lsd)
            frontend.setLsdStaticPartition(true);
    }
    if (spec_.disableDsb)
        frontend.setDsbEnabled(false);
    if (spec_.flush.switchQuantum > 0) {
        core.setDomainSwitchHook(
            [this](Core &c) { onDomainSwitch(c); });
    }
}

void
Defense::onDomainSwitch(Core &core)
{
    ++switches_;
    if (switches_ %
            static_cast<std::uint64_t>(spec_.flush.switchQuantum) ==
        0) {
        // The incoming domain finds a cold DSB (and, through
        // inclusion, any streaming LSD loop is dropped).
        core.frontend().dsb().flushAll();
    }
}

void
Defense::beginSlot(Core &core)
{
    if (inactive_)
        return;
    ++slots_;
    const RandomizeDefenseSpec &rand = spec_.randomize;
    if (rand.enabled &&
        (slots_ - 1) % static_cast<std::uint64_t>(rand.epochSlots) ==
            0) {
        // New epoch: a fresh index key. Lines whose keyed index moved
        // are invalidated by the DSB itself.
        core.frontend().dsb().setIndexSalt(rng_.next());
    }
}

double
Defense::padObservable(double value)
{
    if (spec_.smoothing.strength <= 0.0)
        return value;
    // Pad toward the worst case seen so far: a non-affine compression
    // from below that genuinely merges the classes (a linear blend
    // would scale signal and noise alike and leave separability
    // untouched).
    if (!haveWorst_ || value > worstObservable_) {
        worstObservable_ = value;
        haveWorst_ = true;
    }
    return value +
        spec_.smoothing.strength * (worstObservable_ - value);
}

double
Defense::filterTiming(double cycles)
{
    if (inactive_)
        return cycles;
    return padObservable(cycles);
}

double
Defense::filterPower(double microjoules)
{
    if (inactive_)
        return microjoules;
    return padObservable(microjoules);
}

double
Defense::filterRate(double rate)
{
    if (inactive_ || spec_.smoothing.strength <= 0.0)
        return rate;
    // For a rate observable the worst case is the running minimum:
    // constant-rate delivery slows the machine down, never up.
    if (!haveWorstRate_ || rate < worstRate_) {
        worstRate_ = rate;
        haveWorstRate_ = true;
    }
    return rate - spec_.smoothing.strength * (rate - worstRate_);
}

} // namespace lf
