/**
 * @file
 * Composable defense/mitigation model for covert-channel runs.
 *
 * The paper's final section surveys frontend mitigations; this module
 * is the defender-side twin of the environment model (src/noise): a
 * DefenseSpec names which mitigations one run deploys, a Defense binds
 * the spec to a per-trial RNG, and the channel's transmit loop (plus
 * the fingerprint trace harness) consults the object. The modelled
 * mitigations:
 *
 *  - FlushDefenseSpec: flush the DSB on domain/context switches
 *    (every program bind is a domain switch; the quantum selects
 *    every k-th one) — the DSB state carrying a bit no longer
 *    survives the encode-to-decode handoff of the time-sliced
 *    channels;
 *  - PartitionDefenseSpec: *static* SMT partitioning of the DSB and
 *    the LSD. The DSB is pinned in its 2 x 16-set partitioned mapping
 *    regardless of sibling activity, so the repartition-invalidation
 *    observable the MT attacks encode into never fires; the LSD's
 *    replay port is statically split, streaming privately (without
 *    arbitrating for the shared MITE/DSB delivery slot) at half
 *    bandwidth whether or not the sibling runs — non-work-conserving,
 *    so an LSD-resident receiver loop times the same with and without
 *    a co-resident sender. The IPC fingerprint attacker (Sec. XI)
 *    deliberately exceeds the LSD and keeps its contention waveform:
 *    that channel survives this defense;
 *  - disableDsb: MITE-only delivery (micro-op cache off, as microcode
 *    updates have shipped for other frontend structures). No DSB
 *    state means nothing for the eviction channels to encode into —
 *    but the slow-switch channel lives on the MITE path and survives;
 *  - RandomizeDefenseSpec: keyed (CEASER-style) DSB set-index mapping
 *    re-salted every epoch: sender and receiver lines with equal
 *    address bits no longer collide in the same set, and each re-salt
 *    invalidates moved lines;
 *  - SmoothingDefenseSpec: constant-rate delivery smoothing — each
 *    observation is padded toward the worst case seen so far, which
 *    collapses the class gap non-linearly (an affine filter would
 *    preserve separability);
 *  - RaplDefenseSpec: quantization/update-interval coarsening of the
 *    RAPL energy counter (the PLATYPUS-class mitigation), applied to
 *    the trial's CPU-model copy via applyDefenseToModel() so the
 *    degraded readings go through the real RaplCounter.
 *
 * An all-default spec is *inactive*: every hook is a no-op that never
 * draws from the RNG and never touches the core, keeping the defended
 * path bit-identical to the legacy path for every registry channel.
 *
 * Spec fields are addressable as "defense."-prefixed override keys
 * (see applyDefenseOverride()), riding in ExperimentSpec::overrides
 * beside the "model." and "env." knobs and sweepable as axes
 * (e.g. --sweep defense.flush_quantum_slots=1|4|16).
 */

#ifndef LF_DEFENSE_DEFENSE_HH
#define LF_DEFENSE_DEFENSE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace lf {

class Core;
struct CpuModel;

/** DSB flush on domain switch ("defense.flush_*" keys). */
struct FlushDefenseSpec
{
    /** Domain-switch flush quantum ("defense.flush_switch_quantum"):
     *  every quantum-th domain switch — a program being scheduled
     *  onto a hardware thread, see Core::setDomainSwitchHook() — runs
     *  a full DSB flush (which drops dependent LSD loops via the
     *  inclusive hierarchy). 0 disables the mitigation; 1 flushes on
     *  every switch, and smaller quanta hurt the time-sliced
     *  channels more (the bit is carried by DSB state that must
     *  survive the encode-to-decode handoff). */
    int switchQuantum = 0;
};

/** Static SMT partitioning ("defense.partition_*" keys). Only
 *  meaningful on SMT-enabled CPU models; a no-op elsewhere. */
struct PartitionDefenseSpec
{
    /** Pin the DSB in partitioned (2 x 16-set) indexing permanently
     *  ("defense.partition_dsb"). */
    bool dsb = false;
    /** Statically split the LSD replay port: private streaming at
     *  half bandwidth, sibling-independent
     *  ("defense.partition_lsd"). */
    bool lsd = false;
};

/** Keyed DSB set-index randomization ("defense.randomize_*" keys). */
struct RandomizeDefenseSpec
{
    /** Enable the keyed index mapping ("defense.randomize_sets"). */
    bool enabled = false;
    /** Re-salt period in transmission slots
     *  ("defense.randomize_epoch_slots"); each epoch draws a fresh
     *  salt from the defense RNG. Shape knob: does not activate the
     *  mitigation on its own. */
    int epochSlots = 64;
};

/** Observable smoothing ("defense.smoothing"). */
struct SmoothingDefenseSpec
{
    /** Padding strength in [0, 1]: each raw observable (cycles or
     *  microjoules) is moved this fraction of the way up to the worst
     *  case observed so far in the trial. 0 disables; 1 delivers
     *  every slot at the running worst-case rate. */
    double strength = 0.0;
};

/** RAPL interface coarsening ("defense.rapl_*" keys). */
struct RaplDefenseSpec
{
    /** Raise the RAPL energy-status quantum to at least this many
     *  microjoules ("defense.rapl_quantum_uj"); 0 keeps the model's
     *  native unit. */
    double quantumUj = 0.0;
    /** Multiply the RAPL update interval ("defense.rapl_interval_scale",
     *  >= 1); 1 keeps the native refresh rate. */
    double intervalScale = 1.0;
};

/** The full mitigation deployment of one run. */
struct DefenseSpec
{
    FlushDefenseSpec flush;
    PartitionDefenseSpec partition;
    /** MITE-only delivery ("defense.disable_dsb"). */
    bool disableDsb = false;
    RandomizeDefenseSpec randomize;
    SmoothingDefenseSpec smoothing;
    RaplDefenseSpec rapl;

    /** True when every activating knob is at its default: an inactive
     *  Defense's hooks are no-ops and the run is bit-identical to the
     *  legacy no-defense path. Shape knobs (epochSlots) do not
     *  activate on their own. */
    bool inactive() const;
};

/**
 * Validate magnitudes/ranges of @p spec. @return an error message or
 * the empty string.
 */
std::string validateDefenseSpec(const DefenseSpec &spec);

/**
 * Apply one "defense.<knob>=value" override to @p spec. Keys:
 *   defense.flush_switch_quantum, defense.partition_dsb,
 *   defense.partition_lsd, defense.disable_dsb,
 *   defense.randomize_sets, defense.randomize_epoch_slots,
 *   defense.smoothing, defense.rapl_quantum_uj,
 *   defense.rapl_interval_scale.
 * @return false if @p key names no known defense knob.
 */
bool applyDefenseOverride(DefenseSpec &spec, const std::string &key,
                          double value);

/** True when @p key is a defense override ("defense." prefix). */
bool isDefenseOverrideKey(const std::string &key);

/** Keys accepted by applyDefenseOverride(), for help text. */
std::vector<std::string> defenseOverrideKeys();

/** Seed of a trial's Defense RNG, derived from the trial seed with
 *  its own salt — decorrelated from the Core, message, and
 *  environment streams, so deploying a defense never reshuffles
 *  them. */
std::uint64_t deriveDefenseSeed(std::uint64_t trial_seed);

/**
 * Fold the model-level mitigations of @p spec (the RAPL coarsening)
 * into @p model, the trial's private CPU-model copy. A default spec
 * leaves the model untouched.
 */
void applyDefenseToModel(CpuModel &model, const DefenseSpec &spec);

/**
 * A DefenseSpec bound to a per-trial RNG: the object the transmit
 * loop consults. One Defense belongs to one trial (it carries slot
 * and smoothing state); construct a fresh one per trial from the
 * trial seed.
 */
class Defense
{
  public:
    /** An inactive defense (all hooks no-ops). */
    Defense();

    /** Bind @p spec with the RNG seeded from @p trial_seed (via
     *  deriveDefenseSeed()). */
    Defense(const DefenseSpec &spec, std::uint64_t trial_seed);

    Defense(const Defense &) = delete;
    Defense &operator=(const Defense &) = delete;
    ~Defense();

    const DefenseSpec &spec() const { return spec_; }
    bool inactive() const { return inactive_; }
    /** Slots started so far (diagnostics/tests). */
    std::uint64_t slots() const { return slots_; }
    /** Domain switches observed so far (diagnostics/tests). */
    std::uint64_t domainSwitches() const { return switches_; }

    /**
     * Reconfigure @p core once per trial: pin the static DSB
     * partition, split the LSD replay port, disable the DSB
     * (MITE-only), and install the flush-on-domain-switch hook.
     * Idempotent; called by CovertChannel::transmit() before the
     * first slot. SMT partitioning is a no-op on models with SMT
     * disabled. The hook is uninstalled when this Defense is
     * destroyed.
     */
    void arm(Core &core);

    /**
     * Start one transmission slot: re-salt the keyed set-index
     * mapping at epoch boundaries. (The flush mitigation acts on
     * domain switches, not slots — see arm().)
     */
    void beginSlot(Core &core);

    /** Pad a timing observable (cycles) toward the running worst
     *  case (constant-rate delivery smoothing). */
    double filterTiming(double cycles);

    /** Same padding for a power observable (microjoules per round —
     *  constant-power padding). */
    double filterPower(double microjoules);

    /** Padding for a *rate* observable (e.g. the fingerprint
     *  attacker's IPC), where larger is better: the worst case is
     *  the running minimum, and smoothing pads down toward it. */
    double filterRate(double rate);

    /** @name Warm-state snapshot (sim/snapshot.hh)
     * The per-trial slot/smoothing evolution only — the spec is
     * identity (part of the snapshot key), the RNG belongs to the
     * trial seed, and the armed-core pointer stays with whichever
     * core this Defense is armed on. */
    /// @{
    struct WarmState
    {
        std::uint64_t slots;
        std::uint64_t switches;
        double worstObservable;
        bool haveWorst;
        double worstRate;
        bool haveWorstRate;
    };

    WarmState saveWarmState() const
    {
        return {slots_,     switches_, worstObservable_,
                haveWorst_, worstRate_, haveWorstRate_};
    }

    void loadWarmState(const WarmState &s)
    {
        slots_ = s.slots;
        switches_ = s.switches;
        worstObservable_ = s.worstObservable;
        haveWorst_ = s.haveWorst;
        worstRate_ = s.worstRate;
        haveWorstRate_ = s.haveWorstRate;
    }
    /// @}

  private:
    double padObservable(double value);
    void onDomainSwitch(Core &core);

    DefenseSpec spec_;
    bool inactive_ = true;
    Rng rng_;
    std::uint64_t slots_ = 0;
    std::uint64_t switches_ = 0;
    Core *armedCore_ = nullptr;
    double worstObservable_ = 0.0;
    bool haveWorst_ = false;
    double worstRate_ = 0.0;
    bool haveWorstRate_ = false;
};

} // namespace lf

#endif // LF_DEFENSE_DEFENSE_HH
