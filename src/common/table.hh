/**
 * @file
 * Plain-text table and CSV rendering for the benchmark harness so that
 * every bench binary can print rows in the same shape as the paper's
 * tables.
 */

#ifndef LF_COMMON_TABLE_HH
#define LF_COMMON_TABLE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace lf {

/**
 * A simple column-aligned text table with an optional title.
 *
 * Usage:
 * @code
 *   TextTable t("Table III");
 *   t.setHeader({"Attack", "G6226", "E-2174G"});
 *   t.addRow({"Tr. Rate (Kbps)", "419.67", "851.81"});
 *   std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    void setHeader(std::vector<std::string> header);
    void addRow(std::vector<std::string> row);

    /** Number of data rows added so far. */
    std::size_t numRows() const { return rows_.size(); }

    /** Render with aligned columns and separators. */
    std::string render() const;

    /** Render as CSV (header first when present). */
    std::string renderCsv() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string formatFixed(double value, int decimals = 2);

/** Format a ratio as a percentage string, e.g. 0.0268 -> "2.68%". */
std::string formatPercent(double ratio, int decimals = 2);

/** Format Kbps, e.g. 1410.84 -> "1410.84". */
std::string formatKbps(double kbps);

/** Format a large count with engineering suffix, e.g. 8.4e9 -> "8.4e9". */
std::string formatEng(double value);

} // namespace lf

#endif // LF_COMMON_TABLE_HH
