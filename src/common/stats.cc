#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace lf {

void
OnlineStats::add(double sample)
{
    ++count_;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta *
        static_cast<double>(count_) * static_cast<double>(other.count_) /
        total;
    mean_ += delta * static_cast<double>(other.count_) / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
OnlineStats::reset()
{
    *this = OnlineStats();
}

double
OnlineStats::variance() const
{
    // Population convention (see stats.hh). A single sample has
    // m2_ == 0, so the guard is only about the 0/0 of an empty
    // accumulator — count_ < 2 and count_ == 0 give identical
    // results, but spell it the same way as the batch stddev() guard.
    if (count_ == 0)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), binWidth_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    lf_assert(bins > 0, "histogram needs at least one bin");
    lf_assert(hi > lo, "histogram range [%f, %f) is empty", lo, hi);
}

void
Histogram::add(double sample)
{
    ++total_;
    stats_.add(sample);
    if (sample < lo_) {
        ++underflow_;
    } else if (sample >= hi_) {
        ++overflow_;
    } else {
        auto bin = static_cast<std::size_t>((sample - lo_) / binWidth_);
        bin = std::min(bin, counts_.size() - 1);
        ++counts_[bin];
    }
}

std::size_t
Histogram::binCount(std::size_t bin) const
{
    lf_assert(bin < counts_.size(), "bin %zu out of range", bin);
    return counts_[bin];
}

double
Histogram::binLo(std::size_t bin) const
{
    return lo_ + binWidth_ * static_cast<double>(bin);
}

double
Histogram::binHi(std::size_t bin) const
{
    return binLo(bin) + binWidth_;
}

double
Histogram::density(std::size_t bin) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(binCount(bin)) /
        static_cast<double>(total_);
}

std::string
Histogram::render(std::size_t width) const
{
    std::size_t peak = 1;
    for (auto c : counts_)
        peak = std::max(peak, c);

    std::ostringstream out;
    char label[96];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        const auto bar = static_cast<std::size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(width));
        std::snprintf(label, sizeof(label), "[%10.2f, %10.2f) %8zu |",
                      binLo(i), binHi(i), counts_[i]);
        out << label << std::string(std::max<std::size_t>(bar, 1), '#')
            << '\n';
    }
    if (underflow_)
        out << "underflow: " << underflow_ << '\n';
    if (overflow_)
        out << "overflow: " << overflow_ << '\n';
    return out.str();
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    // Population convention (see stats.hh): divide by n, matching
    // OnlineStats::stddev() over the same samples.
    if (values.empty())
        return 0.0;
    const double m = mean(values);
    double sq = 0.0;
    for (double v : values)
        sq += (v - m) * (v - m);
    return std::sqrt(sq / static_cast<double>(values.size()));
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double
percentile(std::vector<double> values, double pct)
{
    if (values.empty())
        return 0.0;
    lf_assert(pct >= 0.0 && pct <= 100.0, "percentile %f out of range",
              pct);
    std::sort(values.begin(), values.end());
    const auto rank = static_cast<std::size_t>(
        pct / 100.0 * static_cast<double>(values.size() - 1) + 0.5);
    return values[std::min(rank, values.size() - 1)];
}

double
euclideanDistance(const std::vector<double> &a,
                  const std::vector<double> &b)
{
    lf_assert(a.size() == b.size(),
              "euclideanDistance: size mismatch %zu vs %zu", a.size(),
              b.size());
    double sq = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sq += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(sq);
}

double
binaryEntropy(double p)
{
    lf_assert(p >= 0.0 && p <= 1.0, "binaryEntropy(%f) out of [0,1]",
              p);
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double
bscCapacity(double errorRate)
{
    // Edit-distance error rates are occasionally a hair outside [0, 1]
    // in adversarial configs; clamp rather than assert.
    const double p = std::min(1.0, std::max(0.0, errorRate));
    return 1.0 - binaryEntropy(p);
}

} // namespace lf
