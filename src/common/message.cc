#include "common/message.hh"

#include "common/logging.hh"

namespace lf {

const char *
toString(MessagePattern pattern)
{
    switch (pattern) {
      case MessagePattern::AllZeros: return "all-0s";
      case MessagePattern::AllOnes: return "all-1s";
      case MessagePattern::Alternating: return "alternating";
      case MessagePattern::Random: return "random";
    }
    return "?";
}

bool
messagePatternFromString(const std::string &name, MessagePattern &out)
{
    for (MessagePattern pattern : allMessagePatterns()) {
        if (name == toString(pattern)) {
            out = pattern;
            return true;
        }
    }
    return false;
}

std::vector<MessagePattern>
allMessagePatterns()
{
    return {MessagePattern::AllZeros, MessagePattern::AllOnes,
            MessagePattern::Alternating, MessagePattern::Random};
}

std::vector<bool>
makeMessage(MessagePattern pattern, std::size_t bits, Rng &rng)
{
    std::vector<bool> msg(bits);
    for (std::size_t i = 0; i < bits; ++i) {
        switch (pattern) {
          case MessagePattern::AllZeros:
            msg[i] = false;
            break;
          case MessagePattern::AllOnes:
            msg[i] = true;
            break;
          case MessagePattern::Alternating:
            msg[i] = (i % 2) == 1;
            break;
          case MessagePattern::Random:
            msg[i] = rng.chance(0.5);
            break;
        }
    }
    return msg;
}

std::string
toBitString(const std::vector<bool> &bits)
{
    std::string out;
    out.reserve(bits.size());
    for (bool b : bits)
        out.push_back(b ? '1' : '0');
    return out;
}

std::vector<bool>
fromBitString(const std::string &text)
{
    std::vector<bool> bits;
    bits.reserve(text.size());
    for (char c : text) {
        if (c != '0' && c != '1')
            lf_fatal("bit string contains non-bit character '%c'", c);
        bits.push_back(c == '1');
    }
    return bits;
}

std::vector<bool>
textToBits(const std::string &text)
{
    std::vector<bool> bits;
    bits.reserve(text.size() * 8);
    for (unsigned char c : text)
        for (int bit = 7; bit >= 0; --bit)
            bits.push_back((c >> bit) & 1);
    return bits;
}

std::string
bitsToText(const std::vector<bool> &bits)
{
    std::string out;
    const std::size_t bytes = bits.size() / 8;
    out.reserve(bytes);
    for (std::size_t i = 0; i < bytes; ++i) {
        unsigned char c = 0;
        for (int bit = 0; bit < 8; ++bit)
            c = static_cast<unsigned char>((c << 1) | bits[i * 8 + bit]);
        out.push_back(static_cast<char>(c));
    }
    return out;
}

} // namespace lf
