#include "common/types.hh"

namespace lf {

const char *
toString(DeliveryPath path)
{
    switch (path) {
      case DeliveryPath::MITE: return "MITE";
      case DeliveryPath::DSB: return "DSB";
      case DeliveryPath::LSD: return "LSD";
    }
    return "?";
}

} // namespace lf
