#include "common/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace lf {

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size()) {
        lf_panic("table row has %zu cells, header has %zu", row.size(),
                 header_.size());
    }
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    // Compute per-column widths over header and all rows.
    std::size_t columns = header_.size();
    for (const auto &row : rows_)
        columns = std::max(columns, row.size());
    std::vector<std::size_t> widths(columns, 0);
    auto account = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty())
        account(header_);
    for (const auto &row : rows_)
        account(row);

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t i = 0; i < columns; ++i) {
            const std::string &cell = i < row.size() ? row[i] : "";
            line += (i == 0 ? "| " : " ");
            line += cell;
            line += std::string(widths[i] - cell.size(), ' ');
            line += " |";
        }
        return line;
    };

    std::size_t total = 1;
    for (auto w : widths)
        total += w + 3;

    std::ostringstream out;
    const std::string rule(total, '-');
    if (!title_.empty())
        out << title_ << '\n';
    out << rule << '\n';
    if (!header_.empty())
        out << renderRow(header_) << '\n' << rule << '\n';
    for (const auto &row : rows_)
        out << renderRow(row) << '\n';
    out << rule << '\n';
    return out.str();
}

std::string
TextTable::renderCsv() const
{
    auto escape = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string quoted = "\"";
        for (char c : cell) {
            if (c == '"')
                quoted += '"';
            quoted += c;
        }
        quoted += '"';
        return quoted;
    };
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ',';
            out << escape(row[i]);
        }
        out << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatPercent(double ratio, int decimals)
{
    return formatFixed(ratio * 100.0, decimals) + "%";
}

std::string
formatKbps(double kbps)
{
    return formatFixed(kbps, 2);
}

std::string
formatEng(double value)
{
    if (value == 0.0)
        return "0";
    const double expo = std::floor(std::log10(std::fabs(value)));
    const double mant = value / std::pow(10.0, expo);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1fe%d", mant,
                  static_cast<int>(expo));
    return buf;
}

} // namespace lf
