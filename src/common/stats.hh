/**
 * @file
 * Streaming statistics and histograms used by the measurement harness.
 *
 * Variance convention: every variance/stddev in this header —
 * OnlineStats (including after merge()) and the batch helpers below —
 * is the *population* form (divide by n, not n - 1). The harness
 * summarises complete sample sets it generated itself, not samples
 * from a larger population, so the uncorrected estimator is the right
 * one; more importantly, a sweep cell must report the same number
 * whether its trials were folded online, merged across shards, or
 * recomputed from a collected vector. Empty and single-sample inputs
 * yield 0.
 */

#ifndef LF_COMMON_STATS_HH
#define LF_COMMON_STATS_HH

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace lf {

/**
 * Online mean / variance / extrema accumulator (Welford's algorithm).
 */
class OnlineStats
{
  public:
    /** Add one sample. */
    void add(double sample);

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats &other);

    /** Remove all samples. */
    void reset();

    std::size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance (see the file comment; 0 for count < 2). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bin histogram over a [lo, hi) range with under/overflow bins.
 *
 * Used to regenerate the timing (Fig. 2) and power (Fig. 9) histograms
 * from the paper; render() produces an ASCII density plot.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first regular bin.
     * @param hi Upper edge of the last regular bin.
     * @param bins Number of regular bins (> 0).
     */
    Histogram(double lo, double hi, std::size_t bins);

    void add(double sample);

    std::size_t totalCount() const { return total_; }
    std::size_t binCount(std::size_t bin) const;
    std::size_t underflow() const { return underflow_; }
    std::size_t overflow() const { return overflow_; }
    std::size_t numBins() const { return counts_.size(); }
    double binLo(std::size_t bin) const;
    double binHi(std::size_t bin) const;

    /** Fraction of samples in a bin (0 when empty). */
    double density(std::size_t bin) const;

    /** Sample mean of all added values (including clamped ones). */
    double mean() const { return stats_.mean(); }
    const OnlineStats &stats() const { return stats_; }

    /**
     * ASCII rendering, one line per non-empty bin:
     * "[lo, hi) count |#####".
     * @param width Width in characters of the largest bar.
     */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    double binWidth_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
    OnlineStats stats_;
};

/** Mean of a vector (0 for empty input). */
double mean(const std::vector<double> &values);

/** Population standard deviation of a vector (0 for size < 2).
 *  Matches OnlineStats::stddev() over the same samples. */
double stddev(const std::vector<double> &values);

/** Median (averaged middle pair for even sizes; 0 for empty). */
double median(std::vector<double> values);

/** Percentile in [0, 100] via nearest-rank (0 for empty). */
double percentile(std::vector<double> values, double pct);

/** Euclidean distance between two equal-length traces. */
double euclideanDistance(const std::vector<double> &a,
                         const std::vector<double> &b);

/** Binary entropy H2(p) in bits; 0 at p = 0 or 1. @p p in [0, 1]. */
double binaryEntropy(double p);

/**
 * Shannon capacity of a binary symmetric channel with crossover
 * probability @p errorRate, as a fraction of the raw bit rate:
 * 1 - H2(p). Symmetric around 0.5 (a channel that always flips is as
 * good as a perfect one), 0 at p = 0.5.
 */
double bscCapacity(double errorRate);

} // namespace lf

#endif // LF_COMMON_STATS_HH
