/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (timing noise, RAPL jitter,
 * random messages, workload phase lengths) draws from an explicitly
 * seeded Rng so that experiments are exactly reproducible run-to-run.
 * The generator is xoshiro256** seeded through splitmix64.
 */

#ifndef LF_COMMON_RNG_HH
#define LF_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace lf {

/**
 * One splitmix64 step for input @p z: increment by the golden-gamma
 * constant, then mix. The canonical stateless seed-derivation
 * primitive — the Rng seed expansion and the trial/cell seed chains
 * in src/run all derive through this one function, so the
 * decorrelation guarantees stay in lockstep.
 */
std::uint64_t splitmix64(std::uint64_t z);

/**
 * Raw 64-bit values drawn by this thread so far, across every Rng
 * instance. All simulator nondeterminism funnels through Rng::next(),
 * so a zero delta across a code region proves the region was
 * RNG-independent — the warm-snapshot cache uses exactly this
 * tripwire to decide whether a calibration preamble may be reused
 * for trials with different seeds (src/sim/snapshot.hh).
 */
std::uint64_t rngThreadDraws();

/** Deterministic xoshiro256** generator with convenience draws. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x1ea4'f407'e4d5'c0deULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Standard normal draw (Box–Muller, cached second value). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Fork a decorrelated child generator (for sub-components). */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state_;
    bool hasCachedGaussian_ = false;
    double cachedGaussian_ = 0.0;
};

} // namespace lf

#endif // LF_COMMON_RNG_HH
