#include "common/logging.hh"

#include <cstdarg>
#include <cstring>
#include <vector>

namespace lf {

bool verboseLogging = true;

namespace {

/** -1 until the level is first needed; then a LogLevel value. An env
 *  var is process state, so one lazy parse is enough. */
int g_logLevel = -1;

int
parseEnvLevel()
{
    const char *env = std::getenv("LF_LOG");
    if (env == nullptr)
        return static_cast<int>(LogLevel::Info);
    if (std::strcmp(env, "error") == 0)
        return static_cast<int>(LogLevel::Error);
    if (std::strcmp(env, "warn") == 0)
        return static_cast<int>(LogLevel::Warn);
    if (std::strcmp(env, "info") == 0)
        return static_cast<int>(LogLevel::Info);
    if (std::strcmp(env, "debug") == 0)
        return static_cast<int>(LogLevel::Debug);
    std::fprintf(stderr,
                 "warn: unknown LF_LOG level \"%s\""
                 " (want error|warn|info|debug); using info\n",
                 env);
    return static_cast<int>(LogLevel::Info);
}

} // namespace

LogLevel
logLevel()
{
    if (g_logLevel < 0)
        g_logLevel = parseEnvLevel();
    return static_cast<LogLevel>(g_logLevel);
}

void
setLogLevel(LogLevel level)
{
    g_logLevel = static_cast<int>(level);
}

namespace detail {

std::string
formatString(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return fmt;
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
terminateWith(const char *kind, const std::string &msg, const char *file,
              int line, bool abortRun)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    if (abortRun)
        std::abort();
    std::exit(1);
}

void
emit(LogLevel level, const char *kind, const std::string &msg)
{
    if (level > logLevel())
        return;
    if (level != LogLevel::Error && !verboseLogging)
        return;
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
}

} // namespace detail

} // namespace lf
