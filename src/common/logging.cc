#include "common/logging.hh"

#include <cstdarg>
#include <vector>

namespace lf {

bool verboseLogging = true;

namespace detail {

std::string
formatString(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return fmt;
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
terminateWith(const char *kind, const std::string &msg, const char *file,
              int line, bool abortRun)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    if (abortRun)
        std::abort();
    std::exit(1);
}

void
emit(const char *kind, const std::string &msg)
{
    if (!verboseLogging)
        return;
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
}

} // namespace detail

} // namespace lf
