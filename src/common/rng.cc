#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace lf {

namespace {

std::uint64_t
rotl(std::uint64_t v, int k)
{
    return (v << k) | (v >> (64 - k));
}

thread_local std::uint64_t t_rngDraws = 0;

} // namespace

std::uint64_t
rngThreadDraws()
{
    return t_rngDraws;
}

std::uint64_t
splitmix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    // Stream the stateless step: output_k = splitmix64(seed + k*gamma),
    // bit-identical to the classic stateful splitmix64 generator.
    std::uint64_t s = seed;
    for (auto &word : state_) {
        word = splitmix64(s);
        s += 0x9e3779b97f4a7c15ULL;
    }
}

std::uint64_t
Rng::next()
{
    ++t_rngDraws;
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    lf_assert(lo <= hi, "bad uniform range [%f, %f)", lo, hi);
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    lf_assert(lo <= hi, "bad uniformInt range");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + v % span;
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedGaussian_ = radius * std::sin(angle);
    hasCachedGaussian_ = true;
    return radius * std::cos(angle);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace lf
