/**
 * @file
 * Fundamental scalar types and enums shared by every module.
 */

#ifndef LF_COMMON_TYPES_HH
#define LF_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace lf {

/** A virtual (instruction) address in the simulated machine. */
using Addr = std::uint64_t;

/** A count of simulated core clock cycles. */
using Cycles = std::uint64_t;

/** Simulated energy in microjoules. */
using MicroJoules = double;

/** Simulated time in picoseconds (cycles / frequency). */
using Picoseconds = std::uint64_t;

/** Hardware thread identifier within one physical core (0 or 1). */
using ThreadId = int;

constexpr ThreadId kInvalidThread = -1;

/**
 * The micro-op delivery path taken through the processor frontend.
 *
 * Every retired micro-op is attributed to exactly one of these paths,
 * mirroring the MITE / DSB / LSD distinction the paper exploits.
 */
enum class DeliveryPath : std::uint8_t {
    MITE = 0,  //!< Legacy decode pipeline (fetch + predecode + decode).
    DSB = 1,   //!< Decoded Stream Buffer (micro-op cache) hit.
    LSD = 2,   //!< Loop Stream Detector replay from the IDQ.
};

/** Human-readable name for a DeliveryPath. */
const char *toString(DeliveryPath path);

/** Number of distinct delivery paths. */
constexpr int kNumDeliveryPaths = 3;

} // namespace lf

#endif // LF_COMMON_TYPES_HH
