/**
 * @file
 * Covert-channel message patterns (Table II of the paper) and
 * bit-string helpers.
 */

#ifndef LF_COMMON_MESSAGE_HH
#define LF_COMMON_MESSAGE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace lf {

/** The four message patterns evaluated in Table II. */
enum class MessagePattern {
    AllZeros,
    AllOnes,
    Alternating,  //!< 0,1,0,1,...
    Random,
};

const char *toString(MessagePattern pattern);

/**
 * Parse a pattern name as printed by toString() ("all-0s", "all-1s",
 * "alternating", "random").
 * @return true and set @p out on success; false on an unknown name.
 */
bool messagePatternFromString(const std::string &name,
                              MessagePattern &out);

/** All four patterns, in table order. */
std::vector<MessagePattern> allMessagePatterns();

/**
 * Generate a message of @p bits bits following @p pattern.
 * @param rng Only consulted for MessagePattern::Random.
 */
std::vector<bool> makeMessage(MessagePattern pattern, std::size_t bits,
                              Rng &rng);

/** "0"/"1" string rendering of a bit vector. */
std::string toBitString(const std::vector<bool> &bits);

/** Parse a "0"/"1" string; other characters are a fatal user error. */
std::vector<bool> fromBitString(const std::string &text);

/** Pack ASCII text into bits, MSB first per byte. */
std::vector<bool> textToBits(const std::string &text);

/** Unpack bits (MSB first per byte) back into text; truncates tail. */
std::string bitsToText(const std::vector<bool> &bits);

} // namespace lf

#endif // LF_COMMON_MESSAGE_HH
