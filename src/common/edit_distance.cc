#include "common/edit_distance.hh"

#include <algorithm>
#include <numeric>

namespace lf {

namespace {

template <typename Seq>
std::size_t
wagnerFischer(const Seq &a, const Seq &b)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    if (n == 0)
        return m;
    if (m == 0)
        return n;

    std::vector<std::size_t> prev(m + 1);
    std::vector<std::size_t> curr(m + 1);
    std::iota(prev.begin(), prev.end(), std::size_t{0});

    for (std::size_t i = 1; i <= n; ++i) {
        curr[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, sub});
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

} // namespace

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    return wagnerFischer(a, b);
}

std::size_t
editDistance(const std::vector<bool> &a, const std::vector<bool> &b)
{
    return wagnerFischer(a, b);
}

double
bitErrorRate(const std::vector<bool> &sent,
             const std::vector<bool> &received)
{
    if (sent.empty())
        return 0.0;
    return static_cast<double>(editDistance(sent, received)) /
        static_cast<double>(sent.size());
}

} // namespace lf
