/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  — an internal invariant of the simulator was violated (a bug
 *            in this library); aborts.
 * fatal()  — the user configured something impossible; exits cleanly.
 * warn()   — something is off but the simulation can continue.
 * inform() — plain status output.
 */

#ifndef LF_COMMON_LOGGING_HH
#define LF_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace lf {

/** Global verbosity switch; set false to silence inform()/warn(). */
extern bool verboseLogging;

namespace detail {

[[noreturn]] void terminateWith(const char *kind, const std::string &msg,
                                const char *file, int line, bool abortRun);

void emit(const char *kind, const std::string &msg);

std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace lf

/** Abort: simulator-internal invariant violated. */
#define lf_panic(...)                                                    \
    ::lf::detail::terminateWith("panic", ::lf::detail::formatString(     \
        __VA_ARGS__), __FILE__, __LINE__, true)

/** Exit(1): user error (bad configuration or arguments). */
#define lf_fatal(...)                                                    \
    ::lf::detail::terminateWith("fatal", ::lf::detail::formatString(     \
        __VA_ARGS__), __FILE__, __LINE__, false)

/** Panic when a condition does not hold. */
#define lf_assert(cond, ...)                                             \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::lf::detail::terminateWith("panic: assert(" #cond ")",      \
                ::lf::detail::formatString(__VA_ARGS__),                 \
                __FILE__, __LINE__, true);                               \
        }                                                                \
    } while (0)

#define lf_warn(...)                                                     \
    ::lf::detail::emit("warn", ::lf::detail::formatString(__VA_ARGS__))

#define lf_inform(...)                                                   \
    ::lf::detail::emit("info", ::lf::detail::formatString(__VA_ARGS__))

#endif // LF_COMMON_LOGGING_HH
