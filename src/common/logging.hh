/**
 * @file
 * gem5-style status and error reporting helpers, with leveled output.
 *
 * panic()  — an internal invariant of the simulator was violated (a bug
 *            in this library); aborts.
 * fatal()  — the user configured something impossible; exits cleanly.
 * error()  — a recoverable operational failure (e.g. an unwritable
 *            output file); always printed.
 * warn()   — something is off but the simulation can continue.
 * inform() — plain status output.
 * debug()  — chatty diagnostics, off by default.
 *
 * Severity is filtered by a process-wide level: messages above the
 * active level are suppressed. The level comes from the `LF_LOG`
 * environment variable ("error", "warn", "info", or "debug"; default
 * "info") the first time anything is emitted, and can be overridden
 * programmatically with setLogLevel(). The legacy `verboseLogging`
 * switch still silences inform()/warn() (CLIs' --quiet), but never
 * error().
 */

#ifndef LF_COMMON_LOGGING_HH
#define LF_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace lf {

/** Global verbosity switch; set false to silence inform()/warn()/
 *  debug() regardless of the log level (error() stays on). */
extern bool verboseLogging;

/** Severity threshold: a message prints only when its level is <=
 *  the active one. Values are ordered, Error lowest. */
enum class LogLevel
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/** Active threshold: setLogLevel() if called, else parsed once from
 *  the LF_LOG environment variable, else Info. */
LogLevel logLevel();

/** Override the threshold (takes precedence over LF_LOG). */
void setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void terminateWith(const char *kind, const std::string &msg,
                                const char *file, int line, bool abortRun);

void emit(LogLevel level, const char *kind, const std::string &msg);

std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace lf

/** Abort: simulator-internal invariant violated. */
#define lf_panic(...)                                                    \
    ::lf::detail::terminateWith("panic", ::lf::detail::formatString(     \
        __VA_ARGS__), __FILE__, __LINE__, true)

/** Exit(1): user error (bad configuration or arguments). */
#define lf_fatal(...)                                                    \
    ::lf::detail::terminateWith("fatal", ::lf::detail::formatString(     \
        __VA_ARGS__), __FILE__, __LINE__, false)

/** Panic when a condition does not hold. */
#define lf_assert(cond, ...)                                             \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::lf::detail::terminateWith("panic: assert(" #cond ")",      \
                ::lf::detail::formatString(__VA_ARGS__),                 \
                __FILE__, __LINE__, true);                               \
        }                                                                \
    } while (0)

/** Recoverable operational failure; prints at every level. */
#define lf_error(...)                                                    \
    ::lf::detail::emit(::lf::LogLevel::Error, "error",                   \
        ::lf::detail::formatString(__VA_ARGS__))

#define lf_warn(...)                                                     \
    ::lf::detail::emit(::lf::LogLevel::Warn, "warn",                     \
        ::lf::detail::formatString(__VA_ARGS__))

#define lf_inform(...)                                                   \
    ::lf::detail::emit(::lf::LogLevel::Info, "info",                     \
        ::lf::detail::formatString(__VA_ARGS__))

/** Chatty diagnostics; needs LF_LOG=debug (or setLogLevel). */
#define lf_debug(...)                                                    \
    ::lf::detail::emit(::lf::LogLevel::Debug, "debug",                   \
        ::lf::detail::formatString(__VA_ARGS__))

#endif // LF_COMMON_LOGGING_HH
