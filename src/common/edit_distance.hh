/**
 * @file
 * Wagner–Fischer edit distance, used (as in the paper, Sec. VI) to
 * compute covert-channel error rates between sent and received bit
 * strings.
 */

#ifndef LF_COMMON_EDIT_DISTANCE_HH
#define LF_COMMON_EDIT_DISTANCE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace lf {

/**
 * Levenshtein edit distance (unit costs) between two strings via the
 * Wagner–Fischer dynamic program with a rolling row.
 */
std::size_t editDistance(const std::string &a, const std::string &b);

/** Edit distance over bit vectors. */
std::size_t editDistance(const std::vector<bool> &a,
                         const std::vector<bool> &b);

/**
 * Channel error rate: editDistance(sent, received) / |sent|.
 * Returns 0 for an empty sent message.
 */
double bitErrorRate(const std::vector<bool> &sent,
                    const std::vector<bool> &received);

} // namespace lf

#endif // LF_COMMON_EDIT_DISTANCE_HH
