/**
 * @file
 * L1 data cache with a two-level backing-store timing model.
 *
 * Used only by the Spectre baseline channels of Table VII (MEM
 * Flush+Reload, L1D Flush+Reload, L1D LRU). A miss is served from the
 * L2 unless the line was explicitly clflush'd, in which case it comes
 * from memory — enough fidelity to separate the three baselines'
 * timing and L1 miss-rate behaviour.
 */

#ifndef LF_BACKEND_L1D_CACHE_HH
#define LF_BACKEND_L1D_CACHE_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace lf {

struct L1dParams
{
    int sets = 64;
    int ways = 8;
    int lineBytes = 64;
    Cycles hitLatency = 4;
    Cycles l2Latency = 40;
    Cycles memLatency = 200;
};

class L1dCache
{
  public:
    explicit L1dCache(const L1dParams &params = {});

    struct AccessResult
    {
        bool hit = false;
        Cycles latency = 0;
    };

    /** Load the line containing @p addr (fills on miss). */
    AccessResult load(Addr addr);

    /** clflush: invalidate everywhere; next load pays memory latency. */
    void clflush(Addr addr);

    /** True if the line is L1-resident. */
    bool contains(Addr addr) const;

    /**
     * Way position of the line in LRU order (0 = LRU, ways-1 = MRU),
     * or -1 when not resident. Exposes the LRU state the L1D-LRU
     * covert channel of [Xiong & Szefer, HPCA'20] encodes into.
     */
    int lruRank(Addr addr) const;

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    double missRate() const;
    void resetStats();

    int numWays() const { return params_.ways; }
    int lineBytes() const { return params_.lineBytes; }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lru = 0;
    };

    int setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr lineAddr(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    L1dParams params_;
    std::vector<Line> lines_;
    std::unordered_set<Addr> flushedToMem_;
    std::uint64_t lruClock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace lf

#endif // LF_BACKEND_L1D_CACHE_HH
