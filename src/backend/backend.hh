/**
 * @file
 * Simplified execution backend.
 *
 * The paper's workloads are deliberately frontend-bound (Sec. IV-D:
 * the mix blocks avoid loads, stores and port contention), so the
 * backend model is a shared in-order consumer: it drains up to
 * issueWidth micro-ops per cycle from the two threads' IDQs in
 * round-robin order and retires them immediately. Per-thread retired
 * instruction counts come from the IDQ's end-of-instruction markers.
 */

#ifndef LF_BACKEND_BACKEND_HH
#define LF_BACKEND_BACKEND_HH

#include <array>

#include "common/types.hh"
#include "frontend/engine.hh"

namespace lf {

class Backend
{
  public:
    explicit Backend(FrontendEngine *engine);

    /** Consume micro-ops for one cycle. */
    void tick();

    /**
     * Account for @p cycles ticks in which both IDQs were empty (the
     * caller's claim): no micro-op moves, but the round-robin start
     * still alternates every cycle, so parity must advance for the
     * first post-skip contended cycle to pick the same thread a
     * ticked execution would.
     */
    void skip(Cycles cycles)
    {
        if (cycles & 1)
            rrStart_ ^= 1;
    }

    /** Back to the pristine post-construction state (the engine
     *  pointer is kept; its params are re-read for the issue width). */
    void reset();

    /** Cycle at which the thread last retired a micro-op. */
    Cycles lastRetireCycle(ThreadId tid) const;

    /** @name Retire-slot accounting (observability)
     * Each ticked cycle offers issueWidth retire slots; slotsUsed is
     * how many actually carried a micro-op, so utilisation is
     * retireSlotsUsed / (retireSlotCycles * issueWidth). Skipped
     * (fast-forwarded) cycles retire nothing and are not counted
     * here — see FrontendEngine::fastForwardedCycles(). */
    /// @{
    std::uint64_t retireSlotCycles() const { return tickCycles_; }
    std::uint64_t retireSlotsUsed() const { return slotsUsed_; }
    /// @}

    /** @name Warm-state snapshot (sim/snapshot.hh)
     * The engine pointer and issue width are identity/config, not
     * state, and are not part of the image. */
    /// @{
    struct SavedState
    {
        std::array<Cycles, FrontendEngine::kNumThreads> lastRetire;
        int rrStart;
        std::uint64_t tickCycles;
        std::uint64_t slotsUsed;
    };

    SavedState saveState() const
    {
        return {lastRetire_, rrStart_, tickCycles_, slotsUsed_};
    }

    void loadState(const SavedState &s)
    {
        lastRetire_ = s.lastRetire;
        rrStart_ = s.rrStart;
        tickCycles_ = s.tickCycles;
        slotsUsed_ = s.slotsUsed;
    }
    /// @}

  private:
    FrontendEngine *engine_;
    int issueWidth_;
    std::array<Cycles, FrontendEngine::kNumThreads> lastRetire_{};
    int rrStart_ = 0;
    std::uint64_t tickCycles_ = 0;
    std::uint64_t slotsUsed_ = 0;
};

} // namespace lf

#endif // LF_BACKEND_BACKEND_HH
