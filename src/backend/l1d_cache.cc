#include "backend/l1d_cache.hh"

#include "common/logging.hh"

namespace lf {

L1dCache::L1dCache(const L1dParams &params)
    : params_(params),
      lines_(static_cast<std::size_t>(params.sets) *
             static_cast<std::size_t>(params.ways))
{
    lf_assert(params_.sets > 0 && (params_.sets & (params_.sets - 1)) == 0,
              "L1D sets must be a power of two");
    lf_assert(params_.lineBytes > 0 &&
              (params_.lineBytes & (params_.lineBytes - 1)) == 0,
              "L1D line size must be a power of two");
}

int
L1dCache::setOf(Addr addr) const
{
    return static_cast<int>(
        (addr / static_cast<Addr>(params_.lineBytes)) &
        static_cast<Addr>(params_.sets - 1));
}

Addr
L1dCache::tagOf(Addr addr) const
{
    return addr / static_cast<Addr>(params_.lineBytes) /
        static_cast<Addr>(params_.sets);
}

Addr
L1dCache::lineAddr(Addr addr) const
{
    return addr & ~static_cast<Addr>(params_.lineBytes - 1);
}

L1dCache::Line *
L1dCache::findLine(Addr addr)
{
    const int set = setOf(addr);
    const Addr tag = tagOf(addr);
    for (int w = 0; w < params_.ways; ++w) {
        Line &line =
            lines_[static_cast<std::size_t>(set * params_.ways + w)];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

const L1dCache::Line *
L1dCache::findLine(Addr addr) const
{
    return const_cast<L1dCache *>(this)->findLine(addr);
}

L1dCache::AccessResult
L1dCache::load(Addr addr)
{
    ++accesses_;
    if (Line *line = findLine(addr)) {
        line->lru = ++lruClock_;
        return {true, params_.hitLatency};
    }
    ++misses_;
    const Cycles fill_latency =
        flushedToMem_.count(lineAddr(addr)) ? params_.memLatency
                                            : params_.l2Latency;
    flushedToMem_.erase(lineAddr(addr));

    const int set = setOf(addr);
    Line *victim = nullptr;
    for (int w = 0; w < params_.ways; ++w) {
        Line &line =
            lines_[static_cast<std::size_t>(set * params_.ways + w)];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lru < victim->lru)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->lru = ++lruClock_;
    return {false, fill_latency};
}

void
L1dCache::clflush(Addr addr)
{
    if (Line *line = findLine(addr))
        line->valid = false;
    flushedToMem_.insert(lineAddr(addr));
}

bool
L1dCache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

int
L1dCache::lruRank(Addr addr) const
{
    const Line *target = findLine(addr);
    if (!target)
        return -1;
    const int set = setOf(addr);
    int rank = 0;
    for (int w = 0; w < params_.ways; ++w) {
        const Line &line =
            lines_[static_cast<std::size_t>(set * params_.ways + w)];
        if (&line != target && line.valid && line.lru < target->lru)
            ++rank;
    }
    return rank;
}

double
L1dCache::missRate() const
{
    if (accesses_ == 0)
        return 0.0;
    return static_cast<double>(misses_) / static_cast<double>(accesses_);
}

void
L1dCache::resetStats()
{
    accesses_ = 0;
    misses_ = 0;
}

} // namespace lf
