#include "backend/backend.hh"

namespace lf {

Backend::Backend(FrontendEngine *engine)
    : engine_(engine), issueWidth_(engine->params().issueWidth)
{
}

void
Backend::reset()
{
    issueWidth_ = engine_->params().issueWidth;
    lastRetire_.fill(0);
    rrStart_ = 0;
}

void
Backend::tick()
{
    int budget = issueWidth_;
    bool progress = true;
    while (budget > 0 && progress) {
        progress = false;
        for (int i = 0; i < FrontendEngine::kNumThreads && budget > 0;
             ++i) {
            const int tid = (rrStart_ + i) % FrontendEngine::kNumThreads;
            std::uint64_t insts = 0;
            if (engine_->popUops(tid, 1, insts) > 0) {
                --budget;
                progress = true;
                lastRetire_[static_cast<std::size_t>(tid)] =
                    engine_->cycle();
            }
        }
    }
    rrStart_ = (rrStart_ + 1) % FrontendEngine::kNumThreads;
}

Cycles
Backend::lastRetireCycle(ThreadId tid) const
{
    return lastRetire_[static_cast<std::size_t>(tid)];
}

} // namespace lf
