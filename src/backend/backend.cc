#include "backend/backend.hh"

#include <algorithm>
#include <cstdint>

namespace lf {

Backend::Backend(FrontendEngine *engine)
    : engine_(engine), issueWidth_(engine->params().issueWidth)
{
}

void
Backend::reset()
{
    issueWidth_ = engine_->params().issueWidth;
    lastRetire_.fill(0);
    rrStart_ = 0;
    tickCycles_ = 0;
    slotsUsed_ = 0;
}

void
Backend::tick()
{
    // Round-robin drain, computed arithmetically: the reference
    // behaviour pops one micro-op alternately from each non-empty IDQ
    // starting at rrStart_ until the issue budget or both queues run
    // dry. Popping from distinct queues commutes, so the per-thread
    // *counts* of that interleaving fully determine the outcome —
    // while both queues are non-empty the budget splits evenly (the
    // rrStart_ thread taking the odd micro-op), and whatever is left
    // drains from the longer queue. Computing the counts and popping
    // each thread once keeps the per-cycle cost at two bulk pops
    // instead of 2*issueWidth virtual-call round trips.
    static_assert(FrontendEngine::kNumThreads == 2,
                  "allocation below assumes two SMT threads");
    const int first = rrStart_;
    const int second = first ^ 1;
    const int a = engine_->idqOccupancy(first);
    const int b = engine_->idqOccupancy(second);
    int pops_first = 0;
    int pops_second = 0;
    const int paired = a < b ? a : b;
    if (issueWidth_ <= 2 * paired) {
        pops_first = (issueWidth_ + 1) / 2;
        pops_second = issueWidth_ / 2;
    } else {
        const int rest = issueWidth_ - 2 * paired;
        pops_first = paired + std::min(a - paired, rest);
        pops_second = paired + std::min(b - paired, rest);
    }
    std::uint64_t insts = 0;
    ++tickCycles_;
    if (pops_first > 0) {
        const int got = engine_->popUops(first, pops_first, insts);
        if (got > 0)
            lastRetire_[static_cast<std::size_t>(first)] =
                engine_->cycle();
        slotsUsed_ += static_cast<std::uint64_t>(got);
    }
    if (pops_second > 0) {
        const int got = engine_->popUops(second, pops_second, insts);
        if (got > 0)
            lastRetire_[static_cast<std::size_t>(second)] =
                engine_->cycle();
        slotsUsed_ += static_cast<std::uint64_t>(got);
    }
    rrStart_ = (rrStart_ + 1) % FrontendEngine::kNumThreads;
}

Cycles
Backend::lastRetireCycle(ThreadId tid) const
{
    return lastRetire_[static_cast<std::size_t>(tid)];
}

} // namespace lf
