/**
 * @file
 * Small helpers for driving chain programs on a Core.
 */

#ifndef LF_SIM_EXECUTOR_HH
#define LF_SIM_EXECUTOR_HH

#include <cstdint>

#include "common/types.hh"
#include "frontend/prepared.hh"
#include "isa/mix_block.hh"
#include "sim/core.hh"

namespace lf {

/**
 * Run @p iters passes over a looping chain bound to @p tid and return
 * the elapsed cycles. The chain must already be set as the thread's
 * program.
 */
inline Cycles
runLoopIters(Core &core, ThreadId tid, const ChainProgram &chain,
             std::uint64_t iters)
{
    return core.runUntilRetired(tid, iters * chain.instsPerIteration);
}

inline Cycles
runLoopIters(Core &core, ThreadId tid, const PreparedChain &prepared,
             std::uint64_t iters)
{
    return runLoopIters(core, tid, prepared.chain, iters);
}

/**
 * Timed variant: measured duration (cycles) including the Core's TSC
 * noise model.
 */
inline double
timedLoopIters(Core &core, ThreadId tid, const ChainProgram &chain,
               std::uint64_t iters)
{
    return core.timedRun(tid, iters * chain.instsPerIteration);
}

inline double
timedLoopIters(Core &core, ThreadId tid, const PreparedChain &prepared,
               std::uint64_t iters)
{
    return timedLoopIters(core, tid, prepared.chain, iters);
}

/**
 * Bind the chain, run @p warmup_iters to reach steady state, then run
 * @p iters more and return the per-iteration average of the steady
 * phase (no noise applied — used by calibration code and tests).
 */
inline double
steadyCyclesPerIter(Core &core, ThreadId tid, const ChainProgram &chain,
                    std::uint64_t warmup_iters, std::uint64_t iters)
{
    core.setProgram(tid, &chain.program);
    runLoopIters(core, tid, chain, warmup_iters);
    const Cycles elapsed = runLoopIters(core, tid, chain, iters);
    return static_cast<double>(elapsed) / static_cast<double>(iters);
}

inline double
steadyCyclesPerIter(Core &core, ThreadId tid,
                    const PreparedChain &prepared,
                    std::uint64_t warmup_iters, std::uint64_t iters)
{
    core.setProgram(tid, prepared);
    runLoopIters(core, tid, prepared, warmup_iters);
    const Cycles elapsed = runLoopIters(core, tid, prepared, iters);
    return static_cast<double>(elapsed) / static_cast<double>(iters);
}

} // namespace lf

#endif // LF_SIM_EXECUTOR_HH
