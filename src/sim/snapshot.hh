/**
 * @file
 * Warm-state snapshot cache: amortize per-trial calibration across
 * the trials of one sweep cell.
 *
 * Every CovertChannel::transmit() replays the Sec. VI-B calibration
 * preamble from a cold Core::reset(), yet all trials of a cell share
 * one resolved config — and under a quiet environment the whole
 * warmup + preamble trajectory is bit-identical across seeds. The
 * PreparedChain cache (frontend/prepared.hh) already shares the
 * *program* side of that repeated work; this module shares the
 * *state* side: after the first trial of a cell calibrates, its full
 * deterministic core state (frontend pipeline/DSB/L1i/BPU/LSD state,
 * backend, RAPL energy state, environment/defense slot state) plus
 * the calibrated decoding reference is captured into an immutable
 * WarmSnapshot, and later trials of the same cell restore it and run
 * straight into the message phase.
 *
 * Correctness is never config-dependent guesswork:
 *
 *  - The RNG-draw tripwire (rngThreadDraws()): a snapshot is captured
 *    only when the whole setup + warmup + preamble consumed zero RNG
 *    draws on the worker thread — which proves the post-calibration
 *    state is independent of the trial seed. Noisy environments,
 *    stochastic defenses and non-zero model noise all trip it, and
 *    those cells transparently fall back to the cold path (a negative
 *    cache entry remembers the verdict).
 *  - Pointer pinning: an engine image holds pointers into shared
 *    PreparedChains; capture fails (and the cell bypasses) unless
 *    every bound decode is owned by the prepared-chain cache, and the
 *    snapshot then pins those chains alive for its own lifetime.
 *  - RNG/seed state is never captured or restored: per-trial seeds
 *    stay per-trial, and the tripwire guarantees the restored state
 *    never depended on one.
 *
 * The cache is process-wide and shared across runner workers (same
 * build-then-publish pattern as the prepared cache); snapshot-on vs
 * snapshot-off results are bit-identical at any thread count — the
 * registry-wide contract tests/run/test_streaming.cc enforces.
 */

#ifndef LF_SIM_SNAPSHOT_HH
#define LF_SIM_SNAPSHOT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/channel.hh"
#include "defense/defense.hh"
#include "frontend/prepared.hh"
#include "noise/environment.hh"
#include "sim/core.hh"

namespace lf {

class TrialContext;

/** One cell's post-calibration machine state. Immutable once
 *  published; shared across worker threads by shared_ptr. */
struct WarmSnapshot
{
    Core::WarmState core;
    Environment::WarmState environment;
    Defense::WarmState defense;
    CovertChannel::Calibration calibration;
    /** Keeps the engine image's interior pointers (programs, chunk
     *  tables, chunk successor links) alive even if the prepared
     *  cache is cleared underneath us. */
    std::vector<PreparedChainPtr> pins;
};

using WarmSnapshotPtr = std::shared_ptr<const WarmSnapshot>;

/** @name Cache switch (test/bench instrumentation)
 * Process-global, default on; flip only while no runner is active.
 * Snapshots additionally require both prepared-cache layers
 * (frontend/prepared.hh) to be enabled — a per-bind local decode
 * cannot be pinned. */
/// @{
void setSnapshotCacheEnabled(bool on);
bool snapshotCacheEnabled();

/** True when snapshots can engage at all right now: the snapshot
 *  switch and both prepared-cache layers are on. */
bool warmSnapshotsApplicable();
/// @}

/** What lookupWarmSnapshot() found for a cell key. */
enum class SnapshotOutcome
{
    Hit,      //!< Snapshot returned; restore instead of calibrating.
    Miss,     //!< Unknown cell: calibrate, then publish or mark bypass.
    Bypass,   //!< Known non-snapshottable cell: always calibrate.
    Disabled, //!< Cache switched off (or prepared caches off).
};

/**
 * Look up the snapshot for cell @p key. On Hit, @p out is set to the
 * shared snapshot. Hits/misses/bypasses are tallied process-wide and
 * thread-locally (snapshotCache*() below); Disabled tallies nothing.
 */
SnapshotOutcome lookupWarmSnapshot(const std::string &key,
                                   WarmSnapshotPtr &out);

/** Publish the first-calibrator's snapshot for @p key. Racing
 *  publishers are benign: the tripwire guarantees every candidate is
 *  identical, and the first one in wins. */
void publishWarmSnapshot(const std::string &key, WarmSnapshotPtr snapshot);

/** Record that @p key's calibration is not snapshottable (RNG draws
 *  or unpinnable decode): later trials get SnapshotOutcome::Bypass
 *  without re-deriving the verdict. */
void markWarmSnapshotBypass(const std::string &key);

/**
 * Capture the context's post-calibration state, or null when a bound
 * thread's decode is not owned by the prepared-chain cache (the
 * caller should then mark the cell bypassed). The caller must have
 * verified @p calib.rngUntouched first.
 */
WarmSnapshotPtr captureWarmSnapshot(TrialContext &ctx,
                                    const CovertChannel::Calibration &calib);

/** Overwrite the context's core/environment/defense state with
 *  @p snap. Precondition: the context was resolved for the same cell
 *  key and the channel has run prepareMachine() (setup + defense
 *  arm), so restore lands on a configured machine. */
void restoreWarmSnapshot(TrialContext &ctx, const WarmSnapshot &snap);

/** @name Statistics and maintenance
 * Hit = trial served by restore; miss = first sight of a cell (the
 * trial calibrates and tries to publish); bypass = known
 * non-snapshottable cell calibrating cold. Thread-local variants
 * attribute traffic to a single trial (runner workers execute trials
 * serially), mirroring the prepared-cache accounting. */
/// @{
std::uint64_t snapshotCacheHits();
std::uint64_t snapshotCacheMisses();
std::uint64_t snapshotCacheBypasses();
std::uint64_t snapshotCacheThreadHits();
std::uint64_t snapshotCacheThreadMisses();
std::uint64_t snapshotCacheThreadBypasses();

/** Entries currently cached (positive and negative). */
std::size_t snapshotCacheSize();

/** Drop every entry (outstanding shared_ptrs stay valid). */
void clearWarmSnapshotCache();
/// @}

/** RAII guard: run a scope with the snapshot cache forced to @p on,
 *  restoring the previous switch on exit (the identity tests and the
 *  bench's cold-baseline sections). */
class SnapshotCacheScope
{
  public:
    explicit SnapshotCacheScope(bool on) : prev_(snapshotCacheEnabled())
    {
        setSnapshotCacheEnabled(on);
    }
    ~SnapshotCacheScope() { setSnapshotCacheEnabled(prev_); }
    SnapshotCacheScope(const SnapshotCacheScope &) = delete;
    SnapshotCacheScope &operator=(const SnapshotCacheScope &) = delete;

  private:
    bool prev_;
};

} // namespace lf

#endif // LF_SIM_SNAPSHOT_HH
