#include "sim/cpu_model.hh"

#include "common/logging.hh"

namespace lf {

namespace {

CpuModel
makeGold6226()
{
    CpuModel m;
    m.name = "Gold 6226";
    m.microarchitecture = "Cascade Lake";
    m.cores = 12;
    m.freqGhz = 2.7;
    m.smtEnabled = true;
    m.frontend.lsdEnabled = true;
    // Busy departmental server: the noisiest machine in the study.
    m.noise = {5.0, 0.02, 160.0, 150, 180, 5.0};
    m.sgx.supported = false;
    return m;
}

CpuModel
makeXeonE2174G()
{
    CpuModel m;
    m.name = "E-2174G";
    m.microarchitecture = "Coffee Lake";
    m.cores = 4;
    m.freqGhz = 3.8;
    m.smtEnabled = true;
    m.frontend.lsdEnabled = false; // LSD fused off on this machine
    m.noise = {3.0, 0.010, 120.0, 118, 95, 2.0};
    m.sgx.supported = true;
    return m;
}

CpuModel
makeXeonE2286G()
{
    CpuModel m;
    m.name = "E-2286G";
    m.microarchitecture = "Coffee Lake";
    m.cores = 6;
    m.freqGhz = 4.0;
    m.smtEnabled = true;
    m.frontend.lsdEnabled = false; // LSD fused off on this machine
    m.noise = {3.2, 0.010, 120.0, 108, 90, 2.2};
    m.sgx.supported = true;
    return m;
}

CpuModel
makeXeonE2288G()
{
    CpuModel m;
    m.name = "E-2288G";
    m.microarchitecture = "Coffee Lake";
    m.cores = 8;
    m.freqGhz = 3.7;
    m.smtEnabled = false; // Azure instance: hyper-threading disabled
    m.frontend.lsdEnabled = true;
    // Quietest machine in the study -> best rates / lowest errors.
    m.noise = {1.8, 0.004, 100.0, 75, 70, 1.2};
    m.sgx.supported = true;
    return m;
}

} // namespace

const CpuModel &
gold6226()
{
    static const CpuModel model = makeGold6226();
    return model;
}

const CpuModel &
xeonE2174G()
{
    static const CpuModel model = makeXeonE2174G();
    return model;
}

const CpuModel &
xeonE2286G()
{
    static const CpuModel model = makeXeonE2286G();
    return model;
}

const CpuModel &
xeonE2288G()
{
    static const CpuModel model = makeXeonE2288G();
    return model;
}

std::vector<const CpuModel *>
allCpuModels()
{
    return {&gold6226(), &xeonE2174G(), &xeonE2286G(), &xeonE2288G()};
}

std::vector<const CpuModel *>
smtCpuModels()
{
    return {&gold6226(), &xeonE2174G(), &xeonE2286G()};
}

std::vector<const CpuModel *>
sgxCpuModels()
{
    return {&xeonE2174G(), &xeonE2286G(), &xeonE2288G()};
}

const CpuModel &
cpuModelByName(const std::string &name)
{
    const CpuModel *model = findCpuModel(name);
    if (model == nullptr)
        lf_fatal("unknown CPU model '%s'", name.c_str());
    return *model;
}

const CpuModel *
findCpuModel(const std::string &name)
{
    for (const CpuModel *model : allCpuModels()) {
        if (model->name == name)
            return model;
    }
    return nullptr;
}

bool
isModelOverrideKey(const std::string &key)
{
    return key.rfind("model.", 0) == 0;
}

bool
applyModelOverride(CpuModel &model, const std::string &key,
                   double value)
{
    if (!isModelOverrideKey(key))
        return false;
    const std::string knob = key.substr(6);
    // Cycles-typed knobs share the clamped-cast treatment of
    // applyChannelOverride(): casting an out-of-range double is UB and
    // the values arrive from the CLI.
    const auto as_cycles = [value] {
        if (value <= 0.0)
            return Cycles{0};
        if (value >= 1e18)
            return static_cast<Cycles>(1e18);
        return static_cast<Cycles>(value);
    };
    if (knob == "freqGhz") model.freqGhz = value;
    else if (knob == "smtEnabled") model.smtEnabled = value != 0.0;
    else if (knob == "lsdEnabled")
        model.frontend.lsdEnabled = value != 0.0;
    else if (knob == "lsdLoopBubble")
        model.frontend.lsdLoopBubble = as_cycles();
    else if (knob == "lcpStall") model.frontend.lcpStall = as_cycles();
    else if (knob == "dsbToMiteSwitch")
        model.frontend.dsbToMiteSwitch = as_cycles();
    else if (knob == "miteToDsbSwitch")
        model.frontend.miteToDsbSwitch = as_cycles();
    else if (knob == "noiseStddevCycles")
        model.noise.stddevCycles = value;
    else if (knob == "spikeProb") model.noise.spikeProb = value;
    else if (knob == "spikeCycles") model.noise.spikeCycles = value;
    else if (knob == "tscOverhead")
        model.noise.tscOverhead = as_cycles();
    else if (knob == "syncCycles") model.noise.syncCycles = as_cycles();
    else if (knob == "jitterPerKcycle")
        model.noise.jitterPerKcycle = value;
    else if (knob == "deadlock_kcycles")
        model.deadlockKcycles = as_cycles();
    else if (knob == "sgxEntryCycles")
        model.sgx.entryCycles = as_cycles();
    else if (knob == "sgxExitCycles")
        model.sgx.exitCycles = as_cycles();
    else if (knob == "sgxEntryJitterStddev")
        model.sgx.entryJitterStddev = value;
    else if (knob == "raplUpdateIntervalUs")
        model.rapl.updateIntervalUs = value;
    else if (knob == "raplQuantumMicroJoules")
        model.rapl.quantumMicroJoules = value;
    else if (knob == "raplNoiseStddevMicroJoules")
        model.rapl.noiseStddevMicroJoules = value;
    else return false;
    return true;
}

std::vector<std::string>
modelOverrideKeys()
{
    return {"model.freqGhz", "model.smtEnabled", "model.lsdEnabled",
            "model.lsdLoopBubble", "model.lcpStall",
            "model.dsbToMiteSwitch", "model.miteToDsbSwitch",
            "model.noiseStddevCycles", "model.spikeProb",
            "model.spikeCycles", "model.tscOverhead",
            "model.syncCycles", "model.jitterPerKcycle",
            "model.deadlock_kcycles",
            "model.sgxEntryCycles", "model.sgxExitCycles",
            "model.sgxEntryJitterStddev", "model.raplUpdateIntervalUs",
            "model.raplQuantumMicroJoules",
            "model.raplNoiseStddevMicroJoules"};
}

} // namespace lf
