#include "sim/core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lf {

Core::Core(const CpuModel &model, std::uint64_t seed)
    : model_(model), seed_(seed), engine_(model.frontend),
      backend_(&engine_),
      rng_(seed ^ 0x5eedc0de12345678ULL),
      energyModel_(model.energy, model.freqGhz),
      rapl_(model.rapl, model.freqGhz, Rng(seed ^ 0x4a91ULL))
{
}

void
Core::reset(const CpuModel &model, std::uint64_t seed)
{
    model_ = model;
    seed_ = seed;
    staticPartition_ = false;
    domainSwitchHook_ = nullptr;
    engine_.reset(model.frontend);
    backend_.reset();
    rng_ = Rng(seed ^ 0x5eedc0de12345678ULL);
    energyModel_ = EnergyModel(model.energy, model.freqGhz);
    rapl_ = RaplCounter(model.rapl, model.freqGhz,
                        Rng(seed ^ 0x4a91ULL));
    for (auto &snapshot : raplSnapshot_)
        snapshot = PerfCounters{};
    raplSyncCycle_ = 0;
}

Core::WarmState
Core::saveWarmState() const
{
    WarmState s{engine_.saveState(),
                backend_.saveState(),
                rapl_.saveState(),
                staticPartition_,
                {},
                raplSyncCycle_};
    for (int tid = 0; tid < FrontendEngine::kNumThreads; ++tid)
        s.raplSnapshot[tid] =
            raplSnapshot_[static_cast<std::size_t>(tid)];
    return s;
}

void
Core::restoreWarmState(const WarmState &s)
{
    engine_.loadState(s.engine);
    backend_.loadState(s.backend);
    rapl_.loadState(s.rapl);
    // Raw assignment, not setStaticPartition(): the restored Dsb
    // image already carries the correct partitioned mapping, and a
    // refreshPartitionState() here could flush restored LSD state
    // through a spurious partition transition.
    staticPartition_ = s.staticPartition;
    for (int tid = 0; tid < FrontendEngine::kNumThreads; ++tid)
        raplSnapshot_[static_cast<std::size_t>(tid)] =
            s.raplSnapshot[tid];
    raplSyncCycle_ = s.raplSyncCycle;
}

void
Core::refreshPartitionState()
{
    const bool both = engine_.threadHasProgram(0) &&
        engine_.threadHasProgram(1);
    engine_.setPartitioned(model_.smtEnabled &&
                           (both || staticPartition_));
}

void
Core::setProgram(ThreadId tid, const Program *program,
                 const ChunkTable *table)
{
    if (domainSwitchHook_)
        domainSwitchHook_(*this);
    engine_.setProgram(tid, program, table);
    refreshPartitionState();
}

void
Core::setProgram(ThreadId tid, const PreparedChain &prepared)
{
    setProgram(tid, &prepared.chain.program, &prepared.table);
}

void
Core::clearProgram(ThreadId tid)
{
    engine_.clearProgram(tid);
    refreshPartitionState();
}

void
Core::setStaticPartition(bool on)
{
    staticPartition_ = on;
    refreshPartitionState();
}

void
Core::setDomainSwitchHook(std::function<void(Core &)> hook)
{
    domainSwitchHook_ = std::move(hook);
}

void
Core::tick()
{
    engine_.tick();
    backend_.tick();
}

void
Core::runCycles(Cycles cycles)
{
    Cycles done = 0;
    while (done < cycles) {
        const Cycles burn = engine_.noOpCycles();
        if (burn > 0) {
            const Cycles k = std::min(burn, cycles - done);
            engine_.skipCycles(k);
            backend_.skip(k);
            done += k;
            continue;
        }
        tick();
        ++done;
    }
}

Cycles
Core::runUntilRetired(ThreadId tid, std::uint64_t insts,
                      Cycles max_cycles)
{
    if (max_cycles == 0)
        max_cycles = model_.deadlockKcycles * 1000;
    const std::uint64_t target =
        engine_.counters(tid).retiredInsts + insts;
    const Cycles start = cycle();
    while (engine_.counters(tid).retiredInsts < target) {
        if (cycle() - start >= max_cycles) {
            lf_panic("runUntilRetired: thread %d stuck after %llu cycles"
                     " (%llu/%llu insts)", tid,
                     static_cast<unsigned long long>(max_cycles),
                     static_cast<unsigned long long>(
                         engine_.counters(tid).retiredInsts),
                     static_cast<unsigned long long>(target));
        }
        if (!engine_.threadRunnable(tid) &&
            engine_.idqOccupancy(tid) == 0) {
            lf_panic("runUntilRetired: thread %d halted before reaching"
                     " the retirement target", tid);
        }
        const Cycles burn = engine_.noOpCycles();
        if (burn > 0) {
            // Nothing retires during a no-op stretch; fast-forward
            // it, but never past the deadlock guard above.
            const Cycles k =
                std::min(burn, max_cycles - (cycle() - start));
            engine_.skipCycles(k);
            backend_.skip(k);
            continue;
        }
        tick();
    }
    return cycle() - start;
}

double
Core::noisyMeasurement(double true_cycles)
{
    // Exact-zero knobs must not touch the RNG: the returned value is
    // unchanged (a 0-sigma gaussian adds 0.0, a p=0 spike never
    // fires), and a draw-free quiet path is what lets the warm-state
    // snapshot cache treat zero-noise calibration as seed-independent
    // (see sim/snapshot.hh).
    const double sigma = model_.noise.stddevCycles +
        model_.noise.jitterPerKcycle * true_cycles / 1000.0;
    double measured = true_cycles +
        static_cast<double>(model_.noise.tscOverhead);
    if (sigma != 0.0)
        measured += rng_.gaussian(0.0, sigma);
    if (model_.noise.spikeProb != 0.0 &&
        rng_.chance(model_.noise.spikeProb))
        measured += rng_.uniform(0.5, 1.5) * model_.noise.spikeCycles;
    return measured < 0.0 ? 0.0 : measured;
}

double
Core::timedRun(ThreadId tid, std::uint64_t insts)
{
    const Cycles elapsed = runUntilRetired(tid, insts);
    return noisyMeasurement(static_cast<double>(elapsed));
}

double
Core::secondsOf(double cycles) const
{
    return cycles / (model_.freqGhz * 1e9);
}

void
Core::syncRaplEnergy()
{
    PerfCounters combined_delta;
    for (int tid = 0; tid < FrontendEngine::kNumThreads; ++tid) {
        const PerfCounters delta = engine_.counters(tid).delta(
            raplSnapshot_[static_cast<std::size_t>(tid)]);
        combined_delta.uopsMite += delta.uopsMite;
        combined_delta.uopsDsb += delta.uopsDsb;
        combined_delta.uopsLsd += delta.uopsLsd;
        combined_delta.lcpStallCycles += delta.lcpStallCycles;
        combined_delta.dsbToMiteSwitches += delta.dsbToMiteSwitches;
        combined_delta.miteToDsbSwitches += delta.miteToDsbSwitches;
        combined_delta.l1iMisses += delta.l1iMisses;
        raplSnapshot_[static_cast<std::size_t>(tid)] =
            engine_.counters(tid);
    }
    const Cycles span = cycle() - raplSyncCycle_;
    if (span > 0) {
        rapl_.accumulate(energyModel_.energyOf(combined_delta, span),
                         cycle());
        raplSyncCycle_ = cycle();
    }
}

MicroJoules
Core::readRapl()
{
    syncRaplEnergy();
    return rapl_.read(cycle());
}

void
Core::enclaveTransition(ThreadId tid)
{
    // Zero jitter draws nothing (same contract as noisyMeasurement).
    const double jitter = model_.sgx.entryJitterStddev != 0.0
        ? rng_.gaussian(0.0, model_.sgx.entryJitterStddev)
        : 0.0;
    double cost = static_cast<double>(model_.sgx.entryCycles) + jitter;
    if (cost < 0.0)
        cost = 0.0;
    engine_.flushThreadFrontend(tid);
    runCycles(static_cast<Cycles>(cost));
}

std::uint64_t
Core::retiredInsts(ThreadId tid) const
{
    return engine_.counters(tid).retiredInsts;
}

const PerfCounters &
Core::counters(ThreadId tid) const
{
    return engine_.counters(tid);
}

} // namespace lf
