/**
 * @file
 * Core: one simulated physical core (frontend + backend + 2 hardware
 * threads) plus the measurement facilities the attacks use — a noisy
 * TSC and a simulated RAPL energy counter.
 *
 * The Core also owns the SMT partition policy: the DSB/LSD become
 * partitioned exactly while *both* hardware threads have a program
 * bound (and the model has SMT enabled). Binding/unbinding a sender
 * program therefore toggles partitioning — the observable the MT
 * attacks encode into.
 */

#ifndef LF_SIM_CORE_HH
#define LF_SIM_CORE_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "backend/backend.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "frontend/engine.hh"
#include "frontend/prepared.hh"
#include "power/energy_model.hh"
#include "power/rapl.hh"
#include "sim/cpu_model.hh"

namespace lf {

class Core
{
  public:
    explicit Core(const CpuModel &model, std::uint64_t seed = 1);

    /**
     * Reinitialize in place to exactly the state of a freshly
     * constructed Core(model, seed), reusing the cache-line/IDQ
     * allocations of the previous trial. This is the per-worker
     * core-reuse fast path of the streaming ExperimentRunner: trial
     * results are bit-identical whether a Core is reset or rebuilt.
     * Any Defense armed on this core must be torn down first (its
     * destructor uninstalls the domain-switch hook).
     */
    void reset(const CpuModel &model, std::uint64_t seed);

    const CpuModel &model() const { return model_; }
    std::uint64_t seed() const { return seed_; }
    FrontendEngine &frontend() { return engine_; }
    const FrontendEngine &frontend() const { return engine_; }
    const Backend &backend() const { return backend_; }
    Rng &rng() { return rng_; }

    /** @name Thread control (updates SMT partitioning) */
    /// @{
    /**
     * Bind @p program to @p tid. When @p table is non-null it is the
     * program's shared immutable chunk decode (a PreparedChain's) and
     * the engine skips re-decoding; otherwise the engine resolves one
     * itself (see FrontendEngine::setProgram). Results are identical
     * either way.
     */
    void setProgram(ThreadId tid, const Program *program,
                    const ChunkTable *table = nullptr);
    /** Bind a prepared workload: program plus pre-built decode. */
    void setProgram(ThreadId tid, const PreparedChain &prepared);
    void clearProgram(ThreadId tid);

    /**
     * Static-partition mitigation (src/defense): pin the DSB in
     * partitioned mode regardless of how many threads have programs
     * bound, so binding/unbinding a sibling never repartitions. A
     * no-op on SMT-disabled models.
     */
    void setStaticPartition(bool on);
    bool staticPartition() const { return staticPartition_; }

    /**
     * Mitigation hook (src/defense): every setProgram() is a domain
     * switch — a new protection domain is scheduled onto the thread —
     * and the hook runs before the bind, where an OS-level
     * flush-on-switch mitigation acts. Null (the default) disables
     * the hook.
     */
    void setDomainSwitchHook(std::function<void(Core &)> hook);
    /// @}

    /** @name Simulation advance */
    /// @{
    void tick();
    void runCycles(Cycles cycles);

    /**
     * Run the whole core until thread @p tid retires @p insts more
     * instructions (the sibling thread co-executes). Returns the
     * elapsed cycles. Fatal if the deadlock guard elapses first:
     * @p max_cycles when non-zero, otherwise the model's
     * CpuModel::deadlockKcycles knob ("model.deadlock_kcycles").
     */
    Cycles runUntilRetired(ThreadId tid, std::uint64_t insts,
                           Cycles max_cycles = 0);
    /// @}

    Cycles cycle() const { return engine_.cycle(); }

    /** @name Timing measurement (the attacker's rdtscp) */
    /// @{
    /**
     * Timed run: like runUntilRetired but returns the *measured*
     * duration in cycles — true cycles plus the TSC read overhead,
     * Gaussian jitter, and occasional OS-noise spikes of the CPU
     * model. This is what attack receivers observe.
     */
    double timedRun(ThreadId tid, std::uint64_t insts);

    /** Apply the measurement noise model to a true cycle count. */
    double noisyMeasurement(double true_cycles);

    /** Seconds corresponding to @p cycles on this model. */
    double secondsOf(double cycles) const;
    /// @}

    /** @name Energy / RAPL */
    /// @{
    const EnergyModel &energyModel() const { return energyModel_; }

    /**
     * Read the simulated RAPL package-energy counter (microjoules).
     * Integrates the energy of both threads' activity since the last
     * read into the counter first.
     */
    MicroJoules readRapl();
    /// @}

    /** @name SGX (used by the sgx module) */
    /// @{
    /** Charge an enclave entry/exit: advances time and flushes the
     *  thread's pipeline-local frontend state. */
    void enclaveTransition(ThreadId tid);
    /// @}

    /** Retired instructions of @p tid so far. */
    std::uint64_t retiredInsts(ThreadId tid) const;

    /** Counter snapshot for @p tid. */
    const PerfCounters &counters(ThreadId tid) const;

    /** @name Warm-state snapshot (sim/snapshot.hh)
     * Everything deterministic about the core after a calibration
     * preamble: the frontend/backend images, the RAPL counter's
     * energy state, and the SMT partition pin. Deliberately excluded:
     * model_ and seed_ (identity — the snapshot key covers the model,
     * and seeds differ per trial by design), both Rngs (a snapshot is
     * only valid when calibration drew nothing, so RNG state needs no
     * restoring), and the domain-switch hook (it belongs to whichever
     * Defense is armed on this core right now).
     */
    /// @{
    struct WarmState
    {
        FrontendEngine::SavedState engine;
        Backend::SavedState backend;
        RaplCounter::SavedState rapl;
        bool staticPartition;
        PerfCounters raplSnapshot[FrontendEngine::kNumThreads];
        Cycles raplSyncCycle;
    };

    WarmState saveWarmState() const;

    /**
     * Overwrite this core's mutable simulation state with @p s.
     * Precondition: this core was reset with the same resolved model
     * as the snapshot source (the snapshot key guarantees it), and
     * any armed Defense has already run arm() — restore then replays
     * the post-calibration state on top.
     */
    void restoreWarmState(const WarmState &s);
    /// @}

  private:
    void syncRaplEnergy();
    void refreshPartitionState();

    bool staticPartition_ = false;
    std::function<void(Core &)> domainSwitchHook_;
    CpuModel model_;
    std::uint64_t seed_;
    FrontendEngine engine_;
    Backend backend_;
    Rng rng_;
    EnergyModel energyModel_;
    RaplCounter rapl_;

    /** Counter snapshots at the last RAPL energy sync. */
    PerfCounters raplSnapshot_[FrontendEngine::kNumThreads];
    Cycles raplSyncCycle_ = 0;
};

} // namespace lf

#endif // LF_SIM_CORE_HH
