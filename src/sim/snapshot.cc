#include "sim/snapshot.hh"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "common/logging.hh"
#include "core/trial_context.hh"

namespace lf {

namespace {

/** Construct-on-first-use: experiment code runs from static-lifetime
 *  test fixtures, so the cache must outlive any static user. A null
 *  mapped value is a negative entry (cell known non-snapshottable). */
struct SnapshotCache
{
    std::mutex mutex;
    std::unordered_map<std::string, WarmSnapshotPtr> entries;
};

SnapshotCache &
cache()
{
    static SnapshotCache *c = new SnapshotCache();
    return *c;
}

std::atomic<bool> g_snapshotCacheEnabled{true};

std::atomic<std::uint64_t> g_snapshotHits{0};
std::atomic<std::uint64_t> g_snapshotMisses{0};
std::atomic<std::uint64_t> g_snapshotBypasses{0};

thread_local std::uint64_t t_snapshotHits = 0;
thread_local std::uint64_t t_snapshotMisses = 0;
thread_local std::uint64_t t_snapshotBypasses = 0;

} // namespace

void
setSnapshotCacheEnabled(bool on)
{
    g_snapshotCacheEnabled.store(on, std::memory_order_relaxed);
}

bool
snapshotCacheEnabled()
{
    return g_snapshotCacheEnabled.load(std::memory_order_relaxed);
}

bool
warmSnapshotsApplicable()
{
    // Both prepared-cache layers must be on: with program caching or
    // chunk-table reuse off, a trial's decode lives in (or is memoised
    // by) the engine itself and cannot be pinned by a snapshot.
    return snapshotCacheEnabled() && programCacheEnabled() &&
        chunkTableReuseEnabled();
}

SnapshotOutcome
lookupWarmSnapshot(const std::string &key, WarmSnapshotPtr &out)
{
    if (!warmSnapshotsApplicable())
        return SnapshotOutcome::Disabled;

    SnapshotCache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    const auto it = c.entries.find(key);
    if (it == c.entries.end()) {
        g_snapshotMisses.fetch_add(1, std::memory_order_relaxed);
        ++t_snapshotMisses;
        return SnapshotOutcome::Miss;
    }
    if (!it->second) {
        g_snapshotBypasses.fetch_add(1, std::memory_order_relaxed);
        ++t_snapshotBypasses;
        return SnapshotOutcome::Bypass;
    }
    g_snapshotHits.fetch_add(1, std::memory_order_relaxed);
    ++t_snapshotHits;
    out = it->second;
    return SnapshotOutcome::Hit;
}

void
publishWarmSnapshot(const std::string &key, WarmSnapshotPtr snapshot)
{
    lf_assert(snapshot != nullptr,
              "publishing a null snapshot; use markWarmSnapshotBypass");
    SnapshotCache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    // emplace: racing first-calibrators produce identical snapshots
    // (the tripwire proved seed-independence), so the first in wins
    // and the rest are dropped.
    c.entries.emplace(key, std::move(snapshot));
}

void
markWarmSnapshotBypass(const std::string &key)
{
    SnapshotCache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.entries.emplace(key, nullptr);
}

WarmSnapshotPtr
captureWarmSnapshot(TrialContext &ctx,
                    const CovertChannel::Calibration &calib)
{
    lf_assert(calib.rngUntouched,
              "capturing a snapshot of seed-dependent state");
    if (!chunkTableReuseEnabled())
        return nullptr; // per-bind local decodes die with the trial

    Core::WarmState core = ctx.core().saveWarmState();

    // Pin every bound decode. The engine image holds raw pointers
    // into PreparedChains (program, chunk table, chunk successor
    // links); a thread whose decode is not owned by the prepared
    // cache (hand-bound program, memoised caller table) makes the
    // whole cell non-snapshottable.
    std::vector<PreparedChainPtr> pins;
    for (const auto &ts : core.engine.threads) {
        if (ts.program == nullptr)
            continue;
        PreparedChainPtr pin = findPreparedChain(ts.program, ts.chunks);
        if (!pin)
            return nullptr;
        pins.push_back(std::move(pin));
    }

    return std::make_shared<const WarmSnapshot>(WarmSnapshot{
        std::move(core), ctx.environment().saveWarmState(),
        ctx.defense().saveWarmState(), calib, std::move(pins)});
}

void
restoreWarmSnapshot(TrialContext &ctx, const WarmSnapshot &snap)
{
    ctx.core().restoreWarmState(snap.core);
    ctx.environment().loadWarmState(snap.environment);
    ctx.defense().loadWarmState(snap.defense);
}

std::uint64_t
snapshotCacheHits()
{
    return g_snapshotHits.load(std::memory_order_relaxed);
}

std::uint64_t
snapshotCacheMisses()
{
    return g_snapshotMisses.load(std::memory_order_relaxed);
}

std::uint64_t
snapshotCacheBypasses()
{
    return g_snapshotBypasses.load(std::memory_order_relaxed);
}

std::uint64_t
snapshotCacheThreadHits()
{
    return t_snapshotHits;
}

std::uint64_t
snapshotCacheThreadMisses()
{
    return t_snapshotMisses;
}

std::uint64_t
snapshotCacheThreadBypasses()
{
    return t_snapshotBypasses;
}

std::size_t
snapshotCacheSize()
{
    SnapshotCache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    return c.entries.size();
}

void
clearWarmSnapshotCache()
{
    SnapshotCache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.entries.clear();
}

} // namespace lf
