/**
 * @file
 * Simulated CPU models matching Table I of the paper.
 *
 * | Model      | uArch        | GHz | SMT | LSD | SGX |
 * |------------|--------------|-----|-----|-----|-----|
 * | Gold 6226  | Cascade Lake | 2.7 | yes | yes | no  |
 * | E-2174G    | Coffee Lake  | 3.8 | yes | no  | yes |
 * | E-2286G    | Coffee Lake  | 4.0 | yes | no  | yes |
 * | E-2288G    | Coffee Lake  | 3.7 | no* | yes | yes |
 *
 * (*) The Azure E-2288G instance the paper uses has hyper-threading
 * disabled, so no MT attacks are possible there.
 *
 * The timing-noise / measurement-overhead fields are the calibration
 * knobs of the substitution: they stand in for each machine's OS and
 * platform noise (the Gold 6226 is a busy server, the E-2288G a
 * comparatively quiet cloud instance) and determine relative channel
 * rates and error rates.
 */

#ifndef LF_SIM_CPU_MODEL_HH
#define LF_SIM_CPU_MODEL_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "frontend/params.hh"
#include "power/energy_model.hh"
#include "power/rapl.hh"

namespace lf {

/** Per-machine timing measurement noise model. */
struct TimingNoise
{
    double stddevCycles = 3.0;   //!< Gaussian jitter per measurement.
    double spikeProb = 0.005;    //!< Chance of an OS-noise spike.
    double spikeCycles = 120.0;  //!< Spike magnitude.
    Cycles tscOverhead = 30;     //!< rdtscp fencing cost per read pair.
    /** Sender/receiver phase handoff cost in the covert-channel
     *  protocols (shared-memory flag busy-wait in the real attack). */
    Cycles syncCycles = 90;
    /** Duration-proportional jitter: additional Gaussian sigma per
     *  1000 measured cycles (OS and platform interference accumulates
     *  over longer measurement windows). */
    double jitterPerKcycle = 2.0;
};

/** SGX cost model (enclaves modelled as entry/exit overheads). */
struct SgxParams
{
    bool supported = false;
    Cycles entryCycles = 3200;
    Cycles exitCycles = 3200;
    double entryJitterStddev = 350.0;
};

struct CpuModel
{
    std::string name;
    std::string microarchitecture;
    int cores = 1;
    int threadsPerCore = 2;
    double freqGhz = 3.0;
    bool smtEnabled = true;

    FrontendParams frontend;
    TimingNoise noise;
    SgxParams sgx;
    EnergyParams energy;
    RaplParams rapl;

    /** Deadlock guard of Core::runUntilRetired() in kilocycles
     *  ("model.deadlock_kcycles"): a run that makes no retirement
     *  progress for this long is declared stuck. Raise it for
     *  deliberately glacial machines (e.g. huge model.lcpStall
     *  sweeps); must be >= 1. */
    Cycles deadlockKcycles = 50'000;

    bool lsdEnabled() const { return frontend.lsdEnabled; }
};

/** @name The paper's four test machines */
/// @{
const CpuModel &gold6226();
const CpuModel &xeonE2174G();
const CpuModel &xeonE2286G();
const CpuModel &xeonE2288G();
/// @}

/** All four models in Table I order. */
std::vector<const CpuModel *> allCpuModels();

/** The three SMT-capable models (for MT attack tables). */
std::vector<const CpuModel *> smtCpuModels();

/** The three SGX-capable models (for Table VI). */
std::vector<const CpuModel *> sgxCpuModels();

/** Look up a model by name; fatal if unknown. */
const CpuModel &cpuModelByName(const std::string &name);

/** Look up a model by name; nullptr if unknown. */
const CpuModel *findCpuModel(const std::string &name);

/**
 * Apply one "model.<knob>=value" style override to @p model. Keys are
 * the sweepable machine knobs (see modelOverrideKeys()): clock and SMT
 * ("model.freqGhz", "model.smtEnabled"), frontend timing roots
 * ("model.dsbToMiteSwitch", "model.lsdLoopBubble", "model.lcpStall",
 * "model.lsdEnabled"), the timing-noise calibration fields
 * ("model.noiseStddevCycles", "model.spikeProb", "model.spikeCycles",
 * "model.jitterPerKcycle", "model.tscOverhead", "model.syncCycles"),
 * the deadlock guard ("model.deadlock_kcycles"),
 * SGX transition costs ("model.sgxEntryCycles", "model.sgxExitCycles",
 * "model.sgxEntryJitterStddev"), and RAPL behaviour
 * ("model.raplUpdateIntervalUs", "model.raplQuantumMicroJoules",
 * "model.raplNoiseStddevMicroJoules").
 *
 * Model knobs recalibrate the *machine*; transient interference
 * (co-runners, preemption, timer coarsening) lives in the separate
 * "env." keys of src/noise/environment.hh.
 * @return false if @p key names no known model knob.
 */
bool applyModelOverride(CpuModel &model, const std::string &key,
                        double value);

/** True when @p key is a model override (has the "model." prefix). */
bool isModelOverrideKey(const std::string &key);

/** Keys accepted by applyModelOverride(), for help text. */
std::vector<std::string> modelOverrideKeys();

} // namespace lf

#endif // LF_SIM_CPU_MODEL_HH
