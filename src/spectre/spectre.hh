/**
 * @file
 * Spectre v1 variants (Sec. IX, Table VII).
 *
 * In-domain threat model: attacker and victim share one thread (e.g. a
 * sandbox). The victim gadget is a bounds check guarding a secret-
 * indexed access; after training the conditional predictor, an
 * out-of-bounds call transiently executes the disclosure gadget, which
 * updates *frontend* (or cache) state without retiring. The secret is
 * a 5-bit chunk (0..31) selecting which DSB set / cache line the
 * transient access touches.
 *
 * Six disclosure channels are implemented for comparison:
 *  - Frontend (this paper): transient *instruction fetch* of a mix
 *    block mapping to DSB set == secret; the attacker probes its own
 *    8-way chains per set and looks for the set with a micro-op cache
 *    refill. Leaves no data-cache footprint and (after warmup) no L1I
 *    footprint.
 *  - L1I Flush+Reload and L1I Prime+Probe: instruction-cache variants.
 *  - MEM Flush+Reload, L1D Flush+Reload, L1D LRU: data-cache baselines
 *    ([30] in the paper).
 *
 * The headline metric is the L1 miss rate each attack induces
 * (Table VII): the frontend channel's is the lowest.
 */

#ifndef LF_SPECTRE_SPECTRE_HH
#define LF_SPECTRE_SPECTRE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "backend/l1d_cache.hh"
#include "common/types.hh"
#include "frontend/prepared.hh"
#include "isa/program.hh"
#include "sim/core.hh"

namespace lf {

enum class SpectreVariant
{
    Frontend,
    L1iFlushReload,
    L1iPrimeProbe,
    MemFlushReload,
    L1dFlushReload,
    L1dLru,
};

const char *toString(SpectreVariant variant);

/** All six variants in Table VII column order. */
std::vector<SpectreVariant> allSpectreVariants();

struct SpectreConfig
{
    int numValues = 32;          //!< 5-bit secret chunks.
    Addr gadgetBase = 0x1000000; //!< Victim disclosure gadget array.
    Addr probeBase = 0x2000000;  //!< Attacker probe chain area.
    Addr dataBase = 0x4000000;   //!< Victim data array (L1D variants).
    /** Ordinary application loads per recovered chunk — the ambient
     *  working-set traffic the attack's misses are diluted into when
     *  computing the L1 miss rate. */
    int backgroundLoads = 1500;
    int trainingRuns = 4;        //!< Predictor training executions.
    /** Attack rounds per secret; the recovered value is the majority
     *  vote (robust against timer-noise spikes). */
    int attackRepetitions = 5;
};

struct SpectreResult
{
    SpectreVariant variant;
    std::size_t trials = 0;
    std::size_t correct = 0;
    double accuracy = 0.0;
    std::uint64_t l1Accesses = 0; //!< L1I + L1D accesses.
    std::uint64_t l1Misses = 0;   //!< L1I + L1D misses.
    double l1MissRate = 0.0;
};

/**
 * One attack instance bound to a Core. run() recovers each secret in
 * @p secrets once and reports accuracy and the induced L1 miss rate.
 */
class SpectreAttack
{
  public:
    SpectreAttack(Core &core, const SpectreConfig &config = {});
    ~SpectreAttack();

    SpectreResult run(SpectreVariant variant,
                      const std::vector<int> &secrets);

  private:
    struct CounterBaseline
    {
        std::uint64_t l1iAccesses = 0;
        std::uint64_t l1iMisses = 0;
    };

    void buildVictim(SpectreVariant variant);
    void buildProbes();
    void trainPredictor();
    void victimInvocation(int secret, SpectreVariant variant);
    std::vector<double> probeFrontendTimings();
    int probeFrontend();
    void calibrateFrontendBaseline();
    void primeFrontend();
    void primeL1i();
    int probeL1iFlushReload();
    int probeL1iPrimeProbe();
    int probeMem(SpectreVariant variant, bool primed);
    int probeL1dLru();
    void backgroundTraffic();
    Addr gadgetAddr(int value, SpectreVariant variant) const;
    Addr dataAddr(int value) const;

    Core &core_;
    SpectreConfig cfg_;
    L1dCache l1d_;

    Program victim_;
    Addr branchAddr_ = 0;
    bool condInBounds_ = true;
    std::vector<PreparedChainPtr> probeChains_; //!< Frontend: one per set.
    std::vector<double> frontendBaseline_; //!< Per-set calibration.
    std::vector<Program> l1iPrimeChains_;
    std::unique_ptr<Program> gadgetRunner_; //!< For L1I F+R probing.
};

} // namespace lf

#endif // LF_SPECTRE_SPECTRE_HH
