#include "spectre/spectre.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/mix_block.hh"
#include "sim/executor.hh"

namespace lf {

namespace {

constexpr ThreadId kThread = 0;

/** Stride between victim data lines giving distinct L1D sets while
 *  staying page-aliased (4096 + 64). */
constexpr Addr kDataStride = 4160;

} // namespace

const char *
toString(SpectreVariant variant)
{
    switch (variant) {
      case SpectreVariant::Frontend: return "Frontend";
      case SpectreVariant::L1iFlushReload: return "L1I F+R";
      case SpectreVariant::L1iPrimeProbe: return "L1I P+P";
      case SpectreVariant::MemFlushReload: return "MEM F+R";
      case SpectreVariant::L1dFlushReload: return "L1D F+R";
      case SpectreVariant::L1dLru: return "L1D LRU";
    }
    return "?";
}

std::vector<SpectreVariant>
allSpectreVariants()
{
    return {SpectreVariant::MemFlushReload,
            SpectreVariant::L1dFlushReload,
            SpectreVariant::L1dLru,
            SpectreVariant::L1iFlushReload,
            SpectreVariant::L1iPrimeProbe,
            SpectreVariant::Frontend};
}

SpectreAttack::SpectreAttack(Core &core, const SpectreConfig &config)
    : core_(core), cfg_(config)
{
    lf_assert(cfg_.numValues >= 2 && cfg_.numValues <= 32,
              "numValues must be in [2, 32]");
}

SpectreAttack::~SpectreAttack() = default;

Addr
SpectreAttack::gadgetAddr(int value, SpectreVariant variant) const
{
    // Frontend variant: DSB set == value (32-byte stride).
    // L1I variants: distinct L1I set per value (64-byte stride).
    const Addr stride = variant == SpectreVariant::Frontend ? 32 : 64;
    return cfg_.gadgetBase + static_cast<Addr>(value) * stride;
}

Addr
SpectreAttack::dataAddr(int value) const
{
    return cfg_.dataBase + static_cast<Addr>(value) * kDataStride;
}

void
SpectreAttack::buildVictim(SpectreVariant variant)
{
    // Victim: a trained-taken bounds check. Taken -> the disclosure
    // gadget region (architectural path during training); not taken ->
    // immediate return. During the attack the condition is false but
    // the predictor still steers the frontend into the gadget.
    Assembler as(cfg_.gadgetBase - 64);
    branchAddr_ = as.jcc(gadgetAddr(0, variant), /*cond_id=*/0);
    as.halt(); // fall-through: bounds check failed

    // Disclosure gadget array: one mix block per 5-bit value, each
    // jumping to a common exit stub.
    const Addr exit_stub =
        gadgetAddr(cfg_.numValues, variant) + 256;
    for (int v = 0; v < cfg_.numValues; ++v) {
        as.org(gadgetAddr(v, variant));
        for (int i = 0; i < 4; ++i)
            as.mov();
        as.jmp(exit_stub);
    }
    as.org(exit_stub);
    as.halt();

    victim_ = as.take();
    victim_.setEntry(branchAddr_);
    victim_.setCondFn([this](int, std::uint64_t) {
        return condInBounds_;
    });

    gadgetRunner_ = std::make_unique<Program>(victim_);
}

void
SpectreAttack::buildProbes()
{
    // Frontend probes: an 8-way mix-block chain per DSB set.
    probeChains_.clear();
    probeChains_.reserve(static_cast<std::size_t>(cfg_.numValues));
    for (int v = 0; v < cfg_.numValues; ++v) {
        std::vector<BlockSpec> specs;
        for (int w = 0; w < 8; ++w)
            specs.push_back({w, false});
        probeChains_.push_back(
            prepareMixBlockChain(cfg_.probeBase, v, specs,
                                 core_.model().frontend.dsbLineUops));
    }

    // L1I prime chains: per value, 8 blocks aliasing the gadget's L1I
    // set. Each block leads with an LCP'd add, which keeps the blocks
    // out of the DSB so every pass genuinely exercises the L1I.
    l1iPrimeChains_.clear();
    l1iPrimeChains_.reserve(static_cast<std::size_t>(cfg_.numValues));
    const Addr prime_base = cfg_.probeBase + 0x400000;
    for (int v = 0; v < cfg_.numValues; ++v) {
        Assembler as(prime_base);
        std::vector<Addr> starts;
        for (int w = 0; w < 8; ++w) {
            starts.push_back(prime_base + static_cast<Addr>(v) * 64 +
                             static_cast<Addr>(w) * 4096);
        }
        for (std::size_t w = 0; w < starts.size(); ++w) {
            as.org(starts[w]);
            as.addLcp();
            as.add();
            as.jmp(w + 1 < starts.size() ? starts[w + 1] : starts[0]);
        }
        Program program = as.take();
        program.setEntry(starts[0]);
        l1iPrimeChains_.push_back(std::move(program));
    }
}

void
SpectreAttack::trainPredictor()
{
    condInBounds_ = true;
    for (int i = 0; i < cfg_.trainingRuns; ++i) {
        core_.setProgram(kThread, &victim_);
        // jcc + 4 mov + jmp retire before the exit stub halts.
        core_.runUntilRetired(kThread, 6);
    }
}

void
SpectreAttack::victimInvocation(int secret, SpectreVariant variant)
{
    condInBounds_ = false;
    core_.setProgram(kThread, &victim_);

    // The mispredicted frontend steers into the gadget: transient
    // state update without retirement.
    switch (variant) {
      case SpectreVariant::Frontend:
      case SpectreVariant::L1iFlushReload:
      case SpectreVariant::L1iPrimeProbe:
        core_.frontend().speculativeFetch(
            kThread, gadgetAddr(secret, variant), 3);
        break;
      case SpectreVariant::MemFlushReload:
      case SpectreVariant::L1dFlushReload:
      case SpectreVariant::L1dLru:
        l1d_.load(dataAddr(secret));
        break;
    }
    // The branch now resolves not-taken (mispredict penalty charged by
    // the engine) and the victim returns.
    core_.runUntilRetired(kThread, 1);
}

std::vector<double>
SpectreAttack::probeFrontendTimings()
{
    // Two probe iterations per set: with the transiently inserted
    // gadget line present, the 9-line working set LRU-thrashes the
    // 8-way set for the whole first pass — a large MITE-time
    // signature.
    std::vector<double> timings;
    timings.reserve(static_cast<std::size_t>(cfg_.numValues));
    for (int v = 0; v < cfg_.numValues; ++v) {
        core_.setProgram(kThread, *probeChains_[static_cast<size_t>(v)]);
        timings.push_back(core_.timedRun(kThread, 2 * 8 * 5));
    }
    return timings;
}

int
SpectreAttack::probeFrontend()
{
    // Classify by deviation from the calibrated per-set baseline: the
    // victim's *static* frontend footprint (its bounds-check code
    // occupies one DSB set on every invocation) is the same in the
    // baseline and cancels out; only the secret-dependent set remains.
    const std::vector<double> timings = probeFrontendTimings();
    int best = 0;
    double best_dev = -1e300;
    for (int v = 0; v < cfg_.numValues; ++v) {
        const double base = frontendBaseline_.empty()
            ? 0.0 : frontendBaseline_[static_cast<std::size_t>(v)];
        const double dev = timings[static_cast<std::size_t>(v)] - base;
        if (dev > best_dev) {
            best_dev = dev;
            best = v;
        }
    }
    return best;
}

void
SpectreAttack::calibrateFrontendBaseline()
{
    // Baseline rounds: everything the attack does except the
    // out-of-bounds (transient) part. The victim is invoked in bounds
    // so its static code footprint lands in the DSB exactly as it
    // will during the attack.
    constexpr int kCalibrationRounds = 4;
    frontendBaseline_.assign(static_cast<std::size_t>(cfg_.numValues),
                             0.0);
    for (int round = 0; round < kCalibrationRounds; ++round) {
        trainPredictor();
        primeFrontend();
        condInBounds_ = false;
        core_.setProgram(kThread, &victim_);
        core_.runUntilRetired(kThread, 1);
        const std::vector<double> timings = probeFrontendTimings();
        for (int v = 0; v < cfg_.numValues; ++v) {
            frontendBaseline_[static_cast<std::size_t>(v)] +=
                timings[static_cast<std::size_t>(v)] /
                kCalibrationRounds;
        }
    }
}

void
SpectreAttack::primeFrontend()
{
    for (int v = 0; v < cfg_.numValues; ++v) {
        core_.setProgram(kThread, *probeChains_[static_cast<size_t>(v)]);
        core_.runUntilRetired(kThread, 2 * 8 * 5);
    }
}

void
SpectreAttack::primeL1i()
{
    for (int v = 0; v < cfg_.numValues; ++v) {
        core_.setProgram(kThread,
                         &l1iPrimeChains_[static_cast<size_t>(v)]);
        core_.runUntilRetired(kThread, 8 * 3);
    }
}

int
SpectreAttack::probeL1iFlushReload()
{
    int best = 0;
    double best_time = -1.0;
    for (int v = 0; v < cfg_.numValues; ++v) {
        gadgetRunner_->setEntry(
            gadgetAddr(v, SpectreVariant::L1iFlushReload));
        core_.setProgram(kThread, gadgetRunner_.get());
        const double t = core_.timedRun(kThread, 5);
        if (best_time < 0.0 || t < best_time) {
            best_time = t;
            best = v;
        }
    }
    return best;
}

int
SpectreAttack::probeL1iPrimeProbe()
{
    int best = 0;
    double best_time = -1.0;
    for (int v = 0; v < cfg_.numValues; ++v) {
        core_.setProgram(kThread,
                         &l1iPrimeChains_[static_cast<size_t>(v)]);
        const double t = core_.timedRun(kThread, 8 * 3);
        if (t > best_time) {
            best_time = t;
            best = v;
        }
    }
    return best;
}

int
SpectreAttack::probeMem(SpectreVariant variant, bool primed)
{
    (void)primed;
    int best = 0;
    double best_latency = -1.0;
    for (int v = 0; v < cfg_.numValues; ++v) {
        const auto res = l1d_.load(dataAddr(v));
        const double lat = static_cast<double>(res.latency) +
            core_.rng().gaussian(0.0, 1.0);
        core_.runCycles(res.latency);
        if (best_latency < 0.0 || lat < best_latency) {
            best_latency = lat;
            best = v;
        }
    }
    (void)variant;
    return best;
}

int
SpectreAttack::probeL1dLru()
{
    const Addr lru_base = cfg_.dataBase + 0x200000;
    int best = 0;
    double best_latency = -1.0;
    for (int v = 0; v < cfg_.numValues; ++v) {
        // The LRU-position line is the one the victim's fill would
        // have displaced.
        const Addr probe_addr =
            lru_base + static_cast<Addr>(v) * kDataStride;
        const auto res = l1d_.load(probe_addr);
        const double lat = static_cast<double>(res.latency) +
            core_.rng().gaussian(0.0, 1.0);
        core_.runCycles(res.latency);
        if (lat > best_latency) {
            best_latency = lat;
            best = v;
        }
    }
    return best;
}

void
SpectreAttack::backgroundTraffic()
{
    // Ambient working-set loads of the surrounding application; these
    // are the accesses the attack's misses dilute into.
    const Addr hot_base = cfg_.dataBase + 0x800000;
    for (int i = 0; i < cfg_.backgroundLoads; ++i)
        l1d_.load(hot_base + static_cast<Addr>(i % 32) * 64);
    core_.runCycles(static_cast<Cycles>(cfg_.backgroundLoads / 4));
}

SpectreResult
SpectreAttack::run(SpectreVariant variant,
                   const std::vector<int> &secrets)
{
    buildVictim(variant);
    buildProbes();

    l1d_.resetStats();
    const PerfCounters before = core_.counters(kThread);

    // Warm the structures common to every round.
    const Addr lru_base = cfg_.dataBase + 0x200000;
    switch (variant) {
      case SpectreVariant::Frontend:
        for (int pass = 0; pass < 2; ++pass)
            probeFrontend();
        break;
      case SpectreVariant::L1iPrimeProbe:
        probeL1iPrimeProbe();
        break;
      case SpectreVariant::L1dLru:
      case SpectreVariant::L1dFlushReload:
      case SpectreVariant::MemFlushReload:
        for (int v = 0; v < cfg_.numValues; ++v)
            l1d_.load(dataAddr(v));
        break;
      default:
        break;
    }

    if (variant == SpectreVariant::Frontend)
        calibrateFrontendBaseline();

    SpectreResult result;
    result.variant = variant;
    for (int secret : secrets) {
        lf_assert(secret >= 0 && secret < cfg_.numValues,
                  "secret %d out of range", secret);
        std::vector<int> votes(static_cast<std::size_t>(cfg_.numValues),
                               0);
        for (int rep = 0; rep < cfg_.attackRepetitions; ++rep) {
        // Train first: the in-bounds training runs architecturally
        // execute the benign gadget, so the prime/flush phase below
        // must come after to clear that pollution.
        trainPredictor();
        // Per-round setup phase.
        switch (variant) {
          case SpectreVariant::Frontend:
            primeFrontend();
            break;
          case SpectreVariant::L1iPrimeProbe:
            primeL1i();
            break;
          default:
            break;
        }
        switch (variant) {
          case SpectreVariant::L1iFlushReload:
            // clflush of shared code drops both the L1I line and the
            // derived micro-op cache line.
            for (int v = 0; v < cfg_.numValues; ++v) {
                const Addr addr = gadgetAddr(v, variant);
                core_.frontend().l1i().flushLine(addr);
                core_.frontend().dsb().flushKey(kThread, addr);
                core_.runCycles(2);
            }
            break;
          case SpectreVariant::MemFlushReload:
            for (int v = 0; v < cfg_.numValues; ++v) {
                l1d_.clflush(dataAddr(v));
                core_.runCycles(2);
            }
            break;
          case SpectreVariant::L1dFlushReload:
            // Evict candidates via conflicting fills (no clflush).
            for (int v = 0; v < cfg_.numValues; ++v) {
                for (int w = 0; w < 8; ++w) {
                    l1d_.load(lru_base + 0x100000 +
                              static_cast<Addr>(v) * kDataStride +
                              static_cast<Addr>(w) * 4096);
                }
            }
            break;
          case SpectreVariant::L1dLru:
            for (int v = 0; v < cfg_.numValues; ++v) {
                for (int w = 0; w < 8; ++w) {
                    l1d_.load(lru_base +
                              static_cast<Addr>(v) * kDataStride +
                              static_cast<Addr>(w) * 4096);
                }
            }
            break;
          default:
            break;
        }

        victimInvocation(secret, variant);

        int round_guess = -1;
        switch (variant) {
          case SpectreVariant::Frontend:
            round_guess = probeFrontend();
            break;
          case SpectreVariant::L1iFlushReload:
            round_guess = probeL1iFlushReload();
            break;
          case SpectreVariant::L1iPrimeProbe:
            round_guess = probeL1iPrimeProbe();
            break;
          case SpectreVariant::MemFlushReload:
            round_guess = probeMem(variant, false);
            break;
          case SpectreVariant::L1dFlushReload:
            round_guess = probeMem(variant, true);
            break;
          case SpectreVariant::L1dLru:
            round_guess = probeL1dLru();
            break;
        }
        ++votes[static_cast<std::size_t>(round_guess)];
        backgroundTraffic();
        } // repetitions

        const int recovered = static_cast<int>(std::distance(
            votes.begin(), std::max_element(votes.begin(), votes.end())));
        ++result.trials;
        if (recovered == secret)
            ++result.correct;
    }

    const PerfCounters delta = core_.counters(kThread).delta(before);
    result.l1Accesses = delta.l1iAccesses + l1d_.accesses();
    result.l1Misses = delta.l1iMisses + l1d_.misses();
    result.l1MissRate = result.l1Accesses == 0 ? 0.0
        : static_cast<double>(result.l1Misses) /
            static_cast<double>(result.l1Accesses);
    result.accuracy = result.trials == 0 ? 0.0
        : static_cast<double>(result.correct) /
            static_cast<double>(result.trials);
    return result;
}

} // namespace lf
