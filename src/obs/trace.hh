/**
 * @file
 * Bounded per-thread event tracing, exported as Chrome/Perfetto
 * `trace_event` JSON (chrome://tracing and ui.perfetto.dev both load
 * the output of renderTraceJson()).
 *
 * Design constraints, in order:
 *  - disabled cost ~ one relaxed atomic load per would-be event
 *    (every record function checks traceEnabled() first);
 *  - recording never allocates past the fixed per-thread ring
 *    capacity and never takes a lock after the ring exists — each
 *    ring is written only by its owning thread, so the runner's
 *    workers trace without contending;
 *  - bounded: a full ring drops further events (and counts the
 *    drops) rather than growing or overwriting history.
 *
 * Event names must be string literals (the ring stores the pointer,
 * not a copy). renderTraceJson() must only be called while no other
 * thread is recording — in practice after ExperimentRunner::run()
 * returned, whose thread join supplies the needed happens-before.
 */

#ifndef LF_OBS_TRACE_HH
#define LF_OBS_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace lf {
namespace obs {

/** @name Trace switch (process-global) */
/// @{
void setTraceEnabled(bool on);
bool traceEnabled();
/// @}

/** Microseconds since the process's trace epoch (steady clock). */
std::uint64_t traceNowUs();

/** Record a complete ('X') span from @p start_us to now. With
 *  @p has_arg, @p arg is exported as args.v (e.g. a trial index). */
void traceComplete(const char *name, std::uint64_t start_us,
                   std::uint64_t arg = 0, bool has_arg = false);

/** Record an instant ('i') event. */
void traceInstant(const char *name);

/** Record a counter ('C') sample (args.value = @p value). */
void traceCounter(const char *name, std::uint64_t value);

/** RAII complete-event span; records nothing when tracing is off at
 *  construction time. */
class TraceScope
{
  public:
    explicit TraceScope(const char *name)
        : name_(traceEnabled() ? name : nullptr),
          start_(name_ != nullptr ? traceNowUs() : 0)
    {
    }
    ~TraceScope()
    {
        if (name_ != nullptr)
            traceComplete(name_, start_);
    }
    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    const char *name_;
    std::uint64_t start_;
};

/** Events recorded so far (all threads). */
std::size_t traceEventCount();

/** Events dropped because a thread's ring was full. */
std::size_t traceDroppedEvents();

/** Drop every recorded event (ring capacity is retained). Call
 *  between runs, under the same no-concurrent-recording contract as
 *  renderTraceJson(). */
void clearTrace();

/** Render everything recorded as one Chrome trace_event JSON object:
 *  {"traceEvents":[...],"displayTimeUnit":"ms"}. */
std::string renderTraceJson();

} // namespace obs
} // namespace lf

#endif // LF_OBS_TRACE_HH
