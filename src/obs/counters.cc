#include "obs/counters.hh"

#include <atomic>
#include <sstream>

#include "sim/core.hh"

namespace lf {
namespace obs {

namespace {

std::atomic<bool> g_countersEnabled{false};

} // namespace

const std::vector<CounterInfo> &
counterCatalog()
{
    static const std::vector<CounterInfo> catalog = {
        {"uops_mite", "micro-ops delivered by the MITE (legacy decode)",
         &CounterSet::uopsMite},
        {"uops_dsb", "micro-ops delivered by the DSB (micro-op cache)",
         &CounterSet::uopsDsb},
        {"uops_lsd", "micro-ops replayed by the LSD (loop stream)",
         &CounterSet::uopsLsd},
        {"blocks_delivered", "attack mix-blocks whose first chunk was"
         " delivered", &CounterSet::blocksDelivered},
        {"dsb_hits", "DSB line lookups that hit",
         &CounterSet::dsbHits},
        {"dsb_misses", "DSB line lookups that missed",
         &CounterSet::dsbMisses},
        {"dsb_evictions", "DSB lines evicted (capacity or conflict)",
         &CounterSet::dsbEvictions},
        {"dsb_inserts", "DSB lines filled by MITE decodes",
         &CounterSet::dsbInserts},
        {"dsb_partition_transitions", "SMT repartitionings of the DSB"
         " (the MT channels' signal)",
         &CounterSet::dsbPartitionTransitions},
        {"dsb_to_mite_switches", "delivery path switches DSB -> MITE",
         &CounterSet::dsbToMiteSwitches},
        {"mite_to_dsb_switches", "delivery path switches MITE -> DSB",
         &CounterSet::miteToDsbSwitches},
        {"lsd_captures", "loops captured (LSD engagements)",
         &CounterSet::lsdCaptures},
        {"lsd_flushes", "LSD replays flushed mid-loop",
         &CounterSet::lsdFlushes},
        {"lcp_stall_cycles", "predecode stall cycles charged to LCPs",
         &CounterSet::lcpStallCycles},
        {"switch_penalty_cycles", "cycles charged to DSB<->MITE path"
         " switches", &CounterSet::switchPenaltyCycles},
        {"mispredict_stall_cycles", "cycles charged to conditional"
         " mispredicts", &CounterSet::mispredictStallCycles},
        {"btb_miss_stall_cycles", "cycles charged to BTB misses",
         &CounterSet::btbMissStallCycles},
        {"l1i_miss_stall_cycles", "cycles charged to L1I fill latency",
         &CounterSet::l1iMissStallCycles},
        {"l1i_accesses", "L1I line accesses",
         &CounterSet::l1iAccesses},
        {"l1i_misses", "L1I line misses", &CounterSet::l1iMisses},
        {"btb_misses", "taken branches absent from the BTB",
         &CounterSet::btbMisses},
        {"cond_mispredicts", "conditional branch mispredicts",
         &CounterSet::condMispredicts},
        {"idq_pushes", "bulk IDQ deliveries (DSB line / MITE chunk /"
         " LSD burst)", &CounterSet::idqPushes},
        {"idq_pushed_uops", "micro-ops pushed into the IDQs",
         &CounterSet::idqPushedUops},
        {"idq_pops", "bulk IDQ drains by the backend",
         &CounterSet::idqPops},
        {"idq_occupancy_at_push", "summed IDQ depth after each push"
         " (divide by idq_pushes for the mean)",
         &CounterSet::idqOccupancyAtPush},
        {"retired_insts", "instructions retired",
         &CounterSet::retiredInsts},
        {"retired_uops", "micro-ops retired",
         &CounterSet::retiredUops},
        {"retire_slot_cycles", "backend cycles actually ticked",
         &CounterSet::retireSlotCycles},
        {"retire_slots_used", "retire slots that carried a micro-op",
         &CounterSet::retireSlotsUsed},
        {"spec_chunks", "chunks fetched on the speculative (wrong)"
         " path", &CounterSet::specChunks},
        {"cycles", "core cycles elapsed", &CounterSet::cycles},
        {"fast_forwarded_cycles", "cycles advanced by stall"
         " fast-forward instead of ticking",
         &CounterSet::fastForwardedCycles},
        {"prepared_cache_hits", "prepared-chain builds served from the"
         " process-wide cache", &CounterSet::preparedCacheHits},
        {"prepared_cache_misses", "prepared-chain builds done from"
         " scratch", &CounterSet::preparedCacheMisses},
        {"snapshot_hits", "trials whose calibration was served by a"
         " warm-state snapshot restore", &CounterSet::snapshotHits},
        {"snapshot_misses", "first-of-cell trials that calibrated and"
         " tried to publish a snapshot", &CounterSet::snapshotMisses},
        {"snapshot_bypasses", "trials of known non-snapshottable cells"
         " (stochastic calibration) that calibrated cold",
         &CounterSet::snapshotBypasses},
    };
    return catalog;
}

void
setCountersEnabled(bool on)
{
    g_countersEnabled.store(on, std::memory_order_relaxed);
}

bool
countersEnabled()
{
    return g_countersEnabled.load(std::memory_order_relaxed);
}

CounterSet
collectCoreCounters(const Core &core)
{
    CounterSet set;
    const FrontendEngine &engine = core.frontend();
    for (int tid = 0; tid < FrontendEngine::kNumThreads; ++tid) {
        const PerfCounters &c =
            core.counters(static_cast<ThreadId>(tid));
        set.uopsMite += c.uopsMite;
        set.uopsDsb += c.uopsDsb;
        set.uopsLsd += c.uopsLsd;
        set.blocksDelivered += c.blocksDelivered;
        set.dsbToMiteSwitches += c.dsbToMiteSwitches;
        set.miteToDsbSwitches += c.miteToDsbSwitches;
        set.lsdCaptures += c.lsdEngagements;
        set.lsdFlushes += c.lsdFlushes;
        set.lcpStallCycles += c.lcpStallCycles;
        set.switchPenaltyCycles += c.switchPenaltyCycles;
        set.mispredictStallCycles += c.mispredictStallCycles;
        set.btbMissStallCycles += c.btbMissStallCycles;
        set.l1iMissStallCycles += c.l1iMissStallCycles;
        set.l1iAccesses += c.l1iAccesses;
        set.l1iMisses += c.l1iMisses;
        set.btbMisses += c.btbMisses;
        set.condMispredicts += c.condMispredicts;
        set.idqPushes += c.idqPushes;
        set.idqPushedUops += c.idqPushedUops;
        set.idqPops += c.idqPops;
        set.idqOccupancyAtPush += c.idqOccupancyAtPush;
        set.retiredInsts += c.retiredInsts;
        set.retiredUops += c.retiredUops;
        set.specChunks += c.specChunks;
    }
    const Dsb &dsb = engine.dsb();
    set.dsbHits = dsb.hits();
    set.dsbMisses = dsb.misses();
    set.dsbEvictions = dsb.evictions();
    set.dsbInserts = dsb.inserts();
    set.dsbPartitionTransitions = dsb.partitionTransitions();
    set.retireSlotCycles = core.backend().retireSlotCycles();
    set.retireSlotsUsed = core.backend().retireSlotsUsed();
    set.cycles = static_cast<std::uint64_t>(engine.cycle());
    set.fastForwardedCycles =
        static_cast<std::uint64_t>(engine.fastForwardedCycles());
    return set;
}

std::string
renderCounterSetJson(const CounterSet &set)
{
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const CounterInfo &info : counterCatalog()) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << info.name << "\":" << set.*info.field;
    }
    os << '}';
    return os.str();
}

} // namespace obs
} // namespace lf
