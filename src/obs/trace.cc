#include "obs/trace.hh"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace lf {
namespace obs {

namespace {

std::atomic<bool> g_traceEnabled{false};

struct TraceEvent
{
    const char *name;
    char phase;       // 'X' complete, 'i' instant, 'C' counter
    std::uint64_t ts; // microseconds
    std::uint64_t dur;
    std::uint64_t arg;
    bool hasArg;
};

/** Per-thread event buffer; written only by its owning thread. The
 *  cap bounds trace memory at ~3 MiB per recording thread. */
constexpr std::size_t kRingCapacity = 1u << 16;

struct Ring
{
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
};

struct Registry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<Ring>> rings;
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

Ring &
threadRing()
{
    thread_local std::shared_ptr<Ring> ring = [] {
        auto fresh = std::make_shared<Ring>();
        std::lock_guard<std::mutex> lock(registry().mutex);
        fresh->tid =
            static_cast<std::uint32_t>(registry().rings.size());
        registry().rings.push_back(fresh);
        return fresh;
    }();
    return *ring;
}

void
record(const char *name, char phase, std::uint64_t ts,
       std::uint64_t dur, std::uint64_t arg, bool has_arg)
{
    Ring &ring = threadRing();
    if (ring.events.size() >= kRingCapacity) {
        ++ring.dropped;
        return;
    }
    if (ring.events.capacity() == 0)
        ring.events.reserve(1024);
    ring.events.push_back({name, phase, ts, dur, arg, has_arg});
}

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

} // namespace

void
setTraceEnabled(bool on)
{
    if (on)
        traceEpoch(); // pin the epoch before the first event
    g_traceEnabled.store(on, std::memory_order_relaxed);
}

bool
traceEnabled()
{
    return g_traceEnabled.load(std::memory_order_relaxed);
}

std::uint64_t
traceNowUs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - traceEpoch())
            .count());
}

void
traceComplete(const char *name, std::uint64_t start_us,
              std::uint64_t arg, bool has_arg)
{
    if (!traceEnabled())
        return;
    const std::uint64_t now = traceNowUs();
    record(name, 'X', start_us,
           now > start_us ? now - start_us : 0, arg, has_arg);
}

void
traceInstant(const char *name)
{
    if (!traceEnabled())
        return;
    record(name, 'i', traceNowUs(), 0, 0, false);
}

void
traceCounter(const char *name, std::uint64_t value)
{
    if (!traceEnabled())
        return;
    record(name, 'C', traceNowUs(), 0, value, true);
}

std::size_t
traceEventCount()
{
    std::lock_guard<std::mutex> lock(registry().mutex);
    std::size_t count = 0;
    for (const auto &ring : registry().rings)
        count += ring->events.size();
    return count;
}

std::size_t
traceDroppedEvents()
{
    std::lock_guard<std::mutex> lock(registry().mutex);
    std::size_t dropped = 0;
    for (const auto &ring : registry().rings)
        dropped += static_cast<std::size_t>(ring->dropped);
    return dropped;
}

void
clearTrace()
{
    std::lock_guard<std::mutex> lock(registry().mutex);
    for (const auto &ring : registry().rings) {
        ring->events.clear();
        ring->dropped = 0;
    }
}

std::string
renderTraceJson()
{
    std::lock_guard<std::mutex> lock(registry().mutex);
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto &ring : registry().rings) {
        for (const TraceEvent &ev : ring->events) {
            if (!first)
                os << ',';
            first = false;
            os << "{\"name\":\"" << ev.name << "\",\"cat\":\"lf\""
               << ",\"ph\":\"" << ev.phase << "\",\"ts\":" << ev.ts
               << ",\"pid\":1,\"tid\":" << ring->tid;
            if (ev.phase == 'X')
                os << ",\"dur\":" << ev.dur;
            if (ev.phase == 'i')
                os << ",\"s\":\"t\"";
            if (ev.phase == 'C')
                os << ",\"args\":{\"value\":" << ev.arg << "}";
            else if (ev.hasArg)
                os << ",\"args\":{\"v\":" << ev.arg << "}";
            os << '}';
        }
    }
    os << "],\"displayTimeUnit\":\"ms\"}";
    return os.str();
}

} // namespace obs
} // namespace lf
