/**
 * @file
 * RunMetrics: the structured end-of-run report of one streaming
 * ExperimentRunner::run() — the evolution of the bare StreamStats
 * park/broadcast counters into a full throughput/caching/occupancy
 * summary. Install with ExperimentRunner::setMetricsSink(); render
 * with renderRunMetricsJson() (`lf_run --metrics FILE`) or the
 * one-line form the `--progress` final line prints.
 *
 * Everything here is observational: wall-clock seconds and rates vary
 * run to run, but collecting them never touches trial results.
 */

#ifndef LF_OBS_METRICS_HH
#define LF_OBS_METRICS_HH

#include <array>
#include <cstdint>
#include <string>

namespace lf {
namespace obs {

struct RunMetrics
{
    /** @name Outcome counts */
    /// @{
    std::uint64_t trials = 0;
    std::uint64_t okTrials = 0;
    std::uint64_t errorTrials = 0;
    std::uint64_t skippedTrials = 0;
    /// @}

    /** @name Throughput */
    /// @{
    int workers = 0;
    double seconds = 0.0;
    double trialsPerSec = 0.0;
    /// @}

    /** @name Runner coordination (the former StreamStats) */
    /// @{
    std::uint64_t workerParks = 0;
    std::uint64_t consumerParks = 0;
    std::uint64_t wakeBroadcasts = 0;
    /// @}

    /** @name Prepared-chain cache traffic during the run */
    /// @{
    std::uint64_t preparedCacheHits = 0;
    std::uint64_t preparedCacheMisses = 0;
    /// @}

    /**
     * Reorder-window occupancy histogram, sampled at each delivery:
     * bucket b counts deliveries that saw an in-flight backlog in
     * [b, b+1) eighths of the window (bucket 7 includes a full
     * window). A single-threaded run lands every sample in bucket 0.
     */
    static constexpr std::size_t kOccupancyBuckets = 8;
    std::uint64_t reorderWindow = 0;
    std::array<std::uint64_t, kOccupancyBuckets> windowOccupancy{};

    double preparedCacheHitRate() const
    {
        const std::uint64_t total =
            preparedCacheHits + preparedCacheMisses;
        return total > 0
            ? static_cast<double>(preparedCacheHits) /
                static_cast<double>(total)
            : 0.0;
    }
};

/** Render as a single stable-schema JSON object (snake_case keys;
 *  see docs/OBSERVABILITY.md for the schema). */
std::string renderRunMetricsJson(const RunMetrics &metrics);

/** The `--progress` final line: trials, seconds, trials/s, prepared-
 *  cache hit rate, parks. */
std::string runMetricsOneLiner(const RunMetrics &metrics);

} // namespace obs
} // namespace lf

#endif // LF_OBS_METRICS_HH
