#include "obs/metrics.hh"

#include <cstdio>
#include <sstream>

#include "run/sinks.hh"

namespace lf {
namespace obs {

std::string
renderRunMetricsJson(const RunMetrics &m)
{
    std::ostringstream os;
    os << "{\"schema\":\"lf_run_metrics_v1\""
       << ",\"trials\":" << m.trials
       << ",\"ok_trials\":" << m.okTrials
       << ",\"error_trials\":" << m.errorTrials
       << ",\"skipped_trials\":" << m.skippedTrials
       << ",\"workers\":" << m.workers
       << ",\"seconds\":" << jsonNumber(m.seconds)
       << ",\"trials_per_sec\":" << jsonNumber(m.trialsPerSec)
       << ",\"worker_parks\":" << m.workerParks
       << ",\"consumer_parks\":" << m.consumerParks
       << ",\"wake_broadcasts\":" << m.wakeBroadcasts
       << ",\"prepared_cache_hits\":" << m.preparedCacheHits
       << ",\"prepared_cache_misses\":" << m.preparedCacheMisses
       << ",\"prepared_cache_hit_rate\":"
       << jsonNumber(m.preparedCacheHitRate())
       << ",\"reorder_window\":" << m.reorderWindow
       << ",\"window_occupancy_histogram\":[";
    for (std::size_t b = 0; b < RunMetrics::kOccupancyBuckets; ++b) {
        if (b > 0)
            os << ',';
        os << m.windowOccupancy[b];
    }
    os << "]}";
    return os.str();
}

std::string
runMetricsOneLiner(const RunMetrics &m)
{
    char line[192];
    std::snprintf(line, sizeof(line),
                  "%llu trials in %.2fs (%.1f trials/s, cache hit"
                  " %.0f%%, %llu worker parks)",
                  static_cast<unsigned long long>(m.trials), m.seconds,
                  m.trialsPerSec, 100.0 * m.preparedCacheHitRate(),
                  static_cast<unsigned long long>(m.workerParks));
    return line;
}

} // namespace obs
} // namespace lf
