/**
 * @file
 * CounterSet: the PMU-style named-counter surface of the simulator.
 *
 * The underlying increments (PerfCounters in the frontend threads, Dsb
 * statistics, Backend retire slots, the prepared-chain cache) are
 * always on and always cheap — plain integer adds on state the hot
 * path already owns. What this layer adds is *collection*: a single
 * named snapshot per trial, taken only when counter collection is
 * enabled, so the default run pays nothing beyond the increments
 * themselves (the throughput bench gates that overhead at <= 2% of
 * the PR-7 baseline).
 *
 * Collection is provably inert: it only reads, so every trial output
 * is bit-identical with counters enabled or disabled — the streaming
 * tests enforce that registry-wide. The catalog below is the single
 * source of truth for counter names; `lf_run --list-counters` renders
 * it and scripts/check_docs.sh fails on any name missing from
 * docs/OBSERVABILITY.md.
 */

#ifndef LF_OBS_COUNTERS_HH
#define LF_OBS_COUNTERS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace lf {

class Core;

namespace obs {

/** One per-core counter snapshot, all counters zero-initialised.
 *  Per-thread PerfCounters are summed across both hardware threads;
 *  Dsb/Backend/engine-wide values are per core. */
struct CounterSet
{
    /** @name Micro-op delivery */
    /// @{
    std::uint64_t uopsMite = 0;
    std::uint64_t uopsDsb = 0;
    std::uint64_t uopsLsd = 0;
    std::uint64_t blocksDelivered = 0;
    /// @}

    /** @name DSB (micro-op cache) */
    /// @{
    std::uint64_t dsbHits = 0;
    std::uint64_t dsbMisses = 0;
    std::uint64_t dsbEvictions = 0;
    std::uint64_t dsbInserts = 0;
    std::uint64_t dsbPartitionTransitions = 0;
    std::uint64_t dsbToMiteSwitches = 0;
    std::uint64_t miteToDsbSwitches = 0;
    /// @}

    /** @name LSD */
    /// @{
    std::uint64_t lsdCaptures = 0;
    std::uint64_t lsdFlushes = 0;
    /// @}

    /** @name Stall cycles by reason */
    /// @{
    std::uint64_t lcpStallCycles = 0;
    std::uint64_t switchPenaltyCycles = 0;
    std::uint64_t mispredictStallCycles = 0;
    std::uint64_t btbMissStallCycles = 0;
    std::uint64_t l1iMissStallCycles = 0;
    /// @}

    /** @name Caches and prediction */
    /// @{
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t btbMisses = 0;
    std::uint64_t condMispredicts = 0;
    /// @}

    /** @name IDQ traffic */
    /// @{
    std::uint64_t idqPushes = 0;
    std::uint64_t idqPushedUops = 0;
    std::uint64_t idqPops = 0;
    std::uint64_t idqOccupancyAtPush = 0;
    /// @}

    /** @name Retirement and time */
    /// @{
    std::uint64_t retiredInsts = 0;
    std::uint64_t retiredUops = 0;
    std::uint64_t retireSlotCycles = 0;
    std::uint64_t retireSlotsUsed = 0;
    std::uint64_t specChunks = 0;
    std::uint64_t cycles = 0;
    std::uint64_t fastForwardedCycles = 0;
    /// @}

    /** @name Prepared-chain cache (filled by runExperiment) */
    /// @{
    std::uint64_t preparedCacheHits = 0;
    std::uint64_t preparedCacheMisses = 0;
    /// @}

    /** @name Warm-snapshot cache (filled by runExperiment;
     *  sim/snapshot.hh) */
    /// @{
    std::uint64_t snapshotHits = 0;
    std::uint64_t snapshotMisses = 0;
    std::uint64_t snapshotBypasses = 0;
    /// @}
};

/** Catalog entry: the exported snake_case name, a one-line
 *  description, and the CounterSet field it reads. */
struct CounterInfo
{
    const char *name;
    const char *description;
    std::uint64_t CounterSet::*field;
};

/** Every counter, in export order. Names are unique snake_case. */
const std::vector<CounterInfo> &counterCatalog();

/** @name Collection switch
 * Process-global, read once per trial; flip only between runs. Off
 * (the default), trials carry no snapshot and collection costs
 * nothing. On or off, trial *results* are bit-identical. */
/// @{
void setCountersEnabled(bool on);
bool countersEnabled();

class CounterScope
{
  public:
    explicit CounterScope(bool on) : previous_(countersEnabled())
    {
        setCountersEnabled(on);
    }
    ~CounterScope() { setCountersEnabled(previous_); }
    CounterScope(const CounterScope &) = delete;
    CounterScope &operator=(const CounterScope &) = delete;

  private:
    bool previous_;
};
/// @}

/**
 * Snapshot @p core's counters since its last reset (i.e. since the
 * trial bound it). Read-only. The prepared-cache fields are not the
 * core's to know and stay zero; runExperiment() fills them from the
 * calling thread's prepared-cache delta.
 */
CounterSet collectCoreCounters(const Core &core);

/** Render @p set as a one-line-per-counter JSON object, catalog
 *  order: {"uops_mite":N,...}. */
std::string renderCounterSetJson(const CounterSet &set);

} // namespace obs
} // namespace lf

#endif // LF_OBS_COUNTERS_HH
