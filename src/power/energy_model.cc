#include "power/energy_model.hh"

#include "common/logging.hh"

namespace lf {

EnergyModel::EnergyModel(const EnergyParams &params, double freq_ghz)
    : params_(params), freqGhz_(freq_ghz)
{
    lf_assert(freq_ghz > 0.0, "frequency must be positive");
}

double
EnergyModel::secondsOf(Cycles cycles) const
{
    return static_cast<double>(cycles) / (freqGhz_ * 1e9);
}

MicroJoules
EnergyModel::energyOf(const PerfCounters &delta, Cycles cycles) const
{
    const double nano =
        params_.nJPerUopLsd * static_cast<double>(delta.uopsLsd) +
        params_.nJPerUopDsb * static_cast<double>(delta.uopsDsb) +
        params_.nJPerUopMite * static_cast<double>(delta.uopsMite) +
        params_.nJPerLcpStallCycle *
            static_cast<double>(delta.lcpStallCycles) +
        params_.nJPerPathSwitch *
            static_cast<double>(delta.dsbToMiteSwitches +
                                delta.miteToDsbSwitches) +
        params_.nJPerL1iMiss * static_cast<double>(delta.l1iMisses);
    const double dynamic_uj = nano * 1e-3;
    const double static_uj = params_.staticWatts * secondsOf(cycles) * 1e6;
    return dynamic_uj + static_uj;
}

double
EnergyModel::averagePowerWatts(const PerfCounters &delta,
                               Cycles cycles) const
{
    if (cycles == 0)
        return 0.0;
    const double seconds = secondsOf(cycles);
    return energyOf(delta, cycles) * 1e-6 / seconds;
}

} // namespace lf
