/**
 * @file
 * Frontend energy model.
 *
 * Energy is a pure function of PerfCounters deltas: each delivered
 * micro-op costs an amount that depends on its delivery path (MITE
 * decode is by far the most expensive — that is the entire reason the
 * DSB and LSD exist), plus per-event costs for LCP stalls, path
 * switches and L1I misses, plus static power integrated over time.
 *
 * Default constants are calibrated so a Gold 6226-like core shows the
 * package-power separations of Fig. 9: LSD streaming ~52 W, DSB
 * delivery ~57 W, MITE+DSB ~65 W.
 */

#ifndef LF_POWER_ENERGY_MODEL_HH
#define LF_POWER_ENERGY_MODEL_HH

#include "common/types.hh"
#include "frontend/perf_counters.hh"

namespace lf {

struct EnergyParams
{
    double staticWatts = 45.0;          //!< Baseline package power.
    double nJPerUopLsd = 0.5;
    double nJPerUopDsb = 0.9;
    double nJPerUopMite = 6.0;
    double nJPerLcpStallCycle = 2.0;
    double nJPerPathSwitch = 8.0;
    double nJPerL1iMiss = 25.0;
};

class EnergyModel
{
  public:
    EnergyModel(const EnergyParams &params, double freq_ghz);

    /** Energy in microjoules of a counter delta over @p cycles. */
    MicroJoules energyOf(const PerfCounters &delta, Cycles cycles) const;

    /** Average power in watts of a counter delta over @p cycles. */
    double averagePowerWatts(const PerfCounters &delta,
                             Cycles cycles) const;

    /** Seconds corresponding to @p cycles at the core frequency. */
    double secondsOf(Cycles cycles) const;

    const EnergyParams &params() const { return params_; }
    double freqGhz() const { return freqGhz_; }

  private:
    EnergyParams params_;
    double freqGhz_;
};

} // namespace lf

#endif // LF_POWER_ENERGY_MODEL_HH
