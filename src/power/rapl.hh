/**
 * @file
 * Simulated Running Average Power Limit (RAPL) energy counter.
 *
 * Models the properties the paper's power channels depend on:
 *  - the counter only refreshes at a fixed update interval
 *    (~50 us, i.e. ~20 kHz — the bandwidth cap of the power channel);
 *  - readings are quantized to the RAPL energy unit;
 *  - readings carry a small amount of measurement noise.
 *
 * The attacker feeds true energy in via accumulate() (driven from the
 * EnergyModel over simulation counters) and reads the counter like
 * software reads MSR_PKG_ENERGY_STATUS.
 */

#ifndef LF_POWER_RAPL_HH
#define LF_POWER_RAPL_HH

#include "common/rng.hh"
#include "common/types.hh"

namespace lf {

struct RaplParams
{
    double updateIntervalUs = 50.0;    //!< ~20 kHz refresh.
    double quantumMicroJoules = 61.0;  //!< Energy status unit.
    double noiseStddevMicroJoules = 8.0;
};

class RaplCounter
{
  public:
    RaplCounter(const RaplParams &params, double freq_ghz, Rng rng);

    /** Add true consumed energy ending at absolute cycle @p now. */
    void accumulate(MicroJoules energy, Cycles now);

    /**
     * Read the counter at absolute cycle @p now: returns cumulative
     * energy as of the last update-interval boundary, quantized, plus
     * noise. Monotonically non-decreasing modulo noise.
     */
    MicroJoules read(Cycles now);

    /** Update interval expressed in core cycles. */
    Cycles updateIntervalCycles() const { return intervalCycles_; }

    const RaplParams &params() const { return params_; }

    /** @name Warm-state snapshot (sim/snapshot.hh)
     * Everything deterministic about the counter — the private Rng is
     * deliberately excluded: it belongs to the trial seed, never to a
     * shared snapshot. */
    /// @{
    struct SavedState
    {
        MicroJoules trueEnergy;
        MicroJoules visibleEnergy;
        Cycles lastAccumulateCycle;
        Cycles lastRefreshCycle;
    };

    SavedState saveState() const
    {
        return {trueEnergy_, visibleEnergy_, lastAccumulateCycle_,
                lastRefreshCycle_};
    }

    void loadState(const SavedState &s)
    {
        trueEnergy_ = s.trueEnergy;
        visibleEnergy_ = s.visibleEnergy;
        lastAccumulateCycle_ = s.lastAccumulateCycle;
        lastRefreshCycle_ = s.lastRefreshCycle;
    }
    /// @}

  private:
    RaplParams params_;
    Cycles intervalCycles_;
    Rng rng_;

    MicroJoules trueEnergy_ = 0.0;      //!< Total energy fed in.
    MicroJoules visibleEnergy_ = 0.0;   //!< Energy at last refresh.
    Cycles lastAccumulateCycle_ = 0;
    Cycles lastRefreshCycle_ = 0;
};

} // namespace lf

#endif // LF_POWER_RAPL_HH
