#include "power/rapl.hh"

#include <cmath>

#include "common/logging.hh"

namespace lf {

RaplCounter::RaplCounter(const RaplParams &params, double freq_ghz,
                         Rng rng)
    : params_(params), rng_(rng)
{
    lf_assert(params.updateIntervalUs > 0.0, "bad RAPL interval");
    intervalCycles_ = static_cast<Cycles>(
        std::llround(params.updateIntervalUs * 1e-6 * freq_ghz * 1e9));
    lf_assert(intervalCycles_ > 0, "RAPL interval rounds to zero cycles");
}

void
RaplCounter::accumulate(MicroJoules energy, Cycles now)
{
    lf_assert(now >= lastAccumulateCycle_,
              "RAPL accumulate must move forward in time");
    lf_assert(energy >= 0.0, "negative energy");

    // Refresh the visible counter at every interval boundary crossed,
    // attributing energy linearly across the accumulation span.
    const Cycles span = now - lastAccumulateCycle_;
    Cycles boundary =
        (lastAccumulateCycle_ / intervalCycles_ + 1) * intervalCycles_;
    while (boundary <= now) {
        const double fraction = span == 0 ? 1.0
            : static_cast<double>(boundary - lastAccumulateCycle_) /
                static_cast<double>(span);
        visibleEnergy_ = trueEnergy_ + energy * fraction;
        lastRefreshCycle_ = boundary;
        boundary += intervalCycles_;
    }
    trueEnergy_ += energy;
    lastAccumulateCycle_ = now;
}

MicroJoules
RaplCounter::read(Cycles now)
{
    // Software can read at any time but only sees the last refresh.
    (void)now;
    const double quantum = params_.quantumMicroJoules;
    double value = std::floor(visibleEnergy_ / quantum) * quantum;
    // Zero noise draws nothing, keeping quiet-model reads
    // RNG-independent (same contract as Core::noisyMeasurement).
    if (params_.noiseStddevMicroJoules != 0.0)
        value += rng_.gaussian(0.0, params_.noiseStddevMicroJoules);
    return value < 0.0 ? 0.0 : value;
}

} // namespace lf
