/**
 * @file
 * Identifying what a co-located victim is running (Sec. XI): the
 * attacker loops 100 nops on its own SMT thread, samples its own IPC,
 * and matches the waveform against reference traces — no performance
 * counters, no cache evictions, robust to DSB/LSD partitioning.
 * Bonus: microcode patch fingerprinting (Sec. X).
 */

#include <cstdio>

#include "common/stats.hh"
#include "fingerprint/patch_detect.hh"
#include "fingerprint/side_channel.hh"
#include "fingerprint/workloads.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    std::printf("== Victim fingerprinting demo (Gold 6226) ==\n\n");

    TraceConfig config;
    config.samples = 80;
    const auto victims = cnnWorkloads();

    // Build reference traces for the four CNN models.
    std::vector<std::vector<double>> references;
    for (const auto &victim : victims) {
        references.push_back(
            attackerIpcTrace(gold6226(), victim, config, 1));
    }

    // A "mystery" victim runs; the attacker only watches its own IPC.
    const std::size_t mystery = 2; // VGG
    const auto observed =
        attackerIpcTrace(gold6226(), victims[mystery], config, 999);

    std::printf("Observed trace distance to each reference:\n");
    std::size_t best = 0;
    for (std::size_t i = 0; i < victims.size(); ++i) {
        const double dist = euclideanDistance(observed, references[i]);
        std::printf("  %-12s %.3f\n", victims[i].name().c_str(), dist);
        if (dist < euclideanDistance(observed, references[best]))
            best = i;
    }
    std::printf("=> mystery victim classified as: %s (truth: %s)\n\n",
                victims[best].name().c_str(),
                victims[mystery].name().c_str());

    // Microcode patch fingerprinting (Sec. X).
    PatchDetector detector(gold6226());
    for (const MicrocodePatch &patch : {patch1(), patch2()}) {
        const bool lsd_on = detector.detectLsdEnabled(patch, 7);
        std::printf("Probing microcode %s -> LSD %s => %s\n",
                    patch.name.c_str(), lsd_on ? "ENABLED" : "DISABLED",
                    lsd_on ? "old patch1 (pre-CVE-2021-24489 fixes)"
                           : "new patch2 (LSD fused off)");
    }
    return 0;
}
