/**
 * @file
 * Quickstart: build a simulated Intel core, run the three frontend
 * paths, and see the timing separations every attack in this library
 * is built on. Then transmit a short covert message.
 */

#include <cstdio>

#include "common/message.hh"
#include "core/nonmt_channels.hh"
#include "core/trial_context.hh"
#include "isa/mix_block.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"
#include "sim/executor.hh"

using namespace lf;

int
main()
{
    std::printf("== leaky-frontends quickstart ==\n\n");

    // 1. A simulated Xeon Gold 6226 core (Table I of the paper).
    Core core(gold6226());
    std::printf("CPU model: %s (%s, %.1f GHz, LSD %s)\n\n",
                core.model().name.c_str(),
                core.model().microarchitecture.c_str(),
                core.model().freqGhz,
                core.model().lsdEnabled() ? "enabled" : "disabled");

    // 2. The paper's instruction mix block: 4 mov + 1 jmp = 25 bytes,
    //    5 micro-ops. Chain 8 of them aliasing DSB set 5: the loop
    //    fits the LSD. Chain 9: permanent DSB eviction -> MITE.
    for (int blocks : {8, 9}) {
        std::vector<BlockSpec> specs;
        for (int i = 0; i < blocks; ++i)
            specs.push_back({i, false});
        const auto chain = buildMixBlockChain(0x400000, 5, specs);
        const double cpi =
            steadyCyclesPerIter(core, 0, chain, 20, 100);
        const auto &counters = core.counters(0);
        std::printf("%d-block loop: %.2f cycles/iteration "
                    "(LSD uops so far: %llu, MITE uops: %llu)\n",
                    blocks, cpi,
                    static_cast<unsigned long long>(counters.uopsLsd),
                    static_cast<unsigned long long>(counters.uopsMite));
        core.clearProgram(0);
    }

    // 3. Transmit a covert message over the fastest channel of the
    //    paper (non-MT fast eviction, Table III).
    std::printf("\nTransmitting \"HI!\" over the non-MT eviction"
                " channel...\n");
    TrialContext ctx(xeonE2288G());
    ChannelConfig cfg;
    cfg.d = 6;
    NonMtEvictionChannel channel(ctx.core(), cfg);
    const auto message = textToBits("HI!");
    const ChannelResult result = channel.transmit(message, ctx);
    std::printf("  received: \"%s\"\n",
                bitsToText(result.received).c_str());
    std::printf("  rate: %.1f Kbps, error rate: %.2f%%\n",
                result.transmissionKbps, result.errorRate * 100.0);
    return 0;
}
