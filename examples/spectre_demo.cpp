/**
 * @file
 * The frontend Spectre v1 variant (Sec. IX): a transiently executed
 * disclosure gadget encodes a 5-bit secret into which DSB set its
 * instruction block occupies — no data-cache footprint at all. The
 * demo recovers a short string and compares the L1 footprint against
 * a classic MEM Flush+Reload disclosure.
 */

#include <cstdio>

#include "sim/cpu_model.hh"
#include "spectre/spectre.hh"

using namespace lf;

int
main()
{
    std::printf("== Frontend Spectre v1 demo (Gold 6226) ==\n\n");

    // Secret: "FE" packed into 5-bit chunks (values 0..31).
    const std::string secret = "FE";
    std::vector<int> chunks;
    for (char c : secret) {
        chunks.push_back((c >> 3) & 31);
        chunks.push_back(c & 7);
    }

    Core core(gold6226(), 17);
    SpectreAttack attack(core);

    std::printf("Recovering %zu 5-bit chunks via the frontend (DSB-"
                "set) channel...\n", chunks.size());
    const SpectreResult frontend =
        attack.run(SpectreVariant::Frontend, chunks);
    std::printf("  accuracy: %.0f%%, L1 miss rate: %.3f%%\n",
                frontend.accuracy * 100.0,
                frontend.l1MissRate * 100.0);

    std::printf("Same secrets via MEM Flush+Reload (baseline)...\n");
    const SpectreResult mem =
        attack.run(SpectreVariant::MemFlushReload, chunks);
    std::printf("  accuracy: %.0f%%, L1 miss rate: %.3f%%\n",
                mem.accuracy * 100.0, mem.l1MissRate * 100.0);

    std::printf("\nThe frontend channel leaks through the micro-op"
                " cache alone:\n  %.3f%% vs %.3f%% induced L1 misses"
                " (paper Table VII: 0.21%% vs 2.81%%).\n",
                frontend.l1MissRate * 100.0, mem.l1MissRate * 100.0);
    return 0;
}
