/**
 * @file
 * A tour of every covert-channel family in the library: MT and non-MT,
 * eviction and misalignment, slow-switch, and power-based — each
 * transmitting the same message on an appropriate machine — plus the
 * same channel on a quiet vs a noisy machine (the src/noise
 * environment model) with and without repetition decoding.
 */

#include <cstdio>

#include "common/message.hh"
#include "core/mt_channels.hh"
#include "core/nonmt_channels.hh"
#include "core/power_channels.hh"
#include "core/trial_context.hh"
#include "noise/environment.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

void
report(const ChannelResult &res)
{
    std::printf("%-32s on %-9s: %9.2f Kbps, %5.2f%% errors\n",
                res.channelName.c_str(), res.cpuName.c_str(),
                res.transmissionKbps, res.errorRate * 100.0);
}

} // namespace

int
main()
{
    Rng rng(2024);
    const auto msg = makeMessage(MessagePattern::Alternating, 80, rng);

    ChannelConfig evict;
    evict.d = 6;
    ChannelConfig evict_stealthy = evict;
    evict_stealthy.stealthy = true;
    ChannelConfig misalign;
    misalign.d = 5;
    misalign.M = 8;

    {
        TrialContext ctx(xeonE2288G(), 1);
        NonMtEvictionChannel ch(ctx.core(), evict);
        report(ch.transmit(msg, ctx));
    }
    {
        TrialContext ctx(xeonE2288G(), 2);
        NonMtEvictionChannel ch(ctx.core(), evict_stealthy);
        report(ch.transmit(msg, ctx));
    }
    {
        TrialContext ctx(xeonE2288G(), 3);
        NonMtMisalignmentChannel ch(ctx.core(), misalign);
        report(ch.transmit(msg, ctx));
    }
    {
        TrialContext ctx(gold6226(), 4);
        ChannelConfig slow;
        slow.r = 16;
        slow.rounds = 20;
        SlowSwitchChannel ch(ctx.core(), slow);
        report(ch.transmit(msg, ctx));
    }
    {
        TrialContext ctx(gold6226(), 5);
        MtEvictionChannel ch(ctx.core(), evict);
        report(ch.transmit(msg, ctx));
    }
    {
        TrialContext ctx(gold6226(), 6);
        MtMisalignmentChannel ch(ctx.core(), misalign);
        report(ch.transmit(msg, ctx));
    }
    {
        TrialContext ctx(gold6226(), 7);
        PowerChannelConfig power_cfg;
        power_cfg.rounds = 15000;
        PowerEvictionChannel ch(ctx.core(), evict_stealthy, power_cfg);
        Rng short_rng(8);
        const auto short_msg =
            makeMessage(MessagePattern::Alternating, 10, short_rng);
        report(ch.transmit(short_msg, ctx, 6));
    }
    std::printf("\nNote the orderings: non-MT > MT >> power, and fast"
                " > stealthy —\nthe shapes of Tables III-V of the"
                " paper.\n");

    // The same eviction channel under interference: a busy co-runner
    // degrades decoding, and repetition/majority decoding buys the
    // error rate back at a third of the rate. The longer calibration
    // preamble keeps the decode threshold solid under noise — a
    // skewed threshold is a bias no amount of voting can fix.
    std::printf("\nUnder a busy co-runner (env.corunner_intensity ="
                " 0.75):\n");
    EnvironmentSpec noisy;
    noisy.corunner.intensity = 0.75;
    constexpr int kNoisyPreamble = 32;
    {
        TrialContext ctx(gold6226(), 17, noisy);
        NonMtEvictionChannel ch(ctx.core(), evict);
        report(ch.transmit(msg, ctx, kNoisyPreamble));
    }
    {
        TrialContext ctx(gold6226(), 17, noisy);
        ChannelConfig evict_voting = evict;
        evict_voting.repetition = 3;
        NonMtEvictionChannel ch(ctx.core(), evict_voting);
        report(ch.transmit(msg, ctx, kNoisyPreamble));
    }
    return 0;
}
