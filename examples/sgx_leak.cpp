/**
 * @file
 * Leaking a secret out of an SGX enclave (Sec. VIII): a sender inside
 * the enclave modulates the frontend paths; the receiver outside only
 * times whole enclave calls, yet recovers the message.
 */

#include <cstdio>

#include "common/message.hh"
#include "core/trial_context.hh"
#include "sgx/sgx_channels.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    std::printf("== SGX enclave leak demo (Xeon E-2174G) ==\n\n");

    const std::string secret = "SGX?";
    const auto bits = textToBits(secret);
    std::printf("Enclave holds the secret: \"%s\" (%zu bits)\n",
                secret.c_str(), bits.size());

    TrialContext ctx(xeonE2174G(), 7);
    ChannelConfig cfg;
    cfg.d = 6;
    SgxConfig sgx;
    sgx.rounds = 4000;
    SgxNonMtEvictionChannel channel(ctx.core(), cfg, sgx);

    std::printf("Receiver times one enclave entry/exit per bit "
                "(entry cost ~%llu cycles, jittery)...\n\n",
                static_cast<unsigned long long>(
                    ctx.model().sgx.entryCycles));
    const ChannelResult res = channel.transmit(bits, ctx);

    std::printf("Recovered: \"%s\"\n", bitsToText(res.received).c_str());
    std::printf("Rate: %.2f Kbps (paper Table VI: ~19-35 Kbps), "
                "errors: %.2f%%\n",
                res.transmissionKbps, res.errorRate * 100.0);
    std::printf("\nThe enclave executed with a single entry and exit"
                " per bit;\nthe signal is the frontend path difference"
                " amplified over %d\ninterleaved encode/decode rounds"
                " inside the enclave.\n", sgx.rounds);
    return 0;
}
