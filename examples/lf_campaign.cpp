/**
 * @file
 * lf_campaign — manifest-driven, resumable, cache-backed sweep
 * campaigns over the lf_run sweep engine.
 *
 *   lf_campaign plan --dir camp --shards 4 \
 *       --channel mt-eviction --cpu "Gold 6226" \
 *       --sweep d=2:8:2 --trials 8
 *   lf_campaign run-shard --dir camp --shard 0 --cache ~/.lf-cache \
 *       --progress            # once per shard, any order, any host
 *   lf_campaign merge --dir camp --summary merged.txt
 *   lf_campaign status --dir camp
 *
 * `plan` pins the grid (content hash + manifest) once; every other
 * step loads the manifest, so shards can never disagree about the
 * grid. `run-shard` is idempotent and resumable: killed halfway, the
 * next invocation re-runs only the rows whose results are missing,
 * and rows the content-addressed cache already knows are served
 * without simulating. `merge` demands exactly-once coverage and folds
 * rows in full-grid order, so the merged summary is byte-identical to
 * a single-process `lf_run --summary` of the same grid.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/files.hh"
#include "common/logging.hh"
#include "obs/trace.hh"
#include "run/cli.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(to,
        "usage: lf_campaign <command> [options]\n"
        "\n"
        "commands:\n"
        "  plan       validate a grid, write <dir>/manifest.txt\n"
        "  run-shard  run (or resume) one shard of a planned campaign\n"
        "  merge      fold all shard results into one summary\n"
        "  status     per-shard progress table\n"
        "\n"
        "common options:\n"
        "  --dir PATH          campaign directory (required)\n"
        "  --quiet             suppress stdout reporting\n"
        "  --help              this message\n"
        "\n"
        "plan options (grid flags as in lf_run):\n"
        "  --shards N          shard count (default 1)\n"
        "  --channel NAME      channel (repeatable; 'all')\n"
        "  --cpu NAME          CPU model (repeatable; 'all'; default\n"
        "                      all)\n"
        "  --trials N          trials per cell (default 1)\n"
        "  --seed S            base seed (default 1)\n"
        "  --bits N            message bits (default 100)\n"
        "  --pattern P         all-0s | all-1s | alternating | random\n"
        "  --preamble N        calibration bits (channel default)\n"
        "  --set KEY=VALUE     fixed override (repeatable)\n"
        "  --sweep KEY=LO:HI:STEP[,KEY=...]   sweep axis (repeatable)\n"
        "\n"
        "run-shard options:\n"
        "  --shard I           shard index (required)\n"
        "  --threads N         worker threads (default: hardware)\n"
        "  --cache PATH        content-addressed result cache\n"
        "                      directory (shared across campaigns)\n"
        "  --max-new N         stop after N newly-completed rows\n"
        "                      (deterministic kill, for testing\n"
        "                      resume)\n"
        "  --progress          live progress line on stderr\n"
        "  --trace PATH        record runner/trial spans and write\n"
        "                      Chrome trace_event JSON\n"
        "\n"
        "merge options:\n"
        "  --summary PATH      also write the merged summary here\n"
        "                      (always written to\n"
        "                      <dir>/merged_summary.txt)\n");
}

[[noreturn]] void
fail(const std::string &error)
{
    lf_error("lf_campaign: %s", error.c_str());
    std::exit(1);
}

struct Args
{
    int argc;
    char **argv;
    int next = 2;

    /** The value of option @p i (advancing past it). */
    std::string value(int &i, const char *flag)
    {
        if (i + 1 >= argc)
            fail(std::string(flag) + " needs a value");
        return argv[++i];
    }
};

int
cmdPlan(Args &args)
{
    std::string dir;
    int shards = 1;
    std::vector<std::string> channels;
    std::vector<std::string> cpus;
    SweepSpec sweep;
    MessagePattern pattern = MessagePattern::Alternating;
    int bits = 100;
    bool quiet = false;

    for (int i = args.next; i < args.argc; ++i) {
        const std::string arg = args.argv[i];
        if (arg == "--dir") {
            dir = args.value(i, "--dir");
        } else if (arg == "--shards") {
            if (!parseStrictInt(args.value(i, "--shards"), shards) ||
                shards < 1) {
                fail("bad --shards value");
            }
        } else if (arg == "--channel") {
            channels.push_back(args.value(i, "--channel"));
        } else if (arg == "--cpu") {
            cpus.push_back(args.value(i, "--cpu"));
        } else if (arg == "--trials") {
            if (!parseStrictInt(args.value(i, "--trials"),
                                sweep.trials) ||
                sweep.trials < 1) {
                fail("bad --trials value");
            }
        } else if (arg == "--seed") {
            if (!parseStrictUint64(args.value(i, "--seed"),
                                   sweep.seed)) {
                fail("bad --seed value");
            }
        } else if (arg == "--bits") {
            if (!parseStrictInt(args.value(i, "--bits"), bits) ||
                bits < 1) {
                fail("bad --bits value");
            }
        } else if (arg == "--pattern") {
            const std::string name = args.value(i, "--pattern");
            if (!messagePatternFromString(name, pattern))
                fail("unknown pattern \"" + name + "\"");
        } else if (arg == "--preamble") {
            if (!parseStrictInt(args.value(i, "--preamble"),
                                sweep.preambleBits) ||
                sweep.preambleBits < 2) {
                fail("bad --preamble value");
            }
        } else if (arg == "--set") {
            const std::string error = parseSetArg(
                args.value(i, "--set"), sweep.baseOverrides);
            if (!error.empty())
                fail(error);
        } else if (arg == "--sweep") {
            const std::string error =
                parseSweepArg(args.value(i, "--sweep"), sweep.axes);
            if (!error.empty())
                fail(error);
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            fail("unknown plan option \"" + arg + "\"");
        }
    }
    if (dir.empty())
        fail("plan needs --dir");
    if (channels.empty())
        fail("plan needs at least one --channel");
    if (channels.size() == 1 && channels[0] == "all")
        channels = allChannelNames();
    if (cpus.empty() || (cpus.size() == 1 && cpus[0] == "all")) {
        cpus.clear();
        for (const CpuModel *model : allCpuModels())
            cpus.push_back(model->name);
    }
    sweep.channels = channels;
    sweep.cpus = cpus;
    sweep.patterns = {pattern};
    sweep.messageBits = static_cast<std::size_t>(bits);

    CampaignManifest manifest;
    const std::string error =
        planCampaign(sweep, shards, dir, &manifest);
    if (!error.empty())
        fail(error);
    if (!quiet) {
        std::printf("%s", renderCampaignPlan(sweep, shards).c_str());
        std::printf("\nwrote %s\n",
                    campaignManifestPath(dir).c_str());
    }
    return 0;
}

int
cmdRunShard(Args &args)
{
    std::string dir;
    int shard = -1;
    ShardRunOptions options;
    std::string tracePath;
    bool progress = false;
    bool quiet = false;

    for (int i = args.next; i < args.argc; ++i) {
        const std::string arg = args.argv[i];
        if (arg == "--dir") {
            dir = args.value(i, "--dir");
        } else if (arg == "--shard") {
            if (!parseStrictInt(args.value(i, "--shard"), shard) ||
                shard < 0) {
                fail("bad --shard value");
            }
        } else if (arg == "--threads") {
            if (!parseStrictInt(args.value(i, "--threads"),
                                options.threads) ||
                options.threads < 0) {
                fail("bad --threads value");
            }
        } else if (arg == "--cache") {
            options.cacheDir = args.value(i, "--cache");
        } else if (arg == "--max-new") {
            std::uint64_t limit = 0;
            if (!parseStrictUint64(args.value(i, "--max-new"),
                                   limit) ||
                limit == 0) {
                fail("bad --max-new value");
            }
            options.maxNewRows = static_cast<std::size_t>(limit);
        } else if (arg == "--trace") {
            tracePath = args.value(i, "--trace");
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            fail("unknown run-shard option \"" + arg + "\"");
        }
    }
    if (dir.empty())
        fail("run-shard needs --dir");
    if (shard < 0)
        fail("run-shard needs --shard");
    if (!tracePath.empty())
        obs::setTraceEnabled(true);

    ProgressMeter meter(
        "lf_campaign shard " + std::to_string(shard), 0);
    bool meterInitialized = false;
    if (progress && !quiet) {
        options.onProgress = [&](const ShardProgress &p) {
            // The meter's total is unknown until the manifest loads;
            // re-construct lazily on the first report.
            if (!meterInitialized) {
                meter = ProgressMeter(
                    "lf_campaign shard " + std::to_string(shard),
                    p.totalRows);
                meterInitialized = true;
            }
            const std::size_t attempted = p.cacheHits + p.executed;
            char extra[64];
            std::snprintf(extra, sizeof(extra), "cache %.0f%%",
                          attempted > 0
                              ? 100.0 * static_cast<double>(p.cacheHits)
                                    / static_cast<double>(attempted)
                              : 0.0);
            meter.update(p.doneRows, extra);
        };
    }

    ShardRunStats stats;
    const std::string error =
        runCampaignShard(dir, shard, options, &stats);
    if (progress && !quiet)
        meter.finish();
    if (!error.empty())
        fail(error);
    if (!tracePath.empty()) {
        std::ofstream os(tracePath);
        os << obs::renderTraceJson() << "\n";
        if (!os.good())
            fail("cannot write " + tracePath);
        lf_inform("wrote %s", tracePath.c_str());
    }
    if (!quiet) {
        std::printf("shard %d: %zu/%zu rows done (%zu resumed, %zu"
                    " cache hits, %zu executed, %zu failed)\n",
                    shard, stats.doneRows(), stats.totalRows,
                    stats.resumedRows, stats.cacheHits, stats.executed,
                    stats.failedRows);
        std::printf("cache hit rate %.1f%%, %.1f trials/s over"
                    " %.2fs\n",
                    100.0 * stats.cacheHitRate(), stats.trialsPerSec(),
                    stats.seconds);
    }
    return 0;
}

int
cmdMerge(Args &args)
{
    std::string dir;
    std::string summaryPath;
    bool quiet = false;
    for (int i = args.next; i < args.argc; ++i) {
        const std::string arg = args.argv[i];
        if (arg == "--dir") {
            dir = args.value(i, "--dir");
        } else if (arg == "--summary") {
            summaryPath = args.value(i, "--summary");
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            fail("unknown merge option \"" + arg + "\"");
        }
    }
    if (dir.empty())
        fail("merge needs --dir");

    std::string summary;
    MergeStats stats;
    std::string error = mergeCampaign(dir, summary, &stats);
    if (!error.empty())
        fail(error);
    if (!summaryPath.empty()) {
        // Same bytes as <dir>/merged_summary.txt, caller's location.
        error = writeFileAtomic(summaryPath, summary);
        if (!error.empty())
            fail(error);
    }
    if (!quiet) {
        std::printf("%s", summary.c_str());
        std::printf("\nmerged %zu rows into %zu cells (%zu failed,"
                    " %zu skipped); wrote %s\n",
                    stats.rows, stats.cells, stats.failedRows,
                    stats.skippedRows,
                    campaignSummaryPath(dir).c_str());
    }
    return 0;
}

int
cmdStatus(Args &args)
{
    std::string dir;
    for (int i = args.next; i < args.argc; ++i) {
        const std::string arg = args.argv[i];
        if (arg == "--dir")
            dir = args.value(i, "--dir");
        else
            fail("unknown status option \"" + arg + "\"");
    }
    if (dir.empty())
        fail("status needs --dir");

    std::string rendered;
    const std::string error = campaignStatus(dir, rendered);
    if (!error.empty())
        fail(error);
    std::printf("%s", rendered.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
        std::strcmp(argv[1], "-h") == 0) {
        usage(argc < 2 ? stderr : stdout);
        return argc < 2 ? 1 : 0;
    }
    Args args{argc, argv};
    const std::string command = argv[1];
    if (command == "plan")
        return cmdPlan(args);
    if (command == "run-shard")
        return cmdRunShard(args);
    if (command == "merge")
        return cmdMerge(args);
    if (command == "status")
        return cmdStatus(args);
    lf_error("unknown command \"%s\"", command.c_str());
    usage(stderr);
    return 1;
}
