/**
 * @file
 * lf_run — command-line driver for the channel registry, the parallel
 * ExperimentRunner, and the sweep engine.
 *
 *   lf_run --list
 *   lf_run --channel nonmt-fast-eviction --cpu all --trials 8 \
 *          --threads 4 --json out.json
 *   lf_run --channel mt-eviction --cpu "Gold 6226" \
 *          --sweep d=1:8:1 --trials 4 --json fig8.json
 *   lf_run --channel all --sweep model.jitterPerKcycle=0|5|20 \
 *          --shard 0/4 --csv shard0.csv
 *
 * Every run is deterministic in the spec alone: the thread count
 * changes wall time only, never the emitted bytes, and a --shard i/n
 * slice emits exactly the rows the full run would. Results stream:
 * JSON/CSV rows are written as trials complete (in spec order), the
 * sweep summary folds incrementally, and --progress reports live off
 * the same stream — so arbitrarily large sweeps run in bounded
 * memory (use --quiet to also skip the buffered stdout table).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "obs/counters.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "run/cli.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(to,
        "usage: lf_run [options]\n"
        "\n"
        "  --list              list channels and override keys, exit\n"
        "  --list-channels     list the channel registry catalog\n"
        "  --list-axes         list every --set/--sweep override key\n"
        "  --list-counters     list the microarchitectural counter\n"
        "                      catalog (the names --counters emits)\n"
        "  --channel NAME      channel to run (repeatable; 'all' for\n"
        "                      every registered channel)\n"
        "  --cpu NAME          CPU model (repeatable; 'all' for every\n"
        "                      model; default all)\n"
        "  --trials N          independent trials per sweep cell\n"
        "                      (default 1)\n"
        "  --threads N         worker threads (default: hardware\n"
        "                      concurrency)\n"
        "  --seed S            base seed (default 1)\n"
        "  --bits N            message length in bits (default 100)\n"
        "  --pattern P         all-0s | all-1s | alternating | random\n"
        "                      (default alternating)\n"
        "  --preamble N        calibration bits (default: channel's)\n"
        "  --set KEY=VALUE     fixed config override (repeatable);\n"
        "                      keys as in ChannelConfig plus\n"
        "                      powerRounds, sgxRounds, sgxMtSteps,\n"
        "                      sgxMtMeasPerStep, model.* CPU knobs\n"
        "                      (e.g. model.jitterPerKcycle), env.*\n"
        "                      environment/interference knobs (e.g.\n"
        "                      env.corunner_intensity), and defense.*\n"
        "                      mitigation knobs (e.g.\n"
        "                      defense.partition_dsb); --list-axes\n"
        "                      prints the full catalog\n"
        "  --sweep KEY=LO:HI:STEP[,KEY=...]\n"
        "                      sweep axis (repeatable); also accepts\n"
        "                      KEY=V1|V2|... value lists. Cells are\n"
        "                      the cartesian product of all axes\n"
        "  --shard I/N         run only every N-th sweep cell,\n"
        "                      starting at cell I (seeds are derived\n"
        "                      from full-grid cell indices, so shards\n"
        "                      reproduce the full run's rows exactly)\n"
        "  --dry-run           print the expanded plan (cells, total\n"
        "                      trials, grid hash, rows per shard) and\n"
        "                      exit without running anything — the\n"
        "                      same rendering lf_campaign plan uses\n"
        "  --json PATH         write per-trial results as JSON\n"
        "  --csv PATH          write per-trial results as CSV\n"
        "  --summary PATH      write the per-cell sweep summary table\n"
        "  --counters PATH     enable microarchitectural counters and\n"
        "                      write the run-aggregate CounterSet as\n"
        "                      JSON (per-trial results stay\n"
        "                      bit-identical either way; see\n"
        "                      --list-counters for the catalog)\n"
        "  --trace PATH        record runner/trial spans and write\n"
        "                      Chrome trace_event JSON (load in\n"
        "                      chrome://tracing or ui.perfetto.dev)\n"
        "  --metrics PATH      write the end-of-run RunMetrics report\n"
        "                      (throughput, parks, cache hit rate,\n"
        "                      window occupancy) as JSON\n"
        "  --progress          live progress line on stderr\n"
        "                      (completed/total, trials/sec, ETA);\n"
        "                      ends on a RunMetrics summary line\n"
        "  --quiet             suppress stdout tables (and"
        " --progress)\n"
        "  --help              this message\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> channels;
    std::vector<std::string> cpus;
    SweepSpec sweep;
    SweepShard shard;
    int threads = 0;
    MessagePattern pattern = MessagePattern::Alternating;
    int bits = 100;
    std::string json_path;
    std::string csv_path;
    std::string summary_path;
    std::string counters_path;
    std::string trace_path;
    std::string metrics_path;
    bool quiet = false;
    bool progress = false;
    bool dry_run = false;

    auto need_value = [&](int i) -> std::string {
        if (i + 1 >= argc) {
            lf_error("%s needs a value", argv[i]);
            usage(stderr);
            std::exit(1);
        }
        return argv[i + 1];
    };
    auto fail = [](const std::string &error) {
        lf_error("%s", error.c_str());
        std::exit(1);
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--list") {
            std::printf("%s\n%s", renderChannelCatalog().c_str(),
                        renderOverrideKeyCatalog().c_str());
            return 0;
        } else if (arg == "--list-channels") {
            std::printf("%s", renderChannelCatalog().c_str());
            return 0;
        } else if (arg == "--list-axes") {
            std::printf("%s", renderOverrideKeyCatalog().c_str());
            return 0;
        } else if (arg == "--list-counters") {
            std::printf("%s", renderCounterCatalog().c_str());
            return 0;
        } else if (arg == "--channel") {
            channels.push_back(need_value(i++));
        } else if (arg == "--cpu") {
            cpus.push_back(need_value(i++));
        } else if (arg == "--trials") {
            if (!parseStrictInt(need_value(i++), sweep.trials) ||
                sweep.trials < 1) {
                fail("bad --trials value");
            }
        } else if (arg == "--threads") {
            if (!parseStrictInt(need_value(i++), threads) ||
                threads < 0) {
                fail("bad --threads value");
            }
        } else if (arg == "--seed") {
            if (!parseStrictUint64(need_value(i++), sweep.seed))
                fail("bad --seed value");
        } else if (arg == "--bits") {
            if (!parseStrictInt(need_value(i++), bits) || bits < 1)
                fail("bad --bits value");
        } else if (arg == "--pattern") {
            const std::string name = need_value(i++);
            if (!messagePatternFromString(name, pattern))
                fail("unknown pattern \"" + name + "\"");
        } else if (arg == "--preamble") {
            if (!parseStrictInt(need_value(i++), sweep.preambleBits) ||
                sweep.preambleBits < 2) {
                fail("bad --preamble value");
            }
        } else if (arg == "--set") {
            const std::string error =
                parseSetArg(need_value(i++), sweep.baseOverrides);
            if (!error.empty())
                fail(error);
        } else if (arg == "--sweep") {
            const std::string error =
                parseSweepArg(need_value(i++), sweep.axes);
            if (!error.empty())
                fail(error);
        } else if (arg == "--shard") {
            const std::string error =
                parseShardArg(need_value(i++), shard);
            if (!error.empty())
                fail(error);
        } else if (arg == "--json") {
            json_path = need_value(i++);
        } else if (arg == "--csv") {
            csv_path = need_value(i++);
        } else if (arg == "--summary") {
            summary_path = need_value(i++);
        } else if (arg == "--counters") {
            counters_path = need_value(i++);
        } else if (arg == "--trace") {
            trace_path = need_value(i++);
        } else if (arg == "--metrics") {
            metrics_path = need_value(i++);
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "--dry-run") {
            dry_run = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            lf_error("unknown option \"%s\"", arg.c_str());
            usage(stderr);
            return 1;
        }
    }

    if (channels.empty()) {
        lf_error("no --channel given (try --list or --help)");
        return 1;
    }
    if (channels.size() == 1 && channels[0] == "all")
        channels = allChannelNames();
    if (cpus.empty() || (cpus.size() == 1 && cpus[0] == "all")) {
        cpus.clear();
        for (const CpuModel *model : allCpuModels())
            cpus.push_back(model->name);
    }

    sweep.channels = channels;
    sweep.cpus = cpus;
    sweep.patterns = {pattern};
    sweep.messageBits = static_cast<std::size_t>(bits);

    std::string error = validateSweepSpec(sweep);
    if (error.empty())
        error = validateSweepSpecValues(sweep);
    if (error.empty())
        error = validateSweepShard(sweep, shard);
    if (!error.empty()) {
        lf_error("%s (see --list)", error.c_str());
        return 1;
    }

    if (dry_run) {
        // Same rendering lf_campaign plan prints, so the two surfaces
        // cannot disagree about what a grid expands to.
        std::printf("%s",
                    renderCampaignPlan(sweep, shard.count).c_str());
        return 0;
    }

    // Everything downstream is a streaming consumer: file sinks write
    // rows as the runner delivers them (spec order, so the bytes are
    // identical at any --threads value), the sweep summary folds into
    // O(cells) accumulator state, and --progress reports off the same
    // callback — memory stays bounded however large the grid is.
    // Counters/trace/metrics are purely observational: switching them
    // on never changes a sink byte.
    if (!counters_path.empty())
        obs::setCountersEnabled(true);
    if (!trace_path.empty())
        obs::setTraceEnabled(true);
    ExperimentRunner runner(threads);
    obs::RunMetrics metrics;
    runner.setMetricsSink(&metrics);
    const std::vector<ExperimentSpec> batch = expandSweep(sweep, shard);

    std::ofstream json_os;
    JsonSink json_sink("lf_run");
    if (!json_path.empty()) {
        json_os.open(json_path);
        if (!json_os) {
            lf_error("cannot open %s", json_path.c_str());
            return 1;
        }
        json_sink.writeHeader(json_os);
    }
    std::ofstream csv_os;
    CsvSink csv_sink;
    if (!csv_path.empty()) {
        csv_os.open(csv_path);
        if (!csv_os) {
            lf_error("cannot open %s", csv_path.c_str());
            return 1;
        }
        csv_sink.writeHeader(csv_os);
    }

    const bool sweeping = !sweep.axes.empty() || sweep.trials > 1;
    const bool want_summary = (!quiet && sweeping) ||
        !summary_path.empty();
    // Default title, so a --summary file is byte-comparable with a
    // campaign's merged_summary.txt (see docs/CAMPAIGNS.md).
    SweepSummarySink summary_sink;
    std::ostringstream summary_os;
    if (want_summary)
        summary_sink.writeHeader(summary_os);

    TextTableSink text("lf_run results");
    std::ostringstream text_os;
    if (!quiet)
        text.writeHeader(text_os);

    const bool show_progress = progress && !quiet;
    ProgressMeter meter("lf_run", batch.size());
    std::size_t done = 0;
    std::size_t failures = 0;
    std::string first_error;
    obs::CounterSet counters_total;

    runner.run(batch, [&](const ExperimentResult &res) {
        ++done;
        if (!res.ok && !res.skipped) {
            ++failures;
            if (first_error.empty())
                first_error = res.error;
        }
        if (res.counters != nullptr) {
            for (const obs::CounterInfo &info : obs::counterCatalog())
                counters_total.*(info.field) +=
                    (*res.counters).*(info.field);
        }
        if (!json_path.empty())
            json_sink.writeRow(res, json_os);
        if (!csv_path.empty())
            csv_sink.writeRow(res, csv_os);
        if (want_summary)
            summary_sink.writeRow(res, summary_os);
        if (!quiet)
            text.writeRow(res, text_os);
        if (show_progress)
            meter.update(done);
    });
    if (show_progress)
        meter.finishWith(obs::runMetricsOneLiner(metrics));

    if (!quiet) {
        text.writeFooter(text_os);
        std::cout << text_os.str();
    }
    std::string summary_text;
    if (want_summary) {
        summary_sink.writeFooter(summary_os);
        summary_text = summary_os.str();
    }
    if (!quiet && sweeping)
        std::cout << "\n" << summary_text;
    if (!json_path.empty()) {
        json_sink.writeFooter(json_os);
        if (!json_os.good()) {
            lf_error("write to %s failed", json_path.c_str());
            return 1;
        }
        lf_inform("wrote %s", json_path.c_str());
    }
    if (!csv_path.empty()) {
        csv_sink.writeFooter(csv_os);
        if (!csv_os.good()) {
            lf_error("write to %s failed", csv_path.c_str());
            return 1;
        }
        lf_inform("wrote %s", csv_path.c_str());
    }
    if (!summary_path.empty()) {
        std::ofstream os(summary_path);
        os << summary_text;
        if (!os.good()) {
            lf_error("cannot write %s", summary_path.c_str());
            return 1;
        }
        lf_inform("wrote %s", summary_path.c_str());
    }

    // Observability artifacts last: they describe the run that just
    // finished, whatever its outcome.
    const auto write_text_file = [&](const std::string &path,
                                     const std::string &text_out) {
        std::ofstream os(path);
        os << text_out;
        if (!os.good()) {
            lf_error("cannot write %s", path.c_str());
            return false;
        }
        lf_inform("wrote %s", path.c_str());
        return true;
    };
    if (!counters_path.empty() &&
        !write_text_file(counters_path,
                         obs::renderCounterSetJson(counters_total) +
                             "\n")) {
        return 1;
    }
    if (!trace_path.empty() &&
        !write_text_file(trace_path, obs::renderTraceJson() + "\n")) {
        return 1;
    }
    if (!metrics_path.empty() &&
        !write_text_file(metrics_path,
                         obs::renderRunMetricsJson(metrics) + "\n")) {
        return 1;
    }

    if (failures > 0) {
        lf_error("trial failed: %s", first_error.c_str());
        return 1;
    }
    return 0;
}
