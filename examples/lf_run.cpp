/**
 * @file
 * lf_run — command-line driver for the channel registry and the
 * parallel ExperimentRunner.
 *
 *   lf_run --list
 *   lf_run --channel nonmt-fast-eviction --cpu all --trials 8 \
 *          --threads 4 --json out.json
 *   lf_run --channel mt-eviction --set d=3 --bits 60 --csv sweep.csv
 *
 * Every run is deterministic in (--channel, --cpu, --seed, --trials,
 * message options): the thread count changes wall time only, never
 * the emitted bytes.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "run/runner.hh"
#include "run/sinks.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(to,
        "usage: lf_run [options]\n"
        "\n"
        "  --list              list registered channels and exit\n"
        "  --channel NAME      channel to run (repeatable; 'all' for\n"
        "                      every registered channel)\n"
        "  --cpu NAME          CPU model ('all' for every model;\n"
        "                      default all)\n"
        "  --trials N          independent trials per channel/CPU\n"
        "                      pair (default 1)\n"
        "  --threads N         worker threads (default: hardware\n"
        "                      concurrency)\n"
        "  --seed S            base seed (default 1)\n"
        "  --bits N            message length in bits (default 100)\n"
        "  --pattern P         all-0s | all-1s | alternating | random\n"
        "                      (default alternating)\n"
        "  --preamble N        calibration bits (default: channel's)\n"
        "  --set KEY=VALUE     config override (repeatable); keys as\n"
        "                      in ChannelConfig plus powerRounds,\n"
        "                      sgxRounds, sgxMtSteps, sgxMtMeasPerStep\n"
        "  --json PATH         write results as JSON\n"
        "  --csv PATH          write results as CSV\n"
        "  --quiet             suppress the text table\n"
        "  --help              this message\n");
}

void
listChannels()
{
    TextTable table("Registered covert channels");
    table.setHeader({"Name", "Needs", "Default", "Description"});
    for (const std::string &name : allChannelNames()) {
        const ChannelInfo &info = channelInfo(name);
        std::string needs;
        if (info.requiresSmt)
            needs += "SMT ";
        if (info.requiresSgx)
            needs += "SGX ";
        if (needs.empty())
            needs = "-";
        const ChannelConfig &cfg = info.defaultConfig;
        std::string defaults = "d=" + std::to_string(cfg.d) +
            " M=" + std::to_string(cfg.M) +
            (cfg.stealthy ? " stealthy" : "");
        table.addRow({name, needs, defaults, info.description});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nCPU models:");
    for (const CpuModel *cpu : allCpuModels())
        std::printf(" \"%s\"", cpu->name.c_str());
    std::printf("\n");
}

bool
parseUint64(const std::string &text, std::uint64_t &out)
{
    try {
        std::size_t pos = 0;
        out = std::stoull(text, &pos);
        return pos == text.size();
    } catch (...) {
        return false;
    }
}

bool
parseInt(const std::string &text, int &out)
{
    try {
        std::size_t pos = 0;
        out = std::stoi(text, &pos);
        return pos == text.size();
    } catch (...) {
        return false;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> channels;
    std::string cpu = "all";
    int trials = 1;
    int threads = 0;
    std::uint64_t seed = 1;
    int bits = 100;
    MessagePattern pattern = MessagePattern::Alternating;
    int preamble = -1;
    std::map<std::string, double> overrides;
    std::string json_path;
    std::string csv_path;
    bool quiet = false;

    auto need_value = [&](int i) -> std::string {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", argv[i]);
            usage(stderr);
            std::exit(1);
        }
        return argv[i + 1];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--list") {
            listChannels();
            return 0;
        } else if (arg == "--channel") {
            channels.push_back(need_value(i++));
        } else if (arg == "--cpu") {
            cpu = need_value(i++);
        } else if (arg == "--trials") {
            if (!parseInt(need_value(i++), trials) || trials < 1) {
                std::fprintf(stderr, "bad --trials value\n");
                return 1;
            }
        } else if (arg == "--threads") {
            if (!parseInt(need_value(i++), threads) || threads < 0) {
                std::fprintf(stderr, "bad --threads value\n");
                return 1;
            }
        } else if (arg == "--seed") {
            if (!parseUint64(need_value(i++), seed)) {
                std::fprintf(stderr, "bad --seed value\n");
                return 1;
            }
        } else if (arg == "--bits") {
            if (!parseInt(need_value(i++), bits) || bits < 1) {
                std::fprintf(stderr, "bad --bits value\n");
                return 1;
            }
        } else if (arg == "--pattern") {
            const std::string name = need_value(i++);
            if (!messagePatternFromString(name, pattern)) {
                std::fprintf(stderr, "unknown pattern \"%s\"\n",
                             name.c_str());
                return 1;
            }
        } else if (arg == "--preamble") {
            if (!parseInt(need_value(i++), preamble) || preamble < 2) {
                std::fprintf(stderr, "bad --preamble value\n");
                return 1;
            }
        } else if (arg == "--set") {
            const std::string kv = need_value(i++);
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::fprintf(stderr,
                             "--set wants KEY=VALUE, got \"%s\"\n",
                             kv.c_str());
                return 1;
            }
            try {
                overrides[kv.substr(0, eq)] =
                    std::stod(kv.substr(eq + 1));
            } catch (...) {
                std::fprintf(stderr, "bad --set value in \"%s\"\n",
                             kv.c_str());
                return 1;
            }
        } else if (arg == "--json") {
            json_path = need_value(i++);
        } else if (arg == "--csv") {
            csv_path = need_value(i++);
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown option \"%s\"\n",
                         arg.c_str());
            usage(stderr);
            return 1;
        }
    }

    if (channels.empty()) {
        std::fprintf(stderr,
                     "no --channel given (try --list or --help)\n");
        return 1;
    }
    if (channels.size() == 1 && channels[0] == "all")
        channels = allChannelNames();
    for (const std::string &name : channels) {
        if (!hasChannel(name)) {
            std::fprintf(stderr, "unknown channel \"%s\";"
                         " see --list\n", name.c_str());
            return 1;
        }
    }

    std::vector<const CpuModel *> cpus;
    if (cpu == "all") {
        cpus = allCpuModels();
    } else {
        const CpuModel *model = findCpuModel(cpu);
        if (model == nullptr) {
            std::fprintf(stderr, "unknown CPU model \"%s\";"
                         " see --list\n", cpu.c_str());
            return 1;
        }
        cpus.push_back(model);
    }

    std::vector<ExperimentSpec> specs;
    for (const std::string &name : channels) {
        for (const CpuModel *model : cpus) {
            ExperimentSpec spec;
            spec.channel = name;
            spec.cpu = model->name;
            spec.seed = seed;
            spec.pattern = pattern;
            spec.messageBits = static_cast<std::size_t>(bits);
            spec.preambleBits = preamble;
            spec.overrides = overrides;
            specs.push_back(std::move(spec));
        }
    }

    const ExperimentRunner runner(threads);
    const auto results = runner.runTrials(specs, trials);

    if (!quiet) {
        TextTableSink text("lf_run results");
        std::cout << text.render(results);
    }
    if (!json_path.empty()) {
        JsonSink("lf_run").writeFile(results, json_path);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    if (!csv_path.empty()) {
        CsvSink().writeFile(results, csv_path);
        std::fprintf(stderr, "wrote %s\n", csv_path.c_str());
    }

    for (const ExperimentResult &res : results) {
        if (!res.ok && !res.skipped) {
            std::fprintf(stderr, "trial failed: %s\n",
                         res.error.c_str());
            return 1;
        }
    }
    return 0;
}
