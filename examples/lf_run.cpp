/**
 * @file
 * lf_run — command-line driver for the channel registry, the parallel
 * ExperimentRunner, and the sweep engine.
 *
 *   lf_run --list
 *   lf_run --channel nonmt-fast-eviction --cpu all --trials 8 \
 *          --threads 4 --json out.json
 *   lf_run --channel mt-eviction --cpu "Gold 6226" \
 *          --sweep d=1:8:1 --trials 4 --json fig8.json
 *   lf_run --channel all --sweep model.jitterPerKcycle=0|5|20 \
 *          --shard 0/4 --csv shard0.csv
 *
 * Every run is deterministic in the spec alone: the thread count
 * changes wall time only, never the emitted bytes, and a --shard i/n
 * slice emits exactly the rows the full run would.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "run/cli.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(to,
        "usage: lf_run [options]\n"
        "\n"
        "  --list              list channels and override keys, exit\n"
        "  --list-channels     list the channel registry catalog\n"
        "  --list-axes         list every --set/--sweep override key\n"
        "  --channel NAME      channel to run (repeatable; 'all' for\n"
        "                      every registered channel)\n"
        "  --cpu NAME          CPU model (repeatable; 'all' for every\n"
        "                      model; default all)\n"
        "  --trials N          independent trials per sweep cell\n"
        "                      (default 1)\n"
        "  --threads N         worker threads (default: hardware\n"
        "                      concurrency)\n"
        "  --seed S            base seed (default 1)\n"
        "  --bits N            message length in bits (default 100)\n"
        "  --pattern P         all-0s | all-1s | alternating | random\n"
        "                      (default alternating)\n"
        "  --preamble N        calibration bits (default: channel's)\n"
        "  --set KEY=VALUE     fixed config override (repeatable);\n"
        "                      keys as in ChannelConfig plus\n"
        "                      powerRounds, sgxRounds, sgxMtSteps,\n"
        "                      sgxMtMeasPerStep, model.* CPU knobs\n"
        "                      (e.g. model.jitterPerKcycle), env.*\n"
        "                      environment/interference knobs (e.g.\n"
        "                      env.corunner_intensity), and defense.*\n"
        "                      mitigation knobs (e.g.\n"
        "                      defense.partition_dsb); --list-axes\n"
        "                      prints the full catalog\n"
        "  --sweep KEY=LO:HI:STEP[,KEY=...]\n"
        "                      sweep axis (repeatable); also accepts\n"
        "                      KEY=V1|V2|... value lists. Cells are\n"
        "                      the cartesian product of all axes\n"
        "  --shard I/N         run only every N-th sweep cell,\n"
        "                      starting at cell I (seeds are derived\n"
        "                      from full-grid cell indices, so shards\n"
        "                      reproduce the full run's rows exactly)\n"
        "  --json PATH         write per-trial results as JSON\n"
        "  --csv PATH          write per-trial results as CSV\n"
        "  --summary PATH      write the per-cell sweep summary table\n"
        "  --quiet             suppress stdout tables\n"
        "  --help              this message\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> channels;
    std::vector<std::string> cpus;
    SweepSpec sweep;
    SweepShard shard;
    int threads = 0;
    MessagePattern pattern = MessagePattern::Alternating;
    int bits = 100;
    std::string json_path;
    std::string csv_path;
    std::string summary_path;
    bool quiet = false;

    auto need_value = [&](int i) -> std::string {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", argv[i]);
            usage(stderr);
            std::exit(1);
        }
        return argv[i + 1];
    };
    auto fail = [](const std::string &error) {
        std::fprintf(stderr, "%s\n", error.c_str());
        std::exit(1);
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--list") {
            std::printf("%s\n%s", renderChannelCatalog().c_str(),
                        renderOverrideKeyCatalog().c_str());
            return 0;
        } else if (arg == "--list-channels") {
            std::printf("%s", renderChannelCatalog().c_str());
            return 0;
        } else if (arg == "--list-axes") {
            std::printf("%s", renderOverrideKeyCatalog().c_str());
            return 0;
        } else if (arg == "--channel") {
            channels.push_back(need_value(i++));
        } else if (arg == "--cpu") {
            cpus.push_back(need_value(i++));
        } else if (arg == "--trials") {
            if (!parseStrictInt(need_value(i++), sweep.trials) ||
                sweep.trials < 1) {
                fail("bad --trials value");
            }
        } else if (arg == "--threads") {
            if (!parseStrictInt(need_value(i++), threads) ||
                threads < 0) {
                fail("bad --threads value");
            }
        } else if (arg == "--seed") {
            if (!parseStrictUint64(need_value(i++), sweep.seed))
                fail("bad --seed value");
        } else if (arg == "--bits") {
            if (!parseStrictInt(need_value(i++), bits) || bits < 1)
                fail("bad --bits value");
        } else if (arg == "--pattern") {
            const std::string name = need_value(i++);
            if (!messagePatternFromString(name, pattern))
                fail("unknown pattern \"" + name + "\"");
        } else if (arg == "--preamble") {
            if (!parseStrictInt(need_value(i++), sweep.preambleBits) ||
                sweep.preambleBits < 2) {
                fail("bad --preamble value");
            }
        } else if (arg == "--set") {
            const std::string error =
                parseSetArg(need_value(i++), sweep.baseOverrides);
            if (!error.empty())
                fail(error);
        } else if (arg == "--sweep") {
            const std::string error =
                parseSweepArg(need_value(i++), sweep.axes);
            if (!error.empty())
                fail(error);
        } else if (arg == "--shard") {
            const std::string error =
                parseShardArg(need_value(i++), shard);
            if (!error.empty())
                fail(error);
        } else if (arg == "--json") {
            json_path = need_value(i++);
        } else if (arg == "--csv") {
            csv_path = need_value(i++);
        } else if (arg == "--summary") {
            summary_path = need_value(i++);
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown option \"%s\"\n",
                         arg.c_str());
            usage(stderr);
            return 1;
        }
    }

    if (channels.empty()) {
        std::fprintf(stderr,
                     "no --channel given (try --list or --help)\n");
        return 1;
    }
    if (channels.size() == 1 && channels[0] == "all")
        channels = allChannelNames();
    if (cpus.empty() || (cpus.size() == 1 && cpus[0] == "all")) {
        cpus.clear();
        for (const CpuModel *model : allCpuModels())
            cpus.push_back(model->name);
    }

    sweep.channels = channels;
    sweep.cpus = cpus;
    sweep.patterns = {pattern};
    sweep.messageBits = static_cast<std::size_t>(bits);

    std::string error = validateSweepSpec(sweep);
    if (error.empty())
        error = validateSweepSpecValues(sweep);
    if (error.empty())
        error = validateSweepShard(sweep, shard);
    if (!error.empty()) {
        std::fprintf(stderr, "%s (see --list)\n", error.c_str());
        return 1;
    }

    const ExperimentRunner runner(threads);
    const auto results = runSweep(sweep, runner, shard);

    // The summary aggregates the whole batch; render it once and
    // reuse the bytes for both stdout and --summary.
    const bool sweeping = !sweep.axes.empty() || sweep.trials > 1;
    std::string summary_text;
    if ((!quiet && sweeping) || !summary_path.empty()) {
        summary_text =
            SweepSummarySink("lf_run sweep summary").render(results);
    }
    if (!quiet) {
        TextTableSink text("lf_run results");
        std::cout << text.render(results);
        if (sweeping)
            std::cout << "\n" << summary_text;
    }
    if (!json_path.empty()) {
        JsonSink("lf_run").writeFile(results, json_path);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    if (!csv_path.empty()) {
        CsvSink().writeFile(results, csv_path);
        std::fprintf(stderr, "wrote %s\n", csv_path.c_str());
    }
    if (!summary_path.empty()) {
        std::ofstream os(summary_path);
        os << summary_text;
        if (!os.good()) {
            std::fprintf(stderr, "cannot write %s\n",
                         summary_path.c_str());
            return 1;
        }
        std::fprintf(stderr, "wrote %s\n", summary_path.c_str());
    }

    for (const ExperimentResult &res : results) {
        if (!res.ok && !res.skipped) {
            std::fprintf(stderr, "trial failed: %s\n",
                         res.error.c_str());
            return 1;
        }
    }
    return 0;
}
