/** @file Standalone driver for profiling the trial hot path: runs the
 *  throughput-bench batch single-threaded so gprof/perf samples land
 *  on runExperiment and below. Not built by default CI paths. */

#include <cstdio>
#include <cstdlib>

#include "run/runner.hh"
#include "run/sweep.hh"

int
main(int argc, char **argv)
{
    const int trials = argc > 1 ? std::atoi(argv[1]) : 512;
    lf::ExperimentSpec spec;
    spec.channel = "nonmt-fast-eviction";
    spec.cpu = "E-2288G";
    spec.seed = 7;
    spec.messageBits = 4;
    spec.preambleBits = 4;
    spec.overrides["rounds"] = 2;
    spec.overrides["initIters"] = 2;
    const auto batch = lf::expandTrials(spec, trials);
    lf::ExperimentRunner runner(1);
    std::size_t ok = 0;
    runner.run(batch,
               [&ok](const lf::ExperimentResult &r) { ok += r.ok; });
    std::printf("%zu/%d ok\n", ok, trials);
    return 0;
}
