/**
 * @file
 * Fig. 11: the fingerprinting attacker's IPC traces while AlexNet,
 * SqueezeNet, VGG and DenseNet inference victims run on the sibling
 * SMT thread (Gold 6226).
 *
 * Expected shape: solo attacker IPC near the backend width; with a
 * victim co-running it drops to roughly half and fluctuates in a
 * victim-specific waveform (the paper reports 3.58 solo and 1.8-2.2
 * paired on its 4-wide machine; this model's backend is 6-wide, so
 * the absolute levels scale accordingly while the halving and the
 * per-victim waveforms are preserved).
 */

#include <cstdio>
#include <algorithm>

#include "common/stats.hh"
#include "fingerprint/side_channel.hh"
#include "fingerprint/workloads.hh"
#include "run/report.hh"
#include "run/sinks.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    bench::banner("Fig. 11 — attacker IPC traces vs CNN victims "
                  "(Gold 6226)");

    TraceConfig config;
    const double baseline = attackerBaselineIpc(gold6226(), config);
    std::printf("Attacker baseline IPC (no victim): %.2f "
                "(paper: 3.58 on a 4-wide backend)\n\n", baseline);

    bench::JsonReport report("fig11_ml_traces");
    report.number("baseline_ipc", baseline);
    bench::JsonReport &traces = report.object("traces");

    const auto victims = cnnWorkloads();
    for (const auto &victim : victims) {
        const auto trace =
            attackerIpcTrace(gold6226(), victim, config, 4242);
        traces.numberArray(victim.name(), trace);
        OnlineStats stats;
        for (double v : trace)
            stats.add(v);
        std::printf("Victim: %s  (mean %.2f, min %.2f, max %.2f)\n",
                    victim.name().c_str(), stats.mean(), stats.min(),
                    stats.max());
        // Render the waveform as rows of one value per sample (first
        // 50 samples), normalized into a 30-char strip chart.
        std::printf("  IPC trace (50 samples): ");
        for (std::size_t i = 0; i < 50 && i < trace.size(); ++i) {
            const double lo = baseline * 0.3;
            const double hi = baseline * 0.8;
            int level = static_cast<int>((trace[i] - lo) / (hi - lo) *
                                         9.0);
            level = std::max(0, std::min(9, level));
            std::printf("%d", level);
        }
        std::printf("\n");
    }

    report.writeFile(benchJsonFileName("fig11"));
    std::printf("\nWrote %s\n", benchJsonFileName("fig11").c_str());

    std::printf("\nExpected shape: paired IPC roughly half the solo"
                " IPC, fluctuating in\n  distinct victim-specific"
                " patterns (cf. paper Fig. 11: 1.8-2.2 vs 3.58).\n");
    return 0;
}
