/**
 * @file
 * Fig. 12: inter- vs intra-distance of the CNN model fingerprints
 * (Euclidean distance between attacker IPC traces, Gold 6226).
 *
 * Expected shape: intra-distance (same model, repeated runs) is far
 * below inter-distance (different models), so nearest-reference
 * classification identifies the victim model (paper: 0.550 intra vs
 * 1.937 inter over the 4 CNNs).
 */

#include <cstdio>

#include "common/table.hh"
#include "fingerprint/side_channel.hh"
#include "fingerprint/workloads.hh"
#include "run/report.hh"
#include "run/sinks.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    bench::banner("Fig. 12 — CNN fingerprint distance matrix "
                  "(Gold 6226)");

    TraceConfig config;
    const FingerprintStudy study = runFingerprintStudy(
        gold6226(), cnnWorkloads(), config, 3);

    TextTable matrix("Mean pairwise Euclidean distance "
                     "(diagonal = intra)");
    std::vector<std::string> header = {""};
    for (const auto &name : study.names)
        header.push_back(name);
    matrix.setHeader(header);
    for (std::size_t a = 0; a < study.names.size(); ++a) {
        std::vector<std::string> row = {study.names[a]};
        for (std::size_t b = 0; b < study.names.size(); ++b)
            row.push_back(formatFixed(study.distanceMatrix[a][b], 3));
        matrix.addRow(row);
    }
    std::printf("%s\n", matrix.render().c_str());

    std::printf("Mean intra-distance: %.3f (paper: 0.550)\n",
                study.meanIntraDistance);
    std::printf("Mean inter-distance: %.3f (paper: 1.937)\n",
                study.meanInterDistance);
    std::printf("Nearest-reference classification accuracy: %.1f%%\n",
                study.classificationAccuracy * 100.0);

    bench::JsonReport report("fig12_distance_matrix");
    report.stringArray("workloads", study.names);
    report.numberMatrix("distance_matrix", study.distanceMatrix);
    report.number("mean_intra_distance", study.meanIntraDistance);
    report.number("mean_inter_distance", study.meanInterDistance);
    report.number("classification_accuracy",
                  study.classificationAccuracy);
    report.writeFile(benchJsonFileName("fig12"));
    std::printf("Wrote %s\n", benchJsonFileName("fig12").c_str());

    return bench::shapeCheck(
        "inter >> intra, accurate classification",
        study.meanInterDistance > 2.0 * study.meanIntraDistance &&
            study.classificationAccuracy > 0.9);
}
