/**
 * @file
 * Table III/V rates under realistic interference: the co-runner
 * intensity axis of the environment model (src/noise) swept over one
 * DSB timing channel and one RAPL power channel, plus the
 * repetition-decode robustness hook at a fixed noise level.
 *
 * The paper measures its channels on live machines — busy frontends,
 * OS preemption, coarse power meters — while the plain table3/table5
 * benches run on a perfectly quiet simulated core. This bench sweeps
 * `env.corunner_intensity` from idle (0, bit-identical to the quiet
 * benches) to a fully frontend-bound neighbour (1), and then shows
 * how repetition/majority decoding buys the error rate back at the
 * cost of rate. Emits BENCH_table3_noise.json.
 *
 * Expected shape: both error curves rise monotonically with
 * intensity; the intensity-0 cells match the quiet-run values
 * bit for bit; larger repetition factors cut the error and divide
 * the rate.
 */

#include <cstdio>

#include "run/report.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    bench::banner("Covert channels under environment noise "
                  "(Gold 6226, co-runner intensity sweep)");

    // 1. DSB timing channel vs co-runner intensity. The base seed is
    // the one table3_covert_channels gives its "Non-MT Fast Eviction"
    // row, and cell 0 (intensity 0) of a sweep keeps the base seed:
    // trial 0 of the quiet cell reproduces the BENCH_table3.json
    // Gold 6226 row bit for bit.
    SweepSpec timing;
    timing.channels = {"nonmt-fast-eviction"};
    timing.cpus = {gold6226().name};
    timing.axes = {{"env.corunner_intensity",
                    {0.0, 0.25, 0.5, 0.75, 1.0}}};
    timing.trials = 3;
    timing.seed = 503; // table3's Non-MT Fast Eviction row seed
    timing.messageBits = 100;

    // 2. RAPL power channel vs co-runner intensity. Same alignment
    // with table5_power_channels' power-eviction row (seed 61,
    // 12 bits, 8 preamble bits).
    SweepSpec power;
    power.channels = {"power-eviction"};
    power.cpus = {gold6226().name};
    power.axes = {{"env.corunner_intensity",
                   {0.0, 0.25, 0.5, 0.75, 1.0}}};
    power.trials = 3;
    power.seed = 61;
    power.messageBits = 12;
    power.preambleBits = 8;

    // 3. Repetition decode at a fixed noisy operating point. The
    // longer preamble keeps the calibrated class means solid under
    // noise, so the sweep isolates the voting gain (a skewed decode
    // threshold is a bias repetition cannot vote away).
    SweepSpec repetition;
    repetition.channels = {"nonmt-fast-eviction"};
    repetition.cpus = {gold6226().name};
    repetition.baseOverrides["env.corunner_intensity"] = 0.75;
    repetition.axes = {{"repetition", {1, 3, 5}}};
    repetition.trials = 5;
    repetition.seed = 540;
    repetition.messageBits = 100;
    repetition.preambleBits = 32;

    std::vector<ExperimentSpec> specs;
    std::vector<std::size_t> offsets;
    for (const SweepSpec *sweep : {&timing, &power, &repetition}) {
        offsets.push_back(specs.size());
        for (ExperimentSpec &spec : expandSweep(*sweep))
            specs.push_back(std::move(spec));
    }
    offsets.push_back(specs.size());

    const auto results = ExperimentRunner().run(specs);
    const auto slice = [&](std::size_t s) {
        return std::vector<ExperimentResult>(
            results.begin() + static_cast<std::ptrdiff_t>(offsets[s]),
            results.begin() +
                static_cast<std::ptrdiff_t>(offsets[s + 1]));
    };

    std::printf("%s\n",
                SweepSummarySink("1. DSB eviction channel vs "
                                 "co-runner intensity")
                    .render(slice(0))
                    .c_str());
    std::printf("%s\n",
                SweepSummarySink("2. RAPL power channel vs co-runner "
                                 "intensity")
                    .render(slice(1))
                    .c_str());
    std::printf("%s\n",
                SweepSummarySink("3. Repetition decode at intensity "
                                 "0.75 (error vs rate trade)")
                    .render(slice(2))
                    .c_str());

    JsonSink("table3_under_noise")
        .writeFile(results, benchJsonFileName("table3_noise"));
    std::printf("Wrote %s\n",
                benchJsonFileName("table3_noise").c_str());

    std::printf("Expected shape: both error curves grow monotonically"
                " with intensity;\n  the intensity-0 cells reproduce"
                " the quiet table3/table5 values bit for\n  bit;"
                " repetition trades rate for error.\n");
    return 0;
}
