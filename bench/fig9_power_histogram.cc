/**
 * @file
 * Fig. 9: package power histogram for micro-op delivery via LSD, DSB,
 * or MITE+DSB (Gold 6226), sampled through the simulated RAPL
 * interface at its native update interval.
 *
 * Expected shape: LSD lowest (~52 W), DSB middle (~57 W), MITE+DSB
 * highest (~65 W) — the separations the power channels decode.
 */

#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"
#include "isa/mix_block.hh"
#include "run/report.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"
#include "sim/executor.hh"

using namespace lf;

namespace {

Histogram
powerSamples(const CpuModel &model, int blocks, std::uint64_t seed)
{
    Core core(model, seed);
    std::vector<BlockSpec> specs;
    for (int i = 0; i < blocks; ++i)
        specs.push_back({i, false});
    const auto chain = buildMixBlockChain(0x400000, 5, specs);
    core.setProgram(0, &chain.program);
    runLoopIters(core, 0, chain, 50); // warm up

    // Sample average power over RAPL update windows.
    Histogram hist(40.0, 80.0, 80);
    const Cycles window = 150000;
    for (int s = 0; s < 400; ++s) {
        const MicroJoules e0 = core.readRapl();
        const Cycles c0 = core.cycle();
        runLoopIters(core, 0, chain, window / 10);
        const MicroJoules e1 = core.readRapl();
        const double seconds =
            core.secondsOf(static_cast<double>(core.cycle() - c0));
        hist.add((e1 - e0) * 1e-6 / seconds);
    }
    return hist;
}

} // namespace

int
main()
{
    bench::banner("Fig. 9 — power histogram per frontend path "
                  "(Gold 6226)");

    // LSD: 8-block loop on the LSD-enabled model.
    const Histogram lsd = powerSamples(gold6226(), 8, 31);

    // DSB: same loop with LSD fused off.
    CpuModel no_lsd = gold6226();
    no_lsd.frontend.lsdEnabled = false;
    const Histogram dsb = powerSamples(no_lsd, 8, 32);

    // MITE+DSB: 9-block alias thrash.
    const Histogram mite = powerSamples(gold6226(), 9, 33);

    std::printf("\nLSD delivery (watts):\n%s\n", lsd.render().c_str());
    std::printf("DSB delivery (watts):\n%s\n", dsb.render().c_str());
    std::printf("MITE+DSB delivery (watts):\n%s\n",
                mite.render().c_str());

    TextTable summary("Average package power (W)");
    summary.setHeader({"Path", "Mean W (sim)", "Paper Fig. 9 (approx)"});
    summary.addRow({"LSD", formatFixed(lsd.mean()), "~52"});
    summary.addRow({"DSB", formatFixed(dsb.mean()), "~57"});
    summary.addRow({"MITE+DSB", formatFixed(mite.mean()), "~65"});
    std::printf("%s\n", summary.render().c_str());

    return bench::shapeCheck("LSD < DSB < MITE+DSB",
                             lsd.mean() < dsb.mean() &&
                                 dsb.mean() < mite.mean());
}
