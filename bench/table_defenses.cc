/**
 * @file
 * Mitigation effectiveness study: the frontend defenses of the
 * paper's final section (src/defense) against every channel family,
 * emitting BENCH_defenses.json.
 *
 *  1. Timing channels x defenses (Gold 6226): flush-on-domain-switch
 *     and MITE-only delivery kill the *stealthy* non-MT DSB channels
 *     (the purely microarchitectural ones); the fast variants retain
 *     their architectural duration leak, and the slow-switch channel
 *     lives on the MITE path and shrugs the DSB defenses off.
 *  2. MT channels x defenses: static DSB+LSD partitioning drives
 *     both SMT channels to ~50% error (the repartition observable
 *     never fires and the statically split LSD replay makes the
 *     receiver's timing sibling-independent), while flushing on
 *     domain switches does not help — the MT attack involves no
 *     domain switch.
 *  3. Power channels x defenses: RAPL quantization/update-interval
 *     coarsening (the PLATYPUS-class mitigation) and worst-case
 *     padding kill the power channels.
 *  4. Defense x environment interaction: a flush quantum composes
 *     with co-runner intensity (env.*) — defended error dominates
 *     the undefended curve at every interference level.
 *  5. Fingerprinting under partitioning (Sec. XI robustness): the
 *     IPC side channel's classification accuracy under static
 *     DSB/LSD partitioning stays within 5 points of the undefended
 *     run — the paper's strongest claim about this channel.
 *
 * The SGX MT channels run only on the LSD-fused-off E-21xx machines,
 * where the statically split LSD has nothing to stream; there the
 * residual SMT slot contention stays observable and partitioning
 * alone does not close the channel (see docs/DEFENSES.md).
 *
 * --smoke runs a tiny subgrid (CI sanitizer job) and skips the
 * statistical shape checks.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "fingerprint/side_channel.hh"
#include "fingerprint/workloads.hh"
#include "run/report.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

struct DefenseCell
{
    const char *name;
    std::map<std::string, double> overrides;
};

/** The error-rate mean of cell (defense label, channel) in @p cells;
 *  fatal if absent (a typo in the grid wiring). */
double
cellError(const std::vector<SweepCellSummary> &cells,
          const std::string &label, const std::string &channel)
{
    for (const SweepCellSummary &cell : cells) {
        if (cell.label == label && cell.channel == channel)
            return cell.errorRate.mean();
    }
    std::fprintf(stderr, "missing cell %s/%s\n", label.c_str(),
                 channel.c_str());
    std::exit(2);
}

void
reportCells(bench::JsonReport &section,
            const std::vector<SweepCellSummary> &cells)
{
    for (const SweepCellSummary &cell : cells) {
        bench::JsonReport &row =
            section.object(cell.label + "/" + cell.channel);
        row.string("defense", cell.label)
            .string("channel", cell.channel)
            .string("pattern", cell.pattern)
            .integer("ok_trials", cell.okTrials)
            .number("error_rate_mean", cell.errorRate.mean())
            .number("error_rate_sd", cell.errorRate.stddev())
            .number("transmission_kbps_mean",
                    cell.transmissionKbps.mean())
            .number("effective_kbps_mean", cell.effectiveKbps.mean())
            .number("capacity_kbps_mean", cell.capacityKbps.mean());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    bench::banner(smoke
        ? "Frontend defenses vs covert channels (smoke grid)"
        : "Frontend defenses vs covert channels (Gold 6226)");

    const std::string cpu = gold6226().name;
    const int trials = smoke ? 1 : 3;

    // The defense deployments of the grid. "none" is the undefended
    // baseline every claim is measured against.
    const DefenseCell kNone = {"none", {}};
    const DefenseCell kFlush = {"flush-on-switch",
                                {{"defense.flush_switch_quantum", 1}}};
    const DefenseCell kPartition = {"static-partition",
                                    {{"defense.partition_dsb", 1},
                                     {"defense.partition_lsd", 1}}};
    const DefenseCell kMiteOnly = {"mite-only",
                                   {{"defense.disable_dsb", 1}}};
    const DefenseCell kRandomize = {"randomized-index",
                                    {{"defense.randomize_sets", 1},
                                     {"defense.randomize_epoch_slots",
                                      8}}};
    const DefenseCell kSmooth = {"smoothing",
                                 {{"defense.smoothing", 1}}};
    const DefenseCell kRaplQuantum = {"rapl-quantize",
                                      {{"defense.rapl_quantum_uj",
                                        50000}}};
    const DefenseCell kRaplInterval = {"rapl-coarse-interval",
                                       {{"defense.rapl_interval_scale",
                                         40}}};

    std::vector<ExperimentSpec> specs;
    std::vector<std::size_t> offsets;
    std::vector<const char *> sections;
    const auto addSweep = [&](const char *section, SweepSpec sweep,
                              const DefenseCell &defense) {
        sweep.label = defense.name;
        for (const auto &[key, value] : defense.overrides)
            sweep.baseOverrides[key] = value;
        offsets.push_back(specs.size());
        sections.push_back(section);
        for (ExperimentSpec &spec : expandSweep(sweep))
            specs.push_back(std::move(spec));
    };

    // 1. Non-MT timing channels. An all-1s message makes a dead cell
    // legible: a channel reduced to coin flips (or to a constant
    // decode) sits near 50% edit-distance error, a live one near 0.
    // The smoothing cell uses the alternating pattern instead — its
    // worst-case padding produces a *constant* decoder, which would
    // trivially "match" an all-ones message while transmitting
    // nothing.
    SweepSpec timing;
    timing.channels = smoke
        ? std::vector<std::string>{"nonmt-stealthy-eviction"}
        : std::vector<std::string>{
              "nonmt-fast-eviction", "nonmt-stealthy-eviction",
              "nonmt-fast-misalignment",
              "nonmt-stealthy-misalignment", "slow-switch"};
    timing.cpus = {cpu};
    timing.patterns = {MessagePattern::AllOnes};
    timing.trials = trials;
    timing.seed = 503;
    timing.messageBits = smoke ? 12 : 48;
    for (const DefenseCell *cell :
         {&kNone, &kFlush, &kMiteOnly, &kRandomize})
        addSweep("timing", timing, *cell);
    if (!smoke) {
        SweepSpec smooth_timing = timing;
        smooth_timing.patterns = {MessagePattern::Alternating};
        addSweep("timing", smooth_timing, kSmooth);
    }

    // 2. MT channels. Seed 9 pins the exact trial set; with the
    // static DSB+LSD partition both channels sit at >= 50% error
    // (acceptance claim), while flushing is irrelevant to them.
    SweepSpec mt;
    mt.channels = {"mt-eviction", "mt-misalignment"};
    mt.cpus = {cpu};
    mt.patterns = {MessagePattern::AllOnes};
    mt.trials = smoke ? 1 : 4;
    mt.seed = 9;
    mt.messageBits = smoke ? 12 : 48;
    mt.preambleBits = 32;
    if (smoke) {
        addSweep("mt", mt, kPartition);
    } else {
        for (const DefenseCell *cell : {&kNone, &kFlush, &kPartition})
            addSweep("mt", mt, *cell);
    }

    // 3. Power channels at the Table V operating point.
    SweepSpec power;
    power.channels = {"power-eviction", "power-misalignment"};
    power.cpus = {cpu};
    power.trials = trials;
    power.seed = 61;
    power.messageBits = 12;
    power.preambleBits = 8;
    power.baseOverrides["powerRounds"] = smoke ? 2000 : 20000;
    if (!smoke) {
        for (const DefenseCell *cell :
             {&kNone, &kRaplQuantum, &kRaplInterval, &kSmooth})
            addSweep("power", power, *cell);
    }

    // 4. Defense x environment interaction: the flush quantum as a
    // sweep axis (0 = undefended) against co-runner intensity.
    SweepSpec interaction;
    interaction.channels = {"nonmt-stealthy-eviction"};
    interaction.cpus = {cpu};
    interaction.patterns = {MessagePattern::AllOnes};
    interaction.axes = {
        {"defense.flush_switch_quantum", {0, 8}},
        {"env.corunner_intensity", {0.0, 0.5, 1.0}}};
    interaction.trials = trials;
    interaction.seed = 540;
    interaction.messageBits = smoke ? 12 : 48;
    offsets.push_back(specs.size());
    sections.push_back("interaction");
    for (ExperimentSpec &spec : expandSweep(interaction))
        specs.push_back(std::move(spec));
    offsets.push_back(specs.size());

    const auto results = ExperimentRunner().run(specs);
    const auto slice = [&](std::size_t begin, std::size_t end) {
        return std::vector<ExperimentResult>(
            results.begin() + static_cast<std::ptrdiff_t>(begin),
            results.begin() + static_cast<std::ptrdiff_t>(end));
    };
    std::map<std::string, std::vector<ExperimentResult>> by_section;
    for (std::size_t s = 0; s + 1 < offsets.size(); ++s) {
        auto &bucket = by_section[sections[s]];
        const auto part = slice(offsets[s], offsets[s + 1]);
        bucket.insert(bucket.end(), part.begin(), part.end());
    }

    bench::JsonReport report("table_defenses");
    report.boolean("smoke", smoke);
    std::map<std::string, std::vector<SweepCellSummary>> summaries;
    for (const auto &[section, rows] : by_section) {
        std::printf("%s\n",
                    SweepSummarySink(std::string("Defenses: ") +
                                     section + " channels")
                        .render(rows)
                        .c_str());
        summaries[section] = aggregateSweep(rows);
        reportCells(report.object(section + "_cells"),
                    summaries[section]);
    }

    // 5. Fingerprinting under static partitioning.
    double acc_plain = 0.0;
    double acc_defended = 0.0;
    if (!smoke) {
        TraceConfig config;
        config.samples = 80;
        DefenseSpec partition;
        partition.partition.dsb = true;
        partition.partition.lsd = true;
        const FingerprintStudy plain = runFingerprintStudy(
            gold6226(), mobileWorkloads(), config, 3);
        const FingerprintStudy defended = runFingerprintStudy(
            gold6226(), mobileWorkloads(), config, 3, 1000,
            partition);
        acc_plain = plain.classificationAccuracy;
        acc_defended = defended.classificationAccuracy;
        bench::JsonReport &fp = report.object("fingerprint");
        fp.string("defense", "static-partition");
        fp.number("accuracy_undefended", acc_plain);
        fp.number("accuracy_partitioned", acc_defended);
        fp.number("mean_intra_undefended", plain.meanIntraDistance);
        fp.number("mean_inter_undefended", plain.meanInterDistance);
        fp.number("mean_intra_partitioned",
                  defended.meanIntraDistance);
        fp.number("mean_inter_partitioned",
                  defended.meanInterDistance);
        std::printf("Fingerprint classification accuracy: %.1f%% "
                    "undefended vs %.1f%% under DSB/LSD "
                    "partitioning (paper Sec. XI: survives)\n\n",
                    acc_plain * 100.0, acc_defended * 100.0);
    }

    report.writeFile(benchJsonFileName("defenses"));
    std::printf("Wrote %s\n", benchJsonFileName("defenses").c_str());

    for (const ExperimentResult &res : results) {
        if (!res.ok && !res.skipped) {
            std::fprintf(stderr, "trial failed: %s\n",
                         res.error.c_str());
            return 1;
        }
    }
    if (smoke) {
        std::printf("Smoke grid only; shape checks skipped.\n");
        return 0;
    }

    const auto &timing_cells = summaries.at("timing");
    const auto &mt_cells = summaries.at("mt");
    const auto &power_cells = summaries.at("power");
    bool ok = true;
    // (a) Static partitioning kills every MT DSB channel...
    ok &= cellError(mt_cells, "static-partition", "mt-eviction") >=
        0.5;
    ok &= cellError(mt_cells, "static-partition",
                    "mt-misalignment") >= 0.5;
    // ...while the undefended cells decode, and flushing (no domain
    // switches in the MT attack) does not close them.
    ok &= cellError(mt_cells, "none", "mt-eviction") <= 0.3;
    ok &= cellError(mt_cells, "flush-on-switch", "mt-eviction") <=
        0.3;
    // Flush-on-switch and MITE-only kill the stealthy non-MT
    // channel; slow-switch survives MITE-only delivery.
    ok &= cellError(timing_cells, "none",
                    "nonmt-stealthy-eviction") <= 0.1;
    ok &= cellError(timing_cells, "flush-on-switch",
                    "nonmt-stealthy-eviction") >= 0.4;
    ok &= cellError(timing_cells, "mite-only",
                    "nonmt-stealthy-eviction") >= 0.4;
    ok &= cellError(timing_cells, "mite-only", "slow-switch") <=
        cellError(timing_cells, "none", "slow-switch") + 0.05;
    // RAPL coarsening degrades the power channels.
    ok &= cellError(power_cells, "none", "power-eviction") <= 0.05;
    ok &= cellError(power_cells, "rapl-quantize", "power-eviction") >=
        0.25;
    ok &= cellError(power_cells, "rapl-coarse-interval",
                    "power-eviction") >= 0.25;
    // Fingerprinting survives the partitioning that kills the MT
    // channels (within 5 accuracy points of undefended).
    ok &= acc_defended >= acc_plain - 0.05;
    ok &= acc_defended >= 0.9;

    return bench::shapeCheck(
        "partitioning kills MT covert channels but not "
        "fingerprinting; flush/MITE-only kill stealthy non-MT; RAPL "
        "coarsening kills power",
        ok);
}
