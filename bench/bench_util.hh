/**
 * @file
 * Shared helpers for the table/figure regeneration binaries.
 *
 * Every bench prints the simulated values next to the numbers the
 * paper reports for the same cell, so the *shape* agreement (who wins,
 * rough factors, orderings) can be checked at a glance. Absolute
 * agreement is not expected: the substrate is a calibrated simulator,
 * not the authors' testbeds (see EXPERIMENTS.md).
 */

#ifndef LF_BENCH_BENCH_UTIL_HH
#define LF_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/message.hh"
#include "common/table.hh"
#include "core/channel.hh"

namespace lf {
namespace bench {

/** Message length used by the covert-channel tables. */
constexpr std::size_t kMessageBits = 100;

inline std::vector<bool>
alternatingMessage(std::size_t bits = kMessageBits)
{
    Rng rng(1);
    return makeMessage(MessagePattern::Alternating, bits, rng);
}

/** "sim X / paper Y" cell. */
inline std::string
cmpCell(double sim, const char *paper)
{
    return formatFixed(sim, 2) + " (paper " + paper + ")";
}

inline void
printResultRows(TextTable &table, const std::string &label,
                const std::vector<ChannelResult> &results,
                const std::vector<const char *> &paper_rate,
                const std::vector<const char *> &paper_err)
{
    std::vector<std::string> rate_row = {label + " Tr. Rate (Kbps)"};
    std::vector<std::string> err_row = {label + " Error Rate"};
    for (std::size_t i = 0; i < results.size(); ++i) {
        rate_row.push_back(cmpCell(results[i].transmissionKbps,
                                   paper_rate[i]));
        err_row.push_back(formatPercent(results[i].errorRate) +
                          " (paper " + paper_err[i] + ")");
    }
    table.addRow(rate_row);
    table.addRow(err_row);
}

inline void
banner(const char *title)
{
    std::printf("==============================================\n");
    std::printf("%s\n", title);
    std::printf("==============================================\n");
}

} // namespace bench
} // namespace lf

#endif // LF_BENCH_BENCH_UTIL_HH
