/**
 * @file
 * Fig. 2: timing histogram of processing instruction mix blocks via
 * the LSD, DSB, or MITE+DSB frontend paths (Intel Xeon Gold 6226).
 *
 * Three workloads, all built from 4 mov + 1 jmp blocks:
 *  - LSD:      8 aligned blocks of one set (40 uops fit the LSD);
 *  - DSB:      the same chain on an LSD-disabled configuration;
 *  - MITE+DSB: 9 blocks aliasing one 8-way set (permanent thrash).
 * Expected shape: DSB fastest, LSD slightly slower, MITE+DSB far
 * slower — the separations the collision- and misalignment-based
 * attacks decode.
 */

#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"
#include "isa/mix_block.hh"
#include "run/report.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"
#include "sim/executor.hh"

using namespace lf;

namespace {

Histogram
measureLoop(Core &core, const ChainProgram &chain, int samples,
            int iters_per_sample)
{
    core.setProgram(0, &chain.program);
    runLoopIters(core, 0, chain, 30); // warm up
    Histogram hist(0.0, 400.0, 80);
    for (int s = 0; s < samples; ++s) {
        const Cycles c0 = core.cycle();
        runLoopIters(core, 0, chain,
                     static_cast<std::uint64_t>(iters_per_sample));
        hist.add(core.noisyMeasurement(
            static_cast<double>(core.cycle() - c0)));
    }
    core.clearProgram(0);
    return hist;
}

std::vector<BlockSpec>
alignedSpecs(int count)
{
    std::vector<BlockSpec> specs;
    for (int i = 0; i < count; ++i)
        specs.push_back({i, false});
    return specs;
}

} // namespace

int
main()
{
    bench::banner("Fig. 2 — frontend path timing histogram "
                  "(Gold 6226)");
    constexpr int kSamples = 2000;
    constexpr int kIters = 10;

    // LSD path: LSD-enabled model, 8-block loop.
    Core lsd_core(gold6226(), 11);
    const auto chain8 = buildMixBlockChain(0x400000, 5, alignedSpecs(8));
    const Histogram lsd =
        measureLoop(lsd_core, chain8, kSamples, kIters);

    // DSB path: identical loop with the LSD fused off.
    CpuModel no_lsd = gold6226();
    no_lsd.frontend.lsdEnabled = false;
    Core dsb_core(no_lsd, 12);
    const Histogram dsb =
        measureLoop(dsb_core, chain8, kSamples, kIters);

    // MITE+DSB path: 9 blocks aliasing one set.
    Core mite_core(gold6226(), 13);
    const auto chain9 = buildMixBlockChain(0x400000, 5, alignedSpecs(9));
    Histogram mite = measureLoop(mite_core, chain9, kSamples, kIters);

    std::printf("\nDSB delivery (10 iterations of 8 blocks):\n%s\n",
                dsb.render().c_str());
    std::printf("LSD delivery (same loop, LSD enabled):\n%s\n",
                lsd.render().c_str());
    std::printf("MITE+DSB delivery (9-block alias thrash, normalized "
                "x8/9):\n%s\n", mite.render().c_str());

    TextTable summary("Per-sample mean timing (cycles)");
    summary.setHeader({"Path", "Mean", "Stddev"});
    summary.addRow({"DSB", formatFixed(dsb.mean()),
                    formatFixed(dsb.stats().stddev())});
    summary.addRow({"LSD", formatFixed(lsd.mean()),
                    formatFixed(lsd.stats().stddev())});
    summary.addRow({"MITE+DSB (x8/9)",
                    formatFixed(mite.mean() * 8.0 / 9.0),
                    formatFixed(mite.stats().stddev())});
    std::printf("%s\n", summary.render().c_str());

    std::printf("Expected shape (paper Fig. 2): DSB < LSD << MITE+DSB;"
                "\n  LSD-vs-DSB gap drives misalignment attacks,"
                "\n  (LSD|DSB)-vs-MITE gap drives eviction attacks.\n");
    return bench::shapeCheck("DSB < LSD << MITE+DSB",
                             dsb.mean() < lsd.mean() &&
                                 lsd.mean() * 1.5 <
                                     mite.mean() * 8.0 / 9.0);
}
