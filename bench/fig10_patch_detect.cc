/**
 * @file
 * Fig. 10: microcode patch fingerprinting on the Gold 6226 — average
 * timing and package power of an instruction-mix-block loop below the
 * LSD capacity versus one above it, under the LSD-enabled patch1
 * (3.20180312.0) and the LSD-disabling patch2 (3.20210608.0).
 *
 * Expected shape: under patch1 the below-capacity loop runs on the
 * LSD — visibly different timing and distinctly lower power than the
 * DSB-delivered above-capacity loop; under patch2 the two coincide.
 * The detector classifies the patch from that divergence.
 */

#include <cstdio>

#include "common/table.hh"
#include "fingerprint/patch_detect.hh"
#include "run/report.hh"
#include "run/sinks.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    bench::banner("Fig. 10 — microcode patch detection (Gold 6226)");

    PatchDetector detector(gold6226());
    const PatchSignature sig1 = detector.measure(patch1(), 41);
    const PatchSignature sig2 = detector.measure(patch2(), 42);

    TextTable table("Loop signatures (12-block loop, per iteration; "
                    "24-block loop normalized)");
    table.setHeader({"Patch", "Small loop (cyc)", "Large loop (cyc)",
                     "Small loop (W)", "Large loop (W)",
                     "LSD uop share"});
    for (const PatchSignature *sig : {&sig1, &sig2}) {
        table.addRow({sig->patchName,
                      formatFixed(sig->smallLoopCycles, 1),
                      formatFixed(sig->largeLoopCycles, 1),
                      formatFixed(sig->smallLoopWatts, 1),
                      formatFixed(sig->largeLoopWatts, 1),
                      formatPercent(sig->smallLoopLsdShare, 0)});
    }
    std::printf("%s\n", table.render().c_str());

    // Detection trial over several measurement seeds.
    int correct = 0;
    constexpr int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
        if (detector.detectLsdEnabled(patch1(),
                                      100 + static_cast<unsigned>(t)))
            ++correct;
        if (!detector.detectLsdEnabled(patch2(),
                                       200 + static_cast<unsigned>(t)))
            ++correct;
    }
    const double accuracy =
        static_cast<double>(correct) / (2.0 * kTrials);
    std::printf("Patch classification accuracy over %d trials: %.1f%%\n",
                2 * kTrials, accuracy * 100.0);

    bench::JsonReport report("fig10_patch_detect");
    for (const PatchSignature *sig : {&sig1, &sig2}) {
        bench::JsonReport &row = report.object(sig->patchName);
        row.number("small_loop_cycles", sig->smallLoopCycles)
            .number("large_loop_cycles", sig->largeLoopCycles)
            .number("small_loop_watts", sig->smallLoopWatts)
            .number("large_loop_watts", sig->largeLoopWatts)
            .number("small_loop_lsd_share", sig->smallLoopLsdShare);
    }
    report.integer("trials", 2 * kTrials);
    report.number("classification_accuracy", accuracy);
    report.writeFile(benchJsonFileName("fig10"));
    std::printf("Wrote %s\n", benchJsonFileName("fig10").c_str());
    std::printf("Expected shape: timing and power of the small loop"
                " diverge from the\n  large loop only under patch1"
                " (LSD enabled); near-perfect detection.\n");
    return bench::shapeCheck("near-perfect patch detection",
                             accuracy > 0.95);
}
