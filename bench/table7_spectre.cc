/**
 * @file
 * Table VII: L1 miss rates of the Spectre v1 variants — our frontend
 * channel and L1I Flush+Reload / Prime+Probe against the MEM F+R,
 * L1D F+R, and L1D LRU baselines of [Xiong & Szefer, HPCA'20] —
 * measured on the Gold 6226 model.
 *
 * Expected shape: the frontend channel induces by far the lowest L1
 * miss rate (it leaves no data-cache footprint and, after warmup, no
 * L1I footprint); the instruction-side channels sit well below the
 * data-side baselines.
 */

#include <cstdio>

#include "common/rng.hh"
#include "common/table.hh"
#include "run/report.hh"
#include "spectre/spectre.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    bench::banner("Table VII — Spectre v1 variants: L1 miss rates "
                  "(Gold 6226)");

    const char *paper_rate[] = {"2.81%", "4.79%", "4.48%", "0.45%",
                                "0.48%", "0.21%"};

    std::vector<int> secrets;
    Rng rng(12345);
    for (int i = 0; i < 24; ++i)
        secrets.push_back(static_cast<int>(rng.uniformInt(0, 31)));

    TextTable table("Spectre v1 disclosure channels");
    table.setHeader({"Channel", "L1 Miss Rate (sim)", "Paper",
                     "Recovery accuracy"});

    Core core(gold6226(), 99);
    SpectreAttack attack(core);
    const auto variants = allSpectreVariants();
    double frontend_rate = 1.0;
    double min_other = 1.0;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const SpectreResult res = attack.run(variants[i], secrets);
        table.addRow({toString(variants[i]),
                      formatPercent(res.l1MissRate), paper_rate[i],
                      formatPercent(res.accuracy)});
        if (variants[i] == SpectreVariant::Frontend)
            frontend_rate = res.l1MissRate;
        else
            min_other = std::min(min_other, res.l1MissRate);
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Expected shape: Frontend has the lowest L1 miss rate"
                " of all channels\n  (no data-cache footprint, warm"
                " L1I), data-side baselines the highest.\n");
    return bench::shapeCheck("frontend lowest",
                             frontend_rate < min_other);
}
