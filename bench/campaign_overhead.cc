/**
 * @file
 * Campaign-layer overhead and cache effectiveness, in BENCH form.
 *
 * The campaign subsystem (src/campaign) promises that fleet-running a
 * sweep costs only bookkeeping: shard files, checkpoints, and the
 * content-addressed result cache ride along the streaming runner
 * without changing a byte of the summary. This bench prices that
 * promise on one grid, three ways:
 *
 *   direct  the plain unsharded ExperimentRunner sweep (baseline
 *           trials/sec, reference summary);
 *   cold    plan + 4 x run-shard (fresh cache) + merge, in-process —
 *           campaign overhead = direct time / cold campaign time,
 *           with the merged summary diffed byte-for-byte against the
 *           baseline (including after a mid-shard kill + resume);
 *   warm    a re-planned campaign over the same grid with the now-
 *           populated cache — reports the cache hit rate and the
 *           speedup over cold.
 *
 * Emits BENCH_campaign.json. Shape gates: merged summaries (cold,
 * killed+resumed, warm) are byte-identical to the direct sweep, and
 * the warm rerun's cache hit rate exceeds 0.9.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>

#include "campaign/campaign.hh"
#include "run/report.hh"
#include "run/runner.hh"
#include "run/sinks.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

constexpr int kShards = 4;

double
seconds(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Run every shard of @p dir to completion; fatal on error. */
ShardRunStats
runAllShards(const std::string &dir, const std::string &cacheDir)
{
    ShardRunStats total;
    for (int shard = 0; shard < kShards; ++shard) {
        ShardRunOptions options;
        options.threads = 1; // Overhead, not parallelism, is measured.
        options.cacheDir = cacheDir;
        ShardRunStats stats;
        const std::string error =
            runCampaignShard(dir, shard, options, &stats);
        if (!error.empty()) {
            std::fprintf(stderr, "run-shard failed: %s\n",
                         error.c_str());
            std::exit(1);
        }
        total.totalRows += stats.totalRows;
        total.cacheHits += stats.cacheHits;
        total.executed += stats.executed;
        total.failedRows += stats.failedRows;
        total.seconds += stats.seconds;
    }
    return total;
}

std::string
mergeOrDie(const std::string &dir)
{
    std::string summary;
    const std::string error = mergeCampaign(dir, summary);
    if (!error.empty()) {
        std::fprintf(stderr, "merge failed: %s\n", error.c_str());
        std::exit(1);
    }
    return summary;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    bench::banner(smoke ? "Campaign overhead + cache (smoke grid)"
                        : "Campaign overhead + result cache");

    SweepSpec sweep;
    sweep.channels = {"nonmt-fast-eviction", "slow-switch"};
    sweep.cpus = {gold6226().name};
    sweep.axes = {{"rounds", smoke ? std::vector<double>{5, 10}
                                   : std::vector<double>{5, 10, 20}}};
    sweep.trials = smoke ? 4 : 16;
    sweep.seed = 7001;
    sweep.messageBits = smoke ? 12 : 48;

    namespace fs = std::filesystem;
    const fs::path root = fs::path("campaign-bench-tmp");
    fs::remove_all(root);
    const std::string cacheDir = (root / "cache").string();

    // --- Direct baseline: the plain streaming sweep. ---
    const ExperimentRunner runner(1);
    const auto directStart = std::chrono::steady_clock::now();
    SweepSummarySink directSink;
    std::ostringstream directOs;
    directSink.writeHeader(directOs);
    std::size_t directRows = 0;
    runner.run(expandSweep(sweep), [&](const ExperimentResult &res) {
        ++directRows;
        directSink.writeRow(res, directOs);
    });
    directSink.writeFooter(directOs);
    const double directSeconds = seconds(directStart);
    const std::string directSummary = directOs.str();

    // --- Cold campaign: plan, kill shard 0 mid-run, resume, merge. ---
    const std::string coldDir = (root / "cold").string();
    std::string error = planCampaign(sweep, kShards, coldDir);
    if (!error.empty()) {
        std::fprintf(stderr, "plan failed: %s\n", error.c_str());
        return 1;
    }
    const auto coldStart = std::chrono::steady_clock::now();
    {
        // Deterministic mid-shard kill: shard 0 stops after 2 rows
        // and is resumed by the full pass below.
        ShardRunOptions killed;
        killed.threads = 1;
        killed.cacheDir = cacheDir;
        killed.maxNewRows = 2;
        error = runCampaignShard(coldDir, 0, killed);
        if (!error.empty()) {
            std::fprintf(stderr, "killed shard failed: %s\n",
                         error.c_str());
            return 1;
        }
    }
    ShardRunStats cold = runAllShards(coldDir, cacheDir);
    cold.executed += 2; // The pre-kill rows are part of the cold cost.
    const double coldSeconds = seconds(coldStart);
    const std::string coldSummary = mergeOrDie(coldDir);
    const bool coldIdentical = coldSummary == directSummary;

    // --- Warm campaign: same grid, fresh dir, populated cache. ---
    const std::string warmDir = (root / "warm").string();
    error = planCampaign(sweep, kShards, warmDir);
    if (!error.empty()) {
        std::fprintf(stderr, "plan failed: %s\n", error.c_str());
        return 1;
    }
    const auto warmStart = std::chrono::steady_clock::now();
    const ShardRunStats warm = runAllShards(warmDir, cacheDir);
    const double warmSeconds = seconds(warmStart);
    const std::string warmSummary = mergeOrDie(warmDir);
    const bool warmIdentical = warmSummary == directSummary;
    const double warmHitRate = warm.cacheHitRate();

    std::printf("rows %zu  direct %.3fs  cold campaign %.3fs"
                " (x%.2f overhead)  warm %.3fs (hit rate %.0f%%)\n",
                directRows, directSeconds, coldSeconds,
                directSeconds > 0.0 ? coldSeconds / directSeconds
                                    : 0.0,
                warmSeconds, 100.0 * warmHitRate);
    std::printf("merge identity: cold(+kill/resume) %s, warm %s\n",
                coldIdentical ? "IDENTICAL" : "DIFFERS",
                warmIdentical ? "IDENTICAL" : "DIFFERS");

    bench::JsonReport report("campaign");
    report.integer("rows", static_cast<long long>(directRows));
    report.integer("shards", kShards);
    report.boolean("smoke", smoke);
    bench::JsonReport &direct = report.object("direct");
    direct.number("seconds", directSeconds);
    direct.number("trials_per_sec",
                  directSeconds > 0.0
                      ? static_cast<double>(directRows) / directSeconds
                      : 0.0);
    bench::JsonReport &coldObj = report.object("cold");
    coldObj.number("seconds", coldSeconds);
    coldObj.number("overhead_vs_direct",
                   directSeconds > 0.0 ? coldSeconds / directSeconds
                                       : 0.0);
    coldObj.integer("executed", static_cast<long long>(cold.executed));
    coldObj.integer("cache_hits",
                    static_cast<long long>(cold.cacheHits));
    coldObj.boolean("merge_identical", coldIdentical);
    bench::JsonReport &warmObj = report.object("warm");
    warmObj.number("seconds", warmSeconds);
    warmObj.number("speedup_vs_cold",
                   warmSeconds > 0.0 ? coldSeconds / warmSeconds
                                     : 0.0);
    warmObj.number("cache_hit_rate", warmHitRate);
    warmObj.integer("executed", static_cast<long long>(warm.executed));
    warmObj.boolean("merge_identical", warmIdentical);
    report.writeFile(benchJsonFileName("campaign"));

    fs::remove_all(root);
    return bench::shapeCheck(
        "merged summaries byte-identical incl. kill/resume, warm"
        " cache hit rate > 0.9",
        coldIdentical && warmIdentical && warmHitRate > 0.9);
}
