/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate itself:
 * core tick throughput, chunk building, DSB lookups, and end-to-end
 * covert-channel bit cost. These guard the simulation speed that the
 * table/figure benches depend on.
 */

#include <benchmark/benchmark.h>

#include "core/nonmt_channels.hh"
#include "isa/mix_block.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"
#include "sim/executor.hh"

namespace lf {
namespace {

void
BM_CoreTickDsbLoop(benchmark::State &state)
{
    Core core(gold6226(), 1);
    std::vector<BlockSpec> specs;
    for (int i = 0; i < 8; ++i)
        specs.push_back({i, false});
    const auto chain = buildMixBlockChain(0x400000, 5, specs);
    core.setProgram(0, &chain.program);
    runLoopIters(core, 0, chain, 30);
    for (auto _ : state)
        core.tick();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoreTickDsbLoop);

void
BM_CoreTickSmtContention(benchmark::State &state)
{
    Core core(gold6226(), 1);
    const auto attacker = buildNopLoop(0x100000, 100);
    std::vector<BlockSpec> specs;
    for (int i = 0; i < 9; ++i)
        specs.push_back({i, false});
    const auto victim = buildMixBlockChain(0x400000, 5, specs);
    core.setProgram(0, &attacker.program);
    core.setProgram(1, &victim.program);
    core.runCycles(1000);
    for (auto _ : state)
        core.tick();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoreTickSmtContention);

void
BM_DsbLookup(benchmark::State &state)
{
    FrontendParams params;
    Dsb dsb(params);
    for (int i = 0; i < 256; ++i)
        dsb.insert(0, static_cast<Addr>(i) * 32, 5);
    Addr key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dsb.lookup(0, key));
        key = (key + 32) % (256 * 32);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DsbLookup);

void
BM_ChannelBit(benchmark::State &state)
{
    Core core(xeonE2288G(), 1);
    ChannelConfig cfg;
    cfg.d = 6;
    NonMtEvictionChannel channel(core, cfg);
    channel.setup();
    bool bit = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(channel.transmitBit(bit));
        bit = !bit;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelBit);

} // namespace
} // namespace lf

BENCHMARK_MAIN();
