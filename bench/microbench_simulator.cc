/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate itself:
 * core tick throughput, chunk building, DSB lookups, end-to-end
 * covert-channel bit cost, and the run-layer overheads (sweep grid
 * expansion, one full experiment trial). These guard the simulation
 * speed that the table/figure benches depend on.
 */

#include <benchmark/benchmark.h>

#include "core/nonmt_channels.hh"
#include "isa/mix_block.hh"
#include "run/sweep.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"
#include "sim/executor.hh"

namespace lf {
namespace {

void
BM_CoreTickDsbLoop(benchmark::State &state)
{
    Core core(gold6226(), 1);
    std::vector<BlockSpec> specs;
    for (int i = 0; i < 8; ++i)
        specs.push_back({i, false});
    const auto chain = buildMixBlockChain(0x400000, 5, specs);
    core.setProgram(0, &chain.program);
    runLoopIters(core, 0, chain, 30);
    for (auto _ : state)
        core.tick();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoreTickDsbLoop);

void
BM_CoreTickSmtContention(benchmark::State &state)
{
    Core core(gold6226(), 1);
    const auto attacker = buildNopLoop(0x100000, 100);
    std::vector<BlockSpec> specs;
    for (int i = 0; i < 9; ++i)
        specs.push_back({i, false});
    const auto victim = buildMixBlockChain(0x400000, 5, specs);
    core.setProgram(0, &attacker.program);
    core.setProgram(1, &victim.program);
    core.runCycles(1000);
    for (auto _ : state)
        core.tick();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoreTickSmtContention);

void
BM_DsbLookup(benchmark::State &state)
{
    FrontendParams params;
    Dsb dsb(params);
    for (int i = 0; i < 256; ++i)
        dsb.insert(0, static_cast<Addr>(i) * 32, 5);
    Addr key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dsb.lookup(0, key));
        key = (key + 32) % (256 * 32);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DsbLookup);

void
BM_ChannelBit(benchmark::State &state)
{
    Core core(xeonE2288G(), 1);
    ChannelConfig cfg;
    cfg.d = 6;
    NonMtEvictionChannel channel(core, cfg);
    channel.setup();
    bool bit = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(channel.transmitBit(bit));
        bit = !bit;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelBit);

void
BM_SweepExpansion(benchmark::State &state)
{
    SweepSpec sweep;
    sweep.channels = allChannelNames();
    for (const CpuModel *cpu : allCpuModels())
        sweep.cpus.push_back(cpu->name);
    sweep.axes = {{"d", {1, 2, 3, 4, 5, 6, 7, 8}}};
    sweep.trials = 4;
    std::size_t specs = 0;
    for (auto _ : state) {
        const auto batch = expandSweep(sweep);
        benchmark::DoNotOptimize(batch.data());
        specs = batch.size();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(specs));
}
BENCHMARK(BM_SweepExpansion);

void
BM_RunExperimentTrial(benchmark::State &state)
{
    ExperimentSpec spec;
    spec.channel = "nonmt-fast-eviction";
    spec.cpu = "E-2288G";
    spec.messageBits = 8;
    for (auto _ : state) {
        const auto res = runExperiment(spec);
        benchmark::DoNotOptimize(res.ok);
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_RunExperimentTrial);

} // namespace
} // namespace lf

BENCHMARK_MAIN();
