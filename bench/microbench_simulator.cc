/**
 * @file
 * Simulator/runner microbenchmarks, in two parts:
 *
 *  1. A hand-timed ExperimentRunner throughput section (always runs,
 *     `--smoke` shrinks it for sanitizer CI): trials/sec at 1/4/8
 *     worker threads with per-worker core reuse vs a fresh Core per
 *     trial, emitted as BENCH_runner_throughput.json — the perf
 *     trajectory of the run layer.
 *  2. google-benchmark microbenchmarks of the substrate: core tick
 *     throughput, DSB lookups, Core reset-vs-construct cost,
 *     end-to-end covert-channel bit cost, and the run-layer
 *     overheads (sweep grid expansion, one full experiment trial).
 *     Skipped in --smoke mode.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "core/nonmt_channels.hh"
#include "frontend/prepared.hh"
#include "isa/mix_block.hh"
#include "obs/counters.hh"
#include "run/report.hh"
#include "run/sinks.hh"
#include "run/sweep.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"
#include "sim/executor.hh"
#include "sim/snapshot.hh"

namespace lf {
namespace {

// ---- Part 1: runner throughput (BENCH_runner_throughput.json). ----

/** Single-thread trials/s of this batch recorded at PR 5 (the state
 *  ISSUE 7 starts from: map-backed fetch image, per-trial chain
 *  rebuilds, lock-convoy reorder window). The hot-path gate below
 *  requires at least a 3x improvement over it. */
constexpr double kPr5BaselineTrialsPerSec = 2400.0;

/** Cheap, valid trial spec: construction overhead must be visible
 *  next to the simulation work, so bits and rounds are minimal. */
ExperimentSpec
throughputSpec()
{
    ExperimentSpec spec;
    spec.channel = "nonmt-fast-eviction";
    spec.cpu = "E-2288G";
    spec.seed = 7;
    spec.messageBits = 4;
    spec.preambleBits = 4;
    spec.overrides["rounds"] = 2;
    spec.overrides["initIters"] = 2;
    return spec;
}

double
trialsPerSec(const ExperimentRunner &runner,
             const std::vector<ExperimentSpec> &batch, int reps,
             std::vector<double> *samples = nullptr)
{
    using Clock = std::chrono::steady_clock;
    // Best-of-reps: scheduler hiccups only ever slow a rep down, so
    // the max is the least-noisy throughput estimate. The raw
    // per-rep samples are recorded too (--repeat N widens the set)
    // so regressions can be told apart from one lucky/unlucky rep.
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const Clock::time_point start = Clock::now();
        std::size_t delivered = 0;
        runner.run(batch, [&delivered](const ExperimentResult &res) {
            if (res.ok)
                ++delivered;
        });
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start)
                .count();
        if (delivered != batch.size())
            std::fprintf(stderr, "warning: %zu/%zu trials ok\n",
                         delivered, batch.size());
        const double tps = seconds > 0.0
            ? static_cast<double>(batch.size()) / seconds
            : 0.0;
        if (samples != nullptr)
            samples->push_back(tps);
        best = std::max(best, tps);
    }
    return best;
}

/** Direct per-trial construction-cost comparison: nanoseconds to
 *  construct a fresh Core vs to Core::reset() an existing one —
 *  exactly the work the streaming runner's core reuse saves per
 *  trial. Best-of-reps over sizeable loops, so the comparison stays
 *  meaningful on noisy shared machines where the end-to-end
 *  trials/sec delta (construction is ~0.1% of a trial) drowns in
 *  scheduler jitter. */
void
measureCoreReuse(int iters, int reps, double &construct_ns,
                 double &reset_ns)
{
    using Clock = std::chrono::steady_clock;
    const CpuModel &model = xeonE2288G();
    construct_ns = 0.0;
    reset_ns = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        Clock::time_point start = Clock::now();
        for (int i = 0; i < iters; ++i) {
            Core core(model, static_cast<std::uint64_t>(i) + 1);
            benchmark::DoNotOptimize(core.cycle());
        }
        const double construct =
            std::chrono::duration<double, std::nano>(Clock::now() -
                                                     start)
                .count() / iters;
        Core core(model, 1);
        start = Clock::now();
        for (int i = 0; i < iters; ++i) {
            core.reset(model, static_cast<std::uint64_t>(i) + 1);
            benchmark::DoNotOptimize(core.cycle());
        }
        const double reset =
            std::chrono::duration<double, std::nano>(Clock::now() -
                                                     start)
                .count() / iters;
        if (rep == 0 || construct < construct_ns)
            construct_ns = construct;
        if (rep == 0 || reset < reset_ns)
            reset_ns = reset;
    }
}

/** The snapshot-gate cell: the throughput spec made quiet (every
 *  noise knob zeroed, so the RNG tripwire stays untripped) with the
 *  >= 32-bit calibration preamble the gate specifies — a batch whose
 *  repeated calibration the warm snapshots exist to amortize. */
ExperimentSpec
snapshotSpec()
{
    ExperimentSpec spec = throughputSpec();
    spec.preambleBits = 32;
    spec.overrides["model.noiseStddevCycles"] = 0;
    spec.overrides["model.spikeProb"] = 0;
    spec.overrides["model.jitterPerKcycle"] = 0;
    spec.overrides["model.sgxEntryJitterStddev"] = 0;
    spec.overrides["model.raplNoiseStddevMicroJoules"] = 0;
    return spec;
}

/** Direct restore-vs-replay comparison: nanoseconds to restore a
 *  captured WarmSnapshot onto a live context vs to re-run the
 *  calibration it replaces — the per-trial work the snapshot cache
 *  saves. Returns false if the cell unexpectedly fails to snapshot
 *  (the caller turns that into a failed shape check). */
bool
measureSnapshotRestore(int iters, int reps, double &restore_ns,
                       double &replay_ns)
{
    using Clock = std::chrono::steady_clock;
    TrialContext ctx;
    const ExperimentSpec spec = snapshotSpec();
    if (!resolveTrial(spec, ctx).empty())
        return false;
    const auto channel = makeChannel(spec.channel, ctx);
    const CovertChannel::Calibration calib = channel->calibrate(ctx);
    if (!calib.rngUntouched)
        return false;
    const WarmSnapshotPtr snap = captureWarmSnapshot(ctx, calib);
    if (!snap)
        return false;
    restore_ns = 0.0;
    replay_ns = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        Clock::time_point start = Clock::now();
        for (int i = 0; i < iters; ++i) {
            restoreWarmSnapshot(ctx, *snap);
            benchmark::DoNotOptimize(ctx.core().cycle());
        }
        const double restore =
            std::chrono::duration<double, std::nano>(Clock::now() -
                                                     start)
                .count() / iters;
        start = Clock::now();
        for (int i = 0; i < iters; ++i) {
            benchmark::DoNotOptimize(
                channel->calibrate(ctx).preambleBits);
        }
        const double replay =
            std::chrono::duration<double, std::nano>(Clock::now() -
                                                     start)
                .count() / iters;
        if (rep == 0 || restore < restore_ns)
            restore_ns = restore;
        if (rep == 0 || replay < replay_ns)
            replay_ns = replay;
    }
    return true;
}

int
emitRunnerThroughput(bool smoke, int repeat)
{
    const int trials = smoke ? 64 : 256;
    const int reps = repeat > 0 ? repeat : (smoke ? 1 : 3);
    const auto batch = expandTrials(throughputSpec(), trials);
    const unsigned hw_threads = std::thread::hardware_concurrency();

    bench::banner("Runner throughput (per-worker core reuse vs fresh"
                  " Core per trial)");
    bench::JsonReport report("runner_throughput");
    report.integer("trials", trials);
    report.integer("message_bits", 4);
    report.integer("hw_threads", static_cast<long long>(hw_threads));
    report.integer("repeat", reps);
    report.boolean("smoke", smoke);

    double reused_t1 = 0.0;
    double fresh_t1 = 0.0;
    double reused_t8 = 0.0;
    std::printf("%8s  %18s  %18s\n", "threads", "reused (trials/s)",
                "fresh (trials/s)");
    for (const int threads : {1, 4, 8}) {
        ExperimentRunner reused(threads);
        ExperimentRunner fresh(threads);
        fresh.setCoreReuse(false);
        // Fresh first, reused second: if anything, the warmed
        // allocator favours the later run equally.
        std::vector<double> fresh_samples;
        std::vector<double> reused_samples;
        const double fresh_tps =
            trialsPerSec(fresh, batch, reps, &fresh_samples);
        const double reused_tps =
            trialsPerSec(reused, batch, reps, &reused_samples);
        std::printf("%8d  %18.1f  %18.1f\n", threads, reused_tps,
                    fresh_tps);
        const std::string tag = "_t" + std::to_string(threads);
        report.number("reused" + tag + "_trials_per_sec", reused_tps);
        report.number("fresh" + tag + "_trials_per_sec", fresh_tps);
        report.numberArray("reused" + tag + "_samples",
                           reused_samples);
        report.numberArray("fresh" + tag + "_samples", fresh_samples);
        if (threads == 1) {
            reused_t1 = reused_tps;
            fresh_t1 = fresh_tps;
        }
        if (threads == 8)
            reused_t8 = reused_tps;
    }

    // Legacy hot path, measured in-run: both caching layers off
    // reproduces the PR-5-era per-trial setup cost (rebuild every
    // chain, re-decode on every setProgram bind). The ratio checks
    // that the program/chunk cache still pays for itself; the
    // absolute trials/s above carry the full speedup trajectory
    // against the recorded PR-5 baseline.
    double legacy_t1 = 0.0;
    {
        ProgramCachingScope scope(false);
        legacy_t1 = trialsPerSec(ExperimentRunner(1), batch, reps);
    }
    const double cache_speedup =
        legacy_t1 > 0.0 ? reused_t1 / legacy_t1 : 0.0;
    std::printf("\nsingle-thread hot path: tuned %.1f trials/s,"
                " legacy (no program/chunk cache) %.1f trials/s"
                " (%.2fx)\n", reused_t1, legacy_t1, cache_speedup);
    report.number("legacy_t1_trials_per_sec", legacy_t1);
    report.number("tuned_over_legacy_t1", cache_speedup);
    report.number("pr5_baseline_trials_per_sec",
                  kPr5BaselineTrialsPerSec);

    // The observability overhead budget (docs/OBSERVABILITY.md): the
    // increment hooks feeding obs::CounterSet are compiled in
    // unconditionally, so the *counters-off* path — every normal run —
    // must stay within 2% of the 3x-over-PR-5 throughput the PR-7
    // runner gated on. The counters-on figure is also measured and
    // emitted (collection adds one CounterSet copy per trial), but
    // only reported: opting into counters buys the data with the
    // overhead.
    double counters_on_t1 = 0.0;
    {
        obs::CounterScope scope(true);
        counters_on_t1 = trialsPerSec(ExperimentRunner(1), batch, reps);
    }
    const double pr7_gate = 3.0 * kPr5BaselineTrialsPerSec;
    std::printf("counters on: %.1f trials/s (off: %.1f; PR-7 gate"
                " %.1f, 2%% floor %.1f)\n",
                counters_on_t1, reused_t1, pr7_gate, 0.98 * pr7_gate);
    report.number("counters_off_t1_trials_per_sec", reused_t1);
    report.number("counters_on_t1_trials_per_sec", counters_on_t1);
    report.number("pr7_gate_trials_per_sec", pr7_gate);
    report.number("counters_off_overhead_gate", 0.98 * pr7_gate);

    // Warm-snapshot section (sim/snapshot.hh): one quiet sweep cell
    // with a 32-bit calibration preamble, run with the cache off
    // (every trial calibrates cold) and on (the first trial
    // calibrates, the rest restore). Same batch, bit-identical
    // results — the ratio is pure calibration amortization.
    const auto snap_batch = expandTrials(snapshotSpec(), trials);
    double snap_off_t1 = 0.0;
    double snap_on_t1 = 0.0;
    std::vector<double> snap_off_samples;
    std::vector<double> snap_on_samples;
    {
        SnapshotCacheScope scope(false);
        snap_off_t1 = trialsPerSec(ExperimentRunner(1), snap_batch,
                                   reps, &snap_off_samples);
    }
    {
        SnapshotCacheScope scope(true);
        clearWarmSnapshotCache();
        snap_on_t1 = trialsPerSec(ExperimentRunner(1), snap_batch,
                                  reps, &snap_on_samples);
        clearWarmSnapshotCache();
    }
    const double snapshot_speedup =
        snap_off_t1 > 0.0 ? snap_on_t1 / snap_off_t1 : 0.0;
    double restore_ns = 0.0;
    double replay_ns = 0.0;
    const bool snap_measured = measureSnapshotRestore(
        smoke ? 200 : 2000, smoke ? 2 : 5, restore_ns, replay_ns);
    std::printf("warm snapshots (32-bit preamble): on %.1f trials/s,"
                " off %.1f trials/s (%.2fx); restore %.0f ns vs"
                " replayed calibration %.0f ns\n",
                snap_on_t1, snap_off_t1, snapshot_speedup, restore_ns,
                replay_ns);
    report.integer("snapshot_preamble_bits", 32);
    report.number("snapshot_off_t1_trials_per_sec", snap_off_t1);
    report.number("snapshot_on_t1_trials_per_sec", snap_on_t1);
    report.numberArray("snapshot_off_t1_samples", snap_off_samples);
    report.numberArray("snapshot_on_t1_samples", snap_on_samples);
    report.number("snapshot_speedup_t1", snapshot_speedup);
    report.number("snapshot_restore_ns", restore_ns);
    report.number("snapshot_replay_ns", replay_ns);

    // Thundering-herd regression check, made deterministic: with a
    // batch smaller than the reorder window no worker can ever be a
    // full window ahead of delivery, so no worker ever parks and a
    // correct runner issues exactly zero slot-free broadcasts —
    // independent of scheduling, core count or consumer speed. The
    // pre-PR-7 runner broadcast to every worker once per delivered
    // row, which this check counts directly.
    StreamStats stats;
    {
        ExperimentRunner herd(4);
        herd.setStatsSink(&stats);
        const int herd_rows = static_cast<int>(herd.reorderWindow()) - 8;
        const auto herd_batch =
            expandTrials(throughputSpec(), herd_rows);
        herd.run(herd_batch, [](const ExperimentResult &) {});
        std::printf("coordination (t4, %d rows < window %zu): %llu"
                    " worker parks, %llu consumer parks, %llu wake"
                    " broadcasts\n",
                    herd_rows, herd.reorderWindow(),
                    static_cast<unsigned long long>(stats.workerParks),
                    static_cast<unsigned long long>(
                        stats.consumerParks),
                    static_cast<unsigned long long>(
                        stats.wakeBroadcasts));
    }
    report.integer("herd_worker_parks",
                   static_cast<long long>(stats.workerParks));
    report.integer("herd_consumer_parks",
                   static_cast<long long>(stats.consumerParks));
    report.integer("herd_wake_broadcasts",
                   static_cast<long long>(stats.wakeBroadcasts));

    double construct_ns = 0.0;
    double reset_ns = 0.0;
    measureCoreReuse(smoke ? 2000 : 20000, smoke ? 2 : 5,
                     construct_ns, reset_ns);
    std::printf("per-trial construction cost: fresh Core %.0f ns,"
                " Core::reset %.0f ns (%.1fx)\n",
                construct_ns, reset_ns,
                reset_ns > 0.0 ? construct_ns / reset_ns : 0.0);
    report.number("core_construct_ns", construct_ns);
    report.number("core_reset_ns", reset_ns);
    report.number("reuse_speedup_t1",
                  fresh_t1 > 0.0 ? reused_t1 / fresh_t1 : 0.0);
    // Thread-scaling ratio: on a host without 8 hardware threads the
    // t8 run oversubscribes and the ratio says nothing about the
    // runner — emit an explicit JSON null ("not measurable here"),
    // never a misleading sub-1.0 number.
    if (hw_threads >= 8) {
        report.number("t8_over_t1",
                      reused_t1 > 0.0 ? reused_t8 / reused_t1 : 0.0);
    } else {
        report.nullValue("t8_over_t1");
    }

    report.writeFile(benchJsonFileName("runner_throughput"));
    std::printf("\nwrote %s\n",
                benchJsonFileName("runner_throughput").c_str());
    int rc = 0;
    // The herd check is structural (see above), so it gates even
    // under --smoke; the timing gates below are skipped there
    // (sanitizer/debug timing skew).
    rc |= bench::shapeCheck("sub-window batch issues zero wakeup"
                            " broadcasts (no thundering herd)",
                            stats.wakeBroadcasts == 0 &&
                                stats.workerParks == 0);
    if (smoke)
        return rc;
    // The construction-vs-reset measurement is isolated because the
    // end-to-end reuse delta (construction is a fraction of a percent
    // of one trial) sits below shared-CI scheduler noise.
    rc |= bench::shapeCheck("core reuse beats per-trial construction",
                            reset_ns < construct_ns);
    rc |= bench::shapeCheck("program/chunk cache still pays on the"
                            " single-thread hot path (>= 1.2x)",
                            cache_speedup >= 1.2);
    rc |= bench::shapeCheck("single-thread throughput >= 3x the PR-5"
                            " baseline (2.4k trials/s)",
                            reused_t1 >=
                                3.0 * kPr5BaselineTrialsPerSec);
    rc |= bench::shapeCheck("counters-off throughput within 2% of the"
                            " PR-7 gate baseline",
                            reused_t1 >= 0.98 * pr7_gate);
    rc |= bench::shapeCheck("warm-snapshot restore is cheaper than"
                            " replaying the calibration",
                            snap_measured && restore_ns < replay_ns);
    rc |= bench::shapeCheck("snapshot cache >= 1.3x on the"
                            " 32-bit-preamble batch (t1)",
                            snapshot_speedup >= 1.3);
    // Thread scaling needs the hardware to scale on; on smaller CI
    // boxes the values above are still emitted for the trajectory.
    if (hw_threads >= 8) {
        rc |= bench::shapeCheck("8-thread throughput >= 3x"
                                " single-thread",
                                reused_t8 >= 3.0 * reused_t1);
    } else {
        std::printf("Shape check (8-thread throughput >= 3x"
                    " single-thread): skipped (host too small: %u"
                    " hardware threads < 8)\n", hw_threads);
    }
    return rc;
}

// ---- Part 2: google-benchmark substrate microbenchmarks. ----

void
BM_CoreTickDsbLoop(benchmark::State &state)
{
    Core core(gold6226(), 1);
    std::vector<BlockSpec> specs;
    for (int i = 0; i < 8; ++i)
        specs.push_back({i, false});
    const auto chain = buildMixBlockChain(0x400000, 5, specs);
    core.setProgram(0, &chain.program);
    runLoopIters(core, 0, chain, 30);
    for (auto _ : state)
        core.tick();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoreTickDsbLoop);

void
BM_CoreTickSmtContention(benchmark::State &state)
{
    Core core(gold6226(), 1);
    const auto attacker = buildNopLoop(0x100000, 100);
    std::vector<BlockSpec> specs;
    for (int i = 0; i < 9; ++i)
        specs.push_back({i, false});
    const auto victim = buildMixBlockChain(0x400000, 5, specs);
    core.setProgram(0, &attacker.program);
    core.setProgram(1, &victim.program);
    core.runCycles(1000);
    for (auto _ : state)
        core.tick();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoreTickSmtContention);

void
BM_DsbLookup(benchmark::State &state)
{
    FrontendParams params;
    Dsb dsb(params);
    for (int i = 0; i < 256; ++i)
        dsb.insert(0, static_cast<Addr>(i) * 32, 5);
    Addr key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dsb.lookup(0, key));
        key = (key + 32) % (256 * 32);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DsbLookup);

void
BM_CoreConstruct(benchmark::State &state)
{
    const CpuModel &model = xeonE2288G();
    std::uint64_t seed = 1;
    for (auto _ : state) {
        Core core(model, seed++);
        benchmark::DoNotOptimize(core.cycle());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoreConstruct);

void
BM_CoreReset(benchmark::State &state)
{
    const CpuModel &model = xeonE2288G();
    Core core(model, 1);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        core.reset(model, seed++);
        benchmark::DoNotOptimize(core.cycle());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoreReset);

void
BM_ChannelBit(benchmark::State &state)
{
    Core core(xeonE2288G(), 1);
    ChannelConfig cfg;
    cfg.d = 6;
    NonMtEvictionChannel channel(core, cfg);
    channel.setup();
    bool bit = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(channel.transmitBit(bit));
        bit = !bit;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelBit);

void
BM_SweepExpansion(benchmark::State &state)
{
    SweepSpec sweep;
    sweep.channels = allChannelNames();
    for (const CpuModel *cpu : allCpuModels())
        sweep.cpus.push_back(cpu->name);
    sweep.axes = {{"d", {1, 2, 3, 4, 5, 6, 7, 8}}};
    sweep.trials = 4;
    std::size_t specs = 0;
    for (auto _ : state) {
        const auto batch = expandSweep(sweep);
        benchmark::DoNotOptimize(batch.data());
        specs = batch.size();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(specs));
}
BENCHMARK(BM_SweepExpansion);

void
BM_RunExperimentTrial(benchmark::State &state)
{
    ExperimentSpec spec;
    spec.channel = "nonmt-fast-eviction";
    spec.cpu = "E-2288G";
    spec.messageBits = 8;
    for (auto _ : state) {
        const auto res = runExperiment(spec);
        benchmark::DoNotOptimize(res.ok);
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_RunExperimentTrial);

} // namespace
} // namespace lf

int
main(int argc, char **argv)
{
    bool smoke = false;
    int repeat = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        // Strip our own flags: google-benchmark rejects unknown ones.
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
            continue;
        }
        if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
            repeat = std::atoi(argv[++i]);
            if (repeat < 1) {
                std::fprintf(stderr,
                             "--repeat needs a positive count\n");
                return 1;
            }
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;

    const int throughput_rc = lf::emitRunnerThroughput(smoke, repeat);
    if (smoke)
        return throughput_rc;

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return throughput_rc;
}
