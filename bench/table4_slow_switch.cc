/**
 * @file
 * Table IV: the slow-switch (LCP) covert channel on the Gold 6226 and
 * the E-2288G with r = 16 and an alternating message.
 *
 * Expected shape: rates comparable to the non-MT misalignment
 * channels, clearly higher on the E-2288G, with low error.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/nonmt_channels.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    bench::banner("Table IV — slow-switch (LCP) covert channel");

    const CpuModel *cpus[] = {&gold6226(), &xeonE2288G()};
    const char *paper_rate[] = {"678.11", "1351.43"};
    const char *paper_err[] = {"6.74%", "0.64%"};

    TextTable table("Non-MT Slow-Switch-Based (r = 16)");
    table.setHeader({"Metric", "G6226", "E-2288G"});
    std::vector<std::string> rate_row = {"Tr. Rate (Kbps)"};
    std::vector<std::string> err_row = {"Error Rate"};
    for (int i = 0; i < 2; ++i) {
        Core core(*cpus[i], 77 + i);
        ChannelConfig cfg;
        cfg.r = 16;
        cfg.rounds = 20;
        SlowSwitchChannel channel(core, cfg);
        const ChannelResult res =
            channel.transmit(bench::alternatingMessage());
        rate_row.push_back(bench::cmpCell(res.transmissionKbps,
                                          paper_rate[i]));
        err_row.push_back(formatPercent(res.errorRate) + " (paper " +
                          paper_err[i] + ")");
    }
    table.addRow(rate_row);
    table.addRow(err_row);
    std::printf("%s\n", table.render().c_str());
    return 0;
}
