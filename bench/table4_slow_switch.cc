/**
 * @file
 * Table IV: the slow-switch (LCP) covert channel on the Gold 6226 and
 * the E-2288G with r = 16 and an alternating message, run as one
 * SweepSpec through the ExperimentRunner (the r = 16 / rounds = 20
 * setting is the channel's registry default). Emits BENCH_table4.json.
 *
 * Expected shape: rates comparable to the non-MT misalignment
 * channels, clearly higher on the E-2288G, with low error.
 */

#include <cstdio>

#include "common/table.hh"
#include "run/report.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    bench::banner("Table IV — slow-switch (LCP) covert channel");

    const char *paper_rate[] = {"678.11", "1351.43"};
    const char *paper_err[] = {"6.74%", "0.64%"};

    SweepSpec sweep;
    sweep.channels = {"slow-switch"};
    sweep.cpus = {gold6226().name, xeonE2288G().name};
    sweep.seed = 77;

    const auto results = runSweep(sweep, ExperimentRunner());

    TextTable table("Non-MT Slow-Switch-Based (r = 16)");
    table.setHeader({"Metric", "G6226", "E-2288G"});
    std::vector<std::string> rate_row = {"Tr. Rate (Kbps)"};
    std::vector<std::string> err_row = {"Error Rate"};
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ChannelResult &res = results[i].result;
        rate_row.push_back(bench::cmpCell(res.transmissionKbps,
                                          paper_rate[i]));
        err_row.push_back(formatPercent(res.errorRate) + " (paper " +
                          paper_err[i] + ")");
    }
    table.addRow(rate_row);
    table.addRow(err_row);
    std::printf("%s\n", table.render().c_str());
    JsonSink("table4_slow_switch")
        .writeFile(results, benchJsonFileName("table4"));
    std::printf("Wrote %s\n", benchJsonFileName("table4").c_str());
    return 0;
}
