/**
 * @file
 * Table VI: covert channels leaking from an SGX enclave (d = 6
 * eviction / d = 5, M = 8 misalignment; alternating message) on the
 * three SGX-capable machines. Each paper row is one SweepSpec (fixed
 * label, one sgx-* channel, the SGX CPUs); the rows run as one
 * parallel ExperimentRunner batch. Emits BENCH_table6.json.
 *
 * Expected shape: non-MT SGX rates are roughly 1/25 - 1/30 of the
 * non-SGX non-MT rates (one enclave entry/exit per bit plus thousands
 * of amplification rounds); MT SGX rates are lower still; error rates
 * stay low.
 */

#include <cstdio>

#include "run/report.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

constexpr std::size_t kSgxBits = 60;

struct RowSpec
{
    const char *label;
    const char *channel;
    const char *paper_rate[3];
    const char *paper_err[3];
};

} // namespace

int
main()
{
    bench::banner("Table VI — SGX enclave covert channels");

    const RowSpec rows[] = {
        {"Non-MT Stealthy Eviction", "sgx-nonmt-stealthy-eviction",
         {"18.96", "19.56", "21.20"}, {"0.16%", "1.33%", "2.18%"}},
        {"Non-MT Stealthy Misalignment",
         "sgx-nonmt-stealthy-misalignment",
         {"23.93", "24.70", "27.10"}, {"0.32%", "0.76%", "0.76%"}},
        {"Non-MT Fast Eviction", "sgx-nonmt-fast-eviction",
         {"29.35", "32.01", "34.48"}, {"0.04%", "1.40%", "0.40%"}},
        {"Non-MT Fast Misalignment", "sgx-nonmt-fast-misalignment",
         {"30.36", "31.18", "35.20"}, {"0.08%", "1.08%", "0.68%"}},
        {"MT Eviction", "sgx-mt-eviction",
         {"7.85", "14.89", "-"}, {"6.74%", "8.02%", "-"}},
        {"MT Misalignment", "sgx-mt-misalignment",
         {"6.39", "13.62", "-"}, {"2.56%", "12.95%", "-"}},
    };

    const auto cpus = sgxCpuModels();
    TextTableSink text("SGX channels (sim value, paper value)");
    std::vector<ExperimentSpec> specs;
    std::uint64_t seed = 700;
    for (const RowSpec &row : rows) {
        SweepSpec sweep;
        sweep.label = row.label;
        sweep.channels = {row.channel};
        for (std::size_t c = 0; c < cpus.size(); ++c) {
            sweep.cpus.push_back(cpus[c]->name);
            text.annotatePaper(row.label, cpus[c]->name,
                               {row.paper_rate[c], row.paper_err[c]});
        }
        sweep.messageBits = kSgxBits;
        sweep.preambleBits = 10;
        sweep.seed = ++seed;
        for (ExperimentSpec &spec : expandSweep(sweep))
            specs.push_back(std::move(spec));
    }

    const auto results = ExperimentRunner().run(specs);
    std::printf("%s\n", text.render(results).c_str());
    JsonSink("table6_sgx").writeFile(results,
                                     benchJsonFileName("table6"));
    std::printf("Wrote %s\n", benchJsonFileName("table6").c_str());
    std::printf("Expected shape: tens of Kbps for non-MT SGX"
                " (1/25-1/30 of non-SGX),\n  MT SGX lower still;"
                " low error rates throughout.\n");
    return 0;
}
