/**
 * @file
 * Table VI: covert channels leaking from an SGX enclave (d = 6
 * eviction / d = 5, M = 8 misalignment; alternating message) on the
 * three SGX-capable machines.
 *
 * Expected shape: non-MT SGX rates are roughly 1/25 - 1/30 of the
 * non-SGX non-MT rates (one enclave entry/exit per bit plus thousands
 * of amplification rounds); MT SGX rates are lower still; error rates
 * stay low.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sgx/sgx_channels.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

constexpr std::size_t kSgxBits = 60;

template <typename ChannelT>
ChannelResult
runOn(const CpuModel &cpu, const ChannelConfig &cfg,
      const SgxConfig &sgx, std::uint64_t seed)
{
    Core core(cpu, seed);
    ChannelT channel(core, cfg, sgx);
    return channel.transmit(bench::alternatingMessage(kSgxBits), 10);
}

} // namespace

int
main()
{
    bench::banner("Table VI — SGX enclave covert channels");

    const auto cpus = sgxCpuModels();
    SgxConfig sgx;

    struct RowSpec
    {
        const char *name;
        bool mt;
        bool misalign;
        bool stealthy;
        const char *paper_rate[3];
        const char *paper_err[3];
    };
    const RowSpec rows[] = {
        {"Non-MT Stealthy Eviction", false, false, true,
         {"18.96", "19.56", "21.20"}, {"0.16%", "1.33%", "2.18%"}},
        {"Non-MT Stealthy Misalignment", false, true, true,
         {"23.93", "24.70", "27.10"}, {"0.32%", "0.76%", "0.76%"}},
        {"Non-MT Fast Eviction", false, false, false,
         {"29.35", "32.01", "34.48"}, {"0.04%", "1.40%", "0.40%"}},
        {"Non-MT Fast Misalignment", false, true, false,
         {"30.36", "31.18", "35.20"}, {"0.08%", "1.08%", "0.68%"}},
        {"MT Eviction", true, false, false,
         {"7.85", "14.89", "-"}, {"6.74%", "8.02%", "-"}},
        {"MT Misalignment", true, true, false,
         {"6.39", "13.62", "-"}, {"2.56%", "12.95%", "-"}},
    };

    TextTable table("SGX channels (sim value, paper value)");
    table.setHeader({"Channel", "Metric", "E-2174G", "E-2286G",
                     "E-2288G"});

    std::uint64_t seed = 700;
    for (const RowSpec &row : rows) {
        std::vector<std::string> rate_row = {row.name,
                                             "Tr. Rate (Kbps)"};
        std::vector<std::string> err_row = {"", "Error Rate"};
        for (std::size_t c = 0; c < cpus.size(); ++c) {
            const CpuModel &cpu = *cpus[c];
            ++seed;
            if (row.mt && !cpu.smtEnabled) {
                rate_row.push_back("- (paper -)");
                err_row.push_back("- (paper -)");
                continue;
            }
            ChannelConfig cfg;
            if (row.misalign) {
                cfg.d = 5;
                cfg.M = 8;
            } else {
                cfg.d = 6;
            }
            cfg.stealthy = row.stealthy;
            ChannelResult res;
            if (row.mt && row.misalign) {
                res = runOn<SgxMtMisalignmentChannel>(cpu, cfg, sgx,
                                                      seed);
            } else if (row.mt) {
                res = runOn<SgxMtEvictionChannel>(cpu, cfg, sgx, seed);
            } else if (row.misalign) {
                res = runOn<SgxNonMtMisalignmentChannel>(cpu, cfg, sgx,
                                                         seed);
            } else {
                res = runOn<SgxNonMtEvictionChannel>(cpu, cfg, sgx,
                                                     seed);
            }
            rate_row.push_back(bench::cmpCell(res.transmissionKbps,
                                              row.paper_rate[c]));
            err_row.push_back(formatPercent(res.errorRate) + " (paper " +
                              row.paper_err[c] + ")");
        }
        table.addRow(rate_row);
        table.addRow(err_row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: tens of Kbps for non-MT SGX"
                " (1/25-1/30 of non-SGX),\n  MT SGX lower still;"
                " low error rates throughout.\n");
    return 0;
}
