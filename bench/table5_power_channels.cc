/**
 * @file
 * Table V: non-MT power-based covert channels (eviction and
 * misalignment variants) on the Gold 6226, observed through the
 * simulated RAPL counter.
 *
 * The paper interleaves p = q = 240,000 rounds per bit; the default
 * here uses fewer rounds to keep simulation turnaround small and
 * reports both the simulated rate and the rate normalized to the
 * paper's round count (per-bit time scales linearly in rounds).
 * Expected shape: ~three orders of magnitude slower than the timing
 * channels, but comfortably above the 100 bps TCSEC threshold.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/power_channels.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

constexpr int kPaperRounds = 240000;

template <typename ChannelT>
void
runRow(TextTable &table, const char *name, const ChannelConfig &cfg,
       const char *paper_rate, const char *paper_err,
       std::uint64_t seed)
{
    PowerChannelConfig power_cfg;
    power_cfg.rounds = 20000;
    Core core(gold6226(), seed);
    ChannelT channel(core, cfg, power_cfg);
    Rng rng(3);
    const auto msg = makeMessage(MessagePattern::Alternating, 12, rng);
    const ChannelResult res = channel.transmit(msg, 8);
    const double normalized = res.transmissionKbps *
        static_cast<double>(power_cfg.rounds) /
        static_cast<double>(kPaperRounds);
    table.addRow({name, formatKbps(res.transmissionKbps),
                  formatKbps(normalized) + " (paper " + paper_rate + ")",
                  formatPercent(res.errorRate) + " (paper " + paper_err +
                      ")"});
}

} // namespace

int
main()
{
    bench::banner("Table V — non-MT power channels (Gold 6226, d = 6)");

    TextTable table("Power channels via RAPL");
    table.setHeader({"Channel", "Sim rate (Kbps, 20k rounds)",
                     "Rate @ paper 240k rounds (Kbps)", "Error Rate"});

    ChannelConfig ev;
    ev.d = 6;
    ev.stealthy = true;
    runRow<PowerEvictionChannel>(table, "Eviction-Based", ev, "0.66",
                                 "18.87%", 61);

    ChannelConfig mi;
    mi.d = 5;
    mi.M = 8;
    mi.stealthy = true;
    runRow<PowerMisalignmentChannel>(table, "Misalignment-Based", mi,
                                     "0.63", "9.07%", 62);

    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: both channels land in the ~kbps range"
                " at paper\n  round counts (>> 100 bps TCSEC"
                " threshold), far below the timing channels.\n");
    return 0;
}
