/**
 * @file
 * Table V: non-MT power-based covert channels (eviction and
 * misalignment variants) on the Gold 6226, observed through the
 * simulated RAPL counter.
 *
 * The paper interleaves p = q = 240,000 rounds per bit; the sweep uses
 * fewer rounds (a powerRounds base override) to keep simulation
 * turnaround small and this bench reports both the simulated rate and
 * the rate normalized to the paper's round count (per-bit time scales
 * linearly in rounds). One SweepSpec covers both channels;
 * BENCH_table5.json carries the machine-readable rows.
 *
 * Expected shape: ~three orders of magnitude slower than the timing
 * channels, but comfortably above the 100 bps TCSEC threshold.
 */

#include <cstdio>

#include "common/table.hh"
#include "run/report.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

constexpr int kPaperRounds = 240000;
constexpr int kSimRounds = 20000;

} // namespace

int
main()
{
    bench::banner("Table V — non-MT power channels (Gold 6226, d = 6)");

    const char *labels[] = {"Eviction-Based", "Misalignment-Based"};
    const char *paper_rate[] = {"0.66", "0.63"};
    const char *paper_err[] = {"18.87%", "9.07%"};

    SweepSpec sweep;
    sweep.channels = {"power-eviction", "power-misalignment"};
    sweep.cpus = {gold6226().name};
    sweep.baseOverrides["powerRounds"] = kSimRounds;
    sweep.messageBits = 12;
    sweep.preambleBits = 8;
    sweep.seed = 61;

    const auto results = runSweep(sweep, ExperimentRunner());

    TextTable table("Power channels via RAPL");
    table.setHeader({"Channel", "Sim rate (Kbps, 20k rounds)",
                     "Rate @ paper 240k rounds (Kbps)", "Error Rate"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ChannelResult &res = results[i].result;
        const double normalized = res.transmissionKbps *
            static_cast<double>(kSimRounds) /
            static_cast<double>(kPaperRounds);
        table.addRow({labels[i], formatKbps(res.transmissionKbps),
                      formatKbps(normalized) + " (paper " +
                          paper_rate[i] + ")",
                      formatPercent(res.errorRate) + " (paper " +
                          paper_err[i] + ")"});
    }
    std::printf("%s\n", table.render().c_str());
    JsonSink("table5_power_channels")
        .writeFile(results, benchJsonFileName("table5"));
    std::printf("Wrote %s\n", benchJsonFileName("table5").c_str());
    std::printf("Expected shape: both channels land in the ~kbps range"
                " at paper\n  round counts (>> 100 bps TCSEC"
                " threshold), far below the timing channels.\n");
    return 0;
}
