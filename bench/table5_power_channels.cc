/**
 * @file
 * Table V: non-MT power-based covert channels (eviction and
 * misalignment variants) on the Gold 6226, observed through the
 * simulated RAPL counter.
 *
 * The paper interleaves p = q = 240,000 rounds per bit; the registry
 * default uses fewer rounds to keep simulation turnaround small and
 * this bench reports both the simulated rate and the rate normalized
 * to the paper's round count (per-bit time scales linearly in rounds).
 * Channels run through the ExperimentRunner; BENCH_table5.json carries
 * the machine-readable rows.
 *
 * Expected shape: ~three orders of magnitude slower than the timing
 * channels, but comfortably above the 100 bps TCSEC threshold.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "run/runner.hh"
#include "run/sinks.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

constexpr int kPaperRounds = 240000;
constexpr int kSimRounds = 20000;

struct RowSpec
{
    const char *label;
    const char *channel;
    const char *paper_rate;
    const char *paper_err;
    std::uint64_t seed;
};

} // namespace

int
main()
{
    bench::banner("Table V — non-MT power channels (Gold 6226, d = 6)");

    const RowSpec rows[] = {
        {"Eviction-Based", "power-eviction", "0.66", "18.87%", 61},
        {"Misalignment-Based", "power-misalignment", "0.63", "9.07%",
         62},
    };

    std::vector<ExperimentSpec> specs;
    for (const RowSpec &row : rows) {
        ExperimentSpec spec;
        spec.label = row.label;
        spec.channel = row.channel;
        spec.cpu = gold6226().name;
        spec.seed = row.seed;
        spec.messageBits = 12;
        spec.preambleBits = 8;
        spec.overrides["powerRounds"] = kSimRounds;
        specs.push_back(spec);
    }

    const auto results = ExperimentRunner().run(specs);

    TextTable table("Power channels via RAPL");
    table.setHeader({"Channel", "Sim rate (Kbps, 20k rounds)",
                     "Rate @ paper 240k rounds (Kbps)", "Error Rate"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ChannelResult &res = results[i].result;
        const double normalized = res.transmissionKbps *
            static_cast<double>(kSimRounds) /
            static_cast<double>(kPaperRounds);
        table.addRow({rows[i].label, formatKbps(res.transmissionKbps),
                      formatKbps(normalized) + " (paper " +
                          rows[i].paper_rate + ")",
                      formatPercent(res.errorRate) + " (paper " +
                          rows[i].paper_err + ")"});
    }
    std::printf("%s\n", table.render().c_str());
    JsonSink("table5_power_channels")
        .writeFile(results, benchJsonFileName("table5"));
    std::printf("Wrote %s\n", benchJsonFileName("table5").c_str());
    std::printf("Expected shape: both channels land in the ~kbps range"
                " at paper\n  round counts (>> 100 bps TCSEC"
                " threshold), far below the timing channels.\n");
    return 0;
}
