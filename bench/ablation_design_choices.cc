/**
 * @file
 * Ablation bench for the model's key design choices (DESIGN.md):
 *
 *  1. DSB->MITE switch penalty size — how the eviction channel's
 *     signal scales with the penalty the paper identifies as the
 *     timing root cause.
 *  2. LSD loop-turnaround bubble — the LSD-vs-DSB separation behind
 *     the misalignment channels and Fig. 2's middle gap.
 *  3. RAPL update interval — the power channel's bandwidth cap.
 *  4. Measurement noise level — channel error-rate sensitivity.
 *  5. OS preemption probability ("env." axis) — how much scheduler
 *     interference the eviction channel survives.
 *  6. Receiver timer quantization ("env." axis) — the classic
 *     coarse-timer mitigation vs the ~300-cycle eviction signal.
 *
 * Each ablation is a SweepSpec over a "model." CPU-knob or "env."
 * environment axis; all six sweeps are expanded up front and executed
 * as ONE parallel ExperimentRunner batch. Emits BENCH_ablation.json.
 */

#include <cstdio>

#include "common/table.hh"
#include "run/report.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    bench::banner("Ablations of model design choices (Gold 6226 base)");

    // 1. Switch penalty sweep (eviction-channel signal).
    SweepSpec penalty;
    penalty.label = "switch-penalty";
    penalty.channels = {"nonmt-fast-eviction"};
    penalty.cpus = {gold6226().name};
    penalty.axes = {{"model.dsbToMiteSwitch", {0, 1, 3, 6, 12}}};
    penalty.seed = 1;

    // 2. LSD loop bubble sweep (misalignment-channel separation).
    SweepSpec bubble;
    bubble.label = "lsd-bubble";
    bubble.channels = {"nonmt-fast-misalignment"};
    bubble.cpus = {gold6226().name};
    bubble.axes = {{"model.lsdLoopBubble", {0, 1, 2, 4, 8}}};
    bubble.seed = 40;

    // 3. RAPL interval sweep (power-channel error).
    SweepSpec rapl;
    rapl.label = "rapl-interval";
    rapl.channels = {"power-eviction"};
    rapl.cpus = {gold6226().name};
    rapl.axes = {{"model.raplUpdateIntervalUs", {20, 50, 200, 1000}}};
    rapl.baseOverrides["powerRounds"] = 8000;
    rapl.messageBits = 10;
    rapl.preambleBits = 6;
    rapl.seed = 60;

    // 4. Noise sweep (stealthy misalignment error).
    SweepSpec noise;
    noise.label = "timing-noise";
    noise.channels = {"nonmt-stealthy-misalignment"};
    noise.cpus = {gold6226().name};
    noise.axes = {{"model.jitterPerKcycle", {0, 2, 5, 10, 20}}};
    noise.seed = 80;

    // 5. OS preemption sweep (environment axis).
    SweepSpec preempt;
    preempt.label = "sched-preempt";
    preempt.channels = {"nonmt-fast-eviction"};
    preempt.cpus = {gold6226().name};
    preempt.axes = {{"env.sched_preempt_prob",
                     {0, 0.01, 0.05, 0.1, 0.2}}};
    preempt.seed = 100;

    // 6. Timer quantization sweep (environment axis).
    SweepSpec timer;
    timer.label = "timer-quantum";
    timer.channels = {"nonmt-fast-eviction"};
    timer.cpus = {gold6226().name};
    timer.axes = {{"env.timer_quantum_cycles",
                   {0, 100, 500, 2000, 8000}}};
    timer.seed = 120;

    std::vector<ExperimentSpec> specs;
    std::vector<std::size_t> offsets;
    for (const SweepSpec *sweep :
         {&penalty, &bubble, &rapl, &noise, &preempt, &timer}) {
        offsets.push_back(specs.size());
        for (ExperimentSpec &spec : expandSweep(*sweep))
            specs.push_back(std::move(spec));
    }
    offsets.push_back(specs.size());

    const auto results = ExperimentRunner().run(specs);
    const auto slice = [&](std::size_t s) {
        return std::vector<ExperimentResult>(
            results.begin() + static_cast<std::ptrdiff_t>(offsets[s]),
            results.begin() +
                static_cast<std::ptrdiff_t>(offsets[s + 1]));
    };

    {
        TextTable table("1. DSB->MITE switch penalty vs eviction-"
                        "channel signal");
        table.setHeader({"Penalty (cycles)", "Obs mean0", "Obs mean1",
                         "Signal (cycles)", "Error"});
        for (const ExperimentResult &res : slice(0)) {
            table.addRow({formatFixed(res.spec.overrides.at(
                              "model.dsbToMiteSwitch"), 0),
                          formatFixed(res.result.meanObs0, 0),
                          formatFixed(res.result.meanObs1, 0),
                          formatFixed(res.result.meanObs1 -
                                      res.result.meanObs0, 0),
                          formatPercent(res.result.errorRate)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    {
        TextTable table("2. LSD loop bubble vs misalignment-channel "
                        "signal");
        table.setHeader({"Bubble (cycles)", "Signal (cycles)",
                         "Error"});
        for (const ExperimentResult &res : slice(1)) {
            table.addRow({formatFixed(res.spec.overrides.at(
                              "model.lsdLoopBubble"), 0),
                          formatFixed(res.result.meanObs1 -
                                      res.result.meanObs0, 0),
                          formatPercent(res.result.errorRate)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    {
        TextTable table("3. RAPL update interval vs power-channel "
                        "error");
        table.setHeader({"Interval (us)", "Rate (Kbps)", "Error"});
        for (const ExperimentResult &res : slice(2)) {
            table.addRow({formatFixed(res.spec.overrides.at(
                              "model.raplUpdateIntervalUs"), 0),
                          formatKbps(res.result.transmissionKbps),
                          formatPercent(res.result.errorRate)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    {
        TextTable table("4. Timing noise (jitter/kcycle) vs channel "
                        "error");
        table.setHeader({"Jitter sigma per kcycle", "Error (stealthy "
                         "misalignment)"});
        for (const ExperimentResult &res : slice(3)) {
            table.addRow({formatFixed(res.spec.overrides.at(
                              "model.jitterPerKcycle"), 1),
                          formatPercent(res.result.errorRate)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    {
        TextTable table("5. OS preemption probability vs channel "
                        "error");
        table.setHeader({"Preempt prob", "Error", "Rate (Kbps)"});
        for (const ExperimentResult &res : slice(4)) {
            table.addRow({formatFixed(res.spec.overrides.at(
                              "env.sched_preempt_prob"), 2),
                          formatPercent(res.result.errorRate),
                          formatKbps(res.result.transmissionKbps)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    {
        TextTable table("6. Receiver timer quantization vs channel "
                        "error");
        table.setHeader({"Quantum (cycles)", "Error"});
        for (const ExperimentResult &res : slice(5)) {
            table.addRow({formatFixed(res.spec.overrides.at(
                              "env.timer_quantum_cycles"), 0),
                          formatPercent(res.result.errorRate)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    JsonSink("ablation_design_choices")
        .writeFile(results, benchJsonFileName("ablation"));
    std::printf("Wrote %s\n", benchJsonFileName("ablation").c_str());
    return 0;
}
