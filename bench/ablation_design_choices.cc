/**
 * @file
 * Ablation bench for the model's key design choices (DESIGN.md):
 *
 *  1. DSB->MITE switch penalty size — how the eviction channel's
 *     signal scales with the penalty the paper identifies as the
 *     timing root cause.
 *  2. LSD loop-turnaround bubble — the LSD-vs-DSB separation behind
 *     the misalignment channels and Fig. 2's middle gap.
 *  3. RAPL update interval — the power channel's bandwidth cap.
 *  4. Measurement noise level — channel error-rate sensitivity.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/nonmt_channels.hh"
#include "core/power_channels.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

ChannelResult
runEviction(const CpuModel &model, std::uint64_t seed)
{
    Core core(model, seed);
    ChannelConfig cfg;
    cfg.d = 6;
    NonMtEvictionChannel channel(core, cfg);
    return channel.transmit(bench::alternatingMessage());
}

} // namespace

int
main()
{
    bench::banner("Ablations of model design choices (Gold 6226 base)");

    // 1. Switch penalty sweep.
    {
        TextTable table("1. DSB->MITE switch penalty vs eviction-"
                        "channel signal");
        table.setHeader({"Penalty (cycles)", "Obs mean0", "Obs mean1",
                         "Signal (cycles)", "Error"});
        for (Cycles penalty : {0, 1, 3, 6, 12}) {
            CpuModel model = gold6226();
            model.frontend.dsbToMiteSwitch = penalty;
            const ChannelResult res = runEviction(model, 1 + penalty);
            table.addRow({std::to_string(penalty),
                          formatFixed(res.meanObs0, 0),
                          formatFixed(res.meanObs1, 0),
                          formatFixed(res.meanObs1 - res.meanObs0, 0),
                          formatPercent(res.errorRate)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    // 2. LSD loop bubble sweep (misalignment-channel separation).
    {
        TextTable table("2. LSD loop bubble vs misalignment-channel "
                        "signal");
        table.setHeader({"Bubble (cycles)", "Signal (cycles)",
                         "Error"});
        for (Cycles bubble : {0, 1, 2, 4, 8}) {
            CpuModel model = gold6226();
            model.frontend.lsdLoopBubble = bubble;
            Core core(model, 40 + bubble);
            ChannelConfig cfg;
            cfg.d = 5;
            cfg.M = 8;
            NonMtMisalignmentChannel channel(core, cfg);
            const ChannelResult res =
                channel.transmit(bench::alternatingMessage());
            table.addRow({std::to_string(bubble),
                          formatFixed(res.meanObs1 - res.meanObs0, 0),
                          formatPercent(res.errorRate)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    // 3. RAPL interval sweep (power-channel error).
    {
        TextTable table("3. RAPL update interval vs power-channel "
                        "error");
        table.setHeader({"Interval (us)", "Rate (Kbps)", "Error"});
        for (double interval : {20.0, 50.0, 200.0, 1000.0}) {
            CpuModel model = gold6226();
            model.rapl.updateIntervalUs = interval;
            Core core(model, 60 + static_cast<unsigned>(interval));
            ChannelConfig cfg;
            cfg.d = 6;
            cfg.stealthy = true;
            PowerChannelConfig power_cfg;
            power_cfg.rounds = 8000;
            PowerEvictionChannel channel(core, cfg, power_cfg);
            Rng rng(5);
            const auto msg =
                makeMessage(MessagePattern::Alternating, 10, rng);
            const ChannelResult res = channel.transmit(msg, 6);
            table.addRow({formatFixed(interval, 0),
                          formatKbps(res.transmissionKbps),
                          formatPercent(res.errorRate)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    // 4. Noise sweep.
    {
        TextTable table("4. Timing noise (jitter/kcycle) vs channel "
                        "error");
        table.setHeader({"Jitter sigma per kcycle", "Error (stealthy "
                         "misalignment)"});
        for (double jitter : {0.0, 2.0, 5.0, 10.0, 20.0}) {
            CpuModel model = gold6226();
            model.noise.jitterPerKcycle = jitter;
            Core core(model, 80 + static_cast<unsigned>(jitter));
            ChannelConfig cfg;
            cfg.d = 5;
            cfg.M = 8;
            cfg.stealthy = true;
            NonMtMisalignmentChannel channel(core, cfg);
            const ChannelResult res =
                channel.transmit(bench::alternatingMessage());
            table.addRow({formatFixed(jitter, 1),
                          formatPercent(res.errorRate)});
        }
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
