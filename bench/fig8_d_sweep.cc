/**
 * @file
 * Fig. 8: MT eviction-based attack swept over the receiver way count
 * d = 1..8 on the three SMT machines: transmission rate, error rate,
 * and effective rate (rate x (1 - error)).
 *
 * The sweep is one SweepSpec — channel x SMT CPUs x a "d" axis —
 * expanded and fanned out by the ExperimentRunner in a single thread
 * pool; BENCH_fig8.json carries the machine-readable sweep and the
 * per-cell summary statistics are printed via the SweepSummarySink.
 *
 * Expected shape: transmission rate rises with d (the sender's encode
 * step shrinks as N+1-d falls); error is worst at small d where the
 * timing signal is tiny.
 */

#include <cstdio>

#include "common/table.hh"
#include "run/report.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    bench::banner("Fig. 8 — MT eviction attack vs receiver ways d");

    SweepSpec sweep;
    sweep.channels = {"mt-eviction"};
    for (const CpuModel *cpu : smtCpuModels())
        sweep.cpus.push_back(cpu->name);
    sweep.axes = {{"d", {1, 2, 3, 4, 5, 6, 7, 8}}};
    sweep.seed = 900;

    const auto results = runSweep(sweep, ExperimentRunner());

    TextTable table("Rate/error vs d (alternating message)");
    table.setHeader({"CPU", "d", "Tr. Rate (Kbps)", "Error Rate",
                     "Effective Rate (Kbps)"});
    for (const ExperimentResult &res : results) {
        table.addRow({res.spec.cpu,
                      std::to_string(static_cast<int>(
                          res.spec.overrides.at("d"))),
                      formatKbps(res.result.transmissionKbps),
                      formatPercent(res.result.errorRate),
                      formatKbps(res.result.transmissionKbps *
                                 (1.0 - res.result.errorRate))});
    }
    std::printf("%s\n", table.render().c_str());
    JsonSink("fig8_d_sweep").writeFile(results,
                                       benchJsonFileName("fig8"));
    std::printf("Wrote %s\n", benchJsonFileName("fig8").c_str());
    std::printf("Expected shape (paper Fig. 8): rate grows with d"
                " (sender encode shrinks);\n  error is largest at"
                " d = 1..2 where the receiver's timing signal is"
                " small.\n");
    return 0;
}
