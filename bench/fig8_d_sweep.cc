/**
 * @file
 * Fig. 8: MT eviction-based attack swept over the receiver way count
 * d = 1..8 on the three SMT machines: transmission rate, error rate,
 * and effective rate (rate x (1 - error)).
 *
 * The sweep is expressed as a batch of ExperimentSpecs with a "d"
 * config override per point and fanned out by the ExperimentRunner;
 * BENCH_fig8.json carries the machine-readable sweep.
 *
 * Expected shape: transmission rate rises with d (the sender's encode
 * step shrinks as N+1-d falls); error is worst at small d where the
 * timing signal is tiny.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "run/runner.hh"
#include "run/sinks.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    bench::banner("Fig. 8 — MT eviction attack vs receiver ways d");

    std::vector<ExperimentSpec> specs;
    for (const CpuModel *cpu : smtCpuModels()) {
        for (int d = 1; d <= 8; ++d) {
            ExperimentSpec spec;
            spec.label = "d=" + std::to_string(d);
            spec.channel = "mt-eviction";
            spec.cpu = cpu->name;
            spec.seed = 900 + static_cast<std::uint64_t>(d);
            spec.messageBits = bench::kMessageBits;
            spec.overrides["d"] = d;
            specs.push_back(spec);
        }
    }

    const auto results = ExperimentRunner().run(specs);

    TextTable table("Rate/error vs d (alternating message)");
    table.setHeader({"CPU", "d", "Tr. Rate (Kbps)", "Error Rate",
                     "Effective Rate (Kbps)"});
    for (const ExperimentResult &res : results) {
        table.addRow({res.spec.cpu,
                      std::to_string(static_cast<int>(
                          res.spec.overrides.at("d"))),
                      formatKbps(res.result.transmissionKbps),
                      formatPercent(res.result.errorRate),
                      formatKbps(res.result.transmissionKbps *
                                 (1.0 - res.result.errorRate))});
    }
    std::printf("%s\n", table.render().c_str());
    JsonSink("fig8_d_sweep").writeFile(results,
                                       benchJsonFileName("fig8"));
    std::printf("Wrote %s\n", benchJsonFileName("fig8").c_str());
    std::printf("Expected shape (paper Fig. 8): rate grows with d"
                " (sender encode shrinks);\n  error is largest at"
                " d = 1..2 where the receiver's timing signal is"
                " small.\n");
    return 0;
}
