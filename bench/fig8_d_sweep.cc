/**
 * @file
 * Fig. 8: MT eviction-based attack swept over the receiver way count
 * d = 1..8 on the three SMT machines: transmission rate, error rate,
 * and effective rate (rate x (1 - error)).
 *
 * Expected shape: transmission rate rises with d (the sender's encode
 * step shrinks as N+1-d falls); error is worst at small d where the
 * timing signal is tiny.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/mt_channels.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    bench::banner("Fig. 8 — MT eviction attack vs receiver ways d");

    TextTable table("Rate/error vs d (alternating message)");
    table.setHeader({"CPU", "d", "Tr. Rate (Kbps)", "Error Rate",
                     "Effective Rate (Kbps)"});

    for (const CpuModel *cpu : smtCpuModels()) {
        for (int d = 1; d <= 8; ++d) {
            Core core(*cpu, 900 + static_cast<std::uint64_t>(d));
            ChannelConfig cfg;
            cfg.d = d;
            MtEvictionChannel channel(core, cfg);
            const ChannelResult res =
                channel.transmit(bench::alternatingMessage());
            table.addRow({cpu->name, std::to_string(d),
                          formatKbps(res.transmissionKbps),
                          formatPercent(res.errorRate),
                          formatKbps(res.transmissionKbps *
                                     (1.0 - res.errorRate))});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape (paper Fig. 8): rate grows with d"
                " (sender encode shrinks);\n  error is largest at"
                " d = 1..2 where the receiver's timing signal is"
                " small.\n");
    return 0;
}
