/**
 * @file
 * Table II: MT eviction-based covert channel at d = 1 for the four
 * message patterns (all 0s / all 1s / alternating / random) on the
 * three SMT-capable machines.
 *
 * Expected shape: uniform messages (all 0s / all 1s) transmit fastest
 * with ~0% error; alternating is slower with moderate error; random
 * is worst (frequent, unstable path changes).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/mt_channels.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    bench::banner("Table II — MT eviction channel, d = 1, message "
                  "patterns");

    // Paper values (rate Kbps, error %) per pattern per CPU.
    const char *paper_rate[4][3] = {
        {"42.66", "49.53", "87.33"},
        {"55.28", "61.17", "102.39"},
        {"50.21", "58.86", "64.96"},
        {"18.28", "21.80", "25.61"}};
    const char *paper_err[4][3] = {
        {"0.00%", "0.00%", "0.00%"},
        {"0.00%", "0.00%", "0.00%"},
        {"2.68%", "10.69%", "12.56%"},
        {"22.57%", "18.53%", "19.83%"}};

    TextTable table("MT Eviction-Based Attack, d = 1");
    table.setHeader({"Pattern", "Metric", "G-6226", "E-2174G",
                     "E-2286G"});

    const auto patterns = allMessagePatterns();
    const auto cpus = smtCpuModels();
    std::vector<std::vector<double>> rates(patterns.size());
    for (std::size_t p = 0; p < patterns.size(); ++p) {
        std::vector<std::string> rate_row = {toString(patterns[p]),
                                             "Tr. Rate (Kbps)"};
        std::vector<std::string> err_row = {"", "Error Rate"};
        for (std::size_t c = 0; c < cpus.size(); ++c) {
            Core core(*cpus[c], 100 + p * 7 + c);
            ChannelConfig cfg;
            cfg.d = 1;
            MtEvictionChannel channel(core, cfg);
            Rng rng(33 + p);
            const auto msg =
                makeMessage(patterns[p], bench::kMessageBits, rng);
            const ChannelResult res = channel.transmit(msg);
            rates[p].push_back(res.transmissionKbps);
            rate_row.push_back(bench::cmpCell(res.transmissionKbps,
                                              paper_rate[p][c]));
            err_row.push_back(formatPercent(res.errorRate) + " (paper " +
                              paper_err[p][c] + ")");
        }
        table.addRow(rate_row);
        table.addRow(err_row);
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Expected shape: all-0s/all-1s best, random worst; "
                "error grows from uniform to random patterns.\n");
    return 0;
}
