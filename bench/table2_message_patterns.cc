/**
 * @file
 * Table II: MT eviction-based covert channel at d = 1 for the four
 * message patterns (all 0s / all 1s / alternating / random) on the
 * three SMT-capable machines.
 *
 * One SweepSpec covers the whole table: the mt-eviction channel x the
 * SMT CPUs x all four message patterns, with d = 1 as a fixed
 * override, executed as a single ExperimentRunner batch and emitted
 * to BENCH_table2.json.
 *
 * Expected shape: uniform messages (all 0s / all 1s) transmit fastest
 * with ~0% error; alternating is slower with moderate error; random
 * is worst (frequent, unstable path changes).
 */

#include <cstdio>

#include "common/table.hh"
#include "run/report.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    bench::banner("Table II — MT eviction channel, d = 1, message "
                  "patterns");

    // Paper values (rate Kbps, error %) per pattern per CPU.
    const char *paper_rate[4][3] = {
        {"42.66", "49.53", "87.33"},
        {"55.28", "61.17", "102.39"},
        {"50.21", "58.86", "64.96"},
        {"18.28", "21.80", "25.61"}};
    const char *paper_err[4][3] = {
        {"0.00%", "0.00%", "0.00%"},
        {"0.00%", "0.00%", "0.00%"},
        {"2.68%", "10.69%", "12.56%"},
        {"22.57%", "18.53%", "19.83%"}};

    const auto cpus = smtCpuModels();
    const auto patterns = allMessagePatterns();

    SweepSpec sweep;
    sweep.channels = {"mt-eviction"};
    for (const CpuModel *cpu : cpus)
        sweep.cpus.push_back(cpu->name);
    sweep.patterns = patterns;
    sweep.baseOverrides["d"] = 1;
    sweep.seed = 100;

    const auto results = runSweep(sweep, ExperimentRunner());

    // Expansion order is cpu-major, pattern-minor; index accordingly.
    const auto result_at = [&](std::size_t c,
                               std::size_t p) -> const ChannelResult & {
        return results[c * patterns.size() + p].result;
    };

    TextTable table("MT Eviction-Based Attack, d = 1");
    table.setHeader({"Pattern", "Metric", "G-6226", "E-2174G",
                     "E-2286G"});
    for (std::size_t p = 0; p < patterns.size(); ++p) {
        std::vector<std::string> rate_row = {toString(patterns[p]),
                                             "Tr. Rate (Kbps)"};
        std::vector<std::string> err_row = {"", "Error Rate"};
        for (std::size_t c = 0; c < cpus.size(); ++c) {
            const ChannelResult &res = result_at(c, p);
            rate_row.push_back(bench::cmpCell(res.transmissionKbps,
                                              paper_rate[p][c]));
            err_row.push_back(formatPercent(res.errorRate) +
                              " (paper " + paper_err[p][c] + ")");
        }
        table.addRow(rate_row);
        table.addRow(err_row);
    }
    std::printf("%s\n", table.render().c_str());
    JsonSink("table2_message_patterns")
        .writeFile(results, benchJsonFileName("table2"));
    std::printf("Wrote %s\n", benchJsonFileName("table2").c_str());

    std::printf("Expected shape: all-0s/all-1s best, random worst; "
                "error grows from uniform to random patterns.\n");
    return 0;
}
