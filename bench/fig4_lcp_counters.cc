/**
 * @file
 * Fig. 4: performance-counter readings for mixed-issue vs
 * ordered-issue LCP add loops (Gold 6226).
 *
 * The paper iterates the 32-instruction loops 800 million times; the
 * simulation runs a smaller, steady-state iteration count and scales
 * the counters linearly (the loops are perfectly periodic after
 * warmup), reporting the same quantities: MITE/DSB micro-ops, LCP
 * stall cycles, DSB-to-MITE switch penalty cycles, and IPC.
 */

#include <cstdio>

#include "common/table.hh"
#include "isa/mix_block.hh"
#include "obs/counters.hh"
#include "run/report.hh"
#include "run/sinks.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"
#include "sim/executor.hh"

using namespace lf;

namespace {

constexpr std::uint64_t kPaperIters = 800'000'000;
constexpr std::uint64_t kSimIters = 20'000;

struct LoopCounters
{
    double uopsMite;
    double uopsDsb;
    double lcpStallCycles;
    double switchPenaltyCycles;
    double ipc;
    /** Unscaled whole-run CounterSet snapshot (warmup included) —
     *  the PMU-style view BENCH_fig4.json exports next to the
     *  paper-scaled figures above. */
    obs::CounterSet counters;
};

LoopCounters
measure(LcpPattern pattern)
{
    Core core(gold6226(), 21);
    const auto loop = buildLcpAddLoop(0x800000, pattern, 16);
    core.setProgram(0, &loop.program);
    runLoopIters(core, 0, loop, 50); // warm up

    const PerfCounters before = core.counters(0);
    const Cycles c0 = core.cycle();
    runLoopIters(core, 0, loop, kSimIters);
    const Cycles elapsed = core.cycle() - c0;
    const PerfCounters delta = core.counters(0).delta(before);

    const double scale = static_cast<double>(kPaperIters) /
        static_cast<double>(kSimIters);
    LoopCounters out;
    out.uopsMite = static_cast<double>(delta.uopsMite) * scale;
    out.uopsDsb = static_cast<double>(delta.uopsDsb) * scale;
    out.lcpStallCycles =
        static_cast<double>(delta.lcpStallCycles) * scale;
    out.switchPenaltyCycles = static_cast<double>(
        delta.dsbToMiteSwitches * core.model().frontend.dsbToMiteSwitch)
        * scale;
    out.ipc = static_cast<double>(delta.retiredInsts) /
        static_cast<double>(elapsed);
    out.counters = obs::collectCoreCounters(core);
    return out;
}

void
emitCounterObject(bench::JsonReport &into,
                  const obs::CounterSet &counters)
{
    for (const obs::CounterInfo &info : obs::counterCatalog()) {
        into.integer(info.name,
                     static_cast<long long>(counters.*(info.field)));
    }
}

} // namespace

int
main()
{
    bench::banner("Fig. 4 — LCP loop performance counters "
                  "(Gold 6226, scaled to 800M iterations)");

    const LoopCounters mixed = measure(LcpPattern::Mixed);
    const LoopCounters ordered = measure(LcpPattern::Ordered);

    TextTable table("Counter readings (sim, with paper values)");
    table.setHeader({"Counter", "Mixed issue", "Ordered issue",
                     "Paper mixed", "Paper ordered"});
    table.addRow({"MITE uops", formatEng(mixed.uopsMite),
                  formatEng(ordered.uopsMite), "8.4e9", "8.7e9"});
    table.addRow({"DSB uops", formatEng(mixed.uopsDsb),
                  formatEng(ordered.uopsDsb), "1.2e9", "1.2e9"});
    table.addRow({"LCP stall cycles", formatEng(mixed.lcpStallCycles),
                  formatEng(ordered.lcpStallCycles), "1.2e10",
                  "1.4e10"});
    table.addRow({"DSB->MITE switch penalty cycles",
                  formatEng(mixed.switchPenaltyCycles),
                  formatEng(ordered.switchPenaltyCycles), "9.0e8",
                  "1.5e6"});
    table.addRow({"IPC", formatFixed(mixed.ipc),
                  formatFixed(ordered.ipc), "0.67", "0.59"});
    std::printf("%s\n", table.render().c_str());

    bench::JsonReport report("fig4");
    report.integer("sim_iters", static_cast<long long>(kSimIters));
    report.integer("paper_iters", static_cast<long long>(kPaperIters));
    const auto emitLoop = [&](const char *key, const LoopCounters &lc,
                              double paperMiteUops, double paperIpc) {
        bench::JsonReport &obj = report.object(key);
        obj.number("uops_mite_scaled", lc.uopsMite);
        obj.number("uops_dsb_scaled", lc.uopsDsb);
        obj.number("lcp_stall_cycles_scaled", lc.lcpStallCycles);
        obj.number("switch_penalty_cycles_scaled",
                   lc.switchPenaltyCycles);
        obj.number("ipc", lc.ipc);
        obj.number("paper_uops_mite", paperMiteUops);
        obj.number("paper_ipc", paperIpc);
        emitCounterObject(obj.object("counters"), lc.counters);
    };
    emitLoop("mixed", mixed, 8.4e9, 0.67);
    emitLoop("ordered", ordered, 8.7e9, 0.59);
    report.writeFile(benchJsonFileName("fig4"));

    std::printf("Expected shape: ordered issue has MORE LCP stall"
                " cycles,\n  mixed issue has FAR MORE switch penalty"
                " cycles, and mixed IPC > ordered IPC.\n");
    return bench::shapeCheck(
        "ordered stalls more, mixed switches more",
        ordered.lcpStallCycles > mixed.lcpStallCycles &&
            mixed.switchPenaltyCycles >
                10.0 * ordered.switchPenaltyCycles &&
            mixed.ipc > ordered.ipc);
}
