/**
 * @file
 * Table III: transmission and error rates of every eviction-based and
 * misalignment-based covert channel (d = 6 for eviction, d = 5 / M = 8
 * for misalignment; alternating message) across the four machines.
 *
 * Expected shape: non-MT >> MT; fast > stealthy; the fastest channel
 * is non-MT fast misalignment with ~0% error; the E-2288G is the
 * fastest machine and the Gold 6226 the slowest; no MT numbers for
 * the E-2288G (hyper-threading disabled).
 */

#include <cstdio>
#include <memory>

#include "bench/bench_util.hh"
#include "core/mt_channels.hh"
#include "core/nonmt_channels.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

ChannelConfig
evictionConfig(bool stealthy)
{
    ChannelConfig cfg;
    cfg.d = 6;
    cfg.stealthy = stealthy;
    return cfg;
}

ChannelConfig
misalignConfig(bool stealthy)
{
    ChannelConfig cfg;
    cfg.d = 5;
    cfg.M = 8;
    cfg.stealthy = stealthy;
    cfg.mtSenderIters = 2;
    return cfg;
}

template <typename ChannelT>
ChannelResult
runOn(const CpuModel &cpu, const ChannelConfig &cfg, std::uint64_t seed)
{
    Core core(cpu, seed);
    ChannelT channel(core, cfg);
    return channel.transmit(bench::alternatingMessage());
}

struct RowSpec
{
    const char *name;
    bool mt;
    bool misalign;
    bool stealthy;
    const char *paper_rate[4];
    const char *paper_err[4];
};

} // namespace

int
main()
{
    bench::banner("Table III — eviction and misalignment covert "
                  "channels (alternating message)");

    const RowSpec rows[] = {
        {"Non-MT Stealthy Eviction", false, false, true,
         {"419.67", "851.81", "1182.55", "1356.43"},
         {"6.48%", "3.43%", "3.45%", "0.36%"}},
        {"Non-MT Stealthy Misalignment", false, true, true,
         {"713.01", "466.02", "723.15", "1094.39"},
         {"22.56%", "11.34%", "16.56%", "10.08%"}},
        {"Non-MT Fast Eviction", false, false, false,
         {"501.06", "977.68", "1205.90", "1399.96"},
         {"6.09%", "0.00%", "0.00%", "0.00%"}},
        {"Non-MT Fast Misalignment", false, true, false,
         {"500.90", "959.45", "1228.35", "1410.84"},
         {"0.16%", "0.00%", "0.16%", "0.00%"}},
        {"MT Eviction", true, false, false,
         {"115.97", "113.02", "161.63", "-"},
         {"15.52%", "14.44%", "13.93%", "-"}},
        {"MT Misalignment", true, true, false,
         {"129.36", "152.44", "200.37", "-"},
         {"7.85%", "2.77%", "4.62%", "-"}},
    };

    const auto cpus = allCpuModels();
    TextTable table("Covert channels (sim value, paper value)");
    table.setHeader({"Channel", "Metric", "G6226", "E-2174G",
                     "E-2286G", "E-2288G"});

    std::uint64_t seed = 500;
    for (const RowSpec &row : rows) {
        std::vector<std::string> rate_row = {row.name,
                                             "Tr. Rate (Kbps)"};
        std::vector<std::string> err_row = {"", "Error Rate"};
        for (std::size_t c = 0; c < cpus.size(); ++c) {
            const CpuModel &cpu = *cpus[c];
            ++seed;
            if (row.mt && !cpu.smtEnabled) {
                rate_row.push_back("- (paper -)");
                err_row.push_back("- (paper -)");
                continue;
            }
            const ChannelConfig cfg = row.misalign
                ? misalignConfig(row.stealthy)
                : evictionConfig(row.stealthy);
            ChannelResult res;
            if (row.mt && row.misalign) {
                res = runOn<MtMisalignmentChannel>(cpu, cfg, seed);
            } else if (row.mt) {
                res = runOn<MtEvictionChannel>(cpu, cfg, seed);
            } else if (row.misalign) {
                res = runOn<NonMtMisalignmentChannel>(cpu, cfg, seed);
            } else {
                res = runOn<NonMtEvictionChannel>(cpu, cfg, seed);
            }
            rate_row.push_back(bench::cmpCell(res.transmissionKbps,
                                              row.paper_rate[c]));
            err_row.push_back(formatPercent(res.errorRate) + " (paper " +
                              row.paper_err[c] + ")");
        }
        table.addRow(rate_row);
        table.addRow(err_row);
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Expected shape: non-MT rates are several times the MT"
                " rates;\n  fast variants beat stealthy ones; the"
                " misalignment-fast channel\n  reaches the highest"
                " rates at ~0%% error; E-2288G is fastest.\n");
    return 0;
}
