/**
 * @file
 * Table III: transmission and error rates of every eviction-based and
 * misalignment-based covert channel (d = 6 for eviction, d = 5 / M = 8
 * for misalignment; alternating message) across the four machines.
 *
 * Each paper row is one SweepSpec (fixed label, one channel, all four
 * CPUs); the rows are expanded together and executed as one
 * ExperimentRunner batch. MT cells on the SMT-disabled E-2288G come
 * back as skipped rows (the paper prints "-" there too). Besides the
 * sim-vs-paper text table this emits BENCH_table3.json.
 *
 * Expected shape: non-MT >> MT; fast > stealthy; the fastest channel
 * is non-MT fast misalignment with ~0% error; the E-2288G is the
 * fastest machine and the Gold 6226 the slowest.
 */

#include <cstdio>

#include "run/report.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

using namespace lf;

namespace {

struct RowSpec
{
    const char *label;
    const char *channel;
    const char *paper_rate[4];
    const char *paper_err[4];
};

} // namespace

int
main()
{
    bench::banner("Table III — eviction and misalignment covert "
                  "channels (alternating message)");

    const RowSpec rows[] = {
        {"Non-MT Stealthy Eviction", "nonmt-stealthy-eviction",
         {"419.67", "851.81", "1182.55", "1356.43"},
         {"6.48%", "3.43%", "3.45%", "0.36%"}},
        {"Non-MT Stealthy Misalignment", "nonmt-stealthy-misalignment",
         {"713.01", "466.02", "723.15", "1094.39"},
         {"22.56%", "11.34%", "16.56%", "10.08%"}},
        {"Non-MT Fast Eviction", "nonmt-fast-eviction",
         {"501.06", "977.68", "1205.90", "1399.96"},
         {"6.09%", "0.00%", "0.00%", "0.00%"}},
        {"Non-MT Fast Misalignment", "nonmt-fast-misalignment",
         {"500.90", "959.45", "1228.35", "1410.84"},
         {"0.16%", "0.00%", "0.16%", "0.00%"}},
        {"MT Eviction", "mt-eviction",
         {"115.97", "113.02", "161.63", "-"},
         {"15.52%", "14.44%", "13.93%", "-"}},
        {"MT Misalignment", "mt-misalignment",
         {"129.36", "152.44", "200.37", "-"},
         {"7.85%", "2.77%", "4.62%", "-"}},
    };

    const auto cpus = allCpuModels();
    TextTableSink text("Covert channels (sim value, paper value)");
    std::vector<ExperimentSpec> specs;
    std::uint64_t seed = 500;
    for (const RowSpec &row : rows) {
        SweepSpec sweep;
        sweep.label = row.label;
        sweep.channels = {row.channel};
        for (std::size_t c = 0; c < cpus.size(); ++c) {
            sweep.cpus.push_back(cpus[c]->name);
            text.annotatePaper(row.label, cpus[c]->name,
                               {row.paper_rate[c], row.paper_err[c]});
        }
        sweep.seed = ++seed;
        for (ExperimentSpec &spec : expandSweep(sweep))
            specs.push_back(std::move(spec));
    }

    const auto results = ExperimentRunner().run(specs);
    std::printf("%s\n", text.render(results).c_str());
    JsonSink("table3_covert_channels")
        .writeFile(results, benchJsonFileName("table3"));
    std::printf("Wrote %s\n", benchJsonFileName("table3").c_str());

    std::printf("Expected shape: non-MT rates are several times the MT"
                " rates;\n  fast variants beat stealthy ones; the"
                " misalignment-fast channel\n  reaches the highest"
                " rates at ~0%% error; E-2288G is fastest.\n");
    return 0;
}
