/**
 * @file
 * Sec. XI-B: fingerprinting of mobile-style application workloads
 * (the paper's Geekbench5 study; here ten synthetic mobile victims)
 * via the attacker's IPC waveform on the Gold 6226.
 *
 * Expected shape: average intra-distance far below inter-distance
 * (paper: 0.232 vs 4.793 over 10 benchmarks), enabling reliable
 * identification of the running application type.
 */

#include <cstdio>

#include "common/table.hh"
#include "fingerprint/side_channel.hh"
#include "fingerprint/workloads.hh"
#include "run/report.hh"
#include "run/sinks.hh"
#include "sim/cpu_model.hh"

using namespace lf;

int
main()
{
    bench::banner("Sec. XI-B — mobile application fingerprinting "
                  "(Gold 6226)");

    TraceConfig config;
    const FingerprintStudy study = runFingerprintStudy(
        gold6226(), mobileWorkloads(), config, 3);

    TextTable table("Per-workload distances");
    table.setHeader({"Workload", "Intra (same app)",
                     "Min inter (other apps)"});
    for (std::size_t a = 0; a < study.names.size(); ++a) {
        double min_inter = -1.0;
        for (std::size_t b = 0; b < study.names.size(); ++b) {
            if (a == b)
                continue;
            if (min_inter < 0.0 ||
                study.distanceMatrix[a][b] < min_inter) {
                min_inter = study.distanceMatrix[a][b];
            }
        }
        table.addRow({study.names[a],
                      formatFixed(study.distanceMatrix[a][a], 3),
                      formatFixed(min_inter, 3)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Mean intra-distance: %.3f (paper: 0.232)\n",
                study.meanIntraDistance);
    std::printf("Mean inter-distance: %.3f (paper: 4.793)\n",
                study.meanInterDistance);
    std::printf("Classification accuracy: %.1f%%\n",
                study.classificationAccuracy * 100.0);

    bench::JsonReport report("sec11b_app_fingerprint");
    report.stringArray("workloads", study.names);
    report.numberMatrix("distance_matrix", study.distanceMatrix);
    report.number("mean_intra_distance", study.meanIntraDistance);
    report.number("mean_inter_distance", study.meanInterDistance);
    report.number("classification_accuracy",
                  study.classificationAccuracy);
    report.writeFile(benchJsonFileName("sec11b"));
    std::printf("Wrote %s\n", benchJsonFileName("sec11b").c_str());

    return bench::shapeCheck(
        "inter >> intra, accurate classification",
        study.meanInterDistance > 2.0 * study.meanIntraDistance &&
            study.classificationAccuracy > 0.9);
}
