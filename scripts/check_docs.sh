#!/usr/bin/env bash
# Documentation checks (the "doc CI" tier):
#
#  1. every relative markdown link in README.md and docs/*.md resolves
#     to an existing file;
#  2. every lf_run / lf_campaign invocation in a fenced snippet only
#     uses flags the real CLI advertises in --help (a --help-driven
#     smoke: docs can't drift from the binaries);
#  3. every override key (env.* / model.*) referenced in the docs is a
#     key `lf_run --list` advertises, and every registry channel name
#     appears in docs/CHANNELS.md (catalog completeness);
#  4. when CHECK_DOCS_BASE is set (CI sets it to the PR base ref),
#     CHANGES.md must have gained content relative to that ref.
#
# Usage: [LF_RUN=path/to/lf_run] [LF_CAMPAIGN=path/to/lf_campaign] \
#            [CHECK_DOCS_BASE=origin/main] scripts/check_docs.sh
set -euo pipefail

cd "$(dirname "$0")/.."

LF_RUN="${LF_RUN:-build/lf_run}"
LF_CAMPAIGN="${LF_CAMPAIGN:-build/lf_campaign}"
DOCS=(README.md docs/*.md)
fail=0

note() { echo "check_docs: $*" >&2; }

# ---- 1. Relative markdown links resolve. ----
links_tmp="$(mktemp)"
trap 'rm -f "$links_tmp"' EXIT
for doc in "${DOCS[@]}"; do
    { grep -oE '\]\([^)]+\)' "$doc" || true; } |
        sed -e 's/^](//' -e 's/)$//' |
        while IFS= read -r target; do
            printf '%s\t%s\n' "$doc" "$target"
        done
done > "$links_tmp"
while IFS=$'\t' read -r doc target; do
    case "$target" in
        http://*|https://*|mailto:*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue # pure in-page anchor
    dir="$(dirname "$doc")"
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
        note "broken link in $doc: $target"
        fail=1
    fi
done < "$links_tmp"

# ---- 2/3 need the real CLI. ----
if [ ! -x "$LF_RUN" ]; then
    note "lf_run not found at '$LF_RUN'; build it first" \
         "(cmake --build build --target lf_run) or set LF_RUN"
    exit 1
fi
help_text="$("$LF_RUN" --help)"
list_text="$("$LF_RUN" --list)"

# ---- 2. Fenced lf_run snippets only use advertised flags. ----
# Collect lf_run command lines (with backslash continuations) from
# fenced code blocks, then compare each --flag against the exact flag
# set --help advertises (whole-token: "--thread" must not ride on
# "--threads").
help_flags=$(printf '%s\n' "$help_text" |
    grep -oE -- '--[a-z][a-z-]*' | sort -u)
snippet_flags=$(
    awk '
        FNR == 1 { fence = 0; collect = 0 }
        /^```/ { fence = !fence; next }
        fence && (collect || /lf_run/) {
            print
            collect = /\\[[:space:]]*$/
        }
    ' "${DOCS[@]}" |
    grep -oE -- '--[a-z][a-z-]*' | sort -u
)
for flag in $snippet_flags; do
    if ! printf '%s\n' "$help_flags" | grep -qx -- "$flag"; then
        note "documented flag $flag is not in lf_run --help"
        fail=1
    fi
done

# ---- 2b. Same check for lf_campaign snippets. ----
if [ ! -x "$LF_CAMPAIGN" ]; then
    note "lf_campaign not found at '$LF_CAMPAIGN'; build it first" \
         "(cmake --build build --target lf_campaign) or set LF_CAMPAIGN"
    exit 1
fi
campaign_help_flags=$("$LF_CAMPAIGN" --help |
    grep -oE -- '--[a-z][a-z-]*' | sort -u)
campaign_snippet_flags=$(
    awk '
        FNR == 1 { fence = 0; collect = 0 }
        /^```/ { fence = !fence; next }
        fence && (collect || /lf_campaign/) {
            print
            collect = /\\[[:space:]]*$/
        }
    ' "${DOCS[@]}" |
    grep -oE -- '--[a-z][a-z-]*' | sort -u
)
for flag in $campaign_snippet_flags; do
    if ! printf '%s\n' "$campaign_help_flags" | grep -qx -- "$flag"; then
        note "documented flag $flag is not in lf_campaign --help"
        fail=1
    fi
done

# ---- 3a. env.* / model.* / defense.* keys in docs exist in the CLI. ----
# (file names like src/defense/defense.hh also match the key shape;
# drop source-suffix hits before comparing against the CLI.)
doc_keys=$(
    grep -ohE '(env|model|defense)\.[A-Za-z_]+\*?' "${DOCS[@]}" |
    grep -v '\*$' | grep -vE '\.(hh|cc|md)$' | sort -u
)
for key in $doc_keys; do
    if ! printf '%s\n' "$list_text" | grep -qw -- "$key"; then
        note "documented override key $key is not in lf_run --list"
        fail=1
    fi
done

# ---- 3b. Every registry channel is cataloged. ----
channels=$(
    printf '%s\n' "$list_text" |
    awk -F'|' 'NF > 4 { gsub(/ /, "", $2); print $2 }' |
    grep -vE '^(Name|)$'
)
for channel in $channels; do
    if ! grep -q -- "\`$channel\`" docs/CHANNELS.md; then
        note "channel $channel missing from docs/CHANNELS.md"
        fail=1
    fi
done

# ---- 3c. Every counter is documented in docs/OBSERVABILITY.md. ----
# The counter catalog (lf_run --list-counters) is the source of
# truth; each exported name must appear backticked in the docs.
counter_names=$(
    "$LF_RUN" --list-counters |
    awk -F'|' 'NF > 3 { gsub(/ /, "", $2); print $2 }' |
    grep -vE '^(Name|)$'
)
for counter in $counter_names; do
    if ! grep -q -- "\`$counter\`" docs/OBSERVABILITY.md; then
        note "counter $counter missing from docs/OBSERVABILITY.md"
        fail=1
    fi
done

# ---- 4. CHANGES.md gained a line (PR mode only). ----
# Diff against the merge-base, not the base tip: once another PR
# merges its own CHANGES.md line, a tip diff would be non-empty for
# every branch and the gate would never fire again.
if [ -n "${CHECK_DOCS_BASE:-}" ]; then
    merge_base="$(git merge-base "$CHECK_DOCS_BASE" HEAD)"
    if git diff --quiet "$merge_base" -- CHANGES.md; then
        note "CHANGES.md not updated relative to $CHECK_DOCS_BASE" \
             "(merge-base $merge_base)"
        fail=1
    fi
fi

if [ "$fail" -ne 0 ]; then
    note "FAILED"
    exit 1
fi
note "all documentation checks passed"
