#!/usr/bin/env python3
"""Diff two BENCH_runner_throughput.json files gate by gate.

Usage:
    perf_report.py BASELINE.json CURRENT.json [--strict]

Prints every shared numeric metric with its delta, then re-evaluates
the bench's shape gates on both files so a perf regression shows up as
"gate X: PASS -> FAIL" rather than a bare number. Metrics that are
JSON null (e.g. t8_over_t1 on a host with fewer than 8 hardware
threads) are reported as "skipped (host too small)", never compared.

Exit status: 0 unless --strict is given and the CURRENT file fails a
gate that is measurable there (smoke reports never fail gates — their
timings are sanitizer-skewed, same as the bench binary's own policy).
"""

import argparse
import json
import sys


# The bench's shape gates, re-stated declaratively: name, predicate
# over the report dict, and whether the metric exists in the file.
# Keep in lockstep with emitRunnerThroughput() in
# bench/microbench_simulator.cc.
def _gates(report):
    def num(key):
        value = report.get(key)
        return value if isinstance(value, (int, float)) else None

    gates = []

    def gate(name, keys, predicate):
        values = [num(k) for k in keys]
        if any(v is None for v in values):
            gates.append((name, None))  # not measurable in this file
        else:
            gates.append((name, bool(predicate(*values))))

    gate("program/chunk cache >= 1.2x (t1)",
         ["tuned_over_legacy_t1"], lambda x: x >= 1.2)
    gate("t1 throughput >= 3x PR-5 baseline",
         ["reused_t1_trials_per_sec", "pr5_baseline_trials_per_sec"],
         lambda tps, base: tps >= 3.0 * base)
    gate("counters-off within 2% of PR-7 gate",
         ["counters_off_t1_trials_per_sec",
          "counters_off_overhead_gate"],
         lambda tps, floor: tps >= floor)
    gate("snapshot cache >= 1.3x (t1, 32-bit preamble)",
         ["snapshot_speedup_t1"], lambda x: x >= 1.3)
    gate("snapshot restore cheaper than replay",
         ["snapshot_restore_ns", "snapshot_replay_ns"],
         lambda restore, replay: restore < replay)
    gate("t8 >= 3x t1 thread scaling",
         ["t8_over_t1"], lambda x: x >= 3.0)
    return gates


def _fmt(value):
    if value is None:
        return "null"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 if CURRENT fails a measurable"
                             " gate (non-smoke files only)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)
    for name, report in (("baseline", base), ("current", cur)):
        if report.get("benchmark") != "runner_throughput":
            sys.exit(f"{name} file is not a runner_throughput report")

    print(f"{'metric':42s} {'baseline':>14s} {'current':>14s}"
          f" {'delta':>9s}")
    keys = [k for k in cur
            if isinstance(cur.get(k), (int, float))
            and not isinstance(cur.get(k), bool)]
    keys += [k for k in cur if cur.get(k) is None]
    for key in keys:
        b, c = base.get(key), cur.get(key)
        if c is None or b is None:
            note = "skipped (host too small)" if key == "t8_over_t1" \
                else "not comparable"
            print(f"{key:42s} {_fmt(b):>14s} {_fmt(c):>14s}"
                  f"   {note}")
            continue
        if isinstance(b, bool) or not isinstance(b, (int, float)):
            continue
        delta = f"{(c - b) / b * 100.0:+8.1f}%" if b else "      n/a"
        print(f"{key:42s} {_fmt(b):>14s} {_fmt(c):>14s} {delta:>9s}")

    print()
    failures = 0
    for (name, base_ok), (_, cur_ok) in zip(_gates(base), _gates(cur)):
        def verdict(ok):
            if ok is None:
                return "skipped (host too small)"
            return "PASS" if ok else "FAIL"
        arrow = f"{verdict(base_ok)} -> {verdict(cur_ok)}"
        print(f"gate: {name:44s} {arrow}")
        if cur_ok is False:
            failures += 1

    smoke = bool(cur.get("smoke"))
    if args.strict and failures and not smoke:
        sys.exit(f"{failures} gate(s) failing in {args.current}")
    if failures and smoke:
        print("(gate failures ignored: smoke report)")


if __name__ == "__main__":
    main()
