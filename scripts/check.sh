#!/usr/bin/env bash
# Tier-1 verification: strict build + full test suite, the
# documentation checks, then an ASan + UBSan pass over the
# registry/runner/noise subsystem. Mirrors the CI workflow so the
# same gate runs locally.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== strict build (-Wall -Wextra -Werror) =="
cmake -B build-check -S . -DLF_WERROR=ON
cmake --build build-check -j "${JOBS}"

echo "== ctest =="
ctest --test-dir build-check --output-on-failure -j "${JOBS}"

echo "== ASan/UBSan: registry + run-subsystem tests =="
cmake -B build-asan -S . -DLF_ASAN=ON
cmake --build build-asan -j "${JOBS}" \
    --target lf_core_test_channel_registry lf_run_test_runner \
             lf_run_test_streaming lf_run_test_hooks \
             lf_obs_test_obs lf_run_test_sweep lf_run_test_cli \
             lf_noise_test_environment lf_defense_test_defense \
             lf_campaign_test_campaign lf_campaign_test_campaign_files \
             lf_sim_test_snapshot \
             lf_run lf_campaign table_defenses campaign_overhead
./build-asan/lf_core_test_channel_registry
./build-asan/lf_run_test_runner
./build-asan/lf_run_test_streaming
./build-asan/lf_sim_test_snapshot
./build-asan/lf_run_test_hooks
./build-asan/lf_obs_test_obs
./build-asan/lf_run_test_sweep
./build-asan/lf_run_test_cli
./build-asan/lf_noise_test_environment
./build-asan/lf_defense_test_defense
./build-asan/lf_campaign_test_campaign
./build-asan/lf_campaign_test_campaign_files

echo "== TSan: runner/streaming/campaign tests =="
# The streaming runner is lock-free on its hot path (per-slot seq
# atomics + Dekker-style park flags); ThreadSanitizer is the gate
# that the protocol stays data-race-free.
cmake -B build-tsan -S . -DLF_TSAN=ON
cmake --build build-tsan -j "${JOBS}" \
    --target lf_run_test_runner lf_run_test_streaming \
             lf_run_test_hooks lf_sim_test_snapshot \
             lf_campaign_test_campaign lf_campaign_test_campaign_files \
             lf_run
./build-tsan/lf_run_test_runner
./build-tsan/lf_run_test_streaming
# The warm-snapshot cache is process-wide mutable state shared by all
# runner workers; TSan gates its mutex + atomic-counter discipline.
./build-tsan/lf_sim_test_snapshot
./build-tsan/lf_run_test_hooks
./build-tsan/lf_campaign_test_campaign
./build-tsan/lf_campaign_test_campaign_files
./build-tsan/lf_run --channel mt-eviction --cpu "Gold 6226" \
    --sweep d=4:6:1 --trials 2 --threads 4 \
    --json build-tsan/sweep-tsan.json --quiet

echo "== documentation checks =="
LF_RUN=build-check/lf_run LF_CAMPAIGN=build-check/lf_campaign \
    ./scripts/check_docs.sh

echo "== observability smoke (--trace / --metrics / --counters) =="
obs_dir="build-check/obs-smoke"
rm -rf "${obs_dir}" && mkdir -p "${obs_dir}"
./build-check/lf_run --channel nonmt-fast-eviction --cpu "Gold 6226" \
    --trials 6 --bits 4 --threads 4 --seed 13 \
    --trace "${obs_dir}/trace.json" --metrics "${obs_dir}/metrics.json" \
    --counters "${obs_dir}/counters.json" --quiet
python3 - "${obs_dir}" <<'EOF'
import json, sys
d = sys.argv[1]
trace = json.load(open(f"{d}/trace.json"))
events = trace["traceEvents"]
assert events and trace["displayTimeUnit"] == "ms"
assert all({"name", "ph", "ts", "pid", "tid"} <= e.keys() for e in events)
assert "trial" in {e["name"] for e in events}
metrics = json.load(open(f"{d}/metrics.json"))
assert metrics["schema"] == "lf_run_metrics_v1"
for key in ("trials", "ok_trials", "workers", "seconds",
            "trials_per_sec", "worker_parks",
            "prepared_cache_hit_rate", "reorder_window",
            "window_occupancy_histogram"):
    assert key in metrics, key
assert metrics["trials"] == 6
assert sum(metrics["window_occupancy_histogram"]) == 6
counters = json.load(open(f"{d}/counters.json"))
assert counters["cycles"] > 0 and counters["uops_mite"] > 0
print("observability smoke ok: %d trace events, %d counters"
      % (len(events), len(counters)))
EOF

echo "== ASan/UBSan: sweep smoke test =="
./build-asan/lf_run --channel mt-eviction --cpu "Gold 6226" \
    --sweep d=4:6:1 --trials 2 --threads 4 \
    --json build-asan/sweep-smoke.json --quiet
./build-asan/lf_run --channel mt-eviction --cpu "Gold 6226" \
    --sweep d=4:6:1 --trials 2 --threads 1 \
    --json build-asan/sweep-smoke-t1.json --quiet
cmp build-asan/sweep-smoke.json build-asan/sweep-smoke-t1.json

echo "== ASan/UBSan: defense-grid smoke test =="
(cd build-asan && ./table_defenses --smoke > /dev/null)

echo "== ASan/UBSan: campaign smoke (plan / kill / resume / merge) =="
# A 4-shard campaign over a small grid: shard 0 is killed after one
# row (--max-new 1), every shard is then run to completion (shard 0
# resumes), and the merged summary must be byte-identical to the
# unsharded lf_run --summary of the same grid.
camp_dir="build-asan/campaign-smoke"
rm -rf "${camp_dir}"
./build-asan/lf_run --channel nonmt-fast-eviction --channel slow-switch \
    --cpu "Gold 6226" --sweep rounds=5:10:5 --trials 2 --bits 12 \
    --seed 11 --summary "${camp_dir}.golden" --quiet
./build-asan/lf_campaign plan --dir "${camp_dir}" --shards 4 \
    --channel nonmt-fast-eviction --channel slow-switch \
    --cpu "Gold 6226" --sweep rounds=5:10:5 --trials 2 --bits 12 \
    --seed 11 --quiet
./build-asan/lf_campaign run-shard --dir "${camp_dir}" --shard 0 \
    --max-new 1 --quiet
for shard in 0 1 2 3; do
    ./build-asan/lf_campaign run-shard --dir "${camp_dir}" \
        --shard "${shard}" --cache "${camp_dir}-cache" --quiet
done
./build-asan/lf_campaign status --dir "${camp_dir}"
./build-asan/lf_campaign merge --dir "${camp_dir}" --quiet
cmp "${camp_dir}.golden" "${camp_dir}/merged_summary.txt"

echo "== ASan/UBSan: campaign-overhead smoke test =="
(cd build-asan && ./campaign_overhead --smoke > /dev/null)

echo "== ASan/UBSan: runner-throughput smoke test =="
# The target only exists when google-benchmark is installed (CMake
# skips it otherwise); probe the configured target list so a real
# compile error still fails the script. Capture the listing before
# grepping: `... | grep -q` exits at the first match, the generator
# dies on SIGPIPE, and under pipefail the probe was reporting "not
# installed" on hosts where the bench target exists.
asan_targets="$(cmake --build build-asan --target help 2>/dev/null \
    || true)"
if grep -q "microbench_simulator" <<< "${asan_targets}"; then
    cmake --build build-asan -j "${JOBS}" --target microbench_simulator
    (cd build-asan && ./microbench_simulator --smoke > /dev/null)
    # Even in smoke mode the report must carry the counters-overhead
    # and snapshot gate fields (timing gates only run un-smoked), the
    # best-of-N raw samples arrays, and a t8_over_t1 slot that is a
    # number or an explicit null — report the skip loudly either way.
    python3 - build-asan/BENCH_runner_throughput.json <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
for key in ("counters_off_t1_trials_per_sec",
            "counters_on_t1_trials_per_sec",
            "pr7_gate_trials_per_sec", "counters_off_overhead_gate",
            "snapshot_speedup_t1", "snapshot_restore_ns",
            "snapshot_replay_ns", "snapshot_preamble_bits",
            "hw_threads", "repeat"):
    assert key in report, key
assert "t8_over_t1" in report, "t8_over_t1 slot missing"
samples = report["reused_t1_samples"]
assert isinstance(samples, list) and len(samples) == report["repeat"]
t8 = report["t8_over_t1"]
if t8 is None:
    print("t8_over_t1 gate: skipped (host too small: %d hardware"
          " threads < 8)" % report["hw_threads"])
else:
    print("t8_over_t1 measured: %.2f" % t8)
EOF
    # perf_report.py smoke: a report diffed against itself must print
    # zero deltas and exit 0 (gate failures are ignored on smoke runs).
    python3 scripts/perf_report.py \
        build-asan/BENCH_runner_throughput.json \
        build-asan/BENCH_runner_throughput.json --strict
else
    echo "libbenchmark not found: skipping"
fi

echo "== all checks passed =="
