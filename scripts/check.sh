#!/usr/bin/env bash
# Tier-1 verification: strict build + full test suite, then an ASan +
# UBSan pass over the registry/runner subsystem. Mirrors the CI
# workflow so the same gate runs locally.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== strict build (-Wall -Wextra -Werror) =="
cmake -B build-check -S . -DLF_WERROR=ON
cmake --build build-check -j "${JOBS}"

echo "== ctest =="
ctest --test-dir build-check --output-on-failure -j "${JOBS}"

echo "== ASan/UBSan: registry + runner tests =="
cmake -B build-asan -S . -DLF_ASAN=ON
cmake --build build-asan -j "${JOBS}" \
    --target lf_core_test_channel_registry lf_run_test_runner
./build-asan/lf_core_test_channel_registry
./build-asan/lf_run_test_runner

echo "== all checks passed =="
