/** @file Tests for LSD loop detection and the misalignment rule. */

#include <gtest/gtest.h>

#include "frontend/loop_monitor.hh"

namespace lf {
namespace {

FrontendParams
params()
{
    return FrontendParams{};
}

LoopMonitor::ChunkRecord
rec(Addr key, int uops = 5, bool from_dsb = true,
    bool block_start = true)
{
    return {key, uops, from_dsb, block_start};
}

/** Drive one loop iteration over the given block keys. */
bool
iterate(LoopMonitor &monitor, const std::vector<Addr> &keys)
{
    for (Addr key : keys)
        monitor.recordChunk(rec(key));
    // Closing backward branch from the last block back to the first.
    return monitor.recordTakenBranch(keys.back() + 20, keys.front());
}

TEST(LoopMonitor, EngagesAfterWarmupIterations)
{
    FrontendParams p = params();
    LoopMonitor monitor(p);
    const std::vector<Addr> keys = {0x1000, 0x1400, 0x1800};
    // Establish the head (first backward branch).
    monitor.recordTakenBranch(0x1814, 0x1000);
    EXPECT_FALSE(iterate(monitor, keys)); // stable = 1
    EXPECT_TRUE(iterate(monitor, keys));  // stable = 2 -> engage
    EXPECT_EQ(monitor.bodyKeys(), keys);
    EXPECT_EQ(monitor.bodyUops(), 15);
}

TEST(LoopMonitor, MiteDeliveredBodyDoesNotQualify)
{
    FrontendParams p = params();
    LoopMonitor monitor(p);
    monitor.recordTakenBranch(0x1014, 0x1000);
    for (int it = 0; it < 5; ++it) {
        monitor.recordChunk(rec(0x1000, 5, /*from_dsb=*/false));
        EXPECT_FALSE(monitor.recordTakenBranch(0x1014, 0x1000));
    }
}

TEST(LoopMonitor, OversizedLoopDoesNotQualify)
{
    FrontendParams p = params();
    LoopMonitor monitor(p);
    std::vector<Addr> keys;
    for (int i = 0; i < 13; ++i) // 13 x 5 = 65 > 64
        keys.push_back(0x1000 + static_cast<Addr>(i) * 1024);
    monitor.recordTakenBranch(keys.back() + 20, keys.front());
    EXPECT_FALSE(iterate(monitor, keys));
    EXPECT_FALSE(iterate(monitor, keys));
    EXPECT_FALSE(iterate(monitor, keys));
}

TEST(LoopMonitor, ForwardBranchKeepsAccumulating)
{
    FrontendParams p = params();
    LoopMonitor monitor(p);
    monitor.recordTakenBranch(0x1814, 0x1000); // head = 0x1000
    monitor.recordChunk(rec(0x1000));
    // Forward jump inside the body must not reset the candidate.
    EXPECT_FALSE(monitor.recordTakenBranch(0x1014, 0x1400));
    EXPECT_EQ(monitor.head(), 0x1000u);
}

TEST(LoopMonitor, NewBackwardTargetResets)
{
    FrontendParams p = params();
    LoopMonitor monitor(p);
    monitor.recordTakenBranch(0x1814, 0x1000);
    monitor.recordChunk(rec(0x1000));
    monitor.recordTakenBranch(0x2814, 0x2000); // different backward
    EXPECT_EQ(monitor.head(), 0x2000u);
    EXPECT_EQ(monitor.stableIters(), 0);
}

TEST(LoopMonitor, ResetClearsBody)
{
    FrontendParams p = params();
    LoopMonitor monitor(p);
    const std::vector<Addr> keys = {0x1000, 0x1400};
    monitor.recordTakenBranch(0x1414, 0x1000);
    iterate(monitor, keys);
    iterate(monitor, keys);
    EXPECT_TRUE(monitor.bodyContains(0x1000));
    monitor.reset();
    EXPECT_FALSE(monitor.bodyContains(0x1000));
    EXPECT_EQ(monitor.head(), 0u);
}

// ---- Sec. IV-G alignment rule: every case the paper lists. ----

struct AlignmentCase
{
    int aligned;
    int misaligned;
    bool collides;
};

class AlignmentRule : public ::testing::TestWithParam<AlignmentCase>
{
};

TEST_P(AlignmentRule, MatchesPaper)
{
    const AlignmentCase c = GetParam();
    EXPECT_EQ(LoopMonitor::alignmentCollides(c.aligned, c.misaligned),
              c.collides)
        << c.aligned << " aligned + " << c.misaligned << " misaligned";
}

INSTANTIATE_TEST_SUITE_P(PaperCases, AlignmentRule, ::testing::Values(
    // Positive cases (Sec. IV-G): LSD collision.
    AlignmentCase{7, 1, true},   // "7 aligned, 8th misaligned"
    AlignmentCase{5, 2, true},
    AlignmentCase{6, 2, true},
    AlignmentCase{3, 3, true},
    AlignmentCase{4, 3, true},
    AlignmentCase{5, 3, true},
    AlignmentCase{0, 4, true},   // "4 chained misaligned blocks"
    // Negative cases: loop stays in the LSD.
    AlignmentCase{8, 0, false},  // 8 aligned blocks fit (Sec. IV-F)
    AlignmentCase{4, 0, false},
    AlignmentCase{5, 1, false},
    AlignmentCase{6, 1, false},
    AlignmentCase{4, 2, false},
    AlignmentCase{2, 3, false},
    AlignmentCase{0, 3, false},
    AlignmentCase{1, 0, false}));

TEST(AlignmentRule, MonotoneInMisalignment)
{
    // Adding misaligned blocks never un-collides a colliding loop.
    for (int a = 0; a <= 8; ++a) {
        for (int m = 0; m < 8; ++m) {
            if (LoopMonitor::alignmentCollides(a, m)) {
                EXPECT_TRUE(LoopMonitor::alignmentCollides(a, m + 1));
            }
        }
    }
}

} // namespace
} // namespace lf
