/**
 * @file
 * Integration tests for the fundamental frontend path timing orderings
 * the paper's attacks rely on (Fig. 2):
 *   DSB delivery < LSD delivery < MITE+DSB delivery
 * and the structural behaviours of Sec. IV (eviction at 9 blocks, LSD
 * fit at 8 blocks, L1I neutrality of DSB aliasing).
 */

#include <gtest/gtest.h>

#include "isa/mix_block.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"
#include "sim/executor.hh"

namespace lf {
namespace {

constexpr Addr kBase = 0x400000;
constexpr ThreadId kT0 = 0;

std::vector<BlockSpec>
alignedSpecs(int count, int first_way = 0)
{
    std::vector<BlockSpec> specs;
    for (int i = 0; i < count; ++i)
        specs.push_back({first_way + i, false});
    return specs;
}

TEST(PathTiming, LsdEngagesForSmallAlignedLoop)
{
    Core core(gold6226());
    const auto chain = buildMixBlockChain(kBase, 7, alignedSpecs(4));
    core.setProgram(kT0, &chain.program);
    runLoopIters(core, kT0, chain, 20);
    EXPECT_TRUE(core.frontend().lsdActive(kT0));
    EXPECT_GT(core.counters(kT0).uopsLsd, 0u);
}

TEST(PathTiming, LsdDisabledModelNeverEngages)
{
    Core core(xeonE2174G());
    const auto chain = buildMixBlockChain(kBase, 7, alignedSpecs(4));
    core.setProgram(kT0, &chain.program);
    runLoopIters(core, kT0, chain, 50);
    EXPECT_FALSE(core.frontend().lsdActive(kT0));
    EXPECT_EQ(core.counters(kT0).uopsLsd, 0u);
    EXPECT_GT(core.counters(kT0).uopsDsb, 0u);
}

TEST(PathTiming, EightBlocksFitLsdAndOneDsbSet)
{
    Core core(gold6226());
    const auto chain = buildMixBlockChain(kBase, 3, alignedSpecs(8));
    core.setProgram(kT0, &chain.program);
    runLoopIters(core, kT0, chain, 30);
    // 8 blocks x 5 uops = 40 <= 64: fits the LSD.
    EXPECT_TRUE(core.frontend().lsdActive(kT0));
    // All 8 blocks coexist in the 8-way set: no DSB evictions.
    EXPECT_EQ(core.frontend().dsb().evictions(), 0u);
}

TEST(PathTiming, NineBlocksThrashDsbSetAndStayOnMite)
{
    Core core(gold6226());
    const auto chain = buildMixBlockChain(kBase, 3, alignedSpecs(9));
    core.setProgram(kT0, &chain.program);
    runLoopIters(core, kT0, chain, 30);
    // 9 ways demanded of an 8-way set: LRU thrash, eviction storm.
    EXPECT_FALSE(core.frontend().lsdActive(kT0));
    EXPECT_GT(core.frontend().dsb().evictions(), 20u);
    // Steady-state delivery keeps falling back to the MITE.
    EXPECT_GT(core.counters(kT0).uopsMite, core.counters(kT0).uopsDsb);
}

TEST(PathTiming, Fig2OrderingDsbFasterThanLsdFasterThanMite)
{
    // DSB steady state: measured on an LSD-disabled model.
    Core dsb_core(xeonE2174G());
    const auto chain_a = buildMixBlockChain(kBase, 5, alignedSpecs(8));
    const double dsb_cpi =
        steadyCyclesPerIter(dsb_core, kT0, chain_a, 20, 50);

    // LSD steady state: same loop on an LSD-enabled model.
    Core lsd_core(gold6226());
    const double lsd_cpi =
        steadyCyclesPerIter(lsd_core, kT0, chain_a, 20, 50);

    // MITE+DSB steady state: 9-block thrash on the same model.
    Core mite_core(gold6226());
    const auto chain_b = buildMixBlockChain(kBase, 5, alignedSpecs(9));
    const double mite_cpi =
        steadyCyclesPerIter(mite_core, kT0, chain_b, 20, 50) * 8.0 / 9.0;

    // Paper Fig. 2 ordering (per-block cost): DSB < LSD < MITE+DSB.
    EXPECT_LT(dsb_cpi, lsd_cpi);
    EXPECT_LT(lsd_cpi * 1.5, mite_cpi);
}

TEST(PathTiming, DsbAliasingCausesNoL1iMisses)
{
    Core core(gold6226());
    const auto chain = buildMixBlockChain(kBase, 3, alignedSpecs(9));
    core.setProgram(kT0, &chain.program);
    runLoopIters(core, kT0, chain, 5); // warm the L1I
    const std::uint64_t warm_misses = core.counters(kT0).l1iMisses;
    runLoopIters(core, kT0, chain, 50);
    // The 9 aliasing blocks live in 9 distinct L1I sets: after warmup
    // the DSB thrash produces zero additional L1I misses (Sec. IV-F).
    EXPECT_EQ(core.counters(kT0).l1iMisses, warm_misses);
}

TEST(PathTiming, MisalignedBlockSplitsIntoTwoChunks)
{
    Core core(gold6226());
    std::vector<BlockSpec> specs = {{0, true}, {1, true}};
    const auto chain = buildMixBlockChain(kBase, 6, specs);
    core.setProgram(kT0, &chain.program);
    runLoopIters(core, kT0, chain, 10);
    // Each misaligned block occupies two DSB lines (entry window +
    // spill window): 2 blocks -> 4 inserts.
    EXPECT_EQ(core.frontend().dsb().inserts(), 4u);
}

TEST(PathTiming, NopLoopFitsDsbButNotLsd)
{
    Core core(gold6226());
    const auto loop = buildNopLoop(kBase, 100);
    core.setProgram(kT0, &loop.program);
    runLoopIters(core, kT0, loop, 40);
    EXPECT_FALSE(core.frontend().lsdActive(kT0)); // 101 uops > 64
    EXPECT_EQ(core.frontend().dsb().evictions(), 0u);
    // Steady state delivers from the DSB.
    const auto before = core.counters(kT0);
    runLoopIters(core, kT0, loop, 20);
    const auto delta = core.counters(kT0).delta(before);
    EXPECT_EQ(delta.uopsMite, 0u);
    EXPECT_GT(delta.uopsDsb, 0u);
}

TEST(PathTiming, NopLoopSoloIpcNearIssueWidth)
{
    Core core(gold6226());
    const auto loop = buildNopLoop(kBase, 100);
    core.setProgram(kT0, &loop.program);
    runLoopIters(core, kT0, loop, 20); // warm
    const auto before = core.counters(kT0);
    const Cycles c0 = core.cycle();
    runLoopIters(core, kT0, loop, 100);
    const auto delta = core.counters(kT0).delta(before);
    const double ipc = static_cast<double>(delta.retiredInsts) /
        static_cast<double>(core.cycle() - c0);
    // The solo nop-loop attacker runs near (but below) the backend
    // width; with a co-runner it roughly halves (paper Sec. XI).
    EXPECT_GT(ipc, 4.5);
    EXPECT_LE(ipc, 6.05);
}

} // namespace
} // namespace lf
