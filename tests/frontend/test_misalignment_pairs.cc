/**
 * @file
 * End-to-end validation of the paper's Sec. IV-G misalignment table:
 * run actual {aligned + misaligned} mix-block chains through the full
 * simulator (not just the LoopMonitor rule) and check whether the LSD
 * ends up streaming the loop.
 *
 * Also covers Sec. IV-F end to end: chain lengths 1..8 fit the LSD,
 * chain length 9 collapses to MITE+DSB with zero L1I disturbance.
 */

#include <gtest/gtest.h>

#include "isa/mix_block.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"
#include "sim/executor.hh"

namespace lf {
namespace {

struct PairCase
{
    int aligned;
    int misaligned;
    bool lsdStreams; //!< Expected: loop streamed by the LSD.
};

class MisalignmentPairs : public ::testing::TestWithParam<PairCase>
{
};

TEST_P(MisalignmentPairs, LsdEngagementMatchesPaper)
{
    const PairCase c = GetParam();
    Core core(gold6226());
    const auto chain = buildAlignedMisalignedChain(
        0x400000, 12, c.aligned, c.misaligned);
    core.setProgram(0, &chain.program);
    runLoopIters(core, 0, chain, 40);
    EXPECT_EQ(core.frontend().lsdActive(0), c.lsdStreams)
        << c.aligned << " aligned + " << c.misaligned << " misaligned";
    if (!c.lsdStreams) {
        EXPECT_EQ(core.counters(0).uopsLsd, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(PaperSec4G, MisalignmentPairs,
    ::testing::Values(
        // Collision cases listed in Sec. IV-G -> LSD must not stream.
        PairCase{7, 1, false},
        PairCase{5, 2, false},
        PairCase{6, 2, false},
        PairCase{3, 3, false},
        PairCase{4, 3, false},
        PairCase{5, 3, false},
        // Non-collision cases -> LSD streams. Note: mixed-alignment
        // loops need the poison from their own misaligned blocks to
        // decay fast enough; pure-aligned cases are the crisp ones.
        PairCase{8, 0, true},
        PairCase{7, 0, true},
        PairCase{4, 0, true},
        PairCase{2, 0, true},
        PairCase{1, 0, true}));

class ChainLengthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ChainLengthSweep, UpToEightAliasingBlocksFitLsdAndDsb)
{
    const int blocks = GetParam();
    Core core(gold6226());
    std::vector<BlockSpec> specs;
    for (int i = 0; i < blocks; ++i)
        specs.push_back({i, false});
    const auto chain = buildMixBlockChain(0x400000, 7, specs);
    core.setProgram(0, &chain.program);
    runLoopIters(core, 0, chain, 40);
    if (blocks <= 8) {
        EXPECT_TRUE(core.frontend().lsdActive(0)) << blocks;
        EXPECT_EQ(core.frontend().dsb().evictions(), 0u) << blocks;
    } else {
        EXPECT_FALSE(core.frontend().lsdActive(0)) << blocks;
        EXPECT_GT(core.frontend().dsb().evictions(), 0u) << blocks;
    }
}

TEST_P(ChainLengthSweep, NoSteadyStateL1iMisses)
{
    // Sec. IV-F: neither the 8->9 eviction transition nor any chain
    // length disturbs the L1I after warmup.
    const int blocks = GetParam();
    Core core(gold6226());
    std::vector<BlockSpec> specs;
    for (int i = 0; i < blocks; ++i)
        specs.push_back({i, false});
    const auto chain = buildMixBlockChain(0x400000, 7, specs);
    core.setProgram(0, &chain.program);
    runLoopIters(core, 0, chain, 10);
    const auto warm = core.counters(0).l1iMisses;
    runLoopIters(core, 0, chain, 60);
    EXPECT_EQ(core.counters(0).l1iMisses, warm) << blocks;
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainLengthSweep,
                         ::testing::Range(1, 11));

class MisalignedOnlySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(MisalignedOnlySweep, SplitBlocksOccupyTwoLinesEach)
{
    const int blocks = GetParam();
    Core core(gold6226());
    std::vector<BlockSpec> specs;
    for (int i = 0; i < blocks; ++i)
        specs.push_back({i, true});
    const auto chain = buildMixBlockChain(0x400000, 9, specs);
    core.setProgram(0, &chain.program);
    runLoopIters(core, 0, chain, 10);
    EXPECT_EQ(core.frontend().dsb().inserts(),
              static_cast<std::uint64_t>(2 * blocks));
}

INSTANTIATE_TEST_SUITE_P(Counts, MisalignedOnlySweep,
                         ::testing::Range(1, 5));

} // namespace
} // namespace lf
