/** @file Tests for the frontend engine: SMT, LSD, speculation. */

#include <gtest/gtest.h>

#include "frontend/bpu.hh"
#include "isa/mix_block.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"
#include "sim/executor.hh"

namespace lf {
namespace {

std::vector<BlockSpec>
alignedSpecs(int count)
{
    std::vector<BlockSpec> specs;
    for (int i = 0; i < count; ++i)
        specs.push_back({i, false});
    return specs;
}

TEST(Bpu, BtbAndCounters)
{
    Bpu bpu;
    EXPECT_FALSE(bpu.btbHas(0x1000));
    bpu.btbInsert(0x1000, 0x2000);
    EXPECT_TRUE(bpu.btbHas(0x1000));

    EXPECT_FALSE(bpu.predictCond(0x3000)); // cold: not taken
    bpu.updateCond(0x3000, true);
    bpu.updateCond(0x3000, true);
    EXPECT_TRUE(bpu.predictCond(0x3000));
    bpu.updateCond(0x3000, false);
    EXPECT_FALSE(bpu.predictCond(0x3000)); // back to weakly not-taken
    bpu.reset();
    EXPECT_FALSE(bpu.btbHas(0x1000));
}

TEST(Engine, PartitionFollowsProgramBinding)
{
    Core core(gold6226());
    const auto a = buildNopLoop(0x100000, 50);
    const auto b = buildNopLoop(0x200000, 50);
    EXPECT_FALSE(core.frontend().partitioned());
    core.setProgram(0, &a.program);
    EXPECT_FALSE(core.frontend().partitioned());
    core.setProgram(1, &b.program);
    EXPECT_TRUE(core.frontend().partitioned());
    core.clearProgram(1);
    EXPECT_FALSE(core.frontend().partitioned());
}

TEST(Engine, SmtDisabledModelNeverPartitions)
{
    Core core(xeonE2288G());
    const auto a = buildNopLoop(0x100000, 50);
    const auto b = buildNopLoop(0x200000, 50);
    core.setProgram(0, &a.program);
    core.setProgram(1, &b.program);
    EXPECT_FALSE(core.frontend().partitioned());
}

TEST(Engine, PartitionToggleEvictsUpperHalfLines)
{
    Core core(gold6226());
    const auto chain = buildMixBlockChain(0x400000, 20, alignedSpecs(4));
    core.setProgram(0, &chain.program);
    runLoopIters(core, 0, chain, 5);
    EXPECT_TRUE(core.frontend().dsb().contains(0, chain.blockStarts[0]));

    const auto sibling = buildNopLoop(0x200000, 50);
    core.setProgram(1, &sibling.program); // partition on
    EXPECT_FALSE(
        core.frontend().dsb().contains(0, chain.blockStarts[0]));
}

TEST(Engine, CoRunnerHalvesAttackerIpc)
{
    Core core(gold6226());
    const auto attacker = buildNopLoop(0x100000, 100);
    core.setProgram(0, &attacker.program);
    core.runCycles(5000);
    const auto solo0 = core.counters(0).retiredInsts;
    core.runCycles(10000);
    const double solo_ipc =
        static_cast<double>(core.counters(0).retiredInsts - solo0) /
        10000.0;

    const auto victim = buildNopLoop(0x200000, 100);
    core.setProgram(1, &victim.program);
    core.runCycles(5000);
    const auto paired0 = core.counters(0).retiredInsts;
    core.runCycles(10000);
    const double paired_ipc =
        static_cast<double>(core.counters(0).retiredInsts - paired0) /
        10000.0;

    EXPECT_NEAR(paired_ipc, solo_ipc / 2.0, solo_ipc * 0.15);
}

TEST(Engine, MiteBoundVictimYieldsDeliverySlots)
{
    // A DSB-streaming victim pins the attacker at ~1/2; a MITE-bound
    // victim stalls often and the attacker gets more slots — the
    // fingerprinting side channel of Sec. XI.
    Core core(gold6226());
    const auto attacker = buildNopLoop(0x100000, 100);
    const auto small_victim = buildNopLoop(0xa00000, 100);
    const auto thrash_victim =
        buildMixBlockChain(0xa00000, 2, alignedSpecs(9));

    core.setProgram(0, &attacker.program);
    core.setProgram(1, &small_victim.program);
    core.runCycles(5000);
    const auto i0 = core.counters(0).retiredInsts;
    core.runCycles(10000);
    const double ipc_small =
        static_cast<double>(core.counters(0).retiredInsts - i0) /
        10000.0;

    core.setProgram(1, &thrash_victim.program);
    core.runCycles(5000);
    const auto i1 = core.counters(0).retiredInsts;
    core.runCycles(10000);
    const double ipc_thrash =
        static_cast<double>(core.counters(0).retiredInsts - i1) /
        10000.0;

    EXPECT_GT(ipc_thrash, ipc_small * 1.15);
}

TEST(Engine, SpeculativeFetchFillsDsbWithoutRetiring)
{
    Core core(gold6226());
    const auto chain = buildMixBlockChain(0x400000, 9, alignedSpecs(2));
    core.setProgram(0, &chain.program);
    const auto retired_before = core.counters(0).retiredInsts;
    core.frontend().speculativeFetch(0, chain.blockStarts[1], 1);
    EXPECT_TRUE(core.frontend().dsb().contains(0, chain.blockStarts[1]));
    EXPECT_EQ(core.counters(0).retiredInsts, retired_before);
    EXPECT_GT(core.counters(0).specChunks, 0u);
}

TEST(Engine, SpeculativeFetchStopsAtCondBranch)
{
    Assembler as(0x1000);
    as.jcc(0x2000, 0);
    Program p = as.take();
    Core core(gold6226());
    core.setProgram(0, &p);
    core.frontend().speculativeFetch(0, 0x1000, 8);
    // Only the jcc chunk itself is walked; nothing past it.
    EXPECT_EQ(core.counters(0).specChunks, 1u);
}

TEST(Engine, EvictionFlushesLsd)
{
    Core core(gold6226());
    const auto chain = buildMixBlockChain(0x400000, 6, alignedSpecs(4));
    core.setProgram(0, &chain.program);
    runLoopIters(core, 0, chain, 20);
    ASSERT_TRUE(core.frontend().lsdActive(0));
    // Fill the set with 8 more alien lines: evicts the loop body.
    for (int w = 10; w < 18; ++w) {
        core.frontend().dsb().insert(
            0, 0x800000 + static_cast<Addr>(w) * 1024 + 6 * 32, 5);
    }
    EXPECT_FALSE(core.frontend().lsdActive(0));
    EXPECT_GT(core.counters(0).lsdFlushes, 0u);
}

TEST(Engine, MisalignedExecutionPoisonsLsdCapture)
{
    Core core(gold6226());
    // Run misaligned blocks of set 6, then a small aligned loop of the
    // same set: the LSD must refuse to engage while poisoned.
    const auto poison = buildMixBlockChain(0x800000, 6,
                                           {{0, true}, {1, true}});
    core.setProgram(0, &poison.program);
    runLoopIters(core, 0, poison, 3);

    const auto loop = buildMixBlockChain(0x400000, 6, alignedSpecs(4));
    core.setProgram(0, &loop.program);
    runLoopIters(core, 0, loop, 6);
    EXPECT_FALSE(core.frontend().lsdActive(0));
    EXPECT_EQ(core.counters(0).uopsLsd, 0u);
}

TEST(Engine, FlushThreadFrontendStopsLsd)
{
    Core core(gold6226());
    const auto chain = buildMixBlockChain(0x400000, 6, alignedSpecs(4));
    core.setProgram(0, &chain.program);
    runLoopIters(core, 0, chain, 20);
    ASSERT_TRUE(core.frontend().lsdActive(0));
    core.frontend().flushThreadFrontend(0);
    EXPECT_FALSE(core.frontend().lsdActive(0));
    EXPECT_EQ(core.frontend().idqOccupancy(0), 0);
}

TEST(Engine, CondBranchMispredictPenalty)
{
    // A jcc that alternates direction should keep mispredicting.
    Assembler as(0x1000);
    const Addr head = as.cursor();
    as.mov();
    as.jcc(head, 0);
    as.jmp(head);
    Program p = as.take();
    p.setEntry(head);
    p.setCondFn([](int, std::uint64_t count) { return count % 2 == 0; });

    Core core(gold6226());
    core.setProgram(0, &p);
    core.runUntilRetired(0, 200);
    EXPECT_GT(core.counters(0).condMispredicts, 20u);
}

} // namespace
} // namespace lf
