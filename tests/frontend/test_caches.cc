/** @file Tests for the L1I cache and the DSB structures. */

#include <gtest/gtest.h>

#include "frontend/dsb.hh"
#include "frontend/l1i_cache.hh"
#include "frontend/params.hh"

namespace lf {
namespace {

TEST(L1iCache, HitAfterFill)
{
    FrontendParams params;
    L1iCache l1i(params);
    EXPECT_FALSE(l1i.access(0x1000).hit);
    EXPECT_TRUE(l1i.access(0x1000).hit);
    EXPECT_TRUE(l1i.access(0x103f).hit); // same 64 B line
    EXPECT_FALSE(l1i.access(0x1040).hit); // next line
    EXPECT_EQ(l1i.misses(), 2u);
    EXPECT_EQ(l1i.accesses(), 4u);
}

TEST(L1iCache, MissLatencyCharged)
{
    FrontendParams params;
    L1iCache l1i(params);
    EXPECT_EQ(l1i.access(0x2000).latency, params.l1iMissLatency);
    EXPECT_EQ(l1i.access(0x2000).latency, 0u);
}

TEST(L1iCache, LruEvictionWithinSet)
{
    FrontendParams params;
    L1iCache l1i(params);
    // Fill one set with 8 ways (stride = sets * line = 4096).
    for (int w = 0; w < 8; ++w)
        l1i.access(0x10000 + static_cast<Addr>(w) * 4096);
    // Touch way 0 so way 1 is LRU, then insert a 9th alias.
    l1i.access(0x10000);
    l1i.access(0x10000 + 8 * 4096);
    EXPECT_TRUE(l1i.contains(0x10000));
    EXPECT_FALSE(l1i.contains(0x10000 + 1 * 4096));
}

TEST(L1iCache, FlushLineAndAll)
{
    FrontendParams params;
    L1iCache l1i(params);
    l1i.access(0x3000);
    l1i.flushLine(0x3000);
    EXPECT_FALSE(l1i.contains(0x3000));
    l1i.access(0x3000);
    l1i.flushAll();
    EXPECT_FALSE(l1i.contains(0x3000));
}

TEST(L1iCache, MixBlockAliasesUseDistinctSets)
{
    // Blocks aliasing one DSB set (1 KiB stride) land in distinct
    // L1I sets — the paper's stealth argument (Sec. IV-F).
    FrontendParams params;
    L1iCache l1i(params);
    const int set0 = l1i.setOf(0x400000);
    const int set1 = l1i.setOf(0x400000 + 1024);
    EXPECT_NE(set0, set1);
}

TEST(Dsb, InsertLookupAndStats)
{
    FrontendParams params;
    Dsb dsb(params);
    EXPECT_LT(dsb.lookup(0, 0x400020), 0);
    dsb.insert(0, 0x400020, 5);
    EXPECT_EQ(dsb.lookup(0, 0x400020), 5);
    EXPECT_EQ(dsb.hits(), 1u);
    EXPECT_EQ(dsb.misses(), 1u);
    EXPECT_EQ(dsb.inserts(), 1u);
}

TEST(Dsb, PerThreadTags)
{
    FrontendParams params;
    Dsb dsb(params);
    dsb.insert(0, 0x400020, 5);
    EXPECT_LT(dsb.lookup(1, 0x400020), 0); // other thread: miss
}

TEST(Dsb, NinthWayEvictsLru)
{
    FrontendParams params;
    Dsb dsb(params);
    int evictions = 0;
    Addr evicted_key = 0;
    dsb.setEvictCallback([&](ThreadId, Addr key) {
        ++evictions;
        evicted_key = key;
    });
    for (int w = 0; w < 8; ++w)
        dsb.insert(0, 0x400000 + static_cast<Addr>(w) * 1024, 5);
    EXPECT_EQ(evictions, 0);
    dsb.insert(0, 0x400000 + 8 * 1024, 5);
    EXPECT_EQ(evictions, 1);
    EXPECT_EQ(evicted_key, 0x400000u); // LRU = first inserted
    EXPECT_FALSE(dsb.contains(0, 0x400000));
}

TEST(Dsb, LookupRefreshesLru)
{
    FrontendParams params;
    Dsb dsb(params);
    for (int w = 0; w < 8; ++w)
        dsb.insert(0, 0x400000 + static_cast<Addr>(w) * 1024, 5);
    dsb.lookup(0, 0x400000); // refresh way 0
    dsb.insert(0, 0x400000 + 8 * 1024, 5);
    EXPECT_TRUE(dsb.contains(0, 0x400000));
    EXPECT_FALSE(dsb.contains(0, 0x400000 + 1024));
}

TEST(Dsb, FlushKeyAndThread)
{
    FrontendParams params;
    Dsb dsb(params);
    dsb.insert(0, 0x400000, 5);
    dsb.insert(1, 0x500000, 5);
    dsb.flushKey(0, 0x400000);
    EXPECT_FALSE(dsb.contains(0, 0x400000));
    dsb.flushThread(1);
    EXPECT_FALSE(dsb.contains(1, 0x500000));
}

TEST(Dsb, PartitionHalvesTheIndex)
{
    FrontendParams params;
    Dsb dsb(params);
    // Set 20 (addr[9] = 1): full index 20, partitioned index 4 for
    // thread 0 and 20 for thread 1.
    const Addr key = 20 * 32;
    EXPECT_EQ(dsb.setOf(0, key), 20);
    dsb.setPartitioned(true);
    EXPECT_EQ(dsb.setOf(0, key), 4);
    EXPECT_EQ(dsb.setOf(1, key), 20);
}

TEST(Dsb, PartitionTogglesInvalidateMisplacedLines)
{
    FrontendParams params;
    Dsb dsb(params);
    // Thread 0 line in the upper half (set 20): dies on partition.
    dsb.insert(0, 20 * 32, 5);
    // Thread 0 line in the lower half (set 4): survives.
    dsb.insert(0, 4 * 32, 5);
    dsb.setPartitioned(true);
    EXPECT_FALSE(dsb.contains(0, 20 * 32));
    EXPECT_TRUE(dsb.contains(0, 4 * 32));
    EXPECT_EQ(dsb.partitionTransitions(), 1u);

    // Insert under partitioning at a now-valid position that is wrong
    // under the full index: dies on un-partition.
    dsb.insert(0, 20 * 32, 5); // partitioned index 4
    dsb.setPartitioned(false);
    EXPECT_FALSE(dsb.contains(0, 20 * 32));
    EXPECT_TRUE(dsb.contains(0, 4 * 32));
}

TEST(Dsb, SetPartitionedIsIdempotent)
{
    FrontendParams params;
    Dsb dsb(params);
    dsb.setPartitioned(false);
    EXPECT_EQ(dsb.partitionTransitions(), 0u);
    dsb.setPartitioned(true);
    dsb.setPartitioned(true);
    EXPECT_EQ(dsb.partitionTransitions(), 1u);
}

class DsbPartitionSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DsbPartitionSweep, SurvivalMatchesIndexBit)
{
    // A thread-0 line survives partition activation iff its full set
    // index already lies in thread 0's half (addr[9] == 0).
    const int set = GetParam();
    FrontendParams params;
    Dsb dsb(params);
    const Addr key = static_cast<Addr>(set) * 32;
    dsb.insert(0, key, 5);
    dsb.setPartitioned(true);
    EXPECT_EQ(dsb.contains(0, key), set < 16);
}

INSTANTIATE_TEST_SUITE_P(Sets, DsbPartitionSweep,
                         ::testing::Range(0, 32, 1));

} // namespace
} // namespace lf
