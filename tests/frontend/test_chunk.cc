/** @file Tests for decoded-run (chunk table) construction. */

#include <gtest/gtest.h>

#include "frontend/chunk.hh"
#include "isa/mix_block.hh"

namespace lf {
namespace {

FrontendParams params;

TEST(Chunk, AlignedMixBlockIsOneChunk)
{
    const auto chain = buildMixBlockChain(0x400000, 3, {{0, false}});
    ChunkTable cache(chain.program, params);
    const Chunk *chunk = cache.get(chain.blockStarts[0]);
    ASSERT_NE(chunk, nullptr);
    EXPECT_EQ(chunk->numInsts(), 5);
    EXPECT_EQ(chunk->uops, 5);
    EXPECT_EQ(chunk->bytes, 25);
    EXPECT_TRUE(chunk->endsBranch);
    EXPECT_TRUE(chunk->aligned());
    EXPECT_TRUE(chunk->cacheable());
}

TEST(Chunk, MisalignedMixBlockSplitsInTwo)
{
    const auto chain = buildMixBlockChain(0x400000, 3, {{0, true}});
    ChunkTable cache(chain.program, params);
    const Addr start = chain.blockStarts[0];
    const Chunk *first = cache.get(start);
    ASSERT_NE(first, nullptr);
    EXPECT_FALSE(first->aligned());
    EXPECT_FALSE(first->endsBranch);
    EXPECT_EQ(first->numInsts(), 4); // movs starting inside window 1
    const Chunk *second = cache.get(first->fallThrough);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->numInsts(), 1); // the spilled jmp
    EXPECT_TRUE(second->endsBranch);
    // The two chunks map to adjacent DSB sets.
    EXPECT_NE((first->start >> 5) & 31, (second->start >> 5) & 31);
}

TEST(Chunk, UopCapacitySplitsNopRuns)
{
    const auto loop = buildNopLoop(0x100000, 100);
    ChunkTable cache(loop.program, params);
    const Chunk *chunk = cache.get(0x100000);
    ASSERT_NE(chunk, nullptr);
    EXPECT_EQ(chunk->uops, params.dsbLineUops); // capped at one line
    EXPECT_EQ(chunk->numInsts(), 6);
}

TEST(Chunk, NopLoopChunkCount)
{
    const auto loop = buildNopLoop(0x100000, 100);
    ChunkTable cache(loop.program, params);
    int chunks = 0;
    Addr pc = 0x100000;
    while (true) {
        const Chunk *chunk = cache.get(pc);
        ASSERT_NE(chunk, nullptr);
        ++chunks;
        if (chunk->endsBranch)
            break;
        pc = chunk->fallThrough;
    }
    // 100 nops in 6-uop chunks bounded by 32 B windows, plus the jmp.
    EXPECT_GE(chunks, 17);
    EXPECT_LE(chunks, 20);
}

TEST(Chunk, LcpInstructionStandsAlone)
{
    const auto loop = buildLcpAddLoop(0x100000, LcpPattern::Mixed, 4);
    ChunkTable cache(loop.program, params);
    Addr pc = 0x100000;
    // First chunk: the leading plain add only (LCP breaks the run).
    const Chunk *first = cache.get(pc);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->numInsts(), 1);
    EXPECT_TRUE(first->cacheable());
    const Chunk *second = cache.get(first->fallThrough);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->numInsts(), 1);
    EXPECT_EQ(second->lcpCount, 1);
    EXPECT_FALSE(second->cacheable());
}

TEST(Chunk, HaltChunk)
{
    Assembler as(0x1000);
    as.halt();
    Program p = as.take();
    ChunkTable cache(p, params);
    const Chunk *chunk = cache.get(0x1000);
    ASSERT_NE(chunk, nullptr);
    EXPECT_TRUE(chunk->halt);
}

TEST(Chunk, MissingAddressReturnsNull)
{
    Assembler as(0x1000);
    as.mov();
    Program p = as.take();
    ChunkTable cache(p, params);
    EXPECT_EQ(cache.get(0x9999), nullptr);
    EXPECT_EQ(cache.get(0x9999), nullptr); // negative cache path
}

TEST(Chunk, EndOfInstMarkers)
{
    Assembler as(0x1000);
    as.store(0x8000); // 2 uops
    as.mov();
    Program p = as.take();
    ChunkTable cache(p, params);
    const Chunk *chunk = cache.get(0x1000);
    ASSERT_NE(chunk, nullptr);
    ASSERT_EQ(chunk->uops, 3);
    EXPECT_FALSE(chunk->endOfInst[0]); // store uop 1
    EXPECT_TRUE(chunk->endOfInst[1]);  // store uop 2
    EXPECT_TRUE(chunk->endOfInst[2]);  // mov
}

} // namespace
} // namespace lf
