/**
 * @file
 * CLI parsing tests: strict number parsing (trailing garbage such as
 * "40x" must be rejected — std::stod used to silently read 40),
 * duplicate --set keys, the --sweep axis grammar, --shard selectors,
 * the --list-channels/--list-axes catalogs (rendered from the same
 * tables the parser uses, so they cannot drift), and the up-front
 * override-value validation ("--set repetition=2" fails at parse
 * time with the resolver's message).
 */

#include <gtest/gtest.h>

#include "defense/defense.hh"
#include "noise/environment.hh"
#include "run/cli.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

TEST(StrictNumbers, DoubleRejectsTrailingGarbage)
{
    double value = 0.0;
    EXPECT_TRUE(parseStrictDouble("40", value));
    EXPECT_EQ(value, 40.0);
    EXPECT_TRUE(parseStrictDouble("4e2", value));
    EXPECT_EQ(value, 400.0);
    EXPECT_TRUE(parseStrictDouble("-2.5", value));

    EXPECT_FALSE(parseStrictDouble("40x", value));
    EXPECT_FALSE(parseStrictDouble("x40", value));
    EXPECT_FALSE(parseStrictDouble("", value));
    EXPECT_FALSE(parseStrictDouble("4 0", value));
    EXPECT_FALSE(parseStrictDouble("nan", value));
    EXPECT_FALSE(parseStrictDouble("inf", value));
}

TEST(StrictNumbers, IntAndUint64)
{
    int i = 0;
    EXPECT_TRUE(parseStrictInt("-3", i));
    EXPECT_EQ(i, -3);
    EXPECT_FALSE(parseStrictInt("3.5", i));
    EXPECT_FALSE(parseStrictInt("3x", i));

    std::uint64_t u = 0;
    EXPECT_TRUE(parseStrictUint64("18446744073709551615", u));
    EXPECT_FALSE(parseStrictUint64("-1", u));
    EXPECT_FALSE(parseStrictUint64("12q", u));
}

TEST(SetParsing, AcceptsKeyValue)
{
    std::map<std::string, double> overrides;
    EXPECT_EQ(parseSetArg("d=40", overrides), "");
    EXPECT_EQ(overrides.at("d"), 40.0);
    EXPECT_EQ(parseSetArg("model.jitterPerKcycle=2.5", overrides), "");
    EXPECT_EQ(overrides.size(), 2u);
}

TEST(SetParsing, RejectsTrailingGarbage)
{
    std::map<std::string, double> overrides;
    const std::string error = parseSetArg("d=40x", overrides);
    EXPECT_NE(error.find("bad --set value"), std::string::npos);
    EXPECT_TRUE(overrides.empty());
}

TEST(SetParsing, RejectsDuplicateKeys)
{
    std::map<std::string, double> overrides;
    EXPECT_EQ(parseSetArg("d=4", overrides), "");
    const std::string error = parseSetArg("d=6", overrides);
    EXPECT_NE(error.find("duplicate --set key"), std::string::npos);
    EXPECT_EQ(overrides.at("d"), 4.0); // first value kept, not last
}

TEST(SetParsing, RejectsMalformedTokens)
{
    std::map<std::string, double> overrides;
    EXPECT_FALSE(parseSetArg("d", overrides).empty());
    EXPECT_FALSE(parseSetArg("=5", overrides).empty());
    EXPECT_FALSE(parseSetArg("d=", overrides).empty());
}

TEST(SetParsing, EnvKeysAreJustAsStrict)
{
    // env.* overrides go through the same strict grammar as channel
    // and model.* keys: whole-token values, no duplicates.
    std::map<std::string, double> overrides;
    EXPECT_EQ(parseSetArg("env.corunner_intensity=0.5", overrides),
              "");
    EXPECT_EQ(overrides.at("env.corunner_intensity"), 0.5);

    std::string error =
        parseSetArg("env.timer_noise_cycles=4x", overrides);
    EXPECT_NE(error.find("bad --set value"), std::string::npos);
    EXPECT_EQ(overrides.count("env.timer_noise_cycles"), 0u);

    error = parseSetArg("env.corunner_intensity=0.9", overrides);
    EXPECT_NE(error.find("duplicate --set key"), std::string::npos);
    EXPECT_EQ(overrides.at("env.corunner_intensity"), 0.5);

    EXPECT_FALSE(parseSetArg("env.sched_preempt_prob=", overrides)
                     .empty());
}

TEST(SetParsing, UnknownEnvKeysRejectedBySweepValidation)
{
    // parseSetArg() is grammar-only; key existence is the sweep
    // validator's job (same split as the model.* keys).
    std::map<std::string, double> overrides;
    EXPECT_EQ(parseSetArg("env.bogus=1", overrides), "");

    SweepSpec sweep;
    sweep.channels = {"nonmt-fast-eviction"};
    sweep.cpus = {"Gold 6226"};
    sweep.baseOverrides = overrides;
    EXPECT_NE(validateSweepSpec(sweep).find("env.bogus"),
              std::string::npos);

    sweep.baseOverrides.clear();
    sweep.baseOverrides["env.corunner_intensity"] = 0.5;
    EXPECT_EQ(validateSweepSpec(sweep), "");
}

TEST(SweepParsing, EnvAxesParse)
{
    std::vector<SweepAxis> axes;
    EXPECT_EQ(parseSweepArg("env.corunner_intensity=0:1:0.25", axes),
              "");
    ASSERT_EQ(axes.size(), 1u);
    EXPECT_EQ(axes[0].key, "env.corunner_intensity");
    EXPECT_EQ(axes[0].values.size(), 5u);
    // Duplicate env axis across --sweep arguments is still rejected.
    EXPECT_FALSE(
        parseSweepArg("env.corunner_intensity=0|1", axes).empty());
}

TEST(SweepParsing, RangeIsInclusive)
{
    std::vector<SweepAxis> axes;
    EXPECT_EQ(parseSweepArg("d=20:200:20", axes), "");
    ASSERT_EQ(axes.size(), 1u);
    EXPECT_EQ(axes[0].key, "d");
    ASSERT_EQ(axes[0].values.size(), 10u);
    EXPECT_EQ(axes[0].values.front(), 20.0);
    EXPECT_EQ(axes[0].values.back(), 200.0);
}

TEST(SweepParsing, FractionalStepHitsTheUpperBound)
{
    std::vector<SweepAxis> axes;
    EXPECT_EQ(parseSweepArg("x=1.5:3:0.5", axes), "");
    ASSERT_EQ(axes[0].values.size(), 4u);
    EXPECT_DOUBLE_EQ(axes[0].values.back(), 3.0);
}

TEST(SweepParsing, ListsAndSingleValues)
{
    std::vector<SweepAxis> axes;
    EXPECT_EQ(parseSweepArg("rounds=5|10|20,d=6", axes), "");
    ASSERT_EQ(axes.size(), 2u);
    EXPECT_EQ(axes[0].values,
              (std::vector<double>{5.0, 10.0, 20.0}));
    EXPECT_EQ(axes[1].values, (std::vector<double>{6.0}));
}

TEST(SweepParsing, RejectsBadAxes)
{
    std::vector<SweepAxis> axes;
    EXPECT_FALSE(parseSweepArg("d", axes).empty());
    EXPECT_FALSE(parseSweepArg("d=1:8", axes).empty());
    EXPECT_FALSE(parseSweepArg("d=8:1:1", axes).empty());
    EXPECT_FALSE(parseSweepArg("d=1:8:0", axes).empty());
    EXPECT_FALSE(parseSweepArg("d=1:8:-1", axes).empty());
    EXPECT_FALSE(parseSweepArg("d=1:8:1x", axes).empty());
    EXPECT_TRUE(axes.empty());

    EXPECT_EQ(parseSweepArg("d=1:8:1", axes), "");
    EXPECT_FALSE(parseSweepArg("d=2|4", axes).empty()); // duplicate
}

TEST(ShardParsing, AcceptsValidSelectors)
{
    SweepShard shard;
    EXPECT_EQ(parseShardArg("0/4", shard), "");
    EXPECT_EQ(shard.index, 0);
    EXPECT_EQ(shard.count, 4);
    EXPECT_EQ(parseShardArg("3/4", shard), "");
    EXPECT_EQ(shard.index, 3);
}

TEST(ShardParsing, RejectsBadSelectors)
{
    SweepShard shard;
    EXPECT_FALSE(parseShardArg("4/4", shard).empty());
    EXPECT_FALSE(parseShardArg("-1/4", shard).empty());
    EXPECT_FALSE(parseShardArg("1", shard).empty());
    EXPECT_FALSE(parseShardArg("1/", shard).empty());
    EXPECT_FALSE(parseShardArg("/4", shard).empty());
    EXPECT_FALSE(parseShardArg("a/b", shard).empty());
    EXPECT_FALSE(parseShardArg("0/0", shard).empty());
}

TEST(SetParsing, DefenseKeysAreJustAsStrict)
{
    std::map<std::string, double> overrides;
    EXPECT_EQ(parseSetArg("defense.partition_dsb=1", overrides), "");
    EXPECT_EQ(overrides.at("defense.partition_dsb"), 1.0);

    std::string error =
        parseSetArg("defense.smoothing=0.5x", overrides);
    EXPECT_NE(error.find("bad --set value"), std::string::npos);

    error = parseSetArg("defense.partition_dsb=0", overrides);
    EXPECT_NE(error.find("duplicate --set key"), std::string::npos);
    EXPECT_EQ(overrides.at("defense.partition_dsb"), 1.0);

    // Key existence is the sweep validator's job, same as env.*.
    overrides.clear();
    EXPECT_EQ(parseSetArg("defense.bogus=1", overrides), "");
    SweepSpec sweep;
    sweep.channels = {"nonmt-fast-eviction"};
    sweep.cpus = {"Gold 6226"};
    sweep.baseOverrides = overrides;
    EXPECT_NE(validateSweepSpec(sweep).find("defense.bogus"),
              std::string::npos);

    sweep.baseOverrides.clear();
    sweep.baseOverrides["defense.flush_switch_quantum"] = 4.0;
    EXPECT_EQ(validateSweepSpec(sweep), "");
}

TEST(ValueValidation, RepetitionRejectedAtParseTime)
{
    // The satellite contract: "--set repetition=2" must fail before
    // any trial runs, with the resolver's message, instead of
    // surfacing as error rows from deep inside the run.
    SweepSpec sweep;
    sweep.channels = {"nonmt-fast-eviction"};
    sweep.cpus = {"Gold 6226"};
    sweep.baseOverrides["repetition"] = 2.0;
    ASSERT_EQ(validateSweepSpec(sweep), "");
    const std::string error = validateSweepSpecValues(sweep);
    EXPECT_NE(error.find("repetition must be odd"),
              std::string::npos)
        << error;
}

TEST(ValueValidation, ProtocolShapeAndDefenseRangesCheckedUpFront)
{
    SweepSpec sweep;
    sweep.channels = {"nonmt-fast-eviction"};
    sweep.cpus = {"Gold 6226"};
    ASSERT_EQ(validateSweepSpecValues(sweep), "");

    sweep.baseOverrides["d"] = 40.0; // > N
    EXPECT_NE(validateSweepSpecValues(sweep).find("out of range"),
              std::string::npos);
    sweep.baseOverrides.clear();

    sweep.baseOverrides["defense.smoothing"] = 2.0;
    EXPECT_NE(
        validateSweepSpecValues(sweep).find("defense.smoothing"),
        std::string::npos);
    sweep.baseOverrides.clear();

    sweep.baseOverrides["env.corunner_intensity"] = 3.0;
    EXPECT_NE(validateSweepSpecValues(sweep).find(
                  "env.corunner_intensity"),
              std::string::npos);
    sweep.baseOverrides.clear();

    // Every axis value is probed in isolation: the bad middle value
    // of a sweep list is reported with its key and value.
    sweep.axes = {{"rounds", {5, 0, 10}}};
    const std::string error = validateSweepSpecValues(sweep);
    EXPECT_NE(error.find("rounds=0"), std::string::npos) << error;
}

TEST(Catalogs, ChannelCatalogListsEveryRegistryChannel)
{
    const std::string catalog = renderChannelCatalog();
    for (const std::string &name : allChannelNames())
        EXPECT_NE(catalog.find(name), std::string::npos) << name;
    for (const CpuModel *cpu : allCpuModels()) {
        EXPECT_NE(catalog.find("\"" + cpu->name + "\""),
                  std::string::npos)
            << cpu->name;
    }
}

TEST(Catalogs, AxisCatalogListsEveryOverrideKeyFamily)
{
    // The listing is rendered from the same key tables the override
    // appliers use, so a key added to any family shows up here
    // without further wiring — this test pins that contract.
    const std::string catalog = renderOverrideKeyCatalog();
    for (const std::string &key : channelOverrideKeys())
        EXPECT_NE(catalog.find(" " + key), std::string::npos) << key;
    for (const std::string &key : modelOverrideKeys())
        EXPECT_NE(catalog.find(" " + key), std::string::npos) << key;
    for (const std::string &key : envOverrideKeys())
        EXPECT_NE(catalog.find(" " + key), std::string::npos) << key;
    for (const std::string &key : defenseOverrideKeys())
        EXPECT_NE(catalog.find(" " + key), std::string::npos) << key;
}

// ProgressMeter with an injected fake clock: the drawn/reported rate
// must track the *recent* pace, not the lifetime mean. The scenario
// is a resumed campaign: a warm-cache burst replays many rows almost
// instantly, then fresh trials arrive slowly — a lifetime-average
// rate would keep promising a near-zero ETA for the rest of the run.
class FakeClockMeter : public ::testing::Test
{
  protected:
    using TimePoint = std::chrono::steady_clock::time_point;

    void install(ProgressMeter &meter)
    {
        meter.setSink(nullptr); // no terminal output from tests
        meter.setClock([this] { return nowFake_; });
    }

    void advance(double seconds)
    {
        nowFake_ += std::chrono::microseconds(
            static_cast<long long>(seconds * 1e6));
    }

    TimePoint nowFake_{std::chrono::seconds(1000)};
};

TEST_F(FakeClockMeter, WindowedRateRecoversFromResumeBurst)
{
    ProgressMeter meter("test", 10000);
    install(meter);

    // Warm-cache burst: 5000 rows in 50 ms -> ~100k rows/s.
    for (std::size_t done = 500; done <= 5000; done += 500) {
        advance(0.005);
        meter.update(done);
    }
    EXPECT_GT(meter.rate(), 10000.0);

    // Fresh trials: 10 rows/s. Once the burst leaves the ~5 s
    // window, the rate must settle near 10/s and the ETA near
    // 5000 remaining / 10 = 500 s. The lifetime mean (~5500 done in
    // ~55 s elapsed = 100/s -> ETA 50 s) would be 10x off.
    for (int i = 0; i < 100; ++i) {
        advance(0.5);
        meter.update(5000 + static_cast<std::size_t>(i + 1) * 5);
    }
    EXPECT_NEAR(meter.rate(), 10.0, 2.0);
    EXPECT_NEAR(meter.etaSeconds(),
                (10000.0 - 5500.0) / meter.rate(), 1.0);
}

TEST_F(FakeClockMeter, RateIsZeroWithoutProgressOrTime)
{
    ProgressMeter meter("test", 100);
    install(meter);
    meter.update(0);
    EXPECT_EQ(meter.rate(), 0.0);
    EXPECT_EQ(meter.etaSeconds(), 0.0);
    // Two updates at the same instant: no time span, no rate.
    meter.update(50);
    EXPECT_EQ(meter.rate(), 0.0);
}

TEST_F(FakeClockMeter, FinalRedrawIsGuarded)
{
    ProgressMeter meter("test", 10);
    // Draw into a tmpfile so the final-redraw path is exercised for
    // real, not short-circuited by a null sink.
    std::FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);
    meter.setSink(sink);
    meter.setClock([this] { return nowFake_; });

    advance(1.0);
    meter.update(5);
    const long after_first = std::ftell(sink);
    EXPECT_GT(after_first, 0);

    // Reaching the total redraws once even inside the throttle
    // interval...
    advance(0.001);
    meter.update(10);
    const long after_final = std::ftell(sink);
    EXPECT_GT(after_final, after_first);

    // ...but a caller looping on the final count must not spam the
    // line: repeat final updates inside the throttle draw nothing.
    for (int i = 0; i < 50; ++i) {
        advance(0.001);
        meter.update(10);
    }
    EXPECT_EQ(std::ftell(sink), after_final);

    // done > total must not underflow the remaining-work estimate.
    advance(1.0);
    meter.update(12);
    EXPECT_GE(meter.etaSeconds(), 0.0);

    meter.finish();
    std::fclose(sink);
}

} // namespace
} // namespace lf
