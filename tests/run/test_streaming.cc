/**
 * @file
 * Streaming-runner identity tests: the streamed callback API, the
 * batch API, reused vs fresh cores, and 1/4/8 worker threads must all
 * produce bit-identical results over a registry-wide spec grid; the
 * incremental SweepAccumulator must reproduce aggregateSweep()
 * exactly; and resolveTrial() must subsume the old per-facet
 * resolution (errors and skips become rows, never aborts).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "frontend/prepared.hh"
#include "obs/counters.hh"
#include "run/runner.hh"
#include "run/sinks.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"
#include "sim/snapshot.hh"

namespace lf {
namespace {

/** Registry-wide grid: every channel on two CPUs (one SMT server,
 *  one SMT-less SGX machine, so skip rows appear mid-stream), two
 *  trials each, with a couple of override-carrying cells. */
const std::vector<ExperimentSpec> &
registryGrid()
{
    static const std::vector<ExperimentSpec> grid = [] {
        std::vector<ExperimentSpec> specs;
        for (const std::string &channel : allChannelNames()) {
            for (const char *cpu : {"Gold 6226", "E-2288G"}) {
                ExperimentSpec spec;
                spec.channel = channel;
                spec.cpu = cpu;
                spec.seed = 17;
                spec.messageBits = 4;
                // Keep the slow families fast.
                spec.overrides["sgxRounds"] = 400;
                spec.overrides["powerRounds"] = 800;
                for (ExperimentSpec &trial : expandTrials(spec, 2))
                    specs.push_back(std::move(trial));
            }
        }
        // One error row mid-batch: must stream through in order.
        ExperimentSpec bad;
        bad.channel = "nonmt-fast-eviction";
        bad.cpu = "Gold 6226";
        bad.overrides["d"] = 0;
        specs.insert(specs.begin() + 5, bad);
        return specs;
    }();
    return grid;
}

std::string
jsonOf(const std::vector<ExperimentResult> &results)
{
    return JsonSink("stream").render(results);
}

TEST(StreamingRunner, StreamMatchesBatchAtEveryThreadCount)
{
    const auto &specs = registryGrid();
    const std::string batch_json =
        jsonOf(ExperimentRunner(1).run(specs));

    for (const int threads : {1, 4, 8}) {
        const ExperimentRunner runner(threads);
        // Batch API.
        EXPECT_EQ(jsonOf(runner.run(specs)), batch_json) << threads;
        // Streaming API, spec order: identical bytes, and the stream
        // can be serialized row-by-row as it arrives.
        std::vector<ExperimentResult> streamed;
        JsonSink sink("stream");
        std::ostringstream os;
        sink.writeHeader(os);
        runner.run(specs, [&](const ExperimentResult &res) {
            streamed.push_back(res);
            sink.writeRow(res, os);
        });
        sink.writeFooter(os);
        EXPECT_EQ(jsonOf(streamed), batch_json) << threads;
        EXPECT_EQ(os.str(), batch_json) << threads;
    }
}

TEST(StreamingRunner, CompletionOrderDeliversTheSameResultSet)
{
    const auto &specs = registryGrid();
    const auto in_order = ExperimentRunner(1).run(specs);

    std::vector<ExperimentResult> completed;
    ExperimentRunner(4).run(
        specs,
        [&](const ExperimentResult &res) {
            completed.push_back(res);
        },
        StreamOrder::Completion);
    ASSERT_EQ(completed.size(), in_order.size());

    // Re-establish spec order by matching (channel, cpu, seed,
    // overrides) — unique per spec in this grid — then compare bytes.
    const auto key = [](const ExperimentResult &res) {
        std::string k = res.spec.channel + "|" + res.spec.cpu + "|" +
            std::to_string(res.spec.seed);
        for (const auto &[name, value] : res.spec.overrides)
            k += "|" + name + "=" + std::to_string(value);
        return k;
    };
    const auto by_key = [&key](const ExperimentResult &a,
                               const ExperimentResult &b) {
        return key(a) < key(b);
    };
    auto sorted_completed = completed;
    auto sorted_in_order = in_order;
    std::sort(sorted_completed.begin(), sorted_completed.end(),
              by_key);
    std::sort(sorted_in_order.begin(), sorted_in_order.end(), by_key);
    EXPECT_EQ(jsonOf(sorted_completed), jsonOf(sorted_in_order));
}

TEST(StreamingRunner, FreshCoresMatchReusedCores)
{
    const auto &specs = registryGrid();
    ExperimentRunner fresh(4);
    fresh.setCoreReuse(false);
    ASSERT_TRUE(ExperimentRunner().coreReuse());
    EXPECT_EQ(jsonOf(fresh.run(specs)),
              jsonOf(ExperimentRunner(4).run(specs)));
}

TEST(StreamingRunner, ReboundContextMatchesFreshContexts)
{
    // The worker-side primitive, without the pool: one TrialContext
    // rebound across different specs must reproduce fresh contexts.
    ExperimentSpec a;
    a.channel = "nonmt-fast-eviction";
    a.cpu = "Gold 6226";
    a.seed = 5;
    a.messageBits = 6;
    ExperimentSpec b;
    b.channel = "slow-switch";
    b.cpu = "E-2288G";
    b.seed = 9;
    b.messageBits = 6;
    b.overrides["model.lcpStall"] = 4;

    TrialContext reused;
    const auto first = runExperiment(a, reused);
    const auto second = runExperiment(b, reused);
    const auto third = runExperiment(a, reused);

    EXPECT_EQ(jsonOf({first, second, third}),
              jsonOf({runExperiment(a), runExperiment(b),
                      runExperiment(a)}));
}

TEST(StreamingRunner, CallbackExceptionStopsAndPropagates)
{
    std::vector<ExperimentSpec> specs;
    ExperimentSpec spec;
    spec.channel = "nonmt-fast-eviction";
    spec.cpu = "Gold 6226";
    spec.messageBits = 4;
    for (ExperimentSpec &trial : expandTrials(spec, 24))
        specs.push_back(std::move(trial));

    std::size_t delivered = 0;
    EXPECT_THROW(
        ExperimentRunner(4).run(specs,
                                [&](const ExperimentResult &) {
                                    if (++delivered == 3)
                                        throw std::runtime_error("x");
                                }),
        std::runtime_error);
    EXPECT_EQ(delivered, 3u);
}

TEST(StreamingRunner, WorkersNeverOutrunTheReorderWindow)
{
    // The reorder window is what makes streaming memory-bound: a
    // worker may claim trial i only while i < delivered + window.
    // Install the claim probe, slow the consumer so workers pile up
    // against the window, and check the bound on every single claim.
    ExperimentSpec spec;
    spec.channel = "nonmt-fast-eviction";
    spec.cpu = "Gold 6226";
    spec.messageBits = 2;
    std::vector<ExperimentSpec> specs;
    ExperimentRunner runner(4);
    const std::size_t window = runner.reorderWindow();
    for (ExperimentSpec &trial :
         expandTrials(spec, static_cast<int>(window) + 40)) {
        specs.push_back(std::move(trial));
    }

    std::atomic<std::size_t> violations{0};
    std::atomic<std::size_t> maxLead{0};
    runner.setTrialProbe(
        [&](std::size_t index, std::size_t delivered) {
            if (index >= delivered + window)
                violations.fetch_add(1);
            const std::size_t lead =
                index > delivered ? index - delivered : 0;
            std::size_t seen = maxLead.load();
            while (lead > seen &&
                   !maxLead.compare_exchange_weak(seen, lead)) {
            }
        });

    std::size_t delivered = 0;
    runner.run(specs, [&](const ExperimentResult &res) {
        EXPECT_TRUE(res.ok);
        ++delivered;
        // A deliberately slow consumer: give workers every chance
        // to race ahead of delivery.
        if (delivered < 8)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });

    EXPECT_EQ(delivered, specs.size());
    EXPECT_EQ(violations.load(), 0u);
    // Sanity: the probe actually observed concurrency (workers got
    // ahead of the consumer at least once), so the bound above was
    // exercised rather than vacuous.
    EXPECT_GT(maxLead.load(), 0u);
    EXPECT_LT(maxLead.load(), window);
}

TEST(StreamingRunner, ProgramCacheOnAndOffAreBitIdentical)
{
    // The prepared-chain cache and the engine's per-trial chunk-table
    // reuse are pure memoisation: the registry-wide grid must render
    // the same bytes with both caching layers forced on and forced
    // off, at every thread count. (Default runs have them on; the
    // off-scope reproduces the rebuild-per-trial behavior.)
    const auto &specs = registryGrid();
    std::string cached_json;
    {
        ProgramCachingScope scope(true);
        cached_json = jsonOf(ExperimentRunner(1).run(specs));
    }
    for (const int threads : {1, 4, 8}) {
        {
            ProgramCachingScope scope(true);
            EXPECT_EQ(jsonOf(ExperimentRunner(threads).run(specs)),
                      cached_json)
                << "cache on, threads=" << threads;
        }
        {
            ProgramCachingScope scope(false);
            EXPECT_EQ(jsonOf(ExperimentRunner(threads).run(specs)),
                      cached_json)
                << "cache off, threads=" << threads;
        }
    }
}

/** Registry-wide quiet grid: every noise knob forced to zero so the
 *  RNG tripwire stays untripped and warm snapshots engage; several
 *  trials per cell so later trials actually restore instead of
 *  calibrating. */
std::vector<ExperimentSpec>
quietSnapshotGrid()
{
    std::vector<ExperimentSpec> specs;
    for (const std::string &channel : allChannelNames()) {
        for (const char *cpu : {"Gold 6226", "E-2288G"}) {
            ExperimentSpec spec;
            spec.channel = channel;
            spec.cpu = cpu;
            spec.seed = 29;
            spec.messageBits = 4;
            spec.overrides = {
                {"model.noiseStddevCycles", 0},
                {"model.spikeProb", 0},
                {"model.jitterPerKcycle", 0},
                {"model.sgxEntryJitterStddev", 0},
                {"model.raplNoiseStddevMicroJoules", 0},
                {"sgxRounds", 400},
                {"powerRounds", 800},
            };
            for (ExperimentSpec &trial : expandTrials(spec, 3))
                specs.push_back(std::move(trial));
        }
    }
    return specs;
}

TEST(StreamingRunner, SnapshotCacheOnAndOffAreBitIdentical)
{
    // The warm-snapshot cache must be pure memoisation: quiet cells
    // (where snapshots engage) and noisy cells (where the tripwire
    // forces a transparent bypass) must both render the same bytes
    // with the cache forced on and forced off, at every thread count.
    // registryGrid() runs with default (non-zero) model noise plus a
    // handful of environment-noise cells — all of it must bypass.
    const auto quiet = quietSnapshotGrid();
    auto noisy = registryGrid();
    for (std::size_t i = 0; i < noisy.size(); i += 7)
        noisy[i].overrides["env.corunner_intensity"] = 0.5;

    std::string quiet_off;
    std::string noisy_off;
    {
        SnapshotCacheScope scope(false);
        quiet_off = jsonOf(ExperimentRunner(1).run(quiet));
        noisy_off = jsonOf(ExperimentRunner(1).run(noisy));
    }

    for (const int threads : {1, 4, 8}) {
        SnapshotCacheScope scope(true);
        clearWarmSnapshotCache();
        const std::uint64_t hits = snapshotCacheHits();
        const std::uint64_t bypasses = snapshotCacheBypasses();
        EXPECT_EQ(jsonOf(ExperimentRunner(threads).run(quiet)),
                  quiet_off)
            << "snapshots on (quiet), threads=" << threads;
        EXPECT_EQ(jsonOf(ExperimentRunner(threads).run(noisy)),
                  noisy_off)
            << "snapshots on (noisy), threads=" << threads;
        if (threads == 1) {
            // Single-threaded the traffic is deterministic: trials
            // 2..3 of every quiet cell restore, and every noisy trial
            // after its cell's first calibrates under a negative
            // entry. (Racing workers can turn hits into extra misses,
            // so only the 1-thread counts are exact.)
            EXPECT_GT(snapshotCacheHits(), hits);
            EXPECT_GT(snapshotCacheBypasses(), bypasses);
        }
    }

    // Leave no cross-test coupling behind: later tests must not see
    // snapshots captured under this test's grids.
    clearWarmSnapshotCache();
}

TEST(StreamingRunner, CountersOnAndOffAreBitIdentical)
{
    // The obs::CounterSet hooks are purely observational: the
    // registry-wide grid must render the same bytes with counter
    // collection forced on and forced off, at every thread count —
    // the per-trial snapshots land only in ExperimentResult::counters,
    // which no standard sink serializes. This is the overhead
    // contract's correctness half (the 2% throughput half gates in
    // BENCH_runner_throughput.json).
    const auto &specs = registryGrid();
    std::string off_json;
    {
        obs::CounterScope scope(false);
        off_json = jsonOf(ExperimentRunner(1).run(specs));
    }
    for (const int threads : {1, 4, 8}) {
        {
            obs::CounterScope scope(true);
            const auto results = ExperimentRunner(threads).run(specs);
            EXPECT_EQ(jsonOf(results), off_json)
                << "counters on, threads=" << threads;
            // And the snapshots themselves are there for ok trials.
            for (const ExperimentResult &res : results) {
                EXPECT_EQ(res.counters != nullptr, res.ok)
                    << res.spec.channel;
            }
        }
        {
            obs::CounterScope scope(false);
            const auto results = ExperimentRunner(threads).run(specs);
            EXPECT_EQ(jsonOf(results), off_json)
                << "counters off, threads=" << threads;
            for (const ExperimentResult &res : results)
                EXPECT_EQ(res.counters, nullptr);
        }
    }
}

TEST(ResolveTrial, ErrorsSkipsAndSuccessesAreDistinguished)
{
    TrialContext ctx;
    bool skipped = true;

    ExperimentSpec good;
    good.channel = "nonmt-fast-eviction";
    good.cpu = "Gold 6226";
    EXPECT_EQ(resolveTrial(good, ctx, &skipped), "");
    EXPECT_FALSE(skipped);
    EXPECT_TRUE(ctx.bound());
    EXPECT_EQ(ctx.model().name, "Gold 6226");
    EXPECT_EQ(ctx.config().d, 6); // registry default for eviction

    ExperimentSpec skip;
    skip.channel = "mt-eviction";
    skip.cpu = "E-2288G"; // SMT disabled
    EXPECT_NE(resolveTrial(skip, ctx, &skipped), "");
    EXPECT_TRUE(skipped);

    ExperimentSpec bad;
    bad.channel = "nonmt-fast-eviction";
    bad.cpu = "Gold 6226";
    bad.overrides["model.deadlock_kcycles"] = 0;
    const std::string error = resolveTrial(bad, ctx, &skipped);
    EXPECT_NE(error.find("deadlock_kcycles"), std::string::npos);
    EXPECT_FALSE(skipped);

    // The defense's model-level mitigations land in the context's
    // model copy (the resolution pipeline's documented order).
    ExperimentSpec defended = good;
    defended.overrides["defense.rapl_quantum_uj"] = 4096;
    EXPECT_EQ(resolveTrial(defended, ctx, &skipped), "");
    EXPECT_GE(ctx.model().rapl.quantumMicroJoules, 4096.0);
}

TEST(SweepAccumulator, MatchesAggregateSweepOnAShardedSweep)
{
    SweepSpec sweep;
    sweep.channels = {"nonmt-fast-eviction", "mt-eviction"};
    sweep.cpus = {"Gold 6226", "E-2288G"};
    sweep.axes = {{"d", {2, 6}},
                  {"env.corunner_intensity", {0.0, 0.5}}};
    sweep.trials = 3;
    sweep.messageBits = 6;
    sweep.seed = 23;

    const auto results = runSweep(sweep, ExperimentRunner(4));
    const auto batch_cells = aggregateSweep(results);

    SweepAccumulator accumulator;
    for (const ExperimentResult &res : results)
        accumulator.add(res);
    EXPECT_EQ(accumulator.resultCount(), results.size());

    const auto &cells = accumulator.cells();
    ASSERT_EQ(cells.size(), batch_cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
        EXPECT_EQ(cells[c].label, batch_cells[c].label);
        EXPECT_EQ(cells[c].channel, batch_cells[c].channel);
        EXPECT_EQ(cells[c].cpu, batch_cells[c].cpu);
        EXPECT_EQ(cells[c].overrides, batch_cells[c].overrides);
        EXPECT_EQ(cells[c].trials, batch_cells[c].trials);
        EXPECT_EQ(cells[c].okTrials, batch_cells[c].okTrials);
        EXPECT_EQ(cells[c].skippedTrials,
                  batch_cells[c].skippedTrials);
        EXPECT_EQ(cells[c].errorRate.mean(),
                  batch_cells[c].errorRate.mean());
        EXPECT_EQ(cells[c].errorRate.stddev(),
                  batch_cells[c].errorRate.stddev());
        EXPECT_EQ(cells[c].transmissionKbps.mean(),
                  batch_cells[c].transmissionKbps.mean());
        EXPECT_EQ(cells[c].capacityKbps.mean(),
                  batch_cells[c].capacityKbps.mean());
    }

    // The summary sink streams through the same accumulator: row-by-
    // row feeding must render the same bytes as the batch call.
    SweepSummarySink streamed("t");
    std::ostringstream streamed_os;
    streamed.writeHeader(streamed_os);
    for (const ExperimentResult &res : results)
        streamed.writeRow(res, streamed_os);
    streamed.writeFooter(streamed_os);
    EXPECT_EQ(streamed_os.str(), SweepSummarySink("t").render(results));
}

} // namespace
} // namespace lf
