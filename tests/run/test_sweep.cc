/**
 * @file
 * Sweep-engine tests: cartesian expansion order and labels, shard
 * partitioning (the union of all shards is exactly the full grid,
 * seeds included), trial-seed decorrelation, spec validation, cell
 * aggregation, and "model." CPU-knob overrides.
 */

#include <gtest/gtest.h>

#include <set>

#include "run/sweep.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

SweepSpec
smallGrid()
{
    SweepSpec sweep;
    sweep.channels = {"nonmt-fast-eviction", "slow-switch"};
    sweep.cpus = {"Gold 6226", "E-2288G"};
    sweep.axes = {{"rounds", {5, 10, 20}}};
    sweep.seed = 11;
    sweep.messageBits = 8;
    return sweep;
}

bool
sameSpec(const ExperimentSpec &a, const ExperimentSpec &b)
{
    return a.channel == b.channel && a.cpu == b.cpu &&
        a.seed == b.seed && a.trial == b.trial && a.label == b.label &&
        a.pattern == b.pattern && a.messageBits == b.messageBits &&
        a.preambleBits == b.preambleBits && a.overrides == b.overrides;
}

TEST(SweepExpansion, CellCountAndOrder)
{
    const SweepSpec sweep = smallGrid();
    EXPECT_EQ(sweepCellCount(sweep), 12u);

    const auto batch = expandSweep(sweep);
    ASSERT_EQ(batch.size(), 12u);
    // Channel-major, then CPU, then the axis (last axis fastest).
    EXPECT_EQ(batch[0].channel, "nonmt-fast-eviction");
    EXPECT_EQ(batch[0].cpu, "Gold 6226");
    EXPECT_EQ(batch[0].overrides.at("rounds"), 5);
    EXPECT_EQ(batch[1].overrides.at("rounds"), 10);
    EXPECT_EQ(batch[3].cpu, "E-2288G");
    EXPECT_EQ(batch[6].channel, "slow-switch");
    // Cell 0 keeps the sweep's base seed.
    EXPECT_EQ(batch[0].seed, 11u);
}

TEST(SweepExpansion, AutoLabelsNameTheVaryingDimensions)
{
    const auto batch = expandSweep(smallGrid());
    EXPECT_EQ(batch[0].label, "nonmt-fast-eviction rounds=5");
    EXPECT_EQ(batch[7].label, "slow-switch rounds=10");

    SweepSpec fixed = smallGrid();
    fixed.label = "row A";
    for (const ExperimentSpec &spec : expandSweep(fixed))
        EXPECT_EQ(spec.label, "row A");

    // A one-channel, no-axis sweep labels cells by channel name.
    SweepSpec plain;
    plain.channels = {"slow-switch"};
    plain.cpus = {"Gold 6226"};
    EXPECT_EQ(expandSweep(plain)[0].label, "slow-switch");
}

TEST(SweepExpansion, ShardsPartitionTheGridExactly)
{
    SweepSpec sweep = smallGrid();
    sweep.trials = 2;
    const auto full = expandSweep(sweep);

    // Round-robin: cell c goes to shard c % n, trials riding along.
    std::vector<std::vector<ExperimentSpec>> shards;
    std::size_t total = 0;
    for (int s = 0; s < 3; ++s) {
        shards.push_back(expandSweep(sweep, {s, 3}));
        total += shards.back().size();
    }
    ASSERT_EQ(total, full.size());

    std::vector<std::size_t> cursor(3, 0);
    for (std::size_t i = 0; i < full.size(); ++i) {
        const std::size_t cell = i / 2; // trials = 2
        const auto shard = static_cast<std::size_t>(cell % 3);
        ASSERT_LT(cursor[shard], shards[shard].size());
        EXPECT_TRUE(sameSpec(full[i], shards[shard][cursor[shard]]))
            << "row " << i;
        ++cursor[shard];
    }
}

TEST(SweepExpansion, SeedsAreUniqueAcrossCellsAndTrials)
{
    SweepSpec sweep = smallGrid();
    sweep.trials = 4;
    std::set<std::uint64_t> seeds;
    for (const ExperimentSpec &spec : expandSweep(sweep))
        seeds.insert(spec.seed);
    EXPECT_EQ(seeds.size(), 48u);
}

TEST(SweepValidation, RejectsBadGrids)
{
    SweepSpec sweep = smallGrid();
    sweep.channels.push_back("no-such-channel");
    EXPECT_NE(validateSweepSpec(sweep).find("unknown channel"),
              std::string::npos);

    sweep = smallGrid();
    sweep.cpus = {"no-such-cpu"};
    EXPECT_NE(validateSweepSpec(sweep).find("unknown CPU"),
              std::string::npos);

    sweep = smallGrid();
    sweep.axes.push_back({"bogusKnob", {1}});
    EXPECT_NE(validateSweepSpec(sweep).find("unknown sweep axis"),
              std::string::npos);

    sweep = smallGrid();
    sweep.axes.push_back({"rounds", {40}});
    EXPECT_NE(validateSweepSpec(sweep).find("duplicate sweep axis"),
              std::string::npos);

    sweep = smallGrid();
    sweep.baseOverrides["rounds"] = 30;
    EXPECT_NE(validateSweepSpec(sweep).find("both swept and set"),
              std::string::npos);

    sweep = smallGrid();
    sweep.axes[0].values.clear();
    EXPECT_NE(validateSweepSpec(sweep).find("no values"),
              std::string::npos);

    sweep = smallGrid();
    sweep.trials = 0;
    EXPECT_FALSE(validateSweepSpec(sweep).empty());

    EXPECT_TRUE(validateSweepSpec(smallGrid()).empty());
}

TEST(SweepValidation, RejectsBadShards)
{
    const SweepSpec sweep = smallGrid(); // 12 cells
    EXPECT_TRUE(validateSweepShard(sweep, {0, 1}).empty());
    EXPECT_TRUE(validateSweepShard(sweep, {11, 12}).empty());
    EXPECT_FALSE(validateSweepShard(sweep, {3, 3}).empty());
    EXPECT_FALSE(validateSweepShard(sweep, {-1, 3}).empty());
    EXPECT_FALSE(validateSweepShard(sweep, {0, 13}).empty());
}

TEST(SweepAggregation, GroupsTrialsIntoCells)
{
    SweepSpec sweep;
    sweep.channels = {"nonmt-fast-eviction"};
    sweep.cpus = {"E-2288G"};
    sweep.axes = {{"d", {4, 6}}};
    sweep.trials = 3;
    sweep.messageBits = 16;
    sweep.seed = 5;

    const auto results = runSweep(sweep, ExperimentRunner(2));
    ASSERT_EQ(results.size(), 6u);

    const auto cells = aggregateSweep(results);
    ASSERT_EQ(cells.size(), 2u);
    for (const SweepCellSummary &cell : cells) {
        EXPECT_EQ(cell.trials, 3);
        EXPECT_EQ(cell.okTrials, 3);
        EXPECT_EQ(cell.skippedTrials, 0);
        EXPECT_EQ(cell.failedTrials, 0);
        EXPECT_EQ(cell.errorRate.count(), 3u);
        EXPECT_GT(cell.transmissionKbps.mean(), 0.0);
        // Capacity and effective rate never exceed the raw rate.
        EXPECT_LE(cell.capacityKbps.mean(),
                  cell.transmissionKbps.mean() + 1e-9);
        EXPECT_LE(cell.effectiveKbps.mean(),
                  cell.transmissionKbps.mean() + 1e-9);
    }
    EXPECT_EQ(cells[0].overrides.at("d"), 4);
    EXPECT_EQ(cells[1].overrides.at("d"), 6);

    const std::string summary =
        SweepSummarySink("test").render(results);
    EXPECT_NE(summary.find("d=4"), std::string::npos);
    EXPECT_NE(summary.find("3/3"), std::string::npos);
}

TEST(SweepAggregation, SkippedAndFailedRowsAreCounted)
{
    std::vector<ExperimentSpec> specs;
    ExperimentSpec spec;
    spec.channel = "mt-eviction";
    spec.cpu = "E-2288G"; // SMT disabled -> skipped
    specs.push_back(spec);
    spec.overrides["bogus"] = 1; // -> failed
    specs.push_back(spec);

    const auto cells =
        aggregateSweep(ExperimentRunner(1).run(specs));
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].skippedTrials, 1);
    EXPECT_EQ(cells[1].failedTrials, 1);
    EXPECT_EQ(cells[0].okTrials + cells[1].okTrials, 0);
}

TEST(ModelOverrides, FreqGhzScalesTheChannelRate)
{
    ExperimentSpec spec;
    spec.channel = "nonmt-fast-eviction";
    spec.cpu = "E-2288G";
    spec.seed = 22;
    spec.messageBits = 40;

    spec.overrides["model.freqGhz"] = 2.0;
    const auto slow = runExperiment(spec);
    spec.overrides["model.freqGhz"] = 4.0;
    const auto fast = runExperiment(spec);
    ASSERT_TRUE(slow.ok);
    ASSERT_TRUE(fast.ok);
    EXPECT_NEAR(fast.result.transmissionKbps /
                    slow.result.transmissionKbps,
                2.0, 0.2);
}

TEST(ModelOverrides, SmtDisableSkipsMtChannels)
{
    ExperimentSpec spec;
    spec.channel = "mt-eviction";
    spec.cpu = "Gold 6226";
    spec.overrides["model.smtEnabled"] = 0;
    const auto res = runExperiment(spec);
    EXPECT_FALSE(res.ok);
    EXPECT_TRUE(res.skipped);
}

TEST(ModelOverrides, UnknownAndInvalidKeysBecomeErrorRows)
{
    ExperimentSpec spec;
    spec.channel = "slow-switch";
    spec.cpu = "Gold 6226";
    spec.overrides["model.bogus"] = 1;
    auto res = runExperiment(spec);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("unknown model override"),
              std::string::npos);

    spec.overrides.clear();
    spec.overrides["model.freqGhz"] = 0.0;
    res = runExperiment(spec);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("freqGhz"), std::string::npos);

    spec.overrides.clear();
    spec.overrides["model.spikeProb"] = 1.5;
    res = runExperiment(spec);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("spikeProb"), std::string::npos);
}

TEST(ModelOverrides, KeyListMatchesApplier)
{
    CpuModel scratch = gold6226();
    for (const std::string &key : modelOverrideKeys()) {
        EXPECT_TRUE(isModelOverrideKey(key)) << key;
        EXPECT_TRUE(applyModelOverride(scratch, key, 1.0)) << key;
    }
    EXPECT_FALSE(applyModelOverride(scratch, "model.nope", 1.0));
    EXPECT_FALSE(applyModelOverride(scratch, "freqGhz", 1.0));
}

TEST(EnvAxes, ExpandAndLabelLikeAnyOtherAxis)
{
    // env.* keys are first-class sweep dimensions: grid expansion,
    // auto-labels, and validation treat them exactly like the
    // ChannelConfig and model.* knobs.
    SweepSpec sweep;
    sweep.channels = {"nonmt-fast-eviction"};
    sweep.cpus = {"Gold 6226"};
    sweep.axes = {{"env.corunner_intensity", {0.0, 0.5, 1.0}}};
    EXPECT_EQ(validateSweepSpec(sweep), "");
    EXPECT_EQ(sweepCellCount(sweep), 3u);

    const auto batch = expandSweep(sweep);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[1].label, "env.corunner_intensity=0.5");
    EXPECT_EQ(batch[1].overrides.at("env.corunner_intensity"), 0.5);

    // Swept-and-set conflicts are caught like for any other key.
    sweep.baseOverrides["env.corunner_intensity"] = 0.2;
    EXPECT_NE(
        validateSweepSpec(sweep).find("env.corunner_intensity"),
        std::string::npos);
}

} // namespace
} // namespace lf
