/**
 * @file
 * Runner observation hooks: setTrialProbe(), setStatsSink(), and
 * setMetricsSink(). These are the diagnostic surface the throughput
 * bench and lf_run's --metrics export sit on, so the contract — every
 * trial observed exactly once, sinks overwritten (not accumulated) at
 * the end of each run, totals that add up — gets pinned here.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "obs/metrics.hh"
#include "run/runner.hh"

namespace lf {
namespace {

/** A small mixed batch: mostly ok trials, one error row (d=0 is
 *  rejected by config validation), one skipped row (an MT channel on
 *  the SMT-disabled E-2288G). */
std::vector<ExperimentSpec>
mixedBatch(int trials)
{
    ExperimentSpec base;
    base.channel = "nonmt-fast-eviction";
    base.cpu = "Gold 6226";
    base.seed = 29;
    base.messageBits = 4;
    base.preambleBits = 4;
    std::vector<ExperimentSpec> specs = expandTrials(base, trials - 2);

    ExperimentSpec error = base;
    error.overrides["d"] = 0;
    specs.insert(specs.begin() + 1, error);

    ExperimentSpec skipped = base;
    skipped.channel = "mt-eviction";
    skipped.cpu = "E-2288G";
    specs.push_back(skipped);
    return specs;
}

TEST(TrialProbe, SeesEveryIndexExactlyOnceAtEveryThreadCount)
{
    const auto specs = mixedBatch(12);
    for (const int threads : {1, 4}) {
        ExperimentRunner runner(threads);
        std::mutex mutex;
        std::multiset<std::size_t> seen;
        runner.setTrialProbe(
            [&](std::size_t index, std::size_t delivered) {
                std::lock_guard<std::mutex> lock(mutex);
                EXPECT_LT(index,
                          delivered + runner.reorderWindow())
                    << "threads=" << threads;
                seen.insert(index);
            });
        runner.run(specs);
        ASSERT_EQ(seen.size(), specs.size()) << "threads=" << threads;
        for (std::size_t i = 0; i < specs.size(); ++i)
            EXPECT_EQ(seen.count(i), 1u)
                << "index " << i << ", threads=" << threads;
    }
}

TEST(TrialProbe, SingleThreadRunsInOrderWithDeliveredEqualToIndex)
{
    const auto specs = mixedBatch(8);
    ExperimentRunner runner(1);
    std::vector<std::size_t> order;
    runner.setTrialProbe(
        [&](std::size_t index, std::size_t delivered) {
            EXPECT_EQ(delivered, index);
            order.push_back(index);
        });
    runner.run(specs);
    std::vector<std::size_t> expected(specs.size());
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(order, expected);
}

TEST(StatsSink, SingleThreadNeverParksAndSinkIsOverwritten)
{
    const auto specs = mixedBatch(6);
    ExperimentRunner runner(1);
    StreamStats stats;
    stats.workerParks = 999; // sentinel: run() must overwrite
    stats.consumerParks = 999;
    stats.wakeBroadcasts = 999;
    runner.setStatsSink(&stats);
    runner.run(specs);
    EXPECT_EQ(stats.workerParks, 0u);
    EXPECT_EQ(stats.consumerParks, 0u);
    EXPECT_EQ(stats.wakeBroadcasts, 0u);
}

TEST(StatsSink, SubWindowBatchNeedsNoWorkerParksOrBroadcasts)
{
    // A batch smaller than the reorder window can never block a
    // worker on slot recycling, so no slot-free broadcast is ever
    // needed either (broadcasts are only sent while a worker parks).
    ExperimentRunner runner(4);
    const auto specs = mixedBatch(8);
    ASSERT_LT(specs.size(), runner.reorderWindow());
    StreamStats stats;
    runner.setStatsSink(&stats);
    runner.run(specs);
    EXPECT_EQ(stats.workerParks, 0u);
    EXPECT_EQ(stats.wakeBroadcasts, 0u);
}

TEST(MetricsSink, TotalsAddUpAndHistogramCoversEveryTrial)
{
    const auto specs = mixedBatch(20);
    for (const int threads : {1, 4}) {
        ExperimentRunner runner(threads);
        obs::RunMetrics m;
        runner.setMetricsSink(&m);
        runner.run(specs);

        EXPECT_EQ(m.trials, specs.size()) << "threads=" << threads;
        EXPECT_EQ(m.okTrials + m.errorTrials + m.skippedTrials,
                  m.trials)
            << "threads=" << threads;
        EXPECT_EQ(m.errorTrials, 1u) << "threads=" << threads;
        EXPECT_EQ(m.skippedTrials, 1u) << "threads=" << threads;
        EXPECT_GE(m.workers, 1);
        EXPECT_LE(m.workers, threads);
        EXPECT_GT(m.seconds, 0.0);
        EXPECT_GT(m.trialsPerSec, 0.0);
        EXPECT_EQ(m.reorderWindow,
                  ExperimentRunner::reorderWindowFor(m.workers));
        std::uint64_t histogram_total = 0;
        for (const std::uint64_t bucket : m.windowOccupancy)
            histogram_total += bucket;
        EXPECT_EQ(histogram_total, m.trials)
            << "threads=" << threads;
        EXPECT_GT(m.preparedCacheHits + m.preparedCacheMisses, 0u)
            << "threads=" << threads;
    }
}

TEST(MetricsSink, EmptyBatchLeavesTheSinkUntouched)
{
    ExperimentRunner runner(4);
    obs::RunMetrics m;
    m.trials = 123; // sentinel: the empty-batch early return must
                    // not report
    runner.setMetricsSink(&m);
    runner.run(std::vector<ExperimentSpec>{});
    EXPECT_EQ(m.trials, 123u);
}

TEST(MetricsSink, SinkIsOverwrittenNotAccumulatedAcrossRuns)
{
    ExperimentRunner runner(2);
    obs::RunMetrics m;
    runner.setMetricsSink(&m);
    runner.run(mixedBatch(12));
    EXPECT_EQ(m.trials, 12u);
    runner.run(mixedBatch(6));
    EXPECT_EQ(m.trials, 6u);
}

} // namespace
} // namespace lf
