/**
 * @file
 * ExperimentRunner tests: trial expansion and seeding are
 * deterministic, and a batch produces bit-identical results (and
 * byte-identical sink output) at 1, 2, and 8 worker threads.
 */

#include <gtest/gtest.h>

#include <set>

#include "run/runner.hh"
#include "run/sinks.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

std::vector<ExperimentSpec>
sampleBatch()
{
    std::vector<ExperimentSpec> specs;

    ExperimentSpec spec;
    spec.channel = "nonmt-fast-eviction";
    spec.cpu = "Gold 6226";
    spec.seed = 101;
    spec.messageBits = 16;
    specs.push_back(spec);

    spec.channel = "nonmt-stealthy-misalignment";
    spec.cpu = "E-2286G";
    spec.seed = 102;
    specs.push_back(spec);

    spec.channel = "mt-eviction";
    spec.cpu = "E-2174G";
    spec.seed = 103;
    spec.overrides["d"] = 4;
    specs.push_back(spec);

    // Unsupported pair: must come back skipped, in order.
    spec.channel = "mt-eviction";
    spec.cpu = "E-2288G";
    spec.seed = 104;
    specs.push_back(spec);

    spec = ExperimentSpec{};
    spec.channel = "slow-switch";
    spec.cpu = "E-2288G";
    spec.seed = 105;
    spec.messageBits = 16;
    spec.pattern = MessagePattern::Random;
    specs.push_back(spec);

    return specs;
}

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.skipped, b.skipped);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.spec.channel, b.spec.channel);
    EXPECT_EQ(a.spec.seed, b.spec.seed);
    // Bit-identical payload: exact floating-point equality intended.
    EXPECT_EQ(a.result.sent, b.result.sent);
    EXPECT_EQ(a.result.received, b.result.received);
    EXPECT_EQ(a.result.errorRate, b.result.errorRate);
    EXPECT_EQ(a.result.transmissionKbps, b.result.transmissionKbps);
    EXPECT_EQ(a.result.seconds, b.result.seconds);
    EXPECT_EQ(a.result.meanObs0, b.result.meanObs0);
    EXPECT_EQ(a.result.meanObs1, b.result.meanObs1);
    EXPECT_EQ(a.result.seed, b.result.seed);
    EXPECT_EQ(a.result.preambleBits, b.result.preambleBits);
}

TEST(TrialSeeding, TrialZeroKeepsBaseSeed)
{
    EXPECT_EQ(deriveTrialSeed(42, 0), 42u);
}

TEST(TrialSeeding, TrialsAreDecorrelated)
{
    std::set<std::uint64_t> seeds;
    for (int t = 0; t < 64; ++t)
        seeds.insert(deriveTrialSeed(42, t));
    EXPECT_EQ(seeds.size(), 64u);
}

TEST(TrialSeeding, ExpandTrialsSetsIndexAndSeed)
{
    ExperimentSpec spec;
    spec.channel = "slow-switch";
    spec.cpu = "Gold 6226";
    spec.seed = 9;
    const auto expanded = expandTrials(spec, 4);
    ASSERT_EQ(expanded.size(), 4u);
    for (int t = 0; t < 4; ++t) {
        EXPECT_EQ(expanded[static_cast<std::size_t>(t)].trial, t);
        EXPECT_EQ(expanded[static_cast<std::size_t>(t)].seed,
                  deriveTrialSeed(9, t));
    }
}

TEST(ExperimentRunner, ValidatesBadSpecs)
{
    ExperimentSpec spec;
    spec.channel = "no-such-channel";
    spec.cpu = "Gold 6226";
    const auto res = ExperimentRunner(1).run({spec});
    ASSERT_EQ(res.size(), 1u);
    EXPECT_FALSE(res[0].ok);
    EXPECT_FALSE(res[0].skipped);
    EXPECT_NE(res[0].error.find("unknown channel"), std::string::npos);

    spec.channel = "slow-switch";
    spec.cpu = "no-such-cpu";
    const auto res2 = ExperimentRunner(1).run({spec});
    EXPECT_FALSE(res2[0].ok);
    EXPECT_NE(res2[0].error.find("unknown CPU"), std::string::npos);

    // A bad override key must become an error row, not kill the
    // worker pool.
    spec.cpu = "Gold 6226";
    spec.overrides["bogusKnob"] = 1;
    const auto res3 = ExperimentRunner(4).run({spec});
    EXPECT_FALSE(res3[0].ok);
    EXPECT_NE(res3[0].error.find("unknown config override"),
              std::string::npos);
    spec.overrides.clear();

    // Same for an unusably short preamble.
    spec.preambleBits = 1;
    const auto res4 = ExperimentRunner(4).run({spec});
    EXPECT_FALSE(res4[0].ok);
    EXPECT_NE(res4[0].error.find("preamble too short"),
              std::string::npos);
    spec.preambleBits = -1;

    // Out-of-range values that would trip channel-constructor asserts
    // must also become error rows.
    spec.channel = "nonmt-fast-eviction";
    spec.overrides["d"] = 0;
    const auto res5 = ExperimentRunner(4).run({spec});
    EXPECT_FALSE(res5[0].ok);
    EXPECT_NE(res5[0].error.find("out of range"), std::string::npos);

    spec.channel = "nonmt-fast-misalignment";
    spec.overrides["d"] = 8; // default M = 8: misalignment needs M > d.
    const auto res6 = ExperimentRunner(4).run({spec});
    EXPECT_FALSE(res6[0].ok);
    EXPECT_NE(res6[0].error.find("M > d"), std::string::npos);

    spec.channel = "mt-eviction";
    spec.cpu = "Gold 6226";
    spec.overrides.clear();
    spec.overrides["targetSet"] = 3;
    const auto res7 = ExperimentRunner(4).run({spec});
    EXPECT_FALSE(res7[0].ok);
    EXPECT_NE(res7[0].error.find("targetSet >= 16"),
              std::string::npos);
}

TEST(ExperimentRunner, EmptyBatch)
{
    EXPECT_TRUE(ExperimentRunner(4).run({}).empty());
}

TEST(ExperimentRunner, ThreadCountResolves)
{
    EXPECT_GE(ExperimentRunner(0).threads(), 1);
    EXPECT_EQ(ExperimentRunner(3).threads(), 3);
}

TEST(ExperimentRunner, DeterministicAcrossThreadCounts)
{
    const auto specs = sampleBatch();

    const auto base = ExperimentRunner(1).runTrials(specs, 3);
    ASSERT_EQ(base.size(), specs.size() * 3);

    for (int threads : {2, 8}) {
        const auto other =
            ExperimentRunner(threads).runTrials(specs, 3);
        ASSERT_EQ(other.size(), base.size()) << threads;
        for (std::size_t i = 0; i < base.size(); ++i)
            expectIdentical(base[i], other[i]);
    }
}

TEST(ExperimentRunner, SinkOutputByteIdenticalAcrossThreadCounts)
{
    const auto specs = sampleBatch();
    const std::string json1 =
        JsonSink("t").render(ExperimentRunner(1).run(specs));
    const std::string json8 =
        JsonSink("t").render(ExperimentRunner(8).run(specs));
    EXPECT_EQ(json1, json8);

    const std::string csv1 =
        CsvSink().render(ExperimentRunner(1).run(specs));
    const std::string csv8 =
        CsvSink().render(ExperimentRunner(8).run(specs));
    EXPECT_EQ(csv1, csv8);
}

TEST(ExperimentRunner, SkippedPairReportsCleanly)
{
    ExperimentSpec spec;
    spec.channel = "mt-eviction";
    spec.cpu = "E-2288G"; // SMT disabled.
    const auto res = ExperimentRunner(2).run({spec});
    ASSERT_EQ(res.size(), 1u);
    EXPECT_FALSE(res[0].ok);
    EXPECT_TRUE(res[0].skipped);
    EXPECT_NE(res[0].error.find("not supported"), std::string::npos);
}

TEST(Sinks, BenchJsonFileName)
{
    EXPECT_EQ(benchJsonFileName("table3"), "BENCH_table3.json");
}

} // namespace
} // namespace lf
