/**
 * @file
 * Golden-file regression tests for the CSV / JSON / sweep-summary
 * sinks: the schema and field ordering of the serialized formats are
 * locked against checked-in golden files under tests/run/golden/.
 *
 * The batch is synthetic (hand-built ok / failed / skipped rows, no
 * simulation), so the goldens only change when the serialization
 * itself changes. Refresh them after an intentional format change
 * with:
 *
 *   lf_run_test_golden_sinks --update-golden     (or set
 *   LF_UPDATE_GOLDEN=1)
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "run/sweep.hh"

namespace lf {
namespace {

bool update_golden = false;

std::string
goldenDir()
{
#ifdef LF_SOURCE_ROOT
    return std::string(LF_SOURCE_ROOT) + "/tests/run/golden/";
#else
    return "tests/run/golden/";
#endif
}

std::vector<ExperimentResult>
syntheticBatch()
{
    std::vector<ExperimentResult> results;

    ExperimentResult ok;
    ok.spec.channel = "nonmt-fast-eviction";
    ok.spec.cpu = "Gold 6226";
    ok.spec.seed = 7;
    ok.spec.trial = 0;
    ok.spec.label = "golden cell";
    ok.spec.pattern = MessagePattern::Alternating;
    ok.spec.messageBits = 4;
    ok.spec.preambleBits = 6;
    ok.spec.overrides = {{"d", 3.0}, {"model.jitterPerKcycle", 0.5}};
    ok.ok = true;
    ok.result.channelName = "nonmt-fast-eviction";
    ok.result.cpuName = "Gold 6226";
    ok.result.seed = 7;
    ok.result.preambleBits = 6;
    ok.result.config = defaultChannelConfig("nonmt-fast-eviction");
    ok.result.config.d = 3;
    ok.result.sent = {true, false, true, false};
    ok.result.received = {true, false, false, false};
    ok.result.errorRate = 0.25;
    ok.result.transmissionKbps = 123.456;
    ok.result.seconds = 0.0125;
    ok.result.meanObs0 = 100.5;
    ok.result.meanObs1 = 140.25;
    ok.extras = channelInfo("nonmt-fast-eviction").defaultExtras;
    results.push_back(ok);

    // Second trial of the same cell, so the summary sink aggregates.
    ExperimentResult ok2 = ok;
    ok2.spec.trial = 1;
    ok2.spec.seed = 8;
    ok2.result.seed = 8;
    ok2.result.errorRate = 0.5;
    ok2.result.transmissionKbps = 100.0;
    ok2.result.received = {false, true, false, true};
    results.push_back(ok2);

    ExperimentResult failed;
    failed.spec.channel = "slow-switch";
    failed.spec.cpu = "E-2288G";
    failed.spec.seed = 9;
    failed.spec.label = "bad, \"quoted\" label";
    failed.ok = false;
    failed.error = "unknown config override \"bogus\"";
    results.push_back(failed);

    ExperimentResult skipped;
    skipped.spec.channel = "mt-eviction";
    skipped.spec.cpu = "E-2288G";
    skipped.spec.seed = 10;
    skipped.skipped = true;
    skipped.error = "channel mt-eviction not supported on E-2288G";
    results.push_back(skipped);

    return results;
}

void
checkGolden(const std::string &name, const std::string &rendered)
{
    const std::string path = goldenDir() + name;
    if (update_golden) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << rendered;
        ASSERT_TRUE(out.good());
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (regenerate with --update-golden)";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(rendered, expected.str())
        << "schema drift vs " << path
        << " — if intentional, refresh with --update-golden";
}

TEST(GoldenSinks, Csv)
{
    checkGolden("results.csv.golden",
                CsvSink().render(syntheticBatch()));
}

TEST(GoldenSinks, Json)
{
    checkGolden("results.json.golden",
                JsonSink("golden").render(syntheticBatch()));
}

TEST(GoldenSinks, SweepSummary)
{
    checkGolden("sweep_summary.txt.golden",
                SweepSummarySink("golden summary")
                    .render(syntheticBatch()));
}

} // namespace
} // namespace lf

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden")
            lf::update_golden = true;
    }
    if (const char *env = std::getenv("LF_UPDATE_GOLDEN")) {
        if (env[0] != '\0' && env[0] != '0')
            lf::update_golden = true;
    }
    return RUN_ALL_TESTS();
}
