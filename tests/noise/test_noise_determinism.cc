/**
 * @file
 * Determinism contract of the environment model under the run layer:
 * a noisy EnvironmentSpec must not cost any of the reproducibility
 * guarantees the runner and sweep engine provide. Same seed + same
 * spec => identical ChannelResults across 1/4/8 worker threads and
 * across --shard slices, and an all-zero EnvironmentSpec is
 * bit-identical to the legacy no-environment path for every registry
 * channel.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "run/sinks.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

/** A noisy sweep exercising every environment source at once. */
SweepSpec
noisySweep()
{
    SweepSpec sweep;
    sweep.channels = {"nonmt-fast-eviction", "slow-switch",
                      "power-eviction"};
    sweep.cpus = {gold6226().name, xeonE2288G().name};
    sweep.axes = {{"env.corunner_intensity", {0.0, 0.6}},
                  {"env.sched_preempt_prob", {0.0, 0.05}}};
    sweep.baseOverrides["env.timer_noise_cycles"] = 4.0;
    sweep.baseOverrides["env.rapl_noise_uj"] = 0.2;
    sweep.baseOverrides["powerRounds"] = 2000;
    sweep.trials = 2;
    sweep.messageBits = 12;
    sweep.seed = 9;
    return sweep;
}

TEST(NoiseDeterminism, ThreadCountNeverChangesTheBytes)
{
    const SweepSpec sweep = noisySweep();
    const auto one = runSweep(sweep, ExperimentRunner(1));
    const auto four = runSweep(sweep, ExperimentRunner(4));
    const auto eight = runSweep(sweep, ExperimentRunner(8));
    const std::string json1 = JsonSink("t").render(one);
    EXPECT_EQ(json1, JsonSink("t").render(four));
    EXPECT_EQ(json1, JsonSink("t").render(eight));
}

TEST(NoiseDeterminism, ShardsReproduceTheFullRunExactly)
{
    const SweepSpec sweep = noisySweep();
    const ExperimentRunner runner(4);
    const auto full = runSweep(sweep, runner);

    // Interleave the shard batches back in full-grid cell order and
    // compare the serialized bytes row for row.
    constexpr int kShards = 3;
    std::vector<std::vector<ExperimentResult>> shards;
    for (int i = 0; i < kShards; ++i)
        shards.push_back(runSweep(sweep, runner, {i, kShards}));

    std::size_t total = 0;
    for (const auto &shard : shards)
        total += shard.size();
    ASSERT_EQ(total, full.size());

    std::vector<std::size_t> next(kShards, 0);
    std::vector<ExperimentResult> merged;
    const std::size_t per_cell =
        static_cast<std::size_t>(sweep.trials);
    for (std::size_t cell = 0; merged.size() < full.size(); ++cell) {
        auto &shard = shards[cell % kShards];
        std::size_t &pos = next[cell % kShards];
        ASSERT_LE(pos + per_cell, shard.size() + 0);
        for (std::size_t t = 0; t < per_cell; ++t)
            merged.push_back(shard[pos++]);
    }
    EXPECT_EQ(JsonSink("t").render(merged),
              JsonSink("t").render(full));
}

TEST(NoiseDeterminism, RerunBitIdentity)
{
    const SweepSpec sweep = noisySweep();
    const ExperimentRunner runner(4);
    EXPECT_EQ(JsonSink("t").render(runSweep(sweep, runner)),
              JsonSink("t").render(runSweep(sweep, runner)));
}

TEST(NoiseDeterminism,
     ZeroEnvironmentMatchesLegacyPathForEveryChannel)
{
    // Every registry channel on one supported CPU each: explicit
    // all-zero env.* overrides against no env keys at all. The
    // ChannelResults must agree bit for bit (the specs differ only
    // in their override maps).
    std::vector<ExperimentSpec> plain;
    std::vector<ExperimentSpec> zeroed;
    for (const std::string &channel : allChannelNames()) {
        const CpuModel *cpu = nullptr;
        for (const CpuModel *candidate : allCpuModels()) {
            if (channelSupportedOn(channel, *candidate)) {
                cpu = candidate;
                break;
            }
        }
        ASSERT_NE(cpu, nullptr) << channel;
        ExperimentSpec spec;
        spec.channel = channel;
        spec.cpu = cpu->name;
        spec.seed = 21;
        spec.messageBits = 6;
        // Keep the slow amplified channels quick.
        spec.overrides["powerRounds"] = 2000;
        spec.overrides["sgxRounds"] = 500;
        spec.overrides["sgxMtSteps"] = 10;
        plain.push_back(spec);
        spec.overrides["env.corunner_intensity"] = 0.0;
        spec.overrides["env.sched_preempt_prob"] = 0.0;
        spec.overrides["env.sched_jitter_cycles"] = 0.0;
        spec.overrides["env.timer_quantum_cycles"] = 0.0;
        spec.overrides["env.timer_noise_cycles"] = 0.0;
        spec.overrides["env.rapl_noise_uj"] = 0.0;
        spec.overrides["env.rapl_drift_uj"] = 0.0;
        zeroed.push_back(spec);
    }
    const ExperimentRunner runner(4);
    const auto expect = runner.run(plain);
    const auto got = runner.run(zeroed);
    ASSERT_EQ(expect.size(), got.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        const ChannelResult &a = expect[i].result;
        const ChannelResult &b = got[i].result;
        ASSERT_EQ(expect[i].ok, got[i].ok)
            << expect[i].spec.channel;
        EXPECT_EQ(a.received, b.received) << a.channelName;
        EXPECT_EQ(a.errorRate, b.errorRate) << a.channelName;
        EXPECT_EQ(a.transmissionKbps, b.transmissionKbps)
            << a.channelName;
        EXPECT_EQ(a.seconds, b.seconds) << a.channelName;
        EXPECT_EQ(a.meanObs0, b.meanObs0) << a.channelName;
        EXPECT_EQ(a.meanObs1, b.meanObs1) << a.channelName;
    }
}

} // namespace
} // namespace lf
