/**
 * @file
 * Environment model unit tests: "env." override parsing and
 * validation, quiet-spec detection, no-op guarantees of a quiet
 * Environment, determinism of the perturbation streams, the
 * zero-noise identity with the legacy no-environment transmit path,
 * the repetition/majority decode hook, and the error-vs-interference
 * direction the subsystem exists to produce.
 */

#include <gtest/gtest.h>

#include "core/nonmt_channels.hh"
#include "core/trial_context.hh"
#include "noise/environment.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

std::vector<bool>
altMessage(std::size_t bits)
{
    std::vector<bool> msg(bits);
    for (std::size_t i = 0; i < bits; ++i)
        msg[i] = (i % 2) == 1;
    return msg;
}

TEST(EnvOverrides, EveryAdvertisedKeyApplies)
{
    EnvironmentSpec spec;
    for (const std::string &key : envOverrideKeys()) {
        EXPECT_TRUE(isEnvOverrideKey(key)) << key;
        EXPECT_TRUE(applyEnvOverride(spec, key, 0.5)) << key;
    }
}

TEST(EnvOverrides, UnknownKeysRejected)
{
    EnvironmentSpec spec;
    EXPECT_FALSE(applyEnvOverride(spec, "env.bogus", 1.0));
    EXPECT_FALSE(applyEnvOverride(spec, "corunner_intensity", 1.0));
    EXPECT_FALSE(applyEnvOverride(spec, "model.freqGhz", 1.0));
    EXPECT_TRUE(isEnvOverrideKey("env.bogus")); // prefix only
    EXPECT_FALSE(isEnvOverrideKey("environment.x"));
    EXPECT_FALSE(isEnvOverrideKey("model.freqGhz"));
}

TEST(EnvOverrides, KeysReachTheirFields)
{
    EnvironmentSpec spec;
    ASSERT_TRUE(applyEnvOverride(spec, "env.corunner_intensity", 0.7));
    ASSERT_TRUE(applyEnvOverride(spec, "env.corunner_evictions", 9));
    ASSERT_TRUE(applyEnvOverride(spec, "env.sched_preempt_prob", 0.1));
    ASSERT_TRUE(applyEnvOverride(spec, "env.timer_quantum_cycles", 64));
    ASSERT_TRUE(applyEnvOverride(spec, "env.rapl_drift_uj", 0.25));
    EXPECT_EQ(spec.corunner.intensity, 0.7);
    EXPECT_EQ(spec.corunner.evictionsPerSlot, 9);
    EXPECT_EQ(spec.scheduler.preemptProb, 0.1);
    EXPECT_EQ(spec.timer.quantumCycles, 64.0);
    EXPECT_EQ(spec.power.driftStepUj, 0.25);
}

TEST(EnvValidation, RangesEnforced)
{
    EnvironmentSpec spec;
    EXPECT_EQ(validateEnvironmentSpec(spec), "");
    spec.corunner.intensity = 1.5;
    EXPECT_NE(validateEnvironmentSpec(spec), "");
    spec.corunner.intensity = -0.1;
    EXPECT_NE(validateEnvironmentSpec(spec), "");
    spec.corunner.intensity = 1.0;
    EXPECT_EQ(validateEnvironmentSpec(spec), "");

    spec.scheduler.preemptProb = 2.0;
    EXPECT_NE(validateEnvironmentSpec(spec), "");
    spec.scheduler.preemptProb = 0.0;
    spec.timer.noiseStddevCycles = -1.0;
    EXPECT_NE(validateEnvironmentSpec(spec), "");
}

TEST(EnvQuiet, DefaultSpecIsQuietAndShapeKnobsStayQuiet)
{
    EnvironmentSpec spec;
    EXPECT_TRUE(spec.quiet());
    // Shape knobs without an activating source keep the spec quiet.
    spec.corunner.evictionsPerSlot = 100;
    spec.corunner.slowdownFrac = 0.5;
    spec.scheduler.quantumCycles = 1e6;
    spec.corunner.powerStddevUj = 50.0;
    EXPECT_TRUE(spec.quiet());
    // Each activating knob unquiets it.
    for (const char *key :
         {"env.corunner_intensity", "env.sched_preempt_prob",
          "env.sched_jitter_cycles", "env.timer_quantum_cycles",
          "env.timer_noise_cycles", "env.rapl_noise_uj",
          "env.rapl_drift_uj"}) {
        EnvironmentSpec active;
        ASSERT_TRUE(applyEnvOverride(active, key, 0.5)) << key;
        EXPECT_FALSE(active.quiet()) << key;
    }
}

TEST(EnvQuiet, QuietHooksAreExactNoOps)
{
    Environment env; // default-constructed = quiet
    EXPECT_TRUE(env.quiet());
    EXPECT_EQ(env.perturbTiming(1234.5), 1234.5);
    EXPECT_EQ(env.perturbPower(0.75), 0.75);

    Core core(gold6226(), 7);
    const Cycles before = core.cycle();
    env.beginSlot(core);
    EXPECT_EQ(core.cycle(), before);
    EXPECT_EQ(env.slots(), 0u);
}

TEST(EnvDeterminism, SameSeedSamePerturbationStream)
{
    EnvironmentSpec spec;
    spec.timer.noiseStddevCycles = 5.0;
    spec.power.noiseStddevUj = 0.5;
    Environment a(spec, 99);
    Environment b(spec, 99);
    Environment c(spec, 100);
    bool any_differs = false;
    for (int i = 0; i < 50; ++i) {
        const double ta = a.perturbTiming(1000.0);
        EXPECT_EQ(ta, b.perturbTiming(1000.0));
        if (ta != c.perturbTiming(1000.0))
            any_differs = true;
    }
    EXPECT_TRUE(any_differs); // different trial seed, different stream
}

TEST(EnvDeterminism, EnvironmentSeedDecorrelatedFromCoreSeed)
{
    // The env RNG must not alias the Core noise RNG's seed expansion.
    EXPECT_NE(deriveEnvironmentSeed(1), 1u);
    EXPECT_NE(deriveEnvironmentSeed(1), deriveEnvironmentSeed(2));
}

TEST(EnvIdentity, ZeroNoiseEnvironmentMatchesDefaultContext)
{
    // Two identically seeded contexts: one with the default (quiet)
    // environment, one with an explicitly-bound all-zero
    // EnvironmentSpec. Every result field must match bit for bit.
    ChannelConfig cfg;
    const auto msg = altMessage(60);

    TrialContext plain_ctx(gold6226(), 33);
    NonMtEvictionChannel plain(plain_ctx.core(), cfg);
    const ChannelResult expect = plain.transmit(msg, plain_ctx);

    TrialContext env_ctx(gold6226(), 33, EnvironmentSpec{});
    NonMtEvictionChannel with_env(env_ctx.core(), cfg);
    const ChannelResult got = with_env.transmit(msg, env_ctx);

    EXPECT_EQ(got.received, expect.received);
    EXPECT_EQ(got.errorRate, expect.errorRate);
    EXPECT_EQ(got.transmissionKbps, expect.transmissionKbps);
    EXPECT_EQ(got.seconds, expect.seconds);
    EXPECT_EQ(got.meanObs0, expect.meanObs0);
    EXPECT_EQ(got.meanObs1, expect.meanObs1);
}

TEST(EnvSweep, UnknownEnvAxisRejectedBySweepValidation)
{
    SweepSpec sweep;
    sweep.channels = {"nonmt-fast-eviction"};
    sweep.cpus = {gold6226().name};
    sweep.axes = {{"env.bogus", {0.0, 1.0}}};
    EXPECT_NE(validateSweepSpec(sweep).find("env.bogus"),
              std::string::npos);

    sweep.axes = {{"env.corunner_intensity", {0.0, 1.0}}};
    EXPECT_EQ(validateSweepSpec(sweep), "");
}

TEST(EnvSpecResolution, ErrorsComeBackAsErrorRowsNotAborts)
{
    ExperimentSpec spec;
    spec.channel = "nonmt-fast-eviction";
    spec.cpu = gold6226().name;
    spec.overrides["env.corunner_intensity"] = 2.0; // out of range
    const ExperimentResult res = runExperiment(spec);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.skipped);
    EXPECT_NE(res.error.find("env.corunner_intensity"),
              std::string::npos);

    spec.overrides.clear();
    spec.overrides["env.nonsense"] = 1.0;
    const ExperimentResult res2 = runExperiment(spec);
    EXPECT_FALSE(res2.ok);
    EXPECT_NE(res2.error.find("env.nonsense"), std::string::npos);
}

TEST(Repetition, EvenOrNonPositiveFactorsRejected)
{
    ExperimentSpec spec;
    spec.channel = "nonmt-fast-eviction";
    spec.cpu = gold6226().name;
    spec.overrides["repetition"] = 2;
    EXPECT_NE(validateSpec(spec).find("repetition"),
              std::string::npos);
    spec.overrides["repetition"] = 0;
    EXPECT_NE(validateSpec(spec).find("repetition"),
              std::string::npos);
    spec.overrides["repetition"] = 3;
    EXPECT_EQ(validateSpec(spec), "");
}

TEST(Repetition, TriplingRepetitionDividesTheRateByThree)
{
    auto run_with = [](int repetition) {
        ExperimentSpec spec;
        spec.channel = "nonmt-fast-eviction";
        spec.cpu = gold6226().name;
        spec.seed = 5;
        spec.messageBits = 30;
        spec.overrides["repetition"] = repetition;
        const ExperimentResult res = runExperiment(spec);
        EXPECT_TRUE(res.ok) << res.error;
        return res.result;
    };
    const ChannelResult r1 = run_with(1);
    const ChannelResult r3 = run_with(3);
    EXPECT_NEAR(r1.transmissionKbps / r3.transmissionKbps, 3.0, 0.05);
    // On a calibrated-noise (near-floor) channel the vote never makes
    // decoding worse.
    EXPECT_LE(r3.errorRate, r1.errorRate + 0.02);
}

TEST(EnvDirection, CorunnerIntensityDegradesTheChannel)
{
    // The acceptance direction: a loud co-runner must raise the
    // error rate well above the quiet point.
    SweepSpec sweep;
    sweep.channels = {"nonmt-fast-eviction"};
    sweep.cpus = {gold6226().name};
    sweep.axes = {{"env.corunner_intensity", {0.0, 1.0}}};
    sweep.trials = 3;
    sweep.messageBits = 60;
    sweep.seed = 77;
    const auto cells =
        aggregateSweep(runSweep(sweep, ExperimentRunner()));
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_GT(cells[1].errorRate.mean(),
              cells[0].errorRate.mean() + 0.05);
}

} // namespace
} // namespace lf
