/** @file Tests for the x86-lite ISA, assembler, and mix blocks. */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/mix_block.hh"
#include "isa/program.hh"

namespace lf {
namespace {

TEST(Instruction, DefaultEncodings)
{
    EXPECT_EQ(defaultLength(Opcode::MOV_RR), 5);
    EXPECT_EQ(defaultLength(Opcode::JMP), 5);
    EXPECT_EQ(defaultLength(Opcode::ADD_RR), 3);
    EXPECT_EQ(defaultLength(Opcode::ADD_LCP), 4); // 0x66 prefix byte
    EXPECT_EQ(defaultUops(Opcode::STORE), 2);
    EXPECT_EQ(defaultUops(Opcode::MOV_RR), 1);
}

TEST(Instruction, Predicates)
{
    StaticInst jmp;
    jmp.op = Opcode::JMP;
    EXPECT_TRUE(jmp.isBranch());
    EXPECT_FALSE(jmp.isCondBranch());
    StaticInst jcc;
    jcc.op = Opcode::JCC;
    EXPECT_TRUE(jcc.isCondBranch());
    StaticInst load;
    load.op = Opcode::LOAD;
    EXPECT_TRUE(load.isMem());
}

TEST(Assembler, SequentialLayout)
{
    Assembler as(0x1000);
    const Addr a = as.mov();
    const Addr b = as.mov();
    EXPECT_EQ(a, 0x1000u);
    EXPECT_EQ(b, 0x1005u);
    EXPECT_EQ(as.cursor(), 0x100au);
}

TEST(Assembler, AlignAndOrg)
{
    Assembler as(0x1001);
    as.align(32);
    EXPECT_EQ(as.cursor(), 0x1020u);
    as.org(0x2000);
    EXPECT_EQ(as.cursor(), 0x2000u);
}

TEST(Program, LookupAndEntry)
{
    Assembler as(0x1000);
    as.mov();
    as.jmp(0x1000);
    Program p = as.take();
    EXPECT_EQ(p.numInsts(), 2u);
    EXPECT_NE(p.at(0x1000), nullptr);
    EXPECT_EQ(p.at(0x1001), nullptr);
    EXPECT_EQ(p.entry(), 0x1000u);
    p.setEntry(0x1005);
    EXPECT_EQ(p.entry(), 0x1005u);
}

TEST(Program, OverlapPanics)
{
    Assembler as(0x1000);
    as.mov(); // bytes 0x1000-0x1004
    Program &p = as.program();
    StaticInst inside;
    inside.op = Opcode::NOP;
    inside.addr = 0x1002;
    inside.length = 1;
    EXPECT_DEATH(p.add(inside), "overlaps");
}

TEST(Program, CondFn)
{
    Program p;
    p.setCondFn([](int id, std::uint64_t count) {
        return id == 1 && count < 3;
    });
    EXPECT_TRUE(p.evalCond(1, 0));
    EXPECT_FALSE(p.evalCond(1, 3));
    EXPECT_FALSE(p.evalCond(0, 0));
    Program unset;
    EXPECT_FALSE(unset.evalCond(0, 0));
}

TEST(Program, TotalsAndSpan)
{
    Assembler as(0x1000);
    as.mov();
    as.store(0x9000);
    Program p = as.take();
    EXPECT_EQ(p.totalUops(), 3u);
    EXPECT_EQ(p.byteSpan(), 9u);
}

TEST(MixBlock, CanonicalInvariants)
{
    const auto chain = buildMixBlockChain(0x400000, 7, {{0, false}});
    // 4 mov + 1 jmp: 25 bytes, 5 uops (Sec. IV-D).
    EXPECT_EQ(chain.program.numInsts(), 5u);
    EXPECT_EQ(chain.program.totalUops(), 5u);
    EXPECT_EQ(chain.program.byteSpan(), 25u);
    EXPECT_EQ(chain.instsPerIteration, 5u);
}

TEST(MixBlock, ChainLinksAndLoops)
{
    const auto chain = buildMixBlockChain(
        0x400000, 3, {{0, false}, {1, false}, {2, false}});
    ASSERT_EQ(chain.blockStarts.size(), 3u);
    // Each block's jmp targets the next block; the last loops back.
    for (std::size_t i = 0; i < 3; ++i) {
        const Addr jmp_addr = chain.blockStarts[i] + 20;
        const StaticInst *jmp = chain.program.at(jmp_addr);
        ASSERT_NE(jmp, nullptr);
        EXPECT_EQ(jmp->op, Opcode::JMP);
        EXPECT_EQ(jmp->target, chain.blockStarts[(i + 1) % 3]);
    }
}

TEST(MixBlock, SinglePassEndsInHalt)
{
    const auto pass =
        buildMixBlockPass(0x400000, 3, {{0, false}, {1, false}});
    const StaticInst *last_jmp =
        pass.program.at(pass.blockStarts[1] + 20);
    ASSERT_NE(last_jmp, nullptr);
    const StaticInst *halt = pass.program.at(last_jmp->target);
    ASSERT_NE(halt, nullptr);
    EXPECT_TRUE(halt->isHalt());
}

TEST(MixBlock, MisalignmentOffsets)
{
    const auto chain =
        buildMixBlockChain(0x400000, 4, {{0, true}, {1, false}});
    EXPECT_EQ(chain.blockStarts[0] % 32, kMisalignOffset);
    EXPECT_EQ(chain.blockStarts[1] % 32, 0u);
}

TEST(MixBlock, AlignedMisalignedHelper)
{
    const auto chain =
        buildAlignedMisalignedChain(0x400000, 2, 3, 2);
    ASSERT_EQ(chain.blockStarts.size(), 5u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(chain.blockStarts[static_cast<size_t>(i)] % 32, 0u);
    for (int i = 3; i < 5; ++i)
        EXPECT_EQ(chain.blockStarts[static_cast<size_t>(i)] % 32, 16u);
}

TEST(MixBlock, NopLoopShape)
{
    const auto loop = buildNopLoop(0x100000, 100);
    // 100 one-byte nops + 5-byte jmp = 105 bytes: two i-cache lines.
    EXPECT_EQ(loop.program.byteSpan(), 105u);
    EXPECT_EQ(loop.program.totalUops(), 101u);
    EXPECT_EQ(loop.instsPerIteration, 101u);
}

TEST(MixBlock, LcpLoopPatterns)
{
    const auto mixed = buildLcpAddLoop(0x100000, LcpPattern::Mixed, 16);
    const auto ordered =
        buildLcpAddLoop(0x200000, LcpPattern::Ordered, 16);
    EXPECT_EQ(mixed.program.numInsts(), 33u);
    EXPECT_EQ(ordered.program.numInsts(), 33u);
    EXPECT_EQ(mixed.instsPerIteration, 33u);

    // Mixed alternates LCP; ordered front-loads plain adds.
    int mixed_lcp = 0;
    int ordered_lcp = 0;
    for (const StaticInst *inst : mixed.program.instructions())
        mixed_lcp += inst->lcp;
    for (const StaticInst *inst : ordered.program.instructions())
        ordered_lcp += inst->lcp;
    EXPECT_EQ(mixed_lcp, 16);
    EXPECT_EQ(ordered_lcp, 16);
    // First instruction: plain in both; second: LCP only in mixed.
    const auto mixed_insts = mixed.program.instructions();
    EXPECT_FALSE(mixed_insts[0]->lcp);
    EXPECT_TRUE(mixed_insts[1]->lcp);
    const auto ordered_insts = ordered.program.instructions();
    EXPECT_FALSE(ordered_insts[1]->lcp);
}

class SetMappingSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SetMappingSweep, AllBlocksAliasTheTargetSet)
{
    const int set = GetParam();
    std::vector<BlockSpec> specs;
    for (int w = 0; w < 8; ++w)
        specs.push_back({w, false});
    const auto chain = buildMixBlockChain(0x400000, set, specs);
    for (Addr start : chain.blockStarts)
        EXPECT_EQ(dsbSetOf(start), static_cast<std::uint64_t>(set));
}

INSTANTIATE_TEST_SUITE_P(Sets, SetMappingSweep,
                         ::testing::Range(0, 32, 1));

} // namespace
} // namespace lf
