/**
 * @file
 * Warm-snapshot unit tests: the RNG-draw tripwire must fire exactly
 * when a trial's environment/defense/model is stochastic, the
 * reported preamble length must be identical on the cold and the
 * restore path, and the cache accounting must follow the
 * miss -> hit / miss -> bypass state machine. (The registry-wide
 * bit-identity contract lives in tests/run/test_streaming.cc.)
 */

#include <gtest/gtest.h>

#include "core/channel_registry.hh"
#include "core/trial_context.hh"
#include "run/experiment.hh"
#include "sim/snapshot.hh"

namespace lf {
namespace {

/** A quiet cell: every model-noise knob zeroed, default (quiet)
 *  environment, no defense — calibration must not draw. */
ExperimentSpec
quietSpec()
{
    ExperimentSpec spec;
    spec.channel = "nonmt-fast-eviction";
    spec.cpu = "Gold 6226";
    spec.seed = 11;
    spec.messageBits = 4;
    spec.overrides = {
        {"model.noiseStddevCycles", 0},
        {"model.spikeProb", 0},
        {"model.jitterPerKcycle", 0},
        {"model.sgxEntryJitterStddev", 0},
        {"model.raplNoiseStddevMicroJoules", 0},
    };
    return spec;
}

/** Resolve @p spec and run just the calibration phase. */
CovertChannel::Calibration
calibrationOf(const ExperimentSpec &spec, TrialContext &ctx)
{
    EXPECT_EQ(resolveTrial(spec, ctx), "");
    auto channel = makeChannel(spec.channel, ctx);
    return channel->calibrate(ctx);
}

TEST(SnapshotTripwire, QuietConfigurationLeavesRngUntouched)
{
    TrialContext ctx;
    const auto calib = calibrationOf(quietSpec(), ctx);
    EXPECT_TRUE(calib.rngUntouched);
}

TEST(SnapshotTripwire, ModelNoiseTrips)
{
    // The CPU models' default timing noise is non-zero: without the
    // zeroing overrides every measurement draws.
    ExperimentSpec spec = quietSpec();
    spec.overrides.clear();
    TrialContext ctx;
    EXPECT_FALSE(calibrationOf(spec, ctx).rngUntouched);
}

TEST(SnapshotTripwire, StochasticEnvironmentTrips)
{
    ExperimentSpec spec = quietSpec();
    spec.overrides["env.corunner_intensity"] = 0.5;
    TrialContext ctx;
    EXPECT_FALSE(calibrationOf(spec, ctx).rngUntouched);
}

TEST(SnapshotTripwire, StochasticDefenseTrips)
{
    ExperimentSpec spec = quietSpec();
    spec.overrides["defense.randomize_sets"] = 1;
    spec.overrides["defense.randomize_epoch_slots"] = 1;
    TrialContext ctx;
    EXPECT_FALSE(calibrationOf(spec, ctx).rngUntouched);
}

TEST(SnapshotTripwire, DeterministicDefenseDoesNotTrip)
{
    // A defense with only deterministic mitigations (static DSB
    // partitioning) reconfigures the machine but never draws: those
    // cells stay snapshottable.
    ExperimentSpec spec = quietSpec();
    spec.overrides["defense.partition_dsb"] = 1;
    TrialContext ctx;
    EXPECT_TRUE(calibrationOf(spec, ctx).rngUntouched);
}

TEST(SnapshotCache, PreambleBitsIdenticalOnColdAndRestorePaths)
{
    SnapshotCacheScope scope(true);
    clearWarmSnapshotCache();

    ExperimentSpec spec = quietSpec();
    spec.preambleBits = 32;

    // Trial 0 calibrates cold and publishes; trial 1 restores.
    const std::uint64_t hits = snapshotCacheHits();
    const auto cold = runExperiment(spec);
    spec.trial = 1;
    spec.seed = deriveTrialSeed(spec.seed, 1);
    const auto warm = runExperiment(spec);
    ASSERT_TRUE(cold.ok);
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(snapshotCacheHits(), hits + 1);

    EXPECT_EQ(cold.result.preambleBits, 32);
    EXPECT_EQ(warm.result.preambleBits, 32);
    EXPECT_EQ(cold.result.meanObs0, warm.result.meanObs0);
    EXPECT_EQ(cold.result.meanObs1, warm.result.meanObs1);
    // The per-trial identity still comes from the trial, not the
    // snapshot donor.
    EXPECT_EQ(warm.result.seed, spec.seed);

    clearWarmSnapshotCache();
}

TEST(SnapshotCache, MissThenHitAndMissThenBypassAccounting)
{
    SnapshotCacheScope scope(true);
    clearWarmSnapshotCache();

    const std::uint64_t hits = snapshotCacheHits();
    const std::uint64_t misses = snapshotCacheMisses();
    const std::uint64_t bypasses = snapshotCacheBypasses();

    // Quiet cell: miss, then hit.
    for (ExperimentSpec &trial : expandTrials(quietSpec(), 2))
        ASSERT_TRUE(runExperiment(trial).ok);
    EXPECT_EQ(snapshotCacheMisses(), misses + 1);
    EXPECT_EQ(snapshotCacheHits(), hits + 1);
    EXPECT_EQ(snapshotCacheBypasses(), bypasses);

    // Stochastic cell: miss marks a negative entry, then bypass.
    ExperimentSpec noisy = quietSpec();
    noisy.overrides["env.corunner_intensity"] = 0.5;
    for (ExperimentSpec &trial : expandTrials(noisy, 2))
        ASSERT_TRUE(runExperiment(trial).ok);
    EXPECT_EQ(snapshotCacheMisses(), misses + 2);
    EXPECT_EQ(snapshotCacheHits(), hits + 1);
    EXPECT_EQ(snapshotCacheBypasses(), bypasses + 1);

    // Disabled: no lookups, no accounting.
    {
        SnapshotCacheScope off(false);
        ASSERT_TRUE(runExperiment(quietSpec()).ok);
    }
    EXPECT_EQ(snapshotCacheMisses(), misses + 2);
    EXPECT_EQ(snapshotCacheHits(), hits + 1);

    clearWarmSnapshotCache();
}

} // namespace
} // namespace lf
