/** @file Tests for the Core, CPU models, TSC noise, and RAPL. */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "isa/mix_block.hh"
#include "power/energy_model.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"
#include "sim/executor.hh"

namespace lf {
namespace {

TEST(CpuModels, TableOneProperties)
{
    EXPECT_EQ(allCpuModels().size(), 4u);
    EXPECT_EQ(smtCpuModels().size(), 3u);
    EXPECT_EQ(sgxCpuModels().size(), 3u);

    EXPECT_TRUE(gold6226().lsdEnabled());
    EXPECT_FALSE(gold6226().sgx.supported);
    EXPECT_FALSE(xeonE2174G().lsdEnabled());
    EXPECT_FALSE(xeonE2286G().lsdEnabled());
    EXPECT_TRUE(xeonE2288G().lsdEnabled());
    EXPECT_FALSE(xeonE2288G().smtEnabled); // Azure instance
    EXPECT_DOUBLE_EQ(gold6226().freqGhz, 2.7);
    EXPECT_DOUBLE_EQ(xeonE2286G().freqGhz, 4.0);
}

TEST(CpuModels, LookupByName)
{
    EXPECT_EQ(&cpuModelByName("Gold 6226"), &gold6226());
    EXPECT_EQ(&cpuModelByName("E-2288G"), &xeonE2288G());
}

TEST(Core, RunUntilRetiredCountsExactly)
{
    Core core(gold6226());
    const auto loop = buildNopLoop(0x100000, 20);
    core.setProgram(0, &loop.program);
    const auto before = core.counters(0).retiredInsts;
    core.runUntilRetired(0, 63);
    EXPECT_GE(core.counters(0).retiredInsts - before, 63u);
}

TEST(Core, HaltedThreadPanicsOnRetirementTarget)
{
    Core core(gold6226());
    Assembler as(0x1000);
    as.mov();
    as.halt();
    Program p = as.take();
    core.setProgram(0, &p);
    core.runUntilRetired(0, 1);
    EXPECT_DEATH(core.runUntilRetired(0, 5), "halted");
}

TEST(Core, NoisyMeasurementStatistics)
{
    Core core(gold6226(), 5);
    OnlineStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(core.noisyMeasurement(1000.0));
    // Mean = true + overhead (plus small spike inflation).
    const double expected =
        1000.0 + static_cast<double>(gold6226().noise.tscOverhead);
    EXPECT_NEAR(stats.mean(), expected, 12.0);
    EXPECT_GT(stats.stddev(), 3.0);
}

TEST(Core, SecondsOfUsesModelFrequency)
{
    Core core(gold6226());
    EXPECT_DOUBLE_EQ(core.secondsOf(2.7e9), 1.0);
    Core fast(xeonE2286G());
    EXPECT_DOUBLE_EQ(fast.secondsOf(4.0e9), 1.0);
}

TEST(Core, RaplAccumulatesEnergy)
{
    Core core(gold6226(), 3);
    const auto loop = buildNopLoop(0x100000, 100);
    core.setProgram(0, &loop.program);
    const MicroJoules e0 = core.readRapl();
    core.runCycles(2'000'000); // many RAPL intervals
    const MicroJoules e1 = core.readRapl();
    EXPECT_GT(e1, e0);
    // Sanity: implied power in a plausible package band.
    const double watts =
        (e1 - e0) * 1e-6 / core.secondsOf(2'000'000.0);
    EXPECT_GT(watts, 30.0);
    EXPECT_LT(watts, 100.0);
}

TEST(Core, EnclaveTransitionAdvancesTimeAndFlushes)
{
    Core core(xeonE2174G(), 4);
    const auto loop = buildNopLoop(0x100000, 100);
    core.setProgram(0, &loop.program);
    runLoopIters(core, 0, loop, 10);
    const Cycles before = core.cycle();
    core.enclaveTransition(0);
    EXPECT_GT(core.cycle() - before, 1000u);
    EXPECT_EQ(core.frontend().idqOccupancy(0), 0);
}

TEST(EnergyModel, PathOrdering)
{
    const EnergyModel model(EnergyParams{}, 2.7);
    PerfCounters lsd;
    lsd.uopsLsd = 1000;
    PerfCounters dsb;
    dsb.uopsDsb = 1000;
    PerfCounters mite;
    mite.uopsMite = 1000;
    const Cycles window = 500;
    EXPECT_LT(model.energyOf(lsd, window), model.energyOf(dsb, window));
    EXPECT_LT(model.energyOf(dsb, window), model.energyOf(mite, window));
}

TEST(EnergyModel, StaticPowerDominatesIdle)
{
    const EnergyModel model(EnergyParams{}, 2.7);
    const PerfCounters idle;
    const double watts = model.averagePowerWatts(idle, 27000);
    EXPECT_NEAR(watts, EnergyParams{}.staticWatts, 1e-6);
}

TEST(Core, ResetIsBitIdenticalToConstruction)
{
    // Run a dirtying workload (programs bound, partition toggles,
    // noisy timing, RAPL reads), then reset to a new seed: every
    // subsequent observable must match a freshly constructed
    // Core(model, seed) exactly.
    const auto observe = [](Core &core) {
        const auto loop = buildNopLoop(0x100000, 50);
        core.setProgram(0, &loop.program);
        std::vector<double> obs;
        for (int i = 0; i < 5; ++i)
            obs.push_back(core.timedRun(0, 100));
        obs.push_back(core.readRapl());
        obs.push_back(static_cast<double>(core.cycle()));
        obs.push_back(
            static_cast<double>(core.counters(0).uopsDsb));
        return obs;
    };

    Core reused(gold6226(), 11);
    {
        std::vector<BlockSpec> specs;
        for (int i = 0; i < 9; ++i)
            specs.push_back({i, false});
        const auto dirty = buildMixBlockChain(0x400000, 5, specs);
        reused.setProgram(0, &dirty.program);
        reused.setStaticPartition(true);
        runLoopIters(reused, 0, dirty, 20);
        reused.readRapl();
        reused.clearProgram(0);
    }
    reused.reset(gold6226(), 77);

    Core fresh(gold6226(), 77);
    EXPECT_EQ(observe(reused), observe(fresh));

    // Resetting to a different model retunes the machine.
    reused.reset(xeonE2286G(), 5);
    Core fresh_fast(xeonE2286G(), 5);
    EXPECT_EQ(observe(reused), observe(fresh_fast));
    EXPECT_DOUBLE_EQ(reused.secondsOf(4.0e9), 1.0);
}

TEST(Core, DeadlockGuardUsesModelKnob)
{
    CpuModel model = gold6226();
    ASSERT_TRUE(applyModelOverride(model, "model.deadlock_kcycles", 2));
    EXPECT_EQ(model.deadlockKcycles, 2u);
    Core core(model, 1);
    // A 2-kcycle guard cannot cover a million retirements: the run
    // must be declared stuck by the model knob, not the old 50M
    // constant.
    const auto loop = buildNopLoop(0x100000, 50);
    core.setProgram(0, &loop.program);
    EXPECT_DEATH(core.runUntilRetired(0, 1'000'000), "stuck");
}

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DeterminismSweep, SameSeedSameTiming)
{
    auto run = [&] {
        Core core(gold6226(), GetParam());
        std::vector<BlockSpec> specs;
        for (int i = 0; i < 6; ++i)
            specs.push_back({i, false});
        const auto chain = buildMixBlockChain(0x400000, 5, specs);
        core.setProgram(0, &chain.program);
        runLoopIters(core, 0, chain, 50);
        return std::make_pair(core.cycle(),
                              core.counters(0).uopsLsd);
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(1, 7, 42, 1234));

} // namespace
} // namespace lf
