/** @file Tests for the simulated RAPL counter. */

#include <gtest/gtest.h>

#include <cmath>

#include "power/rapl.hh"

namespace lf {
namespace {

RaplParams
quietParams()
{
    RaplParams params;
    params.noiseStddevMicroJoules = 0.0;
    return params;
}

TEST(Rapl, IntervalInCycles)
{
    RaplCounter rapl(quietParams(), 2.0, Rng(1));
    // 50 us at 2 GHz = 100,000 cycles.
    EXPECT_EQ(rapl.updateIntervalCycles(), 100000u);
}

TEST(Rapl, NoRefreshBeforeIntervalBoundary)
{
    RaplCounter rapl(quietParams(), 2.0, Rng(1));
    rapl.accumulate(5000.0, 50000); // half an interval
    EXPECT_DOUBLE_EQ(rapl.read(50000), 0.0);
}

TEST(Rapl, RefreshAtBoundaryIsQuantized)
{
    RaplCounter rapl(quietParams(), 2.0, Rng(1));
    rapl.accumulate(5000.0, 200000); // two intervals
    const double value = rapl.read(200000);
    EXPECT_GT(value, 0.0);
    // Quantized to the 61 uJ unit.
    EXPECT_NEAR(value, std::floor(5000.0 / 61.0) * 61.0, 1e-9);
}

TEST(Rapl, LinearAttributionAcrossBoundary)
{
    RaplCounter rapl(quietParams(), 2.0, Rng(1));
    // 1000 uJ spread over [0, 150k): boundary at 100k sees 2/3.
    rapl.accumulate(1000.0, 150000);
    const double visible = rapl.read(150000);
    EXPECT_NEAR(visible, std::floor(1000.0 * 2.0 / 3.0 / 61.0) * 61.0,
                1e-9);
}

TEST(Rapl, MonotoneAcrossManyIntervals)
{
    RaplParams params = quietParams();
    RaplCounter rapl(params, 2.0, Rng(1));
    double last = 0.0;
    for (int i = 1; i <= 20; ++i) {
        rapl.accumulate(2000.0,
                        static_cast<Cycles>(i) * 100000);
        const double now = rapl.read(static_cast<Cycles>(i) * 100000);
        EXPECT_GE(now, last);
        last = now;
    }
}

TEST(Rapl, NoiseIsBounded)
{
    RaplParams params;
    params.noiseStddevMicroJoules = 8.0;
    RaplCounter rapl(params, 2.0, Rng(2));
    rapl.accumulate(100000.0, 200000);
    double sum = 0.0;
    for (int i = 0; i < 1000; ++i)
        sum += rapl.read(200000);
    // Mean of reads close to the quantized truth.
    EXPECT_NEAR(sum / 1000.0,
                std::floor(100000.0 / 61.0) * 61.0, 2.0);
}

TEST(Rapl, BackwardsAccumulationPanics)
{
    RaplCounter rapl(quietParams(), 2.0, Rng(1));
    rapl.accumulate(10.0, 1000);
    EXPECT_DEATH(rapl.accumulate(10.0, 500), "forward");
}

} // namespace
} // namespace lf
