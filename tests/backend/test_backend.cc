/** @file Tests for the backend consumer and the L1D model. */

#include <gtest/gtest.h>

#include "backend/l1d_cache.hh"
#include "isa/mix_block.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

TEST(Backend, RetiresInstructionCounts)
{
    Core core(gold6226());
    const auto loop = buildNopLoop(0x100000, 10);
    core.setProgram(0, &loop.program);
    core.runUntilRetired(0, 110); // 10 loop iterations
    EXPECT_GE(core.counters(0).retiredInsts, 110u);
    EXPECT_GE(core.counters(0).retiredUops, 110u);
}

TEST(Backend, SharedIssueServesBothThreads)
{
    Core core(gold6226());
    const auto a = buildNopLoop(0x100000, 50);
    const auto b = buildNopLoop(0x200000, 50);
    core.setProgram(0, &a.program);
    core.setProgram(1, &b.program);
    core.runCycles(5000);
    EXPECT_GT(core.counters(0).retiredInsts, 1000u);
    EXPECT_GT(core.counters(1).retiredInsts, 1000u);
    // Fair round-robin: shares within 20% of each other.
    const double ratio =
        static_cast<double>(core.counters(0).retiredInsts) /
        static_cast<double>(core.counters(1).retiredInsts);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.25);
}

TEST(L1dCache, HitAndL2Fill)
{
    L1dCache l1d;
    const auto miss = l1d.load(0x1000);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.latency, 40u); // L2 fill
    const auto hit = l1d.load(0x1000);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.latency, 4u);
}

TEST(L1dCache, ClflushForcesMemoryLatency)
{
    L1dCache l1d;
    l1d.load(0x2000);
    l1d.clflush(0x2000);
    EXPECT_FALSE(l1d.contains(0x2000));
    const auto reload = l1d.load(0x2000);
    EXPECT_FALSE(reload.hit);
    EXPECT_EQ(reload.latency, 200u);
    // A later (non-flushed) miss goes back to the L2 latency.
    l1d.load(0x3000);
}

TEST(L1dCache, EvictionBySetConflict)
{
    L1dCache l1d;
    // 64 sets * 64 B lines: stride 4096 aliases one set.
    for (int w = 0; w < 9; ++w)
        l1d.load(0x10000 + static_cast<Addr>(w) * 4096);
    EXPECT_FALSE(l1d.contains(0x10000)); // LRU way evicted
    EXPECT_TRUE(l1d.contains(0x10000 + 8 * 4096));
}

TEST(L1dCache, LruRank)
{
    L1dCache l1d;
    l1d.load(0x1000);
    l1d.load(0x1000 + 4096);
    l1d.load(0x1000 + 2 * 4096);
    EXPECT_EQ(l1d.lruRank(0x1000), 0);            // oldest
    EXPECT_EQ(l1d.lruRank(0x1000 + 2 * 4096), 2); // newest
    EXPECT_EQ(l1d.lruRank(0x99999000), -1);       // absent
    l1d.load(0x1000); // refresh
    EXPECT_EQ(l1d.lruRank(0x1000), 2);
}

TEST(L1dCache, MissRateAccounting)
{
    L1dCache l1d;
    l1d.load(0x1000);
    l1d.load(0x1000);
    l1d.load(0x1000);
    l1d.load(0x2000);
    EXPECT_DOUBLE_EQ(l1d.missRate(), 0.5);
    l1d.resetStats();
    EXPECT_EQ(l1d.accesses(), 0u);
    EXPECT_DOUBLE_EQ(l1d.missRate(), 0.0);
}

} // namespace
} // namespace lf
