/**
 * @file
 * Unit tests for the defense/mitigation model: spec validation and
 * override keys, the keyed DSB index mapping, MITE-only delivery,
 * the static partition pin, the flush-on-domain-switch hook, and the
 * worst-case observable padding.
 */

#include <gtest/gtest.h>

#include "defense/defense.hh"
#include "frontend/dsb.hh"
#include "frontend/params.hh"
#include "isa/mix_block.hh"
#include "sim/core.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

TEST(DefenseSpecTest, DefaultsAreInactive)
{
    DefenseSpec spec;
    EXPECT_TRUE(spec.inactive());
    EXPECT_EQ(validateDefenseSpec(spec), "");

    // Shape knobs alone do not activate.
    spec.randomize.epochSlots = 7;
    EXPECT_TRUE(spec.inactive());

    spec.randomize.enabled = true;
    EXPECT_FALSE(spec.inactive());
}

TEST(DefenseSpecTest, EveryActivatingKnobActivates)
{
    const auto activated = [](const std::string &key, double value) {
        DefenseSpec spec;
        EXPECT_TRUE(applyDefenseOverride(spec, key, value)) << key;
        return !spec.inactive();
    };
    EXPECT_TRUE(activated("defense.flush_switch_quantum", 4));
    EXPECT_TRUE(activated("defense.partition_dsb", 1));
    EXPECT_TRUE(activated("defense.partition_lsd", 1));
    EXPECT_TRUE(activated("defense.disable_dsb", 1));
    EXPECT_TRUE(activated("defense.randomize_sets", 1));
    EXPECT_TRUE(activated("defense.smoothing", 0.5));
    EXPECT_TRUE(activated("defense.rapl_quantum_uj", 1000));
    EXPECT_TRUE(activated("defense.rapl_interval_scale", 10));
}

TEST(DefenseSpecTest, Validation)
{
    DefenseSpec spec;
    spec.flush.switchQuantum = -1;
    EXPECT_NE(validateDefenseSpec(spec), "");
    spec = DefenseSpec{};
    spec.smoothing.strength = 1.5;
    EXPECT_NE(validateDefenseSpec(spec), "");
    spec = DefenseSpec{};
    spec.rapl.intervalScale = 0.5;
    EXPECT_NE(validateDefenseSpec(spec), "");
    spec = DefenseSpec{};
    spec.randomize.epochSlots = 0;
    EXPECT_NE(validateDefenseSpec(spec), "");
    spec = DefenseSpec{};
    spec.rapl.quantumUj = -1.0;
    EXPECT_NE(validateDefenseSpec(spec), "");
}

TEST(DefenseSpecTest, OverrideKeyTableMatchesApplier)
{
    // Every advertised key is accepted, carries the prefix, and is
    // distinct; unknown keys are rejected.
    const auto keys = defenseOverrideKeys();
    EXPECT_FALSE(keys.empty());
    for (const std::string &key : keys) {
        DefenseSpec spec;
        EXPECT_TRUE(isDefenseOverrideKey(key)) << key;
        EXPECT_TRUE(applyDefenseOverride(spec, key, 1.0)) << key;
    }
    DefenseSpec spec;
    EXPECT_FALSE(applyDefenseOverride(spec, "defense.bogus", 1.0));
    EXPECT_TRUE(isDefenseOverrideKey("defense.bogus"));
    EXPECT_FALSE(isDefenseOverrideKey("env.corunner_intensity"));
    EXPECT_FALSE(isDefenseOverrideKey("d"));
}

TEST(DefenseSpecTest, ModelCoarsening)
{
    const CpuModel base = gold6226();
    CpuModel model = base;
    applyDefenseToModel(model, DefenseSpec{});
    EXPECT_EQ(model.rapl.quantumMicroJoules,
              base.rapl.quantumMicroJoules);
    EXPECT_EQ(model.rapl.updateIntervalUs,
              base.rapl.updateIntervalUs);

    DefenseSpec spec;
    spec.rapl.quantumUj = 5000.0;
    spec.rapl.intervalScale = 8.0;
    applyDefenseToModel(model, spec);
    EXPECT_EQ(model.rapl.quantumMicroJoules, 5000.0);
    EXPECT_EQ(model.rapl.updateIntervalUs,
              base.rapl.updateIntervalUs * 8.0);

    // The quantum only coarsens; a defense below the native unit
    // keeps the native unit.
    CpuModel fine = base;
    spec.rapl.quantumUj = 1.0;
    spec.rapl.intervalScale = 1.0;
    applyDefenseToModel(fine, spec);
    EXPECT_EQ(fine.rapl.quantumMicroJoules,
              base.rapl.quantumMicroJoules);
}

TEST(DsbSaltTest, ZeroSaltIsTheLegacyMapping)
{
    FrontendParams params;
    Dsb dsb(params);
    for (Addr key : {Addr{0x400000 + 20 * 32}, Addr{0x800280},
                     Addr{0xC0000020}}) {
        EXPECT_EQ(dsb.setOf(0, key),
                  static_cast<int>((key >> 5) & 31));
    }
}

TEST(DsbSaltTest, SaltScattersTagsAndInvalidatesMovedLines)
{
    FrontendParams params;
    Dsb dsb(params);
    // Same window index, different tags: collide under the legacy
    // mapping.
    const Addr a = 0x400000 + 20 * 32;
    const Addr b = 0x800000 + 20 * 32;
    ASSERT_EQ(dsb.setOf(0, a), dsb.setOf(0, b));
    dsb.insert(0, a, 5);
    dsb.insert(0, b, 5);

    dsb.setIndexSalt(0x1234abcdULL);
    EXPECT_NE(dsb.setOf(0, a), dsb.setOf(0, b))
        << "keyed mapping left the alias pair in collision";
    // Lines whose keyed index moved cannot be found any more.
    const bool a_resident = dsb.contains(0, a);
    const bool b_resident = dsb.contains(0, b);
    EXPECT_FALSE(a_resident && b_resident);

    // Restoring salt 0 restores the legacy mapping (but not the
    // invalidated contents).
    dsb.setIndexSalt(0);
    EXPECT_EQ(dsb.setOf(0, a), static_cast<int>((a >> 5) & 31));
}

TEST(DefenseCoreTest, StaticPartitionPinsTheDsb)
{
    Core core(gold6226(), 1);
    EXPECT_FALSE(core.frontend().partitioned());
    core.setStaticPartition(true);
    EXPECT_TRUE(core.frontend().partitioned());

    // Binding/unbinding a single program no longer toggles.
    const ChainProgram loop =
        buildMixBlockChain(0x400000, 20, {{0, false}, {1, false}});
    core.setProgram(0, &loop.program);
    EXPECT_TRUE(core.frontend().partitioned());
    core.clearProgram(0);
    EXPECT_TRUE(core.frontend().partitioned());
    core.setStaticPartition(false);
    EXPECT_FALSE(core.frontend().partitioned());
}

TEST(DefenseCoreTest, StaticPartitionIsANoOpWithoutSmt)
{
    Core core(xeonE2288G(), 1); // SMT disabled
    DefenseSpec spec;
    spec.partition.dsb = true;
    spec.partition.lsd = true;
    Defense defense(spec, 1);
    defense.arm(core);
    EXPECT_FALSE(core.frontend().partitioned());
    EXPECT_FALSE(core.frontend().lsdStaticPartition());
}

TEST(DefenseCoreTest, DisableDsbFlushesAndStopsFills)
{
    Core core(gold6226(), 1);
    Dsb &dsb = core.frontend().dsb();
    dsb.insert(0, 0x400000 + 20 * 32, 5);
    ASSERT_TRUE(dsb.contains(0, 0x400000 + 20 * 32));

    DefenseSpec spec;
    spec.disableDsb = true;
    Defense defense(spec, 1);
    defense.arm(core);
    EXPECT_FALSE(core.frontend().dsbEnabled());
    EXPECT_FALSE(dsb.contains(0, 0x400000 + 20 * 32));

    // Running a loop no longer fills the DSB.
    dsb.resetStats();
    const ChainProgram loop =
        buildMixBlockChain(0x400000, 20, {{0, false}, {1, false}});
    core.setProgram(0, &loop.program);
    core.runUntilRetired(0, 8 * loop.instsPerIteration);
    EXPECT_EQ(dsb.inserts(), 0u);
    EXPECT_GT(core.counters(0).uopsMite, 0u);
    EXPECT_EQ(core.counters(0).uopsDsb, 0u);
    EXPECT_EQ(core.counters(0).uopsLsd, 0u); // inclusion: no LSD
}

TEST(DefenseCoreTest, FlushesOnEveryQuantumthDomainSwitch)
{
    Core core(gold6226(), 1);
    Dsb &dsb = core.frontend().dsb();
    const ChainProgram loop =
        buildMixBlockChain(0x400000, 20, {{0, false}});
    const Addr line = 0x400000 + 20 * 32;

    DefenseSpec spec;
    spec.flush.switchQuantum = 2;
    {
        Defense defense(spec, 1);
        defense.arm(core);

        dsb.insert(0, line, 5);
        core.setProgram(0, &loop.program); // switch 1: no flush
        EXPECT_TRUE(dsb.contains(0, line));
        core.setProgram(0, &loop.program); // switch 2: flush
        EXPECT_FALSE(dsb.contains(0, line));
        EXPECT_EQ(defense.domainSwitches(), 2u);
    }
    // The destroyed defense uninstalled its hook.
    dsb.insert(0, line, 5);
    core.setProgram(0, &loop.program);
    core.setProgram(0, &loop.program);
    EXPECT_TRUE(dsb.contains(0, line));
}

TEST(DefenseFilterTest, PaddingMergesClassesMonotonically)
{
    DefenseSpec spec;
    spec.smoothing.strength = 1.0;
    Defense full(spec, 1);
    // Full strength: every observation is delivered at the running
    // worst case.
    EXPECT_EQ(full.filterTiming(100.0), 100.0);
    EXPECT_EQ(full.filterTiming(60.0), 100.0);
    EXPECT_EQ(full.filterTiming(140.0), 140.0);
    EXPECT_EQ(full.filterTiming(60.0), 140.0);

    spec.smoothing.strength = 0.5;
    Defense half(spec, 1);
    EXPECT_EQ(half.filterTiming(100.0), 100.0);
    EXPECT_EQ(half.filterTiming(60.0), 80.0); // halfway to the worst

    // Power observables share the padding state/semantics.
    spec.smoothing.strength = 1.0;
    Defense power(spec, 1);
    EXPECT_EQ(power.filterPower(2.0), 2.0);
    EXPECT_EQ(power.filterPower(1.0), 2.0);

    // Rate observables (IPC) pad *down* toward the running minimum —
    // constant-rate delivery slows the machine, never speeds it up.
    spec.smoothing.strength = 1.0;
    Defense rate(spec, 1);
    EXPECT_EQ(rate.filterRate(3.0), 3.0);
    EXPECT_EQ(rate.filterRate(4.0), 3.0);
    EXPECT_EQ(rate.filterRate(2.0), 2.0);
    EXPECT_EQ(rate.filterRate(3.5), 2.0);

    // Inactive defense: exact identity.
    Defense none;
    EXPECT_TRUE(none.inactive());
    EXPECT_EQ(none.filterTiming(123.456), 123.456);
    EXPECT_EQ(none.filterPower(0.789), 0.789);
    EXPECT_EQ(none.filterRate(3.21), 3.21);
}

TEST(DefenseSeedTest, DefenseStreamIsDecorrelated)
{
    // Distinct from the trial seed itself and from the environment
    // chain, so arming a defense never reshuffles other streams.
    const std::uint64_t seed = 42;
    EXPECT_NE(deriveDefenseSeed(seed), seed);
    EXPECT_NE(deriveDefenseSeed(seed), deriveDefenseSeed(seed + 1));
}

} // namespace
} // namespace lf
