/**
 * @file
 * Determinism and direction contracts of the defense model under the
 * run layer: an all-default DefenseSpec is bit-identical to the
 * legacy no-defense path for every registry channel; active defenses
 * keep the thread-count/shard/rerun bit-identity guarantees; and the
 * headline mitigation directions hold — a finer flush quantum raises
 * the stealthy channel's error, and static DSB/LSD partitioning
 * drives the MT channels to chance while the IPC fingerprint keeps
 * classifying (the Sec. XI robustness claim).
 */

#include <gtest/gtest.h>

#include "fingerprint/side_channel.hh"
#include "fingerprint/workloads.hh"
#include "run/sinks.hh"
#include "run/sweep.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

/** A sweep exercising several defense sources at once, on top of
 *  environment noise (the two models must compose). */
SweepSpec
defendedSweep()
{
    SweepSpec sweep;
    sweep.channels = {"nonmt-stealthy-eviction", "slow-switch",
                      "power-eviction"};
    sweep.cpus = {gold6226().name, xeonE2288G().name};
    sweep.axes = {{"defense.flush_switch_quantum", {0, 2}},
                  {"defense.randomize_sets", {0, 1}}};
    sweep.baseOverrides["defense.smoothing"] = 0.25;
    sweep.baseOverrides["env.timer_noise_cycles"] = 4.0;
    sweep.baseOverrides["powerRounds"] = 2000;
    sweep.trials = 2;
    sweep.messageBits = 10;
    sweep.seed = 17;
    return sweep;
}

/** Mean error rate over the ok trials of a batch. */
double
meanError(const std::vector<ExperimentResult> &results)
{
    double sum = 0.0;
    int n = 0;
    for (const ExperimentResult &res : results) {
        if (!res.ok)
            continue;
        sum += res.result.errorRate;
        ++n;
    }
    EXPECT_GT(n, 0);
    return sum / n;
}

TEST(DefenseDeterminism, ThreadCountNeverChangesTheBytes)
{
    const SweepSpec sweep = defendedSweep();
    const auto one = runSweep(sweep, ExperimentRunner(1));
    const auto four = runSweep(sweep, ExperimentRunner(4));
    const auto eight = runSweep(sweep, ExperimentRunner(8));
    const std::string json1 = JsonSink("t").render(one);
    EXPECT_EQ(json1, JsonSink("t").render(four));
    EXPECT_EQ(json1, JsonSink("t").render(eight));
}

TEST(DefenseDeterminism, ShardsReproduceTheFullRunExactly)
{
    const SweepSpec sweep = defendedSweep();
    const ExperimentRunner runner(4);
    const auto full = runSweep(sweep, runner);

    constexpr int kShards = 3;
    std::vector<std::vector<ExperimentResult>> shards;
    for (int i = 0; i < kShards; ++i)
        shards.push_back(runSweep(sweep, runner, {i, kShards}));

    std::size_t total = 0;
    for (const auto &shard : shards)
        total += shard.size();
    ASSERT_EQ(total, full.size());

    std::vector<std::size_t> next(kShards, 0);
    std::vector<ExperimentResult> merged;
    const std::size_t per_cell =
        static_cast<std::size_t>(sweep.trials);
    for (std::size_t cell = 0; merged.size() < full.size(); ++cell) {
        auto &shard = shards[cell % kShards];
        std::size_t &pos = next[cell % kShards];
        ASSERT_LE(pos + per_cell, shard.size() + 0);
        for (std::size_t t = 0; t < per_cell; ++t)
            merged.push_back(shard[pos++]);
    }
    EXPECT_EQ(JsonSink("t").render(merged),
              JsonSink("t").render(full));
}

TEST(DefenseDeterminism, RerunBitIdentity)
{
    const SweepSpec sweep = defendedSweep();
    const ExperimentRunner runner(4);
    EXPECT_EQ(JsonSink("t").render(runSweep(sweep, runner)),
              JsonSink("t").render(runSweep(sweep, runner)));
}

TEST(DefenseDeterminism,
     InactiveDefenseMatchesLegacyPathForEveryChannel)
{
    // Every registry channel on one supported CPU each: explicit
    // all-default defense.* overrides against no defense keys at
    // all. The ChannelResults must agree bit for bit.
    std::vector<ExperimentSpec> plain;
    std::vector<ExperimentSpec> defended;
    for (const std::string &channel : allChannelNames()) {
        const CpuModel *cpu = nullptr;
        for (const CpuModel *candidate : allCpuModels()) {
            if (channelSupportedOn(channel, *candidate)) {
                cpu = candidate;
                break;
            }
        }
        ASSERT_NE(cpu, nullptr) << channel;
        ExperimentSpec spec;
        spec.channel = channel;
        spec.cpu = cpu->name;
        spec.seed = 23;
        spec.messageBits = 6;
        // Keep the slow amplified channels quick.
        spec.overrides["powerRounds"] = 2000;
        spec.overrides["sgxRounds"] = 500;
        spec.overrides["sgxMtSteps"] = 10;
        plain.push_back(spec);
        spec.overrides["defense.flush_switch_quantum"] = 0.0;
        spec.overrides["defense.partition_dsb"] = 0.0;
        spec.overrides["defense.partition_lsd"] = 0.0;
        spec.overrides["defense.disable_dsb"] = 0.0;
        spec.overrides["defense.randomize_sets"] = 0.0;
        spec.overrides["defense.smoothing"] = 0.0;
        spec.overrides["defense.rapl_quantum_uj"] = 0.0;
        spec.overrides["defense.rapl_interval_scale"] = 1.0;
        defended.push_back(spec);
    }
    const ExperimentRunner runner(4);
    const auto expect = runner.run(plain);
    const auto got = runner.run(defended);
    ASSERT_EQ(expect.size(), got.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        const ChannelResult &a = expect[i].result;
        const ChannelResult &b = got[i].result;
        ASSERT_EQ(expect[i].ok, got[i].ok)
            << expect[i].spec.channel;
        EXPECT_EQ(a.received, b.received) << a.channelName;
        EXPECT_EQ(a.errorRate, b.errorRate) << a.channelName;
        EXPECT_EQ(a.transmissionKbps, b.transmissionKbps)
            << a.channelName;
        EXPECT_EQ(a.seconds, b.seconds) << a.channelName;
        EXPECT_EQ(a.meanObs0, b.meanObs0) << a.channelName;
        EXPECT_EQ(a.meanObs1, b.meanObs1) << a.channelName;
    }
}

TEST(DefenseDirection, FinerFlushQuantumRaisesStealthyError)
{
    // The stealthy eviction channel carries its bit purely in DSB
    // state across the encode-to-decode handoff; flushing on every
    // switch kills it, a coarse quantum only wounds it.
    SweepSpec sweep;
    sweep.channels = {"nonmt-stealthy-eviction"};
    sweep.cpus = {gold6226().name};
    sweep.patterns = {MessagePattern::AllOnes};
    sweep.axes = {{"defense.flush_switch_quantum", {0, 16, 1}}};
    sweep.trials = 2;
    sweep.messageBits = 36;
    sweep.seed = 503;
    const auto results = runSweep(sweep, ExperimentRunner(4));
    ASSERT_EQ(results.size(), 6u);
    const auto at = [&](std::size_t cell) {
        return std::vector<ExperimentResult>(
            results.begin() + static_cast<std::ptrdiff_t>(2 * cell),
            results.begin() +
                static_cast<std::ptrdiff_t>(2 * cell + 2));
    };
    const double none = meanError(at(0));
    const double coarse = meanError(at(1));
    const double fine = meanError(at(2));
    EXPECT_LE(none, 0.1);
    EXPECT_GE(fine, 0.35);
    EXPECT_GE(fine, coarse - 1e-12);
    EXPECT_GE(coarse, none - 1e-12);
}

TEST(DefenseDirection, PartitioningKillsMtButNotFingerprinting)
{
    // Static DSB+LSD partitioning: the repartition observable never
    // fires and the statically split LSD replay makes the receiver's
    // timing sibling-independent, so the MT channel decodes at
    // chance...
    SweepSpec mt;
    mt.channels = {"mt-eviction"};
    mt.cpus = {gold6226().name};
    mt.patterns = {MessagePattern::AllOnes};
    mt.trials = 2;
    mt.messageBits = 32;
    mt.preambleBits = 32;
    mt.seed = 9;
    const auto plain = runSweep(mt, ExperimentRunner(2));
    mt.baseOverrides["defense.partition_dsb"] = 1.0;
    mt.baseOverrides["defense.partition_lsd"] = 1.0;
    const auto defended = runSweep(mt, ExperimentRunner(2));
    EXPECT_LE(meanError(plain), 0.3);
    EXPECT_GE(meanError(defended), 0.35);

    // ...while the IPC fingerprint — no DSB state, a loop that
    // exceeds the LSD on purpose — keeps its contention waveform
    // and classifies within 5 points of the undefended run.
    TraceConfig config;
    config.samples = 50;
    DefenseSpec partition;
    partition.partition.dsb = true;
    partition.partition.lsd = true;
    const FingerprintStudy undefended = runFingerprintStudy(
        gold6226(), cnnWorkloads(), config, 2);
    const FingerprintStudy partitioned = runFingerprintStudy(
        gold6226(), cnnWorkloads(), config, 2, 1000, partition);
    EXPECT_GE(partitioned.classificationAccuracy,
              undefended.classificationAccuracy - 0.05);
    EXPECT_GE(partitioned.classificationAccuracy, 0.9);
    EXPECT_GT(partitioned.meanInterDistance,
              partitioned.meanIntraDistance);
}

TEST(DefenseDirection, RaplCoarseningKillsThePowerChannel)
{
    SweepSpec power;
    power.channels = {"power-eviction"};
    power.cpus = {gold6226().name};
    power.trials = 2;
    power.messageBits = 12;
    power.preambleBits = 8;
    power.seed = 61;
    power.baseOverrides["powerRounds"] = 20000;
    const auto plain = runSweep(power, ExperimentRunner(2));
    power.baseOverrides["defense.rapl_quantum_uj"] = 50000.0;
    const auto defended = runSweep(power, ExperimentRunner(2));
    EXPECT_LE(meanError(plain), 0.05);
    EXPECT_GE(meanError(defended), 0.25);
}

} // namespace
} // namespace lf
