/**
 * @file
 * Observability layer tests: the counter catalog's integrity, counter
 * collection through runExperiment(), trace recording and the
 * Chrome-trace JSON rendering, RunMetrics rendering, and the logging
 * level machinery.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "obs/counters.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "run/experiment.hh"
#include "run/runner.hh"

namespace lf {
namespace {

ExperimentSpec
quickSpec()
{
    ExperimentSpec spec;
    spec.channel = "nonmt-fast-eviction";
    spec.cpu = "Gold 6226";
    spec.seed = 11;
    spec.messageBits = 4;
    spec.preambleBits = 4;
    return spec;
}

TEST(CounterCatalog, NamesAreUniqueSnakeCaseAndNonEmpty)
{
    const auto &catalog = obs::counterCatalog();
    ASSERT_FALSE(catalog.empty());
    std::set<std::string> names;
    std::vector<std::uint64_t obs::CounterSet::*> fields;
    for (const obs::CounterInfo &info : catalog) {
        ASSERT_NE(info.name, nullptr);
        ASSERT_NE(info.description, nullptr);
        const std::string name = info.name;
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(std::string(info.description).size() > 0) << name;
        // snake_case: lowercase letters, digits, underscores only.
        for (const char c : name) {
            EXPECT_TRUE((std::islower(static_cast<unsigned char>(c)) !=
                         0) ||
                        (std::isdigit(static_cast<unsigned char>(c)) !=
                         0) ||
                        c == '_')
                << name;
        }
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate name " << name;
        for (const auto field : fields)
            EXPECT_NE(field, info.field) << "duplicate field for "
                                         << name;
        fields.push_back(info.field);
    }
}

TEST(Counters, DisabledByDefaultAndScopeRestores)
{
    EXPECT_FALSE(obs::countersEnabled());
    {
        obs::CounterScope scope(true);
        EXPECT_TRUE(obs::countersEnabled());
        {
            obs::CounterScope inner(false);
            EXPECT_FALSE(obs::countersEnabled());
        }
        EXPECT_TRUE(obs::countersEnabled());
    }
    EXPECT_FALSE(obs::countersEnabled());
}

TEST(Counters, SnapshotLandsOnOkTrialsAndLooksPlausible)
{
    obs::CounterScope scope(true);
    const ExperimentResult res = runExperiment(quickSpec());
    ASSERT_TRUE(res.ok);
    ASSERT_NE(res.counters, nullptr);
    const obs::CounterSet &c = *res.counters;
    // A real trial delivered uops, took cycles, and retired work.
    EXPECT_GT(c.uopsMite + c.uopsDsb + c.uopsLsd, 0u);
    EXPECT_GT(c.cycles, 0u);
    EXPECT_GT(c.retiredInsts, 0u);
    EXPECT_GT(c.idqPushes, 0u);
    EXPECT_GE(c.idqPushedUops, c.idqPushes); // >= 1 uop per push
    EXPECT_GT(c.l1iAccesses, 0u);
    EXPECT_GT(c.retireSlotCycles, 0u);
    EXPECT_GE(c.retireSlotsUsed, c.retiredUops);
    // The eviction channel's whole mechanism is DSB traffic.
    EXPECT_GT(c.dsbHits + c.dsbMisses, 0u);
    // The trial either built its chains (miss) or reused them (hit).
    EXPECT_GT(c.preparedCacheHits + c.preparedCacheMisses, 0u);
}

TEST(Counters, NullWhenDisabledOrTrialFails)
{
    {
        obs::CounterScope scope(false);
        const ExperimentResult res = runExperiment(quickSpec());
        ASSERT_TRUE(res.ok);
        EXPECT_EQ(res.counters, nullptr);
    }
    {
        obs::CounterScope scope(true);
        ExperimentSpec bad = quickSpec();
        bad.overrides["d"] = 0;
        const ExperimentResult res = runExperiment(bad);
        EXPECT_FALSE(res.ok);
        EXPECT_EQ(res.counters, nullptr);
    }
}

TEST(Counters, JsonRenderEmitsEveryCatalogName)
{
    obs::CounterSet set;
    set.uopsMite = 42;
    const std::string json = obs::renderCounterSetJson(set);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"uops_mite\":42"), std::string::npos);
    for (const obs::CounterInfo &info : obs::counterCatalog()) {
        EXPECT_NE(json.find("\"" + std::string(info.name) + "\":"),
                  std::string::npos)
            << info.name;
    }
}

TEST(Trace, RecordsSpansAndRendersValidChromeJson)
{
    obs::setTraceEnabled(true);
    obs::clearTrace();

    // Record from several threads: per-thread rings, one tid each.
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < 5; ++i) {
                obs::TraceScope span("unit_span");
                obs::traceInstant("unit_instant");
                obs::traceCounter("unit_counter",
                                  static_cast<std::uint64_t>(i));
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    obs::setTraceEnabled(false);

    EXPECT_EQ(obs::traceEventCount(), 3u * 5u * 3u);
    EXPECT_EQ(obs::traceDroppedEvents(), 0u);

    const std::string json = obs::renderTraceJson();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"unit_span\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    // Structurally balanced (no string values contain braces here).
    int depth = 0;
    for (const char c : json) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);

    obs::clearTrace();
    EXPECT_EQ(obs::traceEventCount(), 0u);
}

TEST(Trace, DisabledRecordingIsANoOpAndRingIsBounded)
{
    obs::clearTrace();
    EXPECT_FALSE(obs::traceEnabled());
    obs::traceInstant("ignored");
    obs::traceCounter("ignored", 1);
    {
        obs::TraceScope span("ignored");
    }
    EXPECT_EQ(obs::traceEventCount(), 0u);

    // Overflow the single-thread ring: drops are counted, capacity
    // holds.
    obs::setTraceEnabled(true);
    const std::size_t burst = (1u << 16) + 500u;
    for (std::size_t i = 0; i < burst; ++i)
        obs::traceInstant("flood");
    obs::setTraceEnabled(false);
    EXPECT_EQ(obs::traceEventCount(), std::size_t{1} << 16);
    EXPECT_EQ(obs::traceDroppedEvents(), 500u);
    obs::clearTrace();
}

TEST(Trace, RunnerEmitsTrialSpansAtEveryThreadCount)
{
    const std::vector<ExperimentSpec> specs =
        expandTrials(quickSpec(), 12);

    for (const int threads : {1, 4}) {
        obs::setTraceEnabled(true);
        obs::clearTrace();
        ExperimentRunner(threads).run(specs);
        obs::setTraceEnabled(false);
        const std::string json = obs::renderTraceJson();
        EXPECT_NE(json.find("\"name\":\"trial\""), std::string::npos)
            << threads;
        EXPECT_NE(json.find("\"name\":\"resolve\""), std::string::npos)
            << threads;
        EXPECT_NE(json.find("\"name\":\"transmit\""),
                  std::string::npos)
            << threads;
        obs::clearTrace();
    }
}

TEST(RunMetrics, RenderAndOneLinerCoverTheSchema)
{
    obs::RunMetrics m;
    m.trials = 10;
    m.okTrials = 8;
    m.errorTrials = 1;
    m.skippedTrials = 1;
    m.workers = 4;
    m.seconds = 2.0;
    m.trialsPerSec = 5.0;
    m.workerParks = 3;
    m.preparedCacheHits = 9;
    m.preparedCacheMisses = 1;
    m.reorderWindow = 64;
    m.windowOccupancy[0] = 7;
    m.windowOccupancy[7] = 3;

    const std::string json = obs::renderRunMetricsJson(m);
    EXPECT_NE(json.find("\"schema\":\"lf_run_metrics_v1\""),
              std::string::npos);
    for (const char *key :
         {"trials", "ok_trials", "error_trials", "skipped_trials",
          "workers", "seconds", "trials_per_sec", "worker_parks",
          "consumer_parks", "wake_broadcasts", "prepared_cache_hits",
          "prepared_cache_misses", "prepared_cache_hit_rate",
          "reorder_window", "window_occupancy_histogram"}) {
        EXPECT_NE(json.find("\"" + std::string(key) + "\":"),
                  std::string::npos)
            << key;
    }
    EXPECT_NE(json.find("[7,0,0,0,0,0,0,3]"), std::string::npos);
    EXPECT_DOUBLE_EQ(m.preparedCacheHitRate(), 0.9);

    const std::string line = obs::runMetricsOneLiner(m);
    EXPECT_NE(line.find("10 trials"), std::string::npos);
    EXPECT_NE(line.find("5.0 trials/s"), std::string::npos);
    EXPECT_NE(line.find("90%"), std::string::npos);
    EXPECT_NE(line.find("3 worker parks"), std::string::npos);
}

TEST(Logging, LevelsFilterAndSetLogLevelOverrides)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    EXPECT_LT(static_cast<int>(LogLevel::Error),
              static_cast<int>(LogLevel::Warn));
    EXPECT_LT(static_cast<int>(LogLevel::Warn),
              static_cast<int>(LogLevel::Info));
    EXPECT_LT(static_cast<int>(LogLevel::Info),
              static_cast<int>(LogLevel::Debug));
    setLogLevel(before);
}

} // namespace
} // namespace lf
