/** @file Tests for patch detection and application fingerprinting. */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "fingerprint/patch_detect.hh"
#include "fingerprint/side_channel.hh"
#include "fingerprint/workloads.hh"
#include "sim/cpu_model.hh"

namespace lf {
namespace {

TEST(PatchDetect, PatchMetadata)
{
    EXPECT_TRUE(patch1().lsdEnabled);
    EXPECT_FALSE(patch2().lsdEnabled);
    EXPECT_NE(patch1().name, patch2().name);
}

TEST(PatchDetect, SignaturesDivergeOnlyUnderPatch1)
{
    PatchDetector detector(gold6226());
    const PatchSignature s1 = detector.measure(patch1(), 1);
    const PatchSignature s2 = detector.measure(patch2(), 2);
    // patch1: the small loop streams from the LSD.
    EXPECT_GT(s1.smallLoopLsdShare, 0.9);
    EXPECT_LT(s1.smallLoopCycles, s1.largeLoopCycles * 0.9);
    EXPECT_LT(s1.smallLoopWatts, s1.largeLoopWatts);
    // patch2: the loops behave identically.
    EXPECT_EQ(s2.smallLoopLsdShare, 0.0);
    EXPECT_NEAR(s2.smallLoopCycles, s2.largeLoopCycles,
                s2.largeLoopCycles * 0.08);
}

class PatchDetectSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PatchDetectSeeds, ClassifiesBothPatches)
{
    PatchDetector detector(gold6226());
    EXPECT_TRUE(detector.detectLsdEnabled(patch1(), GetParam()));
    EXPECT_FALSE(detector.detectLsdEnabled(patch2(), GetParam() + 1000));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatchDetectSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Workloads, Libraries)
{
    EXPECT_EQ(mobileWorkloads().size(), 10u);
    const auto cnns = cnnWorkloads();
    ASSERT_EQ(cnns.size(), 4u);
    EXPECT_EQ(cnns[0].name(), "AlexNet");
    EXPECT_EQ(cnns[2].name(), "VGG");
    for (const auto &w : cnns) {
        EXPECT_GE(w.numPhases(), 2u);
        EXPECT_GT(w.totalCycles(), 100000u);
        for (std::size_t i = 0; i < w.numPhases(); ++i)
            EXPECT_FALSE(w.phaseProgram(i).empty());
    }
}

TEST(SideChannel, BaselineIpcNearBackendWidth)
{
    TraceConfig config;
    const double ipc = attackerBaselineIpc(gold6226(), config);
    EXPECT_GT(ipc, 4.5);
    EXPECT_LE(ipc, 6.0);
}

TEST(SideChannel, CoRunningVictimHalvesIpc)
{
    TraceConfig config;
    config.samples = 20;
    const double baseline = attackerBaselineIpc(gold6226(), config);
    const auto cnns = cnnWorkloads();
    const auto trace =
        attackerIpcTrace(gold6226(), cnns[0], config, 9);
    double sum = 0.0;
    for (double v : trace)
        sum += v;
    const double paired = sum / static_cast<double>(trace.size());
    EXPECT_LT(paired, baseline * 0.75);
    EXPECT_GT(paired, baseline * 0.3);
}

TEST(SideChannel, SameVictimSimilarTraces)
{
    TraceConfig config;
    config.samples = 40;
    const auto cnns = cnnWorkloads();
    const auto a = attackerIpcTrace(gold6226(), cnns[1], config, 100);
    const auto b = attackerIpcTrace(gold6226(), cnns[1], config, 200);
    const auto c = attackerIpcTrace(gold6226(), cnns[3], config, 300);
    EXPECT_LT(euclideanDistance(a, b), euclideanDistance(a, c));
}

TEST(SideChannel, StudySeparatesCnns)
{
    TraceConfig config;
    config.samples = 60;
    const FingerprintStudy study =
        runFingerprintStudy(gold6226(), cnnWorkloads(), config, 2);
    EXPECT_GT(study.meanInterDistance,
              1.5 * study.meanIntraDistance);
    EXPECT_GE(study.classificationAccuracy, 0.75);
}

TEST(SideChannel, RequiresSmt)
{
    TraceConfig config;
    const auto cnns = cnnWorkloads();
    EXPECT_DEATH(attackerIpcTrace(xeonE2288G(), cnns[0], config, 1),
                 "SMT");
}

} // namespace
} // namespace lf
