/** @file Integration tests for the Spectre v1 variants. */

#include <gtest/gtest.h>

#include <cctype>

#include "sim/cpu_model.hh"
#include "common/rng.hh"
#include "spectre/spectre.hh"

namespace lf {
namespace {

std::vector<int>
someSecrets(int count = 10)
{
    std::vector<int> secrets;
    Rng rng(77);
    for (int i = 0; i < count; ++i)
        secrets.push_back(static_cast<int>(rng.uniformInt(0, 31)));
    return secrets;
}

TEST(Spectre, VariantNamesAndOrder)
{
    const auto variants = allSpectreVariants();
    EXPECT_EQ(variants.size(), 6u);
    EXPECT_STREQ(toString(SpectreVariant::Frontend), "Frontend");
    EXPECT_STREQ(toString(SpectreVariant::MemFlushReload), "MEM F+R");
    EXPECT_EQ(variants.back(), SpectreVariant::Frontend);
}

class SpectreVariantTest
    : public ::testing::TestWithParam<SpectreVariant>
{
};

TEST_P(SpectreVariantTest, RecoversSecrets)
{
    Core core(gold6226(), 55);
    SpectreAttack attack(core);
    const auto secrets = someSecrets();
    const SpectreResult res = attack.run(GetParam(), secrets);
    EXPECT_EQ(res.trials, secrets.size());
    // Every channel must beat random guessing (1/32) decisively;
    // the low-noise channels should be near-perfect.
    EXPECT_GT(res.accuracy, 0.5) << toString(GetParam());
    EXPECT_GT(res.l1Accesses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SpectreVariantTest,
    ::testing::ValuesIn(allSpectreVariants()),
    [](const ::testing::TestParamInfo<SpectreVariant> &info) {
        std::string name = toString(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Spectre, DataVariantsArePerfect)
{
    Core core(gold6226(), 56);
    SpectreAttack attack(core);
    const auto secrets = someSecrets(12);
    for (SpectreVariant v : {SpectreVariant::MemFlushReload,
                             SpectreVariant::L1dFlushReload,
                             SpectreVariant::L1dLru}) {
        const SpectreResult res = attack.run(v, secrets);
        EXPECT_DOUBLE_EQ(res.accuracy, 1.0) << toString(v);
    }
}

TEST(Spectre, FrontendHasLowestL1MissRate)
{
    // The headline of Table VII.
    Core core(gold6226(), 57);
    SpectreAttack attack(core);
    const auto secrets = someSecrets(12);
    double frontend_rate = 1.0;
    double min_other = 1.0;
    for (SpectreVariant v : allSpectreVariants()) {
        const SpectreResult res = attack.run(v, secrets);
        if (v == SpectreVariant::Frontend)
            frontend_rate = res.l1MissRate;
        else
            min_other = std::min(min_other, res.l1MissRate);
    }
    EXPECT_LT(frontend_rate, min_other);
    EXPECT_LT(frontend_rate, 0.005); // essentially cache-silent
}

TEST(Spectre, DataChannelsMissMoreThanInstructionChannels)
{
    Core core(gold6226(), 58);
    SpectreAttack attack(core);
    const auto secrets = someSecrets(12);
    const double l1d_fr =
        attack.run(SpectreVariant::L1dFlushReload, secrets).l1MissRate;
    const double l1i_fr =
        attack.run(SpectreVariant::L1iFlushReload, secrets).l1MissRate;
    EXPECT_GT(l1d_fr, l1i_fr);
}

TEST(Spectre, SecretOutOfRangePanics)
{
    Core core(gold6226(), 59);
    SpectreAttack attack(core);
    EXPECT_DEATH(attack.run(SpectreVariant::Frontend, {32}),
                 "out of range");
}

} // namespace
} // namespace lf
